package blast

import (
	"bytes"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/seqgen"
)

// FuzzLoad: arbitrary bytes must never panic Load or drive an OOM-scale
// allocation, and anything that decodes as a valid container must be
// searchable. The section CRCs mean mutated inputs should essentially
// always be rejected with a typed error.
func FuzzLoad(f *testing.F) {
	g := seqgen.New(seqgen.UniprotProfile(), 3)
	raw := g.Database(4)
	seqs := make([]Sequence, len(raw))
	for i, s := range raw {
		seqs[i] = Sequence{Name: nameFor(i), Residues: alphabet.String(s)}
	}
	p := DefaultParams()
	p.BlockResidues = 16384
	db, err := NewDatabase(seqs, p)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(containerMagic)+2])
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte(containerMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := Load(bytes.NewReader(data), DefaultParams())
		if err != nil {
			if !isTyped(err) {
				t.Fatalf("untyped load error: %v", err)
			}
			return
		}
		// Whatever loaded must be internally consistent enough to search.
		if _, err := loaded.Search("MKTAYIAKQRQISFVK"); err != nil {
			t.Fatalf("loaded database cannot search: %v", err)
		}
	})
}
