package blast

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/seqgen"
)

// smallDatabase builds a compact database whose saved container is a few
// tens of KB, so exhaustive byte-flip sweeps stay fast.
func smallDatabase(t *testing.T, p Params) (*Database, []Sequence) {
	t.Helper()
	g := seqgen.New(seqgen.UniprotProfile(), 99)
	raw := g.Database(10)
	seqs := make([]Sequence, len(raw))
	for i, s := range raw {
		seqs[i] = Sequence{Name: nameFor(i), Residues: alphabet.String(s)}
	}
	db, err := NewDatabase(seqs, p)
	if err != nil {
		t.Fatal(err)
	}
	return db, seqs
}

func saved(t *testing.T, db *Database) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func isTyped(err error) bool {
	return errors.Is(err, ErrCorrupt) || errors.Is(err, ErrVersion) || errors.Is(err, ErrParamsMismatch)
}

// TestByteFlipRobustness is the acceptance gate: flipping any single byte of
// a saved database must make Load return a typed error — never a panic, an
// OOM-scale allocation, or a silently different database.
func TestByteFlipRobustness(t *testing.T) {
	p := DefaultParams()
	p.BlockResidues = 4096
	db, _ := smallDatabase(t, p)
	art := saved(t, db)
	rng := rand.New(rand.NewSource(7))
	stride := 1
	if testing.Short() {
		stride = 13
	}
	for i := 0; i < len(art); i += stride {
		mut := append([]byte(nil), art...)
		mut[i] ^= byte(1 << rng.Intn(8))
		if _, err := Load(bytes.NewReader(mut), p); err == nil {
			t.Fatalf("flip at byte %d of %d loaded successfully", i, len(art))
		} else if !isTyped(err) {
			t.Fatalf("flip at byte %d: untyped error %v", i, err)
		}
	}
}

func TestTruncationRejected(t *testing.T) {
	p := DefaultParams()
	p.BlockResidues = 4096
	db, _ := smallDatabase(t, p)
	art := saved(t, db)
	for _, n := range []int{0, 1, len(containerMagic), len(containerMagic) + 1, len(art) / 3, len(art) / 2, len(art) - 1} {
		if _, err := Load(bytes.NewReader(art[:n]), p); !isTyped(err) {
			t.Errorf("truncation to %d bytes: got %v, want typed error", n, err)
		}
	}
}

func TestTrailingGarbageRejected(t *testing.T) {
	p := DefaultParams()
	p.BlockResidues = 4096
	db, _ := smallDatabase(t, p)
	art := append(saved(t, db), 0x00)
	if _, err := Load(bytes.NewReader(art), p); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("appended byte: got %v, want ErrCorrupt", err)
	}
}

func TestLegacyFormatRejected(t *testing.T) {
	// The pre-container format: an 8-byte little-endian section length
	// followed by the raw dbase stream ("MUDB1\n"...).
	payload := []byte("MUDB1\n\x00")
	legacy := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint64(legacy, uint64(len(payload)))
	legacy = append(legacy, payload...)
	if _, err := Load(bytes.NewReader(legacy), DefaultParams()); !errors.Is(err, ErrVersion) {
		t.Fatalf("legacy artifact: got %v, want ErrVersion", err)
	}
	if _, err := Load(bytes.NewReader([]byte("utter nonsense, quite long enough")), DefaultParams()); !errors.Is(err, ErrCorrupt) {
		t.Fatal("garbage accepted as container")
	}
}

func TestLoadRejectsParamsMismatch(t *testing.T) {
	p := DefaultParams()
	p.BlockResidues = 4096
	db, _ := smallDatabase(t, p)
	art := saved(t, db)
	cases := []struct {
		name   string
		adjust func(*Params)
	}{
		{"matrix", func(p *Params) { p.Matrix = "BLOSUM50" }},
		{"neighbor threshold", func(p *Params) { p.NeighborThreshold = 13 }},
		{"block residues", func(p *Params) { p.BlockResidues = 8192 }},
		{"split threshold", func(p *Params) { p.SplitLongerThan = 2000 }},
		{"split disabled", func(p *Params) { p.SplitLongerThan = -1 }},
	}
	for _, tc := range cases {
		q := p
		tc.adjust(&q)
		if _, err := Load(bytes.NewReader(art), q); !errors.Is(err, ErrParamsMismatch) {
			t.Errorf("%s drift: got %v, want ErrParamsMismatch", tc.name, err)
		}
	}
	// Zero values mean "adopt the stored build parameters".
	q := p
	q.BlockResidues = 0
	loaded, err := Load(bytes.NewReader(art), q)
	if err != nil {
		t.Fatalf("auto block residues: %v", err)
	}
	if loaded.params.BlockResidues != 4096 {
		t.Errorf("adopted block residues = %d, want 4096", loaded.params.BlockResidues)
	}
	// Scoring-only parameters may differ freely: the index stores exact-word
	// positions, so gap penalties and cutoffs are not part of the fingerprint.
	q = p
	q.GapOpen, q.EValueCutoff, q.MaxResults = 13, 1, 10
	if _, err := Load(bytes.NewReader(art), q); err != nil {
		t.Errorf("scoring-only drift rejected: %v", err)
	}
}

// TestSaveLoadByteIdenticalOutput pins the acceptance criterion that a
// Save→Load round trip yields byte-identical search output to the in-memory
// database, across multiple queries and the full rendered form.
func TestSaveLoadByteIdenticalOutput(t *testing.T) {
	p := DefaultParams()
	p.BlockResidues = 4096
	db, seqs := smallDatabase(t, p)
	loaded, err := Load(bytes.NewReader(saved(t, db)), p)
	if err != nil {
		t.Fatal(err)
	}
	for _, minLen := range []int{60, 100, 140} {
		q := queryFrom(seqs, minLen)
		a, err := db.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := b.Tabular("q"), a.Tabular("q"); got != want {
			t.Fatalf("query %d: output differs after reload:\n--- in-memory ---\n%s--- reloaded ---\n%s", minLen, want, got)
		}
	}
}

// TestHashInNameNotMisclassified is the regression test for the old
// recoverChunkOrigins heuristic: a user sequence legitimately named with a
// "#<digits>" suffix must not be treated as a split chunk (which would
// rename it and shift its reported subject coordinates) after Save/Load.
func TestHashInNameNotMisclassified(t *testing.T) {
	g := seqgen.New(seqgen.UniprotProfile(), 55)
	resi := alphabet.String(g.Sequence(300))
	p := DefaultParams()
	p.BlockResidues = 4096
	db, err := NewDatabase([]Sequence{
		{Name: "sp|P123#2", Residues: resi},
		{Name: "plain", Residues: alphabet.String(g.Sequence(250))},
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(saved(t, db)), p)
	if err != nil {
		t.Fatal(err)
	}
	q := resi[40:200]
	before, err := db.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	after, err := loaded.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Hits) == 0 {
		t.Fatal("no hits for exact subsequence")
	}
	if got := before.Hits[0]; got.SubjectName != "sp|P123#2" || got.SubjectStart != 40 {
		t.Fatalf("in-memory hit misclassified: name %q start %d", got.SubjectName, got.SubjectStart)
	}
	if got := after.Hits[0]; got.SubjectName != "sp|P123#2" || got.SubjectStart != 40 {
		t.Fatalf("reloaded hit misclassified: name %q start %d (offset stolen from the #2 suffix?)", got.SubjectName, got.SubjectStart)
	}
	if len(before.Hits) != len(after.Hits) {
		t.Fatalf("hit count changed after reload: %d -> %d", len(before.Hits), len(after.Hits))
	}
}

func TestVerify(t *testing.T) {
	g := seqgen.New(seqgen.UniprotProfile(), 321)
	long := alphabet.String(g.Sequence(5000))
	p := DefaultParams()
	p.BlockResidues = 4096
	p.SplitLongerThan = 2000
	db, err := NewDatabase([]Sequence{
		{Name: "giant", Residues: long},
		{Name: "small", Residues: alphabet.String(g.Sequence(200))},
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	art := saved(t, db)
	info, err := Verify(bytes.NewReader(art))
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 {
		t.Errorf("Version = %d", info.Version)
	}
	fp := info.Fingerprint
	if fp.Matrix != "BLOSUM62" || fp.WordSize != 3 || fp.NeighborThreshold != 11 ||
		fp.BlockResidues != 4096 || fp.SplitLongerThan != 2000 || fp.SplitOverlap != 256 {
		t.Errorf("fingerprint = %+v", fp)
	}
	if info.NumSequences != db.NumSequences() || info.NumBlocks != db.NumBlocks() {
		t.Errorf("info %+v vs db %d seqs %d blocks", info, db.NumSequences(), db.NumBlocks())
	}
	if info.NumChunks < 2 {
		t.Errorf("NumChunks = %d, want the giant sequence's chunks", info.NumChunks)
	}
	mut := append([]byte(nil), art...)
	mut[len(mut)/2] ^= 0x10
	if _, err := Verify(bytes.NewReader(mut)); !isTyped(err) {
		t.Errorf("Verify of corrupted container: %v", err)
	}
}

// TestZeroLengthRecords pins the end-to-end behavior for zero-length FASTA
// records (a header immediately followed by another header): they parse to
// empty sequences, encode, index, save, load, and simply never produce hits.
func TestZeroLengthRecords(t *testing.T) {
	g := seqgen.New(seqgen.UniprotProfile(), 11)
	real := alphabet.String(g.Sequence(220))
	fastaIn := ">empty1\n>real keeps residues\n" + real + "\n>empty2\n"
	seqs, err := ReadFASTA(strings.NewReader(fastaIn))
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 3 || seqs[0].Residues != "" || seqs[2].Residues != "" || seqs[1].Residues != real {
		t.Fatalf("parsed %d sequences: %+v", len(seqs), seqs)
	}
	p := DefaultParams()
	p.BlockResidues = 4096
	db, err := NewDatabase(seqs, p)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumSequences() != 3 {
		t.Fatalf("NumSequences = %d", db.NumSequences())
	}
	loaded, err := Load(bytes.NewReader(saved(t, db)), p)
	if err != nil {
		t.Fatalf("round trip with empty sequences: %v", err)
	}
	for _, d := range []*Database{db, loaded} {
		res, err := d.Search(real[10:180])
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Hits) == 0 {
			t.Fatal("no hits for exact subsequence")
		}
		for _, h := range res.Hits {
			if h.SubjectName != "real" {
				t.Fatalf("hit on zero-length sequence %q", h.SubjectName)
			}
		}
	}

	// A database of only empty sequences indexes to zero blocks and
	// searches to zero hits, in memory and through a save/load cycle.
	empty, err := NewDatabase([]Sequence{{Name: "a"}, {Name: "b"}}, p)
	if err != nil {
		t.Fatal(err)
	}
	if empty.NumBlocks() != 0 {
		t.Fatalf("all-empty database has %d blocks", empty.NumBlocks())
	}
	eloaded, err := Load(bytes.NewReader(saved(t, empty)), p)
	if err != nil {
		t.Fatalf("round trip of all-empty database: %v", err)
	}
	res, err := eloaded.Search("MKTAYIAKQR")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 0 {
		t.Fatalf("hits from all-empty database: %d", len(res.Hits))
	}
}
