package blast

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/alphabet"
	"repro/internal/dbindex"
	"repro/internal/obs"
	"repro/internal/search"
)

// This file implements horizontal database sharding: splitting one built
// database into N self-contained sub-databases (each saveable as a normal
// container), searching a shard on behalf of the whole, and merging per-shard
// results byte-identically to a monolithic search.
//
// The shard layout is the paper's inter-node partitioning (Section IV-D3)
// frozen into the container format: the monolithic database is length-sorted
// (the index build guarantees it), then dealt round-robin, so shard s holds
// the sequences whose monolithic ids are s, s+N, s+2N, ... in that order.
// Three properties follow and the merge depends on all of them:
//
//   - every shard sees a near-identical length distribution, so per-query
//     work is balanced across shards (the paper's load-balance argument);
//   - each shard is itself in ascending length order, so it round-trips
//     through the container format unchanged;
//   - the monolithic id of shard s's local sequence j is j*N + s, so merged
//     hits can be restored to monolithic subject ids — and hence monolithic
//     ranking and rendered output — without any stored mapping.
//
// E-values are the other half of the merge invariant: every shard engine must
// compute statistics against the *global* search space (Params.GlobalDB*,
// threaded into search.Config.DBLenOverride/DBSeqsOverride), or per-shard
// E-values — and with them cutoff filtering and the merged ranking — drift
// from the monolithic search. MergeShards re-sorts with the monolithic
// comparator over restored ids, re-caps at MaxResults, and converts hits
// through the same convertHSPs path as a monolithic search, so for any shard
// count N >= 1 the merged output is byte-identical to the single-database
// result. (The one theoretical exception, shared with all distributed BLAST
// merges: a hit cut by the monolithic MaxResults pre-traceback cap can
// survive a shard's local cap; it needs more than MaxResults co-ranked HSPs
// on one query to occur.)

// ErrShardUnavailable marks queries whose results are incomplete because at
// least one shard contributed nothing (shed, failed, or unreachable). The
// missing shard makes a zero-hit answer indistinguishable from a real miss,
// so such queries are reported incomplete rather than merged dishonestly.
var ErrShardUnavailable = errors.New("blast: shard unavailable, merged result would be incomplete")

// Shards splits a built database into n self-contained shard databases by
// round-robin over the length-sorted sequence order. Each shard carries the
// global search-space totals, so its E-values match the monolithic search;
// each can be saved with SaveFile as an ordinary container and later served
// by an independent process. n must not exceed the sequence count (an empty
// shard would add nothing but merge bookkeeping).
func (d *Database) Shards(n int) ([]*Database, error) {
	if n <= 0 {
		return nil, fmt.Errorf("blast: shard count must be positive, got %d", n)
	}
	if d.tiers != nil {
		return nil, fmt.Errorf("blast: cannot shard a tiered (base+deltas) database; compact the store first")
	}
	if n > d.db.NumSeqs() {
		return nil, fmt.Errorf("blast: %d shards for %d sequences; shards must not be empty", n, d.db.NumSeqs())
	}
	parts := d.db.Partitions(n)
	out := make([]*Database, n)
	for s := range parts {
		sub := d.db.Subset(parts[s])
		p := d.params
		p.BlockResidues = d.ix.BlockResidues
		p.GlobalDBResidues = d.db.TotalResidues
		p.GlobalDBSequences = int64(d.db.NumSeqs())
		cfg, err := buildConfig(p)
		if err != nil {
			return nil, err
		}
		// The subset of an ascending-length database is ascending, so the
		// build's internal sort is a stable no-op and local id j keeps
		// meaning monolithic id j*n + s.
		ix, err := dbindex.Build(sub, cfg.Neighbors, d.ix.BlockResidues)
		if err != nil {
			return nil, fmt.Errorf("blast: indexing shard %d: %w", s, err)
		}
		var co map[string]chunkInfo
		for i := range sub.Seqs {
			if info, ok := d.chunkOrigin[sub.Seqs[i].Name]; ok {
				if co == nil {
					co = make(map[string]chunkInfo)
				}
				co[sub.Seqs[i].Name] = info
			}
		}
		sd := &Database{params: p, cfg: cfg, db: sub, ix: ix, chunkOrigin: co,
			splitLen: d.splitLen, splitOverlap: d.splitOverlap}
		sd.attachEngines()
		out[s] = sd
	}
	return out, nil
}

// GlobalSearchSpace reports the search-space totals this database computes
// E-values against: the declared global totals for a shard, its own totals
// otherwise.
func (d *Database) GlobalSearchSpace() (residues, sequences int64) {
	if d.params.GlobalDBResidues > 0 {
		return d.params.GlobalDBResidues, d.params.GlobalDBSequences
	}
	return d.db.TotalResidues, int64(d.db.NumSeqs())
}

// ShardResult is one shard's raw contribution to a scatter-gather search:
// per-query HSPs still carrying shard-local subject ids, plus the batch's
// completion flags. It is produced by SearchShardBatchCtx (attached to the
// shard's local database) or by ImportShardResult (detached — rebuilt from
// the wire form a remote shard worker sent, with precomputed identity and
// chunk-origin side records instead of a resident database) and consumed by
// MergeShards; callers treat it as opaque.
type ShardResult struct {
	shard     int
	numShards int
	db        *Database // nil for a detached (wire-imported) result
	results   []search.QueryResult
	completed []bool
	queryErrs []error
	sched     search.SchedStats
	err       error

	// Detached-result state: the merge cap the remote shard was configured
	// with, and per-query per-HSP side records (parallel to results[i].HSPs)
	// replacing what an attached result derives from db.
	maxResults int
	sidecar    [][]hspMeta
}

// hspMeta is the detached stand-in for what the merge otherwise reads from
// the shard's resident database: the alignment's identity fraction (needs
// subject residues) and its split-chunk origin (needs the chunkOrigin map).
// Both are computed shard-side at Wire time, against exactly the data a
// local merge would have consulted.
type hspMeta struct {
	identity  float64
	origName  string
	offset    int
	hasOrigin bool
}

// hspIdentity resolves one of this shard's HSPs (restored to its monolithic
// subject id) to its aligned-column identity fraction.
func (r *ShardResult) hspIdentity(q []alphabet.Code, qi, local int, h *search.HSP) float64 {
	if r.db != nil {
		return identity(q, r.db.db.Seqs[h.Subject/r.numShards].Data, &h.Aln)
	}
	return r.sidecar[qi][local].identity
}

// hspOrigin resolves one of this shard's HSPs to its split-chunk origin.
func (r *ShardResult) hspOrigin(qi, local int, h *search.HSP) (chunkInfo, bool) {
	if r.db != nil {
		info, ok := r.db.chunkOrigin[h.SubjectName]
		return info, ok
	}
	m := &r.sidecar[qi][local]
	if !m.hasOrigin {
		return chunkInfo{}, false
	}
	return chunkInfo{origName: m.origName, offset: m.offset}, true
}

// maxHits returns the per-query report cap this shard was searched with.
func (r *ShardResult) maxHits() int {
	if r.db != nil {
		return r.db.params.MaxResults
	}
	return r.maxResults
}

// Shard returns the shard index this result came from.
func (r *ShardResult) Shard() int { return r.shard }

// NumShards returns the shard count the search was scattered over.
func (r *ShardResult) NumShards() int { return r.numShards }

// Err returns the shard batch's error (nil when it ran to the end).
func (r *ShardResult) Err() error { return r.err }

// CompletedCount returns how many queries this shard completed.
func (r *ShardResult) CompletedCount() int {
	n := 0
	for _, done := range r.completed {
		if done {
			n++
		}
	}
	return n
}

// Sched returns the shard batch's scheduler statistics.
func (r *ShardResult) Sched() search.SchedStats { return r.sched }

// NumQueries returns how many queries the shard batch carried.
func (r *ShardResult) NumQueries() int { return len(r.results) }

// QueryCompleted reports whether this shard completed query i.
func (r *ShardResult) QueryCompleted(i int) bool {
	return i >= 0 && i < len(r.completed) && r.completed[i]
}

// QueryStageSpans returns query i's per-stage pipeline timing on this shard,
// one span per stage in pipeline order — the shard-side counterpart of
// Result.StageSpans, for trace sinks that attribute scatter time to stages.
// Allocates; call only with tracing on.
func (r *ShardResult) QueryStageSpans(i int) []obs.Span {
	if i < 0 || i >= len(r.results) {
		return nil
	}
	return r.results[i].Stats.Spans()
}

// SearchShardBatchCtx searches a query batch against this database acting as
// shard `shard` of `numShards`: the result keeps raw HSPs (shard-local
// subject ids, global-statistics E-values) for MergeShards to combine with
// the other shards' into output byte-identical to a monolithic search. The
// database must actually be that shard of the logical database — built by
// Shards, or loaded from a `makedb -shards` container with the global totals
// in Params — or the merge's id restoration produces garbage.
//
// Cancellation and deadlines behave as in SearchBatchCtx: the batch stops
// between tasks, completed queries stay byte-identical, and per-query flags
// tell them apart. The returned error is non-nil only for invalid input.
func (d *Database) SearchShardBatchCtx(ctx context.Context, queries []string, shard, numShards int) (*ShardResult, error) {
	if numShards <= 0 || shard < 0 || shard >= numShards {
		return nil, fmt.Errorf("blast: shard %d of %d out of range", shard, numShards)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if d.params.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d.params.Timeout)
		defer cancel()
	}
	if d.tiers != nil {
		// A store-backed shard searches base+deltas and hands the merge a
		// detached result whose local ids live in the combined id space; the
		// round-robin id restoration then works unchanged, provided every
		// shard of the topology serves the same manifest generation (the
		// router's coherence handshake enforces this).
		return d.searchTieredShard(ctx, queries, shard, numShards)
	}
	enc := make([][]alphabet.Code, len(queries))
	for i, s := range queries {
		q, err := alphabet.Encode([]byte(s))
		if err != nil {
			return nil, fmt.Errorf("blast: query %d: %w", i, err)
		}
		enc[i] = q
	}
	br := d.mu.SearchBatchCtx(ctx, enc, d.params.Threads)
	return &ShardResult{
		shard: shard, numShards: numShards, db: d,
		results: br.Results, completed: br.Completed, queryErrs: br.QueryErrs,
		sched: br.Sched, err: br.Err,
	}, nil
}

// MergeShards combines one ShardResult per shard (parts[s] from shard s)
// into a BatchResult byte-identical to searching the monolithic database:
// subject ids are restored to monolithic ids (local*N + shard), HSPs
// re-ranked with the monolithic comparator, re-capped at MaxResults, and
// converted — chunk-origin mapping and overlap deduplication included —
// through the same path as a single-database search.
//
// A nil entry stands for a shard that contributed nothing (shed or failed).
// Its absence poisons every query honestly: the query is marked incomplete
// with ErrShardUnavailable rather than merged as if the shard had zero hits.
// Queries a shard left incomplete (deadline, panic isolation) are likewise
// incomplete in the merge.
func MergeShards(queries []string, parts []*ShardResult) (*BatchResult, error) {
	numShards := len(parts)
	if numShards == 0 {
		return nil, errors.New("blast: MergeShards needs at least one shard")
	}
	var tmpl *ShardResult
	var missing []int
	for s, part := range parts {
		if part == nil {
			missing = append(missing, s)
			continue
		}
		if part.numShards != numShards || part.shard != s {
			return nil, fmt.Errorf("blast: shard result %d/%d at position %d of %d",
				part.shard, part.numShards, s, numShards)
		}
		if len(part.results) != len(queries) {
			return nil, fmt.Errorf("blast: shard %d returned %d results for %d queries",
				s, len(part.results), len(queries))
		}
		if tmpl == nil {
			tmpl = part
		}
	}
	if tmpl == nil {
		return nil, fmt.Errorf("blast: %w: all %d shards missing", ErrShardUnavailable, numShards)
	}
	enc := make([][]alphabet.Code, len(queries))
	for i, s := range queries {
		q, err := alphabet.Encode([]byte(s))
		if err != nil {
			return nil, fmt.Errorf("blast: query %d: %w", i, err)
		}
		enc[i] = q
	}

	maxResults := tmpl.maxHits()

	out := &BatchResult{
		Results:   make([]*Result, len(queries)),
		Completed: make([]bool, len(queries)),
		QueryErrs: make([]error, len(queries)),
	}
	var errs []error
	for _, part := range parts {
		if part == nil {
			continue
		}
		out.Sched.Workers = max(out.Sched.Workers, part.sched.Workers)
		out.Sched.Scheduler = part.sched.Scheduler
		out.Sched.Tasks += part.sched.Tasks
		out.Sched.BusyNanos += part.sched.BusyNanos
		out.Sched.StallNanos += part.sched.StallNanos
		out.Sched.ElapsedNanos = max(out.Sched.ElapsedNanos, part.sched.ElapsedNanos)
		out.Sched.TasksPanicked += part.sched.TasksPanicked
		out.Sched.TasksCancelled += part.sched.TasksCancelled
		out.Sched.QueriesAborted += part.sched.QueriesAborted
		out.Sched.DeadlineExceeded = out.Sched.DeadlineExceeded || part.sched.DeadlineExceeded
		if part.err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", part.shard, part.err))
		}
	}
	for _, s := range missing {
		errs = append(errs, fmt.Errorf("shard %d: %w", s, ErrShardUnavailable))
	}
	out.Err = errors.Join(errs...)

	for qi := range queries {
		completed := len(missing) == 0
		var qerr error
		if !completed {
			qerr = ErrShardUnavailable
		}
		for _, part := range parts {
			if part == nil {
				continue
			}
			if !part.completed[qi] {
				completed = false
				if qerr == nil {
					qerr = part.queryErrs[qi]
				}
			}
		}
		if !completed {
			out.Results[qi] = &Result{QueryLen: len(enc[qi])}
			out.QueryErrs[qi] = qerr
			continue
		}
		merged := search.QueryResult{Query: qi}
		var refs []hspRef
		for s, part := range parts {
			if part == nil {
				continue
			}
			res := &part.results[qi]
			for li, h := range res.HSPs {
				h.Subject = h.Subject*numShards + s // restore the monolithic id
				merged.HSPs = append(merged.HSPs, h)
				refs = append(refs, hspRef{part: part, local: li})
			}
			merged.Stats.Add(res.Stats)
		}
		// Monolithic ranking over monolithic ids, then the monolithic cap:
		// exactly what Finalize does after traceback on the whole database.
		// The sort permutes the provenance refs alongside, so each surviving
		// HSP can still reach its shard's identity/origin view — resident
		// database for attached results, wire side records for detached ones.
		sortHSPsWithRefs(merged.HSPs, refs)
		if maxResults > 0 && len(merged.HSPs) > maxResults {
			merged.HSPs = merged.HSPs[:maxResults]
			refs = refs[:maxResults]
		}
		q := enc[qi]
		out.Results[qi] = convertHSPs(q, merged,
			func(i int, h *search.HSP) float64 { return refs[i].part.hspIdentity(q, qi, refs[i].local, h) },
			func(i int, h *search.HSP) (chunkInfo, bool) { return refs[i].part.hspOrigin(qi, refs[i].local, h) })
		out.Completed[qi] = true
	}
	return out, nil
}

// hspRef records which shard result a merged HSP came from and its index in
// that shard's per-query HSP list — the provenance the merge needs to route
// identity/origin lookups after sorting mixes shards together.
type hspRef struct {
	part  *ShardResult
	local int
}

// sortHSPsWithRefs sorts hsps exactly as search.SortHSPs does (stable,
// monolithic comparator) while permuting the provenance refs the same way.
// Generic over the ref type: the shard merge carries hspRef, the tiered
// (base+deltas) merge carries tierHSPRef.
func sortHSPsWithRefs[R any](hsps []search.HSP, refs []R) {
	idx := make([]int, len(hsps))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return search.LessHSP(&hsps[idx[a]], &hsps[idx[b]]) })
	outH := make([]search.HSP, len(hsps))
	outR := make([]R, len(refs))
	for i, j := range idx {
		outH[i] = hsps[j]
		outR[i] = refs[j]
	}
	copy(hsps, outH)
	copy(refs, outR)
}
