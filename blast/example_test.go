package blast_test

import (
	"fmt"
	"log"

	"repro/blast"
)

// Example demonstrates the index-once, search-many workflow: build a
// database, search a peptide, and read the ranked hits.
func Example() {
	db, err := blast.NewDatabase([]blast.Sequence{
		{Name: "P53_HUMAN", Residues: "SVTCTYSPALNKMFCQLAKTCPVQLWVDSTPPPGTRVRAMAIYKQSQHMTEVVRRCPHHE"},
		{Name: "RECA_ECOLI", Residues: "MAIDENKQKALAAALGQIEKQFGKGSIMRLGEDRSMDVETISTGSLSLDIALGAGGLPMG"},
	}, blast.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}

	res, err := db.Search("TCTYSPALNKMFCQLAKTCPVELWV")
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range res.Hits {
		fmt.Printf("%s raw=%d identity=%.0f%%\n", h.SubjectName, h.Score, 100*h.Identity)
	}
	// Output:
	// P53_HUMAN raw=140 identity=96%
}
