package blast

import (
	"context"
	"fmt"

	"repro/internal/alphabet"
	"repro/internal/search"
)

// ErrDeadline is re-exported from the search layer: BatchResult.Err wraps it
// (and context.DeadlineExceeded) when a batch hit Params.Timeout or the
// caller's context deadline.
var ErrDeadline = search.ErrDeadline

// BatchResult is the outcome of a context-aware batch search. The batch as a
// whole may have been cut short (Err non-nil after cancellation or a
// deadline) or individual queries may have failed alone (a panicking task
// poisons only its query); either way every query flagged in Completed
// carries a Result byte-identical to an undisturbed run.
type BatchResult struct {
	// Results has one entry per input query. Entries whose Completed flag
	// is false are zero-valued placeholders, not partial output.
	Results []*Result
	// Completed[i] reports whether query i finished every block.
	Completed []bool
	// QueryErrs[i] is nil for completed queries; otherwise a typed reason:
	// search.TaskPanicError (with block/query attribution) for a poisoned
	// query, search.QueryCancelledError after cancellation or deadline.
	QueryErrs []error
	// Sched carries the scheduler's utilization and failure counters.
	Sched search.SchedStats
	// Err is nil when the batch ran to the end (even if some queries were
	// poisoned); it wraps ErrDeadline or context.Canceled when the batch
	// was cut short.
	Err error
}

// CompletedCount returns how many queries finished.
func (b *BatchResult) CompletedCount() int {
	n := 0
	for _, done := range b.Completed {
		if done {
			n++
		}
	}
	return n
}

// SearchBatchCtx runs a batch of queries through the muBLASTP engine under
// ctx: cancelling ctx stops the batch between tasks, Params.Timeout (if set)
// imposes a deadline on top of ctx, and a panicking task fails only its own
// query. The returned error is non-nil only for invalid input (a query that
// cannot be encoded); runtime failures are reported per query inside the
// BatchResult so partial results stay usable.
func (d *Database) SearchBatchCtx(ctx context.Context, queries []string) (*BatchResult, error) {
	if d.tiers != nil {
		return d.searchTieredBatch(ctx, queries)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if d.params.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d.params.Timeout)
		defer cancel()
	}
	enc := make([][]alphabet.Code, len(queries))
	for i, s := range queries {
		q, err := alphabet.Encode([]byte(s))
		if err != nil {
			return nil, fmt.Errorf("blast: query %d: %w", i, err)
		}
		enc[i] = q
	}
	br := d.mu.SearchBatchCtx(ctx, enc, d.params.Threads)
	out := &BatchResult{
		Results:   make([]*Result, len(br.Results)),
		Completed: br.Completed,
		QueryErrs: br.QueryErrs,
		Sched:     br.Sched,
		Err:       br.Err,
	}
	for i := range br.Results {
		if br.Completed[i] {
			out.Results[i] = d.convert(enc[i], br.Results[i])
		} else {
			out.Results[i] = &Result{QueryLen: len(enc[i])}
		}
	}
	return out, nil
}
