package blast

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/alphabet"
	"repro/internal/seqgen"
)

// sessionFixture builds two distinct small databases (A and B), saves both
// as containers, and returns a query drawn from A's sequences (so it hits in
// both: B includes A's sequences plus more).
func sessionFixture(t *testing.T, p Params) (pathA, pathB, query string) {
	t.Helper()
	dir := t.TempDir()
	g := seqgen.New(seqgen.UniprotProfile(), 99)
	raw := g.Database(14)
	var seqsA, seqsB []Sequence
	for i, s := range raw {
		seq := Sequence{Name: nameFor(i), Residues: alphabet.String(s)}
		if i < 10 {
			seqsA = append(seqsA, seq)
		}
		seqsB = append(seqsB, seq)
	}
	query = seqsA[3].Residues
	if len(query) > 120 {
		query = query[:120]
	}
	pathA = filepath.Join(dir, "a.mublastp")
	pathB = filepath.Join(dir, "b.mublastp")
	for _, f := range []struct {
		path string
		seqs []Sequence
	}{{pathA, seqsA}, {pathB, seqsB}} {
		db, err := NewDatabase(f.seqs, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.SaveFile(f.path); err != nil {
			t.Fatal(err)
		}
	}
	return pathA, pathB, query
}

func sessionParams() Params {
	p := DefaultParams()
	p.BlockResidues = 2048
	return p
}

// TestSessionConcurrentReload is the hot-reload identity gate: searches
// running while Reload swaps the container must return byte-identical
// results for whichever generation they pinned, and the swap itself must be
// atomic (every search sees exactly database A or exactly database B).
func TestSessionConcurrentReload(t *testing.T) {
	p := sessionParams()
	pathA, pathB, query := sessionFixture(t, p)

	wantA := directResult(t, pathA, p, query)
	wantB := directResult(t, pathB, p, query)
	if reflect.DeepEqual(wantA.Hits, wantB.Hits) {
		t.Fatal("fixture defect: databases A and B answer identically; the test cannot tell generations apart")
	}

	ses, err := OpenSession(pathA, p)
	if err != nil {
		t.Fatal(err)
	}
	dbA := ses.DB()

	const searchers = 8
	stop := make(chan struct{})
	errs := make(chan error, searchers)
	var wg sync.WaitGroup
	for i := 0; i < searchers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				db, release := ses.Acquire()
				res, err := db.Search(query)
				want := wantB
				if db == dbA {
					want = wantA
				}
				release()
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(res.Hits, want.Hits) {
					errs <- errors.New("search result diverged from its generation's reference result")
					return
				}
			}
		}()
	}

	// Let the searchers spin, then swap mid-flight.
	time.Sleep(20 * time.Millisecond)
	if err := ses.Reload(pathB); err != nil {
		t.Fatalf("Reload: %v", err)
	}
	if g := ses.Generation(); g != 2 {
		t.Errorf("generation after reload = %d, want 2", g)
	}
	if n := ses.Reloads(); n != 1 {
		t.Errorf("reloads = %d, want 1", n)
	}
	// Post-reload searches must serve B.
	res, err := ses.DB().Search(query)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Hits, wantB.Hits) {
		t.Error("post-reload search does not match database B")
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// directResult is the reference answer: a fresh Load and a single search,
// with no session machinery involved.
func directResult(t *testing.T, path string, p Params, query string) *Result {
	t.Helper()
	db, err := LoadFile(path, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Search(query)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSessionReloadRejectsCorrupt flips one byte of the replacement
// container and asserts Reload fails typed with the old database untouched
// and still serving correct results.
func TestSessionReloadRejectsCorrupt(t *testing.T) {
	p := sessionParams()
	pathA, pathB, query := sessionFixture(t, p)
	wantA := directResult(t, pathA, p, query)

	art, err := os.ReadFile(pathB)
	if err != nil {
		t.Fatal(err)
	}
	for _, offset := range []int{5, len(art) / 2, len(art) - 3} {
		mut := append([]byte(nil), art...)
		mut[offset] ^= 0x20
		corruptPath := filepath.Join(t.TempDir(), "corrupt.mublastp")
		if err := os.WriteFile(corruptPath, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		ses, err := OpenSession(pathA, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := ses.Reload(corruptPath); err == nil {
			t.Fatalf("Reload of container with byte %d flipped succeeded", offset)
		} else if !isTyped(err) {
			t.Errorf("Reload error for flipped byte %d is untyped: %v", offset, err)
		}
		if g := ses.Generation(); g != 1 {
			t.Errorf("generation after rejected reload = %d, want 1", g)
		}
		if n := ses.Reloads(); n != 0 {
			t.Errorf("reloads after rejected reload = %d, want 0", n)
		}
		res, err := ses.DB().Search(query)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Hits, wantA.Hits) {
			t.Error("old database no longer serving identical results after rejected reload")
		}
	}
}

// TestSessionReloadRejectsParamsMismatch: a structurally valid container
// built with a different neighbor threshold must be refused.
func TestSessionReloadRejectsParamsMismatch(t *testing.T) {
	p := sessionParams()
	pathA, _, query := sessionFixture(t, p)
	wantA := directResult(t, pathA, p, query)

	drifted := sessionParams()
	drifted.NeighborThreshold = 13
	_, pathDrift, _ := sessionFixture(t, drifted)

	ses, err := OpenSession(pathA, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := ses.Reload(pathDrift); !errors.Is(err, ErrParamsMismatch) {
		t.Fatalf("Reload with drifted params: err = %v, want ErrParamsMismatch", err)
	}
	res, err := ses.DB().Search(query)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Hits, wantA.Hits) {
		t.Error("old database no longer serving identical results after params-mismatch reload")
	}
}

// TestSessionReloadDrains: Reload must not return while a search still pins
// the displaced generation, and must return promptly once it is released.
func TestSessionReloadDrains(t *testing.T) {
	p := sessionParams()
	pathA, pathB, _ := sessionFixture(t, p)
	ses, err := OpenSession(pathA, p)
	if err != nil {
		t.Fatal(err)
	}
	_, release := ses.Acquire()
	done := make(chan error, 1)
	go func() { done <- ses.Reload(pathB) }()
	select {
	case err := <-done:
		t.Fatalf("Reload returned (%v) while a search still pinned the old generation", err)
	case <-time.After(100 * time.Millisecond):
	}
	// The swap must become visible while Reload is still draining: new
	// acquires get generation 2 before the pinned search releases. (Polled,
	// not asserted at an instant — verify+load may still be running.)
	swapDeadline := time.Now().Add(10 * time.Second)
	for ses.Generation() != 2 {
		select {
		case err := <-done:
			t.Fatalf("Reload returned (%v) while a search still pinned the old generation", err)
		default:
		}
		if time.Now().After(swapDeadline) {
			t.Fatal("swap never became visible while Reload drained")
		}
		time.Sleep(2 * time.Millisecond)
	}
	release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Reload: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Reload never returned after the pinned search released")
	}
}

// TestSessionRefcountBalance pins the reload error paths against generation
// leaks: every rejected Reload — missing path, corrupt container, params
// mismatch — must leave the serving generation's refcount at exactly 1 (the
// session's own reference) and the generation number unchanged, so the old
// database can still drain and be released on the next successful swap.
func TestSessionRefcountBalance(t *testing.T) {
	p := sessionParams()
	pathA, pathB, query := sessionFixture(t, p)
	ses, err := OpenSession(pathA, p)
	if err != nil {
		t.Fatal(err)
	}
	if ses.Refs() != 1 {
		t.Fatalf("fresh session Refs() = %d, want 1", ses.Refs())
	}
	gen := ses.Generation()

	// A pinned search raises the count; release restores it.
	_, release := ses.Acquire()
	if ses.Refs() != 2 {
		t.Fatalf("after Acquire Refs() = %d, want 2", ses.Refs())
	}
	release()
	if ses.Refs() != 1 {
		t.Fatalf("after release Refs() = %d, want 1", ses.Refs())
	}

	// Failure modes, each of which must not touch the refcount or swap.
	corrupt := filepath.Join(t.TempDir(), "corrupt.mublastp")
	data, err := os.ReadFile(pathB)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(corrupt, data, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{
		filepath.Join(t.TempDir(), "missing.mublastp"),
		corrupt,
		t.TempDir(), // a directory that is not an ingest store
	} {
		if err := ses.Reload(path); err == nil {
			t.Fatalf("Reload(%s) succeeded, want rejection", path)
		}
		if ses.Refs() != 1 {
			t.Fatalf("after rejected Reload(%s) Refs() = %d, want 1", path, ses.Refs())
		}
		if ses.Generation() != gen {
			t.Fatalf("rejected Reload(%s) advanced generation %d -> %d", path, gen, ses.Generation())
		}
	}
	if err := ses.ReloadDB(nil); err == nil {
		t.Fatal("ReloadDB(nil) succeeded")
	}
	if ses.Refs() != 1 || ses.Generation() != gen {
		t.Fatalf("after ReloadDB(nil): Refs=%d gen=%d, want 1/%d", ses.Refs(), ses.Generation(), gen)
	}

	// The session still works and a real reload still swaps cleanly.
	if res, err := ses.DB().Search(query); err != nil || len(res.Hits) == 0 {
		t.Fatalf("search after rejected reloads: %v (%d hits)", err, len(res.Hits))
	}
	if err := ses.Reload(pathB); err != nil {
		t.Fatal(err)
	}
	if ses.Refs() != 1 || ses.Generation() != gen+1 {
		t.Fatalf("after successful Reload: Refs=%d gen=%d, want 1/%d", ses.Refs(), ses.Generation(), gen+1)
	}
}

// TestSessionReloadStore covers the delta-aware reload path: a session
// serving a container can Reload onto an ingest-store directory (tiered
// database), onto the same store after more ingestion via ReloadDB, and is
// protected by the same verify-before-swap when the store is corrupt.
func TestSessionReloadStore(t *testing.T) {
	p := storeParams()
	base := storeSeqs(20, 121, "base")
	batch := storeSeqs(6, 122, "inc")
	dir := t.TempDir()
	st, err := InitStore(dir, base, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(batch); err != nil {
		t.Fatal(err)
	}

	baseOnly, err := NewDatabase(base, p)
	if err != nil {
		t.Fatal(err)
	}
	ses := NewSession(baseOnly, p)
	if err := ses.Reload(dir); err != nil {
		t.Fatal(err)
	}
	db := ses.DB()
	if !db.Tiered() {
		t.Fatal("session reloaded a store with deltas into an untiered database")
	}
	rebuild, err := NewDatabase(concat(base, batch), p)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSearch(t, "session store reload", db, rebuild,
		[]string{queryFrom(base, 120), batch[0].Residues})

	// In-process ingest path: Append + ReloadDB from the live Store.
	more := storeSeqs(4, 123, "more")
	if _, err := st.Append(more); err != nil {
		t.Fatal(err)
	}
	next, err := st.Database()
	if err != nil {
		t.Fatal(err)
	}
	if err := ses.ReloadDB(next); err != nil {
		t.Fatal(err)
	}
	if ses.Refs() != 1 {
		t.Fatalf("after ReloadDB Refs() = %d, want 1", ses.Refs())
	}
	rebuild2, err := NewDatabase(concat(base, batch, more), p)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSearch(t, "session ingest reload", ses.DB(), rebuild2,
		[]string{queryFrom(base, 120), more[0].Residues})

	// Corrupt store: verify-before-swap keeps the current generation.
	gen := ses.Generation()
	manPath := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manPath, append(data, '!'), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ses.Reload(dir); err == nil {
		t.Fatal("Reload accepted a corrupt store")
	}
	if ses.Refs() != 1 || ses.Generation() != gen {
		t.Fatalf("after rejected store reload: Refs=%d gen=%d, want 1/%d", ses.Refs(), ses.Generation(), gen)
	}
}
