package blast

import (
	"errors"
	"fmt"

	"repro/internal/alphabet"
	"repro/internal/gapped"
	"repro/internal/search"
)

// This file defines the portable (JSON) form of a ShardResult, so a shard
// search can run in another process — a remote mublastpd serving one shard
// container — and still merge byte-identically at the router. Two facts make
// that possible without shipping the database over the wire:
//
//   - encoding/json round-trips float64 exactly (shortest-representation
//     marshal, exact unmarshal), so bit scores and E-values survive the hop
//     bit for bit;
//   - everything the merge would otherwise read from the shard's resident
//     database — the alignment identity fraction (subject residues) and the
//     split-chunk origin (chunkOrigin map) — is computed shard-side at Wire
//     time and carried as per-HSP side records, against exactly the data a
//     local merge would consult.
//
// Subject ids stay shard-local on the wire; MergeShards restores monolithic
// ids, re-ranks, re-caps, and deduplicates chunk overlaps across shards the
// same way it does for attached results.

// WireHSP is one HSP in shard-local form plus the merge side records.
type WireHSP struct {
	Subject     int     `json:"subject"` // shard-local sequence id
	SubjectName string  `json:"subject_name"`
	Score       int     `json:"score"`
	QStart      int     `json:"query_start"` // 0-based, half-open
	QEnd        int     `json:"query_end"`
	SStart      int     `json:"subject_start"` // raw (chunk) coordinates; origin offset applied at merge
	SEnd        int     `json:"subject_end"`
	Ops         string  `json:"ops"`
	BitScore    float64 `json:"bit_score"`
	EValue      float64 `json:"evalue"`
	Identity    float64 `json:"identity"`
	OrigName    string  `json:"orig_name,omitempty"` // split-chunk origin, when the subject is a chunk
	OrigOffset  int     `json:"orig_offset,omitempty"`
	HasOrigin   bool    `json:"has_origin,omitempty"`
}

// ShardQueryWire is one query's outcome on one shard.
type ShardQueryWire struct {
	Completed bool         `json:"completed"`
	Err       string       `json:"err,omitempty"`
	Stats     search.Stats `json:"stats"`
	HSPs      []WireHSP    `json:"hsps,omitempty"`
}

// ShardResultWire is the portable form of a ShardResult: what a remote shard
// worker returns from a shard search, and what ImportShardResult rebuilds
// into a detached ShardResult for MergeShards.
type ShardResultWire struct {
	Shard      int               `json:"shard"`
	NumShards  int               `json:"num_shards"`
	MaxResults int               `json:"max_results"`
	Err        string            `json:"err,omitempty"`
	Sched      search.SchedStats `json:"sched"`
	Queries    []ShardQueryWire  `json:"queries"`
}

// Wire converts a shard result (fresh from SearchShardBatchCtx) into its
// portable form. queries must be the same batch the shard searched: the
// identity side records need the query residues. Detached results — tiered
// (base+deltas) shard searches, which precompute their side records — wire
// their sidecar verbatim.
func (r *ShardResult) Wire(queries []string) (*ShardResultWire, error) {
	if r.db == nil && r.sidecar == nil {
		return nil, errors.New("blast: Wire needs a shard result from SearchShardBatchCtx")
	}
	if len(queries) != len(r.results) {
		return nil, fmt.Errorf("blast: Wire got %d queries for a %d-query shard result", len(queries), len(r.results))
	}
	w := &ShardResultWire{
		Shard:      r.shard,
		NumShards:  r.numShards,
		MaxResults: r.maxHits(),
		Sched:      r.sched,
		Queries:    make([]ShardQueryWire, len(r.results)),
	}
	if r.err != nil {
		w.Err = r.err.Error()
	}
	for qi := range r.results {
		qw := &w.Queries[qi]
		qw.Completed = r.completed[qi]
		if r.queryErrs[qi] != nil {
			qw.Err = r.queryErrs[qi].Error()
		}
		qw.Stats = r.results[qi].Stats
		hsps := r.results[qi].HSPs
		if !r.completed[qi] || len(hsps) == 0 {
			continue
		}
		q, err := alphabet.Encode([]byte(queries[qi]))
		if err != nil {
			return nil, fmt.Errorf("blast: Wire query %d: %w", qi, err)
		}
		qw.HSPs = make([]WireHSP, len(hsps))
		for i := range hsps {
			h := &hsps[i]
			qw.HSPs[i] = WireHSP{
				Subject:     h.Subject,
				SubjectName: h.SubjectName,
				Score:       h.Aln.Score,
				QStart:      h.Aln.QStart,
				QEnd:        h.Aln.QEnd,
				SStart:      h.Aln.SStart,
				SEnd:        h.Aln.SEnd,
				Ops:         string(h.Aln.Ops),
				BitScore:    h.BitScore,
				EValue:      h.EValue,
			}
			if r.db != nil {
				qw.HSPs[i].Identity = identity(q, r.db.db.Seqs[h.Subject].Data, &h.Aln)
				if info, ok := r.db.chunkOrigin[h.SubjectName]; ok {
					qw.HSPs[i].OrigName = info.origName
					qw.HSPs[i].OrigOffset = info.offset
					qw.HSPs[i].HasOrigin = true
				}
			} else {
				m := &r.sidecar[qi][i]
				qw.HSPs[i].Identity = m.identity
				qw.HSPs[i].OrigName = m.origName
				qw.HSPs[i].OrigOffset = m.offset
				qw.HSPs[i].HasOrigin = m.hasOrigin
			}
		}
	}
	return w, nil
}

// ImportShardResult rebuilds a detached ShardResult from its wire form. The
// result merges through MergeShards exactly like an attached one; it only
// lacks trace-irrelevant internals (no resident database). Structural
// invalidity (shard out of range, negative subject ids) is an error;
// incompleteness is not — it rides through the usual Completed flags.
func ImportShardResult(w *ShardResultWire) (*ShardResult, error) {
	if w.NumShards <= 0 || w.Shard < 0 || w.Shard >= w.NumShards {
		return nil, fmt.Errorf("blast: shard result %d of %d out of range", w.Shard, w.NumShards)
	}
	r := &ShardResult{
		shard:      w.Shard,
		numShards:  w.NumShards,
		maxResults: w.MaxResults,
		sched:      w.Sched,
		results:    make([]search.QueryResult, len(w.Queries)),
		completed:  make([]bool, len(w.Queries)),
		queryErrs:  make([]error, len(w.Queries)),
		sidecar:    make([][]hspMeta, len(w.Queries)),
	}
	if w.Err != "" {
		r.err = errors.New(w.Err)
	}
	for qi := range w.Queries {
		qw := &w.Queries[qi]
		r.completed[qi] = qw.Completed
		if qw.Err != "" {
			r.queryErrs[qi] = errors.New(qw.Err)
		}
		res := search.QueryResult{Query: qi, Stats: qw.Stats}
		if n := len(qw.HSPs); n > 0 {
			res.HSPs = make([]search.HSP, n)
			metas := make([]hspMeta, n)
			for i := range qw.HSPs {
				wh := &qw.HSPs[i]
				if wh.Subject < 0 {
					return nil, fmt.Errorf("blast: shard %d query %d hsp %d: negative subject id", w.Shard, qi, i)
				}
				res.HSPs[i] = search.HSP{
					Subject:     wh.Subject,
					SubjectName: wh.SubjectName,
					Aln: gapped.Alignment{
						Score:  wh.Score,
						QStart: wh.QStart,
						QEnd:   wh.QEnd,
						SStart: wh.SStart,
						SEnd:   wh.SEnd,
						Ops:    []gapped.EditOp(wh.Ops),
					},
					BitScore: wh.BitScore,
					EValue:   wh.EValue,
				}
				metas[i] = hspMeta{
					identity:  wh.Identity,
					origName:  wh.OrigName,
					offset:    wh.OrigOffset,
					hasOrigin: wh.HasOrigin,
				}
			}
			r.sidecar[qi] = metas
		}
		r.results[qi] = res
	}
	return r, nil
}
