package blast

import (
	"testing"

	"repro/internal/faultinject"
)

// TestStoreCrashAtEveryBoundary is the seed-deterministic crash drill the
// issue demands: arm an injected error at every fsync/rename boundary of
// the commit protocol in turn — each fault aborts the Append exactly where
// a crash would — then run recovery and assert the invariant that makes the
// store crash-safe: the recovered state is byte-identical to either the
// pre-commit or the post-commit database (never a hybrid), it passes full
// verification, and it keeps accepting writes.
//
// The WAL fsync is the commit point, so the expectation per site is sharp:
// a fault before the WAL record is durable recovers to the pre-commit
// state; a fault anywhere after recovers to post-commit (recovery replays
// the record into the delta deterministically). The injected wal.sync fault
// leaves an intact record on disk — a real crash could also tear it, which
// TestStoreWALTornTail covers — so it lands post-commit here.
func TestStoreCrashAtEveryBoundary(t *testing.T) {
	base := storeSeqs(25, 101, "base")
	batch := storeSeqs(6, 102, "inc")
	p := storeParams()
	queries := []string{queryFrom(base, 120), batch[0].Residues}

	preDB, err := NewDatabase(base, p)
	if err != nil {
		t.Fatal(err)
	}
	postDB, err := NewDatabase(concat(base, batch), p)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		spec      string // one boundary = one armed site
		wantErr   bool   // Append must surface the fault...
		wantState string // ...and recovery must land exactly here
	}{
		{"store.wal.append=error#1", true, "pre"},
		{"store.wal.sync=error#1", true, "post"}, // record intact on disk => replay
		{"store.delta.write=error#1", true, "post"},
		{"store.delta.sync=error#1", true, "post"},
		{"store.delta.rename=error#1", true, "post"},
		{"store.dir.sync=error#1", true, "post"}, // delta visible-but-unsynced dir
		{"store.manifest.write=error#1", true, "post"},
		{"store.manifest.sync=error#1", true, "post"},
		{"store.manifest.rename=error#1", true, "post"},
		{"store.dir.sync=error#2", true, "post"},   // manifest renamed, dir sync lost
		{"store.wal.reset=error#1", false, "post"}, // post-commit housekeeping only
	}
	for _, tc := range cases {
		t.Run(tc.spec, func(t *testing.T) {
			dir := t.TempDir()
			st, err := InitStore(dir, base, p)
			if err != nil {
				t.Fatal(err)
			}
			if err := faultinject.Enable(tc.spec, 1); err != nil {
				t.Fatal(err)
			}
			_, appendErr := st.Append(batch)
			faultinject.Disable()
			if (appendErr != nil) != tc.wantErr {
				t.Fatalf("Append error = %v, wantErr=%v", appendErr, tc.wantErr)
			}
			if appendErr != nil {
				// A failed commit poisons the handle: crash-equivalent
				// semantics demand a reopen, not a retry on stale state.
				if _, err := st.Append(batch); err == nil {
					t.Fatal("poisoned store accepted a retry without recovery")
				}
				if err := st.Compact(); err == nil {
					t.Fatal("poisoned store accepted Compact without recovery")
				}
			}

			// Recovery: reopen as a crashed-and-restarted process would.
			st2, err := OpenStore(dir, p)
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			// Counts are post-split, so compare against the rebuilds'.
			var want *Database
			switch n := st2.NumSequences(); n {
			case preDB.NumSequences():
				if tc.wantState != "pre" {
					t.Fatalf("recovered to pre-commit state, want %s", tc.wantState)
				}
				want = preDB
			case postDB.NumSequences():
				if tc.wantState != "post" {
					t.Fatalf("recovered to post-commit state, want %s", tc.wantState)
				}
				want = postDB
			default:
				t.Fatalf("recovered to %d sequences — neither pre (%d) nor post (%d)",
					n, preDB.NumSequences(), postDB.NumSequences())
			}
			if _, err := VerifyStore(dir); err != nil {
				t.Fatalf("recovered store fails verification: %v", err)
			}
			db, err := st2.Database()
			if err != nil {
				t.Fatal(err)
			}
			assertSameSearch(t, tc.spec, db, want, queries)

			// The recovered store must keep working: if the batch was lost,
			// ingest it again; either way a further batch must commit.
			if want == preDB {
				if _, err := st2.Append(batch); err != nil {
					t.Fatalf("re-append after rollback: %v", err)
				}
			}
			more := storeSeqs(3, 103, "more")
			if _, err := st2.Append(more); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			if _, err := VerifyStore(dir); err != nil {
				t.Fatalf("final verification: %v", err)
			}
			final, err := st2.Database()
			if err != nil {
				t.Fatal(err)
			}
			finalWant, err := NewDatabase(concat(base, batch, more), p)
			if err != nil {
				t.Fatal(err)
			}
			assertSameSearch(t, tc.spec+"/final", final, finalWant, append(queries, more[0].Residues))
		})
	}
}

// TestStoreCrashDuringCompaction arms faults at the container and manifest
// boundaries of Compact: a failed compaction must leave the tiered store
// intact (verification passes, search unchanged) — verify-before-swap means
// the old generation keeps serving.
func TestStoreCrashDuringCompaction(t *testing.T) {
	base := storeSeqs(20, 111, "base")
	batch := storeSeqs(5, 112, "inc")
	p := storeParams()
	want, err := NewDatabase(concat(base, batch), p)
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{queryFrom(base, 120), batch[0].Residues}

	for _, spec := range []string{
		"store.delta.write=error#1", // compaction writes the new base through the same sites
		"store.delta.sync=error#1",
		"store.delta.rename=error#1",
		"store.manifest.write=error#1",
		"store.manifest.rename=error#1",
	} {
		t.Run(spec, func(t *testing.T) {
			dir := t.TempDir()
			st, err := InitStore(dir, base, p)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := st.Append(batch); err != nil {
				t.Fatal(err)
			}
			if err := faultinject.Enable(spec, 1); err != nil {
				t.Fatal(err)
			}
			compactErr := st.Compact()
			faultinject.Disable()
			if compactErr == nil {
				t.Fatal("Compact succeeded with an armed fault")
			}
			st2, err := OpenStore(dir, p)
			if err != nil {
				t.Fatalf("recovery after failed compaction: %v", err)
			}
			if st2.NumSequences() != want.NumSequences() {
				t.Fatalf("recovered store holds %d sequences, want %d",
					st2.NumSequences(), want.NumSequences())
			}
			if _, err := VerifyStore(dir); err != nil {
				t.Fatalf("recovered store fails verification: %v", err)
			}
			db, err := st2.Database()
			if err != nil {
				t.Fatal(err)
			}
			assertSameSearch(t, spec, db, want, queries)
			// And a retried compaction with the fault gone must succeed.
			if err := st2.Compact(); err != nil {
				t.Fatalf("retried compaction: %v", err)
			}
			db2, err := st2.Database()
			if err != nil {
				t.Fatal(err)
			}
			if db2.Tiered() {
				t.Fatal("retried compaction left a tiered database")
			}
			assertSameSearch(t, spec+"/compacted", db2, want, queries)
		})
	}
}
