package blast

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/seqgen"
)

// roundTrip pushes an attached shard result through the wire form — real
// JSON marshal/unmarshal, the same bytes a remote worker would send — and
// rebuilds it detached.
func roundTrip(t *testing.T, part *ShardResult, queries []string) *ShardResult {
	t.Helper()
	w, err := part.Wire(queries)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var decoded ShardResultWire
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	imported, err := ImportShardResult(&decoded)
	if err != nil {
		t.Fatal(err)
	}
	return imported
}

// TestShardWireRoundTripByteIdentical is the remote-merge invariant: merging
// detached (JSON round-tripped) shard results must be byte-identical to
// merging the attached originals — and hence to the monolithic search. Every
// mix of attached and detached parts must agree, since a fleet can pair
// in-process and remote replicas for one request.
func TestShardWireRoundTripByteIdentical(t *testing.T) {
	db, seqs := testDatabase(t)
	queries := shardQueries(seqs)
	const n = 3
	shards, err := db.Shards(n)
	if err != nil {
		t.Fatal(err)
	}
	attached := make([]*ShardResult, n)
	for s, sd := range shards {
		if attached[s], err = sd.SearchShardBatchCtx(context.Background(), queries, s, n); err != nil {
			t.Fatal(err)
		}
	}
	want, err := MergeShards(queries, attached)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for qi := range queries {
		hits += len(want.Results[qi].Hits)
	}
	if hits == 0 {
		t.Fatal("attached merge found nothing; the equivalence check would be vacuous")
	}

	// mask selects which parts go over the wire; every combination must merge
	// to the same bytes.
	for mask := 1; mask < 1<<n; mask++ {
		parts := make([]*ShardResult, n)
		for s := range parts {
			if mask&(1<<s) != 0 {
				parts[s] = roundTrip(t, attached[s], queries)
			} else {
				parts[s] = attached[s]
			}
		}
		got, err := MergeShards(queries, parts)
		if err != nil {
			t.Fatalf("mask %b: %v", mask, err)
		}
		for qi := range queries {
			if got.Completed[qi] != want.Completed[qi] {
				t.Fatalf("mask %b query %d: completed=%v, attached merge %v", mask, qi, got.Completed[qi], want.Completed[qi])
			}
			g, w := got.Results[qi], want.Results[qi]
			if len(g.Hits) != len(w.Hits) {
				t.Fatalf("mask %b query %d: %d hits, attached merge %d", mask, qi, len(g.Hits), len(w.Hits))
			}
			for j := range w.Hits {
				if g.Hits[j] != w.Hits[j] {
					t.Fatalf("mask %b query %d hit %d:\n got  %+v\n want %+v", mask, qi, j, g.Hits[j], w.Hits[j])
				}
			}
			if gt, wt := g.Tabular("q"), w.Tabular("q"); gt != wt {
				t.Fatalf("mask %b query %d: rendered output differs:\n got:\n%s\n want:\n%s", mask, qi, gt, wt)
			}
		}
	}
}

// TestShardWireSplitChunkOrigins pins the side-record path the detached
// merge leans on: with long-sequence splitting active, a wire-imported shard
// result must still map chunk hits back to original-sequence coordinates and
// deduplicate overlap-region hits exactly like the attached merge.
func TestShardWireSplitChunkOrigins(t *testing.T) {
	g := seqgen.New(seqgen.UniprotProfile(), 99)
	raw := g.Database(60)
	seqs := make([]Sequence, len(raw))
	long := 0
	for i, s := range raw {
		seqs[i] = Sequence{Name: nameFor(i), Residues: alphabet.String(s)}
	}
	// Append one sequence long enough to be split so chunk origins exist.
	base := seqs[len(seqs)-1].Residues
	for len(base) < 600 {
		base += seqs[long%len(seqs)].Residues
		long++
	}
	seqs = append(seqs, Sequence{Name: "longboi", Residues: base})

	p := DefaultParams()
	p.BlockResidues = 16384
	p.SplitLongerThan = 200
	p.SplitOverlap = 50
	db, err := NewDatabase(seqs, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.chunkOrigin) == 0 {
		t.Fatal("no split chunks; the origin check would be vacuous")
	}
	// A query from the middle of the long sequence crosses chunk overlaps.
	queries := []string{base[180:340], base[:120]}

	const n = 2
	shards, err := db.Shards(n)
	if err != nil {
		t.Fatal(err)
	}
	attached := make([]*ShardResult, n)
	detached := make([]*ShardResult, n)
	for s, sd := range shards {
		if attached[s], err = sd.SearchShardBatchCtx(context.Background(), queries, s, n); err != nil {
			t.Fatal(err)
		}
		detached[s] = roundTrip(t, attached[s], queries)
	}
	want, err := MergeShards(queries, attached)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MergeShards(queries, detached)
	if err != nil {
		t.Fatal(err)
	}
	sawOrigin := false
	for qi := range queries {
		g, w := got.Results[qi], want.Results[qi]
		if gt, wt := g.Tabular("q"), w.Tabular("q"); gt != wt {
			t.Fatalf("query %d: detached merge differs from attached:\n got:\n%s\n want:\n%s", qi, gt, wt)
		}
		for _, h := range w.Hits {
			if h.SubjectName == "longboi" {
				sawOrigin = true
			}
			if strings.Contains(h.SubjectName, "#") {
				t.Fatalf("query %d: chunk name %q leaked into merged output", qi, h.SubjectName)
			}
		}
	}
	if !sawOrigin {
		t.Fatal("no hit mapped back to the split sequence; the origin check would be vacuous")
	}
}

// TestShardWireCarriesIncompleteness pins honest-incompleteness over the
// wire: per-query incomplete flags and error strings survive the round trip,
// and a merged batch still reports those queries incomplete.
func TestShardWireCarriesIncompleteness(t *testing.T) {
	db, seqs := testDatabase(t)
	queries := shardQueries(seqs)[:2]
	const n = 2
	shards, err := db.Shards(n)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]*ShardResult, n)
	for s, sd := range shards {
		if parts[s], err = sd.SearchShardBatchCtx(context.Background(), queries, s, n); err != nil {
			t.Fatal(err)
		}
	}
	// Forge an incomplete query on shard 1, as a deadline would leave it.
	parts[1].completed[0] = false
	parts[1].queryErrs[0] = context.DeadlineExceeded
	parts[1].results[0].HSPs = nil

	imported := roundTrip(t, parts[1], queries)
	if imported.QueryCompleted(0) {
		t.Fatal("incomplete flag lost in the wire round trip")
	}
	if imported.queryErrs[0] == nil || !strings.Contains(imported.queryErrs[0].Error(), "deadline") {
		t.Fatalf("query error %v lost its reason over the wire", imported.queryErrs[0])
	}
	parts[1] = imported
	merged, err := MergeShards(queries, parts)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Completed[0] {
		t.Fatal("merge reported a query complete although one shard did not finish it")
	}
	if len(merged.Results[0].Hits) != 0 {
		t.Fatal("incomplete query must not report partial hits")
	}
	if !merged.Completed[1] {
		t.Fatal("the untouched query must stay complete")
	}

	// Structural garbage must be rejected, not merged.
	if _, err := ImportShardResult(&ShardResultWire{Shard: 2, NumShards: 2}); err == nil {
		t.Fatal("out-of-range shard index must fail the import")
	}
	bad, err := parts[0].Wire(queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad.Queries) > 0 && len(bad.Queries[1].HSPs) > 0 {
		bad.Queries[1].HSPs[0].Subject = -1
		if _, err := ImportShardResult(bad); err == nil {
			t.Fatal("negative subject id must fail the import")
		}
	}
}
