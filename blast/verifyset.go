package blast

import (
	"fmt"
)

// ShardSetInfo is what VerifyShardSet reports about a coherent shard set.
type ShardSetInfo struct {
	NumShards      int
	Fingerprint    Fingerprint
	TotalSequences int
	TotalResidues  int64
	PerShard       []*ContainerInfo // per-file reports, in shard order
}

// VerifyShardSet validates a sharded database as a set, not just file by
// file: every container passes its own full Verify, all carry the same
// build-params fingerprint (one makedb run — a mixed set merges garbage
// silently, since the merge trusts ids and E-value statistics), and the
// per-shard sequence counts fit the round-robin deal exactly (shard s of N
// holds ceil((total-s)/N) sequences, the count the id restoration
// local*N + s presumes). paths must be in shard order: paths[s] is shard s.
//
// This is the cross-check `mublastp -verifydb a,b,c` and `makedb -shards`
// run; single-file verification (len(paths) == 1) degenerates to VerifyFile.
func VerifyShardSet(paths []string) (*ShardSetInfo, error) {
	n := len(paths)
	if n == 0 {
		return nil, fmt.Errorf("blast: VerifyShardSet needs at least one container")
	}
	info := &ShardSetInfo{NumShards: n, PerShard: make([]*ContainerInfo, n)}
	for s, path := range paths {
		ci, err := VerifyFile(path)
		if err != nil {
			return nil, fmt.Errorf("blast: shard %d (%s): %w", s, path, err)
		}
		info.PerShard[s] = ci
		info.TotalSequences += ci.NumSequences
		info.TotalResidues += ci.TotalResidues
		if s == 0 {
			info.Fingerprint = ci.Fingerprint
		} else if ci.Fingerprint != info.Fingerprint {
			return nil, fmt.Errorf("blast: %w: shard %d (%s) fingerprint %+v diverges from shard 0's %+v — the set mixes different builds",
				ErrParamsMismatch, s, path, ci.Fingerprint, info.Fingerprint)
		}
	}
	// Round-robin fit: with T total sequences dealt over N shards, shard s
	// must hold exactly (T - s + N - 1) / N. A set that verifies per file
	// but fails this was assembled from the wrong files (or the wrong
	// order), and the merge would restore wrong monolithic ids.
	for s, ci := range info.PerShard {
		want := (info.TotalSequences - s + n - 1) / n
		if ci.NumSequences != want {
			return nil, fmt.Errorf("blast: %w: shard %d (%s) holds %d sequences; a round-robin deal of %d over %d shards puts %d there — wrong file or wrong order",
				ErrParamsMismatch, s, paths[s], ci.NumSequences, info.TotalSequences, n, want)
		}
	}
	return info, nil
}
