package blast

import (
	"io"
	"os"

	"repro/internal/fasta"
)

// ReadFASTA parses sequences from a FASTA stream.
func ReadFASTA(r io.Reader) ([]Sequence, error) {
	recs, err := fasta.ReadAll(r)
	if err != nil {
		return nil, err
	}
	out := make([]Sequence, len(recs))
	for i, rec := range recs {
		out[i] = Sequence{Name: rec.ID, Residues: string(rec.Seq)}
	}
	return out, nil
}

// ReadFASTAFile parses sequences from a FASTA file.
func ReadFASTAFile(path string) ([]Sequence, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFASTA(f)
}

// WriteFASTA writes sequences as FASTA.
func WriteFASTA(w io.Writer, seqs []Sequence) error {
	fw := fasta.NewWriter(w)
	for i := range seqs {
		if err := fw.Write(&fasta.Record{ID: seqs[i].Name, Seq: []byte(seqs[i].Residues)}); err != nil {
			return err
		}
	}
	return fw.Flush()
}
