package blast

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/dbase"
	"repro/internal/fasta"
)

// ReadFASTA parses sequences from a FASTA stream.
func ReadFASTA(r io.Reader) ([]Sequence, error) {
	recs, err := fasta.ReadAll(r)
	if err != nil {
		return nil, err
	}
	out := make([]Sequence, len(recs))
	for i, rec := range recs {
		out[i] = Sequence{Name: rec.ID, Residues: string(rec.Seq)}
	}
	return out, nil
}

// ReadFASTAFile parses sequences from a FASTA file.
func ReadFASTAFile(path string) ([]Sequence, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFASTA(f)
}

// WriteFASTA writes sequences as FASTA.
func WriteFASTA(w io.Writer, seqs []Sequence) error {
	fw := fasta.NewWriter(w)
	for i := range seqs {
		if err := fw.Write(&fasta.Record{ID: seqs[i].Name, Seq: []byte(seqs[i].Residues)}); err != nil {
			return err
		}
	}
	return fw.Flush()
}

// Save writes the database (sequences + index) so a later Load skips index
// construction — the reuse the paper's database-index design is for. Each
// section is length-prefixed so Load can delimit them on a plain stream.
func (d *Database) Save(w io.Writer) error {
	writeSection := func(fill func(io.Writer) error, what string) error {
		var buf bytes.Buffer
		if err := fill(&buf); err != nil {
			return fmt.Errorf("blast: saving %s: %w", what, err)
		}
		var hdr [8]byte
		binary.LittleEndian.PutUint64(hdr[:], uint64(buf.Len()))
		if _, err := w.Write(hdr[:]); err != nil {
			return fmt.Errorf("blast: saving %s: %w", what, err)
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			return fmt.Errorf("blast: saving %s: %w", what, err)
		}
		return nil
	}
	if err := writeSection(func(w io.Writer) error { _, err := d.db.WriteTo(w); return err }, "sequences"); err != nil {
		return err
	}
	return writeSection(func(w io.Writer) error { _, err := d.ix.WriteTo(w); return err }, "index")
}

// Load reads a database written by Save. The params must request the same
// matrix and neighbor threshold the index was built with (the index itself
// stores only exact-word positions, so scoring parameters may differ).
func Load(r io.Reader, p Params) (*Database, error) {
	readSection := func(what string) (io.Reader, error) {
		var hdr [8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, fmt.Errorf("blast: loading %s: %w", what, err)
		}
		return io.LimitReader(r, int64(binary.LittleEndian.Uint64(hdr[:]))), nil
	}
	sec, err := readSection("sequences")
	if err != nil {
		return nil, err
	}
	db, err := dbase.ReadFrom(sec)
	if err != nil {
		return nil, fmt.Errorf("blast: loading sequences: %w", err)
	}
	cfg, err := buildConfig(p)
	if err != nil {
		return nil, err
	}
	if _, err := schedulerFor(p.Scheduler); err != nil {
		return nil, err
	}
	if sec, err = readSection("index"); err != nil {
		return nil, err
	}
	ix, err := readIndex(sec, db, cfg)
	if err != nil {
		return nil, err
	}
	d := &Database{params: p, cfg: cfg, db: db, ix: ix, chunkOrigin: recoverChunkOrigins(db)}
	d.attachEngines()
	return d, nil
}

// recoverChunkOrigins rebuilds the split-chunk mapping from the "#<offset>"
// name suffixes dbase.SplitLong assigns, so databases saved after splitting
// still report original-sequence coordinates after a Load.
func recoverChunkOrigins(db *dbase.DB) map[string]chunkInfo {
	var out map[string]chunkInfo
	for i := range db.Seqs {
		name := db.Seqs[i].Name
		hash := strings.LastIndexByte(name, '#')
		if hash < 0 {
			continue
		}
		off, err := strconv.Atoi(name[hash+1:])
		if err != nil || off < 0 {
			continue
		}
		if out == nil {
			out = make(map[string]chunkInfo)
		}
		out[name] = chunkInfo{origName: name[:hash], offset: off}
	}
	return out
}

// SaveFile and LoadFile are file-path conveniences.
func (d *Database) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a database written by SaveFile.
func LoadFile(path string, p Params) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, p)
}
