package blast

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/alphabet"
	"repro/internal/dbase"
	"repro/internal/dbindex"
	"repro/internal/faultinject"
)

// fiDBRead injects short reads into container loading (site "db.read"): a
// truncated stream must surface as a typed ErrCorrupt, never a panic or a
// partially populated database.
var fiDBRead = faultinject.NewSite("db.read")

// This file implements the on-disk database container (format version 2).
//
// A saved database is a long-lived, network-shipped artifact — the whole
// point of the paper's database index is build-once/search-many reuse — so
// the container is hardened against corruption and parameter drift:
//
//	magic   13 bytes  "\x89muBLASTP\r\n\x1a\n" (PNG-style: catches text-mode
//	                  mangling and truncation at a glance)
//	version uint16 LE (currently 2)
//	sections, in fixed order: PRMS, SEQS, XIDX, ORGN, FEND
//
// Each section is framed as
//
//	tag     4 bytes   ASCII
//	length  uint64 LE payload bytes
//	payload
//	crc32   uint32 LE IEEE CRC of tag+length+payload
//
// PRMS holds the build fingerprint (matrix name, word size W, neighbor
// threshold T, block residues, split parameters) that Load validates against
// the caller's Params. SEQS and XIDX carry the dbase and dbindex streams.
// ORGN persists the split-chunk origin table, replacing the old recovery of
// origins by parsing "#<offset>" name suffixes (which misclassified user
// sequences whose names legitimately contain "#<digits>"). FEND is an empty
// trailer section, so truncation anywhere is detectable. Load verifies every
// checksum, that each section is fully consumed, and that nothing follows
// FEND.
//
// Version history: version 1 is the pre-container format (bare
// length-prefixed sections, no magic, no checksums, no fingerprint); it is
// detected and rejected with ErrVersion. Any layout change bumps the
// version; readers reject versions they do not know.

// Typed load errors. Callers can distinguish "the artifact is damaged,
// rebuild it" (ErrCorrupt), "the artifact comes from an incompatible
// writer" (ErrVersion), and "operator error: the requested Params do not
// match what the index was built with" (ErrParamsMismatch) via errors.Is.
var (
	ErrCorrupt        = errors.New("database container corrupt")
	ErrVersion        = errors.New("unsupported database container version")
	ErrParamsMismatch = errors.New("params do not match database build fingerprint")
)

const (
	containerMagic   = "\x89muBLASTP\r\n\x1a\n"
	containerVersion = 2
)

// Section tags, in file order.
const (
	secParams = "PRMS"
	secSeqs   = "SEQS"
	secIndex  = "XIDX"
	secOrigin = "ORGN"
	secEnd    = "FEND"
)

// Per-section payload caps. A flipped bit in a length field must never drive
// an allocation, so every declared length is checked against the cap for its
// section before any decoding starts; the decoders additionally cap each
// internal allocation against the declared section length.
const (
	maxParamsSection = 1 << 16
	maxSeqsSection   = 1 << 38
	maxIndexSection  = 1 << 38
	maxOriginSection = 1 << 30
)

// Fingerprint identifies how a saved database was built. Load refuses to
// attach an index to Params it was not built for (see Load for the exact
// policy); Verify reports it for operators.
type Fingerprint struct {
	Matrix            string // canonical substitution-matrix name
	WordSize          int    // alphabet.W of the writer
	NeighborThreshold int    // neighbor-word score threshold T
	BlockResidues     int64  // residue cap each index block was built with
	SplitLongerThan   int    // long-sequence split threshold; 0 = splitting disabled
	SplitOverlap      int    // split-chunk overlap; 0 when splitting disabled
}

// ContainerInfo is what Verify reports about a container it fully validated.
type ContainerInfo struct {
	Version       int
	Fingerprint   Fingerprint
	NumSequences  int
	TotalResidues int64
	NumBlocks     int
	NumChunks     int // sequences that are chunks of a split original
}

func corruptf(format string, args ...any) error {
	return fmt.Errorf("blast: %w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

func mismatchf(format string, args ...any) error {
	return fmt.Errorf("blast: %w: %s", ErrParamsMismatch, fmt.Sprintf(format, args...))
}

// Fingerprint returns the build fingerprint this database carries (the same
// one Save persists and Load validates). Shard-coherent serving uses it as
// the handshake token: replicas answering for one logical database must all
// report the fingerprint of one makedb run.
func (d *Database) Fingerprint() Fingerprint { return d.fingerprint() }

// fingerprint captures the database's build parameters for Save.
func (d *Database) fingerprint() Fingerprint {
	return Fingerprint{
		Matrix:            d.cfg.Matrix.Name,
		WordSize:          alphabet.W,
		NeighborThreshold: d.params.NeighborThreshold,
		BlockResidues:     d.ix.BlockResidues,
		SplitLongerThan:   d.splitLen,
		SplitOverlap:      d.splitOverlap,
	}
}

// Save writes the database (fingerprint, sequences, index, split origins)
// as a version-2 container so a later Load skips index construction — the
// reuse the paper's database-index design is for. Every section is framed
// with a length and a CRC32 so Load can prove integrity.
func (d *Database) Save(w io.Writer) error {
	if d.tiers != nil {
		return fmt.Errorf("blast: cannot save a tiered (base+deltas) database as one container; compact the store instead")
	}
	var hdr [len(containerMagic) + 2]byte
	copy(hdr[:], containerMagic)
	binary.LittleEndian.PutUint16(hdr[len(containerMagic):], containerVersion)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("blast: saving header: %w", err)
	}
	writeSection := func(tag string, fill func(io.Writer) error) error {
		var buf bytes.Buffer
		if err := fill(&buf); err != nil {
			return fmt.Errorf("blast: saving %s section: %w", tag, err)
		}
		var sh [12]byte
		copy(sh[:4], tag)
		binary.LittleEndian.PutUint64(sh[4:], uint64(buf.Len()))
		crc := crc32.NewIEEE()
		crc.Write(sh[:])
		crc.Write(buf.Bytes())
		var tail [4]byte
		binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
		for _, p := range [][]byte{sh[:], buf.Bytes(), tail[:]} {
			if _, err := w.Write(p); err != nil {
				return fmt.Errorf("blast: saving %s section: %w", tag, err)
			}
		}
		return nil
	}
	if err := writeSection(secParams, d.writeFingerprint); err != nil {
		return err
	}
	if err := writeSection(secSeqs, func(w io.Writer) error { _, err := d.db.WriteTo(w); return err }); err != nil {
		return err
	}
	if err := writeSection(secIndex, func(w io.Writer) error { _, err := d.ix.WriteTo(w); return err }); err != nil {
		return err
	}
	if err := writeSection(secOrigin, d.writeOrigins); err != nil {
		return err
	}
	return writeSection(secEnd, func(io.Writer) error { return nil })
}

func (d *Database) writeFingerprint(w io.Writer) error {
	fp := d.fingerprint()
	var buf [binary.MaxVarintLen64]byte
	out := make([]byte, 0, 64)
	out = append(out, buf[:binary.PutUvarint(buf[:], uint64(len(fp.Matrix)))]...)
	out = append(out, fp.Matrix...)
	for _, v := range []int64{
		int64(fp.WordSize), int64(fp.NeighborThreshold), fp.BlockResidues,
		int64(fp.SplitLongerThan), int64(fp.SplitOverlap),
	} {
		out = append(out, buf[:binary.PutVarint(buf[:], v)]...)
	}
	_, err := w.Write(out)
	return err
}

// writeOrigins persists the split-chunk origin table: for every database
// sequence that is a chunk of a split original, its index, the chunk's
// offset in the original, and the original's name.
func (d *Database) writeOrigins(w io.Writer) error {
	var buf [binary.MaxVarintLen64]byte
	var out []byte
	putUvarint := func(v uint64) { out = append(out, buf[:binary.PutUvarint(buf[:], v)]...) }
	n := 0
	for i := range d.db.Seqs {
		if _, ok := d.chunkOrigin[d.db.Seqs[i].Name]; ok {
			n++
		}
	}
	putUvarint(uint64(n))
	for i := range d.db.Seqs {
		info, ok := d.chunkOrigin[d.db.Seqs[i].Name]
		if !ok {
			continue
		}
		putUvarint(uint64(i))
		putUvarint(uint64(info.offset))
		putUvarint(uint64(len(info.origName)))
		out = append(out, info.origName...)
	}
	_, err := w.Write(out)
	return err
}

// container is a fully decoded and checksum-verified artifact, before any
// Params-dependent wiring.
type container struct {
	fp      Fingerprint
	db      *dbase.DB
	ix      *dbindex.Index
	origins map[string]chunkInfo
}

// loadContainer decodes and validates a container independent of Params:
// magic, version, every section checksum, full consumption of every
// section, structural bounds of the decoded database and index, and no
// trailing bytes after the FEND trailer.
func loadContainer(r io.Reader) (*container, error) {
	r = fiDBRead.Reader(r)
	head := make([]byte, len(containerMagic)+2)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, corruptf("reading container header: %v", err)
	}
	if !bytes.Equal(head[:len(containerMagic)], []byte(containerMagic)) {
		// The pre-container format starts with an 8-byte section length
		// followed by the dbase magic.
		if bytes.Equal(head[8:13], []byte("MUDB1")) {
			return nil, fmt.Errorf("blast: %w: legacy version-1 database (bare sections, no checksums); rebuild it with makedb", ErrVersion)
		}
		return nil, corruptf("bad magic %q: not a muBLASTP database container", head[:len(containerMagic)])
	}
	if v := binary.LittleEndian.Uint16(head[len(containerMagic):]); v != containerVersion {
		return nil, fmt.Errorf("blast: %w: container version %d (this build reads version %d)", ErrVersion, v, containerVersion)
	}
	c := &container{}
	readSection := func(wantTag string, maxLen int64, decode func(r io.Reader, length int64) error) error {
		var sh [12]byte
		if _, err := io.ReadFull(r, sh[:]); err != nil {
			return corruptf("%s section header: %v", wantTag, err)
		}
		if string(sh[:4]) != wantTag {
			return corruptf("expected %s section, found %q", wantTag, sh[:4])
		}
		length := binary.LittleEndian.Uint64(sh[4:])
		if length > uint64(maxLen) {
			return corruptf("%s section declares %d bytes (cap %d)", wantTag, length, maxLen)
		}
		crc := crc32.NewIEEE()
		crc.Write(sh[:])
		lim := &io.LimitedReader{R: r, N: int64(length)}
		tee := io.TeeReader(lim, crc)
		if decode != nil {
			if err := decode(tee, int64(length)); err != nil {
				if errors.Is(err, ErrCorrupt) || errors.Is(err, ErrVersion) || errors.Is(err, ErrParamsMismatch) {
					return err
				}
				return corruptf("%s section: %v", wantTag, err)
			}
		}
		// A valid writer leaves nothing unread; push any remainder through
		// the checksum so the report distinguishes garbage from corruption.
		if n, err := io.Copy(io.Discard, tee); err != nil {
			return corruptf("%s section: %v", wantTag, err)
		} else if n > 0 {
			return corruptf("%s section: %d trailing bytes after payload", wantTag, n)
		}
		var tail [4]byte
		if _, err := io.ReadFull(r, tail[:]); err != nil {
			return corruptf("%s section checksum: %v", wantTag, err)
		}
		if got, want := binary.LittleEndian.Uint32(tail[:]), crc.Sum32(); got != want {
			return corruptf("%s section checksum mismatch (stored %08x, computed %08x)", wantTag, got, want)
		}
		return nil
	}
	if err := readSection(secParams, maxParamsSection, func(r io.Reader, length int64) error {
		return c.readFingerprint(r, length)
	}); err != nil {
		return nil, err
	}
	if err := readSection(secSeqs, maxSeqsSection, func(r io.Reader, length int64) error {
		db, err := dbase.ReadFromLimit(r, length)
		if err != nil {
			return err
		}
		if !db.IsSortedByLength() {
			return fmt.Errorf("sequences not in ascending length order")
		}
		c.db = db
		return nil
	}); err != nil {
		return nil, err
	}
	if err := readSection(secIndex, maxIndexSection, func(r io.Reader, length int64) error {
		ix, err := dbindex.ReadFromLimit(r, c.db, length)
		if err != nil {
			return err
		}
		if ix.BlockResidues != c.fp.BlockResidues {
			return fmt.Errorf("index block residues %d disagree with fingerprint %d", ix.BlockResidues, c.fp.BlockResidues)
		}
		c.ix = ix
		return nil
	}); err != nil {
		return nil, err
	}
	if err := readSection(secOrigin, maxOriginSection, func(r io.Reader, length int64) error {
		return c.readOrigins(r, length)
	}); err != nil {
		return nil, err
	}
	if err := readSection(secEnd, 0, nil); err != nil {
		return nil, err
	}
	var one [1]byte
	if _, err := io.ReadFull(r, one[:]); err == nil {
		return nil, corruptf("trailing garbage after %s trailer", secEnd)
	} else if err != io.EOF {
		return nil, corruptf("after %s trailer: %v", secEnd, err)
	}
	return c, nil
}

func (c *container) readFingerprint(r io.Reader, length int64) error {
	data := make([]byte, length)
	if _, err := io.ReadFull(r, data); err != nil {
		return err
	}
	rd := bytes.NewReader(data)
	nameLen, err := binary.ReadUvarint(rd)
	if err != nil {
		return fmt.Errorf("matrix name length: %w", err)
	}
	if nameLen > 256 {
		return fmt.Errorf("implausible matrix name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(rd, name); err != nil {
		return fmt.Errorf("matrix name: %w", err)
	}
	c.fp.Matrix = string(name)
	fields := []struct {
		what string
		dst  *int64
		min  int64
		max  int64
	}{
		{"word size", nil, 1, 8},
		{"neighbor threshold", nil, -(1 << 16), 1 << 16},
		{"block residues", &c.fp.BlockResidues, 1, 1 << 50},
		{"split threshold", nil, 0, 1 << 31},
		{"split overlap", nil, 0, 1 << 31},
	}
	ints := []*int{&c.fp.WordSize, &c.fp.NeighborThreshold, nil, &c.fp.SplitLongerThan, &c.fp.SplitOverlap}
	for i, f := range fields {
		v, err := binary.ReadVarint(rd)
		if err != nil {
			return fmt.Errorf("%s: %w", f.what, err)
		}
		if v < f.min || v > f.max {
			return fmt.Errorf("%s %d out of range [%d,%d]", f.what, v, f.min, f.max)
		}
		if f.dst != nil {
			*f.dst = v
		}
		if ints[i] != nil {
			*ints[i] = int(v)
		}
	}
	if rd.Len() != 0 {
		return fmt.Errorf("%d trailing bytes in fingerprint", rd.Len())
	}
	if c.fp.WordSize != alphabet.W {
		return fmt.Errorf("blast: %w: database indexed with word size %d, this build uses %d", ErrVersion, c.fp.WordSize, alphabet.W)
	}
	if c.fp.SplitLongerThan > 0 && c.fp.SplitOverlap >= c.fp.SplitLongerThan {
		return fmt.Errorf("split overlap %d not below split threshold %d", c.fp.SplitOverlap, c.fp.SplitLongerThan)
	}
	return nil
}

func (c *container) readOrigins(r io.Reader, length int64) error {
	data := make([]byte, length)
	if _, err := io.ReadFull(r, data); err != nil {
		return err
	}
	rd := bytes.NewReader(data)
	n, err := binary.ReadUvarint(rd)
	if err != nil {
		return fmt.Errorf("origin count: %w", err)
	}
	if n > uint64(c.db.NumSeqs()) {
		return fmt.Errorf("origin count %d exceeds %d sequences", n, c.db.NumSeqs())
	}
	for i := uint64(0); i < n; i++ {
		seqIdx, err := binary.ReadUvarint(rd)
		if err != nil {
			return fmt.Errorf("origin %d sequence index: %w", i, err)
		}
		if seqIdx >= uint64(c.db.NumSeqs()) {
			return fmt.Errorf("origin %d sequence index %d out of range", i, seqIdx)
		}
		off, err := binary.ReadUvarint(rd)
		if err != nil {
			return fmt.Errorf("origin %d offset: %w", i, err)
		}
		if off > 1<<31 {
			return fmt.Errorf("origin %d implausible offset %d", i, off)
		}
		nameLen, err := binary.ReadUvarint(rd)
		if err != nil {
			return fmt.Errorf("origin %d name length: %w", i, err)
		}
		if nameLen > 1<<20 {
			return fmt.Errorf("origin %d implausible name length %d", i, nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(rd, name); err != nil {
			return fmt.Errorf("origin %d name: %w", i, err)
		}
		if c.origins == nil {
			c.origins = make(map[string]chunkInfo, n)
		}
		c.origins[c.db.Seqs[seqIdx].Name] = chunkInfo{origName: string(name), offset: int(off)}
	}
	if rd.Len() != 0 {
		return fmt.Errorf("%d trailing bytes in origin table", rd.Len())
	}
	return nil
}

// open wires a decoded container to the caller's Params, enforcing the
// build fingerprint.
func (c *container) open(p Params) (*Database, error) {
	cfg, err := buildConfig(p)
	if err != nil {
		return nil, err
	}
	if _, err := schedulerFor(p.Scheduler); err != nil {
		return nil, err
	}
	// Matrix and neighbor threshold determine the neighbor table hit
	// detection runs with; the index stores exact-word positions only, so a
	// drifted table silently changes which alignments are found. Strict.
	if cfg.Matrix.Name != c.fp.Matrix {
		return nil, mismatchf("matrix %q requested, database built with %q", cfg.Matrix.Name, c.fp.Matrix)
	}
	if p.NeighborThreshold != c.fp.NeighborThreshold {
		return nil, mismatchf("neighbor threshold %d requested, database built with %d", p.NeighborThreshold, c.fp.NeighborThreshold)
	}
	// Block size and split geometry are frozen at build time; an explicit
	// conflicting request is an operator error, while the zero value means
	// "whatever the database was built with" and adopts the stored values.
	if p.BlockResidues > 0 && p.BlockResidues != c.fp.BlockResidues {
		return nil, mismatchf("block residues %d requested, database built with %d", p.BlockResidues, c.fp.BlockResidues)
	}
	p.BlockResidues = c.fp.BlockResidues
	if p.SplitLongerThan != 0 {
		el, eo := effectiveSplit(p)
		if el != c.fp.SplitLongerThan || eo != c.fp.SplitOverlap {
			return nil, mismatchf("split parameters %d/%d requested, database built with %d/%d",
				el, eo, c.fp.SplitLongerThan, c.fp.SplitOverlap)
		}
	}
	if c.fp.SplitLongerThan > 0 {
		p.SplitLongerThan, p.SplitOverlap = c.fp.SplitLongerThan, c.fp.SplitOverlap
	} else {
		p.SplitLongerThan, p.SplitOverlap = -1, 0
	}
	c.ix.Neighbors = cfg.Neighbors
	d := &Database{
		params: p, cfg: cfg, db: c.db, ix: c.ix,
		chunkOrigin: c.origins,
		splitLen:    c.fp.SplitLongerThan, splitOverlap: c.fp.SplitOverlap,
	}
	d.attachEngines()
	return d, nil
}

// Load reads a database written by Save. The Params must be compatible with
// the build fingerprint stored in the container: Matrix and
// NeighborThreshold must equal what the index was built with, and
// BlockResidues / SplitLongerThan / SplitOverlap must either be left at
// their zero values (adopting the stored ones) or match them. Failures are
// typed: errors.Is(err, ErrCorrupt) means the artifact is damaged and must
// be rebuilt, ErrVersion means it was written by an incompatible version,
// and ErrParamsMismatch means the request disagrees with the fingerprint.
func Load(r io.Reader, p Params) (*Database, error) {
	c, err := loadContainer(r)
	if err != nil {
		return nil, err
	}
	return c.open(p)
}

// Verify fully validates a container — header, version, every checksum,
// complete decode of all sections, no trailing bytes — without constructing
// a searchable database, and reports what it holds. This is what
// `mublastp -verifydb` runs.
func Verify(r io.Reader) (*ContainerInfo, error) {
	c, err := loadContainer(r)
	if err != nil {
		return nil, err
	}
	return &ContainerInfo{
		Version:       containerVersion,
		Fingerprint:   c.fp,
		NumSequences:  c.db.NumSeqs(),
		TotalResidues: c.db.TotalResidues,
		NumBlocks:     len(c.ix.Blocks),
		NumChunks:     len(c.origins),
	}, nil
}

// SaveFile, LoadFile, and VerifyFile are file-path conveniences.
func (d *Database) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a database written by SaveFile.
func LoadFile(path string, p Params) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, p)
}

// VerifyFile validates a database file written by SaveFile.
func VerifyFile(path string) (*ContainerInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Verify(f)
}
