package blast

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/faultinject"
)

// This file implements the ingest store's manifest: the single small file
// naming the container set that *is* the database. The base container and
// every delta are immutable once written — growth always writes new files —
// so the manifest swap (write temp, fsync, rename, fsync directory) is the
// only mutation the store ever performs in place, and the visible database
// state moves atomically from one consistent set to the next. Files present
// on disk but not named by the current manifest are orphans from an
// interrupted commit; recovery garbage-collects them.

// Typed store errors, in the spirit of the container's ErrCorrupt family:
// ErrNoStore means the directory is not an ingest store at all (no
// manifest); ErrStoreCorrupt means the store is damaged in a way recovery
// must not paper over — a manifest that fails its checksum, a referenced
// container missing or altered, a WAL whose intact records contradict the
// watermark. Torn WAL tails and orphaned files are NOT corruption; they are
// the expected residue of a crash and recovery handles them silently.
var (
	ErrNoStore      = errors.New("not an ingest store (no manifest)")
	ErrStoreCorrupt = errors.New("ingest store corrupt")
)

const (
	manifestName    = "MANIFEST"
	manifestVersion = 1
	maxManifestSize = 1 << 20
)

// Fault-injection sites at every fsync/rename boundary of the ingestion
// protocol. An error fired at a site aborts the operation exactly where a
// crash at that boundary would, so the crash harness can drill each one
// deterministically (see store_crash_test.go) and assert recovery lands on
// pre- or post-commit state, never between.
var (
	fiWALAppend      = faultinject.NewSite("store.wal.append")
	fiWALSync        = faultinject.NewSite("store.wal.sync")
	fiWALReset       = faultinject.NewSite("store.wal.reset")
	fiDeltaWrite     = faultinject.NewSite("store.delta.write")
	fiDeltaSync      = faultinject.NewSite("store.delta.sync")
	fiDeltaRename    = faultinject.NewSite("store.delta.rename")
	fiManifestWrite  = faultinject.NewSite("store.manifest.write")
	fiManifestSync   = faultinject.NewSite("store.manifest.sync")
	fiManifestRename = faultinject.NewSite("store.manifest.rename")
	fiDirSync        = faultinject.NewSite("store.dir.sync")
)

// manifestEntry names one immutable container file with the evidence needed
// to prove it unaltered (size + whole-file CRC) and the totals needed to
// compute the combined search space without opening it.
type manifestEntry struct {
	Name      string `json:"name"`
	Size      int64  `json:"size"`
	CRC32     uint32 `json:"crc32"`
	Sequences int    `json:"sequences"`
	Residues  int64  `json:"residues"`
}

// manifest is the store's root metadata, serialized as JSON with a CRC over
// the encoding (computed with Sum zeroed).
type manifest struct {
	Version    int             `json:"version"`
	Seq        int64           `json:"seq"`         // bumped on every commit (append or compaction)
	Base       manifestEntry   `json:"base"`        // the compacted foundation container
	Deltas     []manifestEntry `json:"deltas"`      // ordered append containers layered on the base
	WALApplied uint64          `json:"wal_applied"` // highest WAL record seq reflected in this set
	Sum        uint32          `json:"sum"`         // IEEE CRC of this JSON with sum=0
}

// encode serializes the manifest with its checksum filled in.
func (m *manifest) encode() ([]byte, error) {
	mm := *m
	mm.Sum = 0
	body, err := json.Marshal(&mm)
	if err != nil {
		return nil, err
	}
	mm.Sum = crc32.ChecksumIEEE(body)
	return json.Marshal(&mm)
}

// hash returns the manifest's content identity: replicas serving the same
// container set report the same hash, and the router's coherence handshake
// refuses topologies that mix different ones.
func (m *manifest) hash() string {
	data, err := m.encode()
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}

// sequences and residues return the combined totals across base + deltas —
// the global search space every tier's E-values are computed against.
func (m *manifest) sequences() int {
	n := m.Base.Sequences
	for _, d := range m.Deltas {
		n += d.Sequences
	}
	return n
}

func (m *manifest) residues() int64 {
	n := m.Base.Residues
	for _, d := range m.Deltas {
		n += d.Residues
	}
	return n
}

// entries returns base + deltas in tier order.
func (m *manifest) entries() []manifestEntry {
	out := make([]manifestEntry, 0, 1+len(m.Deltas))
	out = append(out, m.Base)
	return append(out, m.Deltas...)
}

// validEntryName keeps manifest-referenced names inside the store directory:
// a bare file name with the container suffix, no path tricks.
func validEntryName(name string) bool {
	return name != "" && name == filepath.Base(name) && !strings.HasPrefix(name, ".") &&
		strings.HasSuffix(name, storeContainerSuffix)
}

// decodeManifest parses and structurally validates manifest bytes.
func decodeManifest(data []byte) (*manifest, error) {
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%w: manifest: %v", ErrStoreCorrupt, err)
	}
	want := m.Sum
	m.Sum = 0
	body, err := json.Marshal(&m)
	if err != nil {
		return nil, fmt.Errorf("%w: manifest: %v", ErrStoreCorrupt, err)
	}
	if crc32.ChecksumIEEE(body) != want {
		return nil, fmt.Errorf("%w: manifest checksum mismatch", ErrStoreCorrupt)
	}
	m.Sum = want
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("%w: manifest version %d (this build reads version %d)", ErrVersion, m.Version, manifestVersion)
	}
	if m.Seq < 1 {
		return nil, fmt.Errorf("%w: manifest seq %d", ErrStoreCorrupt, m.Seq)
	}
	seen := map[string]bool{}
	for _, e := range m.entries() {
		if !validEntryName(e.Name) {
			return nil, fmt.Errorf("%w: manifest references invalid file name %q", ErrStoreCorrupt, e.Name)
		}
		if seen[e.Name] {
			return nil, fmt.Errorf("%w: manifest references %q twice", ErrStoreCorrupt, e.Name)
		}
		seen[e.Name] = true
		if e.Size <= 0 || e.Sequences <= 0 || e.Residues < 0 {
			return nil, fmt.Errorf("%w: manifest entry %q has implausible totals", ErrStoreCorrupt, e.Name)
		}
	}
	return &m, nil
}

// readManifest loads and validates the manifest of the store at dir.
func readManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("blast: %w: %s", ErrNoStore, dir)
	}
	if err != nil {
		return nil, fmt.Errorf("blast: manifest: %w", err)
	}
	if len(data) > maxManifestSize {
		return nil, fmt.Errorf("blast: %w: manifest is %d bytes (cap %d)", ErrStoreCorrupt, len(data), maxManifestSize)
	}
	return decodeManifest(data)
}

// fileEntry fingerprints a container file for the manifest.
func fileEntry(dir, name string, sequences int, residues int64) (manifestEntry, error) {
	f, err := os.Open(filepath.Join(dir, name))
	if err != nil {
		return manifestEntry{}, err
	}
	defer f.Close()
	crc := crc32.NewIEEE()
	size, err := io.Copy(crc, f)
	if err != nil {
		return manifestEntry{}, err
	}
	return manifestEntry{Name: name, Size: size, CRC32: crc.Sum32(), Sequences: sequences, Residues: residues}, nil
}

// checkEntry proves a manifest-referenced file is present and unaltered.
func checkEntry(dir string, e manifestEntry) error {
	f, err := os.Open(filepath.Join(dir, e.Name))
	if errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("blast: %w: manifest references missing file %q", ErrStoreCorrupt, e.Name)
	}
	if err != nil {
		return err
	}
	defer f.Close()
	crc := crc32.NewIEEE()
	size, err := io.Copy(crc, f)
	if err != nil {
		return err
	}
	if size != e.Size || crc.Sum32() != e.CRC32 {
		return fmt.Errorf("blast: %w: %q does not match its manifest entry (size %d/%d, crc %08x/%08x)",
			ErrStoreCorrupt, e.Name, size, e.Size, crc.Sum32(), e.CRC32)
	}
	return nil
}

// atomicWrite commits data as dir/name via the write-temp → fsync →
// atomic-rename → directory-fsync sequence, with fault-injection hooks at
// each boundary. A failure before the rename leaves at most an orphaned
// .tmp file; after the rename the new file is durable and visible.
func atomicWrite(dir, name string, data []byte, siteWrite, siteSync, siteRename *faultinject.Site) error {
	if err := siteWrite.Err(); err != nil {
		return fmt.Errorf("writing %s: %w", name, err)
	}
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("writing %s: %w", name, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", name, err)
	}
	if err := siteSync.Err(); err != nil {
		f.Close()
		return fmt.Errorf("syncing %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("syncing %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("closing %s: %w", name, err)
	}
	if err := siteRename.Err(); err != nil {
		return fmt.Errorf("renaming %s: %w", name, err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("renaming %s: %w", name, err)
	}
	return syncDir(dir)
}

// syncDir makes a rename in dir durable.
func syncDir(dir string) error {
	if err := fiDirSync.Err(); err != nil {
		return fmt.Errorf("syncing %s: %w", dir, err)
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("syncing %s: %w", dir, err)
	}
	return d.Close()
}

// commitManifest atomically replaces the store's manifest.
func commitManifest(dir string, m *manifest) error {
	data, err := m.encode()
	if err != nil {
		return fmt.Errorf("blast: encoding manifest: %w", err)
	}
	if err := atomicWrite(dir, manifestName, data, fiManifestWrite, fiManifestSync, fiManifestRename); err != nil {
		return fmt.Errorf("blast: committing manifest: %w", err)
	}
	return nil
}
