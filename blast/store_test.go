package blast

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/alphabet"
	"repro/internal/seqgen"
)

// storeParams enables long-sequence splitting at a low threshold so the
// store tests exercise the chunk-origin plumbing through deltas and merges,
// not just whole sequences.
func storeParams() Params {
	p := DefaultParams()
	p.BlockResidues = 8192
	p.SplitLongerThan = 400
	p.SplitOverlap = 64
	return p
}

// storeSeqs generates n named sequences; the name prefix keeps base and
// delta batches disjoint the way real ingestion feeds are.
func storeSeqs(n int, seed int64, prefix string) []Sequence {
	g := seqgen.New(seqgen.UniprotProfile(), seed)
	raw := g.Database(n)
	seqs := make([]Sequence, len(raw))
	for i, s := range raw {
		seqs[i] = Sequence{Name: prefix + strconv.Itoa(i), Residues: alphabet.String(s)}
	}
	return seqs
}

// storeFixture builds a store with a base and two committed delta batches,
// each holding at least one sequence long enough to split.
func storeFixture(t *testing.T) (dir string, st *Store, base, b1, b2 []Sequence) {
	t.Helper()
	base = storeSeqs(60, 41, "base")
	base = append(base, Sequence{Name: "baselong", Residues: strings.Repeat(base[0].Residues, 3)})
	b1 = storeSeqs(12, 42, "d1x")
	b1 = append(b1, Sequence{Name: "d1long", Residues: strings.Repeat(b1[0].Residues, 3)})
	b2 = storeSeqs(9, 43, "d2x")

	dir = t.TempDir()
	var err error
	if st, err = InitStore(dir, base, storeParams()); err != nil {
		t.Fatal(err)
	}
	for i, batch := range [][]Sequence{b1, b2} {
		stats, err := st.Append(batch)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if stats.Sequences != len(batch) || stats.Deltas != i+1 {
			t.Fatalf("append %d: stats %+v", i, stats)
		}
	}
	return dir, st, base, b1, b2
}

// storeQueries hits both the base and the deltas, including a split chunk.
func storeQueries(base, b1, b2 []Sequence) []string {
	qs := []string{
		queryFrom(base, 150),
		queryFrom(b1, 120),
		b2[0].Residues,
		base[len(base)-1].Residues[100:300], // inside the long (split) base sequence
	}
	if len(b1) > 0 {
		qs = append(qs, b1[len(b1)-1].Residues[50:250]) // inside the long delta sequence
	}
	return qs
}

// assertSameSearch is the byte-identity oracle: both databases must return
// the same hits — struct-equal, and identical down to the rendered tabular
// output.
func assertSameSearch(t *testing.T, label string, got, want *Database, queries []string) {
	t.Helper()
	g, err := got.SearchBatch(queries)
	if err != nil {
		t.Fatalf("%s: search: %v", label, err)
	}
	w, err := want.SearchBatch(queries)
	if err != nil {
		t.Fatalf("%s: reference search: %v", label, err)
	}
	hits := 0
	for qi := range queries {
		hits += len(w[qi].Hits)
		if len(g[qi].Hits) != len(w[qi].Hits) {
			t.Fatalf("%s query %d: %d hits, want %d", label, qi, len(g[qi].Hits), len(w[qi].Hits))
		}
		for j := range w[qi].Hits {
			if g[qi].Hits[j] != w[qi].Hits[j] {
				t.Fatalf("%s query %d hit %d:\n got  %+v\n want %+v", label, qi, j, g[qi].Hits[j], w[qi].Hits[j])
			}
		}
		if gt, wt := g[qi].Tabular("q"), w[qi].Tabular("q"); gt != wt {
			t.Fatalf("%s query %d: rendered output differs:\n got:\n%s\n want:\n%s", label, qi, gt, wt)
		}
	}
	if hits == 0 {
		t.Fatalf("%s: reference search found nothing; the equivalence check would be vacuous", label)
	}
}

func concat(batches ...[]Sequence) []Sequence {
	var all []Sequence
	for _, b := range batches {
		all = append(all, b...)
	}
	return all
}

// TestStoreTieredMatchesRebuild is the tentpole invariant: a base plus
// deltas searched as one tiered database must be byte-identical to a
// from-scratch rebuild over the concatenated input — same global id space,
// same E-values, same rendered output.
func TestStoreTieredMatchesRebuild(t *testing.T) {
	dir, st, base, b1, b2 := storeFixture(t)
	if st.ManifestSeq() != 3 || st.NumDeltas() != 2 {
		t.Fatalf("manifest seq %d deltas %d, want 3/2", st.ManifestSeq(), st.NumDeltas())
	}
	all := concat(base, b1, b2)

	db, err := st.Database()
	if err != nil {
		t.Fatal(err)
	}
	if !db.Tiered() {
		t.Fatal("store with deltas produced an untiered database")
	}
	seq, hash, deltas := db.Manifest()
	if seq != 3 || deltas != 2 || hash == "" {
		t.Fatalf("Manifest() = (%d, %q, %d), want (3, non-empty, 2)", seq, hash, deltas)
	}
	rebuild, err := NewDatabase(all, storeParams())
	if err != nil {
		t.Fatal(err)
	}
	// NumSequences counts post-split chunks, exactly like the rebuild's.
	if db.NumSequences() != rebuild.NumSequences() ||
		db.TotalResidues() != rebuild.TotalResidues() {
		t.Fatalf("tiered totals %d/%d, rebuild %d/%d",
			db.NumSequences(), db.TotalResidues(), rebuild.NumSequences(), rebuild.TotalResidues())
	}
	if st.NumSequences() != rebuild.NumSequences() {
		t.Fatalf("store counts %d sequences, rebuild has %d", st.NumSequences(), rebuild.NumSequences())
	}
	assertSameSearch(t, "tiered", db, rebuild, storeQueries(base, b1, b2))

	// Reopen from disk: recovery with nothing to recover must reproduce the
	// same state, and Open must route the directory through the store path.
	st2, err := OpenStore(dir, storeParams())
	if err != nil {
		t.Fatal(err)
	}
	if st2.ManifestSeq() != 3 || st2.NumDeltas() != 2 {
		t.Fatalf("reopened manifest seq %d deltas %d", st2.ManifestSeq(), st2.NumDeltas())
	}
	db2, err := Open(dir, storeParams())
	if err != nil {
		t.Fatal(err)
	}
	assertSameSearch(t, "reopened", db2, rebuild, storeQueries(base, b1, b2))
}

// TestStoreVerify covers VerifyStore/VerifyPath on a healthy store and the
// refusal paths: flipped container bytes, a missing delta, a corrupt
// manifest, and a directory that is not a store at all.
func TestStoreVerify(t *testing.T) {
	dir, st, base, _, _ := storeFixture(t)

	info, err := VerifyStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.NumSequences != st.NumSequences() || info.Deltas != 2 || info.PendingWAL != 0 ||
		info.ManifestSeq != st.ManifestSeq() || info.ManifestHash != st.ManifestHash() {
		t.Fatalf("VerifyStore info %+v", info)
	}
	pi, err := VerifyPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if pi.ManifestSeq != 3 || pi.Deltas != 2 || pi.NumSequences != info.NumSequences {
		t.Fatalf("VerifyPath info %+v", pi)
	}
	if !IsStoreDir(dir) {
		t.Fatal("IsStoreDir(store) = false")
	}

	// A plain directory is not a store: typed refusal, not a guess.
	if _, err := VerifyPath(t.TempDir()); !errors.Is(err, ErrNoStore) {
		t.Fatalf("VerifyPath(empty dir) = %v, want ErrNoStore", err)
	}
	if _, err := Open(t.TempDir(), storeParams()); !errors.Is(err, ErrNoStore) {
		t.Fatalf("Open(empty dir) = %v, want ErrNoStore", err)
	}

	corrupt := func(name string, mutate func(path string)) {
		t.Helper()
		path := filepath.Join(dir, name)
		orig, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		mutate(path)
		if _, err := VerifyStore(dir); !errors.Is(err, ErrStoreCorrupt) {
			t.Fatalf("VerifyStore after corrupting %s = %v, want ErrStoreCorrupt", name, err)
		}
		if _, err := OpenStore(dir, storeParams()); err == nil {
			t.Fatalf("OpenStore accepted a store with corrupt %s", name)
		}
		if err := os.WriteFile(path, orig, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := VerifyStore(dir); err != nil {
			t.Fatalf("VerifyStore after restoring %s: %v", name, err)
		}
	}
	flip := func(path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	corrupt("base-000001.mublastp", flip)
	corrupt("delta-000002.mublastp", flip)
	corrupt(manifestName, flip)
	corrupt("delta-000003.mublastp", func(path string) { os.Remove(path) })

	// InitStore must refuse to clobber an existing store.
	if _, err := InitStore(dir, base, storeParams()); err == nil {
		t.Fatal("InitStore overwrote an existing store")
	}
}

// TestStoreCompact pins compaction: results before, after, and from a
// from-scratch rebuild are all byte-identical; the merged store has no
// deltas; superseded files are garbage-collected.
func TestStoreCompact(t *testing.T) {
	dir, st, base, b1, b2 := storeFixture(t)
	all := concat(base, b1, b2)
	queries := storeQueries(base, b1, b2)
	rebuild, err := NewDatabase(all, storeParams())
	if err != nil {
		t.Fatal(err)
	}

	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if st.NumDeltas() != 0 {
		t.Fatalf("compacted store still has %d deltas", st.NumDeltas())
	}
	if st.ManifestSeq() != 4 {
		t.Fatalf("compacted manifest seq %d, want 4", st.ManifestSeq())
	}
	db, err := st.Database()
	if err != nil {
		t.Fatal(err)
	}
	if db.Tiered() {
		t.Fatal("compacted store produced a tiered database")
	}
	assertSameSearch(t, "compacted", db, rebuild, queries)
	if _, err := VerifyStore(dir); err != nil {
		t.Fatal(err)
	}

	// The old base and both deltas must be gone: one container file left.
	matches, err := filepath.Glob(filepath.Join(dir, "*"+storeContainerSuffix))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || filepath.Base(matches[0]) != "base-000004.mublastp" {
		t.Fatalf("after compaction, container files = %v", matches)
	}

	// Compacting a delta-free store is a no-op.
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if st.ManifestSeq() != 4 {
		t.Fatalf("no-op compaction bumped manifest to %d", st.ManifestSeq())
	}

	// And the compacted store keeps ingesting.
	b3 := storeSeqs(5, 44, "d3x")
	if _, err := st.Append(b3); err != nil {
		t.Fatal(err)
	}
	db2, err := st.Database()
	if err != nil {
		t.Fatal(err)
	}
	rebuild2, err := NewDatabase(concat(all, b3), storeParams())
	if err != nil {
		t.Fatal(err)
	}
	assertSameSearch(t, "post-compact append", db2, rebuild2, append(queries, b3[0].Residues))
}

// TestStoreWALRollForward crafts a durable WAL record past the manifest
// watermark — the state a crash between WAL fsync and manifest commit
// leaves — and checks recovery replays it into a delta whose search output
// matches a rebuild that includes the batch.
func TestStoreWALRollForward(t *testing.T) {
	base := storeSeqs(30, 51, "base")
	batch := storeSeqs(6, 52, "wal")
	dir := t.TempDir()
	st, err := InitStore(dir, base, storeParams())
	if err != nil {
		t.Fatal(err)
	}
	// Write the WAL record by hand; the store believes WALApplied == 0.
	if err := appendWAL(filepath.Join(dir, walName), 1, encodeWALPayload(batch)); err != nil {
		t.Fatal(err)
	}
	if info, err := VerifyStore(dir); err != nil || info.PendingWAL != 1 {
		t.Fatalf("VerifyStore = %+v, %v; want 1 pending record", info, err)
	}
	st, err = OpenStore(dir, storeParams())
	if err != nil {
		t.Fatal(err)
	}
	rebuild, err := NewDatabase(concat(base, batch), storeParams())
	if err != nil {
		t.Fatal(err)
	}
	if st.NumDeltas() != 1 || st.NumSequences() != rebuild.NumSequences() {
		t.Fatalf("after roll-forward: %d deltas, %d sequences (want 1, %d)",
			st.NumDeltas(), st.NumSequences(), rebuild.NumSequences())
	}
	db, err := st.Database()
	if err != nil {
		t.Fatal(err)
	}
	assertSameSearch(t, "roll-forward", db, rebuild,
		[]string{queryFrom(base, 120), batch[0].Residues})
	// Replay is idempotent: the WAL was reset, nothing pending.
	if info, err := VerifyStore(dir); err != nil || info.PendingWAL != 0 {
		t.Fatalf("after recovery VerifyStore = %+v, %v", info, err)
	}
}

// TestStoreWALTornTail pins the other half of the commit protocol: a torn
// final record (the crash-during-write state) is discarded, recovering the
// pre-commit state, while an intact record with an impossible sequence
// number is corruption, not a tail.
func TestStoreWALTornTail(t *testing.T) {
	base := storeSeqs(25, 61, "base")
	batch := storeSeqs(5, 62, "wal")
	dir := t.TempDir()
	if _, err := InitStore(dir, base, storeParams()); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, walName)
	if err := appendWAL(walPath, 1, encodeWALPayload(batch)); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: drop the last few bytes of the record.
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(dir, storeParams())
	if err != nil {
		t.Fatalf("recovery from torn tail: %v", err)
	}
	if st.NumDeltas() != 0 || st.ManifestSeq() != 1 {
		t.Fatalf("torn tail not discarded: %d deltas, manifest seq %d", st.NumDeltas(), st.ManifestSeq())
	}
	// The discarded tail must have been truncated away, and the store must
	// accept the batch again cleanly.
	if _, err := st.Append(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyStore(dir); err != nil {
		t.Fatal(err)
	}

	// An intact record whose seq skips ahead of the watermark cannot be
	// explained by any crash of this protocol: typed corruption.
	if err := appendWAL(walPath, 7, encodeWALPayload(batch)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir, storeParams()); !errors.Is(err, ErrStoreCorrupt) {
		t.Fatalf("OpenStore with gapped WAL seq = %v, want ErrStoreCorrupt", err)
	}
	if _, err := VerifyStore(dir); !errors.Is(err, ErrStoreCorrupt) {
		t.Fatalf("VerifyStore with gapped WAL seq = %v, want ErrStoreCorrupt", err)
	}
}

// TestStoreGCOrphans: recovery removes files a crash orphaned — temp files
// and containers no manifest references — and leaves foreign files alone.
func TestStoreGCOrphans(t *testing.T) {
	dir, _, _, _, _ := storeFixture(t)
	orphans := []string{"delta-009999.mublastp", "base-000777.mublastp", "MANIFEST.1234.tmp"}
	for _, name := range orphans {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	foreign := filepath.Join(dir, "notes.txt")
	if err := os.WriteFile(foreign, []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir, storeParams()); err != nil {
		t.Fatal(err)
	}
	for _, name := range orphans {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("orphan %s survived recovery (err=%v)", name, err)
		}
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Fatalf("foreign file removed by GC: %v", err)
	}
}

// TestStoreValidateBatch: ingestion refuses what replay could not later
// reproduce — empty batches, unnamed sequences, unencodable residues —
// before anything touches the WAL.
func TestStoreValidateBatch(t *testing.T) {
	dir := t.TempDir()
	st, err := InitStore(dir, storeSeqs(10, 71, "base"), storeParams())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		batch []Sequence
	}{
		{"empty batch", nil},
		{"unnamed sequence", []Sequence{{Name: "", Residues: "MKTAYIAK"}}},
		{"empty residues", []Sequence{{Name: "x", Residues: ""}}},
		{"unencodable residues", []Sequence{{Name: "x", Residues: "MKT4YIAK"}}},
	}
	for _, tc := range cases {
		if _, err := st.Append(tc.batch); err == nil {
			t.Errorf("%s: Append accepted it", tc.name)
		}
	}
	// Nothing durable happened: no WAL, manifest untouched, store usable.
	if info, err := VerifyStore(dir); err != nil || info.ManifestSeq != 1 || info.PendingWAL != 0 {
		t.Fatalf("after rejected batches VerifyStore = %+v, %v", info, err)
	}
	if _, err := st.Append(storeSeqs(3, 72, "ok")); err != nil {
		t.Fatal(err)
	}
}

// TestStoreTieredRefusesOtherEngines: the tiered view only supports the
// muBLASTP engine and says so; Save and Shards refuse tiered databases with
// instructions to compact.
func TestStoreTieredRefusals(t *testing.T) {
	_, st, _, _, _ := storeFixture(t)
	db, err := st.Database()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.SearchWithEngine(EngineNCBI, "MKTAYIAKQRQISFVKSHFSRQ"); err == nil ||
		!strings.Contains(err.Error(), "compact") {
		t.Fatalf("tiered NCBI engine search = %v, want compact-the-store error", err)
	}
	if err := db.Save(nopWriter{}); err == nil || !strings.Contains(err.Error(), "compact") {
		t.Fatalf("tiered Save = %v, want compact-the-store error", err)
	}
	if _, err := db.Shards(2); err == nil || !strings.Contains(err.Error(), "compact") {
		t.Fatalf("tiered Shards = %v, want compact-the-store error", err)
	}
}

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestStoreTieredShardWire runs the tiered database as a store-backed shard
// through the detached wire path — shard search, Wire, Import, merge — and
// checks the output is byte-identical to the monolithic rebuild. This is
// the path a mublastpd serving an ingest store exercises under a router.
func TestStoreTieredShardWire(t *testing.T) {
	_, st, base, b1, b2 := storeFixture(t)
	db, err := st.Database()
	if err != nil {
		t.Fatal(err)
	}
	rebuild, err := NewDatabase(concat(base, b1, b2), storeParams())
	if err != nil {
		t.Fatal(err)
	}
	queries := storeQueries(base, b1, b2)
	mono, err := rebuild.SearchBatchCtx(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}

	part, err := db.SearchShardBatchCtx(context.Background(), queries, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := part.Wire(queries)
	if err != nil {
		t.Fatal(err)
	}
	imported, err := ImportShardResult(wire)
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range [][]*ShardResult{{part}, {imported}} {
		merged, err := MergeShards(queries, parts)
		if err != nil {
			t.Fatal(err)
		}
		for qi := range queries {
			if g, w := merged.Results[qi].Tabular("q"), mono.Results[qi].Tabular("q"); g != w {
				t.Fatalf("query %d: shard path differs from monolithic:\n got:\n%s\n want:\n%s", qi, g, w)
			}
		}
	}
}

// TestStoreDeltaIngestFasterThanRebuild is the latency claim behind the
// whole design, gated loosely for CI noise: appending a 1% batch to an
// existing store must beat rebuilding the whole database by at least 3x
// (the measured ratio on an idle machine is far higher; EXPERIMENTS.md
// records it).
func TestStoreDeltaIngestFasterThanRebuild(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	base := storeSeqs(6000, 81, "base")
	batch := storeSeqs(60, 82, "inc") // a 1% increment
	all := concat(base, batch)
	p := DefaultParams()
	p.BlockResidues = 16384

	st, err := InitStore(t.TempDir(), base, p)
	if err != nil {
		t.Fatal(err)
	}
	var ratio float64
	for attempt := 0; attempt < 3; attempt++ {
		t0 := time.Now()
		if _, err := st.Append(batch); err != nil {
			t.Fatal(err)
		}
		delta := time.Since(t0)
		// The fair comparator is durable-to-durable: a full rebuild also
		// re-indexes everything and commits the result to disk.
		t0 = time.Now()
		if _, err := InitStore(t.TempDir(), all, p); err != nil {
			t.Fatal(err)
		}
		rebuild := time.Since(t0)
		ratio = float64(rebuild) / float64(delta)
		t.Logf("attempt %d: delta append %v, full rebuild %v (%.1fx)", attempt, delta, rebuild, ratio)
		if ratio >= 3 {
			return
		}
		// Retry with a fresh store against scheduler noise.
		if st, err = InitStore(t.TempDir(), base, p); err != nil {
			t.Fatal(err)
		}
	}
	t.Fatalf("delta ingest only %.1fx faster than rebuild; want >= 3x", ratio)
}

// FuzzTieredEquivalence drives the tiered-search invariant with fuzzed
// queries: for any valid query, base+deltas must equal the from-scratch
// rebuild exactly, down to the rendered output.
func FuzzTieredEquivalence(f *testing.F) {
	base := storeSeqs(30, 91, "base")
	b1 := storeSeqs(8, 92, "d1x")
	b2 := storeSeqs(6, 93, "d2x")
	dir := f.TempDir()
	st, err := InitStore(dir, base, storeParams())
	if err != nil {
		f.Fatal(err)
	}
	for _, b := range [][]Sequence{b1, b2} {
		if _, err := st.Append(b); err != nil {
			f.Fatal(err)
		}
	}
	tiered, err := st.Database()
	if err != nil {
		f.Fatal(err)
	}
	rebuild, err := NewDatabase(concat(base, b1, b2), storeParams())
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte(b1[3].Residues))
	f.Add([]byte(base[0].Residues[:40]))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	const letters = "ACDEFGHIKLMNPQRSTVWY"
	f.Fuzz(func(t *testing.T, qRaw []byte) {
		if len(qRaw) < 8 {
			return
		}
		if len(qRaw) > 400 {
			qRaw = qRaw[:400]
		}
		q := make([]byte, len(qRaw))
		for i, b := range qRaw {
			q[i] = letters[int(b)%len(letters)]
		}
		queries := []string{string(q)}
		got, err := tiered.SearchBatch(queries)
		if err != nil {
			t.Fatal(err)
		}
		want, err := rebuild.SearchBatch(queries)
		if err != nil {
			t.Fatal(err)
		}
		if g, w := got[0].Tabular("q"), want[0].Tabular("q"); g != w {
			t.Fatalf("tiered output differs from rebuild:\n got:\n%s\n want:\n%s", g, w)
		}
	})
}
