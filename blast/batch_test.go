package blast

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/search"
)

func batchQueries(seqs []Sequence, n int) []string {
	out := make([]string, 0, n)
	for _, s := range seqs {
		if len(s.Residues) >= 120 {
			out = append(out, s.Residues[3:117])
			if len(out) == n {
				break
			}
		}
	}
	return out
}

func renderHits(r *Result) string {
	s := fmt.Sprintf("%d hits\n", len(r.Hits))
	for _, h := range r.Hits {
		s += fmt.Sprintf("%s %d %v %v %d-%d %d-%d %s\n",
			h.SubjectName, h.Score, h.BitScore, h.EValue,
			h.QueryStart, h.QueryEnd, h.SubjectStart, h.SubjectEnd, h.Ops)
	}
	return s
}

func TestSearchBatchCtxMatchesSearchBatch(t *testing.T) {
	db, seqs := testDatabase(t)
	queries := batchQueries(seqs, 4)
	want, err := db.SearchBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	br, err := db.SearchBatchCtx(context.Background(), queries)
	if err != nil || br.Err != nil {
		t.Fatalf("clean ctx batch: err=%v batchErr=%v", err, br.Err)
	}
	if br.CompletedCount() != len(queries) {
		t.Fatalf("completed %d of %d", br.CompletedCount(), len(queries))
	}
	for i := range queries {
		if got, exp := renderHits(br.Results[i]), renderHits(want[i]); got != exp {
			t.Errorf("query %d differs:\n%s\nvs\n%s", i, got, exp)
		}
	}
}

func TestSearchBatchCtxTimeoutPartial(t *testing.T) {
	_, seqs := testDatabase(t)
	p := DefaultParams()
	p.BlockResidues = 4096
	p.Threads = 2
	p.Timeout = 25 * time.Millisecond
	db, err := NewDatabase(seqs, p)
	if err != nil {
		t.Fatal(err)
	}
	queries := batchQueries(seqs, 6)
	if err := faultinject.Enable("core.hitdetect=delay:10ms", 1); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disable()
	br, err := db.SearchBatchCtx(context.Background(), queries)
	faultinject.Disable()
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(br.Err, ErrDeadline) {
		t.Fatalf("batch err = %v, want ErrDeadline", br.Err)
	}
	if !br.Sched.DeadlineExceeded {
		t.Error("SchedStats.DeadlineExceeded not set")
	}
	if br.CompletedCount() == len(queries) {
		t.Error("deadline batch completed everything; no partial case exercised")
	}
	for i, done := range br.Completed {
		if done && br.QueryErrs[i] != nil {
			t.Errorf("completed query %d has error %v", i, br.QueryErrs[i])
		}
		if !done {
			var qc *search.QueryCancelledError
			if !errors.As(br.QueryErrs[i], &qc) {
				t.Errorf("incomplete query %d: err=%v, want QueryCancelledError", i, br.QueryErrs[i])
			}
		}
	}
}

func TestSearchBatchCtxCancellation(t *testing.T) {
	db, seqs := testDatabase(t)
	queries := batchQueries(seqs, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	br, err := db.SearchBatchCtx(ctx, queries)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(br.Err, context.Canceled) {
		t.Fatalf("batch err = %v, want context.Canceled", br.Err)
	}
	if br.CompletedCount() != 0 {
		t.Errorf("pre-cancelled batch completed %d queries", br.CompletedCount())
	}
}

func TestSearchBatchCtxRejectsBadQuery(t *testing.T) {
	db, seqs := testDatabase(t)
	if _, err := db.SearchBatchCtx(context.Background(), []string{seqs[0].Residues, "B@D"}); err == nil {
		t.Fatal("invalid residues accepted")
	}
}

func TestLoadShortReadIsTypedCorruption(t *testing.T) {
	db, _ := testDatabase(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Sanity: the intact container loads.
	if _, err := Load(bytes.NewReader(full), DefaultParams()); err != nil {
		t.Fatalf("intact container rejected: %v", err)
	}
	// A stream cut short at several depths must always produce a typed
	// error — never a panic or a silently truncated database.
	for _, limit := range []int{0, 4, 64, len(full) / 2, len(full) - 1} {
		spec := fmt.Sprintf("db.read=shortread:%d", limit)
		if err := faultinject.Enable(spec, 1); err != nil {
			t.Fatal(err)
		}
		_, err := Load(bytes.NewReader(full), DefaultParams())
		faultinject.Disable()
		if err == nil {
			t.Fatalf("limit %d: truncated container loaded", limit)
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
			t.Errorf("limit %d: error %v not typed as corruption", limit, err)
		}
	}
}
