// Package blast is the public API of this muBLASTP reproduction: a
// database-indexed protein sequence search library (BLASTP) for multicore
// machines, implementing Zhang et al., "Eliminating Irregularities of
// Protein Sequence Search on Multicore Architectures" (IPDPS 2017).
//
// Basic use:
//
//	db, err := blast.NewDatabase(seqs, blast.DefaultParams())
//	res, err := db.Search("MKTAYIAKQR...")
//	for _, h := range res.Hits { fmt.Println(h.SubjectName, h.EValue) }
//
// The database index is built once (NewDatabase) and reused across queries
// and batches — the design point of database-indexed BLAST. Four engines are
// available for comparison (EngineMuBLASTP, EngineNCBI, EngineNCBIdb,
// EngineNCBIDFA); they return identical hits, differing only in speed and
// memory behaviour.
package blast

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/alphabet"
	"repro/internal/core"
	"repro/internal/dbase"
	"repro/internal/dbindex"
	"repro/internal/gapped"
	"repro/internal/matrix"
	"repro/internal/neighbor"
	"repro/internal/search"
	"repro/internal/ungapped"
)

// Params configures a database and its searches. Zero values select the
// BLASTP defaults noted per field; construct with DefaultParams and adjust.
type Params struct {
	// Matrix names the substitution matrix: BLOSUM62 (default), BLOSUM50,
	// or PAM250.
	Matrix string
	// NeighborThreshold is the word-pair score T for neighboring words
	// (default 11).
	NeighborThreshold int
	// TwoHitWindow is the two-hit distance A (default 40).
	TwoHitWindow int
	// UngappedXDrop stops ungapped extensions (raw score; default 16).
	UngappedXDrop int
	// UngappedTrigger is the raw score an ungapped alignment needs to enter
	// the gapped stage (default 38).
	UngappedTrigger int
	// GapOpen/GapExtend are the affine gap penalties (default 11/1).
	GapOpen   int
	GapExtend int
	// GappedXDrop stops gapped extensions (raw score; default 38).
	GappedXDrop int
	// EValueCutoff drops weaker hits (default 10).
	EValueCutoff float64
	// MaxResults caps hits per query (default 250).
	MaxResults int
	// BlockResidues caps index-block size in residues; 0 sizes blocks by
	// the paper's L3 rule for the configured thread count.
	BlockResidues int64
	// Threads used by batch searches; 0 means GOMAXPROCS.
	Threads int
	// SplitLongerThan splits subject sequences longer than this into
	// overlapping chunks before indexing (the Orion-style handling of
	// ~40k-residue sequences, paper Section IV-A); hits are mapped back to
	// original coordinates. 0 means the default of 10000; negative disables.
	SplitLongerThan int
	// SplitOverlap is the chunk overlap in residues (default 256).
	SplitOverlap int
	// OneHit switches to BLAST's one-hit algorithm (every hit extends,
	// no two-hit pairing): more sensitive, much slower. NCBI pairs it with
	// NeighborThreshold 13.
	OneHit bool
	// Scheduler selects the batch scheduling strategy: "block-major" (the
	// default, a barrier-free dynamic schedule over the flattened
	// block × query task grid) or "barrier" (the paper's Algorithm 3 as
	// printed, with a worker barrier at every index-block boundary; kept
	// for ablation). Both produce identical results.
	Scheduler string
	// Timeout bounds each batch search: past it the batch stops between
	// tasks and returns partial results, with BatchResult.Err wrapping
	// ErrDeadline and per-query completion flags telling the completed
	// queries (byte-identical to an unbounded run) from the abandoned
	// ones. 0 means no deadline.
	Timeout time.Duration
	// GlobalDBResidues and GlobalDBSequences, when positive, declare that
	// this database is one shard of a larger logical database with the given
	// totals: E-values (and hence cutoff filtering and ranking) are computed
	// against the global search space, so hits from this shard merge
	// byte-identically with the other shards' into a single-database result
	// (paper Section IV-D3's global-statistics merge). Both must be set
	// together; they are search-time parameters, not part of the container
	// build fingerprint. Zero means the database is the whole search space.
	GlobalDBResidues  int64
	GlobalDBSequences int64
}

// DefaultParams returns the BLASTP defaults the paper evaluates with.
func DefaultParams() Params {
	return Params{
		Matrix:            "BLOSUM62",
		NeighborThreshold: neighbor.DefaultThreshold,
		TwoHitWindow:      40,
		UngappedXDrop:     16,
		UngappedTrigger:   38,
		GapOpen:           11,
		GapExtend:         1,
		GappedXDrop:       38,
		EValueCutoff:      10,
		MaxResults:        250,
	}
}

// Sequence is one named protein sequence in ASCII residues.
type Sequence struct {
	Name     string
	Residues string
}

// EngineKind selects a search pipeline.
type EngineKind int

const (
	// EngineMuBLASTP is the paper's optimized engine (default).
	EngineMuBLASTP EngineKind = iota
	// EngineNCBI is the query-indexed baseline (classic NCBI-BLAST).
	EngineNCBI
	// EngineNCBIdb is the db-indexed interleaved baseline ("NCBI-db").
	EngineNCBIdb
	// EngineNCBIDFA is the query-indexed baseline with FSA-BLAST's DFA hit
	// detection instead of the lookup table (paper Section VI).
	EngineNCBIDFA
)

func (k EngineKind) String() string {
	switch k {
	case EngineMuBLASTP:
		return "muBLASTP"
	case EngineNCBI:
		return "NCBI"
	case EngineNCBIdb:
		return "NCBI-db"
	case EngineNCBIDFA:
		return "NCBI-DFA"
	}
	return fmt.Sprintf("EngineKind(%d)", int(k))
}

// Database is an indexed, searchable protein database.
type Database struct {
	params Params
	cfg    *search.Config
	db     *dbase.DB
	ix     *dbindex.Index

	// Long-sequence splitting bookkeeping: origin[i] records where db.Seqs
	// (post-sort, by Name lookup) chunks came from. Keyed by chunk name.
	// The table is persisted in the saved container (ORGN section) rather
	// than recovered from name suffixes, so sequence names containing "#"
	// are never misread as chunks.
	chunkOrigin map[string]chunkInfo

	// Effective split geometry the database was built with (0/0 when
	// splitting is disabled); recorded in the saved container's fingerprint.
	splitLen     int
	splitOverlap int

	mu      *core.Engine
	ncbi    *search.QueryIndexed
	ncbiDB  *search.DBIndexed
	ncbiDFA *search.QueryIndexedDFA

	// Tiered (base+deltas) state, attached when the database was opened from
	// an ingest store with outstanding delta containers: tiers[0] is this
	// database itself, tiers[1:] the deltas in manifest order, each with its
	// local-to-combined id mapping; tierRev inverts the mapping. nil for a
	// single-container database. See tiered.go.
	tiers   []tierRef
	tierRev []tierLoc

	// Ingest-store provenance (zero when not opened from a store): the
	// manifest commit seq, its content hash, and the delta count — the
	// router's mixed-manifest refusal token.
	manifestSeq  int64
	manifestHash string
	numDeltas    int
}

// chunkInfo maps a split chunk back to its source sequence.
type chunkInfo struct {
	origName string
	offset   int
}

// NewDatabase encodes and indexes the sequences. Sequences are length-
// sorted internally; hit ordering in results is by score, not input order.
func NewDatabase(seqs []Sequence, p Params) (*Database, error) {
	encoded := make([][]alphabet.Code, len(seqs))
	names := make([]string, len(seqs))
	for i, s := range seqs {
		e, err := alphabet.Encode([]byte(s.Residues))
		if err != nil {
			return nil, fmt.Errorf("blast: sequence %q: %w", s.Name, err)
		}
		encoded[i] = e
		names[i] = s.Name
	}
	db := dbase.New(encoded)
	for i := range db.Seqs {
		if names[i] != "" {
			db.Seqs[i].Name = names[i]
		}
	}
	return newDatabaseFrom(db, p)
}

func newDatabaseFrom(db *dbase.DB, p Params) (*Database, error) {
	cfg, err := buildConfig(p)
	if err != nil {
		return nil, err
	}
	splitLen, overlap := effectiveSplit(p)
	var chunkOrigin map[string]chunkInfo
	if splitLen > 0 {
		origNames := make([]string, db.NumSeqs())
		for i := range db.Seqs {
			origNames[i] = db.Seqs[i].Name
		}
		split, origins := dbase.SplitLong(db, splitLen, overlap)
		if split.NumSeqs() != db.NumSeqs() {
			chunkOrigin = make(map[string]chunkInfo)
			for i := range split.Seqs {
				o := origins[i]
				if o.Offset > 0 || split.Seqs[i].Name != origNames[o.OrigIndex] {
					chunkOrigin[split.Seqs[i].Name] = chunkInfo{origName: origNames[o.OrigIndex], offset: o.Offset}
				}
			}
			db = split
		}
	}
	blockResidues := p.BlockResidues
	if blockResidues <= 0 {
		threads := p.Threads
		if threads <= 0 {
			threads = runtime.GOMAXPROCS(0)
		}
		// Paper Section V-B sizing rule against a 30MB LLC default.
		blockResidues = dbindex.OptimalBlockResidues(30<<20, threads)
	}
	ix, err := dbindex.Build(db, cfg.Neighbors, blockResidues)
	if err != nil {
		return nil, fmt.Errorf("blast: building index: %w", err)
	}
	if _, err := schedulerFor(p.Scheduler); err != nil {
		return nil, err
	}
	d := &Database{params: p, cfg: cfg, db: db, ix: ix, chunkOrigin: chunkOrigin,
		splitLen: splitLen, splitOverlap: overlap}
	d.attachEngines()
	return d, nil
}

// effectiveSplit resolves Params' long-sequence split geometry to the values
// actually applied: (0, 0) when splitting is disabled, otherwise the
// threshold and overlap with defaults filled in. Load compares these against
// the saved fingerprint.
func effectiveSplit(p Params) (splitLen, overlap int) {
	splitLen = p.SplitLongerThan
	if splitLen == 0 {
		splitLen = 10000
	}
	overlap = p.SplitOverlap
	if overlap <= 0 {
		overlap = 256
	}
	if splitLen <= 0 || overlap >= splitLen {
		return 0, 0
	}
	return splitLen, overlap
}

// neighborFor memoizes neighbor.Build: the table is a pure function of
// (matrix, threshold), read-only once built, and costs tens of milliseconds
// to enumerate — which would dominate every small delta-container build on
// the ingestion path (and every repeated NewDatabase in one process).
// Built-in matrices are canonical singletons, so the name keys the cache.
func neighborFor(m *matrix.Matrix, threshold int) *neighbor.Table {
	key := neighborKey{matrix: m.Name, threshold: threshold}
	neighborMu.Lock()
	defer neighborMu.Unlock()
	if t, ok := neighborCache[key]; ok {
		return t
	}
	t := neighbor.Build(m, threshold)
	neighborCache[key] = t
	return t
}

type neighborKey struct {
	matrix    string
	threshold int
}

var (
	neighborMu    sync.Mutex
	neighborCache = map[neighborKey]*neighbor.Table{}
)

// schedulerFor maps the Params.Scheduler name to the engine option.
func schedulerFor(name string) (core.Scheduler, error) {
	switch name {
	case "", "block-major":
		return core.SchedBlockMajor, nil
	case "barrier":
		return core.SchedBarrier, nil
	}
	return 0, fmt.Errorf("blast: unknown scheduler %q (want block-major or barrier)", name)
}

func (d *Database) attachEngines() {
	opt := core.DefaultOptions()
	opt.Scheduler, _ = schedulerFor(d.params.Scheduler)
	d.mu = core.NewWithOptions(d.cfg, d.ix, opt)
	d.ncbi = search.NewQueryIndexed(d.cfg, d.db)
	d.ncbiDB = search.NewDBIndexed(d.cfg, d.ix)
	d.ncbiDFA = search.NewQueryIndexedDFA(d.cfg, d.db)
}

func buildConfig(p Params) (*search.Config, error) {
	m, err := matrix.ByName(p.Matrix)
	if err != nil {
		return nil, fmt.Errorf("blast: %w", err)
	}
	nbr := neighborFor(m, p.NeighborThreshold)
	cfg, err := search.NewConfig(m, nbr)
	if err != nil {
		return nil, fmt.Errorf("blast: %w", err)
	}
	cfg.TwoHit = ungapped.Params{Window: p.TwoHitWindow, XDrop: p.UngappedXDrop, Trigger: p.UngappedTrigger, OneHit: p.OneHit}
	cfg.Gap = gapped.Params{GapOpen: p.GapOpen, GapExtend: p.GapExtend, XDrop: p.GappedXDrop}
	cfg.EValueCutoff = p.EValueCutoff
	cfg.MaxResults = p.MaxResults
	// Shard-of-a-larger-database statistics: both totals must travel
	// together, or every E-value in the merged ranking drifts from the
	// monolithic search (the partition-boundary bug class this guards).
	if (p.GlobalDBResidues > 0) != (p.GlobalDBSequences > 0) {
		return nil, fmt.Errorf("blast: GlobalDBResidues and GlobalDBSequences must be set together (got %d residues, %d sequences)",
			p.GlobalDBResidues, p.GlobalDBSequences)
	}
	cfg.DBLenOverride = p.GlobalDBResidues
	cfg.DBSeqsOverride = p.GlobalDBSequences
	return cfg, nil
}

// NumSequences returns the number of database sequences (summed across
// base + deltas for a tiered database).
func (d *Database) NumSequences() int {
	if d.tiers != nil {
		n := 0
		for _, t := range d.tiers {
			n += t.d.db.NumSeqs()
		}
		return n
	}
	return d.db.NumSeqs()
}

// SearchSettings reports the result-shaping parameters this database serves
// with: the E-value cutoff and the per-query report cap. Shard-coherent
// serving checks them across replicas — they must match or merged output
// drifts from the monolithic search.
func (d *Database) SearchSettings() (evalueCutoff float64, maxResults int) {
	return d.params.EValueCutoff, d.params.MaxResults
}

// TotalResidues returns the total residue count (summed across base + deltas
// for a tiered database).
func (d *Database) TotalResidues() int64 {
	if d.tiers != nil {
		var n int64
		for _, t := range d.tiers {
			n += t.d.db.TotalResidues
		}
		return n
	}
	return d.db.TotalResidues
}

// NumBlocks returns the number of index blocks (across all tiers).
func (d *Database) NumBlocks() int {
	if d.tiers != nil {
		n := 0
		for _, t := range d.tiers {
			n += len(t.d.ix.Blocks)
		}
		return n
	}
	return len(d.ix.Blocks)
}

// IndexSizeBytes returns the in-memory size of the database index (across
// all tiers).
func (d *Database) IndexSizeBytes() int64 {
	if d.tiers != nil {
		var n int64
		for _, t := range d.tiers {
			n += t.d.ix.SizeBytes()
		}
		return n
	}
	return d.ix.SizeBytes()
}

// SubjectResidues returns the residues of a subject by its Hit.Subject id.
// For a tiered database the id is in the combined (rebuild-global) space.
func (d *Database) SubjectResidues(subject int) string {
	if d.tiers != nil {
		loc := d.tierRev[subject]
		return alphabet.String(d.tiers[loc.tier].d.db.Seqs[loc.local].Data)
	}
	return alphabet.String(d.db.Seqs[subject].Data)
}

// Hit is one reported alignment.
type Hit struct {
	Subject      int // database-internal subject id (see SubjectResidues)
	SubjectName  string
	Score        int // raw alignment score
	BitScore     float64
	EValue       float64
	QueryStart   int // 0-based, half-open
	QueryEnd     int
	SubjectStart int
	SubjectEnd   int
	Identity     float64 // fraction of aligned columns with identical residues
	Ops          string  // traceback: M (aligned pair), I (gap in query), D (gap in subject)
}

// Result is the outcome of one query.
type Result struct {
	QueryLen int
	Hits     []Hit
	Stats    search.Stats
}

// Search runs a single query through the muBLASTP engine.
func (d *Database) Search(query string) (*Result, error) {
	return d.SearchWithEngine(EngineMuBLASTP, query)
}

// SearchWithEngine runs a single query through the chosen engine.
func (d *Database) SearchWithEngine(kind EngineKind, query string) (*Result, error) {
	if d.tiers != nil {
		if kind != EngineMuBLASTP {
			return nil, fmt.Errorf("blast: tiered (base+deltas) database supports only the muBLASTP engine, not %v; compact the store first", kind)
		}
		br, err := d.searchTieredBatch(context.Background(), []string{query})
		if err != nil {
			return nil, err
		}
		if !br.Completed[0] {
			if br.QueryErrs[0] != nil {
				return nil, br.QueryErrs[0]
			}
			return nil, br.Err
		}
		return br.Results[0], nil
	}
	q, err := alphabet.Encode([]byte(query))
	if err != nil {
		return nil, fmt.Errorf("blast: query: %w", err)
	}
	var res search.QueryResult
	switch kind {
	case EngineMuBLASTP:
		res = d.mu.Search(0, q)
	case EngineNCBI:
		res = d.ncbi.Search(0, q)
	case EngineNCBIdb:
		res = d.ncbiDB.Search(0, q)
	case EngineNCBIDFA:
		res = d.ncbiDFA.Search(0, q)
	default:
		return nil, fmt.Errorf("blast: unknown engine %v", kind)
	}
	return d.convert(q, res), nil
}

// SearchBatch runs a batch of queries through the muBLASTP engine with the
// configured thread count and scheduler (barrier-free block-major grid by
// default; Params.Scheduler selects the Algorithm 3 barrier loop instead).
func (d *Database) SearchBatch(queries []string) ([]*Result, error) {
	out, _, err := d.SearchBatchStats(queries)
	return out, err
}

// SearchBatchStats is SearchBatch plus the batch scheduler's utilization
// counters (workers used, task spread, busy vs stalled worker-time).
func (d *Database) SearchBatchStats(queries []string) ([]*Result, search.SchedStats, error) {
	if d.tiers != nil {
		br, err := d.searchTieredBatch(context.Background(), queries)
		if err != nil {
			return nil, search.SchedStats{}, err
		}
		if br.Err != nil {
			return nil, br.Sched, br.Err
		}
		return br.Results, br.Sched, nil
	}
	enc := make([][]alphabet.Code, len(queries))
	for i, s := range queries {
		q, err := alphabet.Encode([]byte(s))
		if err != nil {
			return nil, search.SchedStats{}, fmt.Errorf("blast: query %d: %w", i, err)
		}
		enc[i] = q
	}
	results, sched := d.mu.SearchBatchStats(enc, d.params.Threads)
	out := make([]*Result, len(results))
	for i := range results {
		out[i] = d.convert(enc[i], results[i])
	}
	return out, sched, nil
}

func (d *Database) convert(q []alphabet.Code, res search.QueryResult) *Result {
	return convertHSPs(q, res,
		func(_ int, h *search.HSP) float64 { return identity(q, d.db.Seqs[h.Subject].Data, &h.Aln) },
		func(_ int, h *search.HSP) (chunkInfo, bool) {
			info, ok := d.chunkOrigin[h.SubjectName]
			return info, ok
		})
}

// convertHSPs turns ranked HSPs into reported Hits against an abstract
// subject view: identityOf resolves the i-th HSP to its aligned-column
// identity fraction and origin resolves it to its split-chunk origin, if
// any. The closures receive the HSP's position in res.HSPs so merge paths
// whose HSPs come from different shards (including detached, wire-imported
// shard results with no local residues at all) can consult per-HSP side
// records. The monolithic database and the sharded merge both funnel
// through this one function, so chunk-coordinate mapping and overlap
// deduplication behave identically on both paths.
func convertHSPs(q []alphabet.Code, res search.QueryResult, identityOf func(i int, h *search.HSP) float64, origin func(i int, h *search.HSP) (chunkInfo, bool)) *Result {
	out := &Result{QueryLen: len(q), Stats: res.Stats, Hits: make([]Hit, 0, len(res.HSPs))}
	type hitKey struct {
		name          string
		score, qs, ss int
	}
	var seen map[hitKey]bool
	for i := range res.HSPs {
		h := &res.HSPs[i]
		hit := Hit{
			Subject:      h.Subject,
			SubjectName:  h.SubjectName,
			Score:        h.Aln.Score,
			BitScore:     h.BitScore,
			EValue:       h.EValue,
			QueryStart:   h.Aln.QStart,
			QueryEnd:     h.Aln.QEnd,
			SubjectStart: h.Aln.SStart,
			SubjectEnd:   h.Aln.SEnd,
			Identity:     identityOf(i, h),
			Ops:          string(h.Aln.Ops),
		}
		// Map split chunks back to original-sequence coordinates and drop
		// duplicates found in the overlap region of adjacent chunks
		// (Section IV-A's assembly step).
		if info, ok := origin(i, h); ok {
			hit.SubjectName = info.origName
			hit.SubjectStart += info.offset
			hit.SubjectEnd += info.offset
			if seen == nil {
				seen = make(map[hitKey]bool)
			}
			k := hitKey{info.origName, hit.Score, hit.QueryStart, hit.SubjectStart}
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		out.Hits = append(out.Hits, hit)
	}
	return out
}

// identity computes the fraction of alignment columns that are identical
// residue pairs.
func identity(q, s []alphabet.Code, a *gapped.Alignment) float64 {
	if len(a.Ops) == 0 {
		return 0
	}
	qi, sj, same := a.QStart, a.SStart, 0
	for _, op := range a.Ops {
		switch op {
		case gapped.OpMatch:
			if q[qi] == s[sj] {
				same++
			}
			qi, sj = qi+1, sj+1
		case gapped.OpIns:
			sj++
		case gapped.OpDel:
			qi++
		}
	}
	return float64(same) / float64(len(a.Ops))
}
