package blast

import (
	"fmt"
	"sort"
)

// SearchLong searches a query of arbitrary length by splitting it into
// overlapping chunks, searching each chunk, and merging hits back into
// whole-query coordinates — the "very long queries" extension the paper
// lists as future work (Section VII), handled symmetrically to the subject-
// side splitting of Section IV-A.
//
// chunkLen is the maximum chunk size (0 means 2048); overlap is the overlap
// between adjacent chunks (0 means 256, and it also bounds the alignment
// length that is guaranteed to be found intact). Alignments discovered in
// the overlap by both chunks are deduplicated.
func (d *Database) SearchLong(query string, chunkLen, overlap int) (*Result, error) {
	if chunkLen <= 0 {
		chunkLen = 2048
	}
	if overlap <= 0 {
		overlap = 256
	}
	if overlap >= chunkLen {
		return nil, fmt.Errorf("blast: overlap %d must be below chunk length %d", overlap, chunkLen)
	}
	if len(query) <= chunkLen {
		return d.Search(query)
	}

	out := &Result{QueryLen: len(query)}
	type key struct {
		name          string
		score, qs, ss int
	}
	seen := map[key]bool{}
	step := chunkLen - overlap
	for off := 0; ; off += step {
		end := off + chunkLen
		last := false
		if end >= len(query) {
			end = len(query)
			last = true
		}
		res, err := d.Search(query[off:end])
		if err != nil {
			return nil, fmt.Errorf("blast: chunk at %d: %w", off, err)
		}
		out.Stats.Add(res.Stats)
		for _, h := range res.Hits {
			h.QueryStart += off
			h.QueryEnd += off
			k := key{h.SubjectName, h.Score, h.QueryStart, h.SubjectStart}
			if seen[k] {
				continue
			}
			seen[k] = true
			out.Hits = append(out.Hits, h)
		}
		if last {
			break
		}
	}
	// Re-rank the merged hit list the way a single search would.
	sort.SliceStable(out.Hits, func(i, j int) bool {
		a, b := out.Hits[i], out.Hits[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.SubjectName != b.SubjectName {
			return a.SubjectName < b.SubjectName
		}
		if a.QueryStart != b.QueryStart {
			return a.QueryStart < b.QueryStart
		}
		return a.SubjectStart < b.SubjectStart
	})
	if d.params.MaxResults > 0 && len(out.Hits) > d.params.MaxResults {
		out.Hits = out.Hits[:d.params.MaxResults]
	}
	return out, nil
}
