package blast

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/alphabet"
	"repro/internal/dbase"
	"repro/internal/search"
)

// This file implements multi-container (tiered) search: a base container
// plus the ordered delta containers an ingest store has layered on it,
// searched as one database. The design piggybacks on two existing
// invariants:
//
//   - every container is internally in ascending length order (the format
//     requires it), and a from-scratch rebuild over base input followed by
//     each delta batch stable-sorts exactly that concatenation — so the
//     stable multi-way merge of the tiers (dbase.MergeOrder) reproduces the
//     rebuild's global id space with no stored mapping;
//   - E-values depend on the database only through its residue/sequence
//     totals, so opening every tier with Params.GlobalDB* set to the
//     combined totals (the same threading the shard merge uses) makes each
//     tier's scores and E-values equal the rebuild's.
//
// Each tier is searched by its own engine — deltas are just extra scheduler
// blocks — and the per-tier HSP lists are merged like shard results: subject
// ids remapped to the rebuild's ids, re-ranked with the monolithic
// comparator, re-capped at MaxResults, and converted through the same
// convertHSPs path. The merged output is byte-identical to searching a
// from-scratch rebuild of the same sequences (pinned by test + fuzz), with
// the same theoretical MaxResults-co-rank caveat the shard merge documents.

// tierRef is one container of a tiered database with its id remapping.
type tierRef struct {
	d     *Database
	idMap []int // local subject id -> combined (rebuild) id
}

// tierLoc locates a combined id back in its tier.
type tierLoc struct {
	tier, local int32
}

// tierHSPRef records which tier a merged HSP came from and its shard-local
// subject id, so identity/origin lookups survive the merge sort.
type tierHSPRef struct {
	tier      int32
	localSubj int32
}

// attachTiers turns base into the facade of a tiered database over
// base+deltas. The base database is tier 0 of its own tier list; accessors
// and search paths branch on d.tiers != nil.
func attachTiers(base *Database, deltas []*Database) {
	dbs := make([]*dbase.DB, 1+len(deltas))
	dbs[0] = base.db
	for i, dd := range deltas {
		dbs[i+1] = dd.db
	}
	order := dbase.MergeOrder(dbs)
	tiers := make([]tierRef, len(dbs))
	tiers[0] = tierRef{d: base, idMap: order[0]}
	total := base.db.NumSeqs()
	for i, dd := range deltas {
		tiers[i+1] = tierRef{d: dd, idMap: order[i+1]}
		total += dd.db.NumSeqs()
	}
	rev := make([]tierLoc, total)
	for t := range tiers {
		for j, rank := range tiers[t].idMap {
			rev[rank] = tierLoc{tier: int32(t), local: int32(j)}
		}
	}
	base.tiers = tiers
	base.tierRev = rev
}

// Tiered reports whether this database is a base+deltas view from an ingest
// store (true) or a single container (false).
func (d *Database) Tiered() bool { return d.tiers != nil }

// Manifest reports the ingest-store manifest this database was opened from:
// its commit sequence number, its content hash, and how many delta
// containers are layered on the base. All three are zero for a database that
// did not come from a store. Replicas serving one logical store must agree
// on the hash — the router's coherence handshake refuses mixed-manifest
// topologies.
func (d *Database) Manifest() (seq int64, hash string, deltas int) {
	return d.manifestSeq, d.manifestHash, d.numDeltas
}

// tieredBatch is the raw outcome of a tiered batch search: per-query merged
// HSP lists carrying combined (rebuild-global) subject ids, already ranked
// and capped, with per-HSP tier provenance for identity/origin resolution.
type tieredBatch struct {
	results   []search.QueryResult
	refs      [][]tierHSPRef
	completed []bool
	queryErrs []error
	sched     search.SchedStats
	err       error
}

// searchTieredRaw runs the batch over every tier and merges per-tier HSPs
// into the combined id space, mirroring MergeShards. Tiers run sequentially:
// a delta is a handful of extra blocks, and the per-tier scheduler already
// saturates the cores.
func (d *Database) searchTieredRaw(ctx context.Context, enc [][]alphabet.Code) *tieredBatch {
	nq := len(enc)
	tb := &tieredBatch{
		results:   make([]search.QueryResult, nq),
		refs:      make([][]tierHSPRef, nq),
		completed: make([]bool, nq),
		queryErrs: make([]error, nq),
	}
	maxResults := d.params.MaxResults

	type tierOut struct {
		results   []search.QueryResult
		completed []bool
		queryErrs []error
	}
	outs := make([]tierOut, len(d.tiers))
	var errs []error
	for t := range d.tiers {
		br := d.tiers[t].d.mu.SearchBatchCtx(ctx, enc, d.params.Threads)
		outs[t] = tierOut{results: br.Results, completed: br.Completed, queryErrs: br.QueryErrs}
		tb.sched.Workers = max(tb.sched.Workers, br.Sched.Workers)
		tb.sched.Scheduler = br.Sched.Scheduler
		tb.sched.Tasks += br.Sched.Tasks
		tb.sched.BusyNanos += br.Sched.BusyNanos
		tb.sched.StallNanos += br.Sched.StallNanos
		tb.sched.ElapsedNanos += br.Sched.ElapsedNanos
		tb.sched.TasksPanicked += br.Sched.TasksPanicked
		tb.sched.TasksCancelled += br.Sched.TasksCancelled
		tb.sched.QueriesAborted += br.Sched.QueriesAborted
		tb.sched.DeadlineExceeded = tb.sched.DeadlineExceeded || br.Sched.DeadlineExceeded
		if br.Err != nil {
			errs = append(errs, fmt.Errorf("tier %d: %w", t, br.Err))
		}
	}
	tb.err = errors.Join(errs...)

	for qi := 0; qi < nq; qi++ {
		completed := true
		var qerr error
		for t := range outs {
			if !outs[t].completed[qi] {
				completed = false
				if qerr == nil {
					qerr = outs[t].queryErrs[qi]
				}
			}
		}
		if !completed {
			tb.queryErrs[qi] = qerr
			tb.results[qi] = search.QueryResult{Query: qi}
			continue
		}
		merged := search.QueryResult{Query: qi}
		var refs []tierHSPRef
		for t := range outs {
			res := &outs[t].results[qi]
			idMap := d.tiers[t].idMap
			for li := range res.HSPs {
				h := res.HSPs[li]
				local := h.Subject
				h.Subject = idMap[local] // restore the rebuild-global id
				merged.HSPs = append(merged.HSPs, h)
				refs = append(refs, tierHSPRef{tier: int32(t), localSubj: int32(local)})
			}
			merged.Stats.Add(res.Stats)
		}
		// Rebuild-global ranking over rebuild-global ids, then the global
		// cap — exactly what Finalize does on the from-scratch rebuild.
		sortHSPsWithRefs(merged.HSPs, refs)
		if maxResults > 0 && len(merged.HSPs) > maxResults {
			merged.HSPs = merged.HSPs[:maxResults]
			refs = refs[:maxResults]
		}
		tb.results[qi] = merged
		tb.refs[qi] = refs
		tb.completed[qi] = true
	}
	return tb
}

// tierIdentity resolves a merged HSP to its aligned-column identity.
func (d *Database) tierIdentity(q []alphabet.Code, r tierHSPRef, h *search.HSP) float64 {
	return identity(q, d.tiers[r.tier].d.db.Seqs[r.localSubj].Data, &h.Aln)
}

// tierOrigin resolves a merged HSP to its split-chunk origin.
func (d *Database) tierOrigin(r tierHSPRef, h *search.HSP) (chunkInfo, bool) {
	info, ok := d.tiers[r.tier].d.chunkOrigin[h.SubjectName]
	return info, ok
}

// searchTieredBatch is the tiered SearchBatchCtx body: raw tier merge, then
// conversion through the shared convertHSPs path.
func (d *Database) searchTieredBatch(ctx context.Context, queries []string) (*BatchResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if d.params.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d.params.Timeout)
		defer cancel()
	}
	enc := make([][]alphabet.Code, len(queries))
	for i, s := range queries {
		q, err := alphabet.Encode([]byte(s))
		if err != nil {
			return nil, fmt.Errorf("blast: query %d: %w", i, err)
		}
		enc[i] = q
	}
	tb := d.searchTieredRaw(ctx, enc)
	out := &BatchResult{
		Results:   make([]*Result, len(queries)),
		Completed: tb.completed,
		QueryErrs: tb.queryErrs,
		Sched:     tb.sched,
		Err:       tb.err,
	}
	for qi := range queries {
		if !tb.completed[qi] {
			out.Results[qi] = &Result{QueryLen: len(enc[qi])}
			continue
		}
		q := enc[qi]
		refs := tb.refs[qi]
		out.Results[qi] = convertHSPs(q, tb.results[qi],
			func(i int, h *search.HSP) float64 { return d.tierIdentity(q, refs[i], h) },
			func(i int, h *search.HSP) (chunkInfo, bool) { return d.tierOrigin(refs[i], h) })
	}
	return out, nil
}

// searchTieredShard is the tiered SearchShardBatchCtx body: it produces a
// detached ShardResult (sidecar identity/origin records, like a wire import)
// whose HSPs carry combined local ids, so the scatter-gather merge treats a
// store-backed shard exactly like a single-container one.
func (d *Database) searchTieredShard(ctx context.Context, queries []string, shard, numShards int) (*ShardResult, error) {
	enc := make([][]alphabet.Code, len(queries))
	for i, s := range queries {
		q, err := alphabet.Encode([]byte(s))
		if err != nil {
			return nil, fmt.Errorf("blast: query %d: %w", i, err)
		}
		enc[i] = q
	}
	tb := d.searchTieredRaw(ctx, enc)
	r := &ShardResult{
		shard: shard, numShards: numShards,
		results: tb.results, completed: tb.completed, queryErrs: tb.queryErrs,
		sched: tb.sched, err: tb.err,
		maxResults: d.params.MaxResults,
		sidecar:    make([][]hspMeta, len(queries)),
	}
	for qi := range queries {
		if !tb.completed[qi] || len(tb.results[qi].HSPs) == 0 {
			continue
		}
		q := enc[qi]
		hsps := tb.results[qi].HSPs
		metas := make([]hspMeta, len(hsps))
		for i := range hsps {
			ref := tb.refs[qi][i]
			metas[i] = hspMeta{identity: d.tierIdentity(q, ref, &hsps[i])}
			if info, ok := d.tierOrigin(ref, &hsps[i]); ok {
				metas[i].origName = info.origName
				metas[i].offset = info.offset
				metas[i].hasOrigin = true
			}
		}
		r.sidecar[qi] = metas
	}
	return r, nil
}
