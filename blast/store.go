package blast

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/alphabet"
	"repro/internal/dbase"
	"repro/internal/dbindex"
)

// Store is a crash-safe, incrementally growable database on disk: one
// directory holding an immutable base container, zero or more immutable
// delta containers, the manifest naming the current set, and the ingestion
// WAL. All mutation goes through Append/Compact under the store's lock;
// every commit is WAL-then-delta-then-manifest with fsyncs at each boundary,
// so a crash anywhere leaves a state OpenStore recovers to exactly the pre-
// or post-commit database — never a torn hybrid. A Store is a single-writer
// object: exactly one process (and within it, one Store value) may own a
// directory at a time.
type Store struct {
	dir string
	p   Params

	mu  sync.Mutex
	man *manifest
	// broken latches after a failed commit: the on-disk state is whatever
	// the failure left (recoverable, by construction), but the in-memory
	// view can no longer be trusted to extend it — a retried Append could
	// re-log an already-durable WAL seq. Reopening runs recovery and
	// produces a clean Store, exactly as a crashed process would.
	broken bool
}

const (
	storeContainerSuffix = ".mublastp"
	storeBasePrefix      = "base-"
	storeDeltaPrefix     = "delta-"
)

func baseFileName(seq int64) string {
	return fmt.Sprintf("%s%06d%s", storeBasePrefix, seq, storeContainerSuffix)
}

func deltaFileName(seq int64) string {
	return fmt.Sprintf("%s%06d%s", storeDeltaPrefix, seq, storeContainerSuffix)
}

// AppendStats reports what one Append committed.
type AppendStats struct {
	ManifestSeq int64  // manifest commit seq after the append
	WALSeq      uint64 // WAL record seq the batch was logged as
	DeltaFile   string // file name of the new delta container
	Sequences   int    // sequences in the batch
	Deltas      int    // delta containers now outstanding
}

// StoreInfo is what VerifyStore reports about a fully validated store.
type StoreInfo struct {
	ManifestSeq   int64
	ManifestHash  string
	Deltas        int
	PendingWAL    int // durably logged batches not yet reflected in the manifest
	Fingerprint   Fingerprint
	NumSequences  int
	TotalResidues int64
	NumBlocks     int
}

// validateBatch rejects an ingestion batch before it reaches the WAL: every
// sequence must carry a name (tiered naming must match what a rebuild over
// explicitly named input produces) and encodable residues (replay must never
// fail on a durably logged record).
func validateBatch(batch []Sequence) error {
	if len(batch) == 0 {
		return errors.New("blast: empty ingestion batch")
	}
	if len(batch) > maxWALBatch {
		return fmt.Errorf("blast: ingestion batch of %d sequences exceeds cap %d", len(batch), maxWALBatch)
	}
	for i, s := range batch {
		if s.Name == "" {
			return fmt.Errorf("blast: ingestion batch sequence %d has no name", i)
		}
		if len(s.Residues) == 0 {
			return fmt.Errorf("blast: ingestion batch sequence %q is empty", s.Name)
		}
		if _, err := alphabet.Encode([]byte(s.Residues)); err != nil {
			return fmt.Errorf("blast: ingestion batch sequence %q: %w", s.Name, err)
		}
	}
	return nil
}

// InitStore creates a new ingest store at dir from an initial sequence set:
// the base container is built with p, written atomically, and committed as
// manifest seq 1. dir is created if missing; it must not already hold a
// store.
func InitStore(dir string, seqs []Sequence, p Params) (*Store, error) {
	if err := validateBatch(seqs); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("blast: creating store dir: %w", err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		return nil, fmt.Errorf("blast: %s already holds an ingest store (append to it instead)", dir)
	}
	db, err := NewDatabase(seqs, p)
	if err != nil {
		return nil, err
	}
	name := baseFileName(1)
	if err := writeContainer(dir, name, db); err != nil {
		return nil, err
	}
	entry, err := fileEntry(dir, name, db.db.NumSeqs(), db.db.TotalResidues)
	if err != nil {
		return nil, fmt.Errorf("blast: fingerprinting base: %w", err)
	}
	man := &manifest{Version: manifestVersion, Seq: 1, Base: entry}
	if err := commitManifest(dir, man); err != nil {
		return nil, err
	}
	return &Store{dir: dir, p: p, man: man}, nil
}

// writeContainer serializes db and commits it atomically as dir/name,
// exercising the delta-boundary fault sites.
func writeContainer(dir, name string, db *Database) error {
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		return err
	}
	if err := atomicWrite(dir, name, buf.Bytes(), fiDeltaWrite, fiDeltaSync, fiDeltaRename); err != nil {
		return fmt.Errorf("blast: committing %s: %w", name, err)
	}
	return nil
}

// OpenStore opens the store at dir, running full crash recovery first:
// validate the manifest and every container it references, replay durably
// logged WAL batches the manifest does not yet reflect (rolling the crash
// forward to its post-commit state), discard torn WAL tails (rolling back to
// the pre-commit state), and garbage-collect orphaned files from
// interrupted commits. Ambiguous damage — a manifest that fails its
// checksum, a referenced container missing or altered, intact WAL records
// that contradict the watermark — is refused with ErrStoreCorrupt rather
// than guessed around.
//
// p plays the same role as in Load: it must be compatible with the base
// container's build fingerprint. Set p.GlobalDB* only when this store is one
// shard of a larger logical database.
func OpenStore(dir string, p Params) (*Store, error) {
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range man.entries() {
		if err := checkEntry(dir, e); err != nil {
			return nil, err
		}
	}
	st := &Store{dir: dir, p: p, man: man}

	// Replay: every intact WAL record past the watermark was durably logged
	// by an Append whose commit did not land; delta construction is
	// deterministic, so applying it now yields the exact post-commit state.
	recs, _, err := scanWAL(st.walPath())
	if err != nil {
		return nil, err
	}
	pending := 0
	for _, rec := range recs {
		if rec.Seq <= man.WALApplied {
			continue // applied before the crash; the reset just didn't land
		}
		if rec.Seq != st.man.WALApplied+1 {
			return nil, fmt.Errorf("blast: %w: wal record seq %d but manifest applied through %d",
				ErrStoreCorrupt, rec.Seq, st.man.WALApplied)
		}
		if err := validateBatch(rec.Batch); err != nil {
			return nil, fmt.Errorf("blast: %w: replaying wal record %d: %v", ErrStoreCorrupt, rec.Seq, err)
		}
		if err := st.applyBatch(rec.Seq, rec.Batch); err != nil {
			return nil, fmt.Errorf("blast: replaying wal record %d: %w", rec.Seq, err)
		}
		pending++
	}
	if len(recs) > 0 || pending > 0 {
		if err := resetWAL(st.walPath()); err != nil {
			return nil, err
		}
	} else if _, err := os.Stat(st.walPath()); err == nil {
		// A torn tail with no intact records still needs discarding.
		if err := resetWAL(st.walPath()); err != nil {
			return nil, err
		}
	}
	if err := st.gc(); err != nil {
		return nil, err
	}
	return st, nil
}

func (st *Store) walPath() string { return filepath.Join(st.dir, walName) }

// Dir returns the store directory.
func (st *Store) Dir() string { return st.dir }

// ManifestSeq returns the current manifest commit sequence number.
func (st *Store) ManifestSeq() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.man.Seq
}

// ManifestHash returns the current manifest content hash.
func (st *Store) ManifestHash() string {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.man.hash()
}

// NumDeltas returns how many delta containers are outstanding.
func (st *Store) NumDeltas() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.man.Deltas)
}

// NumSequences returns the combined sequence count across base + deltas.
func (st *Store) NumSequences() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.man.sequences()
}

// gc removes files from interrupted commits: container files and temp files
// in the store directory that the current manifest does not reference. Runs
// only after recovery has settled the manifest, so everything unreferenced
// is provably garbage.
func (st *Store) gc() error {
	referenced := map[string]bool{manifestName: true, walName: true}
	for _, e := range st.man.entries() {
		referenced[e.Name] = true
	}
	ents, err := os.ReadDir(st.dir)
	if err != nil {
		return fmt.Errorf("blast: store gc: %w", err)
	}
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || referenced[name] {
			continue
		}
		owned := strings.HasSuffix(name, ".tmp") ||
			((strings.HasPrefix(name, storeBasePrefix) || strings.HasPrefix(name, storeDeltaPrefix)) &&
				strings.HasSuffix(name, storeContainerSuffix))
		if !owned {
			continue // not ours; leave foreign files alone
		}
		if err := os.Remove(filepath.Join(st.dir, name)); err != nil {
			return fmt.Errorf("blast: store gc: %w", err)
		}
	}
	return nil
}

// deltaParams derives the build parameters for a delta container from the
// base fingerprint, so every tier carries the identical fingerprint and the
// combined view is indistinguishable from one build.
func (st *Store) deltaParams(fp Fingerprint) Params {
	p := st.p
	p.Matrix = fp.Matrix
	p.NeighborThreshold = fp.NeighborThreshold
	p.BlockResidues = fp.BlockResidues
	if fp.SplitLongerThan > 0 {
		p.SplitLongerThan, p.SplitOverlap = fp.SplitLongerThan, fp.SplitOverlap
	} else {
		p.SplitLongerThan, p.SplitOverlap = -1, 0
	}
	p.GlobalDBResidues, p.GlobalDBSequences = 0, 0
	return p
}

// baseFingerprint reads the base container's build fingerprint.
func (st *Store) baseFingerprint() (Fingerprint, error) {
	info, err := VerifyFile(filepath.Join(st.dir, st.man.Base.Name))
	if err != nil {
		return Fingerprint{}, err
	}
	return info.Fingerprint, nil
}

// applyBatch builds the delta container for one durably logged batch and
// commits the manifest that includes it. Called with st.mu held (or before
// the store is shared). Deterministic: replaying the same record after a
// crash produces byte-identical results.
func (st *Store) applyBatch(walSeq uint64, batch []Sequence) error {
	fp, err := st.baseFingerprint()
	if err != nil {
		return err
	}
	db, err := NewDatabase(batch, st.deltaParams(fp))
	if err != nil {
		return fmt.Errorf("blast: building delta: %w", err)
	}
	next := st.man.Seq + 1
	name := deltaFileName(next)
	if err := writeContainer(st.dir, name, db); err != nil {
		return err
	}
	entry, err := fileEntry(st.dir, name, db.db.NumSeqs(), db.db.TotalResidues)
	if err != nil {
		return fmt.Errorf("blast: fingerprinting delta: %w", err)
	}
	newMan := *st.man
	newMan.Seq = next
	newMan.Deltas = append(append([]manifestEntry{}, st.man.Deltas...), entry)
	newMan.WALApplied = walSeq
	if err := commitManifest(st.dir, &newMan); err != nil {
		return err
	}
	st.man = &newMan
	return nil
}

// Append ingests a batch of new sequences as one delta container. The batch
// is validated, made durable in the WAL (the commit point: from here a crash
// rolls forward), built into a delta with the base's build fingerprint,
// written atomically, and committed to the manifest. On success the new
// sequences are part of the store's database; Database() reflects them.
func (st *Store) Append(batch []Sequence) (*AppendStats, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.broken {
		return nil, fmt.Errorf("blast: store %s needs recovery after a failed commit; reopen it", st.dir)
	}
	if err := validateBatch(batch); err != nil {
		return nil, err
	}
	walSeq := st.man.WALApplied + 1
	if err := appendWAL(st.walPath(), walSeq, encodeWALPayload(batch)); err != nil {
		st.broken = true
		return nil, fmt.Errorf("blast: %w", err)
	}
	if err := st.applyBatch(walSeq, batch); err != nil {
		st.broken = true
		return nil, err
	}
	// Cleanup only: a failed (or crashed) reset leaves applied records that
	// the next open skips via the watermark and then truncates.
	_ = resetWAL(st.walPath())
	return &AppendStats{
		ManifestSeq: st.man.Seq,
		WALSeq:      walSeq,
		DeltaFile:   st.man.Deltas[len(st.man.Deltas)-1].Name,
		Sequences:   len(batch),
		Deltas:      len(st.man.Deltas),
	}, nil
}

// Database opens the store's current container set as one searchable
// database: the base plus every delta, each opened with the combined totals
// as its global search space (exactly the shard-statistics threading), tied
// together by the stable merge-order id mapping. With no deltas outstanding
// this is a plain single-container load. The result is byte-identical to a
// from-scratch rebuild over the same sequences.
func (st *Store) Database() (*Database, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.databaseLocked()
}

func (st *Store) databaseLocked() (*Database, error) {
	p := st.p
	if len(st.man.Deltas) > 0 && p.GlobalDBResidues == 0 {
		// Every tier computes E-values against the combined search space.
		p.GlobalDBResidues = st.man.residues()
		p.GlobalDBSequences = int64(st.man.sequences())
	}
	base, err := LoadFile(filepath.Join(st.dir, st.man.Base.Name), p)
	if err != nil {
		return nil, fmt.Errorf("blast: opening base %s: %w", st.man.Base.Name, err)
	}
	baseFP := base.fingerprint()
	deltas := make([]*Database, len(st.man.Deltas))
	for i, e := range st.man.Deltas {
		dd, err := LoadFile(filepath.Join(st.dir, e.Name), p)
		if err != nil {
			return nil, fmt.Errorf("blast: opening delta %s: %w", e.Name, err)
		}
		if dd.fingerprint() != baseFP {
			return nil, fmt.Errorf("blast: %w: delta %s fingerprint %+v diverges from base %+v",
				ErrStoreCorrupt, e.Name, dd.fingerprint(), baseFP)
		}
		deltas[i] = dd
	}
	if len(deltas) > 0 {
		attachTiers(base, deltas)
	}
	base.manifestSeq = st.man.Seq
	base.manifestHash = st.man.hash()
	base.numDeltas = len(deltas)
	return base, nil
}

// Compact merges the base and every outstanding delta into a single new base
// container and commits a manifest that references only it. The merged
// database preserves the combined (rebuild-global) sequence order, so search
// results are byte-identical before and after compaction. The new base is
// fully verified before the manifest swap; any failure leaves the old set
// serving. Old containers are garbage-collected after the commit.
func (st *Store) Compact() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.broken {
		return fmt.Errorf("blast: store %s needs recovery after a failed commit; reopen it", st.dir)
	}
	if len(st.man.Deltas) == 0 {
		return nil
	}
	tiered, err := st.databaseLocked()
	if err != nil {
		return err
	}
	// Merge the already-split, already-sorted tier sequences in combined
	// order. Splitting does not recur (every stored sequence is at most the
	// split threshold long) and chunk origins are carried over, so this is
	// the rebuild's database without re-running the rebuild.
	dbs := make([]*dbase.DB, len(tiered.tiers))
	orders := make([][]int, len(tiered.tiers))
	origins := make(map[string]chunkInfo)
	for t, tr := range tiered.tiers {
		dbs[t] = tr.d.db
		orders[t] = tr.idMap
		for name, info := range tr.d.chunkOrigin {
			origins[name] = info
		}
	}
	merged := dbase.Merged(dbs, orders)
	baseTier := tiered.tiers[0].d
	ix, err := dbindex.Build(merged, baseTier.cfg.Neighbors, baseTier.ix.BlockResidues)
	if err != nil {
		return fmt.Errorf("blast: compaction index build: %w", err)
	}
	if len(origins) == 0 {
		origins = nil
	}
	bp := st.deltaParams(baseTier.fingerprint())
	cfg, err := buildConfig(bp)
	if err != nil {
		return err
	}
	nd := &Database{params: bp, cfg: cfg, db: merged, ix: ix, chunkOrigin: origins,
		splitLen: baseTier.splitLen, splitOverlap: baseTier.splitOverlap}
	nd.attachEngines()

	next := st.man.Seq + 1
	name := baseFileName(next)
	if err := writeContainer(st.dir, name, nd); err != nil {
		return err
	}
	// Verify-before-swap: the manifest only ever references proven bytes.
	if _, err := VerifyFile(filepath.Join(st.dir, name)); err != nil {
		return fmt.Errorf("blast: compacted base failed verification: %w", err)
	}
	entry, err := fileEntry(st.dir, name, merged.NumSeqs(), merged.TotalResidues)
	if err != nil {
		return fmt.Errorf("blast: fingerprinting compacted base: %w", err)
	}
	newMan := *st.man
	newMan.Seq = next
	newMan.Base = entry
	newMan.Deltas = nil
	if err := commitManifest(st.dir, &newMan); err != nil {
		return err
	}
	st.man = &newMan
	return st.gc()
}

// VerifyStore fully validates the store at dir without mutating it: the
// manifest (checksum, structure), every referenced container (size and CRC
// against its manifest entry, then the container's own full Verify pass,
// fingerprint coherence across tiers, totals against the manifest), and the
// WAL (intact records must sit coherently against the watermark). Torn WAL
// tails and orphaned files are reported implicitly via PendingWAL and are
// not errors — recovery handles them — so a store that passes VerifyStore
// plus OpenStore is exactly as trustworthy as a verified container.
func VerifyStore(dir string) (*StoreInfo, error) {
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	info := &StoreInfo{
		ManifestSeq:  man.Seq,
		ManifestHash: man.hash(),
		Deltas:       len(man.Deltas),
	}
	var baseFP Fingerprint
	for i, e := range man.entries() {
		if err := checkEntry(dir, e); err != nil {
			return nil, err
		}
		ci, err := VerifyFile(filepath.Join(dir, e.Name))
		if err != nil {
			return nil, fmt.Errorf("blast: store container %s: %w", e.Name, err)
		}
		if ci.NumSequences != e.Sequences || ci.TotalResidues != e.Residues {
			return nil, fmt.Errorf("blast: %w: %s holds %d sequences/%d residues, manifest says %d/%d",
				ErrStoreCorrupt, e.Name, ci.NumSequences, ci.TotalResidues, e.Sequences, e.Residues)
		}
		if i == 0 {
			baseFP = ci.Fingerprint
		} else if ci.Fingerprint != baseFP {
			return nil, fmt.Errorf("blast: %w: %s fingerprint diverges from base", ErrStoreCorrupt, e.Name)
		}
		info.NumSequences += ci.NumSequences
		info.TotalResidues += ci.TotalResidues
		info.NumBlocks += ci.NumBlocks
	}
	info.Fingerprint = baseFP
	recs, _, err := scanWAL(filepath.Join(dir, walName))
	if err != nil {
		return nil, err
	}
	for _, rec := range recs {
		if rec.Seq <= man.WALApplied {
			continue
		}
		if rec.Seq != man.WALApplied+uint64(info.PendingWAL)+1 {
			return nil, fmt.Errorf("blast: %w: wal record seq %d but manifest applied through %d",
				ErrStoreCorrupt, rec.Seq, man.WALApplied)
		}
		info.PendingWAL++
	}
	return info, nil
}

// IsStoreDir reports whether path is an ingest-store directory (holds a
// manifest), as opposed to a single-container file.
func IsStoreDir(path string) bool {
	fi, err := os.Stat(path)
	if err != nil || !fi.IsDir() {
		return false
	}
	_, err = os.Stat(filepath.Join(path, manifestName))
	return err == nil
}

// PathInfo is what VerifyPath reports about a validated database path —
// either a single container or a whole ingest store.
type PathInfo struct {
	Fingerprint   Fingerprint
	NumSequences  int
	TotalResidues int64
	NumBlocks     int
	// Store provenance; zero values for a plain container.
	ManifestSeq  int64
	ManifestHash string
	Deltas       int
	PendingWAL   int
}

// VerifyPath fully validates the database at path: a directory is verified
// as an ingest store, a file as a single container. This is what the
// serving tier's verify-before-swap reload runs, making /reload delta-aware.
func VerifyPath(path string) (*PathInfo, error) {
	if IsStoreDir(path) {
		si, err := VerifyStore(path)
		if err != nil {
			return nil, err
		}
		return &PathInfo{
			Fingerprint:   si.Fingerprint,
			NumSequences:  si.NumSequences,
			TotalResidues: si.TotalResidues,
			NumBlocks:     si.NumBlocks,
			ManifestSeq:   si.ManifestSeq,
			ManifestHash:  si.ManifestHash,
			Deltas:        si.Deltas,
			PendingWAL:    si.PendingWAL,
		}, nil
	}
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		return nil, fmt.Errorf("blast: %w: %s", ErrNoStore, path)
	}
	ci, err := VerifyFile(path)
	if err != nil {
		return nil, err
	}
	return &PathInfo{
		Fingerprint:   ci.Fingerprint,
		NumSequences:  ci.NumSequences,
		TotalResidues: ci.TotalResidues,
		NumBlocks:     ci.NumBlocks,
	}, nil
}

// Open opens the database at path with p: an ingest-store directory is
// opened with full crash recovery (WAL replay, torn-tail discard, orphan
// GC) and served as its base+deltas view; a file is loaded as a single
// container. The uniform entry point the session reload path uses.
func Open(path string, p Params) (*Database, error) {
	if IsStoreDir(path) {
		st, err := OpenStore(path, p)
		if err != nil {
			return nil, err
		}
		return st.Database()
	}
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		return nil, fmt.Errorf("blast: %w: %s", ErrNoStore, path)
	}
	return LoadFile(path, p)
}
