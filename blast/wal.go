package blast

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// This file implements the ingestion write-ahead log. Every Append first
// makes its FASTA batch durable as one WAL record — header, length, payload,
// CRC — and only then builds the delta container and commits the manifest.
// Because delta construction is deterministic (NewDatabase over the same
// batch with the same fingerprint parameters yields the same bytes), a
// durably logged record can always be replayed after a crash, so recovery
// lands on the exact post-commit state; a torn record (the crash interrupted
// the log write itself) is discarded, landing on the exact pre-commit state.
// Nothing in between is ever visible.
//
// On-disk layout:
//
//	magic   8 bytes   "muWALv1\n"
//	records, each:
//	  seq     uint64 LE   strictly increasing by 1 across the log's life
//	  length  uint32 LE   payload bytes
//	  payload             uvarint count, then per sequence:
//	                      uvarint name length, name,
//	                      uvarint residue length, ASCII residues
//	  crc32   uint32 LE   IEEE CRC of seq+length+payload
//
// The log is truncated back to just the magic after its records are applied
// to the manifest; a crash between commit and truncation only leaves records
// whose seq is at or below the manifest's wal_applied watermark, which the
// scanner skips.

const (
	walMagic     = "muWALv1\n"
	walName      = "ingest.wal"
	maxWALRecord = 1 << 30 // bytes; a flipped length bit must not drive allocation
	maxWALBatch  = 1 << 24 // sequences per record
)

// walRecord is one decoded ingestion batch.
type walRecord struct {
	Seq   uint64
	Batch []Sequence
}

// encodeWALPayload serializes an ingestion batch.
func encodeWALPayload(batch []Sequence) []byte {
	var buf [binary.MaxVarintLen64]byte
	var out []byte
	putUvarint := func(v uint64) { out = append(out, buf[:binary.PutUvarint(buf[:], v)]...) }
	putUvarint(uint64(len(batch)))
	for _, s := range batch {
		putUvarint(uint64(len(s.Name)))
		out = append(out, s.Name...)
		putUvarint(uint64(len(s.Residues)))
		out = append(out, s.Residues...)
	}
	return out
}

// decodeWALPayload parses a record payload back into its batch.
func decodeWALPayload(data []byte) ([]Sequence, error) {
	rd := bytes.NewReader(data)
	n, err := binary.ReadUvarint(rd)
	if err != nil {
		return nil, fmt.Errorf("batch count: %w", err)
	}
	if n == 0 || n > maxWALBatch {
		return nil, fmt.Errorf("implausible batch count %d", n)
	}
	batch := make([]Sequence, 0, min(int(n), 1<<16))
	readStr := func(what string) (string, error) {
		l, err := binary.ReadUvarint(rd)
		if err != nil {
			return "", fmt.Errorf("%s length: %w", what, err)
		}
		if l > uint64(rd.Len()) {
			return "", fmt.Errorf("%s length %d exceeds remaining payload", what, l)
		}
		b := make([]byte, l)
		if _, err := io.ReadFull(rd, b); err != nil {
			return "", fmt.Errorf("%s: %w", what, err)
		}
		return string(b), nil
	}
	for i := uint64(0); i < n; i++ {
		name, err := readStr("name")
		if err != nil {
			return nil, fmt.Errorf("sequence %d %w", i, err)
		}
		res, err := readStr("residues")
		if err != nil {
			return nil, fmt.Errorf("sequence %d %w", i, err)
		}
		batch = append(batch, Sequence{Name: name, Residues: res})
	}
	if rd.Len() != 0 {
		return nil, fmt.Errorf("%d trailing payload bytes", rd.Len())
	}
	return batch, nil
}

// walFrame builds the on-disk bytes of one record.
func walFrame(seq uint64, payload []byte) []byte {
	frame := make([]byte, 12+len(payload)+4)
	binary.LittleEndian.PutUint64(frame[0:], seq)
	binary.LittleEndian.PutUint32(frame[8:], uint32(len(payload)))
	copy(frame[12:], payload)
	crc := crc32.ChecksumIEEE(frame[:12+len(payload)])
	binary.LittleEndian.PutUint32(frame[12+len(payload):], crc)
	return frame
}

// appendWAL makes one record durable: create-or-open the log (writing the
// magic on creation), append the frame, fsync. The record is the commit
// point of the ingestion protocol — once this returns nil, recovery will
// roll the batch forward even if everything after it crashes.
func appendWAL(path string, seq uint64, payload []byte) error {
	if err := fiWALAppend.Err(); err != nil {
		return fmt.Errorf("wal append: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal append: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("wal append: %w", err)
	}
	off := st.Size()
	if off == 0 {
		if _, err := f.Write([]byte(walMagic)); err != nil {
			return fmt.Errorf("wal append: writing magic: %w", err)
		}
		off = int64(len(walMagic))
	}
	if _, err := f.WriteAt(walFrame(seq, payload), off); err != nil {
		return fmt.Errorf("wal append: %w", err)
	}
	if err := fiWALSync.Err(); err != nil {
		return fmt.Errorf("wal sync: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal sync: %w", err)
	}
	return f.Close()
}

// scanWAL reads every intact record of the log in order. A missing log means
// no pending work (nil records). A torn tail — truncated frame, short
// payload, CRC mismatch — ends the scan: everything before it is returned,
// everything from the tear on is reported via torn and will be discarded by
// recovery, matching a crash that interrupted the append. Structural
// violations *inside* intact records (a CRC-valid record whose sequence
// number regresses, an undecodable payload) are not torn tails but evidence
// of foul play, and surface as ErrStoreCorrupt.
func scanWAL(path string) (recs []walRecord, torn bool, err error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("wal: %w", err)
	}
	if len(data) < len(walMagic) {
		// The log was created but the crash tore even the magic write.
		return nil, len(data) > 0, nil
	}
	if string(data[:len(walMagic)]) != walMagic {
		return nil, false, fmt.Errorf("%w: wal has bad magic %q", ErrStoreCorrupt, data[:len(walMagic)])
	}
	rest := data[len(walMagic):]
	for len(rest) > 0 {
		if len(rest) < 16 {
			return recs, true, nil
		}
		seq := binary.LittleEndian.Uint64(rest[0:])
		length := binary.LittleEndian.Uint32(rest[8:])
		if uint64(length) > maxWALRecord || uint64(len(rest)) < 16+uint64(length) {
			return recs, true, nil
		}
		frame := rest[:12+length]
		want := binary.LittleEndian.Uint32(rest[12+length:])
		if crc32.ChecksumIEEE(frame) != want {
			return recs, true, nil
		}
		// The record is intact; from here on damage is corruption, not tearing.
		if len(recs) > 0 && seq != recs[len(recs)-1].Seq+1 {
			return nil, false, fmt.Errorf("%w: wal record seq %d follows %d", ErrStoreCorrupt, seq, recs[len(recs)-1].Seq)
		}
		batch, err := decodeWALPayload(frame[12:])
		if err != nil {
			return nil, false, fmt.Errorf("%w: wal record seq %d: %v", ErrStoreCorrupt, seq, err)
		}
		recs = append(recs, walRecord{Seq: seq, Batch: batch})
		rest = rest[16+length:]
	}
	return recs, false, nil
}

// resetWAL truncates the log back to just its magic after its records are
// applied. Best-effort from the caller's point of view: a failure (or crash)
// here leaves already-applied records behind, which the next open skips via
// the manifest watermark and then resets again.
func resetWAL(path string) error {
	if err := fiWALReset.Err(); err != nil {
		return fmt.Errorf("wal reset: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("wal reset: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(int64(len(walMagic))); err != nil {
		return fmt.Errorf("wal reset: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal reset: %w", err)
	}
	return f.Close()
}
