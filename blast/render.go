package blast

import (
	"fmt"
	"strings"
)

// FormatHit renders a hit as a classic BLAST-style pairwise alignment block:
// header line, then wrapped Query/midline/Sbjct triplets with 1-based
// coordinates.
func (d *Database) FormatHit(query string, h *Hit) string {
	const width = 60
	var qb, mb, sb strings.Builder
	q := query
	s := d.SubjectResidues(h.Subject)
	qi, sj := h.QueryStart, h.SubjectStart
	for _, op := range h.Ops {
		switch op {
		case 'M':
			qc, sc := q[qi], s[sj]
			qb.WriteByte(qc)
			sb.WriteByte(sc)
			switch {
			case qc == sc:
				mb.WriteByte(qc)
			case similar(qc, sc):
				mb.WriteByte('+')
			default:
				mb.WriteByte(' ')
			}
			qi, sj = qi+1, sj+1
		case 'I':
			qb.WriteByte('-')
			mb.WriteByte(' ')
			sb.WriteByte(s[sj])
			sj++
		case 'D':
			qb.WriteByte(q[qi])
			mb.WriteByte(' ')
			sb.WriteByte('-')
			qi++
		}
	}
	qs, ms, ss := qb.String(), mb.String(), sb.String()

	var out strings.Builder
	fmt.Fprintf(&out, "> %s\n", h.SubjectName)
	fmt.Fprintf(&out, "  Score = %.1f bits (%d), Expect = %.2g, Identities = %.0f%%\n\n",
		h.BitScore, h.Score, h.EValue, 100*h.Identity)
	qPos, sPos := h.QueryStart, h.SubjectStart
	for off := 0; off < len(qs); off += width {
		end := off + width
		if end > len(qs) {
			end = len(qs)
		}
		qChunk, mChunk, sChunk := qs[off:end], ms[off:end], ss[off:end]
		qAdv := len(qChunk) - strings.Count(qChunk, "-")
		sAdv := len(sChunk) - strings.Count(sChunk, "-")
		fmt.Fprintf(&out, "Query  %-5d %s  %d\n", qPos+1, qChunk, qPos+qAdv)
		fmt.Fprintf(&out, "             %s\n", mChunk)
		fmt.Fprintf(&out, "Sbjct  %-5d %s  %d\n\n", sPos+1, sChunk, sPos+sAdv)
		qPos += qAdv
		sPos += sAdv
	}
	return out.String()
}

// similar reports whether two residues score positively under BLOSUM62 —
// the convention behind the '+' midline character.
func similar(a, b byte) bool {
	score, ok := blosum62Positive[[2]byte{a, b}]
	return ok && score
}

// blosum62Positive caches which residue pairs score > 0 under BLOSUM62.
var blosum62Positive = func() map[[2]byte]bool {
	// Positive off-diagonal BLOSUM62 pairs (symmetric closure applied below).
	pos := []string{
		"AS", "RQ", "RK", "NH", "NS", "ND", "DE", "QE", "QK", "QH", "QR",
		"EK", "ED", "HY", "IL", "IV", "IM", "LM", "LV", "MV", "FY", "FW",
		"ST", "WY", "NB", "DB", "EZ", "QZ", "KR", "BZ",
	}
	m := map[[2]byte]bool{}
	for _, p := range pos {
		m[[2]byte{p[0], p[1]}] = true
		m[[2]byte{p[1], p[0]}] = true
	}
	return m
}()

// Summary renders a one-line-per-hit table, mirroring BLAST's hit list.
func (r *Result) Summary() string {
	var out strings.Builder
	fmt.Fprintf(&out, "%-30s %9s %10s %8s %9s\n", "Subject", "Score", "Bits", "E-value", "Identity")
	for _, h := range r.Hits {
		name := h.SubjectName
		if len(name) > 30 {
			name = name[:27] + "..."
		}
		fmt.Fprintf(&out, "%-30s %9d %10.1f %8.1e %8.0f%%\n",
			name, h.Score, h.BitScore, h.EValue, 100*h.Identity)
	}
	return out.String()
}

// Tabular renders hits in BLAST's 12-column tabular format (-outfmt 6):
// query, subject, %identity, alignment length, mismatches, gap opens,
// q.start, q.end, s.start, s.end, evalue, bit score. Coordinates are
// 1-based inclusive, as BLAST reports them.
func (r *Result) Tabular(queryName string) string {
	var out strings.Builder
	for i := range r.Hits {
		h := &r.Hits[i]
		alnLen := len(h.Ops)
		matches := 0
		gapOpens := 0
		var prev byte
		for j := 0; j < alnLen; j++ {
			op := h.Ops[j]
			if op == 'M' {
				matches++
			} else if op != prev {
				gapOpens++
			}
			prev = op
		}
		identical := int(h.Identity*float64(alnLen) + 0.5)
		mismatch := matches - identical
		fmt.Fprintf(&out, "%s\t%s\t%.2f\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.2g\t%.1f\n",
			queryName, h.SubjectName, 100*h.Identity, alnLen, mismatch, gapOpens,
			h.QueryStart+1, h.QueryEnd, h.SubjectStart+1, h.SubjectEnd,
			h.EValue, h.BitScore)
	}
	return out.String()
}
