// Observability surface of the public API: per-query span records built
// from the pipeline stats every Result already carries. Materializing a
// record allocates, so it happens here at reporting time — never inside the
// engine's hot path — and attaching a sink costs nothing per scheduler task.
package blast

import "repro/internal/obs"

// StageSpans returns this result's per-stage timing, one span per pipeline
// stage in order (all six stages are always present, zero-time included).
func (r *Result) StageSpans() []obs.Span { return r.Stats.Spans() }

// TraceRecord builds the per-query JSONL observability record: the six
// stage spans plus the counter deltas the pipeline accumulated for this
// query. Write it with obs.TraceWriter (the mublastp -trace flag does).
func (r *Result) TraceRecord(queryName string) *obs.QueryTrace {
	return &obs.QueryTrace{
		Query:    queryName,
		QueryLen: r.QueryLen,
		Hits:     len(r.Hits),
		Stages:   r.Stats.Spans(),
		Counters: r.Stats.CounterMap(),
	}
}
