package blast

import (
	"bytes"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/seqgen"
)

var (
	dbOnce     sync.Once
	sharedDB   *Database
	sharedSeqs []Sequence
)

func testDatabase(t *testing.T) (*Database, []Sequence) {
	t.Helper()
	dbOnce.Do(func() {
		g := seqgen.New(seqgen.UniprotProfile(), 321)
		raw := g.Database(150)
		sharedSeqs = make([]Sequence, len(raw))
		for i, s := range raw {
			sharedSeqs[i] = Sequence{Name: nameFor(i), Residues: alphabet.String(s)}
		}
		p := DefaultParams()
		p.BlockResidues = 16384
		var err error
		sharedDB, err = NewDatabase(sharedSeqs, p)
		if err != nil {
			panic(err)
		}
	})
	return sharedDB, sharedSeqs
}

func nameFor(i int) string {
	return "prot" + string(rune('A'+i/26%26)) + string(rune('A'+i%26))
}

func queryFrom(seqs []Sequence, minLen int) string {
	for _, s := range seqs {
		if len(s.Residues) >= minLen {
			return s.Residues[5 : minLen-5]
		}
	}
	return seqs[0].Residues
}

func TestSearchFindsSource(t *testing.T) {
	db, seqs := testDatabase(t)
	q := queryFrom(seqs, 150)
	res, err := db.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("no hits for exact subsequence")
	}
	top := res.Hits[0]
	if top.EValue > 1e-10 {
		t.Errorf("top E-value %g for exact subsequence", top.EValue)
	}
	if top.Identity < 0.99 {
		t.Errorf("top identity %.2f for exact subsequence", top.Identity)
	}
}

func TestEnginesAgree(t *testing.T) {
	db, seqs := testDatabase(t)
	q := queryFrom(seqs, 120)
	var results [3]*Result
	for i, k := range []EngineKind{EngineMuBLASTP, EngineNCBI, EngineNCBIdb} {
		r, err := db.SearchWithEngine(k, q)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = r
	}
	for i := 1; i < 3; i++ {
		if len(results[i].Hits) != len(results[0].Hits) {
			t.Fatalf("engine %d: %d hits vs %d", i, len(results[i].Hits), len(results[0].Hits))
		}
		for j := range results[0].Hits {
			a, b := results[0].Hits[j], results[i].Hits[j]
			if a != b {
				t.Fatalf("engine %d hit %d: %+v vs %+v", i, j, a, b)
			}
		}
	}
}

func TestSearchBatchMatchesSingle(t *testing.T) {
	db, seqs := testDatabase(t)
	queries := []string{
		queryFrom(seqs, 100),
		queryFrom(seqs[50:], 100),
		queryFrom(seqs[100:], 100),
	}
	batch, err := db.SearchBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		single, err := db.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(single.Hits) != len(batch[i].Hits) {
			t.Fatalf("query %d: batch %d hits vs single %d", i, len(batch[i].Hits), len(single.Hits))
		}
		for j := range single.Hits {
			if single.Hits[j] != batch[i].Hits[j] {
				t.Fatalf("query %d hit %d differs", i, j)
			}
		}
	}
}

func TestSchedulerParam(t *testing.T) {
	_, seqs := testDatabase(t)
	queries := []string{
		queryFrom(seqs, 100),
		queryFrom(seqs[50:], 100),
		queryFrom(seqs[100:], 100),
	}
	// Every accepted spelling produces identical batch results and reports
	// the scheduler it ran under.
	type run struct {
		results []*Result
		sched   string
	}
	runs := map[string]run{}
	for _, name := range []string{"", "block-major", "barrier"} {
		p := DefaultParams()
		p.BlockResidues = 16384
		p.Scheduler = name
		db, err := NewDatabase(sharedSeqs, p)
		if err != nil {
			t.Fatalf("scheduler %q: %v", name, err)
		}
		results, stats, err := db.SearchBatchStats(queries)
		if err != nil {
			t.Fatalf("scheduler %q: %v", name, err)
		}
		want := "block-major"
		if name == "barrier" {
			want = "barrier"
		}
		if stats.Scheduler != want {
			t.Errorf("scheduler %q ran as %q", name, stats.Scheduler)
		}
		if stats.Tasks <= 0 {
			t.Errorf("scheduler %q reported %d tasks", name, stats.Tasks)
		}
		runs[name] = run{results, stats.Scheduler}
	}
	ref := runs[""]
	for name, r := range runs {
		if len(r.results) != len(ref.results) {
			t.Fatalf("scheduler %q: %d results vs %d", name, len(r.results), len(ref.results))
		}
		for i := range r.results {
			if len(r.results[i].Hits) != len(ref.results[i].Hits) {
				t.Fatalf("scheduler %q query %d: %d hits vs %d",
					name, i, len(r.results[i].Hits), len(ref.results[i].Hits))
			}
			for j := range r.results[i].Hits {
				if r.results[i].Hits[j] != ref.results[i].Hits[j] {
					t.Fatalf("scheduler %q query %d hit %d differs", name, i, j)
				}
			}
		}
	}

	p := DefaultParams()
	p.Scheduler = "simd" // not a scheduler
	if _, err := NewDatabase(sharedSeqs[:3], p); err == nil {
		t.Error("accepted unknown scheduler")
	}
}

func TestInvalidInputs(t *testing.T) {
	db, _ := testDatabase(t)
	if _, err := db.Search("MKT1A"); err == nil {
		t.Error("accepted invalid query residue")
	}
	if _, err := NewDatabase([]Sequence{{Name: "x", Residues: "AB@"}}, DefaultParams()); err == nil {
		t.Error("accepted invalid database residue")
	}
	p := DefaultParams()
	p.Matrix = "NOPE"
	if _, err := NewDatabase([]Sequence{{Name: "x", Residues: "ARN"}}, p); err == nil {
		t.Error("accepted unknown matrix")
	}
	if _, err := db.SearchWithEngine(EngineKind(99), "ARNDC"); err == nil {
		t.Error("accepted unknown engine")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db, seqs := testDatabase(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.BlockResidues = 16384
	loaded, err := Load(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumSequences() != db.NumSequences() || loaded.NumBlocks() != db.NumBlocks() {
		t.Fatalf("loaded shape differs: %d seqs %d blocks", loaded.NumSequences(), loaded.NumBlocks())
	}
	q := queryFrom(seqs, 130)
	a, err := db.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Hits) != len(b.Hits) {
		t.Fatalf("loaded db returns %d hits vs %d", len(b.Hits), len(a.Hits))
	}
	for i := range a.Hits {
		if a.Hits[i] != b.Hits[i] {
			t.Fatalf("hit %d differs after reload", i)
		}
	}
}

func TestFASTARoundTrip(t *testing.T) {
	_, seqs := testDatabase(t)
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, seqs[:5]); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFASTA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("round trip produced %d sequences", len(got))
	}
	for i := range got {
		if got[i] != seqs[i] {
			t.Errorf("sequence %d differs", i)
		}
	}
}

func TestFormatHit(t *testing.T) {
	db, seqs := testDatabase(t)
	q := queryFrom(seqs, 150)
	res, err := db.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("no hits")
	}
	out := db.FormatHit(q, &res.Hits[0])
	if !strings.Contains(out, "Query  1") {
		t.Errorf("formatted output missing 1-based query line:\n%s", out)
	}
	if !strings.Contains(out, "Score =") || !strings.Contains(out, "Expect =") {
		t.Errorf("formatted output missing header:\n%s", out)
	}
	// Every Query line must pair with a Sbjct line.
	ql := strings.Count(out, "Query  ")
	sl := strings.Count(out, "Sbjct  ")
	if ql == 0 || ql != sl {
		t.Errorf("Query/Sbjct line mismatch: %d vs %d", ql, sl)
	}
}

func TestSummaryTable(t *testing.T) {
	db, seqs := testDatabase(t)
	res, err := db.Search(queryFrom(seqs, 120))
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summary()
	if !strings.Contains(sum, "Subject") || !strings.Contains(sum, "E-value") {
		t.Errorf("summary missing header: %q", sum)
	}
	if strings.Count(sum, "\n") != len(res.Hits)+1 {
		t.Errorf("summary has %d lines for %d hits", strings.Count(sum, "\n"), len(res.Hits))
	}
}

func TestDatabaseAccessors(t *testing.T) {
	db, seqs := testDatabase(t)
	if db.NumSequences() != len(seqs) {
		t.Errorf("NumSequences = %d", db.NumSequences())
	}
	if db.TotalResidues() <= 0 || db.IndexSizeBytes() <= 0 || db.NumBlocks() <= 1 {
		t.Errorf("accessors: %d residues, %d bytes, %d blocks",
			db.TotalResidues(), db.IndexSizeBytes(), db.NumBlocks())
	}
}

func TestEngineKindString(t *testing.T) {
	if EngineMuBLASTP.String() != "muBLASTP" || EngineNCBI.String() != "NCBI" ||
		EngineNCBIdb.String() != "NCBI-db" {
		t.Error("engine names wrong")
	}
	if EngineKind(9).String() == "" {
		t.Error("unknown engine stringer empty")
	}
}

func TestIdentityComputation(t *testing.T) {
	// Build a db with a known near-identical pair.
	seqs := []Sequence{
		{Name: "exact", Residues: "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQAPILSRVGDGTQDNLSGAEKAVQVKVKALPDAQ"},
	}
	p := DefaultParams()
	db, err := NewDatabase(seqs, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Search(seqs[0].Residues)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 1 {
		t.Fatalf("%d hits for self search", len(res.Hits))
	}
	if res.Hits[0].Identity != 1.0 {
		t.Errorf("self-search identity %.3f, want 1.0", res.Hits[0].Identity)
	}
	if res.Hits[0].Ops != strings.Repeat("M", len(seqs[0].Residues)) {
		t.Error("self-search traceback not all matches")
	}
}

func TestLongSequenceSplitting(t *testing.T) {
	// Build a database containing one very long sequence; with
	// SplitLongerThan set below its length, hits must still come back in
	// original-sequence coordinates under the original name.
	g := seqgen.New(seqgen.UniprotProfile(), 777)
	long := alphabet.String(g.Sequence(9000))
	short := alphabet.String(g.Sequence(200))
	p := DefaultParams()
	p.SplitLongerThan = 2000
	p.SplitOverlap = 200
	db, err := NewDatabase([]Sequence{
		{Name: "giant", Residues: long},
		{Name: "small", Residues: short},
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	// The database now holds more sequences than were supplied (chunks).
	if db.NumSequences() <= 2 {
		t.Fatalf("splitting did not happen: %d sequences", db.NumSequences())
	}
	// Query a window deep inside the long sequence.
	const start = 5000
	q := long[start : start+150]
	res, err := db.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("no hits inside split sequence")
	}
	top := res.Hits[0]
	if top.SubjectName != "giant" {
		t.Errorf("top hit name %q, want giant", top.SubjectName)
	}
	if top.SubjectStart != start || top.SubjectEnd != start+150 {
		t.Errorf("subject coords [%d,%d), want [%d,%d)",
			top.SubjectStart, top.SubjectEnd, start, start+150)
	}
	if top.Identity < 0.999 {
		t.Errorf("identity %.3f for exact window", top.Identity)
	}
	// No duplicate of the same alignment from the overlapping chunk.
	for i := 1; i < len(res.Hits); i++ {
		h := res.Hits[i]
		if h.SubjectName == "giant" && h.SubjectStart == top.SubjectStart && h.Score == top.Score {
			t.Errorf("duplicate hit from chunk overlap: %+v", h)
		}
	}
}

func TestSplitDatabaseSaveLoadKeepsMapping(t *testing.T) {
	g := seqgen.New(seqgen.UniprotProfile(), 778)
	long := alphabet.String(g.Sequence(6000))
	p := DefaultParams()
	p.SplitLongerThan = 2000
	db, err := NewDatabase([]Sequence{{Name: "big", Residues: long}}, p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	q := long[3000:3150]
	res, err := loaded.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("no hits after reload")
	}
	if res.Hits[0].SubjectName != "big" || res.Hits[0].SubjectStart != 3000 {
		t.Errorf("reload lost chunk mapping: %+v", res.Hits[0])
	}
}

func TestDFAEngineAgrees(t *testing.T) {
	db, seqs := testDatabase(t)
	q := queryFrom(seqs, 140)
	ref, err := db.SearchWithEngine(EngineNCBI, q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.SearchWithEngine(EngineNCBIDFA, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Hits) != len(got.Hits) {
		t.Fatalf("DFA engine: %d hits vs %d", len(got.Hits), len(ref.Hits))
	}
	for i := range ref.Hits {
		if ref.Hits[i] != got.Hits[i] {
			t.Fatalf("DFA engine hit %d differs", i)
		}
	}
	if EngineNCBIDFA.String() != "NCBI-DFA" {
		t.Error("engine name")
	}
}

func TestSearchLongMatchesDirectSearch(t *testing.T) {
	db, seqs := testDatabase(t)
	// A moderately long query searched whole vs in chunks: the chunked
	// search must find every subject the direct search finds (alignments
	// longer than the overlap may fragment, so compare subject sets and
	// top-hit identity).
	q := queryFrom(seqs, 190)
	direct, err := db.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	chunked, err := db.SearchLong(q, 120, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunked.Hits) == 0 {
		t.Fatal("chunked search found nothing")
	}
	if direct.Hits[0].SubjectName != chunked.Hits[0].SubjectName {
		t.Errorf("top hits differ: %s vs %s", direct.Hits[0].SubjectName, chunked.Hits[0].SubjectName)
	}
	directSubjects := map[string]bool{}
	for _, h := range direct.Hits {
		directSubjects[h.SubjectName] = true
	}
	found := 0
	for s := range directSubjects {
		for _, h := range chunked.Hits {
			if h.SubjectName == s {
				found++
				break
			}
		}
	}
	if found < len(directSubjects)/2 {
		t.Errorf("chunked search recovered only %d/%d subjects", found, len(directSubjects))
	}
	// Query coordinates must stay within the whole query.
	for _, h := range chunked.Hits {
		if h.QueryStart < 0 || h.QueryEnd > len(q) {
			t.Errorf("chunk hit outside query bounds: %+v", h)
		}
	}
}

func TestSearchLongShortQueryDelegates(t *testing.T) {
	db, seqs := testDatabase(t)
	q := queryFrom(seqs, 100)
	a, err := db.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.SearchLong(q, 2048, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Hits) != len(b.Hits) {
		t.Errorf("delegation differs: %d vs %d hits", len(a.Hits), len(b.Hits))
	}
	if _, err := db.SearchLong(q, 100, 100); err == nil {
		t.Error("accepted overlap >= chunk length")
	}
}

func TestTabularFormat(t *testing.T) {
	db, seqs := testDatabase(t)
	q := queryFrom(seqs, 130)
	res, err := db.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tabular("q1")
	lines := strings.Split(strings.TrimSpace(tab), "\n")
	if len(lines) != len(res.Hits) {
		t.Fatalf("%d tabular lines for %d hits", len(lines), len(res.Hits))
	}
	for _, line := range lines {
		cols := strings.Split(line, "\t")
		if len(cols) != 12 {
			t.Fatalf("line has %d columns: %q", len(cols), line)
		}
		if cols[0] != "q1" {
			t.Errorf("qseqid = %q", cols[0])
		}
	}
	// Top hit: near-exact match, so pident ~100 and mismatches small.
	cols := strings.Split(lines[0], "\t")
	pident, perr := strconv.ParseFloat(cols[2], 64)
	if perr != nil || pident < 90 {
		t.Errorf("top hit pident %s, want >= 90", cols[2])
	}
}

func TestOneHitModeFacade(t *testing.T) {
	_, seqs := testDatabase(t)
	p := DefaultParams()
	p.OneHit = true
	p.NeighborThreshold = 13 // NCBI's usual one-hit threshold
	p.BlockResidues = 16384
	db, err := NewDatabase(seqs, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Search(queryFrom(seqs, 120))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("one-hit search found nothing")
	}
	if res.Stats.Pairs != res.Stats.Hits {
		t.Errorf("one-hit mode: pairs %d != hits %d", res.Stats.Pairs, res.Stats.Hits)
	}
}
