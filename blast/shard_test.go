package blast

import (
	"context"
	"strings"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/seqgen"
)

func shardQueries(seqs []Sequence) []string {
	return []string{
		queryFrom(seqs, 150),
		queryFrom(seqs, 120),
		seqs[10].Residues,
		seqs[len(seqs)-1].Residues,
		"MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQAPILSRVGDGTQDNLSGAEKAVQVKVKALPDAQ",
	}
}

// TestShardMergeMatchesMonolithic is the merge invariant, end to end: for
// every shard count, searching each shard independently and merging must be
// byte-identical to searching the monolithic database — same hits with the
// same subject ids, scores, E-values, coordinates, and order, down to the
// rendered tabular output.
func TestShardMergeMatchesMonolithic(t *testing.T) {
	db, seqs := testDatabase(t)
	queries := shardQueries(seqs)
	mono, err := db.SearchBatchCtx(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for qi := range queries {
		hits += len(mono.Results[qi].Hits)
	}
	if hits == 0 {
		t.Fatal("monolithic search found nothing; the equivalence check would be vacuous")
	}

	for _, n := range []int{1, 2, 3, 5} {
		shards, err := db.Shards(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		parts := make([]*ShardResult, n)
		for s, sd := range shards {
			if parts[s], err = sd.SearchShardBatchCtx(context.Background(), queries, s, n); err != nil {
				t.Fatalf("n=%d shard %d: %v", n, s, err)
			}
		}
		merged, err := MergeShards(queries, parts)
		if err != nil {
			t.Fatalf("n=%d merge: %v", n, err)
		}
		for qi := range queries {
			if merged.Completed[qi] != mono.Completed[qi] {
				t.Fatalf("n=%d query %d: completed=%v, monolithic %v", n, qi, merged.Completed[qi], mono.Completed[qi])
			}
			got, want := merged.Results[qi], mono.Results[qi]
			if len(got.Hits) != len(want.Hits) {
				t.Fatalf("n=%d query %d: %d hits, monolithic %d", n, qi, len(got.Hits), len(want.Hits))
			}
			for j := range want.Hits {
				if got.Hits[j] != want.Hits[j] {
					t.Fatalf("n=%d query %d hit %d:\n got  %+v\n want %+v", n, qi, j, got.Hits[j], want.Hits[j])
				}
			}
			if g, w := got.Tabular("q"), want.Tabular("q"); g != w {
				t.Fatalf("n=%d query %d: rendered output differs:\n got:\n%s\n want:\n%s", n, qi, g, w)
			}
		}
	}
}

// TestShardEngineCarriesGlobalStatistics pins the E-value invariant from two
// sides: every shard engine must carry the whole database's search-space
// totals, and the same sequences indexed as a standalone database (local
// statistics — the bug this guards against) must produce *different*
// E-values, proving the override is what keeps shards byte-identical.
func TestShardEngineCarriesGlobalStatistics(t *testing.T) {
	db, seqs := testDatabase(t)
	const n = 3
	shards, err := db.Shards(n)
	if err != nil {
		t.Fatal(err)
	}
	for s, sd := range shards {
		res, nseq := sd.GlobalSearchSpace()
		if res != db.TotalResidues() || nseq != int64(db.NumSequences()) {
			t.Fatalf("shard %d: global space %d residues/%d seqs, want %d/%d",
				s, res, nseq, db.TotalResidues(), db.NumSequences())
		}
		if sd.cfg.DBLenOverride != db.TotalResidues() || sd.cfg.DBSeqsOverride != int64(db.NumSequences()) {
			t.Fatalf("shard %d: engine overrides %d/%d, want %d/%d",
				s, sd.cfg.DBLenOverride, sd.cfg.DBSeqsOverride, db.TotalResidues(), db.NumSequences())
		}
	}

	// Find a shard where a query hits, then rebuild that shard's sequences
	// as an independent database: without the global override its E-values
	// must drift (smaller search space => smaller E-values).
	q := queryFrom(seqs, 150)
	for s, sd := range shards {
		part, err := sd.SearchShardBatchCtx(context.Background(), []string{q}, s, n)
		if err != nil {
			t.Fatal(err)
		}
		parts := make([]*ShardResult, n)
		parts[s] = part
		for o := range parts {
			if parts[o] == nil {
				other, err := shards[o].SearchShardBatchCtx(context.Background(), []string{q}, o, n)
				if err != nil {
					t.Fatal(err)
				}
				parts[o] = other
			}
		}
		merged, err := MergeShards([]string{q}, parts)
		if err != nil {
			t.Fatal(err)
		}
		if len(merged.Results[0].Hits) == 0 {
			continue
		}
		top := merged.Results[0].Hits[0]
		owner := shards[top.Subject%n]
		local := make([]Sequence, owner.db.NumSeqs())
		for i := range owner.db.Seqs {
			local[i] = Sequence{Name: owner.db.Seqs[i].Name, Residues: alphabet.String(owner.db.Seqs[i].Data)}
		}
		p := owner.params
		p.GlobalDBResidues, p.GlobalDBSequences = 0, 0
		localDB, err := NewDatabase(local, p)
		if err != nil {
			t.Fatal(err)
		}
		localRes, err := localDB.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, lh := range localRes.Hits {
			if lh.SubjectName == top.SubjectName && lh.Score == top.Score {
				if lh.EValue == top.EValue {
					t.Fatalf("local-statistics E-value %g equals global %g: the override is not doing anything",
						lh.EValue, top.EValue)
				}
				if lh.EValue > top.EValue {
					t.Fatalf("local-statistics E-value %g > global %g: smaller search space must not inflate E-values",
						lh.EValue, top.EValue)
				}
				return
			}
		}
		t.Fatalf("top hit %s not found in local-statistics search", top.SubjectName)
	}
	t.Fatal("no shard produced a hit for the probe query")
}

// TestMergeShardsMissingShard pins the honesty contract: a missing shard
// poisons every query (incomplete, ErrShardUnavailable) instead of merging
// as a silent zero-hit shard.
func TestMergeShardsMissingShard(t *testing.T) {
	db, seqs := testDatabase(t)
	queries := shardQueries(seqs)[:2]
	const n = 3
	shards, err := db.Shards(n)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]*ShardResult, n)
	for s, sd := range shards {
		if s == 1 {
			continue // shard 1 "shed"
		}
		if parts[s], err = sd.SearchShardBatchCtx(context.Background(), queries, s, n); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := MergeShards(queries, parts)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Err == nil || !strings.Contains(merged.Err.Error(), "shard 1") {
		t.Fatalf("batch error %v does not name the missing shard", merged.Err)
	}
	for qi := range queries {
		if merged.Completed[qi] {
			t.Fatalf("query %d completed despite a missing shard", qi)
		}
		if merged.QueryErrs[qi] != ErrShardUnavailable {
			t.Fatalf("query %d error %v, want ErrShardUnavailable", qi, merged.QueryErrs[qi])
		}
		if len(merged.Results[qi].Hits) != 0 {
			t.Fatalf("query %d reports %d hits despite being incomplete", qi, len(merged.Results[qi].Hits))
		}
	}

	if _, err := MergeShards(queries, make([]*ShardResult, n)); err == nil {
		t.Fatal("merging all-missing shards must fail")
	}
}

// TestShardValidation covers the constructor guards: shard counts, shard
// identity checks in the merge, and the both-or-neither rule for the global
// search-space parameters.
func TestShardValidation(t *testing.T) {
	db, seqs := testDatabase(t)
	if _, err := db.Shards(0); err == nil {
		t.Error("Shards(0) must fail")
	}
	if _, err := db.Shards(db.NumSequences() + 1); err == nil {
		t.Error("more shards than sequences must fail")
	}

	p := DefaultParams()
	p.GlobalDBResidues = 1000 // without GlobalDBSequences
	if _, err := NewDatabase([]Sequence{{Name: "a", Residues: seqs[0].Residues}}, p); err == nil {
		t.Error("GlobalDBResidues without GlobalDBSequences must fail")
	}

	shards, err := db.Shards(2)
	if err != nil {
		t.Fatal(err)
	}
	q := []string{seqs[0].Residues}
	p0, err := shards[0].SearchShardBatchCtx(context.Background(), q, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeShards(q, []*ShardResult{nil, p0}); err == nil {
		t.Error("shard result at the wrong position must fail the merge")
	}
	if _, err := shards[0].SearchShardBatchCtx(context.Background(), q, 2, 2); err == nil {
		t.Error("shard index out of range must fail")
	}
}

// FuzzShardEquivalence drives the merge invariant with fuzzed queries and
// shard counts: any valid query, any N, merged output must equal the
// monolithic search exactly.
func FuzzShardEquivalence(f *testing.F) {
	g := seqgen.New(seqgen.UniprotProfile(), 17)
	raw := g.Database(40)
	seqs := make([]Sequence, len(raw))
	for i, s := range raw {
		seqs[i] = Sequence{Name: nameFor(i), Residues: alphabet.String(s)}
	}
	p := DefaultParams()
	p.BlockResidues = 16384
	db, err := NewDatabase(seqs, p)
	if err != nil {
		f.Fatal(err)
	}
	// Shard sets are deterministic in the database alone, so build each N
	// once; the fuzz loop only varies the query.
	shardSets := make(map[int][]*Database)
	for n := 1; n <= 5; n++ {
		shards, err := db.Shards(n)
		if err != nil {
			f.Fatal(err)
		}
		shardSets[n] = shards
	}
	f.Add(uint8(2), []byte(seqs[3].Residues))
	f.Add(uint8(3), []byte("MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ"))
	f.Add(uint8(5), []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	const letters = "ACDEFGHIKLMNPQRSTVWY"
	f.Fuzz(func(t *testing.T, nRaw uint8, qRaw []byte) {
		if len(qRaw) < 8 {
			return
		}
		if len(qRaw) > 400 {
			qRaw = qRaw[:400]
		}
		n := 1 + int(nRaw)%5
		q := make([]byte, len(qRaw))
		for i, b := range qRaw {
			q[i] = letters[int(b)%len(letters)]
		}
		queries := []string{string(q)}
		mono, err := db.SearchBatchCtx(context.Background(), queries)
		if err != nil {
			t.Fatal(err)
		}
		parts := make([]*ShardResult, n)
		for s, sd := range shardSets[n] {
			if parts[s], err = sd.SearchShardBatchCtx(context.Background(), queries, s, n); err != nil {
				t.Fatal(err)
			}
		}
		merged, err := MergeShards(queries, parts)
		if err != nil {
			t.Fatal(err)
		}
		if g, w := merged.Results[0].Tabular("q"), mono.Results[0].Tabular("q"); g != w {
			t.Fatalf("n=%d: merged output differs from monolithic:\n got:\n%s\n want:\n%s", n, g, w)
		}
	})
}
