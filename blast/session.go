package blast

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Session is a long-lived handle on a resident, searchable database that can
// be hot-swapped while searches are running — the serving-side complement of
// the container format's build-once/search-many design. A daemon opens one
// Session at startup and routes every request through Acquire, so the index
// is built (or loaded) exactly once and never rebuilt per request.
//
// Reload replaces the database atomically: the candidate container is fully
// validated (Verify) and opened before the swap, so a corrupt or mismatched
// replacement is rejected with the old database still serving; searches that
// acquired the old generation keep it alive until they release it, and their
// results are byte-identical to a run with no reload at all. Reload returns
// only after the displaced generation has fully drained.
type Session struct {
	params Params // build/load parameters applied to every Reload

	// reloadMu serializes Reload calls; searches never take it.
	reloadMu sync.Mutex
	cur      atomic.Pointer[sessionGen]
	gen      atomic.Int64 // generation counter, 1-based
	reloads  atomic.Int64 // successful reloads
}

// sessionGen is one database generation. refs starts at 1 (the Session's own
// reference); every Acquire adds one. When the Session drops its reference at
// swap time and the last search releases, drained closes and Reload's wait
// completes. The count never revives from zero: acquire fails on a retired
// generation and the caller retries against the current one.
type sessionGen struct {
	db      *Database
	gen     int64
	refs    atomic.Int64
	drained chan struct{}
}

func newSessionGen(db *Database, gen int64) *sessionGen {
	g := &sessionGen{db: db, gen: gen, drained: make(chan struct{})}
	g.refs.Store(1)
	return g
}

// acquire adds a reference, failing if the generation is already retired.
func (g *sessionGen) acquire() bool {
	for {
		n := g.refs.Load()
		if n == 0 {
			return false
		}
		if g.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// release drops a reference, closing drained on the last one.
func (g *sessionGen) release() {
	if g.refs.Add(-1) == 0 {
		close(g.drained)
	}
}

// NewSession wraps an already-constructed database. p is remembered as the
// load parameters for future Reload calls (typically the same Params the
// database was built with; fields the container pins — block size, split
// geometry — may be left zero to adopt each container's stored values).
func NewSession(db *Database, p Params) *Session {
	s := &Session{params: p}
	s.gen.Store(1)
	s.cur.Store(newSessionGen(db, 1))
	return s
}

// OpenSession loads a saved container — or an ingest-store directory, with
// full crash recovery — and wraps it in a Session.
func OpenSession(path string, p Params) (*Session, error) {
	db, err := Open(path, p)
	if err != nil {
		return nil, err
	}
	return NewSession(db, p), nil
}

// Acquire pins the current database generation and returns it with a release
// function. The database stays valid — and its results stay byte-identical —
// for the lifetime of the pin even if Reload swaps in a replacement
// concurrently. Every Acquire must be paired with exactly one release.
func (s *Session) Acquire() (*Database, func()) {
	for {
		g := s.cur.Load()
		if g.acquire() {
			return g.db, g.release
		}
		// Raced with a swap retiring g; the new current generation is
		// already installed, so the retry terminates.
	}
}

// DB returns the current database without pinning it. Use Acquire for any
// access that outlives the call.
func (s *Session) DB() *Database { return s.cur.Load().db }

// Generation returns the 1-based generation number of the current database;
// it increments on every successful Reload.
func (s *Session) Generation() int64 { return s.cur.Load().gen }

// Reloads returns how many successful Reloads the session has performed.
func (s *Session) Reloads() int64 { return s.reloads.Load() }

// Refs returns the reference count of the current generation: 1 when no
// search is pinned to it (the session's own reference), higher while
// searches hold pins. Reload failure paths must leave this balanced — a
// rejected candidate must not leak a pin on the generation that keeps
// serving — and the refcount-balance tests assert exactly that.
func (s *Session) Refs() int64 { return s.cur.Load().refs.Load() }

// Reload atomically replaces the session's database with the one at path —
// a single container file or an ingest-store directory (base + deltas) —
// loaded with the session's stored Params. The candidate is validated twice
// before the swap: a full VerifyPath pass (every checksum of every file,
// complete decode) and then the Open itself (fingerprint enforcement, store
// recovery), so any failure, from a flipped byte to a params mismatch,
// leaves the old database serving untouched with its refcount balanced.
// After the swap Reload waits for every search still pinned to the
// displaced generation to finish (they complete normally, byte-identical to
// an undisturbed run) before returning.
func (s *Session) Reload(path string) error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if _, err := VerifyPath(path); err != nil {
		return fmt.Errorf("blast: reload rejected, keeping current database: %w", err)
	}
	db, err := Open(path, s.params)
	if err != nil {
		return fmt.Errorf("blast: reload rejected, keeping current database: %w", err)
	}
	s.swap(db)
	return nil
}

// ReloadDB swaps in an already-constructed (and already-validated) database.
// The ingestion path uses it: after a successful Append the daemon's own
// Store builds the new base+deltas view in process, and re-opening the
// directory — which would race a second recovery pass against the live
// single-writer Store — is neither needed nor allowed.
func (s *Session) ReloadDB(db *Database) error {
	if db == nil {
		return fmt.Errorf("blast: ReloadDB needs a database")
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	s.swap(db)
	return nil
}

// swap installs db as the next generation and drains the displaced one.
// Callers hold reloadMu.
func (s *Session) swap(db *Database) {
	next := newSessionGen(db, s.gen.Add(1))
	old := s.cur.Swap(next)
	s.reloads.Add(1)
	old.release() // drop the session's own reference...
	<-old.drained // ...and wait for in-flight searches to finish with it
}
