package blast

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Session is a long-lived handle on a resident, searchable database that can
// be hot-swapped while searches are running — the serving-side complement of
// the container format's build-once/search-many design. A daemon opens one
// Session at startup and routes every request through Acquire, so the index
// is built (or loaded) exactly once and never rebuilt per request.
//
// Reload replaces the database atomically: the candidate container is fully
// validated (Verify) and opened before the swap, so a corrupt or mismatched
// replacement is rejected with the old database still serving; searches that
// acquired the old generation keep it alive until they release it, and their
// results are byte-identical to a run with no reload at all. Reload returns
// only after the displaced generation has fully drained.
type Session struct {
	params Params // build/load parameters applied to every Reload

	// reloadMu serializes Reload calls; searches never take it.
	reloadMu sync.Mutex
	cur      atomic.Pointer[sessionGen]
	gen      atomic.Int64 // generation counter, 1-based
	reloads  atomic.Int64 // successful reloads
}

// sessionGen is one database generation. refs starts at 1 (the Session's own
// reference); every Acquire adds one. When the Session drops its reference at
// swap time and the last search releases, drained closes and Reload's wait
// completes. The count never revives from zero: acquire fails on a retired
// generation and the caller retries against the current one.
type sessionGen struct {
	db      *Database
	gen     int64
	refs    atomic.Int64
	drained chan struct{}
}

func newSessionGen(db *Database, gen int64) *sessionGen {
	g := &sessionGen{db: db, gen: gen, drained: make(chan struct{})}
	g.refs.Store(1)
	return g
}

// acquire adds a reference, failing if the generation is already retired.
func (g *sessionGen) acquire() bool {
	for {
		n := g.refs.Load()
		if n == 0 {
			return false
		}
		if g.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// release drops a reference, closing drained on the last one.
func (g *sessionGen) release() {
	if g.refs.Add(-1) == 0 {
		close(g.drained)
	}
}

// NewSession wraps an already-constructed database. p is remembered as the
// load parameters for future Reload calls (typically the same Params the
// database was built with; fields the container pins — block size, split
// geometry — may be left zero to adopt each container's stored values).
func NewSession(db *Database, p Params) *Session {
	s := &Session{params: p}
	s.gen.Store(1)
	s.cur.Store(newSessionGen(db, 1))
	return s
}

// OpenSession loads a saved container and wraps it in a Session.
func OpenSession(path string, p Params) (*Session, error) {
	db, err := LoadFile(path, p)
	if err != nil {
		return nil, err
	}
	return NewSession(db, p), nil
}

// Acquire pins the current database generation and returns it with a release
// function. The database stays valid — and its results stay byte-identical —
// for the lifetime of the pin even if Reload swaps in a replacement
// concurrently. Every Acquire must be paired with exactly one release.
func (s *Session) Acquire() (*Database, func()) {
	for {
		g := s.cur.Load()
		if g.acquire() {
			return g.db, g.release
		}
		// Raced with a swap retiring g; the new current generation is
		// already installed, so the retry terminates.
	}
}

// DB returns the current database without pinning it. Use Acquire for any
// access that outlives the call.
func (s *Session) DB() *Database { return s.cur.Load().db }

// Generation returns the 1-based generation number of the current database;
// it increments on every successful Reload.
func (s *Session) Generation() int64 { return s.cur.Load().gen }

// Reloads returns how many successful Reloads the session has performed.
func (s *Session) Reloads() int64 { return s.reloads.Load() }

// Reload atomically replaces the session's database with the container at
// path, loaded with the session's stored Params. The candidate is validated
// twice before the swap — a full Verify pass (every checksum, complete
// decode) and then the Load itself (fingerprint enforcement) — so any
// failure, from a flipped byte to a params mismatch, leaves the old database
// serving untouched. After the swap Reload waits for every search still
// pinned to the displaced generation to finish (they complete normally,
// byte-identical to an undisturbed run) before returning.
func (s *Session) Reload(path string) error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if _, err := VerifyFile(path); err != nil {
		return fmt.Errorf("blast: reload rejected, keeping current database: %w", err)
	}
	db, err := LoadFile(path, s.params)
	if err != nil {
		return fmt.Errorf("blast: reload rejected, keeping current database: %w", err)
	}
	next := newSessionGen(db, s.gen.Add(1))
	old := s.cur.Swap(next)
	s.reloads.Add(1)
	old.release() // drop the session's own reference...
	<-old.drained // ...and wait for in-flight searches to finish with it
	return nil
}
