# Convenience targets; everything is plain `go` underneath (stdlib only).

.PHONY: all build vet test race bench experiments examples golden clean

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test: vet race
	go test ./...

# Race-detector pass over the packages with concurrent hot paths (the batch
# scheduler, the task-grid runtime, and the engines it drives).
race:
	go test -race ./internal/core ./internal/parallel ./internal/search

# Record the full suite and benchmark outputs (as committed).
record:
	go test ./... 2>&1 | tee test_output.txt
	go test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

bench:
	go test -bench=. -benchmem ./...

# Regenerate every evaluation table (Section V). ~5 minutes at this scale.
experiments:
	go run ./cmd/experiments -seqs 4000 -batch 16

examples:
	go run ./examples/quickstart
	go run ./examples/engines -seqs 1000 -queries 8
	go run ./examples/cluster -seqs 800 -queries 8
	go run ./examples/metagenomics -seqs 1500 -reads 16

# Refresh the golden regression corpus after an intentional behaviour change.
golden:
	go test ./internal/core -run Golden -update-golden

clean:
	go clean ./...
