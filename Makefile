# Convenience targets; everything is plain `go` underneath (stdlib only).

.PHONY: all build vet fmtcheck test race fuzz chaos bench bench-json bench-compare bench-smoke obs-smoke obs-smoke-fault serve-smoke shard-smoke remote-smoke trace-smoke crash-smoke experiments examples golden clean

all: build vet test bench-json

build:
	go build ./...

vet:
	go vet ./...

# gofmt gate: fail if any tracked Go file needs reformatting. gofmt -l
# prints offenders; grep turns a non-empty list into a non-zero exit.
fmtcheck:
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi

test: vet fmtcheck race fuzz chaos obs-smoke obs-smoke-fault serve-smoke shard-smoke remote-smoke trace-smoke crash-smoke bench-compare bench-smoke
	go test ./...

# Race-detector pass over the packages with concurrent hot paths (the batch
# scheduler, the task-grid runtime, the engines it drives, the hot-reload
# session, the serving layer's admission machinery, and the observability
# layer's lock-free metrics and concurrent trace/record sinks).
race:
	go test -race ./internal/core ./internal/parallel ./internal/search ./internal/mpi ./internal/cluster ./internal/server ./internal/router ./internal/obs ./internal/reqtrace ./blast

# Chaos harness: randomized fault schedules (injected panics, delays, errors,
# rank deaths, op timeouts, dropped RPCs, torn response bodies) against both
# batch schedulers, the distributed failover path, the serving layer, and the
# remote scatter transport under concurrent load, under the race detector.
# Each round logs its seed and fault schedule; on failure the log ends with a
# CHAOS_SEED=... replay line. CHAOS_ROUNDS widens the sweep, CHAOS_SEED pins
# one schedule.
chaos:
	go test -race -run 'TestChaos' -v ./internal/core ./internal/cluster ./internal/server ./internal/router

# Short-budget fuzz pass over every decoder at the I/O boundary: the FASTA
# parser, the database and index deserializers, and the container loader.
# Each corpus gets a fixed time slice so the default test flow stays fast;
# crank -fuzztime up for a real hunt.
FUZZTIME ?= 10s
fuzz:
	go test -fuzz=FuzzReader -fuzztime=$(FUZZTIME) -run='^$$' ./internal/fasta
	go test -fuzz=FuzzReadFrom -fuzztime=$(FUZZTIME) -run='^$$' ./internal/dbase
	go test -fuzz=FuzzReadFrom -fuzztime=$(FUZZTIME) -run='^$$' ./internal/dbindex
	go test -fuzz=FuzzLoad -fuzztime=$(FUZZTIME) -run='^$$' ./blast
	go test -fuzz=FuzzShardEquivalence -fuzztime=$(FUZZTIME) -run='^$$' ./blast
	go test -fuzz=FuzzTieredEquivalence -fuzztime=$(FUZZTIME) -run='^$$' ./blast
	go test -fuzz=FuzzExtendEquivalence -fuzztime=$(FUZZTIME) -run='^$$' ./internal/ungapped
	go test -fuzz=FuzzExtendScoreProfEquivalence -fuzztime=$(FUZZTIME) -run='^$$' ./internal/gapped
	go test -fuzz=FuzzLSDPairsEquivalence -fuzztime=$(FUZZTIME) -run='^$$' ./internal/hitsort

# Record the full suite and benchmark outputs (as committed).
record:
	go test ./... 2>&1 | tee test_output.txt
	go test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

bench:
	go test -bench=. -benchmem ./...

# Machine-readable stage budget: per-stage time shares, prefilter survival,
# sort share, and scheduler utilization (schema mublastp/bench-stage/v1,
# validated by internal/bench tests). Writes the *current* report,
# BENCH_stage_pr6.json; BENCH_stage.json is the frozen seed baseline the
# kernel campaign is measured against — never regenerate it. -block-kb 512
# is the tuned block size for timing runs (see EXPERIMENTS.md for the sweep);
# the default scaled-LLC sizing rule remains in force for the paper's
# cache-simulation experiments.
bench-json:
	go run ./cmd/experiments -exp stage -seqs 4000 -batch 16 -block-kb 512 -json BENCH_stage_pr6.json

# Mechanical perf gate: diff the frozen seed baseline against the committed
# current report and fail on >5% total-pipeline regression (tolerance
# overridable via BENCH_COMPARE_TOLERANCE).
bench-compare:
	./scripts/bench_compare.sh

# Short-workload perf smoke for the default test flow: regenerate a small
# stage report with the current build and compare it against the committed
# short baseline. The loose tolerance absorbs host noise (shared machines
# vary ±20% run to run); a real kernel regression blows far past it.
bench-smoke:
	go run ./cmd/experiments -exp stage -seqs 800 -batch 4 -block-kb 512 -json /tmp/BENCH_stage_short_cand.json
	BENCH_COMPARE_TOLERANCE=40 ./scripts/bench_compare.sh BENCH_stage_short.json /tmp/BENCH_stage_short_cand.json

# End-to-end observability smoke test: runs a live batch search with
# -debug-addr, scrapes /metrics, /debug/vars and /debug/pprof/, and asserts
# the pipeline stage counters moved.
obs-smoke:
	./scripts/obs_smoke.sh

# Fault-injected observability smoke test: runs mublastp with -faultspec and
# asserts the failure counters (tasks_panicked, deadline_exceeded,
# queries_cancelled) move on /metrics and the run degrades as documented.
obs-smoke-fault:
	./scripts/obs_smoke_fault.sh

# Daemon lifecycle smoke test: starts mublastpd on a prebuilt container and
# drives concurrent searches, a hot reload mid-flight, a corrupt-container
# reload (must be rejected with the old database still serving), the serving
# counters on /metrics, and a clean SIGTERM drain.
serve-smoke:
	./scripts/serve_smoke.sh

# Sharded serving smoke test: splits a database with `makedb -shards`, serves
# the shards behind the scatter-gather router (mublastpr) next to a
# monolithic mublastpd, sends the same batch to both, and requires the
# response payloads — every hit, score, and E-value — to be byte-identical.
shard-smoke:
	./scripts/shard_smoke.sh

# Remote-topology smoke test: a 2-shard x 2-replica mublastpd fleet behind
# mublastpr -workers, checked byte-identical against a monolithic daemon,
# then the failure drills — SIGKILL one replica (fleet keeps serving, prober
# ejects, /readyz stays green), SIGKILL the shard's last replica (/readyz
# 503), restart (readmission, byte-identity restored).
remote-smoke:
	./scripts/remote_smoke.sh

# Crash-recovery smoke test: SIGKILL a real makedb -append mid-commit at
# varied points, then require recovery to a verifiable store at exactly the
# pre- or post-append manifest, no batch lost or double-applied across the
# drill, and a clean compaction afterwards.
crash-smoke:
	./scripts/crash_smoke.sh

# Cross-tier tracing smoke test: traced mublastpd + mublastpr serve a batch,
# then cmd/tracecheck asserts one stitched (span-ID-linked) trace tree per
# request with the edge/scatter/shard/merge and six-stage spans present,
# X-Request-ID on every response, upstream trace context honored across the
# HTTP hop, workload records written, and non-empty debug-address /metrics.
trace-smoke:
	./scripts/trace_smoke.sh

# Regenerate every evaluation table (Section V). ~5 minutes at this scale.
experiments:
	go run ./cmd/experiments -seqs 4000 -batch 16

examples:
	go run ./examples/quickstart
	go run ./examples/engines -seqs 1000 -queries 8
	go run ./examples/cluster -seqs 800 -queries 8
	go run ./examples/metagenomics -seqs 1500 -reads 16

# Refresh the golden regression corpus after an intentional behaviour change.
golden:
	go test ./internal/core -run Golden -update-golden

clean:
	go clean ./...
