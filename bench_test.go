// Benchmarks regenerating the paper's tables and figures (one benchmark or
// benchmark family per figure — see DESIGN.md's per-experiment index), plus
// the Section IV-B design ablations and kernel microbenchmarks.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The cmd/experiments binary produces the corresponding human-readable
// tables; these benchmarks give the same comparisons in testing.B form.
package repro_test

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dbindex"
	"repro/internal/gapped"
	"repro/internal/hit"
	"repro/internal/hitsort"
	"repro/internal/matrix"
	"repro/internal/neighbor"
	"repro/internal/qindex"
	"repro/internal/search"
	"repro/internal/seqgen"
	"repro/internal/sw"
	"repro/internal/ungapped"
)

// Shared fixtures, built once.
var (
	fixOnce sync.Once
	fixUni  *bench.Workload
	fixEnv  *bench.Workload
)

func fixtures(b *testing.B) (*bench.Workload, *bench.Workload) {
	b.Helper()
	fixOnce.Do(func() {
		s := bench.Scale{UniprotSeqs: 1500, EnvNRSeqs: 2500, Batch: 16, Threads: 0, Seed: 7}
		var err error
		if fixUni, err = bench.Uniprot(s); err != nil {
			panic(err)
		}
		if fixEnv, err = bench.EnvNR(s); err != nil {
			panic(err)
		}
	})
	return fixUni, fixEnv
}

// --- Fig 2: query-indexed vs db-indexed single-query latency ---

func BenchmarkFig2_NCBI(b *testing.B) {
	_, env := fixtures(b)
	e := search.NewQueryIndexed(env.Cfg, env.DB)
	q := env.Queries["512"][0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Search(0, q)
	}
}

func BenchmarkFig2_NCBIdb(b *testing.B) {
	_, env := fixtures(b)
	e := search.NewDBIndexed(env.Cfg, env.Index)
	q := env.Queries["512"][0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Search(0, q)
	}
}

func BenchmarkFig2_MuBLASTP(b *testing.B) {
	_, env := fixtures(b)
	e := core.New(env.Cfg, env.Index)
	q := env.Queries["512"][0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Search(0, q)
	}
}

// --- Fig 6 / Section IV-C: pre-filter ablation ---

func BenchmarkFig6_Prefilter(b *testing.B) {
	uni, _ := fixtures(b)
	for _, cfg := range []struct {
		name string
		opt  core.Options
	}{
		{"on", core.Options{Prefilter: true, Sorter: core.SortLSD}},
		{"off", core.Options{Prefilter: false, Sorter: core.SortLSD}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			e := core.NewWithOptions(uni.Cfg, uni.Index, cfg.opt)
			qs := uni.Queries["256"]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Search(0, qs[i%len(qs)])
			}
		})
	}
}

// --- Fig 7: synthetic database generation ---

func BenchmarkFig7_Generate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := seqgen.New(seqgen.EnvNRProfile(), int64(i))
		g.Database(500)
	}
}

// --- Fig 8: block-size sweep ---

func BenchmarkFig8_BlockSize(b *testing.B) {
	uni, _ := fixtures(b)
	for _, residues := range []int64{8 << 10, 32 << 10, 128 << 10, 512 << 10} {
		ix, err := dbindex.Build(uni.DB, uni.Cfg.Neighbors, residues)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(bLabel(residues*4), func(b *testing.B) {
			e := core.New(uni.Cfg, ix)
			qs := uni.Queries["256"]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Search(0, qs[i%len(qs)])
			}
		})
	}
}

func bLabel(bytes int64) string {
	if bytes >= 1<<20 {
		return "block_" + itoa(bytes>>20) + "MB"
	}
	return "block_" + itoa(bytes>>10) + "KB"
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// --- Fig 9: multithreaded batch comparison ---

func BenchmarkFig9_Batch(b *testing.B) {
	uni, env := fixtures(b)
	for _, w := range []*bench.Workload{uni, env} {
		for _, set := range []string{"128", "512", "mixed"} {
			qs := w.Queries[set]
			b.Run(w.Name+"/NCBI/"+set, func(b *testing.B) {
				e := search.NewQueryIndexed(w.Cfg, w.DB)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.SearchBatch(qs, 0)
				}
			})
			b.Run(w.Name+"/NCBIdb/"+set, func(b *testing.B) {
				e := search.NewDBIndexed(w.Cfg, w.Index)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.SearchBatch(qs, 0)
				}
			})
			b.Run(w.Name+"/muBLASTP/"+set, func(b *testing.B) {
				e := core.New(w.Cfg, w.Index)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.SearchBatch(qs, 0)
				}
			})
		}
	}
}

// --- Fig 10: scaling simulation ---

func BenchmarkFig10_Scaling(b *testing.B) {
	g := seqgen.New(seqgen.EnvNRProfile(), 7)
	seqLens := make([]int, 100000)
	for i := range seqLens {
		seqLens[i] = g.Length()
	}
	queryLens := make([]int, 128)
	for i := range queryLens {
		queryLens[i] = g.Length()
	}
	p := cluster.DefaultCostParams()
	p.SecPerCellNCBI, p.SecPerCellMu = 3e-9, 1e-9
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, nodes := range []int{1, 16, 128} {
			frag := make([]int64, nodes*16)
			part := make([]int64, nodes)
			for j, l := range seqLens {
				frag[j%(nodes*16)] += int64(l)
				part[j%nodes] += int64(l)
			}
			cluster.SimulateMPIBlast(queryLens, frag, p)
			cluster.SimulateMuBLASTP(queryLens, part, 16, p)
		}
	}
}

// --- Section IV-B ablation: hit-reordering algorithms ---

func benchSort(b *testing.B, n int, sorter func([]hit.Pair)) {
	coder, err := hit.NewKeyCoder(2048, 2048)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	src := make([]hit.Pair, n)
	for i := range src {
		src[i] = hit.Pair{Key: coder.Encode(rng.Intn(2048), rng.Intn(2048)), QOff: int32(i)}
	}
	work := make([]hit.Pair, n)
	b.SetBytes(int64(n * 12))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, src)
		sorter(work)
	}
}

func BenchmarkHitsort_LSD(b *testing.B) {
	scratch := make([]hit.Pair, 1<<17)
	benchSort(b, 1<<17, func(p []hit.Pair) { hitsort.LSD(p, 22, scratch) })
}

func BenchmarkHitsort_MSD(b *testing.B) {
	scratch := make([]hit.Pair, 1<<17)
	benchSort(b, 1<<17, func(p []hit.Pair) { hitsort.MSD(p, 22, scratch) })
}

func BenchmarkHitsort_Merge(b *testing.B) {
	scratch := make([]hit.Pair, 1<<17)
	benchSort(b, 1<<17, func(p []hit.Pair) { hitsort.Merge(p, scratch) })
}

func BenchmarkHitsort_TwoLevelBin(b *testing.B) {
	scratch := make([]hit.Pair, 1<<17)
	benchSort(b, 1<<17, func(p []hit.Pair) { hitsort.TwoLevelBin(p, 11, 2048, 2048, scratch) })
}

func BenchmarkHitsort_TwoLevelBinReusedCounts(b *testing.B) {
	scratch := make([]hit.Pair, 1<<17)
	var counts []int
	benchSort(b, 1<<17, func(p []hit.Pair) {
		counts = hitsort.TwoLevelBinWith(p, 11, 2048, 2048, scratch, counts)
	})
}

// --- Section IV ablation: batch schedulers (barrier vs block-major grid) ---

func BenchmarkSchedulerAblation_Batch(b *testing.B) {
	uni, _ := fixtures(b)
	// Skewed mix: mostly short queries plus one straggler, the shape where
	// per-block barriers leave workers idle.
	seqs := make([][]alphabet.Code, uni.DB.NumSeqs())
	for i := range uni.DB.Seqs {
		seqs[i] = uni.DB.Seqs[i].Data
	}
	skewed := append(append([][]alphabet.Code{}, uni.Queries["128"]...),
		uni.Gen.Queries(seqs, 1, 1024)...)
	for _, mix := range []struct {
		name string
		qs   [][]alphabet.Code
	}{{"uniform256", uni.Queries["256"]}, {"skewed", skewed}} {
		for _, s := range []struct {
			name  string
			sched core.Scheduler
		}{{"barrier", core.SchedBarrier}, {"grid", core.SchedBlockMajor}} {
			b.Run(mix.name+"/"+s.name, func(b *testing.B) {
				opt := core.DefaultOptions()
				opt.Scheduler = s.sched
				e := core.NewWithOptions(uni.Cfg, uni.Index, opt)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.SearchBatch(mix.qs, 0)
				}
			})
		}
	}
}

func BenchmarkSorterAblation_EndToEnd(b *testing.B) {
	uni, _ := fixtures(b)
	for _, s := range []struct {
		name string
		kind core.Sorter
	}{{"LSD", core.SortLSD}, {"MSD", core.SortMSD}, {"Merge", core.SortMerge}, {"TwoLevel", core.SortTwoLevel}} {
		b.Run(s.name, func(b *testing.B) {
			e := core.NewWithOptions(uni.Cfg, uni.Index, core.Options{Prefilter: true, Sorter: s.kind})
			qs := uni.Queries["256"]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Search(0, qs[i%len(qs)])
			}
		})
	}
}

// --- Kernel microbenchmarks ---

func BenchmarkUngappedExtend(b *testing.B) {
	g := seqgen.New(seqgen.UniprotProfile(), 3)
	q := g.Sequence(512)
	s := g.Sequence(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ungapped.Extend(matrix.Blosum62, q, s, 256, 256, 16)
	}
}

func BenchmarkGappedExtend(b *testing.B) {
	g := seqgen.New(seqgen.UniprotProfile(), 3)
	q := g.Sequence(512)
	s := append([]alphabet.Code(nil), q...)
	al := gapped.NewAligner(matrix.Blosum62, gapped.DefaultParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		al.Extend(q, s, 256, 256)
	}
}

func BenchmarkSmithWaterman(b *testing.B) {
	g := seqgen.New(seqgen.UniprotProfile(), 3)
	q := g.Sequence(256)
	s := g.Sequence(256)
	b.SetBytes(int64(len(q)) * int64(len(s)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.Score(matrix.Blosum62, q, s, 11, 1)
	}
}

func BenchmarkNeighborTableBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		neighbor.Build(matrix.Blosum62, neighbor.DefaultThreshold)
	}
}

func BenchmarkQueryIndexBuild(b *testing.B) {
	uni, _ := fixtures(b)
	q := uni.Queries["512"][0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qindex.Build(q, uni.Cfg.Neighbors)
	}
}

func BenchmarkDBIndexBuild(b *testing.B) {
	uni, _ := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dbindex.Build(uni.DB, uni.Cfg.Neighbors, 128<<10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGappedExtendScoreOnly(b *testing.B) {
	g := seqgen.New(seqgen.UniprotProfile(), 3)
	q := g.Sequence(512)
	s := append([]alphabet.Code(nil), q...)
	al := gapped.NewAligner(matrix.Blosum62, gapped.DefaultParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		al.ExtendScore(q, s, 256, 256)
	}
}
