// Quickstart: index a handful of protein sequences and search one query,
// printing the BLAST-style report. This is the smallest complete use of the
// public API.
package main

import (
	"fmt"
	"log"

	"repro/blast"
)

func main() {
	// A miniature database. P53HUMAN carries the query's source region.
	subjects := []blast.Sequence{
		{Name: "sp|P04637|P53_HUMAN", Residues: "MEEPQSDPSVEPPLSQETFSDLWKLLPENNVLSPLPSQAMDDLMLSPDDIEQWFTEDPGP" +
			"DEAPRMPEAAPPVAPAPAAPTPAAPAPAPSWPLSSSVPSQKTYQGSYGFRLGFLHSGTAK" +
			"SVTCTYSPALNKMFCQLAKTCPVQLWVDSTPPPGTRVRAMAIYKQSQHMTEVVRRCPHHE"},
		{Name: "sp|P02340|P53_MOUSE", Residues: "MEESQSDISLELPLSQETFSGLWKLLPPEDILPSPHCMDDLLLPQDVEEFFEGPSEALRV" +
			"SGAPAAQDPVTETPGPVAPAPATPWPLSSFVPSQKTYQGNYGFHLGFLQSGTAKSVMCTY" +
			"SPPLNKLFCQLAKTCPVQLWVSATPPAGSRVRAMAIYKKSQHMTEVVRRCPHHE"},
		{Name: "sp|P0A7G6|RECA_ECOLI", Residues: "MAIDENKQKALAAALGQIEKQFGKGSIMRLGEDRSMDVETISTGSLSLDIALGAGGLPMG" +
			"RIVEIYGPESSGKTTLTLQVIAAAQREGKTCAFIDAEHALDPIYARKLGVDIDNLLCSQP" +
			"DTGEQALEICDALARSGAVDVIVVDSVAALTPKAEIEGEIGDSHMGLAARMMSQAMRKLA"},
		{Name: "sp|P69905|HBA_HUMAN", Residues: "MVLSPADKTNVKAAWGKVGAHAGEYGAEALERMFLSFPTTKTYFPHFDLSHGSAQVKGHG" +
			"KKVADALTNAVAHVDDMPNALSALSDLHAHKLRVDPVNFKLLSHCLLVTLAAHLPAEFTP" +
			"AVHASLDKFLASVSTVLTSKYR"},
	}

	db, err := blast.NewDatabase(subjects, blast.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d sequences (%d residues) into %d block(s)\n\n",
		db.NumSequences(), db.TotalResidues(), db.NumBlocks())

	// A fragment of human p53 with a few substitutions.
	query := "SVTCTYSPALNKMFCQLAKTCPVELWVDSTPPPGTRVRAMAIYKQSQHMTE"

	res, err := db.Search(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query (%d residues): %d hit(s)\n\n", res.QueryLen, len(res.Hits))
	fmt.Print(res.Summary())
	fmt.Println()
	for i := range res.Hits {
		fmt.Print(db.FormatHit(query, &res.Hits[i]))
	}
	fmt.Printf("pipeline stats: %d hits -> %d pairs -> %d extensions -> %d kept -> %d gapped\n",
		res.Stats.Hits, res.Stats.Pairs, res.Stats.Extensions, res.Stats.Kept, res.Stats.GappedExts)
}
