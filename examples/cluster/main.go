// Cluster: the paper's inter-node parallelism (Section IV-D) running for
// real on the in-process MPI substrate. The database is length-sorted and
// round-robin partitioned across ranks; every rank indexes and searches its
// partition with the multithreaded muBLASTP engine; rank 0 merges the batch.
// The run verifies the merged output matches a single-node search and
// contrasts the load balance of round-robin vs contiguous partitioning.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dbase"
	"repro/internal/dbindex"
	"repro/internal/matrix"
	"repro/internal/neighbor"
	"repro/internal/search"
	"repro/internal/seqgen"
)

func main() {
	var (
		nSeqs = flag.Int("seqs", 2000, "database size (sequences)")
		nQ    = flag.Int("queries", 16, "batch size")
		ranks = flag.Int("ranks", 4, "simulated nodes (MPI ranks)")
		seed  = flag.Int64("seed", 9, "generator seed")
	)
	flag.Parse()

	nbr := neighbor.Build(matrix.Blosum62, neighbor.DefaultThreshold)
	cfg, err := search.NewConfig(matrix.Blosum62, nbr)
	if err != nil {
		log.Fatal(err)
	}
	g := seqgen.New(seqgen.EnvNRProfile(), *seed)
	raw := g.Database(*nSeqs)
	queries := g.Queries(raw, *nQ, 0)

	// Single-node reference.
	refDB := dbase.New(raw)
	ix, err := dbindex.Build(refDB, nbr, 1<<18)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	ref := core.New(cfg, ix).SearchBatch(queries, 0)
	singleTime := time.Since(start)
	fmt.Printf("single node: %d queries in %v\n", len(queries), singleTime.Round(time.Millisecond))

	// Distributed run, round-robin partitions (the paper's scheme).
	distDB := dbase.New(raw)
	start = time.Now()
	merged, busy := cluster.RunDistributed(cfg, distDB, queries, cluster.DistOptions{
		Ranks: *ranks, ThreadsPerRank: 2, BlockResidues: 1 << 18,
	})
	fmt.Printf("%d ranks:     %d queries in %v\n", *ranks, len(queries), time.Since(start).Round(time.Millisecond))
	fmt.Printf("per-rank busy fractions (round-robin): %s\n", fmtBusy(busy))

	// Contiguous partitioning: the load-balance ablation.
	contigDB := dbase.New(raw)
	_, busyC := cluster.RunDistributed(cfg, contigDB, queries, cluster.DistOptions{
		Ranks: *ranks, ThreadsPerRank: 2, BlockResidues: 1 << 18, Contiguous: true,
	})
	fmt.Printf("per-rank busy fractions (contiguous):  %s\n\n", fmtBusy(busyC))

	// Verify the merged results equal the single-node search (Section V-E
	// across node counts): same top hit per query.
	agree := 0
	for qi := range queries {
		if sameTop(ref[qi].HSPs, merged[qi].HSPs) {
			agree++
		}
	}
	fmt.Printf("queries whose merged results match the single-node run: %d / %d\n", agree, len(queries))
	if agree != len(queries) {
		log.Fatal("distributed merge diverged from single-node results")
	}
}

func fmtBusy(busy []float64) string {
	out := ""
	for i, b := range busy {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.2f", b)
	}
	return out
}

func sameTop(a, b []search.HSP) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 {
		return true
	}
	return a[0].SubjectName == b[0].SubjectName && a[0].Aln.Score == b[0].Aln.Score
}
