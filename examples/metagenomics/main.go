// Metagenomics: the workload the paper's introduction motivates (microbiome
// studies spend ~half their core-hours in BLAST). A large env_nr-like
// database of environmental protein fragments is indexed once, then a batch
// of mixed-length read-derived queries is searched with the multithreaded
// muBLASTP engine; the run reports throughput and the pipeline funnel.
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/blast"
	"repro/internal/alphabet"
	"repro/internal/seqgen"
)

func main() {
	var (
		nSeqs   = flag.Int("seqs", 5000, "database size (sequences)")
		nReads  = flag.Int("reads", 64, "number of query reads")
		threads = flag.Int("threads", 0, "threads (0 = all cores)")
		seed    = flag.Int64("seed", 42, "generator seed")
	)
	flag.Parse()

	// Synthesize the environmental database (env_nr length statistics:
	// median 177, mean 197 residues — short fragments from shotgun data).
	g := seqgen.New(seqgen.EnvNRProfile(), *seed)
	raw := g.Database(*nSeqs)
	seqs := make([]blast.Sequence, len(raw))
	for i, s := range raw {
		seqs[i] = blast.Sequence{Name: fmt.Sprintf("env_%06d", i), Residues: alphabet.String(s)}
	}

	p := blast.DefaultParams()
	p.Threads = *threads
	start := time.Now()
	db, err := blast.NewDatabase(seqs, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d sequences / %.1f MB of residues into %d blocks (%.1f MB index) in %v\n",
		db.NumSequences(), float64(db.TotalResidues())/1e6, db.NumBlocks(),
		float64(db.IndexSizeBytes())/(1<<20), time.Since(start).Round(time.Millisecond))

	// Query reads follow the database's own length distribution (the
	// paper's "mixed" query set) — translated shotgun reads of varying
	// length, sampled from real family members.
	reads := g.Queries(raw, *nReads, 0)
	queries := make([]string, len(reads))
	for i, r := range reads {
		queries[i] = alphabet.String(r)
	}

	start = time.Now()
	results, err := db.SearchBatch(queries)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	var hits, pairs, exts, reported int64
	classified := 0
	for _, r := range results {
		hits += r.Stats.Hits
		pairs += r.Stats.Pairs
		exts += r.Stats.Extensions
		reported += int64(len(r.Hits))
		// A read is "classified" when it has a confident hit.
		if len(r.Hits) > 0 && r.Hits[0].EValue < 1e-5 {
			classified++
		}
	}
	threadsUsed := *threads
	if threadsUsed <= 0 {
		threadsUsed = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("\nsearched %d reads in %v on %d threads (%.1f reads/s)\n",
		len(queries), elapsed.Round(time.Millisecond), threadsUsed,
		float64(len(queries))/elapsed.Seconds())
	fmt.Printf("pipeline funnel: %d hits -> %d pairs -> %d ungapped extensions -> %d reported alignments\n",
		hits, pairs, exts, reported)
	fmt.Printf("classified reads (top hit E < 1e-5): %d / %d\n\n", classified, len(queries))

	// Show the top assignment for the first few reads.
	for i := 0; i < len(results) && i < 5; i++ {
		r := results[i]
		if len(r.Hits) == 0 {
			fmt.Printf("read %2d (%3d aa): no hit\n", i, r.QueryLen)
			continue
		}
		h := r.Hits[0]
		fmt.Printf("read %2d (%3d aa): %-12s  bits %6.1f  E %.1e  identity %3.0f%%\n",
			i, r.QueryLen, h.SubjectName, h.BitScore, h.EValue, 100*h.Identity)
	}
}
