// Engines: the paper's central claims in one run. The same query batch is
// searched with all three pipelines — query-indexed NCBI, db-indexed
// interleaved NCBI-db, and muBLASTP — verifying they return identical
// alignments (Section V-E) while timing them against each other (Fig 9),
// and showing the pre-filter's effect on sort volume (Fig 6).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/blast"
	"repro/internal/alphabet"
	"repro/internal/seqgen"
)

func main() {
	var (
		nSeqs = flag.Int("seqs", 3000, "database size (sequences)")
		nQ    = flag.Int("queries", 24, "batch size")
		qLen  = flag.Int("qlen", 256, "query length")
		seed  = flag.Int64("seed", 11, "generator seed")
	)
	flag.Parse()

	g := seqgen.New(seqgen.UniprotProfile(), *seed)
	raw := g.Database(*nSeqs)
	seqs := make([]blast.Sequence, len(raw))
	for i, s := range raw {
		seqs[i] = blast.Sequence{Name: fmt.Sprintf("sp_%06d", i), Residues: alphabet.String(s)}
	}
	db, err := blast.NewDatabase(seqs, blast.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	queries := make([]string, 0, *nQ)
	for _, q := range g.Queries(raw, *nQ, *qLen) {
		queries = append(queries, alphabet.String(q))
	}
	fmt.Printf("database: %d sequences, %d blocks; batch: %d queries of length %d\n\n",
		db.NumSequences(), db.NumBlocks(), len(queries), *qLen)

	type outcome struct {
		results []*blast.Result
		elapsed time.Duration
	}
	outcomes := map[blast.EngineKind]outcome{}
	for _, kind := range []blast.EngineKind{blast.EngineNCBI, blast.EngineNCBIdb, blast.EngineMuBLASTP} {
		start := time.Now()
		results := make([]*blast.Result, len(queries))
		for i, q := range queries {
			r, err := db.SearchWithEngine(kind, q)
			if err != nil {
				log.Fatal(err)
			}
			results[i] = r
		}
		outcomes[kind] = outcome{results, time.Since(start)}
		fmt.Printf("%-10s %8.0f ms\n", kind.String(), float64(outcomes[kind].elapsed.Milliseconds()))
	}

	ncbi := outcomes[blast.EngineNCBI]
	mu := outcomes[blast.EngineMuBLASTP]
	fmt.Printf("\nmuBLASTP speedup vs NCBI:    %.2fx\n", float64(ncbi.elapsed)/float64(mu.elapsed))
	fmt.Printf("muBLASTP speedup vs NCBI-db: %.2fx\n",
		float64(outcomes[blast.EngineNCBIdb].elapsed)/float64(mu.elapsed))

	// Section V-E: identical outputs across engines.
	identical := true
	totalHSPs := 0
	for qi := range queries {
		a := ncbi.results[qi].Hits
		b := outcomes[blast.EngineNCBIdb].results[qi].Hits
		c := mu.results[qi].Hits
		if len(a) != len(b) || len(a) != len(c) {
			identical = false
			break
		}
		totalHSPs += len(a)
		for j := range a {
			if a[j] != b[j] || a[j] != c[j] {
				identical = false
			}
		}
	}
	fmt.Printf("\nverification: %d alignments compared across the three engines — identical: %v\n",
		totalHSPs, identical)

	// Fig 6 flavor: the pre-filter funnel, from the muBLASTP stats.
	var hits, pairs int64
	for _, r := range mu.results {
		hits += r.Stats.Hits
		pairs += r.Stats.Pairs
	}
	fmt.Printf("pre-filter: %d hits -> %d pairs sorted (%.1f%% remain)\n",
		hits, pairs, 100*float64(pairs)/float64(hits))
}
