#!/bin/sh
# Fault-injected observability smoke test (the `make obs-smoke-fault` target).
#
# Runs two real mublastp searches with fault injection armed and asserts the
# failure counters on /metrics move and the process degrades as documented:
#
#   1. -faultspec 'sched.task=panic#2'        -> one query poisoned, the rest
#      printed; tasks_panicked > 0; exit status non-zero.
#   2. -faultspec 'core.hitdetect=delay:20ms' -timeout 40ms -> the deadline
#      lands mid-batch; deadline_exceeded > 0 and queries_cancelled > 0.
set -eu

workdir=$(mktemp -d "${TMPDIR:-/tmp}/obs-smoke-fault.XXXXXX")
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "obs-smoke-fault: building binaries..."
go build -o "$workdir/mublastp" ./cmd/mublastp
go build -o "$workdir/genseq" ./cmd/genseq

echo "obs-smoke-fault: generating workload..."
"$workdir/genseq" -n 600 -seed 11 -out "$workdir/db.fasta" \
    -queries 8 -qlen 200 -qout "$workdir/queries.fasta"

# run_faulted <name> <expected-exit-nonzero> <extra flags...>
# Starts mublastp with the given fault flags and -debug-linger, waits for the
# batch to finish, and leaves the scraped metrics in $workdir/<name>.metrics.
run_faulted() {
    name=$1; shift
    "$workdir/mublastp" -subjects "$workdir/db.fasta" -query "$workdir/queries.fasta" \
        -debug-addr 127.0.0.1:0 -debug-linger 30s "$@" \
        >"$workdir/$name.out" 2>"$workdir/$name.err" &
    pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^mublastp: debug server listening on //p' "$workdir/$name.err" | head -n 1)
        [ -n "$addr" ] && break
        kill -0 "$pid" 2>/dev/null || { echo "obs-smoke-fault: FAIL: $name exited before announcing server"; cat "$workdir/$name.err"; exit 1; }
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "obs-smoke-fault: FAIL: $name never announced the debug server"; exit 1; }
    for _ in $(seq 1 300); do
        grep -q "queries searched in" "$workdir/$name.err" && break
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.1
    done
    curl -fsS "http://$addr/metrics" >"$workdir/$name.metrics"
    kill "$pid" 2>/dev/null || true
    status=0
    wait "$pid" 2>/dev/null || status=$?
    pid=""
    # The injected failure must surface in the exit status (batch ended
    # incomplete), not be swallowed.
    if [ "$status" -eq 0 ]; then
        echo "obs-smoke-fault: FAIL: $name exited 0 despite injected faults"
        cat "$workdir/$name.err"
        exit 1
    fi
}

metric_positive() {
    name=$1; metric=$2
    value=$(sed -n "s/^$metric //p" "$workdir/$name.metrics")
    if [ -z "$value" ] || [ "$value" -le 0 ]; then
        echo "obs-smoke-fault: FAIL: $name: $metric is '${value:-missing}', want > 0"
        return 1
    fi
    echo "obs-smoke-fault: $name: $metric = $value"
}

fail=0

echo "obs-smoke-fault: run 1: injected task panic..."
run_faulted panic -faultspec 'sched.task=panic#2'
metric_positive panic tasks_panicked || fail=1
grep -q "not completed" "$workdir/panic.err" || {
    echo "obs-smoke-fault: FAIL: poisoned query not reported on stderr"; fail=1; }
# The batch must still print the surviving queries.
survivors=$(grep -c '^Query:' "$workdir/panic.out" || true)
if [ "$survivors" -lt 1 ]; then
    echo "obs-smoke-fault: FAIL: no surviving query output after isolated panic"
    fail=1
else
    echo "obs-smoke-fault: panic: $survivors surviving queries printed"
fi

echo "obs-smoke-fault: run 2: deadline mid-batch..."
run_faulted deadline -faultspec 'core.hitdetect=delay:20ms' -timeout 40ms
metric_positive deadline deadline_exceeded || fail=1
metric_positive deadline queries_cancelled || fail=1

# Every failure counter must at least be exposed. rank_failovers only moves
# in distributed runs (cluster tests assert it non-zero); here it must be
# present and zero.
for metric in tasks_panicked queries_cancelled deadline_exceeded rank_failovers; do
    grep -q "^$metric " "$workdir/deadline.metrics" || {
        echo "obs-smoke-fault: FAIL: $metric not exposed on /metrics"; fail=1; }
done

if [ "$fail" -ne 0 ]; then
    echo "obs-smoke-fault: FAILED"
    exit 1
fi
echo "obs-smoke-fault: OK"
