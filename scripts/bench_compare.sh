#!/bin/sh
# bench_compare.sh — diff two BENCH_stage*.json reports and fail on a total-
# pipeline regression beyond the tolerance (percent, default 5; override with
# BENCH_COMPARE_TOLERANCE). Defaults to comparing the committed seed baseline
# against the committed PR-6 kernel-campaign report.
#
# Usage: scripts/bench_compare.sh [baseline.json [candidate.json]]
set -eu

cd "$(dirname "$0")/.."
BASE=${1:-BENCH_stage.json}
CAND=${2:-BENCH_stage_pr6.json}
TOL=${BENCH_COMPARE_TOLERANCE:-5}

exec go run ./cmd/benchcompare -tolerance "$TOL" "$BASE" "$CAND"
