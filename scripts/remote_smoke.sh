#!/bin/sh
# Remote-topology smoke test (the `make remote-smoke` target).
#
# Builds the toolchain, splits one generated database into 2 shard
# containers, serves each shard from TWO mublastpd daemons (a 2-shard x
# 2-replica fleet, every replica started with the global search space), puts
# mublastpr -workers in front, and checks the remote scatter byte-identical
# to a monolithic mublastpd. Then the failure drills: SIGKILL one replica
# mid-run (the fleet must keep serving complete or honestly-incomplete
# results, the prober must eject the corpse, /readyz must stay green),
# SIGKILL the shard's second replica (/readyz must go 503 — a full scatter is
# impossible), restart one replica (readmission must flip /readyz back and
# results must be byte-identical again).
set -eu

workdir=$(mktemp -d "${TMPDIR:-/tmp}/remote-smoke.XXXXXX")
pids=""
cleanup() {
    for p in $pids; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "remote-smoke: building binaries..."
go build -o "$workdir/mublastpd" ./cmd/mublastpd
go build -o "$workdir/mublastpr" ./cmd/mublastpr
go build -o "$workdir/makedb" ./cmd/makedb
go build -o "$workdir/genseq" ./cmd/genseq

echo "remote-smoke: generating workload and containers..."
"$workdir/genseq" -n 400 -seed 33 -out "$workdir/db.fasta" \
    -queries 3 -qlen 160 -qout "$workdir/queries.fasta"
"$workdir/makedb" -in "$workdir/db.fasta" -out "$workdir/db.mublastp" 2>/dev/null
"$workdir/makedb" -in "$workdir/db.fasta" -out "$workdir/db.mublastp" -shards 2 2>/dev/null
shard0="$workdir/db.mublastp.shard0-of-2"
shard1="$workdir/db.mublastp.shard1-of-2"
[ -f "$shard0" ] && [ -f "$shard1" ] || {
    echo "remote-smoke: FAIL: shard containers missing"; exit 1; }

queries_json=$(awk '
    function flush() { if (seq != "") { printf "%s{\"name\":\"q%d\",\"residues\":\"%s\"}", sep, n, seq; sep = ","; n++ } seq = "" }
    /^>/ { flush(); next }
    { seq = seq $0 }
    END { flush() }
' "$workdir/queries.fasta")
[ -n "$queries_json" ] || { echo "remote-smoke: FAIL: no queries extracted"; exit 1; }
search_body="{\"queries\":[$queries_json]}"

wait_addr() { # name pid errfile -> prints addr
    _addr=""
    for _ in $(seq 1 100); do
        _addr=$(sed -n "s/^$1: serving on \([^ ]*\) .*/\1/p" "$3" | head -n 1)
        [ -n "$_addr" ] && break
        kill -0 "$2" 2>/dev/null || { echo "remote-smoke: FAIL: $1 exited early" >&2; cat "$3" >&2; exit 1; }
        sleep 0.1
    done
    [ -n "$_addr" ] || { echo "remote-smoke: FAIL: $1 never announced its address" >&2; cat "$3" >&2; exit 1; }
    printf '%s' "$_addr"
}

echo "remote-smoke: starting monolithic mublastpd..."
"$workdir/mublastpd" -db "$workdir/db.mublastp" -addr 127.0.0.1:0 \
    -drain-grace 5s >/dev/null 2>"$workdir/mono.err" &
mono_pid=$!
pids="$pids $mono_pid"
mono_addr=$(wait_addr mublastpd "$mono_pid" "$workdir/mono.err")

# The global search space every shard worker must be told about, read off the
# monolithic daemon's own handshake surface.
info=$(curl -fsS "http://$mono_addr/shard/info")
global_seqs=$(printf '%s' "$info" | sed -n 's/.*"sequences":\([0-9]*\).*/\1/p')
global_res=$(printf '%s' "$info" | sed -n 's/.*"total_residues":\([0-9]*\).*/\1/p')
[ -n "$global_seqs" ] && [ -n "$global_res" ] || {
    echo "remote-smoke: FAIL: could not read the global search space"; exit 1; }
echo "remote-smoke: global search space: $global_seqs sequences, $global_res residues"

# Fixed (pid-derived) ports so a killed replica can be restarted in place.
base_port=$((20000 + $$ % 20000))
start_worker() { # index container -> pid via $worker_pid, addr via $worker_addr
    _port=$((base_port + $1))
    "$workdir/mublastpd" -db "$2" -addr "127.0.0.1:$_port" \
        -global-sequences "$global_seqs" -global-residues "$global_res" \
        -drain-grace 2s >/dev/null 2>"$workdir/worker$1.err" &
    worker_pid=$!
    pids="$pids $worker_pid"
    worker_addr=$(wait_addr mublastpd "$worker_pid" "$workdir/worker$1.err")
}

echo "remote-smoke: starting the 2x2 worker fleet..."
start_worker 0 "$shard0"; w00_pid=$worker_pid; w00_addr=$worker_addr
start_worker 1 "$shard0"; w01_pid=$worker_pid; w01_addr=$worker_addr
start_worker 2 "$shard1"; w10_pid=$worker_pid; w10_addr=$worker_addr
start_worker 3 "$shard1"; w11_pid=$worker_pid; w11_addr=$worker_addr

echo "remote-smoke: starting mublastpr -workers..."
"$workdir/mublastpr" \
    -workers "http://$w00_addr|http://$w01_addr,http://$w10_addr|http://$w11_addr" \
    -probe-interval 100ms -readmit-backoff 200ms -readmit-backoff-max 1s \
    -retry-budget 2 -retry-backoff 5ms \
    -addr 127.0.0.1:0 -drain-grace 5s >/dev/null 2>"$workdir/router.err" &
router_pid=$!
pids="$pids $router_pid"
router_addr=$(wait_addr mublastpr "$router_pid" "$workdir/router.err")
echo "remote-smoke: monolithic at $mono_addr, router at $router_addr"

grep -q "remote replicas) coherent" "$workdir/router.err" || {
    echo "remote-smoke: FAIL: router did not announce the coherence handshake"; exit 1; }

fail=0

post() { # body out -> status code
    curl -s -o "$2" -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
        -d "$1" "http://$router_addr/search"
}
strip_stats() { sed 's/,"stats".*//' "$1"; }

echo "remote-smoke: remote scatter vs monolithic diff..."
code=$(curl -s -o "$workdir/mono.json" -w '%{http_code}' -X POST \
    -H 'Content-Type: application/json' -d "$search_body" "http://$mono_addr/search")
[ "$code" = "200" ] || { echo "remote-smoke: FAIL: monolithic search = $code"; fail=1; }
code=$(post "$search_body" "$workdir/remote.json")
[ "$code" = "200" ] || { echo "remote-smoke: FAIL: remote search = $code: $(cat "$workdir/remote.json")"; fail=1; }
strip_stats "$workdir/mono.json" >"$workdir/mono.results"
strip_stats "$workdir/remote.json" >"$workdir/remote.results"
if ! cmp -s "$workdir/mono.results" "$workdir/remote.results"; then
    echo "remote-smoke: FAIL: remote results differ from monolithic"
    diff "$workdir/mono.results" "$workdir/remote.results" | head -5
    fail=1
else
    echo "remote-smoke: results byte-identical ($(grep -o '"subject"' "$workdir/mono.results" | wc -l | tr -d ' ') hits)"
fi
grep -q '"e_value"' "$workdir/remote.results" || {
    echo "remote-smoke: FAIL: remote response carries no scored hits; diff is vacuous"; fail=1; }

echo "remote-smoke: SIGKILL shard 0 replica 0 mid-run..."
kill -9 "$w00_pid" 2>/dev/null || true
complete=0
for i in 1 2 3 4 5; do
    code=$(post "$search_body" "$workdir/kill$i.json")
    [ "$code" = "200" ] || { echo "remote-smoke: FAIL: search $i after kill = $code"; fail=1; continue; }
    strip_stats "$workdir/kill$i.json" >"$workdir/kill$i.results"
    if cmp -s "$workdir/mono.results" "$workdir/kill$i.results"; then
        complete=$((complete + 1))
    elif ! grep -q '"completed":false' "$workdir/kill$i.results"; then
        echo "remote-smoke: FAIL: search $i after kill is neither byte-identical nor honestly incomplete"
        fail=1
    fi
done
[ "$complete" -ge 1 ] || {
    echo "remote-smoke: FAIL: no complete result after the kill; retries never reached the surviving replica"; fail=1; }
echo "remote-smoke: $complete/5 searches complete after the kill, rest honestly incomplete"

echo "remote-smoke: waiting for the prober to eject the corpse..."
ejected=""
for _ in $(seq 1 50); do
    if curl -fsS "http://$router_addr/replicas" | grep -q '"ejected":true'; then ejected=yes; break; fi
    sleep 0.1
done
[ -n "$ejected" ] || { echo "remote-smoke: FAIL: dead replica never ejected"; fail=1; }
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$router_addr/readyz")
[ "$code" = "200" ] || {
    echo "remote-smoke: FAIL: /readyz = $code with a surviving replica, want 200"; fail=1; }

echo "remote-smoke: SIGKILL shard 0's last replica -> /readyz must go 503..."
kill -9 "$w01_pid" 2>/dev/null || true
starved=""
for _ in $(seq 1 50); do
    code=$(curl -s -o /dev/null -w '%{http_code}' "http://$router_addr/readyz")
    [ "$code" = "503" ] && { starved=yes; break; }
    sleep 0.1
done
[ -n "$starved" ] || { echo "remote-smoke: FAIL: /readyz never went 503 with shard 0 fully dead"; fail=1; }
# The fleet still answers what it can: 200 with shard 1's part, honestly
# incomplete (or a full refusal once the budget meets two dead replicas).
code=$(post "$search_body" "$workdir/starved.json")
if [ "$code" = "200" ]; then
    strip_stats "$workdir/starved.json" >"$workdir/starved.results"
    grep -q '"completed":false' "$workdir/starved.results" || {
        echo "remote-smoke: FAIL: starved-shard response claims completeness"; fail=1; }
elif [ "$code" != "429" ] && [ "$code" != "503" ]; then
    echo "remote-smoke: FAIL: starved-shard search = $code, want 200/429/503"; fail=1
fi

echo "remote-smoke: restarting shard 0 replica 0 -> readmission..."
start_worker 0 "$shard0"; w00_pid=$worker_pid
readmitted=""
for _ in $(seq 1 100); do
    code=$(curl -s -o /dev/null -w '%{http_code}' "http://$router_addr/readyz")
    [ "$code" = "200" ] && { readmitted=yes; break; }
    sleep 0.1
done
[ -n "$readmitted" ] || { echo "remote-smoke: FAIL: restarted replica never readmitted (/readyz stuck 503)"; fail=1; }
identical=""
for _ in $(seq 1 30); do
    code=$(post "$search_body" "$workdir/after.json")
    if [ "$code" = "200" ]; then
        strip_stats "$workdir/after.json" >"$workdir/after.results"
        cmp -s "$workdir/mono.results" "$workdir/after.results" && { identical=yes; break; }
    fi
    sleep 0.1
done
[ -n "$identical" ] || {
    echo "remote-smoke: FAIL: results not byte-identical again after readmission"; fail=1; }
echo "remote-smoke: readmitted, results byte-identical again"

curl -fsS "http://$router_addr/metrics" >"$workdir/metrics.txt"
for name in router_replica_ejections router_replica_readmissions; do
    value=$(sed -n "s/^$name //p" "$workdir/metrics.txt")
    if [ -z "$value" ] || [ "$value" = "0" ]; then
        echo "remote-smoke: FAIL: $name = '${value:-missing}', want > 0"; fail=1
    else
        echo "remote-smoke: $name = $value"
    fi
done
# Retries only fire in the window between the kill and the ejection, so the
# count is timing-dependent — report it, don't gate on it.
echo "remote-smoke: router_retries = $(sed -n 's/^router_retries //p' "$workdir/metrics.txt") (informational)"

echo "remote-smoke: SIGTERM drain..."
kill -TERM "$router_pid"
status=0
i=0
while kill -0 "$router_pid" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 150 ] && { echo "remote-smoke: FAIL: router did not exit within 15s"; fail=1; break; }
    sleep 0.1
done
wait "$router_pid" 2>/dev/null || status=$?
[ "$status" -eq 0 ] || { echo "remote-smoke: FAIL: router exit status $status, want 0"; fail=1; }
grep -q "drained, exiting" "$workdir/router.err" || {
    echo "remote-smoke: FAIL: no drain confirmation"; cat "$workdir/router.err"; fail=1; }

if [ "$fail" -ne 0 ]; then
    echo "remote-smoke: FAILED"
    exit 1
fi
echo "remote-smoke: OK"
