#!/bin/sh
# Crash-recovery smoke test (the `make crash-smoke` target).
#
# Drills the ingest store's crash-consistency contract with real SIGKILLs:
# a base store is built, then each delta batch is appended by a makedb
# process that is SIGKILLed mid-append. After every kill the store must
# recover (makedb -recover), pass full offline verification
# (makedb -verify-store), and sit at exactly the pre- or post-append
# manifest — never between. A batch that did not survive the kill is
# re-appended; one that rolled forward from its WAL record must not be.
# The final store's totals must match a from-scratch build of the same
# sequences, proving no batch was lost or double-applied across the kills.
set -eu

workdir=$(mktemp -d "${TMPDIR:-/tmp}/crash-smoke.XXXXXX")
pid=""
cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "crash-smoke: building binaries..."
go build -o "$workdir/makedb" ./cmd/makedb
go build -o "$workdir/genseq" ./cmd/genseq

echo "crash-smoke: generating workload..."
"$workdir/genseq" -n 600 -seed 41 -out "$workdir/base.fasta"
"$workdir/genseq" -n 120 -seed 42 -out "$workdir/batch1.fasta"
"$workdir/genseq" -n 120 -seed 43 -out "$workdir/batch2.fasta"
"$workdir/genseq" -n 120 -seed 44 -out "$workdir/batch3.fasta"

store="$workdir/store"
"$workdir/makedb" -in "$workdir/base.fasta" -store "$store" 2>"$workdir/init.log" ||
    { echo "crash-smoke: FAIL: store init"; cat "$workdir/init.log"; exit 1; }

# manifest_seq prints the store's current manifest sequence number.
manifest_seq() {
    "$workdir/makedb" -verify-store "$store" | sed -n 's/.*manifest seq \([0-9]*\).*/\1/p' | head -n 1
}

fail=0
seq_now=$(manifest_seq)
[ "$seq_now" = "1" ] || { echo "crash-smoke: FAIL: fresh store at manifest seq $seq_now, want 1"; fail=1; }

round=0
for spec in "batch1.fasta 0" "batch2.fasta 0.03" "batch3.fasta 0.06"; do
    round=$((round + 1))
    batch=${spec% *}
    delay=${spec#* }
    before=$seq_now

    echo "crash-smoke: round $round: SIGKILL append of $batch after ${delay}s..."
    "$workdir/makedb" -in "$workdir/$batch" -append "$store" 2>"$workdir/append_$round.log" &
    pid=$!
    [ "$delay" != "0" ] && sleep "$delay"
    kill -9 "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
    pid=""

    # Recovery must succeed and leave a fully verifiable store.
    "$workdir/makedb" -recover "$store" 2>"$workdir/recover_$round.log" ||
        { echo "crash-smoke: FAIL: recovery after kill $round"; cat "$workdir/recover_$round.log"; fail=1; break; }
    "$workdir/makedb" -verify-store "$store" >"$workdir/verify_$round.txt" ||
        { echo "crash-smoke: FAIL: verification after recovery $round"; cat "$workdir/verify_$round.txt"; fail=1; break; }

    # The recovered manifest is exactly pre- or post-append, never between.
    seq_now=$(manifest_seq)
    case "$seq_now" in
    "$before")
        echo "crash-smoke: round $round rolled back (manifest seq $seq_now); re-appending"
        "$workdir/makedb" -in "$workdir/$batch" -append "$store" 2>"$workdir/reappend_$round.log" ||
            { echo "crash-smoke: FAIL: re-append $round"; cat "$workdir/reappend_$round.log"; fail=1; break; }
        seq_now=$(manifest_seq)
        ;;
    $((before + 1)))
        echo "crash-smoke: round $round survived the kill (manifest seq $seq_now); batch already durable"
        ;;
    *)
        echo "crash-smoke: FAIL: round $round recovered to manifest seq $seq_now, want $before or $((before + 1))"
        fail=1
        break
        ;;
    esac
done

if [ "$fail" -eq 0 ]; then
    # Every batch applied exactly once: totals match a from-scratch build of
    # the same sequences (same params, so the same post-split chunk count).
    cat "$workdir/base.fasta" "$workdir/batch1.fasta" "$workdir/batch2.fasta" "$workdir/batch3.fasta" \
        >"$workdir/all.fasta"
    "$workdir/makedb" -in "$workdir/all.fasta" -store "$workdir/rebuild" 2>"$workdir/rebuild.log" ||
        { echo "crash-smoke: FAIL: reference rebuild"; cat "$workdir/rebuild.log"; fail=1; }
    got=$("$workdir/makedb" -verify-store "$store" | sed -n 's/.*  \([0-9]*\) sequences.*/\1/p' | head -n 1)
    want=$("$workdir/makedb" -verify-store "$workdir/rebuild" | sed -n 's/.*  \([0-9]*\) sequences.*/\1/p' | head -n 1)
    if [ -z "$got" ] || [ "$got" != "$want" ]; then
        echo "crash-smoke: FAIL: store holds $got sequences after the drill, rebuild holds $want"
        fail=1
    else
        echo "crash-smoke: store matches rebuild: $got sequences across base+deltas"
    fi

    # Compaction after the drill folds the deltas and still verifies.
    "$workdir/makedb" -compact "$store" 2>"$workdir/compact.log" ||
        { echo "crash-smoke: FAIL: compaction"; cat "$workdir/compact.log"; fail=1; }
    "$workdir/makedb" -verify-store "$store" >/dev/null ||
        { echo "crash-smoke: FAIL: verification after compaction"; fail=1; }
fi

if [ "$fail" -ne 0 ]; then
    echo "crash-smoke: FAILED"
    exit 1
fi
echo "crash-smoke: OK"
