#!/bin/sh
# Cross-tier tracing smoke test (the `make trace-smoke` target).
#
# Starts mublastpd (monolithic, traced, recording, debug server on) and
# mublastpr (sharded, traced) on generated containers, runs a query batch
# through both tiers, and asserts the tracing contract end to end: exactly
# one stitched trace tree per request (span IDs linked, the expected
# edge/admission/search and edge/scatter/shard/merge spans present, the six
# pipeline stage spans nested inside — all checked by cmd/tracecheck), the
# X-Request-ID response header on every reply, upstream trace context
# honored across the HTTP hop, a non-empty /metrics on the debug address,
# and a workload record per request ready for replay/capsim.
set -eu

workdir=$(mktemp -d "${TMPDIR:-/tmp}/trace-smoke.XXXXXX")
mono_pid=""
router_pid=""
cleanup() {
    [ -n "$mono_pid" ] && kill -9 "$mono_pid" 2>/dev/null || true
    [ -n "$router_pid" ] && kill -9 "$router_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "trace-smoke: building binaries..."
go build -o "$workdir/mublastpd" ./cmd/mublastpd
go build -o "$workdir/mublastpr" ./cmd/mublastpr
go build -o "$workdir/makedb" ./cmd/makedb
go build -o "$workdir/genseq" ./cmd/genseq
go build -o "$workdir/tracecheck" ./cmd/tracecheck

echo "trace-smoke: generating workload and containers..."
"$workdir/genseq" -n 400 -seed 31 -out "$workdir/db.fasta" \
    -queries 2 -qlen 160 -qout "$workdir/queries.fasta"
"$workdir/makedb" -in "$workdir/db.fasta" -out "$workdir/db.mublastp" 2>/dev/null
"$workdir/makedb" -in "$workdir/db.fasta" -out "$workdir/db.mublastp" -shards 2 2>/dev/null

queries_json=$(awk '
    function flush() { if (seq != "") { printf "%s{\"name\":\"q%d\",\"residues\":\"%s\"}", sep, n, seq; sep = ","; n++ } seq = "" }
    /^>/ { flush(); next }
    { seq = seq $0 }
    END { flush() }
' "$workdir/queries.fasta")
[ -n "$queries_json" ] || { echo "trace-smoke: FAIL: no queries extracted"; exit 1; }
search_body="{\"queries\":[$queries_json]}"

echo "trace-smoke: starting traced mublastpd + mublastpr..."
"$workdir/mublastpd" -db "$workdir/db.mublastp" -addr 127.0.0.1:0 \
    -debug-addr 127.0.0.1:0 -trace "$workdir/mono.trace.jsonl" \
    -record "$workdir/mono.record.jsonl" -drain-grace 5s \
    >/dev/null 2>"$workdir/mono.err" &
mono_pid=$!
"$workdir/mublastpr" \
    -shards "$workdir/db.mublastp.shard0-of-2,$workdir/db.mublastp.shard1-of-2" \
    -addr 127.0.0.1:0 -debug-addr 127.0.0.1:0 \
    -trace "$workdir/router.trace.jsonl" -record "$workdir/router.record.jsonl" \
    -drain-grace 5s >/dev/null 2>"$workdir/router.err" &
router_pid=$!

wait_line() { # name pid errfile sedexpr -> prints first match
    _out=""
    for _ in $(seq 1 100); do
        _out=$(sed -n "$4" "$3" | head -n 1)
        [ -n "$_out" ] && break
        kill -0 "$2" 2>/dev/null || { echo "trace-smoke: FAIL: $1 exited early" >&2; cat "$3" >&2; exit 1; }
        sleep 0.1
    done
    [ -n "$_out" ] || { echo "trace-smoke: FAIL: $1 never announced" >&2; cat "$3" >&2; exit 1; }
    printf '%s' "$_out"
}
mono_addr=$(wait_line mublastpd "$mono_pid" "$workdir/mono.err" 's/^mublastpd: serving on \([^ ]*\) .*/\1/p')
mono_dbg=$(wait_line mublastpd "$mono_pid" "$workdir/mono.err" 's/^mublastpd: debug server on \([^ ]*\).*/\1/p')
router_addr=$(wait_line mublastpr "$router_pid" "$workdir/router.err" 's/^mublastpr: serving on \([^ ]*\) .*/\1/p')
router_dbg=$(wait_line mublastpr "$router_pid" "$workdir/router.err" 's/^mublastpr: debug server on \([^ ]*\).*/\1/p')
echo "trace-smoke: mublastpd at $mono_addr (debug $mono_dbg), mublastpr at $router_addr (debug $router_dbg)"
grep -q "tracing requests to" "$workdir/router.err" || {
    echo "trace-smoke: FAIL: router did not announce its trace sink"; exit 1; }

fail=0

post() { # addr body out hdrout [extra curl args] -> status code
    _addr=$1; _body=$2; _out=$3; _hdr=$4; shift 4
    curl -s -o "$_out" -D "$_hdr" -w '%{http_code}' -X POST \
        -H 'Content-Type: application/json' "$@" -d "$_body" "http://$_addr/search"
}

echo "trace-smoke: batch through both tiers..."
for i in 1 2 3; do
    code=$(post "$router_addr" "$search_body" "$workdir/r$i.json" "$workdir/r$i.hdr")
    [ "$code" = "200" ] || { echo "trace-smoke: FAIL: router search $i = $code"; fail=1; }
    grep -qi '^X-Request-ID: ' "$workdir/r$i.hdr" || {
        echo "trace-smoke: FAIL: router response $i has no X-Request-ID header"; fail=1; }
done
code=$(post "$mono_addr" "$search_body" "$workdir/m1.json" "$workdir/m1.hdr")
[ "$code" = "200" ] || { echo "trace-smoke: FAIL: mublastpd search = $code"; fail=1; }
grep -qi '^X-Request-ID: ' "$workdir/m1.hdr" || {
    echo "trace-smoke: FAIL: mublastpd response has no X-Request-ID header"; fail=1; }

echo "trace-smoke: upstream trace context across the HTTP hop..."
code=$(post "$router_addr" "$search_body" "$workdir/up.json" "$workdir/up.hdr" \
    -H 'X-Request-ID: req-smoke000001' -H 'X-Trace-ID: 00000000cafef00d')
[ "$code" = "200" ] || { echo "trace-smoke: FAIL: upstream-context search = $code"; fail=1; }
grep -qi '^X-Request-ID: req-smoke000001' "$workdir/up.hdr" || {
    echo "trace-smoke: FAIL: upstream request ID not echoed back"; fail=1; }
grep -q '"trace_id":"00000000cafef00d"' "$workdir/router.trace.jsonl" || {
    echo "trace-smoke: FAIL: upstream trace ID not honored in the trace tree"; fail=1; }

echo "trace-smoke: one stitched trace tree per request..."
if ! "$workdir/tracecheck" -in "$workdir/router.trace.jsonl" -want 4 -daemon mublastpr \
    -require "edge,scatter,shard0,shard1,merge,query:0,stage:hit_detect,stage:prefilter,stage:sort,stage:ungapped,stage:gapped,stage:traceback"; then
    echo "trace-smoke: FAIL: router trace trees invalid"; fail=1
fi
if ! "$workdir/tracecheck" -in "$workdir/mono.trace.jsonl" -want 1 -daemon mublastpd \
    -require "edge,admission,search,stage:hit_detect,stage:traceback"; then
    echo "trace-smoke: FAIL: mublastpd trace trees invalid"; fail=1
fi

echo "trace-smoke: workload records..."
for f in mono.record.jsonl router.record.jsonl; do
    want=1; [ "$f" = "router.record.jsonl" ] && want=4
    got=$(wc -l <"$workdir/$f" | tr -d ' ')
    [ "$got" = "$want" ] || {
        echo "trace-smoke: FAIL: $f holds $got records, want $want"; fail=1; }
done
grep -q '"outcome":"ok"' "$workdir/router.record.jsonl" || {
    echo "trace-smoke: FAIL: router records carry no ok outcome"; fail=1; }

echo "trace-smoke: debug /metrics..."
curl -fsS "http://$mono_dbg/metrics" >"$workdir/mono.metrics" || {
    echo "trace-smoke: FAIL: mublastpd debug /metrics unreachable"; fail=1; }
[ -s "$workdir/mono.metrics" ] || { echo "trace-smoke: FAIL: mublastpd /metrics empty"; fail=1; }
grep -q '^requests_admitted [1-9]' "$workdir/mono.metrics" || {
    echo "trace-smoke: FAIL: requests_admitted did not move on the debug address"; fail=1; }
curl -fsS "http://$router_dbg/metrics" >"$workdir/router.metrics" || {
    echo "trace-smoke: FAIL: mublastpr debug /metrics unreachable"; fail=1; }
grep -q '^router_requests [1-9]' "$workdir/router.metrics" || {
    echo "trace-smoke: FAIL: router_requests did not move on the debug address"; fail=1; }

kill -TERM "$router_pid" 2>/dev/null || true
wait "$router_pid" 2>/dev/null || true
router_pid=""
kill -TERM "$mono_pid" 2>/dev/null || true
wait "$mono_pid" 2>/dev/null || true
mono_pid=""

if [ "$fail" -ne 0 ]; then
    echo "trace-smoke: FAILED"
    exit 1
fi
echo "trace-smoke: OK"
