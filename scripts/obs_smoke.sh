#!/bin/sh
# End-to-end observability smoke test (the `make obs-smoke` target).
#
# Builds mublastp + genseq, runs a real batch search with -debug-addr and
# -trace, scrapes the live debug endpoint while the server lingers, and
# asserts: /metrics serves non-zero pipeline stage counters, /debug/vars and
# /debug/pprof/ respond, and the trace JSONL contains all six stages.
set -eu

workdir=$(mktemp -d "${TMPDIR:-/tmp}/obs-smoke.XXXXXX")
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "obs-smoke: building binaries..."
go build -o "$workdir/mublastp" ./cmd/mublastp
go build -o "$workdir/genseq" ./cmd/genseq

echo "obs-smoke: generating workload..."
"$workdir/genseq" -n 800 -seed 7 -out "$workdir/db.fasta" \
    -queries 12 -qlen 256 -qout "$workdir/queries.fasta"

echo "obs-smoke: starting mublastp with -debug-addr..."
"$workdir/mublastp" -subjects "$workdir/db.fasta" -query "$workdir/queries.fasta" \
    -debug-addr 127.0.0.1:0 -debug-linger 30s -trace "$workdir/trace.jsonl" \
    >"$workdir/stdout.txt" 2>"$workdir/stderr.txt" &
pid=$!

# The bound address is announced on stderr before the database loads.
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^mublastp: debug server listening on //p' "$workdir/stderr.txt" | head -n 1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "obs-smoke: FAIL: mublastp exited early"; cat "$workdir/stderr.txt"; exit 1; }
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "obs-smoke: FAIL: debug server address never announced"
    cat "$workdir/stderr.txt"
    exit 1
fi
echo "obs-smoke: debug server at $addr"

# Wait until the search has finished (the server is now lingering) so the
# stage counters reflect a completed batch.
for _ in $(seq 1 300); do
    grep -q "queries searched in" "$workdir/stderr.txt" && break
    kill -0 "$pid" 2>/dev/null || { echo "obs-smoke: FAIL: mublastp exited before finishing"; cat "$workdir/stderr.txt"; exit 1; }
    sleep 0.1
done

curl -fsS "http://$addr/metrics" >"$workdir/metrics.txt"
curl -fsS "http://$addr/debug/vars" >"$workdir/vars.json"
curl -fsS "http://$addr/debug/pprof/" >/dev/null

fail=0
for metric in pipeline_stage_hit_detect_nanos_total pipeline_stage_sort_nanos_total \
              pipeline_hits_total sched_tasks_total pipeline_queries_total; do
    value=$(sed -n "s/^$metric //p" "$workdir/metrics.txt")
    if [ -z "$value" ] || [ "$value" -le 0 ]; then
        echo "obs-smoke: FAIL: $metric is '${value:-missing}', want > 0"
        fail=1
    else
        echo "obs-smoke: $metric = $value"
    fi
done

grep -q '"obs"' "$workdir/vars.json" || { echo "obs-smoke: FAIL: /debug/vars has no obs tree"; fail=1; }

for stage in hit_detect prefilter sort ungapped gapped traceback; do
    grep -q "\"stage\":\"$stage\"" "$workdir/trace.jsonl" || {
        echo "obs-smoke: FAIL: trace JSONL missing stage $stage"; fail=1; }
done
lines=$(wc -l <"$workdir/trace.jsonl")
[ "$lines" -eq 12 ] || { echo "obs-smoke: FAIL: trace has $lines records, want 12"; fail=1; }

kill "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
pid=""

if [ "$fail" -ne 0 ]; then
    echo "obs-smoke: FAILED"
    exit 1
fi
echo "obs-smoke: OK"
