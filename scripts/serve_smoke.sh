#!/bin/sh
# End-to-end daemon smoke test (the `make serve-smoke` target).
#
# Builds mublastpd + makedb + genseq, starts the daemon on a prebuilt
# container, and exercises the full serving lifecycle: concurrent /search
# requests, a hot /reload to a second container while searches are in flight,
# a corrupt-container reload that must be rejected with the old database
# still serving, the serving counters on /metrics, and a SIGTERM drain that
# exits cleanly.
set -eu

workdir=$(mktemp -d "${TMPDIR:-/tmp}/serve-smoke.XXXXXX")
pid=""
cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building binaries..."
go build -o "$workdir/mublastpd" ./cmd/mublastpd
go build -o "$workdir/makedb" ./cmd/makedb
go build -o "$workdir/genseq" ./cmd/genseq

echo "serve-smoke: generating workload..."
"$workdir/genseq" -n 600 -seed 11 -out "$workdir/db1.fasta" \
    -queries 4 -qlen 200 -qout "$workdir/queries.fasta"
"$workdir/genseq" -n 800 -seed 12 -out "$workdir/db2.fasta"
"$workdir/makedb" -in "$workdir/db1.fasta" -out "$workdir/db1.mublastp" 2>/dev/null
"$workdir/makedb" -in "$workdir/db2.fasta" -out "$workdir/db2.mublastp" 2>/dev/null

# A structurally broken replacement: flip one byte mid-container.
cp "$workdir/db2.mublastp" "$workdir/corrupt.mublastp"
printf '\377' | dd of="$workdir/corrupt.mublastp" bs=1 seek=200 conv=notrunc 2>/dev/null

# One query sequence, pulled out of the FASTA (first record, joined lines).
query=$(awk '/^>/{n++; next} n==1{printf "%s", $0} n>1{exit}' "$workdir/queries.fasta")
[ -n "$query" ] || { echo "serve-smoke: FAIL: no query extracted"; exit 1; }

echo "serve-smoke: starting mublastpd..."
"$workdir/mublastpd" -db "$workdir/db1.mublastp" -addr 127.0.0.1:0 \
    -drain-grace 5s >"$workdir/stdout.txt" 2>"$workdir/stderr.txt" &
pid=$!

addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^mublastpd: serving on \([^ ]*\) .*/\1/p' "$workdir/stderr.txt" | head -n 1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "serve-smoke: FAIL: mublastpd exited early"; cat "$workdir/stderr.txt"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "serve-smoke: FAIL: serving address never announced"; cat "$workdir/stderr.txt"; exit 1; }
echo "serve-smoke: daemon at $addr"

fail=0

# post PATH BODY OUT -> status code
post() {
    curl -s -o "$3" -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
        -d "$2" "http://$addr$1"
}

for probe in healthz readyz; do
    code=$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/$probe")
    [ "$code" = "200" ] || { echo "serve-smoke: FAIL: /$probe = $code, want 200"; fail=1; }
done

search_body="{\"queries\":[{\"name\":\"q1\",\"residues\":\"$query\"}]}"

echo "serve-smoke: concurrent searches + hot reload..."
search_pids=""
for i in 1 2 3 4; do
    post /search "$search_body" "$workdir/search_$i.json" >"$workdir/search_$i.code" &
    search_pids="$search_pids $!"
done
code=$(post /reload "{\"path\":\"$workdir/db2.mublastp\"}" "$workdir/reload.json")
for p in $search_pids; do wait "$p"; done
[ "$code" = "200" ] || { echo "serve-smoke: FAIL: reload = $code: $(cat "$workdir/reload.json")"; fail=1; }
grep -q '"db_generation":2' "$workdir/reload.json" || {
    echo "serve-smoke: FAIL: reload response has no generation 2"; fail=1; }
for i in 1 2 3 4; do
    code=$(cat "$workdir/search_$i.code")
    [ "$code" = "200" ] || { echo "serve-smoke: FAIL: concurrent search $i = $code"; fail=1; }
    grep -q '"completed":true' "$workdir/search_$i.json" || {
        echo "serve-smoke: FAIL: concurrent search $i has no completed query"; fail=1; }
done

echo "serve-smoke: corrupt reload must be rejected..."
code=$(post /reload "{\"path\":\"$workdir/corrupt.mublastp\"}" "$workdir/reload_bad.json")
[ "$code" = "422" ] || { echo "serve-smoke: FAIL: corrupt reload = $code, want 422"; fail=1; }
code=$(post /search "$search_body" "$workdir/search_after.json")
[ "$code" = "200" ] || { echo "serve-smoke: FAIL: search after rejected reload = $code"; fail=1; }
grep -q '"db_generation":2' "$workdir/search_after.json" || {
    echo "serve-smoke: FAIL: rejected reload changed the serving generation"; fail=1; }

curl -fsS "http://$addr/metrics" >"$workdir/metrics.txt"
for metric in requests_admitted:5 db_reloads:1 db_reloads_rejected:1; do
    name=${metric%:*}; want=${metric#*:}
    value=$(sed -n "s/^$name //p" "$workdir/metrics.txt")
    if [ "$value" != "$want" ]; then
        echo "serve-smoke: FAIL: $name = '${value:-missing}', want $want"
        fail=1
    else
        echo "serve-smoke: $name = $value"
    fi
done

echo "serve-smoke: SIGTERM drain..."
kill -TERM "$pid"
status=0
i=0
while kill -0 "$pid" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 150 ] && { echo "serve-smoke: FAIL: daemon did not exit within 15s of SIGTERM"; fail=1; break; }
    sleep 0.1
done
wait "$pid" 2>/dev/null || status=$?
pid=""
[ "$status" -eq 0 ] || { echo "serve-smoke: FAIL: daemon exit status $status, want 0"; fail=1; }
grep -q "drained, exiting" "$workdir/stderr.txt" || {
    echo "serve-smoke: FAIL: no drain confirmation on stderr"; cat "$workdir/stderr.txt"; fail=1; }

if [ "$fail" -ne 0 ]; then
    echo "serve-smoke: FAILED"
    exit 1
fi
echo "serve-smoke: OK"
