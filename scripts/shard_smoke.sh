#!/bin/sh
# Sharded serving smoke test (the `make shard-smoke` target).
#
# Builds the toolchain, splits one generated database into 3 shard
# containers with `makedb -shards`, serves them behind the scatter-gather
# router (mublastpr) next to a monolithic mublastpd on the unsharded
# container, scatters the same query batch through both, and diffs the
# response payloads byte for byte — the end-to-end check that sharding
# changes capacity, never results. Also probes the router's policy
# selection, its router_* metrics, and a clean SIGTERM drain.
set -eu

workdir=$(mktemp -d "${TMPDIR:-/tmp}/shard-smoke.XXXXXX")
mono_pid=""
router_pid=""
cleanup() {
    [ -n "$mono_pid" ] && kill -9 "$mono_pid" 2>/dev/null || true
    [ -n "$router_pid" ] && kill -9 "$router_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "shard-smoke: building binaries..."
go build -o "$workdir/mublastpd" ./cmd/mublastpd
go build -o "$workdir/mublastpr" ./cmd/mublastpr
go build -o "$workdir/makedb" ./cmd/makedb
go build -o "$workdir/genseq" ./cmd/genseq

echo "shard-smoke: generating workload and containers..."
"$workdir/genseq" -n 500 -seed 21 -out "$workdir/db.fasta" \
    -queries 3 -qlen 180 -qout "$workdir/queries.fasta"
"$workdir/makedb" -in "$workdir/db.fasta" -out "$workdir/db.mublastp" 2>/dev/null
"$workdir/makedb" -in "$workdir/db.fasta" -out "$workdir/db.mublastp" -shards 3 2>/dev/null
for s in 0 1 2; do
    [ -f "$workdir/db.mublastp.shard$s-of-3" ] || {
        echo "shard-smoke: FAIL: shard container $s missing"; exit 1; }
done

# Pull the three query sequences out of the FASTA (joined lines each).
queries_json=$(awk '
    function flush() { if (seq != "") { printf "%s{\"name\":\"q%d\",\"residues\":\"%s\"}", sep, n, seq; sep = ","; n++ } seq = "" }
    /^>/ { flush(); next }
    { seq = seq $0 }
    END { flush() }
' "$workdir/queries.fasta")
[ -n "$queries_json" ] || { echo "shard-smoke: FAIL: no queries extracted"; exit 1; }
search_body="{\"queries\":[$queries_json]}"

echo "shard-smoke: starting monolithic mublastpd..."
"$workdir/mublastpd" -db "$workdir/db.mublastp" -addr 127.0.0.1:0 \
    -drain-grace 5s >/dev/null 2>"$workdir/mono.err" &
mono_pid=$!

echo "shard-smoke: starting sharded mublastpr..."
"$workdir/mublastpr" \
    -shards "$workdir/db.mublastp.shard0-of-3,$workdir/db.mublastp.shard1-of-3,$workdir/db.mublastp.shard2-of-3" \
    -addr 127.0.0.1:0 -drain-grace 5s >/dev/null 2>"$workdir/router.err" &
router_pid=$!

wait_addr() { # name pid errfile -> prints addr
    _addr=""
    for _ in $(seq 1 100); do
        _addr=$(sed -n "s/^$1: serving on \([^ ]*\) .*/\1/p" "$3" | head -n 1)
        [ -n "$_addr" ] && break
        kill -0 "$2" 2>/dev/null || { echo "shard-smoke: FAIL: $1 exited early" >&2; cat "$3" >&2; exit 1; }
        sleep 0.1
    done
    [ -n "$_addr" ] || { echo "shard-smoke: FAIL: $1 never announced its address" >&2; cat "$3" >&2; exit 1; }
    printf '%s' "$_addr"
}
mono_addr=$(wait_addr mublastpd "$mono_pid" "$workdir/mono.err")
router_addr=$(wait_addr mublastpr "$router_pid" "$workdir/router.err")
echo "shard-smoke: monolithic at $mono_addr, router at $router_addr"

grep -q "global search space" "$workdir/router.err" || {
    echo "shard-smoke: FAIL: router did not announce the global search space"; exit 1; }

fail=0

post() { # addr body out -> status code
    curl -s -o "$3" -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
        -d "$2" "http://$1/search"
}

echo "shard-smoke: scatter vs monolithic diff..."
code=$(post "$mono_addr" "$search_body" "$workdir/mono.json")
[ "$code" = "200" ] || { echo "shard-smoke: FAIL: monolithic search = $code"; fail=1; }
code=$(post "$router_addr" "$search_body" "$workdir/router.json")
[ "$code" = "200" ] || { echo "shard-smoke: FAIL: sharded search = $code: $(cat "$workdir/router.json")"; fail=1; }

# Everything before the per-request stats — degraded flag, generation, and
# the full results array (names, completion, every hit with its score,
# E-value, coordinates) — must be byte-identical across the two daemons.
sed 's/,"stats".*//' "$workdir/mono.json" >"$workdir/mono.results"
sed 's/,"stats".*//' "$workdir/router.json" >"$workdir/router.results"
if ! cmp -s "$workdir/mono.results" "$workdir/router.results"; then
    echo "shard-smoke: FAIL: sharded results differ from monolithic"
    diff "$workdir/mono.results" "$workdir/router.results" | head -5
    fail=1
else
    echo "shard-smoke: results byte-identical ($(grep -o '"subject"' "$workdir/mono.results" | wc -l | tr -d ' ') hits)"
fi
grep -q '"completed":true' "$workdir/router.results" || {
    echo "shard-smoke: FAIL: no completed query in the sharded response"; fail=1; }
grep -q '"e_value"' "$workdir/router.results" || {
    echo "shard-smoke: FAIL: sharded response carries no scored hits; diff is vacuous"; fail=1; }

echo "shard-smoke: per-request policy selection..."
code=$(post "$router_addr" "{\"queries\":[$queries_json],\"policy\":\"least-loaded\"}" "$workdir/policy.json")
[ "$code" = "200" ] || { echo "shard-smoke: FAIL: least-loaded search = $code"; fail=1; }
grep -q '"policy":"least-loaded"' "$workdir/policy.json" || {
    echo "shard-smoke: FAIL: policy not echoed in the response"; fail=1; }
code=$(post "$router_addr" "{\"queries\":[$queries_json],\"policy\":\"bogus\"}" "$workdir/badpolicy.json")
[ "$code" = "400" ] || { echo "shard-smoke: FAIL: unknown policy = $code, want 400"; fail=1; }

curl -fsS "http://$router_addr/metrics" >"$workdir/metrics.txt"
for metric in router_requests:2 router_fanout_shards:3 router_shard_searches:6 router_requests_all_shed:0; do
    name=${metric%:*}; want=${metric#*:}
    value=$(sed -n "s/^$name //p" "$workdir/metrics.txt")
    if [ "$value" != "$want" ]; then
        echo "shard-smoke: FAIL: $name = '${value:-missing}', want $want"
        fail=1
    else
        echo "shard-smoke: $name = $value"
    fi
done

echo "shard-smoke: SIGTERM drain..."
kill -TERM "$router_pid"
status=0
i=0
while kill -0 "$router_pid" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 150 ] && { echo "shard-smoke: FAIL: router did not exit within 15s"; fail=1; break; }
    sleep 0.1
done
wait "$router_pid" 2>/dev/null || status=$?
router_pid=""
[ "$status" -eq 0 ] || { echo "shard-smoke: FAIL: router exit status $status, want 0"; fail=1; }
grep -q "drained, exiting" "$workdir/router.err" || {
    echo "shard-smoke: FAIL: no drain confirmation"; cat "$workdir/router.err"; fail=1; }

kill -TERM "$mono_pid" 2>/dev/null || true
wait "$mono_pid" 2>/dev/null || true
mono_pid=""

if [ "$fail" -ne 0 ]; then
    echo "shard-smoke: FAILED"
    exit 1
fi
echo "shard-smoke: OK"
