// Command mublastpr is the scatter-gather routing daemon: it serves one
// logical database that was split into shard containers (makedb -shards N),
// keeping a resident search session per shard replica, scattering every
// /search to all shards, and merging the shard results byte-identically to
// a monolithic mublastpd serving the unsharded container — same hits, same
// E-values, same order.
//
// Usage:
//
//	mublastpr -shards db.shard0-of-2,db.shard1-of-2 -addr :8045
//	mublastpr -shards 'a0|a0b,a1' -policy least-loaded   # '|' separates replicas of one shard
//	mublastpr -workers 'http://h1:8044|http://h2:8044,http://h3:8044'   # remote mublastpd fleet
//
// With -shards every replica is an in-process engine over a local container;
// with -workers every replica is a remote mublastpd driven over HTTP
// (/shard/search). Before serving, the topology is cross-checked: all
// replicas of a shard must hold the same slice, all shards the same build
// fingerprint, and the shard sizes must fit one round-robin split of one
// database — local engines are then opened with the *global*
// residue/sequence totals (remote workers must be started with
// -global-sequences/-global-residues) so E-values are computed against the
// whole logical database, the invariant the byte-identical merge rests on.
//
// Every replica, local or remote, is wrapped in a resilience layer: /readyz
// health probing with ejection and jittered-backoff readmission (remote), a
// circuit breaker fed by request-path failures, a per-request retry budget,
// and optional hedged scatter (-hedge). /readyz on this daemon fails while
// any shard has zero healthy replicas.
//
// Endpoints (all on -addr):
//
//	POST /search    {"queries":[...], "timeout_ms":5000, "policy":"round-robin"}
//	POST /reload    {"paths":["shard0.mbc","shard1.mbc"]} rolling per-shard reload,
//	                verify-before-swap per replica, never the last healthy one.
//	                Paths may be ingest-store directories: this is how delta
//	                propagation rolls across a fleet — each replica picks up the
//	                store's current base+delta manifest in turn, and the remote
//	                coherence handshake refuses to serve a shard whose replicas
//	                sit at different manifest commits until the roll completes
//	GET  /replicas  per-replica lifecycle state (ejection, breaker)
//	GET  /healthz   liveness; /readyz readiness (503 while draining or a shard
//	                has no healthy replica)
//	GET  /metrics, /debug/vars, /debug/pprof/  (the obs debug surface)
//
// A shard replica that is saturated sheds its part of a request; the
// response then reports those queries incomplete (never fake zero-hit
// results) with Retry-After forwarded. Only when every shard sheds does the
// daemon answer 429. SIGINT/SIGTERM drain gracefully as in mublastpd.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/blast"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/reqtrace"
	"repro/internal/router"
	"repro/internal/sigctx"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "mublastpr: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		shardSpec  = flag.String("shards", "", "comma-separated shard containers in shard order; '|' separates replicas of one shard (exactly one of -shards/-workers)")
		workerSpec = flag.String("workers", "", "comma-separated shard worker URLs in shard order; '|' separates replicas of one shard, e.g. 'http://h1:8044|http://h2:8044,http://h3:8044'")
		policy     = flag.String("policy", router.PolicyRoundRobin, "default replica-choice policy: "+strings.Join(router.PolicyNames(), ", "))
		addr       = flag.String("addr", ":8045", "listen address (use :0 for an ephemeral port)")
		threads    = flag.Int("threads", 0, "threads per shard batch search (0 = all cores)")
		evalue     = flag.Float64("evalue", 10, "E-value cutoff")
		maxHits    = flag.Int("max-hits", 250, "maximum hits per query")
		shardConc  = flag.Int("shard-concurrency", 2, "concurrent searches per shard replica; excess sheds")
		retryAfter = flag.Duration("retry-after", time.Second, "Retry-After hint attached to sheds")
		timeout    = flag.Duration("timeout", 30*time.Second, "default per-request deadline")
		maxTimeout = flag.Duration("max-timeout", 2*time.Minute, "cap on client-requested deadlines")
		maxQueries = flag.Int("max-queries", 64, "per-request batch size cap")
		drainGrace = flag.Duration("drain-grace", 10*time.Second, "time in-flight searches get to finish on shutdown before partial-result flush")
		debugAddr  = flag.String("debug-addr", "", "also serve /metrics, /debug/vars and /debug/pprof/ on this address (e.g. :6060), separate from -addr")
		tracePath  = flag.String("trace", "", "append one JSONL trace tree per request (edge, scatter, per-shard stage spans, merge) to this file")
		recordPath = flag.String("record", "", "append one workload record per request (arrival, query lengths, deadline, outcome, span durations) to this file — replay/capsim input")
		faultSpec  = flag.String("faultspec", "", "arm fault-injection sites, e.g. 'router.rpc=error@0.1' (testing aid)")
		faultSeed  = flag.Uint64("faultseed", 1, "seed for probabilistic -faultspec clauses")

		probeEvery    = flag.Duration("probe-interval", time.Second, "health-probe interval for remote replicas (/readyz-driven ejection)")
		readmitBase   = flag.Duration("readmit-backoff", 500*time.Millisecond, "first readmission probe delay after an ejection (doubles, jittered, up to -readmit-backoff-max)")
		readmitMax    = flag.Duration("readmit-backoff-max", 15*time.Second, "readmission backoff ceiling")
		breakerFails  = flag.Int("breaker-failures", 3, "consecutive replica failures that open its circuit breaker (-1 disables)")
		breakerCool   = flag.Duration("breaker-cooldown", 2*time.Second, "how long an open breaker refuses traffic before one half-open trial")
		retryBudget   = flag.Int("retry-budget", 2, "extra upstream attempts (retries+hedges) one request may spend across all shards (-1 disables)")
		retryBackoff  = flag.Duration("retry-backoff", 25*time.Millisecond, "pause before retry k, scaled by k")
		hedge         = flag.Bool("hedge", false, "hedged scatter: fire a second replica once a shard outlives its recent p95, first result wins")
		networkMargin = flag.Duration("net-margin", 150*time.Millisecond, "network margin subtracted from the deadline budget propagated to remote workers")
	)
	flag.Parse()
	if (*shardSpec == "") == (*workerSpec == "") {
		fmt.Fprintln(os.Stderr, "mublastpr: need exactly one of -shards / -workers")
		flag.Usage()
		os.Exit(2)
	}

	if *faultSpec != "" {
		if err := faultinject.Enable(*faultSpec, *faultSeed); err != nil {
			return err
		}
		defer faultinject.Disable()
		fmt.Fprintf(os.Stderr, "mublastpr: fault injection armed: %s (seed %d)\n", *faultSpec, *faultSeed)
	}

	spec := *shardSpec
	if spec == "" {
		spec = *workerSpec
	}
	paths := make([][]string, 0)
	for _, shard := range strings.Split(spec, ",") {
		var reps []string
		for _, rep := range strings.Split(shard, "|") {
			if rep = strings.TrimSpace(rep); rep != "" {
				reps = append(reps, rep)
			}
		}
		if len(reps) == 0 {
			return fmt.Errorf("empty shard entry in %q", spec)
		}
		paths = append(paths, reps)
	}
	n := len(paths)

	resilience := router.ResilienceConfig{
		ProbeInterval:     *probeEvery,
		ReadmitBackoff:    *readmitBase,
		ReadmitBackoffMax: *readmitMax,
		BreakerFailures:   *breakerFails,
		BreakerCooldown:   *breakerCool,
		RetryBudget:       *retryBudget,
		RetryBackoff:      *retryBackoff,
		Hedge:             *hedge,
	}

	if *workerSpec != "" {
		return runRemote(paths, resilience, *networkMargin, remoteOpts{
			policy: *policy, addr: *addr, timeout: *timeout, maxTimeout: *maxTimeout,
			maxQueries: *maxQueries, drainGrace: *drainGrace, debugAddr: *debugAddr,
			tracePath: *tracePath, recordPath: *recordPath,
		})
	}

	// Verify pass: every container is validated end to end (CRCs, structure)
	// before anything serves, and the shard set is cross-checked as one
	// coherent round-robin split. The sum of the verified per-shard totals is
	// the global search space every shard engine will be opened with.
	start := time.Now()
	var fp *blast.Fingerprint
	var globalResidues int64
	var globalSeqs int64
	counts := make([]int, n)
	for s, reps := range paths {
		var first *blast.ContainerInfo
		for r, path := range reps {
			info, err := blast.VerifyFile(path)
			if err != nil {
				return fmt.Errorf("verifying shard %d replica %d (%s): %w", s, r, path, err)
			}
			if fp == nil {
				fp = &info.Fingerprint
			} else if info.Fingerprint != *fp {
				return fmt.Errorf("shard %d replica %d (%s): build fingerprint %+v differs from shard 0's %+v; all shards must come from one makedb run",
					s, r, path, info.Fingerprint, *fp)
			}
			if first == nil {
				first = info
			} else if info.NumSequences != first.NumSequences || info.TotalResidues != first.TotalResidues {
				return fmt.Errorf("shard %d replica %d (%s): %d sequences/%d residues, but replica 0 has %d/%d; replicas must hold the same slice",
					s, r, path, info.NumSequences, info.TotalResidues, first.NumSequences, first.TotalResidues)
			}
		}
		counts[s] = first.NumSequences
		globalResidues += first.TotalResidues
		globalSeqs += int64(first.NumSequences)
	}
	// A round-robin deal of G sequences over n shards puts ceil((G-s)/n) in
	// shard s. Containers that do not fit that pattern are not shards of one
	// database (or are given out of order) and would merge to garbage.
	for s := range counts {
		want := int((globalSeqs - int64(s) + int64(n) - 1) / int64(n))
		if counts[s] != want {
			return fmt.Errorf("shard %d holds %d sequences but a round-robin split of %d over %d shards puts %d there; check -shards order and completeness",
				s, counts[s], globalSeqs, n, want)
		}
	}

	p := blast.DefaultParams()
	p.Matrix = fp.Matrix
	p.EValueCutoff = *evalue
	p.MaxResults = *maxHits
	p.Threads = *threads
	p.GlobalDBResidues = globalResidues
	p.GlobalDBSequences = globalSeqs

	workers := make([][]router.Worker, n)
	var sessions []*blast.Session
	for s, reps := range paths {
		for r, path := range reps {
			ses, err := blast.OpenSession(path, p)
			if err != nil {
				return fmt.Errorf("loading shard %d replica %d (%s): %w", s, r, path, err)
			}
			sessions = append(sessions, ses)
			name := fmt.Sprintf("s%d/r%d(%s)", s, r, filepath.Base(path))
			workers[s] = append(workers[s], router.NewLocalWorker(name, ses, *shardConc, 1, *retryAfter))
		}
	}
	fmt.Fprintf(os.Stderr, "mublastpr: %d shards (%d replicas) ready in %v; global search space %d sequences, %d residues\n",
		n, len(sessions), time.Since(start).Round(time.Millisecond), globalSeqs, globalResidues)

	rt, err := router.New(workers, router.Options{DefaultPolicy: *policy, Registry: obs.Default, Resilience: resilience})
	if err != nil {
		return err
	}
	return serve(rt, func() int64 {
		g := sessions[0].Generation()
		for _, ses := range sessions[1:] {
			if sg := ses.Generation(); sg < g {
				g = sg
			}
		}
		return g
	}, remoteOpts{
		policy: *policy, addr: *addr, timeout: *timeout, maxTimeout: *maxTimeout,
		maxQueries: *maxQueries, drainGrace: *drainGrace, debugAddr: *debugAddr,
		tracePath: *tracePath, recordPath: *recordPath,
	})
}

// remoteOpts bundles the serving flags shared by the local and remote paths.
type remoteOpts struct {
	policy     string
	addr       string
	timeout    time.Duration
	maxTimeout time.Duration
	maxQueries int
	drainGrace time.Duration
	debugAddr  string
	tracePath  string
	recordPath string
}

// runRemote builds the router over a remote mublastpd fleet: coherence
// handshake against every replica's /shard/info, then RemoteWorkers wrapped
// in the resilience layer with /readyz probing live.
func runRemote(urls [][]string, resilience router.ResilienceConfig, margin time.Duration, o remoteOpts) error {
	start := time.Now()
	shards := make([][]*router.RemoteWorker, len(urls))
	workers := make([][]router.Worker, len(urls))
	total := 0
	for s, reps := range urls {
		for r, u := range reps {
			w := router.NewRemoteWorker(fmt.Sprintf("s%d/r%d(%s)", s, r, u), u, router.RemoteOptions{
				NetworkMargin: margin,
			})
			shards[s] = append(shards[s], w)
			workers[s] = append(workers[s], w)
			total++
		}
	}
	hctx, hcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer hcancel()
	fp, globalSeqs, err := router.VerifyRemoteTopology(hctx, shards)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "mublastpr: %d shards (%d remote replicas) coherent in %v; fingerprint %+v, global %d sequences\n",
		len(urls), total, time.Since(start).Round(time.Millisecond), *fp, globalSeqs)

	rt, err := router.New(workers, router.Options{DefaultPolicy: o.policy, Registry: obs.Default, Resilience: resilience})
	if err != nil {
		return err
	}
	gen := func() int64 {
		var g int64
		first := true
		for _, reps := range shards {
			for _, w := range reps {
				if wg := w.Generation(); first || wg < g {
					g, first = wg, false
				}
			}
		}
		return g
	}
	return serve(rt, gen, o)
}

// serve wraps a built router in the HTTP frontend and runs it until a drain
// signal; shared tail of the local and remote paths.
func serve(rt *router.Router, generation func() int64, o remoteOpts) error {
	var err error
	var tracer *reqtrace.Tracer
	if o.tracePath != "" {
		if tracer, err = reqtrace.NewTracerFile("mublastpr", o.tracePath); err != nil {
			return fmt.Errorf("opening trace sink: %w", err)
		}
		defer tracer.Close()
		fmt.Fprintf(os.Stderr, "mublastpr: tracing requests to %s\n", o.tracePath)
	}
	var recorder *reqtrace.Recorder
	if o.recordPath != "" {
		if recorder, err = reqtrace.NewRecorderFile(o.recordPath); err != nil {
			return fmt.Errorf("opening record sink: %w", err)
		}
		defer recorder.Close()
		fmt.Fprintf(os.Stderr, "mublastpr: recording workload to %s\n", o.recordPath)
	}

	fe := router.NewFrontend(rt, router.FrontendConfig{
		DefaultTimeout: o.timeout,
		MaxTimeout:     o.maxTimeout,
		MaxQueries:     o.maxQueries,
		Registry:       obs.Default,
		Generation:     generation,
		Tracer:         tracer,
		Recorder:       recorder,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "mublastpr: "+format+"\n", args...)
		},
	})
	bound, err := fe.Start(o.addr)
	if err != nil {
		return err
	}
	if o.debugAddr != "" {
		dbg, err := obs.Serve(o.debugAddr, obs.Default)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "mublastpr: debug server on %s\n", dbg.Addr)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			dbg.Shutdown(ctx)
		}()
	}
	fmt.Fprintf(os.Stderr, "mublastpr: serving on %s (policy %s, timeout %v, retry budget %d, hedge %v)\n",
		bound, rt.DefaultPolicy(), o.timeout, rt.Resilience().RetryBudget, rt.Resilience().Hedge)

	ctx, stop := sigctx.WithForcedExit(context.Background(), func(sig os.Signal) {
		fmt.Fprintf(os.Stderr, "mublastpr: %v received, draining (grace %v; signal again to force exit)\n", sig, o.drainGrace)
	})
	defer stop()
	<-ctx.Done()

	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainGrace+5*time.Second)
	defer cancel()
	if err := fe.Drain(drainCtx, o.drainGrace); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(os.Stderr, "mublastpr: drained, exiting")
	return nil
}
