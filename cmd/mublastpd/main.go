// Command mublastpd is the long-running search daemon: it loads (or builds)
// a database once, keeps the index resident, and serves searches over
// HTTP/JSON with production robustness machinery — bounded admission with
// 429 backpressure, token concurrency sized to the scheduler, degraded mode
// under sustained queue pressure, hot database reload, and graceful drain.
//
// Usage:
//
//	mublastpd -db db.mublastp -addr :8044
//	mublastpd -subjects db.fasta -addr 127.0.0.1:0 -queue 128 -concurrency 2
//
// Endpoints (all on -addr):
//
//	POST /search        {"queries":[{"name":"q1","residues":"MKT..."}], "timeout_ms":5000}
//	POST /reload        {"path":"new.mublastp"}   verify-then-swap; rejects corrupt
//	                    containers; {"verify_only":true} validates without swapping;
//	                    delta-aware: an ingest-store path reloads base+deltas
//	POST /ingest        (with -store) append a sequence batch as a WAL-journaled
//	                    delta and swap the serving generation; bounded, single-
//	                    flight, sheds concurrent ingests with 503 + Retry-After
//	POST /shard/search  one shard's part of a routed scatter (driven by
//	                    mublastpr -workers; pair with -global-sequences/-global-residues)
//	GET  /shard/info    shard-coherence handshake for the router
//	GET  /healthz       liveness; /readyz readiness (503 while draining)
//	GET  /metrics, /debug/vars, /debug/pprof/  (the obs debug surface)
//
// SIGINT/SIGTERM start a graceful drain: new requests get 503, in-flight
// searches get -drain-grace to finish, then are cancelled so their handlers
// flush partial results. A second signal force-exits with code 3.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/blast"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/reqtrace"
	"repro/internal/server"
	"repro/internal/sigctx"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "mublastpd: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dbPath       = flag.String("db", "", "prebuilt database container (from makedb); reloadable at runtime")
		storeDir     = flag.String("store", "", "serve from the crash-safe ingest store at this directory (makedb -store); enables POST /ingest")
		subjects     = flag.String("subjects", "", "FASTA database to index on the fly (reload still requires containers)")
		addr         = flag.String("addr", ":8044", "listen address (use :0 for an ephemeral port)")
		threads      = flag.Int("threads", 0, "threads per batch search (0 = all cores)")
		evalue       = flag.Float64("evalue", 10, "E-value cutoff")
		maxHits      = flag.Int("max-hits", 250, "maximum hits per query")
		queue        = flag.Int("queue", 64, "admission queue bound; excess requests are shed with 429")
		concurrency  = flag.Int("concurrency", 0, "concurrent batch searches (0 = size to the scheduler's worker pool)")
		timeout      = flag.Duration("timeout", 30*time.Second, "default per-request deadline")
		maxTimeout   = flag.Duration("max-timeout", 2*time.Minute, "cap on client-requested deadlines")
		maxQueries   = flag.Int("max-queries", 64, "per-request batch size cap")
		degAfter     = flag.Duration("degrade-after", 250*time.Millisecond, "sustained queue pressure before degraded mode trips")
		degTimeout   = flag.Duration("degraded-timeout", 0, "per-request deadline in degraded mode (0 = timeout/4)")
		drainGrace   = flag.Duration("drain-grace", 10*time.Second, "time in-flight searches get to finish on shutdown before partial-result flush")
		debugAddr    = flag.String("debug-addr", "", "also serve /metrics, /debug/vars and /debug/pprof/ on this address (e.g. :6060), separate from -addr")
		tracePath    = flag.String("trace", "", "append one JSONL trace tree per request (edge, admission, search, per-query stage spans) to this file")
		recordPath   = flag.String("record", "", "append one workload record per request (arrival, query lengths, deadline, outcome, span durations) to this file — replay/capsim input")
		faultSpec    = flag.String("faultspec", "", "arm fault-injection sites, e.g. 'server.admit=error@0.1' (testing aid)")
		faultSeed    = flag.Uint64("faultseed", 1, "seed for probabilistic -faultspec clauses")
		globalSeqs   = flag.Int64("global-sequences", 0, "sequence count of the whole logical database when -db is one shard of it; with -global-residues, E-values use the global search space so a remote merge is byte-identical")
		globalRes    = flag.Int64("global-residues", 0, "residue count of the whole logical database when -db is one shard of it")
		maxIngest    = flag.Int("max-ingest", 0, "per-request sequence cap for POST /ingest (0 = default)")
		compactAfter = flag.Int("compact-after", 0, "compact the store once it accumulates this many deltas (0 = only on request)")
	)
	flag.Parse()
	srcs := 0
	for _, src := range []string{*dbPath, *storeDir, *subjects} {
		if src != "" {
			srcs++
		}
	}
	if srcs != 1 {
		fmt.Fprintln(os.Stderr, "mublastpd: need exactly one of -db / -store / -subjects")
		flag.Usage()
		os.Exit(2)
	}

	if *faultSpec != "" {
		if err := faultinject.Enable(*faultSpec, *faultSeed); err != nil {
			return err
		}
		defer faultinject.Disable()
		fmt.Fprintf(os.Stderr, "mublastpd: fault injection armed: %s (seed %d)\n", *faultSpec, *faultSeed)
	}

	if (*globalSeqs > 0) != (*globalRes > 0) {
		return fmt.Errorf("-global-sequences and -global-residues must be set together")
	}

	p := blast.DefaultParams()
	p.EValueCutoff = *evalue
	p.MaxResults = *maxHits
	p.Threads = *threads
	if *globalSeqs > 0 {
		p.GlobalDBSequences = *globalSeqs
		p.GlobalDBResidues = *globalRes
		fmt.Fprintf(os.Stderr, "mublastpd: serving as a shard worker: global search space %d sequences, %d residues\n",
			*globalSeqs, *globalRes)
	}

	start := time.Now()
	var ses *blast.Session
	var store *blast.Store
	if *dbPath != "" {
		var err error
		if ses, err = blast.OpenSession(*dbPath, p); err != nil {
			return fmt.Errorf("loading database: %w", err)
		}
	} else if *storeDir != "" {
		// Opening the store runs crash recovery (WAL replay, orphan GC)
		// before anything serves, so a daemon restarted after a mid-ingest
		// crash comes up on a consistent manifest without operator action.
		var err error
		if store, err = blast.OpenStore(*storeDir, p); err != nil {
			return fmt.Errorf("opening store: %w", err)
		}
		db, err := store.Database()
		if err != nil {
			return fmt.Errorf("loading store tiers: %w", err)
		}
		ses = blast.NewSession(db, p)
		fmt.Fprintf(os.Stderr, "mublastpd: ingest store %s at manifest seq %d (%s), %d deltas\n",
			store.Dir(), store.ManifestSeq(), store.ManifestHash(), store.NumDeltas())
	} else {
		seqs, err := blast.ReadFASTAFile(*subjects)
		if err != nil {
			return fmt.Errorf("reading subjects: %w", err)
		}
		db, err := blast.NewDatabase(seqs, p)
		if err != nil {
			return fmt.Errorf("building database: %w", err)
		}
		ses = blast.NewSession(db, p)
	}
	db := ses.DB()
	fmt.Fprintf(os.Stderr, "mublastpd: database ready in %v (%d sequences, %d blocks)\n",
		time.Since(start).Round(time.Millisecond), db.NumSequences(), db.NumBlocks())

	var tracer *reqtrace.Tracer
	if *tracePath != "" {
		var err error
		if tracer, err = reqtrace.NewTracerFile("mublastpd", *tracePath); err != nil {
			return fmt.Errorf("opening trace sink: %w", err)
		}
		defer tracer.Close()
		fmt.Fprintf(os.Stderr, "mublastpd: tracing requests to %s\n", *tracePath)
	}
	var recorder *reqtrace.Recorder
	if *recordPath != "" {
		var err error
		if recorder, err = reqtrace.NewRecorderFile(*recordPath); err != nil {
			return fmt.Errorf("opening record sink: %w", err)
		}
		defer recorder.Close()
		fmt.Fprintf(os.Stderr, "mublastpd: recording workload to %s\n", *recordPath)
	}

	srv := server.New(ses, p, server.Config{
		Queue:           *queue,
		Concurrency:     *concurrency,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTimeout,
		MaxQueries:      *maxQueries,
		DegradeAfter:    *degAfter,
		DegradedTimeout: *degTimeout,
		Registry:        obs.Default,
		Tracer:          tracer,
		Recorder:        recorder,
		Store:           store,
		MaxIngestSeqs:   *maxIngest,
		CompactAfter:    *compactAfter,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "mublastpd: "+format+"\n", args...)
		},
	})
	bound, err := srv.Start(*addr)
	if err != nil {
		return err
	}
	if *debugAddr != "" {
		dbg, err := obs.Serve(*debugAddr, obs.Default)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "mublastpd: debug server on %s\n", dbg.Addr)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			dbg.Shutdown(ctx)
		}()
	}
	cfg := srv.Config()
	fmt.Fprintf(os.Stderr, "mublastpd: serving on %s (queue %d, concurrency %d, timeout %v)\n",
		bound, cfg.Queue, cfg.Concurrency, cfg.DefaultTimeout)

	// First signal: graceful drain (announced). Second signal: sigctx
	// force-exits with its distinct code — the drain can be escalated past.
	ctx, stop := sigctx.WithForcedExit(context.Background(), func(sig os.Signal) {
		fmt.Fprintf(os.Stderr, "mublastpd: %v received, draining (grace %v; signal again to force exit)\n", sig, *drainGrace)
	})
	defer stop()
	<-ctx.Done()

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainGrace+5*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx, *drainGrace); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(os.Stderr, "mublastpd: drained, exiting")
	return nil
}
