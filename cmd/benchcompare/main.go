// benchcompare diffs two BENCH_stage*.json stage-budget reports (schema
// mublastp/bench-stage/v1): per-stage nanos and shares, total pipeline time,
// and the paper-claim booleans. It exits non-zero when the candidate's total
// pipeline time regresses more than the tolerance over the baseline, so perf
// changes gate mechanically in `make bench-compare`.
//
// Usage:
//
//	benchcompare [-tolerance 5] baseline.json candidate.json
//
// The tolerance is a percentage of the baseline total (default 5). Speedups
// and within-tolerance noise pass; only a genuine slowdown fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func load(path string) (*bench.StageReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r bench.StageReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != bench.StageSchemaVersion {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, bench.StageSchemaVersion)
	}
	return &r, nil
}

func main() {
	tolerance := flag.Float64("tolerance", 5, "max allowed total-pipeline regression, percent of baseline")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcompare [-tolerance pct] baseline.json candidate.json")
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(2)
	}
	cand, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(2)
	}

	if base.Workload != cand.Workload {
		fmt.Printf("note: workloads differ\n  baseline:  %+v\n  candidate: %+v\n", base.Workload, cand.Workload)
	}

	baseStages := map[string]bench.StageShare{}
	for _, s := range base.Stages {
		baseStages[s.Stage] = s
	}
	fmt.Printf("%-12s %12s %12s %8s   %7s -> %-7s\n", "stage", "base (ms)", "cand (ms)", "delta", "share", "share")
	for _, c := range cand.Stages {
		b, ok := baseStages[c.Stage]
		if !ok {
			fmt.Printf("%-12s %12s %12.1f %8s\n", c.Stage, "-", float64(c.Nanos)/1e6, "new")
			continue
		}
		delta := "-"
		if b.Nanos > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(float64(c.Nanos)-float64(b.Nanos))/float64(b.Nanos))
		}
		fmt.Printf("%-12s %12.1f %12.1f %8s   %6.1f%% -> %5.1f%%\n",
			c.Stage, float64(b.Nanos)/1e6, float64(c.Nanos)/1e6, delta, 100*b.Share, 100*c.Share)
	}
	totalDelta := 100 * (float64(cand.TotalPipelineNanos) - float64(base.TotalPipelineNanos)) / float64(base.TotalPipelineNanos)
	speedup := float64(base.TotalPipelineNanos) / float64(cand.TotalPipelineNanos)
	fmt.Printf("%-12s %12.1f %12.1f %+7.1f%%   speedup %.3fx\n",
		"total", float64(base.TotalPipelineNanos)/1e6, float64(cand.TotalPipelineNanos)/1e6, totalDelta, speedup)
	fmt.Printf("claims: baseline %+v\n        candidate %+v\n", base.Claims, cand.Claims)

	if totalDelta > *tolerance {
		fmt.Printf("FAIL: total pipeline regressed %.1f%% (> %.1f%% tolerance)\n", totalDelta, *tolerance)
		os.Exit(1)
	}
	fmt.Printf("OK: within %.1f%% tolerance\n", *tolerance)
}
