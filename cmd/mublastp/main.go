// Command mublastp searches protein queries against a database with the
// muBLASTP engine (or a baseline engine, for comparison). The database can
// be a FASTA file (indexed on the fly) or a prebuilt index from makedb.
//
// Usage:
//
//	mublastp -db db.mublastp -query queries.fasta
//	mublastp -subjects db.fasta -query queries.fasta -engine ncbi -format full
//	mublastp -verifydb db.mublastp
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/blast"
)

func main() {
	var (
		dbPath    = flag.String("db", "", "prebuilt database index (from makedb)")
		subjects  = flag.String("subjects", "", "FASTA database to index on the fly")
		queryPath = flag.String("query", "", "FASTA queries (required)")
		engine    = flag.String("engine", "mublastp", "engine: mublastp, ncbi, or ncbidb")
		threads   = flag.Int("threads", 0, "threads for batch search (0 = all cores)")
		evalue    = flag.Float64("evalue", 10, "E-value cutoff")
		maxHits   = flag.Int("max-hits", 250, "maximum hits per query")
		format    = flag.String("format", "summary", "output format: summary, full, or tabular")
		scheduler = flag.String("scheduler", "block-major", "batch scheduler: block-major or barrier")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the search to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile after the search to this file")
		verifyDB  = flag.String("verifydb", "", "verify a saved database container (checksums, fingerprint, full decode) and exit")
	)
	flag.Parse()
	if *verifyDB != "" {
		info, err := blast.VerifyFile(*verifyDB)
		if err != nil {
			fatalf("verify %s: %v", *verifyDB, err)
		}
		fp := info.Fingerprint
		fmt.Printf("%s: OK (container version %d)\n", *verifyDB, info.Version)
		fmt.Printf("  matrix %s, word size %d, neighbor threshold %d\n",
			fp.Matrix, fp.WordSize, fp.NeighborThreshold)
		fmt.Printf("  %d sequences, %d residues, %d index blocks (%d residues/block)\n",
			info.NumSequences, info.TotalResidues, info.NumBlocks, fp.BlockResidues)
		if fp.SplitLongerThan > 0 {
			fmt.Printf("  long sequences split at %d residues (overlap %d): %d chunks\n",
				fp.SplitLongerThan, fp.SplitOverlap, info.NumChunks)
		} else {
			fmt.Printf("  long-sequence splitting disabled\n")
		}
		return
	}
	if *queryPath == "" || (*dbPath == "") == (*subjects == "") {
		fmt.Fprintln(os.Stderr, "mublastp: need -query and exactly one of -db / -subjects")
		flag.Usage()
		os.Exit(2)
	}

	var kind blast.EngineKind
	switch *engine {
	case "mublastp":
		kind = blast.EngineMuBLASTP
	case "ncbi":
		kind = blast.EngineNCBI
	case "ncbidb":
		kind = blast.EngineNCBIdb
	default:
		fatalf("unknown engine %q", *engine)
	}

	p := blast.DefaultParams()
	p.EValueCutoff = *evalue
	p.MaxResults = *maxHits
	p.Threads = *threads
	p.Scheduler = *scheduler

	var db *blast.Database
	var err error
	start := time.Now()
	if *dbPath != "" {
		db, err = blast.LoadFile(*dbPath, p)
	} else {
		var seqs []blast.Sequence
		if seqs, err = blast.ReadFASTAFile(*subjects); err == nil {
			db, err = blast.NewDatabase(seqs, p)
		}
	}
	if err != nil {
		fatalf("loading database: %v", err)
	}
	fmt.Fprintf(os.Stderr, "mublastp: database ready in %v (%d sequences, %d blocks)\n",
		time.Since(start).Round(time.Millisecond), db.NumSequences(), db.NumBlocks())

	queries, err := blast.ReadFASTAFile(*queryPath)
	if err != nil {
		fatalf("reading queries: %v", err)
	}

	// The profile window covers only the search phase, not database
	// construction or output formatting.
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatalf("memprofile: %v", err)
			}
			runtime.GC() // flush dead objects so the profile shows live scratch
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatalf("memprofile: %v", err)
			}
			f.Close()
		}()
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	start = time.Now()
	if kind == blast.EngineMuBLASTP {
		texts := make([]string, len(queries))
		for i := range queries {
			texts[i] = queries[i].Residues
		}
		results, err := db.SearchBatch(texts)
		if err != nil {
			fatalf("search: %v", err)
		}
		for i, res := range results {
			printResult(out, db, queries[i], res, *format)
		}
	} else {
		for i := range queries {
			res, err := db.SearchWithEngine(kind, queries[i].Residues)
			if err != nil {
				fatalf("search: %v", err)
			}
			printResult(out, db, queries[i], res, *format)
		}
	}
	fmt.Fprintf(os.Stderr, "mublastp: %d queries searched in %v with %s\n",
		len(queries), time.Since(start).Round(time.Millisecond), kind)
}

func printResult(out *bufio.Writer, db *blast.Database, q blast.Sequence, res *blast.Result, format string) {
	if format == "tabular" {
		fmt.Fprint(out, res.Tabular(q.Name))
		return
	}
	fmt.Fprintf(out, "Query: %s (%d residues) — %d hits\n", q.Name, res.QueryLen, len(res.Hits))
	if len(res.Hits) == 0 {
		fmt.Fprintln(out)
		return
	}
	fmt.Fprint(out, res.Summary())
	if format == "full" {
		fmt.Fprintln(out)
		for i := range res.Hits {
			fmt.Fprint(out, db.FormatHit(q.Residues, &res.Hits[i]))
		}
	}
	fmt.Fprintln(out)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mublastp: "+format+"\n", args...)
	os.Exit(1)
}
