// Command mublastp searches protein queries against a database with the
// muBLASTP engine (or a baseline engine, for comparison). The database can
// be a FASTA file (indexed on the fly) or a prebuilt index from makedb.
//
// Usage:
//
//	mublastp -db db.mublastp -query queries.fasta
//	mublastp -subjects db.fasta -query queries.fasta -engine ncbi -format full
//	mublastp -db db.mublastp -query queries.fasta -timeout 30s
//	mublastp -verifydb db.mublastp
//	mublastp -verifydb db.shard0-of-2,db.shard1-of-2
//	mublastp -verifydb dbstore/
//
// SIGINT/SIGTERM cancel the running batch between tasks: completed queries
// are printed (identical to an uninterrupted run), the trace file and debug
// server shut down cleanly, and the exit status is non-zero. A second
// SIGINT/SIGTERM during that graceful shutdown force-exits immediately with
// exit code 3 (sigctx.ExitForced).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/blast"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/obs/prof"
	"repro/internal/sigctx"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "mublastp: %v\n", err)
		os.Exit(1)
	}
}

// run owns the whole lifecycle so every cleanup is a defer: interrupted or
// failed runs still flush the trace sink, stop profiles, and close the
// debug server. Cleanup failures surface through the named return so a
// broken trace flush is never silently swallowed.
func run() (retErr error) {
	var (
		dbPath      = flag.String("db", "", "prebuilt database index (from makedb)")
		subjects    = flag.String("subjects", "", "FASTA database to index on the fly")
		queryPath   = flag.String("query", "", "FASTA queries (required)")
		engine      = flag.String("engine", "mublastp", "engine: mublastp, ncbi, or ncbidb")
		threads     = flag.Int("threads", 0, "threads for batch search (0 = all cores)")
		evalue      = flag.Float64("evalue", 10, "E-value cutoff")
		maxHits     = flag.Int("max-hits", 250, "maximum hits per query")
		format      = flag.String("format", "summary", "output format: summary, full, or tabular")
		scheduler   = flag.String("scheduler", "block-major", "batch scheduler: block-major or barrier")
		timeout     = flag.Duration("timeout", 0, "abort the batch search after this long, keeping completed queries (0 = no deadline)")
		faultSpec   = flag.String("faultspec", "", "arm fault-injection sites, e.g. 'sched.task=panic#3,core.hitdetect=delay:5ms' (testing aid)")
		faultSeed   = flag.Uint64("faultseed", 1, "seed for probabilistic -faultspec clauses")
		cpuProf     = flag.String("cpuprofile", "", "write a CPU profile of the search to this file")
		memProf     = flag.String("memprofile", "", "write a heap profile after the search to this file")
		tracePath   = flag.String("trace", "", "write per-query stage spans as JSONL to this file")
		debugAddr   = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof/ on this address (e.g. :6060)")
		debugLinger = flag.Duration("debug-linger", 0, "keep the -debug-addr server up this long after the search finishes")
		verifyDB    = flag.String("verifydb", "", "verify a database and exit: a container file, a comma-separated shard set (cross-checked as one build), or an ingest-store directory")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancel the batch; a second signal during the graceful
	// wind-down (partial-result printing, trace flush) force-exits with a
	// distinct code instead of being swallowed by the still-held signal
	// registration, so an operator can always escalate past a slow drain.
	ctx, stop := sigctx.WithForcedExit(context.Background(), func(sig os.Signal) {
		fmt.Fprintf(os.Stderr, "mublastp: %v received, stopping after in-flight tasks (signal again to force exit)\n", sig)
	})
	defer stop()

	if *faultSpec != "" {
		if err := faultinject.Enable(*faultSpec, *faultSeed); err != nil {
			return err
		}
		defer faultinject.Disable()
		fmt.Fprintf(os.Stderr, "mublastp: fault injection armed: %s (seed %d)\n", *faultSpec, *faultSeed)
	}

	// The debug server comes up before the database loads so the whole run —
	// including index construction — is observable live, and goes down
	// through a bounded Shutdown on every exit path so a scrape in progress
	// completes instead of being reset mid-dump.
	if *debugAddr != "" {
		srv, err := obs.Serve(*debugAddr, obs.Default)
		if err != nil {
			return err
		}
		defer func() {
			if err := srv.ShutdownTimeout(2 * time.Second); err != nil && retErr == nil {
				retErr = fmt.Errorf("debug server shutdown: %w", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "mublastp: debug server listening on %s\n", srv.Addr)
	}
	if *verifyDB != "" {
		return runVerify(*verifyDB)
	}
	if *queryPath == "" || (*dbPath == "") == (*subjects == "") {
		fmt.Fprintln(os.Stderr, "mublastp: need -query and exactly one of -db / -subjects")
		flag.Usage()
		os.Exit(2)
	}

	var kind blast.EngineKind
	switch *engine {
	case "mublastp":
		kind = blast.EngineMuBLASTP
	case "ncbi":
		kind = blast.EngineNCBI
	case "ncbidb":
		kind = blast.EngineNCBIdb
	default:
		return fmt.Errorf("unknown engine %q", *engine)
	}

	p := blast.DefaultParams()
	p.EValueCutoff = *evalue
	p.MaxResults = *maxHits
	p.Threads = *threads
	p.Scheduler = *scheduler
	p.Timeout = *timeout

	var db *blast.Database
	var err error
	start := time.Now()
	if *dbPath != "" {
		db, err = blast.LoadFile(*dbPath, p)
	} else {
		var seqs []blast.Sequence
		if seqs, err = blast.ReadFASTAFile(*subjects); err == nil {
			db, err = blast.NewDatabase(seqs, p)
		}
	}
	if err != nil {
		return fmt.Errorf("loading database: %w", err)
	}
	fmt.Fprintf(os.Stderr, "mublastp: database ready in %v (%d sequences, %d blocks)\n",
		time.Since(start).Round(time.Millisecond), db.NumSequences(), db.NumBlocks())

	queries, err := blast.ReadFASTAFile(*queryPath)
	if err != nil {
		return fmt.Errorf("reading queries: %w", err)
	}

	// The profile window covers only the search phase, not database
	// construction or output formatting.
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil && retErr == nil {
			retErr = err
		}
	}()

	var trace *obs.TraceWriter
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		trace = obs.NewTraceWriter(f)
		defer func() {
			if err := trace.Close(); err != nil && retErr == nil {
				retErr = fmt.Errorf("trace: %w", err)
			}
		}()
	}
	emit := func(out *bufio.Writer, q blast.Sequence, res *blast.Result) error {
		if trace != nil {
			if err := trace.Write(res.TraceRecord(q.Name)); err != nil {
				return fmt.Errorf("trace: %w", err)
			}
		}
		printResult(out, db, q, res, *format)
		return nil
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	start = time.Now()
	if kind == blast.EngineMuBLASTP {
		texts := make([]string, len(queries))
		for i := range queries {
			texts[i] = queries[i].Residues
		}
		br, err := db.SearchBatchCtx(ctx, texts)
		if err != nil {
			return fmt.Errorf("search: %w", err)
		}
		for i := range br.Results {
			if !br.Completed[i] {
				continue
			}
			if err := emit(out, queries[i], br.Results[i]); err != nil {
				return err
			}
		}
		done := br.CompletedCount()
		for i, qerr := range br.QueryErrs {
			if qerr != nil {
				fmt.Fprintf(os.Stderr, "mublastp: query %s not completed: %v\n", queries[i].Name, qerr)
			}
		}
		fmt.Fprintf(os.Stderr, "mublastp: %d/%d queries searched in %v with %s\n",
			done, len(queries), time.Since(start).Round(time.Millisecond), kind)
		// A degraded batch still falls through to the linger window below,
		// so a scraper can read the failure counters before the process
		// exits non-zero.
		if br.Err != nil {
			retErr = fmt.Errorf("search incomplete: %w", br.Err)
		} else if done != len(queries) {
			retErr = fmt.Errorf("search: %d queries failed", len(queries)-done)
		}
	} else {
		for i := range queries {
			if ctx.Err() != nil {
				retErr = fmt.Errorf("search interrupted after %d/%d queries: %w", i, len(queries), ctx.Err())
				return retErr
			}
			res, err := db.SearchWithEngine(kind, queries[i].Residues)
			if err != nil {
				return fmt.Errorf("search: %w", err)
			}
			if err := emit(out, queries[i], res); err != nil {
				return err
			}
		}
		fmt.Fprintf(os.Stderr, "mublastp: %d queries searched in %v with %s\n",
			len(queries), time.Since(start).Round(time.Millisecond), kind)
	}

	if *debugAddr != "" && *debugLinger > 0 {
		// Drain the buffered sinks before sleeping so anything scraping the
		// lingering process sees complete output.
		out.Flush()
		if trace != nil {
			if err := trace.Flush(); err != nil {
				return fmt.Errorf("trace: %w", err)
			}
		}
		fmt.Fprintf(os.Stderr, "mublastp: debug server lingering for %v\n", *debugLinger)
		select {
		case <-time.After(*debugLinger):
		case <-ctx.Done():
		}
	}
	return retErr
}

// runVerify dispatches on what the -verifydb argument names: a
// comma-separated list verifies the files as a shard set (one fingerprint,
// exact round-robin fit — the invariants the scatter-gather merge trusts),
// an ingest-store directory runs the full store verification (manifest,
// every tier, WAL), and a single file keeps the original container check.
func runVerify(path string) error {
	if paths := strings.Split(path, ","); len(paths) > 1 {
		return runVerifySet(paths)
	}
	if blast.IsStoreDir(path) {
		return runVerifyStorePath(path)
	}
	info, err := blast.VerifyFile(path)
	if err != nil {
		return fmt.Errorf("verify %s: %w", path, err)
	}
	fp := info.Fingerprint
	fmt.Printf("%s: OK (container version %d)\n", path, info.Version)
	fmt.Printf("  matrix %s, word size %d, neighbor threshold %d\n",
		fp.Matrix, fp.WordSize, fp.NeighborThreshold)
	fmt.Printf("  %d sequences, %d residues, %d index blocks (%d residues/block)\n",
		info.NumSequences, info.TotalResidues, info.NumBlocks, fp.BlockResidues)
	if fp.SplitLongerThan > 0 {
		fmt.Printf("  long sequences split at %d residues (overlap %d): %d chunks\n",
			fp.SplitLongerThan, fp.SplitOverlap, info.NumChunks)
	} else {
		fmt.Printf("  long-sequence splitting disabled\n")
	}
	return nil
}

func runVerifySet(paths []string) error {
	for i := range paths {
		paths[i] = strings.TrimSpace(paths[i])
	}
	set, err := blast.VerifyShardSet(paths)
	if err != nil {
		return fmt.Errorf("verify shard set: %w", err)
	}
	fp := set.Fingerprint
	fmt.Printf("shard set: OK (%d shards, one build)\n", set.NumShards)
	fmt.Printf("  matrix %s, word size %d, neighbor threshold %d\n",
		fp.Matrix, fp.WordSize, fp.NeighborThreshold)
	fmt.Printf("  %d sequences, %d residues total; round-robin fit verified\n",
		set.TotalSequences, set.TotalResidues)
	for s, ci := range set.PerShard {
		fmt.Printf("  shard %d: %s — %d sequences, %d residues, %d blocks\n",
			s, paths[s], ci.NumSequences, ci.TotalResidues, ci.NumBlocks)
	}
	return nil
}

func runVerifyStorePath(dir string) error {
	info, err := blast.VerifyStore(dir)
	if err != nil {
		return fmt.Errorf("verify store %s: %w", dir, err)
	}
	fp := info.Fingerprint
	fmt.Printf("%s: OK (ingest store)\n", dir)
	fmt.Printf("  manifest seq %d (%s), %d delta container(s), %d pending WAL record(s)\n",
		info.ManifestSeq, info.ManifestHash, info.Deltas, info.PendingWAL)
	fmt.Printf("  matrix %s, word size %d, neighbor threshold %d\n",
		fp.Matrix, fp.WordSize, fp.NeighborThreshold)
	fmt.Printf("  %d sequences, %d residues, %d index blocks across all tiers\n",
		info.NumSequences, info.TotalResidues, info.NumBlocks)
	return nil
}

func printResult(out *bufio.Writer, db *blast.Database, q blast.Sequence, res *blast.Result, format string) {
	if format == "tabular" {
		fmt.Fprint(out, res.Tabular(q.Name))
		return
	}
	fmt.Fprintf(out, "Query: %s (%d residues) — %d hits\n", q.Name, res.QueryLen, len(res.Hits))
	if len(res.Hits) == 0 {
		fmt.Fprintln(out)
		return
	}
	fmt.Fprint(out, res.Summary())
	if format == "full" {
		fmt.Fprintln(out)
		for i := range res.Hits {
			fmt.Fprint(out, db.FormatHit(q.Residues, &res.Hits[i]))
		}
	}
	fmt.Fprintln(out)
}
