// Command mublastp searches protein queries against a database with the
// muBLASTP engine (or a baseline engine, for comparison). The database can
// be a FASTA file (indexed on the fly) or a prebuilt index from makedb.
//
// Usage:
//
//	mublastp -db db.mublastp -query queries.fasta
//	mublastp -subjects db.fasta -query queries.fasta -engine ncbi -format full
//	mublastp -verifydb db.mublastp
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/blast"
	"repro/internal/obs"
	"repro/internal/obs/prof"
)

func main() {
	var (
		dbPath      = flag.String("db", "", "prebuilt database index (from makedb)")
		subjects    = flag.String("subjects", "", "FASTA database to index on the fly")
		queryPath   = flag.String("query", "", "FASTA queries (required)")
		engine      = flag.String("engine", "mublastp", "engine: mublastp, ncbi, or ncbidb")
		threads     = flag.Int("threads", 0, "threads for batch search (0 = all cores)")
		evalue      = flag.Float64("evalue", 10, "E-value cutoff")
		maxHits     = flag.Int("max-hits", 250, "maximum hits per query")
		format      = flag.String("format", "summary", "output format: summary, full, or tabular")
		scheduler   = flag.String("scheduler", "block-major", "batch scheduler: block-major or barrier")
		cpuProf     = flag.String("cpuprofile", "", "write a CPU profile of the search to this file")
		memProf     = flag.String("memprofile", "", "write a heap profile after the search to this file")
		tracePath   = flag.String("trace", "", "write per-query stage spans as JSONL to this file")
		debugAddr   = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof/ on this address (e.g. :6060)")
		debugLinger = flag.Duration("debug-linger", 0, "keep the -debug-addr server up this long after the search finishes")
		verifyDB    = flag.String("verifydb", "", "verify a saved database container (checksums, fingerprint, full decode) and exit")
	)
	flag.Parse()

	// The debug server comes up before the database loads so the whole run —
	// including index construction — is observable live.
	if *debugAddr != "" {
		srv, err := obs.Serve(*debugAddr, obs.Default)
		if err != nil {
			fatalf("%v", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "mublastp: debug server listening on %s\n", srv.Addr)
	}
	if *verifyDB != "" {
		info, err := blast.VerifyFile(*verifyDB)
		if err != nil {
			fatalf("verify %s: %v", *verifyDB, err)
		}
		fp := info.Fingerprint
		fmt.Printf("%s: OK (container version %d)\n", *verifyDB, info.Version)
		fmt.Printf("  matrix %s, word size %d, neighbor threshold %d\n",
			fp.Matrix, fp.WordSize, fp.NeighborThreshold)
		fmt.Printf("  %d sequences, %d residues, %d index blocks (%d residues/block)\n",
			info.NumSequences, info.TotalResidues, info.NumBlocks, fp.BlockResidues)
		if fp.SplitLongerThan > 0 {
			fmt.Printf("  long sequences split at %d residues (overlap %d): %d chunks\n",
				fp.SplitLongerThan, fp.SplitOverlap, info.NumChunks)
		} else {
			fmt.Printf("  long-sequence splitting disabled\n")
		}
		return
	}
	if *queryPath == "" || (*dbPath == "") == (*subjects == "") {
		fmt.Fprintln(os.Stderr, "mublastp: need -query and exactly one of -db / -subjects")
		flag.Usage()
		os.Exit(2)
	}

	var kind blast.EngineKind
	switch *engine {
	case "mublastp":
		kind = blast.EngineMuBLASTP
	case "ncbi":
		kind = blast.EngineNCBI
	case "ncbidb":
		kind = blast.EngineNCBIdb
	default:
		fatalf("unknown engine %q", *engine)
	}

	p := blast.DefaultParams()
	p.EValueCutoff = *evalue
	p.MaxResults = *maxHits
	p.Threads = *threads
	p.Scheduler = *scheduler

	var db *blast.Database
	var err error
	start := time.Now()
	if *dbPath != "" {
		db, err = blast.LoadFile(*dbPath, p)
	} else {
		var seqs []blast.Sequence
		if seqs, err = blast.ReadFASTAFile(*subjects); err == nil {
			db, err = blast.NewDatabase(seqs, p)
		}
	}
	if err != nil {
		fatalf("loading database: %v", err)
	}
	fmt.Fprintf(os.Stderr, "mublastp: database ready in %v (%d sequences, %d blocks)\n",
		time.Since(start).Round(time.Millisecond), db.NumSequences(), db.NumBlocks())

	queries, err := blast.ReadFASTAFile(*queryPath)
	if err != nil {
		fatalf("reading queries: %v", err)
	}

	// The profile window covers only the search phase, not database
	// construction or output formatting.
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fatalf("%v", err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fatalf("%v", err)
		}
	}()

	var trace *obs.TraceWriter
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatalf("trace: %v", err)
		}
		trace = obs.NewTraceWriter(f)
		defer func() {
			if err := trace.Close(); err != nil {
				fatalf("trace: %v", err)
			}
		}()
	}
	emit := func(out *bufio.Writer, q blast.Sequence, res *blast.Result) {
		if trace != nil {
			if err := trace.Write(res.TraceRecord(q.Name)); err != nil {
				fatalf("trace: %v", err)
			}
		}
		printResult(out, db, q, res, *format)
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	start = time.Now()
	if kind == blast.EngineMuBLASTP {
		texts := make([]string, len(queries))
		for i := range queries {
			texts[i] = queries[i].Residues
		}
		results, err := db.SearchBatch(texts)
		if err != nil {
			fatalf("search: %v", err)
		}
		for i, res := range results {
			emit(out, queries[i], res)
		}
	} else {
		for i := range queries {
			res, err := db.SearchWithEngine(kind, queries[i].Residues)
			if err != nil {
				fatalf("search: %v", err)
			}
			emit(out, queries[i], res)
		}
	}
	fmt.Fprintf(os.Stderr, "mublastp: %d queries searched in %v with %s\n",
		len(queries), time.Since(start).Round(time.Millisecond), kind)

	if *debugAddr != "" && *debugLinger > 0 {
		// Drain the buffered sinks before sleeping so anything scraping the
		// lingering process sees complete output.
		out.Flush()
		if trace != nil {
			if err := trace.Flush(); err != nil {
				fatalf("trace: %v", err)
			}
		}
		fmt.Fprintf(os.Stderr, "mublastp: debug server lingering for %v\n", *debugLinger)
		time.Sleep(*debugLinger)
	}
}

func printResult(out *bufio.Writer, db *blast.Database, q blast.Sequence, res *blast.Result, format string) {
	if format == "tabular" {
		fmt.Fprint(out, res.Tabular(q.Name))
		return
	}
	fmt.Fprintf(out, "Query: %s (%d residues) — %d hits\n", q.Name, res.QueryLen, len(res.Hits))
	if len(res.Hits) == 0 {
		fmt.Fprintln(out)
		return
	}
	fmt.Fprint(out, res.Summary())
	if format == "full" {
		fmt.Fprintln(out)
		for i := range res.Hits {
			fmt.Fprint(out, db.FormatHit(q.Residues, &res.Hits[i]))
		}
	}
	fmt.Fprintln(out)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mublastp: "+format+"\n", args...)
	os.Exit(1)
}
