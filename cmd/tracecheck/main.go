// Command tracecheck validates a trace JSONL file (a daemon's -trace
// output): every line must parse as one trace tree whose span IDs link —
// each non-root span's parent_id names another span of the same tree — and
// optional flags assert the tree count, the emitting daemon, and span names
// every tree must contain. It is the assertion half of scripts/trace_smoke.sh
// and a standalone triage tool for trace captures.
//
// Usage:
//
//	tracecheck -in trace.jsonl -want 3 -daemon mublastpr \
//	    -require edge,scatter,merge,stage:hit_detect
//
// Exit status: 0 when every check passes, 1 on any violation, 2 on usage
// errors. With -v each tree is summarized (request ID, outcome, span count).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/reqtrace"
)

func main() {
	var (
		in      = flag.String("in", "", "trace JSONL file to validate (required)")
		want    = flag.Int("want", -1, "exact number of trace trees expected (-1 = any non-zero)")
		daemon  = flag.String("daemon", "", "daemon name every tree must carry (empty = any)")
		require = flag.String("require", "", "comma-separated span names every tree must contain")
		verbose = flag.Bool("v", false, "summarize each tree")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "tracecheck: -in is required")
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	traces, err := reqtrace.ReadTraces(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", *in, err)
		os.Exit(1)
	}

	var required []string
	for _, name := range strings.Split(*require, ",") {
		if name = strings.TrimSpace(name); name != "" {
			required = append(required, name)
		}
	}

	fail := 0
	errf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
		fail = 1
	}

	if *want >= 0 && len(traces) != *want {
		errf("%s holds %d trace trees, want %d", *in, len(traces), *want)
	}
	if *want < 0 && len(traces) == 0 {
		errf("%s holds no trace trees", *in)
	}
	seen := make(map[string]bool, len(traces))
	for i, tr := range traces {
		rid, tid := tr.IDs()
		if err := tr.Linked(); err != nil {
			errf("tree %d (%s): not a linked tree: %v", i, rid, err)
			continue
		}
		if rid == "" || tid == "" {
			errf("tree %d: missing request or trace ID (%q, %q)", i, rid, tid)
		}
		if seen[tid] {
			errf("tree %d: trace ID %s appears twice — trees are not one-per-request", i, tid)
		}
		seen[tid] = true
		if *daemon != "" && tr.Daemon != *daemon {
			errf("tree %d (%s): daemon %q, want %q", i, rid, tr.Daemon, *daemon)
		}
		for _, name := range required {
			if tr.RootSpan().Find(name) == nil {
				errf("tree %d (%s, outcome %s): no %q span", i, rid, tr.Outcome, name)
			}
		}
		if *verbose {
			spans := 0
			tr.RootSpan().Walk(func(*reqtrace.Span) { spans++ })
			fmt.Printf("tracecheck: %s trace %s outcome=%s spans=%d\n", rid, tid, tr.Outcome, spans)
		}
	}

	if fail == 0 {
		fmt.Printf("tracecheck: %s OK (%d linked trace trees)\n", *in, len(traces))
	}
	os.Exit(fail)
}
