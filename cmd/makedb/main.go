// Command makedb builds the blocked database index from a FASTA file and
// saves it for reuse, the "build once, search many" workflow database-
// indexed BLAST exists for (paper Section III).
//
// With -shards N it instead writes N self-contained shard containers
// (<out>.shard<i>-of-<N>), the monolithic database dealt round-robin over
// its length-sorted order so every shard carries a balanced slice of the
// length distribution. Each shard is verified after writing. A router (see
// cmd/mublastpr) serving all N shards with the printed global totals
// returns results byte-identical to serving the single -out container.
//
// Usage:
//
//	makedb -in db.fasta -out db.mublastp [-shards 4] [-block-bytes 1048576] [-threads 12]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/blast"
)

func main() {
	var (
		in         = flag.String("in", "", "input FASTA database (required)")
		out        = flag.String("out", "", "output index path (required)")
		shards     = flag.Int("shards", 1, "split into N shard containers named <out>.shard<i>-of-<N> (1 = single container)")
		blockBytes = flag.Int64("block-bytes", 0, "index block size in bytes (0 = paper's L3 sizing rule)")
		threads    = flag.Int("threads", 0, "thread count the block sizing rule targets (0 = all cores)")
		matrixName = flag.String("matrix", "BLOSUM62", "substitution matrix")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "makedb: -in and -out are required")
		flag.Usage()
		os.Exit(2)
	}
	if *shards < 1 {
		fatalf("-shards must be >= 1, got %d", *shards)
	}

	seqs, err := blast.ReadFASTAFile(*in)
	if err != nil {
		fatalf("reading %s: %v", *in, err)
	}
	p := blast.DefaultParams()
	p.Matrix = *matrixName
	p.Threads = *threads
	if *blockBytes > 0 {
		p.BlockResidues = *blockBytes / 4
	}

	start := time.Now()
	db, err := blast.NewDatabase(seqs, p)
	if err != nil {
		fatalf("building index: %v", err)
	}
	if *shards == 1 {
		if err := db.SaveFile(*out); err != nil {
			fatalf("saving %s: %v", *out, err)
		}
		fmt.Fprintf(os.Stderr,
			"makedb: %d sequences, %d residues -> %d blocks, %.1f MB index in %v\n",
			db.NumSequences(), db.TotalResidues(), db.NumBlocks(),
			float64(db.IndexSizeBytes())/(1<<20), time.Since(start).Round(time.Millisecond))
		return
	}

	parts, err := db.Shards(*shards)
	if err != nil {
		fatalf("sharding: %v", err)
	}
	for s, sd := range parts {
		path := shardPath(*out, s, *shards)
		if err := sd.SaveFile(path); err != nil {
			fatalf("saving shard %d (%s): %v", s, path, err)
		}
		info, err := blast.VerifyFile(path)
		if err != nil {
			fatalf("verifying shard %d (%s): %v", s, path, err)
		}
		fmt.Fprintf(os.Stderr, "makedb: shard %d/%d -> %s: %d sequences, %d residues, %d blocks\n",
			s, *shards, path, info.NumSequences, info.TotalResidues, info.NumBlocks)
	}
	fmt.Fprintf(os.Stderr,
		"makedb: %d shards of %d sequences, %d residues total in %v; serve with global totals -- e.g. mublastpr -shards <files>\n",
		*shards, db.NumSequences(), db.TotalResidues(), time.Since(start).Round(time.Millisecond))
}

// shardPath names shard s of n for an -out base path.
func shardPath(out string, s, n int) string {
	return fmt.Sprintf("%s.shard%d-of-%d", out, s, n)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "makedb: "+format+"\n", args...)
	os.Exit(1)
}
