// Command makedb builds the blocked database index from a FASTA file and
// saves it for reuse, the "build once, search many" workflow database-
// indexed BLAST exists for (paper Section III).
//
// With -shards N it instead writes N self-contained shard containers
// (<out>.shard<i>-of-<N>), the monolithic database dealt round-robin over
// its length-sorted order so every shard carries a balanced slice of the
// length distribution. The finished set is verified as a set
// (blast.VerifyShardSet): one fingerprint across all files and an exact
// round-robin fit, not just per-file checksums. A router (see
// cmd/mublastpr) serving all N shards with the printed global totals
// returns results byte-identical to serving the single -out container.
//
// Store mode manages a crash-safe ingest store (a directory holding a base
// container, ordered delta containers, a WAL, and an atomically-committed
// manifest) instead of a single file:
//
//	makedb -in db.fasta -store dbdir       initialise a store from FASTA
//	makedb -in new.fasta -append dbdir     append a batch as a delta (WAL-journaled)
//	makedb -compact dbdir                  merge base+deltas into a new base
//	makedb -recover dbdir                  replay/discard the WAL, GC orphans
//	makedb -verify-store dbdir             full offline verification report
//
// Append is durable on exit: the batch is WAL-journaled and fsynced before
// the delta is built, and the manifest rename is atomic, so a crash at any
// point leaves the store recoverable to exactly the pre- or post-append
// state (-recover, or any OpenStore, performs that recovery).
//
// Usage:
//
//	makedb -in db.fasta -out db.mublastp [-shards 4] [-block-bytes 1048576] [-threads 12]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/blast"
)

func main() {
	var (
		in          = flag.String("in", "", "input FASTA database (required for -out, -store, -append)")
		out         = flag.String("out", "", "output index path")
		shards      = flag.Int("shards", 1, "split into N shard containers named <out>.shard<i>-of-<N> (1 = single container)")
		blockBytes  = flag.Int64("block-bytes", 0, "index block size in bytes (0 = paper's L3 sizing rule)")
		threads     = flag.Int("threads", 0, "thread count the block sizing rule targets (0 = all cores)")
		matrixName  = flag.String("matrix", "BLOSUM62", "substitution matrix")
		storeDir    = flag.String("store", "", "initialise a crash-safe ingest store at this directory from -in")
		appendDir   = flag.String("append", "", "append the -in batch to the ingest store at this directory as a delta")
		compactDir  = flag.String("compact", "", "merge the store's base+deltas into a single new base container")
		recoverDir  = flag.String("recover", "", "run crash recovery on the store (replay/discard WAL, GC orphans) and exit")
		verifyStore = flag.String("verify-store", "", "verify the ingest store at this directory (manifest, containers, WAL) and exit")
	)
	flag.Parse()

	p := blast.DefaultParams()
	p.Matrix = *matrixName
	p.Threads = *threads
	if *blockBytes > 0 {
		p.BlockResidues = *blockBytes / 4
	}

	modes := 0
	for _, m := range []string{*out, *storeDir, *appendDir, *compactDir, *recoverDir, *verifyStore} {
		if m != "" {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "makedb: need exactly one of -out, -store, -append, -compact, -recover, -verify-store")
		flag.Usage()
		os.Exit(2)
	}

	switch {
	case *verifyStore != "":
		runVerifyStore(*verifyStore)
		return
	case *recoverDir != "":
		runRecover(*recoverDir, p)
		return
	case *compactDir != "":
		runCompact(*compactDir, p)
		return
	case *storeDir != "":
		runInitStore(*storeDir, *in, p)
		return
	case *appendDir != "":
		runAppend(*appendDir, *in, p)
		return
	}

	if *in == "" {
		fmt.Fprintln(os.Stderr, "makedb: -in is required with -out")
		flag.Usage()
		os.Exit(2)
	}
	if *shards < 1 {
		fatalf("-shards must be >= 1, got %d", *shards)
	}

	seqs, err := blast.ReadFASTAFile(*in)
	if err != nil {
		fatalf("reading %s: %v", *in, err)
	}

	start := time.Now()
	db, err := blast.NewDatabase(seqs, p)
	if err != nil {
		fatalf("building index: %v", err)
	}
	if *shards == 1 {
		if err := db.SaveFile(*out); err != nil {
			fatalf("saving %s: %v", *out, err)
		}
		fmt.Fprintf(os.Stderr,
			"makedb: %d sequences, %d residues -> %d blocks, %.1f MB index in %v\n",
			db.NumSequences(), db.TotalResidues(), db.NumBlocks(),
			float64(db.IndexSizeBytes())/(1<<20), time.Since(start).Round(time.Millisecond))
		return
	}

	parts, err := db.Shards(*shards)
	if err != nil {
		fatalf("sharding: %v", err)
	}
	paths := make([]string, len(parts))
	for s, sd := range parts {
		paths[s] = shardPath(*out, s, *shards)
		if err := sd.SaveFile(paths[s]); err != nil {
			fatalf("saving shard %d (%s): %v", s, paths[s], err)
		}
	}
	// Verify the finished files as a set: same build fingerprint everywhere
	// and an exact round-robin fit, the invariants the scatter-gather merge
	// silently trusts. Per-file checksums alone cannot catch a set mixing
	// two makedb runs.
	set, err := blast.VerifyShardSet(paths)
	if err != nil {
		fatalf("verifying shard set: %v", err)
	}
	for s, ci := range set.PerShard {
		fmt.Fprintf(os.Stderr, "makedb: shard %d/%d -> %s: %d sequences, %d residues, %d blocks\n",
			s, *shards, paths[s], ci.NumSequences, ci.TotalResidues, ci.NumBlocks)
	}
	fmt.Fprintf(os.Stderr,
		"makedb: %d shards verified as a set: %d sequences, %d residues total in %v; serve with global totals -- e.g. mublastpr -shards <files>\n",
		*shards, set.TotalSequences, set.TotalResidues, time.Since(start).Round(time.Millisecond))
}

func runInitStore(dir, in string, p blast.Params) {
	if in == "" {
		fatalf("-store needs -in")
	}
	seqs, err := blast.ReadFASTAFile(in)
	if err != nil {
		fatalf("reading %s: %v", in, err)
	}
	start := time.Now()
	st, err := blast.InitStore(dir, seqs, p)
	if err != nil {
		fatalf("initialising store %s: %v", dir, err)
	}
	fmt.Fprintf(os.Stderr, "makedb: store %s initialised: manifest seq %d (%s), %d sequences in %v\n",
		dir, st.ManifestSeq(), st.ManifestHash(), st.NumSequences(), time.Since(start).Round(time.Millisecond))
}

func runAppend(dir, in string, p blast.Params) {
	if in == "" {
		fatalf("-append needs -in")
	}
	batch, err := blast.ReadFASTAFile(in)
	if err != nil {
		fatalf("reading %s: %v", in, err)
	}
	st, err := blast.OpenStore(dir, p)
	if err != nil {
		fatalf("opening store %s: %v", dir, err)
	}
	start := time.Now()
	stats, err := st.Append(batch)
	if err != nil {
		fatalf("appending to %s: %v", dir, err)
	}
	fmt.Fprintf(os.Stderr, "makedb: appended %d sequences to %s as %s in %v: manifest seq %d, %d deltas (WAL seq %d)\n",
		stats.Sequences, dir, stats.DeltaFile, time.Since(start).Round(time.Millisecond),
		stats.ManifestSeq, stats.Deltas, stats.WALSeq)
}

func runCompact(dir string, p blast.Params) {
	st, err := blast.OpenStore(dir, p)
	if err != nil {
		fatalf("opening store %s: %v", dir, err)
	}
	deltas := st.NumDeltas()
	start := time.Now()
	if err := st.Compact(); err != nil {
		fatalf("compacting %s: %v", dir, err)
	}
	fmt.Fprintf(os.Stderr, "makedb: compacted %s: %d deltas merged into a new base in %v (manifest seq %d, %d sequences)\n",
		dir, deltas, time.Since(start).Round(time.Millisecond), st.ManifestSeq(), st.NumSequences())
}

func runRecover(dir string, p blast.Params) {
	// OpenStore is the recovery procedure: replay durable WAL records into a
	// delta, discard torn tails, GC orphans. Running it explicitly lets an
	// operator repair a store before pointing a daemon at it.
	st, err := blast.OpenStore(dir, p)
	if err != nil {
		fatalf("recovering store %s: %v", dir, err)
	}
	info, err := blast.VerifyStore(dir)
	if err != nil {
		fatalf("store %s recovered but failed verification: %v", dir, err)
	}
	fmt.Fprintf(os.Stderr, "makedb: store %s recovered: manifest seq %d (%s), %d sequences, %d deltas, %d pending WAL records\n",
		dir, st.ManifestSeq(), st.ManifestHash(), info.NumSequences, info.Deltas, info.PendingWAL)
}

func runVerifyStore(dir string) {
	info, err := blast.VerifyStore(dir)
	if err != nil {
		fatalf("verifying store %s: %v", dir, err)
	}
	fp := info.Fingerprint
	fmt.Printf("%s: OK (ingest store)\n", dir)
	fmt.Printf("  manifest seq %d (%s), %d delta container(s)\n", info.ManifestSeq, info.ManifestHash, info.Deltas)
	fmt.Printf("  matrix %s, word size %d, neighbor threshold %d\n", fp.Matrix, fp.WordSize, fp.NeighborThreshold)
	fmt.Printf("  %d sequences, %d residues, %d index blocks across all tiers\n",
		info.NumSequences, info.TotalResidues, info.NumBlocks)
	if info.PendingWAL > 0 {
		fmt.Printf("  %d durable WAL record(s) awaiting replay (run -recover or open the store)\n", info.PendingWAL)
	}
}

// shardPath names shard s of n for an -out base path.
func shardPath(out string, s, n int) string {
	return fmt.Sprintf("%s.shard%d-of-%d", out, s, n)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "makedb: "+format+"\n", args...)
	os.Exit(1)
}
