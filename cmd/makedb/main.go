// Command makedb builds the blocked database index from a FASTA file and
// saves it for reuse, the "build once, search many" workflow database-
// indexed BLAST exists for (paper Section III).
//
// Usage:
//
//	makedb -in db.fasta -out db.mublastp [-block-bytes 1048576] [-threads 12]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/blast"
)

func main() {
	var (
		in         = flag.String("in", "", "input FASTA database (required)")
		out        = flag.String("out", "", "output index path (required)")
		blockBytes = flag.Int64("block-bytes", 0, "index block size in bytes (0 = paper's L3 sizing rule)")
		threads    = flag.Int("threads", 0, "thread count the block sizing rule targets (0 = all cores)")
		matrixName = flag.String("matrix", "BLOSUM62", "substitution matrix")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "makedb: -in and -out are required")
		flag.Usage()
		os.Exit(2)
	}

	seqs, err := blast.ReadFASTAFile(*in)
	if err != nil {
		fatalf("reading %s: %v", *in, err)
	}
	p := blast.DefaultParams()
	p.Matrix = *matrixName
	p.Threads = *threads
	if *blockBytes > 0 {
		p.BlockResidues = *blockBytes / 4
	}

	start := time.Now()
	db, err := blast.NewDatabase(seqs, p)
	if err != nil {
		fatalf("building index: %v", err)
	}
	if err := db.SaveFile(*out); err != nil {
		fatalf("saving %s: %v", *out, err)
	}
	fmt.Fprintf(os.Stderr,
		"makedb: %d sequences, %d residues -> %d blocks, %.1f MB index in %v\n",
		db.NumSequences(), db.TotalResidues(), db.NumBlocks(),
		float64(db.IndexSizeBytes())/(1<<20), time.Since(start).Round(time.Millisecond))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "makedb: "+format+"\n", args...)
	os.Exit(1)
}
