// Command genseq generates synthetic protein databases and query sets with
// the statistical shape of the paper's uniprot_sprot and env_nr databases
// (see internal/seqgen). Output is FASTA.
//
// Usage:
//
//	genseq -profile uniprot -n 10000 -seed 7 -out db.fasta
//	genseq -profile envnr -n 10000 -queries 128 -qlen 256 -out db.fasta -qout queries.fasta
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/blast"
	"repro/internal/alphabet"
	"repro/internal/seqgen"
)

func main() {
	var (
		profile = flag.String("profile", "uniprot", "database profile: uniprot or envnr")
		n       = flag.Int("n", 10000, "number of database sequences")
		seed    = flag.Int64("seed", 7, "generator seed")
		out     = flag.String("out", "", "database FASTA output path (default stdout)")
		queries = flag.Int("queries", 0, "also sample this many queries from the database")
		qlen    = flag.Int("qlen", 0, "query length (0 = mixed, following the database distribution)")
		qout    = flag.String("qout", "", "query FASTA output path (required with -queries)")
	)
	flag.Parse()

	var prof seqgen.Profile
	switch *profile {
	case "uniprot":
		prof = seqgen.UniprotProfile()
	case "envnr":
		prof = seqgen.EnvNRProfile()
	default:
		fatalf("unknown profile %q (want uniprot or envnr)", *profile)
	}
	if *queries > 0 && *qout == "" {
		fatalf("-queries requires -qout")
	}

	g := seqgen.New(prof, *seed)
	db := g.Database(*n)
	seqs := make([]blast.Sequence, len(db))
	for i, s := range db {
		seqs[i] = blast.Sequence{Name: fmt.Sprintf("%s_%06d", *profile, i), Residues: alphabet.String(s)}
	}
	if err := writeFASTA(*out, seqs); err != nil {
		fatalf("writing database: %v", err)
	}

	if *queries > 0 {
		qs := g.Queries(db, *queries, *qlen)
		qseqs := make([]blast.Sequence, len(qs))
		for i, q := range qs {
			qseqs[i] = blast.Sequence{Name: fmt.Sprintf("query_%04d", i), Residues: alphabet.String(q)}
		}
		if err := writeFASTA(*qout, qseqs); err != nil {
			fatalf("writing queries: %v", err)
		}
	}

	st := seqgen.Summarize(db)
	fmt.Fprintf(os.Stderr, "generated %d sequences (%d residues, median %d, mean %.0f)\n",
		st.Count, st.Total, st.Median, st.Mean)
}

func writeFASTA(path string, seqs []blast.Sequence) error {
	if path == "" {
		return blast.WriteFASTA(os.Stdout, seqs)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := blast.WriteFASTA(f, seqs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "genseq: "+format+"\n", args...)
	os.Exit(1)
}
