// Command experiments regenerates every table and figure of the paper's
// evaluation section (Section V) on synthetic, scaled-down workloads. See
// DESIGN.md for the per-experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured comparisons.
//
// Usage:
//
//	experiments                  # run everything at the default scale
//	experiments -exp fig9        # one experiment
//	experiments -scale small     # quick pass
//	experiments -markdown        # markdown tables (for EXPERIMENTS.md)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/obs/prof"
	"repro/internal/reqtrace"
)

type experiment struct {
	name string
	desc string
	run  func(bench.Scale) (*bench.Table, error)
}

var experiments = []experiment{
	{"fig2", "profile of query-indexed vs db-indexed NCBI", bench.Fig2},
	{"fig6", "hits remaining after pre-filtering", bench.Fig6},
	{"fig7", "sequence length distributions", bench.Fig7},
	{"fig8", "block-size sweep", bench.Fig8},
	{"fig9", "single-node engine comparison", bench.Fig9},
	{"fig10", "multi-node scaling vs mpiBLAST", bench.Fig10},
	{"sched", "barrier vs barrier-free batch scheduling", bench.SchedulerAblation},
	{"stage", "stage budget: per-stage time shares (+ -json emission)", runStage},
	{"index-size", "two-level vs expanded index size", bench.IndexSize},
	{"verify", "Section V-E output verification", bench.Verify},
	{"capsim", "capacity model: record, fit, predict vs measured overload", bench.CapacityValidation},
	{"ingest", "incremental ingest: delta append vs full rebuild, durable-to-durable", bench.IngestLatency},
	{"replay", "re-issue a recorded workload against a live daemon (-replay-target, -replay-workload)", runReplay},
}

// stageJSONPath is where the stage experiment writes its machine-readable
// report (-json flag); empty means table output only.
var stageJSONPath string

// Replay experiment inputs (-replay-* flags): the live daemon to load and
// the recorded workload (a -record JSONL file, or one from
// reqtrace.WriteRecordsFile) to re-issue with original inter-arrival timing.
var (
	replayTarget   string
	replayWorkload string
	replaySpeed    float64
)

func runReplay(bench.Scale) (*bench.Table, error) {
	if replayTarget == "" || replayWorkload == "" {
		return nil, fmt.Errorf("replay needs -replay-target (daemon base URL) and -replay-workload (record JSONL)")
	}
	recs, err := reqtrace.ReadRecordsFile(replayWorkload)
	if err != nil {
		return nil, err
	}
	res, err := reqtrace.Replay(context.Background(), reqtrace.ReplayConfig{
		Target: replayTarget, Speed: replaySpeed, Seed: 1,
	}, recs)
	if err != nil {
		return nil, err
	}
	ms := func(ns int64) string { return fmt.Sprintf("%.1f", float64(ns)/float64(time.Millisecond)) }
	t := &bench.Table{
		Title:   fmt.Sprintf("replay of %s against %s", replayWorkload, replayTarget),
		Columns: []string{"metric", "value"},
	}
	t.AddRow("requests", res.Sent)
	for _, oc := range []string{reqtrace.OutcomeOK, reqtrace.OutcomeShed, reqtrace.OutcomeTimeout,
		reqtrace.OutcomeRejected, reqtrace.OutcomeError} {
		if n := res.ByOutcome[oc]; n > 0 {
			t.AddRow(oc, n)
		}
	}
	t.AddRow("shed rate", fmt.Sprintf("%.3f", res.ShedRate()))
	t.AddRow("p50 ms", ms(res.LatencyQuantile(0.50)))
	t.AddRow("p95 ms", ms(res.LatencyQuantile(0.95)))
	t.AddRow("p99 ms", ms(res.LatencyQuantile(0.99)))
	t.AddRow("wall s", fmt.Sprintf("%.2f", float64(res.WallNS)/float64(time.Second)))
	speed := replaySpeed
	if speed <= 0 {
		speed = 1
	}
	t.Note("open-loop replay at %gx recorded pacing; latency quantiles over completed requests", speed)
	return t, nil
}

func runStage(s bench.Scale) (*bench.Table, error) {
	rep, err := bench.StageBudget(s)
	if err != nil {
		return nil, err
	}
	if stageJSONPath != "" {
		if err := rep.WriteJSON(stageJSONPath); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "  wrote %s\n", stageJSONPath)
	}
	return rep.Table(), nil
}

func main() {
	var (
		expName  = flag.String("exp", "all", "experiment: all, "+names())
		scale    = flag.String("scale", "default", "workload scale: small or default")
		batch    = flag.Int("batch", 0, "override queries per batch")
		seqs     = flag.Int("seqs", 0, "override database sequence counts")
		threads  = flag.Int("threads", 0, "override thread count")
		seed     = flag.Int64("seed", 0, "override generator seed")
		blockKB  = flag.Int64("block-kb", 0, "override index block size (KB; 0 = scaled L3 rule)")
		markdown = flag.Bool("markdown", false, "emit markdown tables")
		jsonOut  = flag.String("json", "", "write the stage experiment's report as JSON to this file")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile after the experiments to this file")
		rTarget  = flag.String("replay-target", "", "replay experiment: daemon base URL (e.g. http://127.0.0.1:8044)")
		rFile    = flag.String("replay-workload", "", "replay experiment: workload record JSONL (a daemon's -record output)")
		rSpeed   = flag.Float64("replay-speed", 1, "replay experiment: inter-arrival speedup (2 = twice as fast)")
	)
	flag.Parse()
	stageJSONPath = *jsonOut
	replayTarget, replayWorkload, replaySpeed = *rTarget, *rFile, *rSpeed

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		}
	}()

	s := bench.DefaultScale()
	if *scale == "small" {
		s = bench.SmallScale()
	}
	if *batch > 0 {
		s.Batch = *batch
	}
	if *seqs > 0 {
		s.UniprotSeqs, s.EnvNRSeqs = *seqs, *seqs*2
	}
	if *threads > 0 {
		s.Threads = *threads
	}
	if *seed != 0 {
		s.Seed = *seed
	}
	if *blockKB > 0 {
		s.BlockBytes = *blockKB << 10
	}

	ran := 0
	for _, e := range experiments {
		if *expName != "all" && *expName != e.name {
			continue
		}
		ran++
		fmt.Fprintf(os.Stderr, "running %s (%s)...\n", e.name, e.desc)
		start := time.Now()
		table, err := e.run(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "  done in %v\n", time.Since(start).Round(time.Millisecond))
		if *markdown {
			fmt.Println(table.Markdown())
		} else {
			fmt.Println(table.String())
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (want all, %s)\n", *expName, names())
		os.Exit(2)
	}
}

func names() string {
	out := make([]string, len(experiments))
	for i, e := range experiments {
		out[i] = e.name
	}
	return strings.Join(out, ", ")
}
