package ungapped

import (
	"testing"

	"repro/internal/alphabet"
	"repro/internal/matrix"
	"repro/internal/seqgen"
)

func enc(s string) []alphabet.Code { return alphabet.MustEncode(s) }

func TestExtendIdenticalSequences(t *testing.T) {
	q := enc("ARNDCQEGHILKMFPSTWYV")
	e := Extend(matrix.Blosum62, q, q, 8, 8, 16)
	// Identical sequences: the extension should cover everything.
	if e.QStart != 0 || e.QEnd != len(q) || e.SStart != 0 || e.SEnd != len(q) {
		t.Errorf("extension [%d,%d)x[%d,%d), want full cover", e.QStart, e.QEnd, e.SStart, e.SEnd)
	}
	want := matrix.Blosum62.SeqScore(q, q)
	if e.Score != want {
		t.Errorf("score %d, want %d", e.Score, want)
	}
}

func TestExtendStopsAtXDrop(t *testing.T) {
	// A strong seed surrounded by terrible matches: W vs C scores -2, and a
	// run of them exceeds any reasonable X-drop.
	q := enc("WWWWWWWWWW" + "HHH" + "WWWWWWWWWW")
	s := enc("CCCCCCCCCC" + "HHH" + "CCCCCCCCCC")
	e := Extend(matrix.Blosum62, q, s, 10, 10, 5)
	if e.QStart != 10 || e.QEnd != 13 {
		t.Errorf("extension [%d,%d), want exactly the seed [10,13)", e.QStart, e.QEnd)
	}
	if e.Score != 3*8 {
		t.Errorf("score %d, want %d (HHH)", e.Score, 24)
	}
}

func TestExtendRespectsSequenceBounds(t *testing.T) {
	q := enc("HHH")
	s := enc("AAHHHAA")
	e := Extend(matrix.Blosum62, q, s, 0, 2, 16)
	if e.QStart < 0 || e.QEnd > len(q) || e.SStart < 0 || e.SEnd > len(s) {
		t.Errorf("extension out of bounds: %+v", e)
	}
	if e.QStart != 0 || e.QEnd != 3 {
		t.Errorf("extension [%d,%d), want [0,3)", e.QStart, e.QEnd)
	}
}

func TestExtendDiagonalConsistency(t *testing.T) {
	g := seqgen.New(seqgen.UniprotProfile(), 5)
	q := g.Sequence(200)
	s := g.Sequence(300)
	for _, off := range []struct{ q, s int }{{0, 0}, {50, 80}, {197, 297}, {10, 0}, {0, 10}} {
		e := Extend(matrix.Blosum62, q, s, off.q, off.s, 16)
		if e.QEnd-e.QStart != e.SEnd-e.SStart {
			t.Errorf("offsets %v: extension lengths differ: %+v", off, e)
		}
		if e.QStart > off.q || e.QEnd < off.q+alphabet.W {
			t.Errorf("offsets %v: extension does not contain the seed word: %+v", off, e)
		}
		// Recomputing the score over the reported region must agree.
		want := 0
		for i := 0; i < e.QEnd-e.QStart; i++ {
			want += matrix.Blosum62.Score(q[e.QStart+i], s[e.SStart+i])
		}
		if want != e.Score {
			t.Errorf("offsets %v: reported score %d, recomputed %d", off, e.Score, want)
		}
	}
}

func TestExtendScoreNeverBelowSeedBest(t *testing.T) {
	// The extension score is at least the seed word score (left/right
	// extensions contribute >= 0 by construction).
	g := seqgen.New(seqgen.EnvNRProfile(), 6)
	q := g.Sequence(100)
	s := g.Sequence(100)
	for qo := 0; qo+alphabet.W <= len(q); qo += 7 {
		for so := 0; so+alphabet.W <= len(s); so += 13 {
			e := Extend(matrix.Blosum62, q, s, qo, so, 16)
			seed := 0
			for k := 0; k < alphabet.W; k++ {
				seed += matrix.Blosum62.Score(q[qo+k], s[so+k])
			}
			if e.Score < seed {
				t.Fatalf("extension score %d below seed score %d at (%d,%d)", e.Score, seed, qo, so)
			}
		}
	}
}

func TestCanonPairsWithinWindow(t *testing.T) {
	c := &Canon{P: Params{Window: 40, XDrop: 16, Trigger: 10000}, Matrix: matrix.Blosum62}
	q := enc("HHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHH")
	s := q
	var d DiagState
	d.Reset()
	// First hit never extends.
	if _, _, extended, _ := c.Step(&d, q, s, 0, 0); extended {
		t.Error("first hit extended")
	}
	// Second hit within window extends.
	if _, _, extended, _ := c.Step(&d, q, s, 10, 10); !extended {
		t.Error("paired hit did not extend")
	}
}

func TestCanonWindowBoundary(t *testing.T) {
	q := enc("HHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHH")
	c := &Canon{P: Params{Window: 10, XDrop: 16, Trigger: 10000}, Matrix: matrix.Blosum62}
	var d DiagState
	d.Reset()
	c.Step(&d, q, q, 0, 0)
	// Distance exactly equal to the window does NOT pair (strict <).
	if _, _, extended, _ := c.Step(&d, q, q, 10, 10); extended {
		t.Error("distance == window paired")
	}
	// But it becomes the new last hit: a hit 9 later pairs with it.
	if _, _, extended, _ := c.Step(&d, q, q, 19, 19); !extended {
		t.Error("hit within window of updated last hit did not pair")
	}
}

func TestCanonZeroDistanceDoesNotPair(t *testing.T) {
	q := enc("HHHHHHHHHH")
	c := &Canon{P: DefaultParams(), Matrix: matrix.Blosum62}
	var d DiagState
	d.Reset()
	c.Step(&d, q, q, 3, 3)
	if _, _, extended, _ := c.Step(&d, q, q, 3, 3); extended {
		t.Error("duplicate hit at the same offset paired with itself")
	}
}

func TestCanonSkipsCoveredHits(t *testing.T) {
	// Identical sequences: the first pair's extension covers everything, so
	// later pairs on the diagonal must be skipped.
	q := enc("HHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHHH")
	c := &Canon{P: Params{Window: 40, XDrop: 16, Trigger: 38}, Matrix: matrix.Blosum62}
	var d DiagState
	d.Reset()
	extCount := 0
	for off := 0; off+alphabet.W <= len(q); off += 4 {
		if _, _, extended, _ := c.Step(&d, q, q, off, off); extended {
			extCount++
		}
	}
	if extCount != 1 {
		t.Errorf("%d extensions on a fully-covered diagonal, want 1", extCount)
	}
}

func TestCanonKeepOnlyAboveTrigger(t *testing.T) {
	// Short seed on otherwise dissimilar sequences: extension score stays
	// small, keep must be false, and extReached advances only to the hit.
	q := enc("WWWWWWWWWWHHHWWWWWWWWWWHHHWWWWWWWWWW")
	s := enc("CCCCCCCCCCHHHCCCCCCCCCCHHHCCCCCCCCCC")
	c := &Canon{P: Params{Window: 40, XDrop: 5, Trigger: 38}, Matrix: matrix.Blosum62}
	var d DiagState
	d.Reset()
	c.Step(&d, q, s, 10, 10)
	ext, _, extended, keep := c.Step(&d, q, s, 23, 23)
	if !extended {
		t.Fatal("second hit did not extend")
	}
	if keep {
		t.Errorf("weak extension (score %d) kept", ext.Score)
	}
	if d.ExtReached != 23 {
		t.Errorf("extReached = %d, want hit offset 23", d.ExtReached)
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.Window != 40 || p.XDrop != 16 || p.Trigger != 38 {
		t.Errorf("DefaultParams = %+v", p)
	}
}
