package ungapped

import (
	"math/rand"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/matrix"
)

// randMatrix builds a random symmetric substitution matrix with scores in
// [-8, 11] — wider than BLOSUM62's range, so the equivalence property is
// exercised beyond the standard tables.
func randMatrix(t testing.TB, rng *rand.Rand) *matrix.Matrix {
	t.Helper()
	var table [alphabet.Size][alphabet.Size]int8
	for i := 0; i < alphabet.Size; i++ {
		for j := i; j < alphabet.Size; j++ {
			s := int8(rng.Intn(20) - 8)
			table[i][j], table[j][i] = s, s
		}
	}
	m, err := matrix.New("random", table)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func randSeq(rng *rand.Rand, n int) []alphabet.Code {
	s := make([]alphabet.Code, n)
	for i := range s {
		s[i] = alphabet.Code(rng.Intn(alphabet.Size))
	}
	return s
}

// TestExtendProfileEquivalence is the property pinning the packed branchless
// profile kernel to the reference: for random matrices, sequences, seed
// offsets, and X-drop values, ExtendProfile must return exactly the Ext that
// Extend returns. Every part of the packed-word restructuring — the
// tie-breaking low bits, the sentinel, the arithmetic-shift decode of
// negative running scores — is observable through some input here.
func TestExtendProfileEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 400; trial++ {
		m := randMatrix(t, rng)
		q := randSeq(rng, 4+rng.Intn(240))
		s := randSeq(rng, 4+rng.Intn(400))
		prof := matrix.NewProfile(m, q)
		xDrop := 1 + rng.Intn(40)
		for rep := 0; rep < 8; rep++ {
			qOff := rng.Intn(len(q) - alphabet.W + 1)
			sOff := rng.Intn(len(s) - alphabet.W + 1)
			want := Extend(m, q, s, qOff, sOff, xDrop)
			got := ExtendProfile(prof, s, qOff, sOff, xDrop)
			if got != want {
				t.Fatalf("trial %d: ExtendProfile(qOff=%d sOff=%d xDrop=%d) = %+v, Extend = %+v",
					trial, qOff, sOff, xDrop, got, want)
			}
		}
	}
}

// TestExtendProfileEdgeOffsets drives the kernel at the sequence boundaries,
// where one or both extension loops run zero iterations.
func TestExtendProfileEdgeOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	m := randMatrix(t, rng)
	for trial := 0; trial < 50; trial++ {
		q := randSeq(rng, alphabet.W+rng.Intn(8))
		s := randSeq(rng, alphabet.W+rng.Intn(8))
		prof := matrix.NewProfile(m, q)
		for qOff := 0; qOff+alphabet.W <= len(q); qOff++ {
			for sOff := 0; sOff+alphabet.W <= len(s); sOff++ {
				for _, xDrop := range []int{1, 5, 16} {
					want := Extend(m, q, s, qOff, sOff, xDrop)
					got := ExtendProfile(prof, s, qOff, sOff, xDrop)
					if got != want {
						t.Fatalf("qOff=%d sOff=%d xDrop=%d: %+v vs %+v", qOff, sOff, xDrop, got, want)
					}
				}
			}
		}
	}
}

// TestCanonDispatch pins Canon's kernel selection: with a profile attached
// and parameters inside the packed form's envelope it must produce the same
// extensions as the bare reference Canon, and outside the envelope (XDrop 0)
// it must fall back rather than run the packed form whose drop test needs a
// positive margin.
func TestCanonDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	m := randMatrix(t, rng)
	q := randSeq(rng, 120)
	s := randSeq(rng, 300)
	prof := matrix.NewProfile(m, q)
	for _, xDrop := range []int{0, 1, 16} {
		p := Params{Window: 40, XDrop: xDrop, Trigger: 20}
		ref := Canon{P: p, Matrix: m}
		fast := Canon{P: p, Matrix: m, Prof: prof}
		var dr, df DiagState
		dr.Reset()
		df.Reset()
		for i := 0; i < 200; i++ {
			qOff := rng.Intn(len(q) - alphabet.W + 1)
			sOff := rng.Intn(len(s) - alphabet.W + 1)
			er, pr, xr, kr := ref.Step(&dr, q, s, qOff, sOff)
			ef, pf, xf, kf := fast.Step(&df, q, s, qOff, sOff)
			if er != ef || pr != pf || xr != xf || kr != kf {
				t.Fatalf("xDrop=%d step %d: ref (%+v %v %v %v) vs prof (%+v %v %v %v)",
					xDrop, i, er, pr, xr, kr, ef, pf, xf, kf)
			}
		}
	}
}

// FuzzExtendEquivalence fuzzes the profile kernel against the reference:
// the fuzzer controls both sequences, the seed offsets, and the X-drop.
// Run under `make fuzz` for a fixed budget.
func FuzzExtendEquivalence(f *testing.F) {
	f.Add([]byte("MKVLAARTWQ"), []byte("MKVLHARTWQNDEC"), 2, 3, 16)
	f.Add([]byte("AAAAAAA"), []byte("AAAAAAAAAA"), 0, 0, 1)
	f.Add([]byte("WWWCCCHHHMMM"), []byte("WWWCCCHHHMMM"), 4, 4, 7)
	m := matrix.Blosum62
	f.Fuzz(func(t *testing.T, qb, sb []byte, qOff, sOff, xDrop int) {
		if len(qb) < alphabet.W || len(sb) < alphabet.W {
			return
		}
		if len(qb) > 2048 || len(sb) > 4096 {
			return
		}
		q := make([]alphabet.Code, len(qb))
		for i, b := range qb {
			q[i] = alphabet.Code(int(b) % alphabet.Size)
		}
		s := make([]alphabet.Code, len(sb))
		for i, b := range sb {
			s[i] = alphabet.Code(int(b) % alphabet.Size)
		}
		if qOff < 0 || qOff+alphabet.W > len(q) || sOff < 0 || sOff+alphabet.W > len(s) {
			return
		}
		if xDrop < 1 || xDrop > 1<<20 {
			return
		}
		prof := matrix.NewProfile(m, q)
		want := Extend(m, q, s, qOff, sOff, xDrop)
		got := ExtendProfile(prof, s, qOff, sOff, xDrop)
		if got != want {
			t.Fatalf("ExtendProfile(qOff=%d sOff=%d xDrop=%d) = %+v, Extend = %+v",
				qOff, sOff, xDrop, got, want)
		}
	})
}
