package ungapped

import (
	"math/rand"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/matrix"
)

// benchSeeds builds a deterministic workload shaped like the stage bench:
// one mid-length query, a long subject stream, and seed positions where the
// first word pair scores at least the two-hit threshold would plausibly ask.
func benchSeeds(tb testing.TB) (*matrix.Matrix, *matrix.Profile, []alphabet.Code, []alphabet.Code, [][2]int) {
	tb.Helper()
	m := matrix.Blosum62
	rng := rand.New(rand.NewSource(42))
	randSeq := func(n int) []alphabet.Code {
		s := make([]alphabet.Code, n)
		for i := range s {
			s[i] = alphabet.Code(rng.Intn(20))
		}
		return s
	}
	q := randSeq(300)
	s := randSeq(4096)
	prof := matrix.NewProfile(m, q)
	var seeds [][2]int
	for len(seeds) < 512 {
		qOff := 1 + rng.Intn(len(q)-alphabet.W-1)
		sOff := 1 + rng.Intn(len(s)-alphabet.W-1)
		seeds = append(seeds, [2]int{qOff, sOff})
	}
	return m, prof, q, s, seeds
}

// BenchmarkUngappedExtend pits the profile kernel against the matrix-indexed
// reference on the same seed set; the profile path must also be allocation
// free (pinned by TestUngappedExtendZeroAlloc).
func BenchmarkUngappedExtend(b *testing.B) {
	m, prof, q, s, seeds := benchSeeds(b)
	const xDrop = 20

	b.Run("profile", func(b *testing.B) {
		b.ReportAllocs()
		sink := 0
		for i := 0; i < b.N; i++ {
			sd := seeds[i%len(seeds)]
			sink += ExtendProfile(prof, s, sd[0], sd[1], xDrop).Score
		}
		benchSink = sink
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		sink := 0
		for i := 0; i < b.N; i++ {
			sd := seeds[i%len(seeds)]
			sink += Extend(m, q, s, sd[0], sd[1], xDrop).Score
		}
		benchSink = sink
	})
}

var benchSink int

// TestUngappedExtendZeroAlloc pins the profile kernel's zero-allocation
// contract: the decoupled pipeline calls it tens of millions of times per
// batch and any per-call allocation would dominate the stage budget.
func TestUngappedExtendZeroAlloc(t *testing.T) {
	_, prof, _, s, seeds := benchSeeds(t)
	allocs := testing.AllocsPerRun(100, func() {
		for _, sd := range seeds[:32] {
			ExtendProfile(prof, s, sd[0], sd[1], 20)
		}
	})
	if allocs != 0 {
		t.Fatalf("ExtendProfile allocated %.1f times per run; want 0", allocs)
	}
}
