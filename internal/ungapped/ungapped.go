// Package ungapped implements BLAST's two-hit ungapped extension stage
// (Section II-A): given two word hits close together on the same diagonal,
// extend outward from the second hit in both directions without gaps,
// stopping when the running score drops more than XDrop below the best seen.
//
// The same Extend kernel and the same two-hit semantics (Canon) are used by
// every pipeline in this repository — query-indexed, db-indexed interleaved,
// and muBLASTP — which is what makes the Section V-E verification (identical
// outputs at every stage) hold by construction.
package ungapped

import (
	"repro/internal/alphabet"
	"repro/internal/matrix"
)

// Params controls hit-pair selection and extension.
type Params struct {
	// Window is the two-hit window A: a pair of hits on one diagonal
	// triggers extension only if their distance is positive and below this
	// (BLASTP default 40).
	Window int
	// XDrop stops extension when the running score falls this far below
	// the best score seen (raw score units; BLASTP default ~16 raw for
	// the 7-bit ungapped X-drop under BLOSUM62).
	XDrop int
	// Trigger is the raw score an ungapped alignment needs to be kept and
	// handed to the gapped stage (Algorithm 1's thresholdT; ~38 raw
	// approximates NCBI's 22-bit gapped trigger).
	Trigger int
	// OneHit switches to BLAST's one-hit algorithm: every hit triggers an
	// extension attempt instead of requiring a second hit in the window.
	// More sensitive and much slower; NCBI pairs it with a higher neighbor
	// threshold (T=13 vs 11).
	OneHit bool
}

// DefaultParams returns the BLASTP-default two-hit parameters.
func DefaultParams() Params { return Params{Window: 40, XDrop: 16, Trigger: 38} }

// Ext is one ungapped alignment (half-open coordinates).
type Ext struct {
	Score  int
	QStart int
	QEnd   int
	SStart int
	SEnd   int
}

// Extend runs the two-directional ungapped extension seeded at the word hit
// (qOff, sOff): the W seed residues always belong to the alignment, the left
// extension walks from qOff-1 toward the sequence starts, and the right
// extension from qOff+W toward the ends, each keeping its best prefix under
// the X-drop rule.
func Extend(m *matrix.Matrix, q, s []alphabet.Code, qOff, sOff, xDrop int) Ext {
	// Seed word score.
	word := 0
	for k := 0; k < alphabet.W; k++ {
		word += m.Score(q[qOff+k], s[sOff+k])
	}
	// Left extension.
	leftBest, cum := 0, 0
	qStart := qOff
	for i, j := qOff-1, sOff-1; i >= 0 && j >= 0; i, j = i-1, j-1 {
		cum += m.Score(q[i], s[j])
		if cum > leftBest {
			leftBest = cum
			qStart = i
		} else if cum <= leftBest-xDrop {
			break
		}
	}
	// Right extension.
	rightBest, cum := 0, 0
	qEnd := qOff + alphabet.W
	for i, j := qOff+alphabet.W, sOff+alphabet.W; i < len(q) && j < len(s); i, j = i+1, j+1 {
		cum += m.Score(q[i], s[j])
		if cum > rightBest {
			rightBest = cum
			qEnd = i + 1
		} else if cum <= rightBest-xDrop {
			break
		}
	}
	return Ext{
		Score:  leftBest + word + rightBest,
		QStart: qStart,
		QEnd:   qEnd,
		SStart: qStart - qOff + sOff,
		SEnd:   qEnd - qOff + sOff,
	}
}

// ExtendProfile is Extend rewritten around a query profile (flattened PSSM,
// see matrix.Profile): scoring a cell is one slice index off the subject
// residue, the query is never reloaded inside the loops, and the X-drop test
// runs without the reference kernel's else-branch. It returns exactly the
// Ext that Extend(m, q, s, qOff, sOff, xDrop) returns for the matrix the
// profile was built from, for any xDrop >= 1 and query length < 0xFFFF (the
// branch restructuring — best score and best position packed into one
// max-updated word, drop test against its high bits — needs a strictly
// positive drop margin and a position that fits 16 bits; Canon falls back to
// Extend otherwise, and the equivalence property tests pin both paths).
func ExtendProfile(p *matrix.Profile, s []alphabet.Code, qOff, sOff, xDrop int) Ext {
	rows := p.Scores
	qLen := p.QLen

	// Seed word score: rows qOff..qOff+W-1 against the seed subject residues.
	base := qOff * alphabet.Size
	word := int(rows[base+int(s[sOff])]) +
		int(rows[base+alphabet.Size+int(s[sOff+1])]) +
		int(rows[base+2*alphabet.Size+int(s[sOff+2])])

	// Left extension: walk k = 1..n with q[qOff-k] vs s[sOff-k], iterated as
	// i = n-1..0 over the subject window sl (sl[i] == s[sOff-n+i], k == n-i)
	// so the slice access is provably in bounds; only the profile access
	// keeps its check.
	n := qOff
	if sOff < n {
		n = sOff
	}
	sl := s[sOff-n : sOff]
	base = (qOff - 1) * alphabet.Size
	// The running best is one packed word, max-updated every step: score in
	// the high bits, i+1 in the low 16 so that score ties resolve to the
	// earliest position — exactly the reference's strict-greater update. The
	// single max compiles to a conditional move, leaving the X-drop exit as
	// the loop's only branch; on real hit streams the best-update branch is
	// unpredictable and this is the difference between ~135ns and ~95ns per
	// extension. Requires positions < 0xFFFF and |score| < 2^47; Canon.extend
	// guards the query length.
	bestPacked := int64(0xFFFF)
	cum := 0
	for i := len(sl) - 1; i >= 0; i-- {
		cum += int(rows[base+int(sl[i])])
		base -= alphabet.Size
		packed := int64(cum)<<16 + int64(i+1)
		if packed > bestPacked {
			bestPacked = packed
		}
		if cum <= int(bestPacked>>16)-xDrop {
			break
		}
	}
	leftBest := int(bestPacked >> 16)
	leftK := 0
	if low := int(bestPacked & 0xFFFF); low != 0xFFFF {
		leftK = n + 1 - low
	}

	// Right extension: q[qOff+W+k] vs s[sOff+W+k] for k = 0..n-1.
	n = qLen - qOff - alphabet.W
	if m := len(s) - sOff - alphabet.W; m < n {
		n = m
	}
	sr := s[sOff+alphabet.W : sOff+alphabet.W+n]
	base = (qOff + alphabet.W) * alphabet.Size
	bestPacked = int64(0xFFFF)
	cum = 0
	for k, c := range sr {
		cum += int(rows[base+int(c)])
		base += alphabet.Size
		packed := int64(cum)<<16 + int64(n-k) // decreasing in k: ties keep the earlier k
		if packed > bestPacked {
			bestPacked = packed
		}
		if cum <= int(bestPacked>>16)-xDrop {
			break
		}
	}
	rightBest := int(bestPacked >> 16)
	rightK := 0
	if low := int(bestPacked & 0xFFFF); low != 0xFFFF {
		rightK = n + 1 - low
	}

	qStart := qOff - leftK
	qEnd := qOff + alphabet.W + rightK
	return Ext{
		Score:  leftBest + word + rightBest,
		QStart: qStart,
		QEnd:   qEnd,
		SStart: qStart - qOff + sOff,
		SEnd:   qEnd - qOff + sOff,
	}
}

// Canon is the canonical per-diagonal two-hit state machine. Every pipeline
// feeds it the hits of one (subject sequence, diagonal) in increasing query
// offset and gets back the identical sequence of extensions, whether the
// pipeline interleaves stages (NCBI, NCBI-db) or batches them (muBLASTP).
//
// Semantics (Algorithm 1 lines 5–25):
//
//   - a hit pairs with the previous hit on the diagonal when their distance
//     is in (0, Window);
//   - a pair whose second hit is already covered by the previous extension
//     on the diagonal (extReached > qOff) is skipped;
//   - after an extension scoring above Trigger, the diagonal's reached
//     position advances to the extension end; otherwise to the hit offset.
type Canon struct {
	P      Params
	Matrix *matrix.Matrix
	// Prof, when non-nil, must be the query profile of the q every Extend*
	// call receives; extensions then run the profile kernel (ExtendProfile)
	// instead of the matrix-indexed reference. Output is identical either
	// way — the fast path is an implementation choice, not a semantic one.
	Prof *matrix.Profile
}

// extend dispatches one ungapped extension to the profile kernel when a
// profile is attached and the parameters permit the packed branchless form
// (strictly positive X-drop margin, query offset fits 16 bits), falling
// back to the reference kernel otherwise.
func (c *Canon) extend(q, s []alphabet.Code, qOff, sOff int) Ext {
	if c.Prof != nil && c.P.XDrop >= 1 && c.Prof.QLen < 0xFFFF {
		return ExtendProfile(c.Prof, s, qOff, sOff, c.P.XDrop)
	}
	return Extend(c.Matrix, q, s, qOff, sOff, c.P.XDrop)
}

// DiagState is the per-diagonal state: the last hit offset seen (for
// pairing) and the furthest query position reached by an extension.
type DiagState struct {
	LastPos    int32 // query offset of the previous hit; -1 if none
	ExtReached int32 // query offset up to which extensions have covered; -1 if none
}

// Reset prepares the state for a new diagonal.
func (d *DiagState) Reset() { d.LastPos, d.ExtReached = -1, -1 }

// PairCheck processes one hit's two-hit test on the diagonal: it reports
// whether the hit pairs with the previous hit (distance in (0, Window)) and
// advances the diagonal's last-hit position. This is exactly what the
// muBLASTP pre-filter computes during hit detection (Algorithm 2).
func (c *Canon) PairCheck(d *DiagState, qOff int) bool {
	if c.P.OneHit {
		d.LastPos = int32(qOff)
		return true
	}
	dist := int32(qOff) - d.LastPos
	paired := d.LastPos >= 0 && dist > 0 && int(dist) < c.P.Window
	d.LastPos = int32(qOff)
	return paired
}

// ExtendPair processes one *paired* hit in the extension stage: skipped if
// covered by the previous extension on the diagonal, otherwise extended.
// keep reports whether the extension met the Trigger score. This is
// Algorithm 1 lines 15–25, shared verbatim between the interleaved and
// decoupled pipelines.
func (c *Canon) ExtendPair(d *DiagState, q, s []alphabet.Code, qOff, sOff int) (ext Ext, extended, keep bool) {
	if d.ExtReached > int32(qOff) {
		return Ext{}, false, false // covered by a previous extension
	}
	ext = c.extend(q, s, qOff, sOff)
	if ext.Score > c.P.Trigger {
		d.ExtReached = int32(ext.QEnd)
		return ext, true, true
	}
	d.ExtReached = int32(qOff)
	return ext, true, false
}

// Step processes one hit at query offset qOff / subject offset sOff on the
// diagonal with state d, running the pair check and (when it passes) the
// extension-stage logic — the interleaved execution of the NCBI pipelines.
// paired reports the two-hit test outcome, extended whether an extension
// ran, keep whether it met the Trigger score.
func (c *Canon) Step(d *DiagState, q, s []alphabet.Code, qOff, sOff int) (ext Ext, paired, extended, keep bool) {
	if !c.PairCheck(d, qOff) {
		return Ext{}, false, false, false
	}
	ext, extended, keep = c.ExtendPair(d, q, s, qOff, sOff)
	return ext, true, extended, keep
}
