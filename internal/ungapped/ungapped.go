// Package ungapped implements BLAST's two-hit ungapped extension stage
// (Section II-A): given two word hits close together on the same diagonal,
// extend outward from the second hit in both directions without gaps,
// stopping when the running score drops more than XDrop below the best seen.
//
// The same Extend kernel and the same two-hit semantics (Canon) are used by
// every pipeline in this repository — query-indexed, db-indexed interleaved,
// and muBLASTP — which is what makes the Section V-E verification (identical
// outputs at every stage) hold by construction.
package ungapped

import (
	"repro/internal/alphabet"
	"repro/internal/matrix"
)

// Params controls hit-pair selection and extension.
type Params struct {
	// Window is the two-hit window A: a pair of hits on one diagonal
	// triggers extension only if their distance is positive and below this
	// (BLASTP default 40).
	Window int
	// XDrop stops extension when the running score falls this far below
	// the best score seen (raw score units; BLASTP default ~16 raw for
	// the 7-bit ungapped X-drop under BLOSUM62).
	XDrop int
	// Trigger is the raw score an ungapped alignment needs to be kept and
	// handed to the gapped stage (Algorithm 1's thresholdT; ~38 raw
	// approximates NCBI's 22-bit gapped trigger).
	Trigger int
	// OneHit switches to BLAST's one-hit algorithm: every hit triggers an
	// extension attempt instead of requiring a second hit in the window.
	// More sensitive and much slower; NCBI pairs it with a higher neighbor
	// threshold (T=13 vs 11).
	OneHit bool
}

// DefaultParams returns the BLASTP-default two-hit parameters.
func DefaultParams() Params { return Params{Window: 40, XDrop: 16, Trigger: 38} }

// Ext is one ungapped alignment (half-open coordinates).
type Ext struct {
	Score  int
	QStart int
	QEnd   int
	SStart int
	SEnd   int
}

// Extend runs the two-directional ungapped extension seeded at the word hit
// (qOff, sOff): the W seed residues always belong to the alignment, the left
// extension walks from qOff-1 toward the sequence starts, and the right
// extension from qOff+W toward the ends, each keeping its best prefix under
// the X-drop rule.
func Extend(m *matrix.Matrix, q, s []alphabet.Code, qOff, sOff, xDrop int) Ext {
	// Seed word score.
	word := 0
	for k := 0; k < alphabet.W; k++ {
		word += m.Score(q[qOff+k], s[sOff+k])
	}
	// Left extension.
	leftBest, cum := 0, 0
	qStart := qOff
	for i, j := qOff-1, sOff-1; i >= 0 && j >= 0; i, j = i-1, j-1 {
		cum += m.Score(q[i], s[j])
		if cum > leftBest {
			leftBest = cum
			qStart = i
		} else if cum <= leftBest-xDrop {
			break
		}
	}
	// Right extension.
	rightBest, cum := 0, 0
	qEnd := qOff + alphabet.W
	for i, j := qOff+alphabet.W, sOff+alphabet.W; i < len(q) && j < len(s); i, j = i+1, j+1 {
		cum += m.Score(q[i], s[j])
		if cum > rightBest {
			rightBest = cum
			qEnd = i + 1
		} else if cum <= rightBest-xDrop {
			break
		}
	}
	return Ext{
		Score:  leftBest + word + rightBest,
		QStart: qStart,
		QEnd:   qEnd,
		SStart: qStart - qOff + sOff,
		SEnd:   qEnd - qOff + sOff,
	}
}

// Canon is the canonical per-diagonal two-hit state machine. Every pipeline
// feeds it the hits of one (subject sequence, diagonal) in increasing query
// offset and gets back the identical sequence of extensions, whether the
// pipeline interleaves stages (NCBI, NCBI-db) or batches them (muBLASTP).
//
// Semantics (Algorithm 1 lines 5–25):
//
//   - a hit pairs with the previous hit on the diagonal when their distance
//     is in (0, Window);
//   - a pair whose second hit is already covered by the previous extension
//     on the diagonal (extReached > qOff) is skipped;
//   - after an extension scoring above Trigger, the diagonal's reached
//     position advances to the extension end; otherwise to the hit offset.
type Canon struct {
	P      Params
	Matrix *matrix.Matrix
}

// DiagState is the per-diagonal state: the last hit offset seen (for
// pairing) and the furthest query position reached by an extension.
type DiagState struct {
	LastPos    int32 // query offset of the previous hit; -1 if none
	ExtReached int32 // query offset up to which extensions have covered; -1 if none
}

// Reset prepares the state for a new diagonal.
func (d *DiagState) Reset() { d.LastPos, d.ExtReached = -1, -1 }

// PairCheck processes one hit's two-hit test on the diagonal: it reports
// whether the hit pairs with the previous hit (distance in (0, Window)) and
// advances the diagonal's last-hit position. This is exactly what the
// muBLASTP pre-filter computes during hit detection (Algorithm 2).
func (c *Canon) PairCheck(d *DiagState, qOff int) bool {
	if c.P.OneHit {
		d.LastPos = int32(qOff)
		return true
	}
	dist := int32(qOff) - d.LastPos
	paired := d.LastPos >= 0 && dist > 0 && int(dist) < c.P.Window
	d.LastPos = int32(qOff)
	return paired
}

// ExtendPair processes one *paired* hit in the extension stage: skipped if
// covered by the previous extension on the diagonal, otherwise extended.
// keep reports whether the extension met the Trigger score. This is
// Algorithm 1 lines 15–25, shared verbatim between the interleaved and
// decoupled pipelines.
func (c *Canon) ExtendPair(d *DiagState, q, s []alphabet.Code, qOff, sOff int) (ext Ext, extended, keep bool) {
	if d.ExtReached > int32(qOff) {
		return Ext{}, false, false // covered by a previous extension
	}
	ext = Extend(c.Matrix, q, s, qOff, sOff, c.P.XDrop)
	if ext.Score > c.P.Trigger {
		d.ExtReached = int32(ext.QEnd)
		return ext, true, true
	}
	d.ExtReached = int32(qOff)
	return ext, true, false
}

// Step processes one hit at query offset qOff / subject offset sOff on the
// diagonal with state d, running the pair check and (when it passes) the
// extension-stage logic — the interleaved execution of the NCBI pipelines.
// paired reports the two-hit test outcome, extended whether an extension
// ran, keep whether it met the Trigger score.
func (c *Canon) Step(d *DiagState, q, s []alphabet.Code, qOff, sOff int) (ext Ext, paired, extended, keep bool) {
	if !c.PairCheck(d, qOff) {
		return Ext{}, false, false, false
	}
	ext, extended, keep = c.ExtendPair(d, q, s, qOff, sOff)
	return ext, true, extended, keep
}
