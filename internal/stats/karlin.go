// Package stats implements Karlin–Altschul statistics for local alignment
// scores: the λ, K, H parameters, bit scores, and E-values that BLAST uses
// to rank and report alignments.
//
// λ is computed from the scoring matrix and background residue frequencies
// by solving sum_ij p_i p_j exp(λ s_ij) = 1 with Newton/bisection, exactly
// as the NCBI toolkit does for ungapped scoring systems. For gapped scoring
// systems no analytic solution exists, so (like BLAST itself) we use
// pre-computed constants for the supported matrix/gap-penalty combinations.
package stats

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/alphabet"
	"repro/internal/matrix"
)

// Params bundles the Karlin–Altschul parameters of a scoring system.
type Params struct {
	Lambda float64 // scale of the scoring system
	K      float64 // search-space size correction
	H      float64 // relative entropy (bits of information per aligned pair)
}

// Robinson–Robinson background amino-acid frequencies, the standard BLAST
// background model, indexed by alphabet code. The ambiguity codes B, Z, X
// and '*' have zero background probability.
var RobinsonFreqs = [alphabet.Size]float64{
	0.07805,    // A
	0.05129,    // R
	0.04487,    // N
	0.05364,    // D
	0.01925,    // C
	0.04264,    // Q
	0.06295,    // E
	0.07377,    // G
	0.02199,    // H
	0.05142,    // I
	0.09019,    // L
	0.05744,    // K
	0.02243,    // M
	0.03856,    // F
	0.05203,    // P
	0.07120,    // S
	0.05841,    // T
	0.01330,    // W
	0.03216,    // Y
	0.06441,    // V
	0, 0, 0, 0, // B Z X *
}

// ErrNoSolution is returned when λ cannot be computed, which happens when
// the expected score of the system is non-negative (no local-alignment
// statistics exist for such systems).
var ErrNoSolution = errors.New("stats: scoring system has non-negative expected score; lambda undefined")

// UngappedParams computes λ, K and H for an ungapped scoring system given a
// substitution matrix and background frequencies. Frequencies must sum to ~1.
func UngappedParams(m *matrix.Matrix, freqs *[alphabet.Size]float64) (Params, error) {
	lambda, err := solveLambda(m, freqs)
	if err != nil {
		return Params{}, err
	}
	h := entropyH(m, freqs, lambda)
	k, err := karlinK(m, freqs, lambda, h)
	if err != nil {
		return Params{}, err
	}
	return Params{Lambda: lambda, K: k, H: h}, nil
}

// solveLambda finds λ > 0 with sum p_i p_j e^{λ s_ij} = 1 by bisection on
// f(λ) = sum p_i p_j e^{λ s_ij} - 1, which is convex with f(0) = 0 and a
// single positive root when the expected score is negative.
func solveLambda(m *matrix.Matrix, freqs *[alphabet.Size]float64) (float64, error) {
	f := func(lambda float64) float64 {
		s := 0.0
		for i := 0; i < alphabet.Size; i++ {
			pi := freqs[i]
			if pi == 0 {
				continue
			}
			for j := 0; j < alphabet.Size; j++ {
				pj := freqs[j]
				if pj == 0 {
					continue
				}
				s += pi * pj * math.Exp(lambda*float64(m.Score(alphabet.Code(i), alphabet.Code(j))))
			}
		}
		return s - 1
	}
	// Expected score must be negative for a root to exist.
	exp := 0.0
	for i := 0; i < alphabet.Size; i++ {
		for j := 0; j < alphabet.Size; j++ {
			exp += freqs[i] * freqs[j] * float64(m.Score(alphabet.Code(i), alphabet.Code(j)))
		}
	}
	if exp >= 0 {
		return 0, ErrNoSolution
	}
	// Bracket the root: f is negative just above 0 and grows without bound.
	lo, hi := 1e-6, 1.0
	for f(hi) < 0 {
		hi *= 2
		if hi > 1e3 {
			return 0, fmt.Errorf("stats: failed to bracket lambda for %s", m.Name)
		}
	}
	for iter := 0; iter < 200 && hi-lo > 1e-12; iter++ {
		mid := (lo + hi) / 2
		if f(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// entropyH computes the relative entropy H = λ sum p_i p_j s_ij e^{λ s_ij},
// in nats per aligned pair.
func entropyH(m *matrix.Matrix, freqs *[alphabet.Size]float64, lambda float64) float64 {
	h := 0.0
	for i := 0; i < alphabet.Size; i++ {
		pi := freqs[i]
		if pi == 0 {
			continue
		}
		for j := 0; j < alphabet.Size; j++ {
			pj := freqs[j]
			if pj == 0 {
				continue
			}
			s := float64(m.Score(alphabet.Code(i), alphabet.Code(j)))
			h += pi * pj * s * math.Exp(lambda*s)
		}
	}
	return lambda * h
}

// karlinK computes K using the geometric-like approximation
// K ≈ H / (λ · E[s²-weighted span]) refined via the standard
// Karlin–Altschul series truncation. For the matrices used here this agrees
// with the published constants to within a few percent, which is sufficient
// because E-values are used for *ranking* and thresholding at coarse scales.
func karlinK(m *matrix.Matrix, freqs *[alphabet.Size]float64, lambda, h float64) (float64, error) {
	// Score distribution over a single aligned pair.
	lo, hi := m.Min(), m.Max()
	probs := make([]float64, hi-lo+1)
	for i := 0; i < alphabet.Size; i++ {
		pi := freqs[i]
		if pi == 0 {
			continue
		}
		for j := 0; j < alphabet.Size; j++ {
			pj := freqs[j]
			if pj == 0 {
				continue
			}
			probs[m.Score(alphabet.Code(i), alphabet.Code(j))-lo] += pi * pj
		}
	}
	// Renormalize to guard against tiny drift in the frequency table.
	total := 0.0
	for _, p := range probs {
		total += p
	}
	for i := range probs {
		probs[i] /= total
	}
	return karlinKFromDist(probs, lo, lambda, h)
}

// karlinKFromDist implements the series computation of K from a single-step
// score distribution, following Karlin & Altschul (1990) as implemented in
// the NCBI toolkit (BlastKarlinLHtoK), using the first maxIter terms of the
// sum over random-walk path lengths.
func karlinKFromDist(probs []float64, lo int, lambda, h float64) (float64, error) {
	if h <= 0 || lambda <= 0 {
		return 0, ErrNoSolution
	}
	hi := lo + len(probs) - 1
	const maxIter = 40
	// P[k] is the distribution of the sum of k i.i.d. step scores; we build
	// it iteratively by convolution.
	sumLo, sumHi := 0, 0
	cur := []float64{1} // distribution of the empty sum: point mass at 0
	curLo := 0
	sigma := 0.0
	expMinusLambda := math.Exp(-lambda)
	for k := 1; k <= maxIter; k++ {
		next := make([]float64, len(cur)+len(probs)-1)
		for i, p := range cur {
			if p == 0 {
				continue
			}
			for j, q := range probs {
				next[i+j] += p * q
			}
		}
		cur = next
		curLo += lo
		sumLo, sumHi = curLo, curLo+len(cur)-1
		// Contribution of paths of length k: sum over negative final sums of
		// P_k(s) e^{λ s} plus the probability of non-positive... Following
		// the NCBI computation: sigma += (1/k) * (sum_{s<0} P_k(s) e^{λ s}
		// + sum_{s>=0} P_k(s) ... ) — the standard form uses
		// sum_{s} P_k(s) * min(1, e^{λ s}).
		term := 0.0
		for i, p := range cur {
			if p == 0 {
				continue
			}
			s := sumLo + i
			if s < 0 {
				term += p * math.Exp(lambda*float64(s))
			} else {
				term += p
			}
		}
		sigma += term / float64(k)
	}
	_ = sumHi
	// K = (gcd factor omitted; our matrices have score gcd 1)
	//   λ · exp(-2σ) / (H · (1 - e^{-λ}))
	k := lambda * math.Exp(-2*sigma) / (h * (1 - expMinusLambda))
	if math.IsNaN(k) || k <= 0 {
		return 0, fmt.Errorf("stats: K computation failed (lambda=%g H=%g)", lambda, h)
	}
	_ = hi
	return k, nil
}

// Gapped constants for supported scoring systems, from the NCBI toolkit's
// precomputed tables (blastkar.c). Keyed by matrix name and gap penalties.
type gapKey struct {
	name         string
	open, extend int
}

var gappedTable = map[gapKey]Params{
	{"BLOSUM62", 11, 1}: {Lambda: 0.267, K: 0.041, H: 0.14},
	{"BLOSUM62", 10, 1}: {Lambda: 0.243, K: 0.035, H: 0.12},
	{"BLOSUM62", 9, 2}:  {Lambda: 0.279, K: 0.058, H: 0.19},
	{"BLOSUM50", 13, 2}: {Lambda: 0.232, K: 0.057, H: 0.11},
	{"PAM250", 14, 2}:   {Lambda: 0.169, K: 0.032, H: 0.063},
}

// GappedParams returns the precomputed gapped Karlin–Altschul parameters for
// a matrix and affine gap penalties, or an error for unsupported combinations.
func GappedParams(m *matrix.Matrix, gapOpen, gapExtend int) (Params, error) {
	p, ok := gappedTable[gapKey{m.Name, gapOpen, gapExtend}]
	if !ok {
		return Params{}, fmt.Errorf("stats: no gapped parameters for %s open=%d extend=%d",
			m.Name, gapOpen, gapExtend)
	}
	return p, nil
}

// BitScore converts a raw alignment score to a normalized bit score:
// S' = (λS - ln K) / ln 2.
func (p Params) BitScore(raw int) float64 {
	return (p.Lambda*float64(raw) - math.Log(p.K)) / math.Ln2
}

// EValue returns the expected number of alignments scoring at least raw in a
// search with the given effective query and database lengths:
// E = K m n e^{-λS}.
func (p Params) EValue(raw int, queryLen, dbLen int64) float64 {
	return p.K * float64(queryLen) * float64(dbLen) * math.Exp(-p.Lambda*float64(raw))
}

// RawScoreForEValue returns the minimum raw score whose E-value is at most e
// in the given search space — the cutoff BLAST uses for reporting.
func (p Params) RawScoreForEValue(e float64, queryLen, dbLen int64) int {
	// Solve K m n e^{-λS} <= e for S.
	s := math.Log(p.K*float64(queryLen)*float64(dbLen)/e) / p.Lambda
	return int(math.Ceil(s))
}

// EffectiveLengths applies the BLAST length adjustment: the expected HSP
// length l = ln(K m n)/H is subtracted from both query and database lengths
// (floored at 1) to correct for edge effects.
func (p Params) EffectiveLengths(queryLen int64, dbLen int64, dbSeqs int64) (int64, int64) {
	if queryLen <= 0 || dbLen <= 0 {
		return max64(queryLen, 1), max64(dbLen, 1)
	}
	l := int64(math.Log(p.K*float64(queryLen)*float64(dbLen)) / p.H)
	effQ := queryLen - l
	if effQ < 1 {
		effQ = 1
	}
	effDB := dbLen - dbSeqs*l
	if effDB < 1 {
		effDB = 1
	}
	return effQ, effDB
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
