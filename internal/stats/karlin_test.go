package stats

import (
	"math"
	"testing"

	"repro/internal/matrix"
)

func TestRobinsonFreqsSumToOne(t *testing.T) {
	sum := 0.0
	for _, f := range RobinsonFreqs {
		sum += f
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Errorf("Robinson frequencies sum to %g, want ~1", sum)
	}
}

func TestUngappedBlosum62MatchesPublished(t *testing.T) {
	// Published ungapped BLOSUM62 values: lambda ~ 0.3176, K ~ 0.134, H ~ 0.40.
	p, err := UngappedParams(matrix.Blosum62, &RobinsonFreqs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Lambda-0.3176) > 0.005 {
		t.Errorf("lambda = %g, want ~0.3176", p.Lambda)
	}
	if math.Abs(p.K-0.134) > 0.02 {
		t.Errorf("K = %g, want ~0.134", p.K)
	}
	if math.Abs(p.H-0.40) > 0.04 {
		t.Errorf("H = %g, want ~0.40", p.H)
	}
}

func TestUngappedBlosum50(t *testing.T) {
	// Published ungapped BLOSUM50: lambda ~ 0.232, K ~ 0.11, H ~ 0.34.
	p, err := UngappedParams(matrix.Blosum50, &RobinsonFreqs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Lambda-0.232) > 0.005 {
		t.Errorf("lambda = %g, want ~0.232", p.Lambda)
	}
	if p.K < 0.05 || p.K > 0.2 {
		t.Errorf("K = %g, want ~0.11", p.K)
	}
}

func TestGappedParamsLookup(t *testing.T) {
	p, err := GappedParams(matrix.Blosum62, 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Lambda != 0.267 || p.K != 0.041 {
		t.Errorf("gapped BLOSUM62 11/1 = %+v, want lambda 0.267 K 0.041", p)
	}
	if _, err := GappedParams(matrix.Blosum62, 5, 5); err == nil {
		t.Error("GappedParams accepted unsupported penalties")
	}
}

func TestBitScoreMonotonic(t *testing.T) {
	p := Params{Lambda: 0.267, K: 0.041, H: 0.14}
	if p.BitScore(100) <= p.BitScore(50) {
		t.Error("bit score not monotonic in raw score")
	}
	// Known conversion: raw 100 with lambda .267, K .041:
	// (0.267*100 - ln 0.041)/ln2 = (26.7 + 3.194)/0.6931 ~ 43.1 bits.
	if got := p.BitScore(100); math.Abs(got-43.1) > 0.2 {
		t.Errorf("BitScore(100) = %g, want ~43.1", got)
	}
}

func TestEValueScalesWithSearchSpace(t *testing.T) {
	p := Params{Lambda: 0.267, K: 0.041, H: 0.14}
	e1 := p.EValue(80, 100, 1_000_000)
	e2 := p.EValue(80, 100, 2_000_000)
	if math.Abs(e2/e1-2) > 1e-9 {
		t.Errorf("E-value did not double with database size: %g vs %g", e1, e2)
	}
	if p.EValue(200, 100, 1_000_000) >= e1 {
		t.Error("E-value not decreasing in score")
	}
}

func TestRawScoreForEValueInverts(t *testing.T) {
	p := Params{Lambda: 0.267, K: 0.041, H: 0.14}
	for _, e := range []float64{10, 1, 1e-3, 1e-10} {
		s := p.RawScoreForEValue(e, 256, 50_000_000)
		if got := p.EValue(s, 256, 50_000_000); got > e*1.0001 {
			t.Errorf("cutoff %d for E=%g has E-value %g > %g", s, e, got, e)
		}
		if got := p.EValue(s-1, 256, 50_000_000); got < e {
			t.Errorf("cutoff %d is not minimal for E=%g (s-1 gives %g)", s, e, got)
		}
	}
}

func TestEffectiveLengths(t *testing.T) {
	p := Params{Lambda: 0.267, K: 0.041, H: 0.14}
	effQ, effDB := p.EffectiveLengths(256, 50_000_000, 100_000)
	if effQ >= 256 || effQ < 1 {
		t.Errorf("effective query length %d not in [1,256)", effQ)
	}
	if effDB >= 50_000_000 || effDB < 1 {
		t.Errorf("effective db length %d not reduced", effDB)
	}
	// Degenerate inputs must not panic and must stay positive.
	effQ, effDB = p.EffectiveLengths(0, 0, 0)
	if effQ < 1 || effDB < 1 {
		t.Errorf("degenerate effective lengths %d, %d", effQ, effDB)
	}
	// Tiny search spaces must not go negative.
	effQ, effDB = p.EffectiveLengths(10, 50, 5)
	if effQ < 1 || effDB < 1 {
		t.Errorf("tiny search space effective lengths %d, %d", effQ, effDB)
	}
}

func TestUniformFrequenciesStillSolvable(t *testing.T) {
	var uniform [24]float64
	for i := 0; i < 20; i++ {
		uniform[i] = 1.0 / 20
	}
	p, err := UngappedParams(matrix.Blosum62, &uniform)
	if err != nil {
		t.Fatal(err)
	}
	if p.Lambda <= 0 || p.K <= 0 || p.H <= 0 {
		t.Errorf("uniform params non-positive: %+v", p)
	}
}
