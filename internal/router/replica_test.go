package router

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/blast"
	"repro/internal/obs"
)

// healthStub is a stubWorker with a toggleable health probe.
type healthStub struct {
	stubWorker
	down   atomic.Bool
	served atomic.Int64
}

func (w *healthStub) HealthCheck(context.Context) error {
	if w.down.Load() {
		return errors.New("probe: down")
	}
	return nil
}

func newTestReplica(w Worker, cfg ResilienceConfig) (*replica, *obs.RouterMetrics) {
	met := obs.NewRouterMetrics(obs.NewRegistry())
	var ej atomic.Int64
	return newReplica(w, cfg.withDefaults(), met, &ej, 1), met
}

// TestBreakerConsecutiveTrip: N consecutive request-path failures open the
// breaker; the cooldown admits exactly one half-open trial, and the trial's
// outcome decides reopen vs close.
func TestBreakerConsecutiveTrip(t *testing.T) {
	r, met := newTestReplica(&stubWorker{name: "w"}, ResilienceConfig{
		BreakerFailures: 3, BreakerCooldown: 20 * time.Millisecond,
	})
	now := time.Now()
	for i := 0; i < 2; i++ {
		r.onResult(outcomeFail)
		if !r.eligibleHint(now) {
			t.Fatalf("breaker tripped after %d failures, threshold is 3", i+1)
		}
	}
	r.onResult(outcomeFail)
	if r.eligibleHint(time.Now()) {
		t.Fatal("breaker still admits traffic after 3 consecutive failures")
	}
	if met.BreakerOpens.Value() != 1 {
		t.Fatalf("BreakerOpens = %d, want 1", met.BreakerOpens.Value())
	}
	if st := r.snapshot(); st.Breaker != "open" {
		t.Fatalf("snapshot breaker %q, want open", st.Breaker)
	}

	// Past the cooldown exactly one trial gets through.
	later := time.Now().Add(25 * time.Millisecond)
	if !r.tryAcquire(later) {
		t.Fatal("cooldown elapsed but the trial was refused")
	}
	if r.tryAcquire(later) {
		t.Fatal("second concurrent half-open trial admitted")
	}
	// Trial fails: reopen, nothing admitted before the next cooldown.
	r.onResult(outcomeFail)
	if met.BreakerOpens.Value() != 2 {
		t.Fatalf("BreakerOpens = %d after a failed trial, want 2", met.BreakerOpens.Value())
	}
	if r.eligibleHint(time.Now()) {
		t.Fatal("breaker admits traffic right after a failed trial")
	}

	// Next trial succeeds: closed, traffic flows.
	again := time.Now().Add(25 * time.Millisecond)
	if !r.tryAcquire(again) {
		t.Fatal("post-reopen trial refused after cooldown")
	}
	r.onResult(outcomeOK)
	if met.BreakerCloses.Value() != 1 {
		t.Fatalf("BreakerCloses = %d, want 1", met.BreakerCloses.Value())
	}
	if !r.eligibleHint(time.Now()) || !r.tryAcquire(time.Now()) {
		t.Fatal("closed breaker must admit traffic freely")
	}
}

// TestBreakerErrorRateTrip: an error rate over the outcome window trips the
// breaker even without a consecutive run.
func TestBreakerErrorRateTrip(t *testing.T) {
	r, met := newTestReplica(&stubWorker{name: "w"}, ResilienceConfig{
		BreakerFailures: 100, BreakerWindow: 4, BreakerErrorRate: 0.5,
	})
	for _, o := range []int{outcomeOK, outcomeFail, outcomeOK, outcomeFail} {
		r.onResult(o)
	}
	if r.eligibleHint(time.Now()) {
		t.Fatal("breaker ignored a 50% failure rate over a full window")
	}
	if met.BreakerOpens.Value() != 1 {
		t.Fatalf("BreakerOpens = %d, want 1", met.BreakerOpens.Value())
	}
}

// TestBreakerShedsAndCancelsAreNeutral pins the overload firewall: replica
// backpressure (sheds) and cancelled attempts must never trip the breaker —
// ejecting a replica *because* it is protecting itself would convert overload
// into capacity loss.
func TestBreakerShedsAndCancelsAreNeutral(t *testing.T) {
	r, met := newTestReplica(&stubWorker{name: "w"}, ResilienceConfig{BreakerFailures: 2, BreakerWindow: 4})
	for i := 0; i < 20; i++ {
		r.onResult(outcomeShed)
		r.onResult(outcomeNeutral)
	}
	if !r.eligibleHint(time.Now()) {
		t.Fatal("sheds/cancels tripped the breaker")
	}
	if met.BreakerOpens.Value() != 0 {
		t.Fatalf("BreakerOpens = %d, want 0", met.BreakerOpens.Value())
	}
}

// TestEjectionReadmissionBackoff drives one replica's probe lifecycle with a
// synthetic clock: ejection on the first failed probe, readmission probes on
// a doubling capped backoff whose jitter never lands later than the nominal
// bound, and a clean breaker on readmission.
func TestEjectionReadmissionBackoff(t *testing.T) {
	w := &healthStub{stubWorker: stubWorker{name: "w"}}
	met := obs.NewRouterMetrics(obs.NewRegistry())
	var ej atomic.Int64
	cfg := ResilienceConfig{ReadmitBackoff: 100 * time.Millisecond, ReadmitBackoffMax: 150 * time.Millisecond}.withDefaults()
	r := newReplica(w, cfg, met, &ej, 1)
	ctx := context.Background()
	now := time.Now()

	w.down.Store(true)
	r.probe(ctx, now)
	if r.healthy() {
		t.Fatal("failed probe did not eject")
	}
	if met.Ejections.Value() != 1 || ej.Load() != 1 {
		t.Fatalf("ejections = %d / count %d, want 1/1", met.Ejections.Value(), ej.Load())
	}
	r.mu.Lock()
	next := r.nextProbe
	r.mu.Unlock()
	if next.Before(now.Add(50*time.Millisecond)) || next.After(now.Add(100*time.Millisecond)) {
		t.Fatalf("first readmission probe at +%v, want within [backoff/2, backoff] = [50ms, 100ms]", next.Sub(now))
	}

	// Before nextProbe the probe is a no-op (no extra ejection counted).
	r.probe(ctx, now.Add(40*time.Millisecond))
	if met.Ejections.Value() != 1 {
		t.Fatal("early re-probe re-ejected an already ejected replica")
	}

	// Still down at the scheduled probe: backoff doubles, capped at the max.
	r.probe(ctx, now.Add(100*time.Millisecond))
	r.mu.Lock()
	backoff := r.backoff
	r.mu.Unlock()
	if backoff != 150*time.Millisecond {
		t.Fatalf("backoff after second failure = %v, want the 150ms cap", backoff)
	}

	// Recovery: the probe on schedule readmits with a reset breaker.
	w.down.Store(false)
	r.onResult(outcomeFail) // stale failure while ejected must not survive readmission
	r.probe(ctx, now.Add(300*time.Millisecond))
	if !r.healthy() {
		t.Fatal("recovered probe did not readmit")
	}
	if met.Readmissions.Value() != 1 || ej.Load() != 0 {
		t.Fatalf("readmissions = %d / count %d, want 1/0", met.Readmissions.Value(), ej.Load())
	}
	if st := r.snapshot(); st.Breaker != "closed" {
		t.Fatalf("breaker %q after readmission, want closed (reset)", st.Breaker)
	}
}

// countingDelegate wraps a real shard search and counts invocations.
func countingDelegate(name string, sd *blast.Database) *healthStub {
	w := &healthStub{}
	w.stubWorker = stubWorker{name: name, search: func(ctx context.Context, queries []string, shard, numShards int) (*blast.ShardResult, error) {
		w.served.Add(1)
		return sd.SearchShardBatchCtx(ctx, queries, shard, numShards)
	}}
	return w
}

// TestReplicaFlapConvergence is the satellite-4 pin, run under -race by `make
// race`: a replica whose probe flaps is never selected while ejected, the
// fleet keeps serving complete results from the survivor, and once the probe
// recovers the replica re-enters rotation within the readmission backoff
// bound.
func TestReplicaFlapConvergence(t *testing.T) {
	_, shards, queries := fixture(t)
	a := countingDelegate("a", shards[0])
	b := countingDelegate("b", shards[0])
	rt, err := New([][]Worker{{a, b}}, Options{
		Registry: obs.NewRegistry(),
		Resilience: ResilienceConfig{
			ProbeInterval:  2 * time.Millisecond,
			ReadmitBackoff: 10 * time.Millisecond, ReadmitBackoffMax: 40 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Close()

	waitState := func(wantEjected bool, within time.Duration, what string) {
		t.Helper()
		deadline := time.Now().Add(within)
		for {
			if rt.ReplicaStates()[0][1].Ejected == wantEjected {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica b did not become ejected=%v within %v (%s)", wantEjected, within, what)
			}
			time.Sleep(time.Millisecond)
		}
	}

	b.down.Store(true)
	waitState(true, 2*time.Second, "ejection after probe failure")

	// While ejected, b must never be selected; every search still completes
	// from a alone.
	b.served.Store(0)
	for i := 0; i < 30; i++ {
		br, rep, err := rt.Search(context.Background(), queries[:1], "")
		if err != nil {
			t.Fatalf("search %d with one replica ejected: %v", i, err)
		}
		if rep.Sheds() != 0 || rep.Failed() != 0 || !br.Completed[0] {
			t.Fatalf("search %d degraded despite a healthy survivor: %+v", i, rep.Shards)
		}
	}
	if n := b.served.Load(); n != 0 {
		t.Fatalf("ejected replica served %d searches; ejection must remove it from rotation", n)
	}

	// Recovery: readmission within the backoff bound (jitter never exceeds
	// the nominal backoff, so max-backoff plus a probe interval plus generous
	// scheduler slack bounds convergence).
	b.down.Store(false)
	waitState(false, 2*time.Second, "readmission after probe recovery")

	// Back in rotation: round-robin reaches b again.
	for i := 0; i < 10 && b.served.Load() == 0; i++ {
		if _, _, err := rt.Search(context.Background(), queries[:1], PolicyRoundRobin); err != nil {
			t.Fatal(err)
		}
	}
	if b.served.Load() == 0 {
		t.Fatal("readmitted replica never selected again")
	}
}

// TestRetryBudgetBoundsAttempts: with every replica failing, one request
// spends exactly primary + budget attempts on a shard, then stops with the
// budget-dry metric stamped — bounded amplification under correlated failure.
func TestRetryBudgetBoundsAttempts(t *testing.T) {
	_, _, queries := fixture(t)
	boom := func(name string) Worker {
		return &stubWorker{name: name, search: func(context.Context, []string, int, int) (*blast.ShardResult, error) {
			return nil, errors.New("replica down")
		}}
	}
	rt, err := New([][]Worker{{boom("a"), boom("b"), boom("c")}}, Options{
		Registry: obs.NewRegistry(),
		Resilience: ResilienceConfig{
			ProbeInterval: -1, BreakerFailures: -1,
			RetryBudget: 2, RetryBackoff: time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := rt.Search(context.Background(), queries, "")
	if !errors.Is(err, ErrAllShardsUnavailable) {
		t.Fatalf("err %v, want ErrAllShardsUnavailable", err)
	}
	if got := rep.Shards[0].Attempts; got != 3 {
		t.Fatalf("attempts = %d, want 3 (primary + budget of 2)", got)
	}
	if got := rt.met.Retries.Value(); got != 2 {
		t.Fatalf("Retries = %d, want 2", got)
	}
	if rt.met.RetryBudgetDry.Value() == 0 {
		t.Fatal("budget exhaustion not stamped in RetryBudgetDry")
	}
	if got := rt.met.ShardSearches.Value(); got != 3 {
		t.Fatalf("ShardSearches = %d, want 3", got)
	}
}

// TestRetryBudgetSharedAcrossShards: the budget is per request, not per
// shard — total attempts across a multi-shard scatter stay within fanout +
// budget no matter how the shards race for it.
func TestRetryBudgetSharedAcrossShards(t *testing.T) {
	_, _, queries := fixture(t)
	boom := func(name string) Worker {
		return &stubWorker{name: name, search: func(context.Context, []string, int, int) (*blast.ShardResult, error) {
			return nil, errors.New("replica down")
		}}
	}
	rt, err := New([][]Worker{
		{boom("a0"), boom("a1"), boom("a2")},
		{boom("b0"), boom("b1"), boom("b2")},
	}, Options{
		Registry: obs.NewRegistry(),
		Resilience: ResilienceConfig{
			ProbeInterval: -1, BreakerFailures: -1,
			RetryBudget: 2, RetryBackoff: time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, rep, _ := rt.Search(context.Background(), queries, "")
	total := 0
	for _, st := range rep.Shards {
		total += st.Attempts
	}
	if total > 4 {
		t.Fatalf("total attempts %d exceed fanout 2 + budget 2", total)
	}
	if total < 2 {
		t.Fatalf("total attempts %d below fanout; every shard gets its primary", total)
	}
}

// TestShedRetriesOnlyOnDifferentReplica pins the anti-amplification rule: a
// shed is retried only where different capacity exists — re-asking the
// replica that just declared itself saturated would feed the overload.
func TestShedRetriesOnlyOnDifferentReplica(t *testing.T) {
	_, shards, queries := fixture(t)

	t.Run("sole replica: shed stands, no retry", func(t *testing.T) {
		var calls atomic.Int64
		busy := &stubWorker{name: "busy", search: func(context.Context, []string, int, int) (*blast.ShardResult, error) {
			calls.Add(1)
			return nil, &BusyError{Worker: "busy", RetryAfter: 7 * time.Second}
		}}
		rt, err := New([][]Worker{{busy}}, Options{Registry: obs.NewRegistry(),
			Resilience: ResilienceConfig{ProbeInterval: -1, RetryBudget: 2, RetryBackoff: time.Millisecond}})
		if err != nil {
			t.Fatal(err)
		}
		_, rep, err := rt.Search(context.Background(), queries, "")
		if !errors.Is(err, ErrAllShardsUnavailable) {
			t.Fatalf("err %v, want ErrAllShardsUnavailable", err)
		}
		if calls.Load() != 1 || rep.Shards[0].Attempts != 1 {
			t.Fatalf("saturated sole replica asked %d times (attempts %d), want exactly 1", calls.Load(), rep.Shards[0].Attempts)
		}
		if !rep.Shards[0].Shed || rep.RetryAfter != 7*time.Second {
			t.Fatalf("shed outcome lost: %+v", rep.Shards[0])
		}
	})

	t.Run("second replica: shed retried there", func(t *testing.T) {
		busy := &stubWorker{name: "busy", search: func(context.Context, []string, int, int) (*blast.ShardResult, error) {
			return nil, &BusyError{Worker: "busy", RetryAfter: time.Second}
		}}
		rt, err := New([][]Worker{{busy, delegate("ok", shards[0])}}, Options{Registry: obs.NewRegistry(),
			Resilience: ResilienceConfig{ProbeInterval: -1, RetryBudget: 2, RetryBackoff: time.Millisecond}})
		if err != nil {
			t.Fatal(err)
		}
		br, rep, err := rt.Search(context.Background(), queries, PolicyRoundRobin)
		if err != nil {
			t.Fatal(err)
		}
		st := rep.Shards[0]
		if !st.OK || st.Worker != "ok" || st.Attempts != 2 {
			t.Fatalf("shed not recovered on the second replica: %+v", st)
		}
		if !br.Completed[0] {
			t.Fatal("retry succeeded but the query stayed incomplete")
		}
		if rt.met.Retries.Value() != 1 {
			t.Fatalf("Retries = %d, want 1", rt.met.Retries.Value())
		}
	})
}

// TestFailureRetriesSameSoleReplica: a transient failure (unlike a shed) may
// re-try the only replica — there is no overload to amplify.
func TestFailureRetriesSameSoleReplica(t *testing.T) {
	_, shards, queries := fixture(t)
	var calls atomic.Int64
	flaky := &stubWorker{name: "flaky", search: func(ctx context.Context, qs []string, shard, numShards int) (*blast.ShardResult, error) {
		if calls.Add(1) <= 2 {
			return nil, errors.New("transient")
		}
		return shards[0].SearchShardBatchCtx(ctx, qs, shard, numShards)
	}}
	rt, err := New([][]Worker{{flaky}}, Options{Registry: obs.NewRegistry(),
		Resilience: ResilienceConfig{ProbeInterval: -1, RetryBudget: 2, RetryBackoff: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	br, rep, err := rt.Search(context.Background(), queries, "")
	if err != nil {
		t.Fatal(err)
	}
	if st := rep.Shards[0]; !st.OK || st.Attempts != 3 {
		t.Fatalf("flaky sole replica: %+v, want OK after 3 attempts", st)
	}
	if !br.Completed[0] {
		t.Fatal("recovered retry left the query incomplete")
	}
}

// TestHedgeFiresAndWins: with hedging on and a latency profile primed, a
// primary outliving the shard's hedge delay gets a second attempt on the
// other replica; the fast answer wins, the loser is cancelled, and the
// result is the usual complete merge.
func TestHedgeFiresAndWins(t *testing.T) {
	_, shards, queries := fixture(t)
	slow := &stubWorker{name: "slow", search: func(ctx context.Context, qs []string, shard, numShards int) (*blast.ShardResult, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Second):
			return shards[0].SearchShardBatchCtx(ctx, qs, shard, numShards)
		}
	}}
	rt, err := New([][]Worker{{slow, delegate("fast", shards[0])}}, Options{Registry: obs.NewRegistry(),
		Resilience: ResilienceConfig{
			ProbeInterval: -1, RetryBudget: 2,
			Hedge: true, HedgeMinDelay: 5 * time.Millisecond,
		}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < latMinSamples; i++ {
		rt.lat[0].add(int64(time.Millisecond))
	}
	br, rep, err := rt.Search(context.Background(), queries, PolicyRoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Shards[0]
	if !st.OK || st.Worker != "fast" || st.Attempts != 2 {
		t.Fatalf("hedge did not win: %+v", st)
	}
	if !br.Completed[0] {
		t.Fatal("hedged shard result incomplete")
	}
	if rt.met.HedgesFired.Value() != 1 || rt.met.HedgesWon.Value() != 1 {
		t.Fatalf("hedges fired/won = %d/%d, want 1/1", rt.met.HedgesFired.Value(), rt.met.HedgesWon.Value())
	}
}

// TestHedgeNeedsLatencySignal: without latMinSamples of history the hedge
// never fires — a blind hedge would spend the retry budget on guesses.
func TestHedgeNeedsLatencySignal(t *testing.T) {
	_, shards, queries := fixture(t)
	rt, err := New([][]Worker{{delegate("a", shards[0]), delegate("b", shards[0])}},
		Options{Registry: obs.NewRegistry(),
			Resilience: ResilienceConfig{ProbeInterval: -1, Hedge: true, HedgeMinDelay: time.Nanosecond}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rt.Search(context.Background(), queries, ""); err != nil {
		t.Fatal(err)
	}
	if rt.met.HedgesFired.Value() != 0 {
		t.Fatalf("hedge fired with %d latency samples, gate is %d", 1, latMinSamples)
	}
}

// TestLocalWorkerAdaptiveRetryAfter pins the satellite-2 hint formula: base x
// (1 + streak/concurrency), capped at 8x, reset on an admitted search.
func TestLocalWorkerAdaptiveRetryAfter(t *testing.T) {
	_, shards, queries := fixture(t)
	w := NewLocalWorker("w", blast.NewSession(shards[0], blast.DefaultParams()), 2, 1, time.Second)
	if got := w.RetryAfterHint(); got != time.Second {
		t.Fatalf("hint with no streak = %v, want the 1s base", got)
	}
	w.shedStreak.Store(2)
	if got := w.RetryAfterHint(); got != 2*time.Second {
		t.Fatalf("hint at streak 2 over concurrency 2 = %v, want 2s", got)
	}
	w.shedStreak.Store(5)
	if got := w.RetryAfterHint(); got != 3500*time.Millisecond {
		t.Fatalf("hint at streak 5 over concurrency 2 = %v, want 3.5s", got)
	}
	w.shedStreak.Store(1000)
	if got := w.RetryAfterHint(); got != 8*time.Second {
		t.Fatalf("hint under a huge streak = %v, want the 8x cap", got)
	}
	// An admitted search resets the streak, so recovery snaps the hint back.
	if _, err := w.Search(context.Background(), queries[:1], 0, 3); err != nil {
		t.Fatal(err)
	}
	if got := w.RetryAfterHint(); got != time.Second {
		t.Fatalf("hint after an admitted search = %v, want the base again", got)
	}
}

// reloadStub is a Worker with a scriptable Reloader surface.
type reloadStub struct {
	stubWorker
	verifyErr error
	swapErr   error
	calls     []string // "verify:<path>" / "swap:<path>" in order
}

func (w *reloadStub) ReloadContainer(_ context.Context, path string, verifyOnly bool) error {
	if verifyOnly {
		w.calls = append(w.calls, "verify:"+path)
		return w.verifyErr
	}
	w.calls = append(w.calls, "swap:"+path)
	return w.swapErr
}

func newReloadStub(name string) *reloadStub {
	return &reloadStub{stubWorker: stubWorker{name: name}}
}

// TestRollingReload covers the orchestrator: verify-before-swap per replica,
// a failed verify skipping the swap, non-reloadable workers failing their
// entry, and the rest of the fleet still rolling.
func TestRollingReload(t *testing.T) {
	a0, a1 := newReloadStub("a0"), newReloadStub("a1")
	b0 := newReloadStub("b0")
	b0.verifyErr = errors.New("corrupt candidate")
	b1 := newReloadStub("b1")
	rt, err := New([][]Worker{{a0, a1}, {b0, b1}}, Options{Registry: obs.NewRegistry(),
		Resilience: ResilienceConfig{ProbeInterval: -1}})
	if err != nil {
		t.Fatal(err)
	}
	resp := rt.RollingReload(context.Background(), []string{"newA", "newB"}, false)
	if resp.OK {
		t.Fatal("roll reported OK despite b0's failed verify")
	}
	if len(resp.Replicas) != 4 {
		t.Fatalf("%d replica entries, want 4", len(resp.Replicas))
	}
	for _, w := range []*reloadStub{a0, a1} {
		want := []string{"verify:newA", "swap:newA"}
		if len(w.calls) != 2 || w.calls[0] != want[0] || w.calls[1] != want[1] {
			t.Fatalf("%s calls %v, want %v (verify strictly before swap)", w.name, w.calls, want)
		}
	}
	if len(b0.calls) != 1 || b0.calls[0] != "verify:newB" {
		t.Fatalf("b0 calls %v: a failed verify must never swap", b0.calls)
	}
	if len(b1.calls) != 2 {
		t.Fatalf("b1 calls %v: one replica's failure must not stop the roll", b1.calls)
	}
	var b0Entry *ReplicaReloadWire
	for i := range resp.Replicas {
		if resp.Replicas[i].Worker == "b0" {
			b0Entry = &resp.Replicas[i]
		}
	}
	if b0Entry == nil || b0Entry.OK || b0Entry.Error == "" {
		t.Fatalf("b0 entry %+v, want a failed entry carrying the verify error", b0Entry)
	}
}

// TestRollingReloadSpares LastHealthyReplica: the orchestrator refuses to
// swap a shard's only healthy replica — a reload gone wrong there would take
// the whole shard out — unless forced.
func TestRollingReloadLastHealthyReplica(t *testing.T) {
	sole := newReloadStub("sole")
	rt, err := New([][]Worker{{sole}}, Options{Registry: obs.NewRegistry(),
		Resilience: ResilienceConfig{ProbeInterval: -1}})
	if err != nil {
		t.Fatal(err)
	}
	resp := rt.RollingReload(context.Background(), []string{"new"}, false)
	if resp.OK || len(sole.calls) != 1 || sole.calls[0] != "verify:new" {
		t.Fatalf("last healthy replica swapped without force: ok=%v calls=%v", resp.OK, sole.calls)
	}
	resp = rt.RollingReload(context.Background(), []string{"new"}, true)
	if !resp.OK || len(sole.calls) != 3 || sole.calls[2] != "swap:new" {
		t.Fatalf("forced roll: ok=%v calls=%v, want the swap to run", resp.OK, sole.calls)
	}
}

// TestRollingReloadNonReloadable: a worker without the Reloader surface fails
// its entry instead of being silently skipped.
func TestRollingReloadNonReloadable(t *testing.T) {
	plain := &stubWorker{name: "plain"}
	rt, err := New([][]Worker{{plain, newReloadStub("rl")}}, Options{Registry: obs.NewRegistry(),
		Resilience: ResilienceConfig{ProbeInterval: -1}})
	if err != nil {
		t.Fatal(err)
	}
	resp := rt.RollingReload(context.Background(), []string{"new"}, false)
	if resp.OK {
		t.Fatal("roll OK despite a non-reloadable worker")
	}
	if resp.Replicas[0].OK || resp.Replicas[0].Error == "" {
		t.Fatalf("non-reloadable entry %+v, want a failure", resp.Replicas[0])
	}
	if !resp.Replicas[1].OK {
		t.Fatalf("reloadable peer %+v, want rolled", resp.Replicas[1])
	}
}

// TestReadyzRequiresEveryShardServable is the satellite-3 pin: killing every
// replica of one shard flips the frontend's /readyz to 503 (the fleet cannot
// answer a full scatter), and recovery flips it back.
func TestReadyzRequiresEveryShardServable(t *testing.T) {
	_, shards, _ := fixture(t)
	good := countingDelegate("good", shards[0])
	bad0 := countingDelegate("bad0", shards[1])
	bad1 := countingDelegate("bad1", shards[1])
	rt, err := New([][]Worker{{good}, {bad0, bad1}}, Options{Registry: obs.NewRegistry(),
		Resilience: ResilienceConfig{ProbeInterval: -1, ReadmitBackoff: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	fe := NewFrontend(rt, FrontendConfig{Registry: obs.NewRegistry()})
	h := fe.Handler()
	getReady := func() int {
		req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code
	}
	if code := getReady(); code != http.StatusOK {
		t.Fatalf("/readyz = %d on a healthy fleet, want 200", code)
	}

	// Kill both replicas of shard 1; one probe cycle ejects them.
	bad0.down.Store(true)
	bad1.down.Store(true)
	rt.probeAll(context.Background(), time.Now())
	if err := rt.HealthErr(); err == nil || !strings.Contains(err.Error(), "[1]") {
		t.Fatalf("HealthErr = %v, want an error naming shard 1", err)
	}
	if code := getReady(); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d with shard 1 starved, want 503", code)
	}
	// Shard 0 still healthy: the starved shard, not the fleet, is the problem.
	if rt.HealthyReplicas(0) != 1 || rt.HealthyReplicas(1) != 0 {
		t.Fatalf("healthy replicas %d/%d, want 1/0", rt.HealthyReplicas(0), rt.HealthyReplicas(1))
	}

	// One replica recovering is enough to serve scatters again.
	bad0.down.Store(false)
	rt.probeAll(context.Background(), time.Now().Add(time.Second))
	if err := rt.HealthErr(); err != nil {
		t.Fatalf("HealthErr after recovery: %v", err)
	}
	if code := getReady(); code != http.StatusOK {
		t.Fatalf("/readyz = %d after recovery, want 200", code)
	}
}
