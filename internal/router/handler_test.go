package router

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/blast"
	"repro/internal/obs"
	"repro/internal/server"
)

func postSearch(t *testing.T, h http.Handler, body any) *httptest.ResponseRecorder {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/search", bytes.NewReader(raw))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func searchBody(queries []string, policy string) server.SearchRequest {
	req := server.SearchRequest{Policy: policy}
	for i, q := range queries {
		req.Queries = append(req.Queries, server.QueryInput{Name: "q" + string(rune('0'+i)), Residues: q})
	}
	return req
}

// TestFrontendMatchesMonolithicWire: the sharded /search response must carry
// the same hits as a direct monolithic search — the HTTP analogue of the
// merge invariant.
func TestFrontendMatchesMonolithicWire(t *testing.T) {
	db, shards, queries := fixture(t)
	mono, err := db.SearchBatchCtx(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(localWorkers(shards, 2), Options{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	fe := NewFrontend(rt, FrontendConfig{Registry: obs.NewRegistry()})
	rec := postSearch(t, fe.Handler(), searchBody(queries, PolicyLeastLoad))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Incomplete || resp.Policy != PolicyLeastLoad || len(resp.Shards) != 3 {
		t.Fatalf("response header wrong: incomplete=%v policy=%q shards=%d", resp.Incomplete, resp.Policy, len(resp.Shards))
	}
	for _, st := range resp.Shards {
		if st.Status != "ok" {
			t.Fatalf("shard %d status %q: %s", st.Shard, st.Status, st.Error)
		}
	}
	for qi := range queries {
		if !resp.Results[qi].Completed {
			t.Fatalf("query %d incomplete", qi)
		}
		if len(resp.Results[qi].Hits) != len(mono.Results[qi].Hits) {
			t.Fatalf("query %d: %d hits on the wire, monolithic %d", qi, len(resp.Results[qi].Hits), len(mono.Results[qi].Hits))
		}
		for j, h := range mono.Results[qi].Hits {
			if resp.Results[qi].Hits[j] != server.HitFromBlast(h) {
				t.Fatalf("query %d hit %d differs:\n got  %+v\n want %+v", qi, j, resp.Results[qi].Hits[j], server.HitFromBlast(h))
			}
		}
	}
}

// TestFrontendPartialShedForwardsRetryAfter pins the scatter-path
// backpressure contract: one shed shard means 200 with honest incomplete
// queries and the shed's Retry-After forwarded — not a silent zero-hit
// merge, not a full refusal.
func TestFrontendPartialShedForwardsRetryAfter(t *testing.T) {
	_, shards, queries := fixture(t)
	busy := &stubWorker{name: "busy", search: func(context.Context, []string, int, int) (*blast.ShardResult, error) {
		return nil, &BusyError{Worker: "busy", RetryAfter: 7 * 1e9}
	}}
	rt, err := New([][]Worker{{delegate("s0", shards[0])}, {busy}, {delegate("s2", shards[2])}},
		Options{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	fe := NewFrontend(rt, FrontendConfig{Registry: obs.NewRegistry()})
	rec := postSearch(t, fe.Handler(), searchBody(queries, ""))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After %q, want the shed's hint 7", got)
	}
	var resp SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Incomplete {
		t.Fatal("response not marked incomplete despite a shed shard")
	}
	if resp.Shards[1].Status != "shed" {
		t.Fatalf("shard 1 status %q, want shed", resp.Shards[1].Status)
	}
	for qi := range resp.Results {
		if resp.Results[qi].Completed || len(resp.Results[qi].Hits) != 0 {
			t.Fatalf("query %d pretends completeness under a shed shard: %+v", qi, resp.Results[qi])
		}
		if resp.Results[qi].Error == "" {
			t.Fatalf("query %d incomplete without an error", qi)
		}
	}
}

// TestFrontendAllShed429: every shard shedding is a 429 with the aggregated
// Retry-After, mirroring the monolithic daemon's queue-full shed.
func TestFrontendAllShed429(t *testing.T) {
	_, _, queries := fixture(t)
	mk := func(name string, after time.Duration) Worker {
		return &stubWorker{name: name, search: func(context.Context, []string, int, int) (*blast.ShardResult, error) {
			return nil, &BusyError{Worker: name, RetryAfter: after}
		}}
	}
	rt, err := New([][]Worker{{mk("a", 2e9)}, {mk("b", 5e9)}}, Options{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	fe := NewFrontend(rt, FrontendConfig{Registry: obs.NewRegistry()})
	rec := postSearch(t, fe.Handler(), searchBody(queries, ""))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("Retry-After"); got != "5" {
		t.Fatalf("Retry-After %q, want the aggregated hint 5", got)
	}
}

// TestFrontendValidation: malformed requests are refused before any shard
// work.
func TestFrontendValidation(t *testing.T) {
	_, shards, queries := fixture(t)
	rt, err := New(localWorkers(shards, 1), Options{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	fe := NewFrontend(rt, FrontendConfig{MaxQueries: 2, Registry: obs.NewRegistry()})
	h := fe.Handler()

	if rec := postSearch(t, h, searchBody(nil, "")); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", rec.Code)
	}
	if rec := postSearch(t, h, searchBody([]string{"MKT4!"}, "")); rec.Code != http.StatusBadRequest {
		t.Fatalf("invalid residues: status %d", rec.Code)
	}
	if rec := postSearch(t, h, searchBody(queries[:1], "bogus")); rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown policy: status %d", rec.Code)
	}
	if rec := postSearch(t, h, searchBody([]string{"MKTAYIAKQR", "MKTAYIAKQR", "MKTAYIAKQR"}, "")); rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("over batch cap: status %d", rec.Code)
	}
	fe.BeginDrain(0)
	if rec := postSearch(t, h, searchBody(queries[:1], "")); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining: status %d", rec.Code)
	}
	if fe.Ready() == nil {
		t.Fatal("readiness must fail while draining")
	}
}
