package router

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/blast"
	"repro/internal/alphabet"
	"repro/internal/obs"
	"repro/internal/seqgen"
)

var (
	fixOnce    sync.Once
	fixDB      *blast.Database
	fixShards  []*blast.Database // 3 shards of fixDB
	fixQueries []string
)

func fixture(t *testing.T) (*blast.Database, []*blast.Database, []string) {
	t.Helper()
	fixOnce.Do(func() {
		g := seqgen.New(seqgen.UniprotProfile(), 44)
		raw := g.Database(90)
		seqs := make([]blast.Sequence, len(raw))
		for i, s := range raw {
			seqs[i] = blast.Sequence{Name: "sub" + string(rune('A'+i/26)) + string(rune('a'+i%26)), Residues: alphabet.String(s)}
		}
		p := blast.DefaultParams()
		p.BlockResidues = 16384
		p.Threads = 1
		db, err := blast.NewDatabase(seqs, p)
		if err != nil {
			panic(err)
		}
		shards, err := db.Shards(3)
		if err != nil {
			panic(err)
		}
		fixDB, fixShards = db, shards
		fixQueries = []string{
			seqs[5].Residues,
			seqs[40].Residues[2 : len(seqs[40].Residues)-2],
		}
	})
	return fixDB, fixShards, fixQueries
}

func localWorkers(shards []*blast.Database, concurrency int) [][]Worker {
	p := blast.DefaultParams()
	out := make([][]Worker, len(shards))
	for s, sd := range shards {
		w := NewLocalWorker("s"+string(rune('0'+s)), blast.NewSession(sd, p), concurrency, 1, 0)
		out[s] = []Worker{w}
	}
	return out
}

// stubWorker lets tests script a replica's behaviour.
type stubWorker struct {
	name     string
	inflight int64
	weight   float64
	search   func(ctx context.Context, queries []string, shard, numShards int) (*blast.ShardResult, error)
}

func (w *stubWorker) Name() string    { return w.name }
func (w *stubWorker) Inflight() int64 { return w.inflight }
func (w *stubWorker) Weight() float64 {
	if w.weight == 0 {
		return 1
	}
	return w.weight
}
func (w *stubWorker) Search(ctx context.Context, queries []string, shard, numShards int) (*blast.ShardResult, error) {
	return w.search(ctx, queries, shard, numShards)
}

// delegate builds a stub that searches a real shard database.
func delegate(name string, sd *blast.Database) *stubWorker {
	return &stubWorker{name: name, search: func(ctx context.Context, queries []string, shard, numShards int) (*blast.ShardResult, error) {
		return sd.SearchShardBatchCtx(ctx, queries, shard, numShards)
	}}
}

// TestRouterMatchesMonolithic: the full scatter-gather path, all shards
// healthy, must reproduce the monolithic search byte for byte.
func TestRouterMatchesMonolithic(t *testing.T) {
	db, shards, queries := fixture(t)
	mono, err := db.SearchBatchCtx(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(localWorkers(shards, 2), Options{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range append(PolicyNames(), "") {
		br, rep, err := rt.Search(context.Background(), queries, policy)
		if err != nil {
			t.Fatalf("policy %q: %v", policy, err)
		}
		if rep.Sheds() != 0 || rep.Failed() != 0 {
			t.Fatalf("policy %q: unexpected sheds/failures: %+v", policy, rep.Shards)
		}
		for qi := range queries {
			if !br.Completed[qi] {
				t.Fatalf("policy %q: query %d incomplete", policy, qi)
			}
			if g, w := br.Results[qi].Tabular("q"), mono.Results[qi].Tabular("q"); g != w {
				t.Fatalf("policy %q query %d: routed output differs from monolithic:\n got:\n%s\n want:\n%s", policy, qi, g, w)
			}
		}
	}
	if _, _, err := rt.Search(context.Background(), queries, "no-such-policy"); err == nil {
		t.Fatal("unknown policy must fail")
	}
}

// TestRouterShedIsPartialNotEmpty pins satellite bug 3: a shard answering
// with backpressure must surface as an honest partial result — queries
// incomplete, Retry-After carried — never as a merged zero-hit shard.
func TestRouterShedIsPartialNotEmpty(t *testing.T) {
	_, shards, queries := fixture(t)
	busy := &stubWorker{name: "busy", search: func(context.Context, []string, int, int) (*blast.ShardResult, error) {
		return nil, &BusyError{Worker: "busy", RetryAfter: 7 * 1e9}
	}}
	workers := [][]Worker{
		{delegate("s0", shards[0])},
		{busy},
		{delegate("s2", shards[2])},
	}
	rt, err := New(workers, Options{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	br, rep, err := rt.Search(context.Background(), queries, "")
	if err != nil {
		t.Fatalf("one shed shard must still produce a partial result, got %v", err)
	}
	if rep.Sheds() != 1 || rep.Failed() != 0 {
		t.Fatalf("report: %d sheds, %d failed; want 1, 0", rep.Sheds(), rep.Failed())
	}
	if rep.RetryAfter.Seconds() != 7 {
		t.Fatalf("RetryAfter %v not forwarded from the shed", rep.RetryAfter)
	}
	if br.Err == nil || !errors.Is(br.Err, blast.ErrShardUnavailable) {
		t.Fatalf("batch error %v must carry ErrShardUnavailable", br.Err)
	}
	for qi := range queries {
		if br.Completed[qi] {
			t.Fatalf("query %d completed despite a shed shard", qi)
		}
		if len(br.Results[qi].Hits) != 0 {
			t.Fatalf("query %d reports hits from an incomplete merge", qi)
		}
	}
}

// TestRouterAllShed: every shard shedding refuses the request outright with
// the aggregated retry hint — the scatter-path analogue of the monolithic
// daemon's queue-full 429.
func TestRouterAllShed(t *testing.T) {
	_, _, queries := fixture(t)
	mk := func(name string, after time.Duration) Worker {
		return &stubWorker{name: name, search: func(context.Context, []string, int, int) (*blast.ShardResult, error) {
			return nil, &BusyError{Worker: name, RetryAfter: after}
		}}
	}
	rt, err := New([][]Worker{{mk("a", 1e9)}, {mk("b", 3e9)}}, Options{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := rt.Search(context.Background(), queries, "")
	if !errors.Is(err, ErrAllShardsUnavailable) {
		t.Fatalf("err %v, want ErrAllShardsUnavailable", err)
	}
	if rep.Sheds() != 2 || rep.Failed() != 0 {
		t.Fatalf("report: %d sheds, %d failed; want 2, 0", rep.Sheds(), rep.Failed())
	}
	if rep.RetryAfter.Seconds() != 3 {
		t.Fatalf("aggregated RetryAfter %v, want the maximum hint 3s", rep.RetryAfter)
	}
}

// TestRouterShardFailure: a non-shed shard error is a failure, not a shed,
// and still yields an honest partial result.
func TestRouterShardFailure(t *testing.T) {
	_, shards, queries := fixture(t)
	boom := &stubWorker{name: "boom", search: func(context.Context, []string, int, int) (*blast.ShardResult, error) {
		return nil, errors.New("disk on fire")
	}}
	rt, err := New([][]Worker{{delegate("s0", shards[0])}, {boom}, {delegate("s2", shards[2])}},
		Options{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	br, rep, err := rt.Search(context.Background(), queries, "")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sheds() != 0 || rep.Failed() != 1 {
		t.Fatalf("report: %d sheds, %d failed; want 0, 1", rep.Sheds(), rep.Failed())
	}
	for qi := range queries {
		if br.Completed[qi] {
			t.Fatalf("query %d completed despite a failed shard", qi)
		}
	}
	if !strings.Contains(rep.Shards[1].Err.Error(), "disk on fire") {
		t.Fatalf("shard status lost the failure: %v", rep.Shards[1].Err)
	}
}

// TestLocalWorkerSheds: the bounded token budget refuses excess load with a
// BusyError instead of queueing.
func TestLocalWorkerSheds(t *testing.T) {
	_, shards, queries := fixture(t)
	w := NewLocalWorker("w", blast.NewSession(shards[0], blast.DefaultParams()), 1, 1, 0)
	gate := make(chan struct{})
	done := make(chan error, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		close(gate)
		_, err := w.Search(ctx, queries, 0, 3)
		done <- err
	}()
	<-gate
	// Saturate: keep poking until the goroutine holds the single token, then
	// the next call must shed.
	var busy *BusyError
	for {
		_, err := w.Search(context.Background(), queries[:1], 0, 3)
		if errors.As(err, &busy) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			return // first search finished before we ever collided; nothing left to race
		default:
		}
	}
	if busy.RetryAfter <= 0 {
		t.Fatalf("BusyError without a retry hint: %+v", busy)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestPolicies(t *testing.T) {
	mk := func(inflight int64, weight float64) Worker {
		return &stubWorker{name: "w", inflight: inflight, weight: weight}
	}
	t.Run("round-robin cycles per shard", func(t *testing.T) {
		p, err := NewPolicy(PolicyRoundRobin, 2)
		if err != nil {
			t.Fatal(err)
		}
		reps := []Worker{mk(0, 1), mk(0, 1), mk(0, 1)}
		var got []int
		for i := 0; i < 6; i++ {
			got = append(got, p.Pick(0, reps))
		}
		want := []int{0, 1, 2, 0, 1, 2}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("picks %v, want %v", got, want)
			}
		}
		if p.Pick(1, reps) != 0 {
			t.Fatal("shard 1's cursor must be independent of shard 0's")
		}
	})
	t.Run("least-loaded picks min inflight", func(t *testing.T) {
		p, err := NewPolicy(PolicyLeastLoad, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Pick(0, []Worker{mk(5, 1), mk(2, 1), mk(9, 1)}); got != 1 {
			t.Fatalf("picked %d, want 1", got)
		}
	})
	t.Run("weighted normalizes by capacity", func(t *testing.T) {
		p, err := NewPolicy(PolicyWeighted, 1)
		if err != nil {
			t.Fatal(err)
		}
		// 4 inflight at weight 4 (load 1) beats 2 inflight at weight 1 (load 2).
		if got := p.Pick(0, []Worker{mk(2, 1), mk(4, 4)}); got != 1 {
			t.Fatalf("picked %d, want the heavier replica", got)
		}
	})
	if _, err := NewPolicy("bogus", 1); err == nil {
		t.Fatal("unknown policy name must fail")
	}
}
