package router

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ResilienceConfig tunes the per-replica lifecycle layer the router wraps
// around every worker: health-probe ejection and readmission, the circuit
// breaker, the per-request retry budget, and hedged scatter. The zero value
// of every field selects the documented default; negative values disable
// where noted.
type ResilienceConfig struct {
	// ProbeInterval is how often the prober health-checks every replica that
	// exposes a HealthCheck (default 1s; negative disables probing). Probes
	// only govern ejection/readmission — request-path failures are the
	// breaker's job.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (default min(ProbeInterval, 1s)).
	ProbeTimeout time.Duration
	// ReadmitBackoff is the first readmission probe delay after an ejection;
	// it doubles (with jitter, never exceeding the nominal value) up to
	// ReadmitBackoffMax while the replica stays down. Defaults 500ms and 15s.
	ReadmitBackoff    time.Duration
	ReadmitBackoffMax time.Duration

	// BreakerFailures trips the breaker after this many consecutive
	// request-path failures (default 3; negative disables the breaker).
	BreakerFailures int
	// BreakerWindow and BreakerErrorRate trip the breaker when the failure
	// rate over the last BreakerWindow outcomes reaches the rate, even
	// without a consecutive run (defaults 16 and 0.5).
	BreakerWindow    int
	BreakerErrorRate float64
	// BreakerCooldown is how long an open breaker refuses traffic before
	// letting one half-open trial through (default 2s).
	BreakerCooldown time.Duration

	// RetryBudget is the number of extra upstream attempts (retries plus
	// hedges) one request may spend across all shards (default 2; negative
	// disables retries). A budget, not a per-replica count: it bounds total
	// amplification under correlated failure.
	RetryBudget int
	// RetryBackoff is the pause before retry k, scaled by k (default 25ms).
	RetryBackoff time.Duration

	// Hedge enables hedged scatter: when a shard's first attempt has run
	// longer than the shard's recent HedgeQuantile latency, a second attempt
	// fires on a different eligible replica and the first result wins (the
	// loser is cancelled). Hedges spend the retry budget. Off by default.
	Hedge bool
	// HedgeQuantile picks the latency quantile the hedge delay derives from
	// (default 0.95); HedgeMinDelay floors the delay (default 10ms).
	HedgeQuantile float64
	HedgeMinDelay time.Duration
}

func (c ResilienceConfig) withDefaults() ResilienceConfig {
	if c.ProbeInterval == 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = c.ProbeInterval
		if c.ProbeTimeout <= 0 || c.ProbeTimeout > time.Second {
			c.ProbeTimeout = time.Second
		}
	}
	if c.ReadmitBackoff <= 0 {
		c.ReadmitBackoff = 500 * time.Millisecond
	}
	if c.ReadmitBackoffMax <= 0 {
		c.ReadmitBackoffMax = 15 * time.Second
	}
	if c.BreakerFailures == 0 {
		c.BreakerFailures = 3
	}
	if c.BreakerWindow <= 0 {
		c.BreakerWindow = 16
	}
	if c.BreakerErrorRate <= 0 || c.BreakerErrorRate > 1 {
		c.BreakerErrorRate = 0.5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile >= 1 {
		c.HedgeQuantile = 0.95
	}
	if c.HedgeMinDelay <= 0 {
		c.HedgeMinDelay = 10 * time.Millisecond
	}
	return c
}

// HealthChecker is the optional probe surface of a Worker. Replicas that
// expose it (RemoteWorker does, via GET /readyz) are ejected from rotation
// while the probe fails and readmitted with jittered exponential backoff once
// it recovers. Workers without it (LocalWorker) are never ejected — their
// failures are handled by the breaker alone.
type HealthChecker interface {
	HealthCheck(ctx context.Context) error
}

// breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

func breakerStateName(s int) string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// attempt outcomes, as the breaker sees them. Sheds are backpressure from a
// live replica — they never trip the breaker (they would turn overload into
// ejection, the exact spiral breakers exist to prevent). Cancelled attempts
// (hedge losers, expired deadlines) are neutral: not the replica's verdict.
const (
	outcomeOK = iota
	outcomeShed
	outcomeFail
	outcomeNeutral
)

// replica wraps one Worker in the resilience state the router consults on
// every pick: the health gate (probe-driven ejection) and the circuit
// breaker (request-path failure driven). All state sits behind one mutex;
// the hot path takes it twice per attempt (pick and result).
type replica struct {
	w   Worker
	hc  HealthChecker // nil when the worker exposes no probe
	cfg ResilienceConfig
	met *obs.RouterMetrics

	// ejectedCount is the router-wide ejection tally backing the two gauges
	// (obs gauges are set-only, so transitions recompute from these).
	ejectedCount *atomic.Int64
	total        int64

	mu        sync.Mutex
	ejected   bool
	backoff   time.Duration // current readmission backoff (0 = healthy)
	nextProbe time.Time     // earliest readmission probe while ejected

	state       int
	consecFails int
	window      []bool // ring of request outcomes, true = failure
	windowN     int
	windowIdx   int
	openUntil   time.Time
	trial       bool // a half-open trial request is in flight
}

func newReplica(w Worker, cfg ResilienceConfig, met *obs.RouterMetrics, ejectedCount *atomic.Int64, total int64) *replica {
	hc, _ := w.(HealthChecker)
	return &replica{
		w: w, hc: hc, cfg: cfg, met: met,
		ejectedCount: ejectedCount, total: total,
		window: make([]bool, cfg.BreakerWindow),
	}
}

func (r *replica) setGauges() {
	ej := r.ejectedCount.Load()
	r.met.ReplicasEjected.Set(float64(ej))
	r.met.ReplicasHealthy.Set(float64(r.total - ej))
}

// healthy reports the probe gate alone (readiness aggregation); the breaker
// is a traffic decision, not a health one.
func (r *replica) healthy() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return !r.ejected
}

// eligibleHint is the read-only pick filter: in rotation and the breaker
// would admit an attempt right now. The actual half-open trial slot is
// claimed by tryAcquire on the replica the policy picked.
func (r *replica) eligibleHint(now time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ejected {
		return false
	}
	switch r.state {
	case breakerOpen:
		return !now.Before(r.openUntil)
	case breakerHalfOpen:
		return !r.trial
	}
	return true
}

// tryAcquire commits to sending one attempt through the breaker: a no-op for
// a closed breaker, the single trial claim for an open-past-cooldown or
// half-open one. False means another goroutine took the trial first.
func (r *replica) tryAcquire(now time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ejected {
		return false
	}
	switch r.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Before(r.openUntil) {
			return false
		}
		r.state = breakerHalfOpen
		r.trial = true
		return true
	default: // half-open
		if r.trial {
			return false
		}
		r.trial = true
		return true
	}
}

// onResult feeds one attempt's outcome to the breaker.
func (r *replica) onResult(o int) {
	if o == outcomeNeutral || r.cfg.BreakerFailures < 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	switch r.state {
	case breakerHalfOpen:
		r.trial = false
		if o == outcomeFail {
			r.state = breakerOpen
			r.openUntil = time.Now().Add(r.cfg.BreakerCooldown)
			r.met.BreakerOpens.Add(1)
			return
		}
		// The trial answered (a shed counts: the replica is alive, its
		// backpressure is the shed path's business) — close and reset.
		r.state = breakerClosed
		r.resetBreakerLocked()
		r.met.BreakerCloses.Add(1)
	case breakerClosed:
		if o == outcomeShed {
			return
		}
		fail := o == outcomeFail
		r.window[r.windowIdx] = fail
		r.windowIdx = (r.windowIdx + 1) % len(r.window)
		if r.windowN < len(r.window) {
			r.windowN++
		}
		if !fail {
			r.consecFails = 0
			return
		}
		r.consecFails++
		trip := r.cfg.BreakerFailures > 0 && r.consecFails >= r.cfg.BreakerFailures
		if !trip && r.windowN == len(r.window) {
			fails := 0
			for _, f := range r.window {
				if f {
					fails++
				}
			}
			trip = float64(fails)/float64(r.windowN) >= r.cfg.BreakerErrorRate
		}
		if trip {
			r.state = breakerOpen
			r.openUntil = time.Now().Add(r.cfg.BreakerCooldown)
			r.resetBreakerLocked()
			r.met.BreakerOpens.Add(1)
		}
	}
	// breakerOpen: a straggler from before the trip; nothing to learn.
}

// releaseTrial undoes a tryAcquire whose attempt never launched (budget ran
// dry, backoff aborted), so an unclaimed half-open trial cannot wedge the
// replica out of rotation forever.
func (r *replica) releaseTrial() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state == breakerHalfOpen {
		r.trial = false
	}
}

func (r *replica) resetBreakerLocked() {
	r.consecFails = 0
	r.windowN = 0
	r.windowIdx = 0
	r.trial = false
}

// probe runs one health-check cycle for this replica: eject on failure,
// readmit (with a clean breaker) on recovery, honoring the jittered
// exponential readmission backoff while down. No-op for workers without a
// HealthCheck.
func (r *replica) probe(ctx context.Context, now time.Time) {
	if r.hc == nil {
		return
	}
	r.mu.Lock()
	if r.ejected && now.Before(r.nextProbe) {
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()

	pctx, cancel := context.WithTimeout(ctx, r.cfg.ProbeTimeout)
	err := r.hc.HealthCheck(pctx)
	cancel()

	r.mu.Lock()
	defer r.mu.Unlock()
	if err != nil {
		if !r.ejected {
			r.ejected = true
			r.backoff = r.cfg.ReadmitBackoff
			r.met.Ejections.Add(1)
			r.ejectedCount.Add(1)
			r.setGauges()
		} else {
			r.backoff *= 2
			if r.backoff > r.cfg.ReadmitBackoffMax {
				r.backoff = r.cfg.ReadmitBackoffMax
			}
		}
		// Jitter inside [backoff/2, backoff]: never later than the nominal
		// bound (the convergence test's ceiling), desynchronized across a
		// fleet restarting together.
		r.nextProbe = now.Add(r.backoff/2 + time.Duration(rand.Int63n(int64(r.backoff/2)+1)))
		return
	}
	if r.ejected {
		r.ejected = false
		r.backoff = 0
		r.state = breakerClosed
		r.resetBreakerLocked()
		r.met.Readmissions.Add(1)
		r.ejectedCount.Add(-1)
		r.setGauges()
	}
}

// ReplicaState is one replica's lifecycle snapshot (status endpoints, tests).
type ReplicaState struct {
	Name    string `json:"name"`
	Ejected bool   `json:"ejected"`
	Breaker string `json:"breaker"`
}

func (r *replica) snapshot() ReplicaState {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.state
	if st == breakerOpen && !time.Now().Before(r.openUntil) {
		st = breakerHalfOpen // cooldown elapsed: next pick runs the trial
	}
	return ReplicaState{Name: r.w.Name(), Ejected: r.ejected, Breaker: breakerStateName(st)}
}

// latRing keeps a shard's recent attempt latencies for the hedge delay.
type latRing struct {
	mu  sync.Mutex
	buf [64]int64
	n   int
	idx int
}

// latMinSamples gates hedging until the quantile has signal; before that the
// delay would be a guess and hedges would burn the retry budget blind.
const latMinSamples = 4

func (l *latRing) add(nanos int64) {
	l.mu.Lock()
	l.buf[l.idx] = nanos
	l.idx = (l.idx + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.mu.Unlock()
}

// quantile returns the q-quantile of the recorded latencies, or 0 while
// fewer than latMinSamples samples exist.
func (l *latRing) quantile(q float64) time.Duration {
	l.mu.Lock()
	n := l.n
	tmp := make([]int64, n)
	copy(tmp, l.buf[:n])
	l.mu.Unlock()
	if n < latMinSamples {
		return 0
	}
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	k := int(q * float64(n-1))
	return time.Duration(tmp[k])
}
