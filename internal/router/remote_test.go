package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/blast"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/server"
)

// startShardDaemons serves each fixture shard from a real server.Server (the
// way a mublastpd fleet would) and returns one RemoteWorker per shard.
func startShardDaemons(t *testing.T, shards []*blast.Database) []*RemoteWorker {
	t.Helper()
	p := blast.DefaultParams()
	p.BlockResidues = 16384
	p.Threads = 1
	workers := make([]*RemoteWorker, len(shards))
	for s, sd := range shards {
		srv := server.New(blast.NewSession(sd, p), p, server.Config{Registry: obs.NewRegistry()})
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		workers[s] = NewRemoteWorker("s"+strconv.Itoa(s), "http://"+addr, RemoteOptions{})
	}
	return workers
}

// TestRemoteWorkersMatchMonolithic drives the full remote path: handshake
// (VerifyRemoteTopology over /shard/info), scatter over HTTP /shard/search,
// wire decode, merge — byte-identical to the monolithic search.
func TestRemoteWorkersMatchMonolithic(t *testing.T) {
	db, shards, queries := fixture(t)
	mono, err := db.SearchBatchCtx(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	remote := startShardDaemons(t, shards)

	byShard := make([][]*RemoteWorker, len(remote))
	workers := make([][]Worker, len(remote))
	for s, w := range remote {
		byShard[s] = []*RemoteWorker{w}
		workers[s] = []Worker{w}
	}
	fp, globalSeqs, err := VerifyRemoteTopology(context.Background(), byShard)
	if err != nil {
		t.Fatalf("handshake over a coherent fleet: %v", err)
	}
	if fp == nil || int(globalSeqs) != db.NumSequences() {
		t.Fatalf("handshake: fingerprint %v, %d global sequences, want %d", fp, globalSeqs, db.NumSequences())
	}

	rt, err := New(workers, Options{Registry: obs.NewRegistry(),
		Resilience: ResilienceConfig{ProbeInterval: -1}})
	if err != nil {
		t.Fatal(err)
	}
	br, rep, err := rt.Search(context.Background(), queries, "")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sheds() != 0 || rep.Failed() != 0 {
		t.Fatalf("healthy remote fleet degraded: %+v", rep.Shards)
	}
	for qi := range queries {
		if !br.Completed[qi] {
			t.Fatalf("query %d incomplete over a healthy remote fleet", qi)
		}
		if g, w := br.Results[qi].Tabular("q"), mono.Results[qi].Tabular("q"); g != w {
			t.Fatalf("query %d: remote scatter differs from monolithic:\n got:\n%s\n want:\n%s", qi, g, w)
		}
	}
	for s, w := range remote {
		if w.Generation() == 0 {
			t.Fatalf("shard %d worker never learned the daemon's generation", s)
		}
	}
}

// TestRemoteWorkerDecodesBusy: an upstream 429 with Retry-After becomes a
// BusyError — the shed/failure distinction survives the network hop.
func TestRemoteWorkerDecodesBusy(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"queue full"}`)
	}))
	defer ts.Close()
	w := NewRemoteWorker("busy", ts.URL, RemoteOptions{})
	_, err := w.Search(context.Background(), []string{"MKT"}, 0, 2)
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("err %v, want BusyError", err)
	}
	if busy.RetryAfter != 7*time.Second {
		t.Fatalf("RetryAfter %v, want 7s from the header", busy.RetryAfter)
	}
}

// TestRemoteWorkerSurfacesServerError: a non-shed upstream failure keeps the
// daemon's message for diagnostics and is not a BusyError.
func TestRemoteWorkerSurfacesServerError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprint(w, `{"error":"disk on fire"}`)
	}))
	defer ts.Close()
	w := NewRemoteWorker("boom", ts.URL, RemoteOptions{})
	_, err := w.Search(context.Background(), []string{"MKT"}, 0, 2)
	var busy *BusyError
	if errors.As(err, &busy) {
		t.Fatal("a 500 must not decode as backpressure")
	}
	if err == nil || !strings.Contains(err.Error(), "disk on fire") {
		t.Fatalf("err %v, want the daemon's message preserved", err)
	}
}

// TestRemoteWorkerDeadlineBudget: the propagated shard deadline is the
// context's remaining budget minus the network margin, floored at MinTimeout
// — the daemon gives up early enough for its partial answer to travel back.
func TestRemoteWorkerDeadlineBudget(t *testing.T) {
	var got atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req server.ShardSearchRequest
		json.NewDecoder(r.Body).Decode(&req)
		got.Store(req.TimeoutMS)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()
	w := NewRemoteWorker("w", ts.URL, RemoteOptions{NetworkMargin: 200 * time.Millisecond, MinTimeout: 50 * time.Millisecond})

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	w.Search(ctx, []string{"MKT"}, 0, 2)
	cancel()
	if ms := got.Load(); ms < 700 || ms > 800 {
		t.Fatalf("propagated budget %dms from a 1s deadline with 200ms margin, want ~800ms", ms)
	}

	// A deadline tighter than the margin still sends the floor, not zero.
	ctx, cancel = context.WithTimeout(context.Background(), 100*time.Millisecond)
	w.Search(ctx, []string{"MKT"}, 0, 2)
	cancel()
	if ms := got.Load(); ms != 50 {
		t.Fatalf("propagated budget %dms under a too-tight deadline, want the 50ms floor", ms)
	}
}

// TestRemoteWorkerHealthCheck: /readyz 200 is healthy, anything else is the
// prober's ejection signal.
func TestRemoteWorkerHealthCheck(t *testing.T) {
	var ready atomic.Bool
	ready.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			http.NotFound(w, r)
			return
		}
		if !ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
	}))
	defer ts.Close()
	w := NewRemoteWorker("w", ts.URL, RemoteOptions{})
	if err := w.HealthCheck(context.Background()); err != nil {
		t.Fatalf("healthy daemon: %v", err)
	}
	ready.Store(false)
	if err := w.HealthCheck(context.Background()); err == nil {
		t.Fatal("draining daemon passed the health check")
	}
	ts.Close()
	if err := w.HealthCheck(context.Background()); err == nil {
		t.Fatal("dead daemon passed the health check")
	}
}

// fakeInfoServer serves a scripted /shard/info for topology tests.
func fakeInfoServer(t *testing.T, info server.ShardInfoResponse) *RemoteWorker {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(info)
	}))
	t.Cleanup(ts.Close)
	return NewRemoteWorker("fake", ts.URL, RemoteOptions{})
}

// TestVerifyRemoteTopologyRejectsIncoherence: the handshake refuses fleets
// whose replicas disagree — on build fingerprint, on the global search space,
// on a shard slice — or whose slices do not tile the logical database.
func TestVerifyRemoteTopologyRejectsIncoherence(t *testing.T) {
	base := server.ShardInfoResponse{
		Fingerprint:     blast.Fingerprint{Matrix: "BLOSUM62", WordSize: 3, NeighborThreshold: 11},
		GlobalSequences: 4, GlobalResidues: 100,
	}
	mk := func(mut func(*server.ShardInfoResponse)) server.ShardInfoResponse {
		in := base
		mut(&in)
		return in
	}
	shard := func(seqs int, res int64) func(*server.ShardInfoResponse) {
		return func(in *server.ShardInfoResponse) { in.Sequences, in.TotalResidues = seqs, res }
	}

	// Coherent 2-shard fleet (round-robin split of 4 sequences) passes,
	// including store-backed replicas sitting at the same manifest commit.
	stored := func(in *server.ShardInfoResponse) {
		in.Sequences, in.TotalResidues = 2, 60
		in.ManifestSeq, in.ManifestHash, in.Deltas = 3, "aabbccdd", 2
	}
	ok := [][]*RemoteWorker{
		{fakeInfoServer(t, mk(stored)), fakeInfoServer(t, mk(stored))},
		{fakeInfoServer(t, mk(shard(2, 40)))},
	}
	if _, n, err := VerifyRemoteTopology(context.Background(), ok); err != nil || n != 4 {
		t.Fatalf("coherent fleet rejected: %v (global %d)", err, n)
	}

	for _, tc := range []struct {
		name  string
		fleet [][]*RemoteWorker
		want  string
	}{
		{"fingerprint drift", [][]*RemoteWorker{
			{fakeInfoServer(t, mk(shard(2, 60)))},
			{fakeInfoServer(t, mk(func(in *server.ShardInfoResponse) {
				in.Sequences, in.TotalResidues = 2, 40
				in.Fingerprint.WordSize = 4
			}))},
		}, "fingerprint"},
		{"global space disagreement", [][]*RemoteWorker{
			{fakeInfoServer(t, mk(shard(2, 60)))},
			{fakeInfoServer(t, mk(func(in *server.ShardInfoResponse) {
				in.Sequences, in.TotalResidues = 2, 40
				in.GlobalSequences = 5
			}))},
		}, "global space"},
		{"replica slice disagreement", [][]*RemoteWorker{
			{fakeInfoServer(t, mk(shard(2, 60))), fakeInfoServer(t, mk(shard(1, 60)))},
			{fakeInfoServer(t, mk(shard(2, 40)))},
		}, "shard peer"},
		{"slice does not tile", [][]*RemoteWorker{
			{fakeInfoServer(t, mk(shard(3, 60)))},
			{fakeInfoServer(t, mk(shard(1, 40)))},
		}, "round-robin"},
		// Equal sequence totals do not prove equal sequences once deltas are
		// involved: replicas of one shard at different manifest commits are
		// refused until delta propagation catches the laggard up.
		{"mixed manifest across replicas", [][]*RemoteWorker{
			{
				fakeInfoServer(t, mk(func(in *server.ShardInfoResponse) {
					in.Sequences, in.TotalResidues = 2, 60
					in.ManifestSeq, in.ManifestHash, in.Deltas = 3, "aabbccdd", 2
				})),
				fakeInfoServer(t, mk(func(in *server.ShardInfoResponse) {
					in.Sequences, in.TotalResidues = 2, 60
					in.ManifestSeq, in.ManifestHash, in.Deltas = 2, "11223344", 1
				})),
			},
			{fakeInfoServer(t, mk(shard(2, 40)))},
		}, "mixed-manifest"},
	} {
		_, _, err := VerifyRemoteTopology(context.Background(), tc.fleet)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// TestRemoteProbeEjectsDeadDaemon: the router's live prober ejects a worker
// whose daemon died and keeps scatters complete from the surviving replica —
// the in-process version of the kill-a-replica smoke test.
func TestRemoteProbeEjectsDeadDaemon(t *testing.T) {
	_, shards, queries := fixture(t)
	p := blast.DefaultParams()
	p.BlockResidues = 16384
	p.Threads = 1

	mkDaemon := func(sd *blast.Database) (*server.Server, *RemoteWorker) {
		srv := server.New(blast.NewSession(sd, p), p, server.Config{Registry: obs.NewRegistry()})
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		return srv, NewRemoteWorker("r@"+addr, "http://"+addr, RemoteOptions{})
	}
	victimSrv, victim := mkDaemon(shards[0])
	survivorSrv, survivor := mkDaemon(shards[0])
	defer survivorSrv.Close()

	rt, err := New([][]Worker{{victim, survivor}}, Options{Registry: obs.NewRegistry(),
		Resilience: ResilienceConfig{
			// A tight interval for test convergence, but a real-HTTP probe
			// budget: the default timeout inherits the interval, far too
			// short for a loopback round-trip under the race detector.
			ProbeInterval: 2 * time.Millisecond, ProbeTimeout: 500 * time.Millisecond,
			ReadmitBackoff: 10 * time.Millisecond, ReadmitBackoffMax: 40 * time.Millisecond,
			RetryBudget: 2, RetryBackoff: time.Millisecond,
		}})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Close()

	victimSrv.Close() // the "SIGKILL"
	deadline := time.Now().Add(2 * time.Second)
	for !rt.ReplicaStates()[0][0].Ejected {
		if time.Now().After(deadline) {
			t.Fatal("dead daemon never ejected")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		br, rep, err := rt.Search(context.Background(), queries[:1], "")
		if err != nil {
			t.Fatalf("search %d after replica death: %v (shard 0: %+v)", i, err, rep.Shards[0])
		}
		if rep.Failed() != 0 || !br.Completed[0] {
			t.Fatalf("search %d degraded despite a live survivor: %+v", i, rep.Shards)
		}
	}
}

// TestChaosRemoteTransport hammers a remote 2x2 fleet through the resilience
// layer while the transport fault sites (router.rpc dropping calls,
// router.rpcbody tearing response bodies) fire randomly. Invariants, whatever
// the schedule: every query flagged completed is byte-identical to the
// monolithic reference (a torn body or dropped RPC degrades honestly, never
// corrupts a merge), per-request attempts stay within fanout + retry budget,
// and no goroutines leak. `make chaos` runs this under -race; CHAOS_SEED
// pins a schedule, CHAOS_ROUNDS widens the sweep.
func TestChaosRemoteTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep skipped in -short mode")
	}
	db, shards, queries := fixture(t)
	mono, err := db.SearchBatchCtx(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(queries))
	for qi := range queries {
		want[qi] = mono.Results[qi].Tabular("q")
	}

	rounds := 4
	if s := os.Getenv("CHAOS_ROUNDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad CHAOS_ROUNDS %q: %v", s, err)
		}
		rounds = n
	}
	seeds := make([]int64, rounds)
	for i := range seeds {
		seeds[i] = int64(7100 + 13*i)
	}
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", s, err)
		}
		seeds = []int64{n}
	}

	const budget = 2
	base := runtime.NumGoroutine()
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			defer func() {
				if t.Failed() {
					t.Logf("replay with: CHAOS_SEED=%d go test -race -run TestChaosRemoteTransport ./internal/router", seed)
				}
			}()
			rng := rand.New(rand.NewSource(seed))
			spec := remoteChaosSchedule(rng)
			t.Logf("schedule %q", spec)
			if err := faultinject.Enable(spec, uint64(seed)); err != nil {
				t.Fatalf("enable %q: %v", spec, err)
			}
			defer faultinject.Disable()

			// The fixture's full 3-shard split, 2 replicas each, every
			// replica a real HTTP daemon.
			workers := make([][]Worker, len(shards))
			for s := range shards {
				reps := startShardDaemons(t, []*blast.Database{shards[s], shards[s]})
				// startShardDaemons maps slice index to the shard argument at
				// search time via the router, so both replicas serve shard s.
				workers[s] = []Worker{reps[0], reps[1]}
			}
			rt, err := New(workers, Options{Registry: obs.NewRegistry(),
				Resilience: ResilienceConfig{
					ProbeInterval:   -1, // the breaker and retries carry this test
					BreakerCooldown: 20 * time.Millisecond,
					RetryBudget:     budget, RetryBackoff: time.Millisecond,
				}})
			if err != nil {
				t.Fatal(err)
			}

			var wg sync.WaitGroup
			errs := make(chan error, 64)
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for j := 0; j < 4; j++ {
						ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
						br, rep, err := rt.Search(ctx, queries, "")
						cancel()
						if err != nil {
							if errors.Is(err, ErrAllShardsUnavailable) {
								continue // honest full refusal under faults
							}
							errs <- fmt.Errorf("search: %v", err)
							continue
						}
						total := 0
						for _, st := range rep.Shards {
							total += st.Attempts
						}
						if total > len(rep.Shards)+budget {
							errs <- fmt.Errorf("attempts %d exceed fanout %d + budget %d", total, len(rep.Shards), budget)
						}
						for qi := range queries {
							if !br.Completed[qi] {
								continue // honest incompleteness under faults
							}
							if got := br.Results[qi].Tabular("q"); got != want[qi] {
								errs <- fmt.Errorf("query %d completed but differs from the fault-free reference:\n got:\n%s\n want:\n%s", qi, got, want[qi])
							}
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}

			// Faults off, the same fleet must serve complete identical results
			// again (breakers recover through their half-open trials).
			faultinject.Disable()
			recovered := false
			deadline := time.Now().Add(5 * time.Second)
			for time.Now().Before(deadline) {
				br, rep, err := rt.Search(context.Background(), queries, "")
				if err == nil && rep.Sheds() == 0 && rep.Failed() == 0 {
					for qi := range queries {
						if got := br.Results[qi].Tabular("q"); got != want[qi] {
							t.Fatalf("post-fault query %d differs from reference", qi)
						}
					}
					recovered = true
					break
				}
				time.Sleep(25 * time.Millisecond)
			}
			if !recovered {
				t.Error("fleet never recovered to complete results after faults cleared")
			}
		})
	}
	waitForRouterGoroutines(t, base)
}

// remoteChaosSchedule draws one to two clauses over the transport sites.
func remoteChaosSchedule(rng *rand.Rand) string {
	clauses := []string{
		fmt.Sprintf("router.rpc=error@0.%02d", 10+rng.Intn(30)),
		fmt.Sprintf("router.rpcbody=shortread:%d@0.%02d", rng.Intn(64), 10+rng.Intn(30)),
		"router.rpc=delay:2ms",
	}
	spec := clauses[rng.Intn(len(clauses))]
	if rng.Intn(2) == 0 {
		other := clauses[rng.Intn(len(clauses))]
		if !strings.HasPrefix(other, spec[:strings.Index(spec, "=")]) {
			spec += "," + other
		}
	}
	return spec
}

// waitForRouterGoroutines asserts the goroutine count returns to baseline —
// hedges, retries, and probers must not leak goroutines across rounds.
func waitForRouterGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s", runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
