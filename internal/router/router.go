package router

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/blast"
	"repro/internal/obs"
	"repro/internal/reqtrace"
)

// ShardStatus is the router's per-shard account of one scatter: which
// replica answered (or was last tried) and how its search ended. Exactly one
// of the three outcomes holds: OK (result merged), Shed (every tried replica
// refused under backpressure, RetryAfter carries its hint), or failed (Err
// non-nil, not a shed). A non-OK shard never silently becomes "zero hits" —
// the merge marks every query incomplete instead.
type ShardStatus struct {
	Shard      int
	Worker     string
	OK         bool
	Shed       bool
	RetryAfter time.Duration // only when Shed
	Err        error         // nil when OK
	Nanos      int64         // wall time of this shard's search (all attempts)
	Completed  int           // queries the shard completed (when OK)
	Attempts   int           // upstream attempts this shard spent (>=1; retries and hedges add)
}

// Report describes how one scatter-gather request was routed: the policy
// used, per-shard statuses, and phase timings. RetryAfter aggregates the
// shed hints (the maximum, so a client retrying after it clears every
// saturated replica).
type Report struct {
	Policy       string
	Shards       []ShardStatus
	ScatterNanos int64 // slowest shard's wall time (shards run concurrently)
	MergeNanos   int64
	RetryAfter   time.Duration
}

// Sheds counts shards that shed this request.
func (r *Report) Sheds() int {
	n := 0
	for i := range r.Shards {
		if r.Shards[i].Shed {
			n++
		}
	}
	return n
}

// Failed counts shards that failed (non-shed errors).
func (r *Report) Failed() int {
	n := 0
	for i := range r.Shards {
		if r.Shards[i].Err != nil && !r.Shards[i].Shed {
			n++
		}
	}
	return n
}

// Spans renders the report as pipeline-style stage timings.
func (r *Report) Spans() []obs.Span {
	return []obs.Span{
		{Stage: "scatter", Nanos: r.ScatterNanos},
		{Stage: "merge", Nanos: r.MergeNanos},
	}
}

// attachShardQuerySpans grafts the shard batch's per-query six-stage
// pipeline spans under the shard's scatter span, mirroring the monolithic
// daemon's query spans: one child per completed query, stage spans nested as
// duration attributions with the shard search's start as nominal placement
// (stages of one query interleave across scheduler tasks). Only called with
// tracing on.
func attachShardQuerySpans(ss *reqtrace.Span, startNS int64, res *blast.ShardResult) {
	for qi := 0; qi < res.NumQueries(); qi++ {
		if !res.QueryCompleted(qi) {
			continue
		}
		q := ss.Child("query:"+strconv.Itoa(qi), startNS)
		var total int64
		for _, sp := range res.QueryStageSpans(qi) {
			q.StaticChild("stage:"+sp.Stage, startNS, sp.Nanos)
			total += sp.Nanos
		}
		q.End(total)
	}
}

// ErrAllShardsUnavailable is returned by Search when no shard contributed a
// result, so there is nothing honest to merge. The Report tells shed
// (retryable, 429-shaped) apart from failure (503-shaped).
var ErrAllShardsUnavailable = errors.New("router: no shard available, nothing to merge")

// Options configures a Router.
type Options struct {
	// DefaultPolicy is used when a request names none. Empty means
	// round-robin.
	DefaultPolicy string
	// Registry receives the router_* metrics. Nil means obs.Default.
	Registry *obs.Registry
	// Resilience tunes the per-replica lifecycle layer (health probing,
	// breaker, retry budget, hedging). Zero fields select the defaults.
	Resilience ResilienceConfig
}

// Router is the scatter-gather tier: it owns one replica set per shard,
// scatters every search to all shards concurrently (one replica each, chosen
// by the request's policy among the shard's *eligible* replicas), and
// gathers the shard results into a merged BatchResult that is byte-identical
// to a monolithic search when every shard answers — and honestly incomplete
// when one does not.
//
// Every replica is wrapped in a resilience layer: probe-driven ejection and
// readmission (Start launches the prober), a circuit breaker fed by
// request-path failures, and a per-request retry budget that bounds how many
// extra upstream attempts (retries, hedges) one request may spend.
type Router struct {
	reps     [][]*replica
	lat      []latRing
	policies map[string]Policy
	def      string
	met      *obs.RouterMetrics
	res      ResilienceConfig

	ejectedCount atomic.Int64

	probeMu   sync.Mutex
	probeStop chan struct{}
	probeDone chan struct{}
}

// New builds a Router over shards[s] = the replicas serving shard s. Every
// shard needs at least one replica; the shard count is fixed for the
// router's lifetime (it is baked into the containers' id mapping).
func New(shards [][]Worker, opts Options) (*Router, error) {
	if len(shards) == 0 {
		return nil, errors.New("router: need at least one shard")
	}
	total := 0
	for s, reps := range shards {
		if len(reps) == 0 {
			return nil, fmt.Errorf("router: shard %d has no replicas", s)
		}
		total += len(reps)
	}
	def := opts.DefaultPolicy
	if def == "" {
		def = PolicyRoundRobin
	}
	policies := make(map[string]Policy, len(PolicyNames()))
	for _, name := range PolicyNames() {
		p, err := NewPolicy(name, len(shards))
		if err != nil {
			return nil, err
		}
		policies[name] = p
	}
	if _, ok := policies[def]; !ok {
		return nil, fmt.Errorf("router: unknown default policy %q (have %v)", def, PolicyNames())
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.Default
	}
	res := opts.Resilience.withDefaults()
	rt := &Router{
		policies: policies, def: def,
		met: obs.NewRouterMetrics(reg),
		res: res,
		lat: make([]latRing, len(shards)),
	}
	rt.reps = make([][]*replica, len(shards))
	for s, ws := range shards {
		rt.reps[s] = make([]*replica, len(ws))
		for i, w := range ws {
			rt.reps[s][i] = newReplica(w, res, rt.met, &rt.ejectedCount, int64(total))
		}
	}
	rt.met.Fanout.Set(float64(len(shards)))
	rt.met.ReplicasHealthy.Set(float64(total))
	rt.met.ReplicasEjected.Set(0)
	return rt, nil
}

// NumShards returns the fanout.
func (rt *Router) NumShards() int { return len(rt.reps) }

// DefaultPolicy returns the policy used when a request names none.
func (rt *Router) DefaultPolicy() string { return rt.def }

// Resilience returns the resolved resilience configuration.
func (rt *Router) Resilience() ResilienceConfig { return rt.res }

// Workers returns the raw workers of one shard (reload orchestration walks
// them; indexes match ReplicaStates).
func (rt *Router) Workers(shard int) []Worker {
	out := make([]Worker, len(rt.reps[shard]))
	for i, r := range rt.reps[shard] {
		out[i] = r.w
	}
	return out
}

// ReplicaStates snapshots every replica's lifecycle state, shard-major.
func (rt *Router) ReplicaStates() [][]ReplicaState {
	out := make([][]ReplicaState, len(rt.reps))
	for s, reps := range rt.reps {
		out[s] = make([]ReplicaState, len(reps))
		for i, r := range reps {
			out[s][i] = r.snapshot()
		}
	}
	return out
}

// HealthErr reports nil while every shard keeps at least one replica in
// rotation, and an error naming the starved shards otherwise — the
// frontend's /readyz folds it in, so a fleet that cannot answer a full
// scatter pulls itself from upstream rotation instead of serving guaranteed
// incompletes.
func (rt *Router) HealthErr() error {
	var bad []int
	for s, reps := range rt.reps {
		ok := false
		for _, r := range reps {
			if r.healthy() {
				ok = true
				break
			}
		}
		if !ok {
			bad = append(bad, s)
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("router: shard(s) %v have no healthy replica", bad)
	}
	return nil
}

// HealthyReplicas counts the replicas of one shard currently in rotation.
func (rt *Router) HealthyReplicas(shard int) int {
	n := 0
	for _, r := range rt.reps[shard] {
		if r.healthy() {
			n++
		}
	}
	return n
}

// Start launches the health prober: every ProbeInterval each replica that
// exposes a HealthCheck is probed concurrently — failing replicas are
// ejected from rotation, ejected ones re-probed on their jittered backoff
// schedule and readmitted when the probe recovers. A no-op when probing is
// disabled or no replica is probeable. Pair with Close.
func (rt *Router) Start() {
	rt.probeMu.Lock()
	defer rt.probeMu.Unlock()
	if rt.probeStop != nil || rt.res.ProbeInterval <= 0 {
		return
	}
	probeable := false
	for _, reps := range rt.reps {
		for _, r := range reps {
			if r.hc != nil {
				probeable = true
			}
		}
	}
	if !probeable {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	rt.probeStop, rt.probeDone = stop, done
	go func() {
		defer close(done)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go func() {
			<-stop
			cancel()
		}()
		t := time.NewTicker(rt.res.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case now := <-t.C:
				rt.probeAll(ctx, now)
			}
		}
	}()
}

// probeAll runs one probe cycle across the fleet, concurrently per replica.
func (rt *Router) probeAll(ctx context.Context, now time.Time) {
	var wg sync.WaitGroup
	for _, reps := range rt.reps {
		for _, r := range reps {
			if r.hc == nil {
				continue
			}
			wg.Add(1)
			go func(r *replica) {
				defer wg.Done()
				r.probe(ctx, now)
			}(r)
		}
	}
	wg.Wait()
}

// Close stops the prober (idempotent; safe without Start).
func (rt *Router) Close() {
	rt.probeMu.Lock()
	defer rt.probeMu.Unlock()
	if rt.probeStop == nil {
		return
	}
	close(rt.probeStop)
	<-rt.probeDone
	rt.probeStop, rt.probeDone = nil, nil
}

// spend takes one attempt from the request's retry budget; false (with the
// budget-dry metric stamped) means the request has spent its amplification
// allowance and the current outcome stands.
func (rt *Router) spend(budget *atomic.Int64) bool {
	if budget.Add(-1) < 0 {
		budget.Add(1)
		rt.met.RetryBudgetDry.Add(1)
		return false
	}
	return true
}

// refund returns an attempt taken by spend when it ends up unused (no
// eligible replica materialized).
func refund(budget *atomic.Int64) { budget.Add(1) }

// pick selects one eligible replica of shard s through the request policy,
// excluding indices in excl (nil = none), and claims its breaker slot. -1
// means no eligible replica.
func (rt *Router) pick(s int, pol Policy, excl map[int]bool) int {
	reps := rt.reps[s]
	now := time.Now()
	cand := make([]Worker, 0, len(reps))
	idxs := make([]int, 0, len(reps))
	for i, r := range reps {
		if excl != nil && excl[i] {
			continue
		}
		if r.eligibleHint(now) {
			cand = append(cand, r.w)
			idxs = append(idxs, i)
		}
	}
	for len(cand) > 0 {
		k := pol.Pick(s, cand)
		if k < 0 || k >= len(cand) {
			k = 0
		}
		i := idxs[k]
		if reps[i].tryAcquire(now) {
			return i
		}
		cand = append(cand[:k], cand[k+1:]...)
		idxs = append(idxs[:k], idxs[k+1:]...)
	}
	return -1
}

// hedgeDelay derives the hedge trigger for shard s from its recent attempt
// latencies; 0 disables hedging for this request (not enough signal yet).
func (rt *Router) hedgeDelay(s int) time.Duration {
	d := rt.lat[s].quantile(rt.res.HedgeQuantile)
	if d == 0 {
		return 0
	}
	if d < rt.res.HedgeMinDelay {
		d = rt.res.HedgeMinDelay
	}
	return d
}

// classifyOutcome maps one attempt's error to the breaker's view of it.
func classifyOutcome(attemptCtx context.Context, err error) int {
	if err == nil {
		return outcomeOK
	}
	var busy *BusyError
	if errors.As(err, &busy) {
		return outcomeShed
	}
	if attemptCtx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		// Cancelled (hedge loser, drain) or out of deadline: not the
		// replica's verdict, the breaker learns nothing.
		return outcomeNeutral
	}
	return outcomeFail
}

// sleepCtx sleeps d unless the context dies first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// attemptOut is one upstream attempt's outcome.
type attemptOut struct {
	idx   int // replica index within the shard
	res   *blast.ShardResult
	err   error
	nanos int64
}

// searchShard runs one shard's slice of the scatter through the resilience
// layer: pick an eligible replica, run the attempt (optionally hedged with a
// second replica after the shard's p95 delay, first result winning and the
// loser cancelled), and on failure retry — governed by the shared per-request
// budget — with backoff. A shed is retried only when a *different* eligible
// replica exists: re-asking the replica that just declared itself saturated
// would amplify the exact overload it shed. It fills st and returns the
// winning result (nil when the shard contributed nothing).
func (rt *Router) searchShard(ctx context.Context, queries []string, s int, pol Policy, budget *atomic.Int64, st *ShardStatus, scatter *reqtrace.Span) *blast.ShardResult {
	n := len(rt.reps)
	reps := rt.reps[s]
	start := time.Now()
	var ss *reqtrace.Span
	if scatter != nil {
		ss = scatter.Child("shard"+strconv.Itoa(s), start.UnixNano())
	}
	st.Shard = s

	// launch runs one attempt on replica idx under its own cancel, feeding
	// the breaker and the latency ring from inside the goroutine — so a
	// hedge loser is still accounted after the shard's result is decided,
	// and the buffered channel lets it finish without a reader (no leak).
	// Non-primary attempts get a span under the shard span; the primary does
	// not, keeping the healthy-path trace shape identical to a plain scatter.
	launch := func(actx context.Context, idx int, kind string) <-chan attemptOut {
		ch := make(chan attemptOut, 1)
		st.Attempts++
		rt.met.ShardSearches.Add(1)
		go func() {
			t0 := time.Now()
			var as *reqtrace.Span
			if ss != nil && kind != "" {
				as = ss.Child("attempt:"+kind, t0.UnixNano())
				as.SetAttr("worker", reps[idx].w.Name())
			}
			res, err := reps[idx].w.Search(reqtrace.ContextWithSpan(actx, ss), queries, s, n)
			nanos := time.Since(t0).Nanoseconds()
			o := classifyOutcome(actx, err)
			reps[idx].onResult(o)
			if o == outcomeOK {
				rt.lat[s].add(nanos)
			}
			if as != nil {
				switch o {
				case outcomeOK:
					as.SetAttr("status", "ok")
				case outcomeShed:
					as.SetAttr("status", "shed")
				case outcomeFail:
					as.SetAttr("status", "error")
				default:
					as.SetAttr("status", "cancelled")
				}
				as.End(nanos)
			}
			ch <- attemptOut{idx: idx, res: res, err: err, nanos: nanos}
		}()
		return ch
	}

	// runFirst runs the primary attempt on idx, firing a hedge on a second
	// eligible replica if the primary outlives the shard's hedge delay. The
	// first success wins and the other attempt is cancelled; when both fail,
	// the primary's outcome stands (deterministic attribution).
	runFirst := func(idx int) attemptOut {
		actx, acancel := context.WithCancel(ctx)
		defer acancel()
		ch := launch(actx, idx, "")
		var hch <-chan attemptOut
		var timerC <-chan time.Time
		if rt.res.Hedge {
			if d := rt.hedgeDelay(s); d > 0 {
				timer := time.NewTimer(d)
				defer timer.Stop()
				timerC = timer.C
			}
		}
		for {
			select {
			case out := <-ch:
				if out.err == nil || hch == nil {
					return out
				}
				// Primary failed with a hedge in flight: its answer may
				// still save the shard.
				if hout := <-hch; hout.err == nil {
					rt.met.HedgesWon.Add(1)
					return hout
				}
				return out
			case hout := <-hch:
				if hout.err == nil {
					rt.met.HedgesWon.Add(1)
					acancel()
					return hout
				}
				// Hedge failed first; the primary is still the main bet.
				hch = nil
			case <-timerC:
				timerC = nil
				if !rt.spend(budget) {
					continue
				}
				hidx := rt.pick(s, pol, map[int]bool{idx: true})
				if hidx < 0 {
					refund(budget)
					continue
				}
				rt.met.HedgesFired.Add(1)
				// At most one hedge fires per shard (timerC goes nil), so
				// this defer runs once: it cancels a losing hedge when the
				// primary's result decides the shard.
				hctx, hcancel := context.WithCancel(ctx)
				defer hcancel()
				hch = launch(hctx, hidx, "hedge")
			}
		}
	}

	finish := func(out attemptOut) *blast.ShardResult {
		st.Nanos = time.Since(start).Nanoseconds()
		if out.err == nil {
			st.OK = true
			st.Worker = reps[out.idx].w.Name()
			st.Completed = out.res.CompletedCount()
			if ss != nil {
				ss.SetAttr("worker", st.Worker)
				ss.SetAttr("status", "ok")
				ss.SetAttr("completed", strconv.Itoa(st.Completed))
				attachShardQuerySpans(ss, start.UnixNano(), out.res)
				ss.End(st.Nanos)
			}
			return out.res
		}
		st.Err = out.err
		if out.idx >= 0 {
			st.Worker = reps[out.idx].w.Name()
		}
		var busy *BusyError
		if errors.As(out.err, &busy) {
			st.Shed = true
			st.RetryAfter = busy.RetryAfter
			rt.met.ShardSheds.Add(1)
			ss.SetAttr("status", "shed")
		} else {
			rt.met.ShardErrors.Add(1)
			ss.SetAttr("status", "error")
		}
		if ss != nil {
			if st.Worker != "" {
				ss.SetAttr("worker", st.Worker)
			}
			ss.End(st.Nanos)
		}
		return nil
	}

	tried := map[int]bool{}
	idx := rt.pick(s, pol, nil)
	if idx < 0 {
		return finish(attemptOut{idx: -1, err: fmt.Errorf("router: shard %d: no eligible replica (all ejected or breaker-open)", s)})
	}
	tried[idx] = true
	out := runFirst(idx)
	tried[out.idx] = true

	retry := 0
	for out.err != nil && ctx.Err() == nil {
		isShed := classifyOutcome(ctx, out.err) == outcomeShed
		if !rt.spend(budget) {
			break
		}
		// A shed must move to a different replica; a failure prefers one but
		// may re-try the same (sole) replica while its breaker stays closed.
		nidx := rt.pick(s, pol, tried)
		if nidx < 0 && !isShed {
			nidx = rt.pick(s, pol, nil)
		}
		if nidx < 0 {
			refund(budget)
			break
		}
		rt.met.Retries.Add(1)
		retry++
		if !sleepCtx(ctx, time.Duration(retry)*rt.res.RetryBackoff) {
			reps[nidx].releaseTrial()
			break
		}
		actx, acancel := context.WithCancel(ctx)
		out = <-launch(actx, nidx, "retry")
		acancel()
		tried[nidx] = true
	}
	return finish(out)
}

// Search scatters the query batch to every shard and merges the gathered
// results. policyName selects the replica-choice policy ("" means the
// router's default; unknown names fail before any shard work).
//
// The merged BatchResult follows the blast contract: per-query Completed
// flags, zero-value placeholders for incomplete queries. A request with at
// least one answering shard succeeds with partial (honest) results; only
// when no shard answers does Search return ErrAllShardsUnavailable. The
// Report is non-nil whenever the policy resolved, including on error.
func (rt *Router) Search(ctx context.Context, queries []string, policyName string) (*blast.BatchResult, *Report, error) {
	if policyName == "" {
		policyName = rt.def
	}
	pol, ok := rt.policies[policyName]
	if !ok {
		return nil, nil, fmt.Errorf("router: unknown policy %q (have %v)", policyName, PolicyNames())
	}
	if ctx == nil {
		ctx = context.Background()
	}
	rt.met.Requests.Add(1)

	// Scatter span under whatever span the caller put in the context (the
	// frontend's edge span; nil with tracing off, making every child below
	// a free no-op). Each shard gets a child span built inside its
	// goroutine — Span.Child is concurrency-safe — carrying the replica
	// choice and outcome, and, when the shard answered, the per-query
	// six-stage pipeline spans the shard's scheduler measured.
	parent := reqtrace.SpanFromContext(ctx)
	scatter := parent.Child("scatter", time.Now().UnixNano())
	scatter.SetAttr("policy", pol.Name())

	n := len(rt.reps)
	rep := &Report{Policy: pol.Name(), Shards: make([]ShardStatus, n)}
	parts := make([]*blast.ShardResult, n)
	var budget atomic.Int64
	if rt.res.RetryBudget > 0 {
		budget.Store(int64(rt.res.RetryBudget))
	}
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			parts[s] = rt.searchShard(ctx, queries, s, pol, &budget, &rep.Shards[s], scatter)
		}(s)
	}
	wg.Wait()

	for i := range rep.Shards {
		if rep.Shards[i].Nanos > rep.ScatterNanos {
			rep.ScatterNanos = rep.Shards[i].Nanos
		}
		if rep.Shards[i].RetryAfter > rep.RetryAfter {
			rep.RetryAfter = rep.Shards[i].RetryAfter
		}
	}
	rt.met.ScatterNanos.Observe(rep.ScatterNanos)
	scatter.End(rep.ScatterNanos)

	answered := n - rep.Sheds() - rep.Failed()
	if answered == 0 {
		rt.met.AllShed.Add(1)
		return nil, rep, fmt.Errorf("%w: %d shed, %d failed of %d shards",
			ErrAllShardsUnavailable, rep.Sheds(), rep.Failed(), n)
	}

	mergeStart := time.Now()
	br, err := blast.MergeShards(queries, parts)
	rep.MergeNanos = time.Since(mergeStart).Nanoseconds()
	rt.met.MergeNanos.Observe(rep.MergeNanos)
	parent.StaticChild("merge", mergeStart.UnixNano(), rep.MergeNanos)
	if err != nil {
		return nil, rep, err
	}
	if answered < n {
		rt.met.Partial.Add(1)
	}
	return br, rep, nil
}
