package router

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/blast"
	"repro/internal/obs"
	"repro/internal/reqtrace"
)

// ShardStatus is the router's per-shard account of one scatter: which
// replica was picked and how its search ended. Exactly one of the three
// outcomes holds: OK (result merged), Shed (replica refused under
// backpressure, RetryAfter carries its hint), or failed (Err non-nil, not a
// shed). A non-OK shard never silently becomes "zero hits" — the merge marks
// every query incomplete instead.
type ShardStatus struct {
	Shard      int
	Worker     string
	OK         bool
	Shed       bool
	RetryAfter time.Duration // only when Shed
	Err        error         // nil when OK
	Nanos      int64         // wall time of this shard's search
	Completed  int           // queries the shard completed (when OK)
}

// Report describes how one scatter-gather request was routed: the policy
// used, per-shard statuses, and phase timings. RetryAfter aggregates the
// shed hints (the maximum, so a client retrying after it clears every
// saturated replica).
type Report struct {
	Policy       string
	Shards       []ShardStatus
	ScatterNanos int64 // slowest shard's wall time (shards run concurrently)
	MergeNanos   int64
	RetryAfter   time.Duration
}

// Sheds counts shards that shed this request.
func (r *Report) Sheds() int {
	n := 0
	for i := range r.Shards {
		if r.Shards[i].Shed {
			n++
		}
	}
	return n
}

// Failed counts shards that failed (non-shed errors).
func (r *Report) Failed() int {
	n := 0
	for i := range r.Shards {
		if r.Shards[i].Err != nil && !r.Shards[i].Shed {
			n++
		}
	}
	return n
}

// Spans renders the report as pipeline-style stage timings.
func (r *Report) Spans() []obs.Span {
	return []obs.Span{
		{Stage: "scatter", Nanos: r.ScatterNanos},
		{Stage: "merge", Nanos: r.MergeNanos},
	}
}

// attachShardQuerySpans grafts the shard batch's per-query six-stage
// pipeline spans under the shard's scatter span, mirroring the monolithic
// daemon's query spans: one child per completed query, stage spans nested as
// duration attributions with the shard search's start as nominal placement
// (stages of one query interleave across scheduler tasks). Only called with
// tracing on.
func attachShardQuerySpans(ss *reqtrace.Span, startNS int64, res *blast.ShardResult) {
	for qi := 0; qi < res.NumQueries(); qi++ {
		if !res.QueryCompleted(qi) {
			continue
		}
		q := ss.Child("query:"+strconv.Itoa(qi), startNS)
		var total int64
		for _, sp := range res.QueryStageSpans(qi) {
			q.StaticChild("stage:"+sp.Stage, startNS, sp.Nanos)
			total += sp.Nanos
		}
		q.End(total)
	}
}

// ErrAllShardsUnavailable is returned by Search when no shard contributed a
// result, so there is nothing honest to merge. The Report tells shed
// (retryable, 429-shaped) apart from failure (503-shaped).
var ErrAllShardsUnavailable = errors.New("router: no shard available, nothing to merge")

// Options configures a Router.
type Options struct {
	// DefaultPolicy is used when a request names none. Empty means
	// round-robin.
	DefaultPolicy string
	// Registry receives the router_* metrics. Nil means obs.Default.
	Registry *obs.Registry
}

// Router is the scatter-gather tier: it owns one replica set per shard,
// scatters every search to all shards concurrently (one replica each, chosen
// by the request's policy), and gathers the shard results into a merged
// BatchResult that is byte-identical to a monolithic search when every shard
// answers — and honestly incomplete when one does not.
type Router struct {
	shards   [][]Worker
	policies map[string]Policy
	def      string
	met      *obs.RouterMetrics
}

// New builds a Router over shards[s] = the replicas serving shard s. Every
// shard needs at least one replica; the shard count is fixed for the
// router's lifetime (it is baked into the containers' id mapping).
func New(shards [][]Worker, opts Options) (*Router, error) {
	if len(shards) == 0 {
		return nil, errors.New("router: need at least one shard")
	}
	for s, reps := range shards {
		if len(reps) == 0 {
			return nil, fmt.Errorf("router: shard %d has no replicas", s)
		}
	}
	def := opts.DefaultPolicy
	if def == "" {
		def = PolicyRoundRobin
	}
	policies := make(map[string]Policy, len(PolicyNames()))
	for _, name := range PolicyNames() {
		p, err := NewPolicy(name, len(shards))
		if err != nil {
			return nil, err
		}
		policies[name] = p
	}
	if _, ok := policies[def]; !ok {
		return nil, fmt.Errorf("router: unknown default policy %q (have %v)", def, PolicyNames())
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.Default
	}
	rt := &Router{shards: shards, policies: policies, def: def, met: obs.NewRouterMetrics(reg)}
	rt.met.Fanout.Set(float64(len(shards)))
	return rt, nil
}

// NumShards returns the fanout.
func (rt *Router) NumShards() int { return len(rt.shards) }

// DefaultPolicy returns the policy used when a request names none.
func (rt *Router) DefaultPolicy() string { return rt.def }

// Search scatters the query batch to every shard and merges the gathered
// results. policyName selects the replica-choice policy ("" means the
// router's default; unknown names fail before any shard work).
//
// The merged BatchResult follows the blast contract: per-query Completed
// flags, zero-value placeholders for incomplete queries. A request with at
// least one answering shard succeeds with partial (honest) results; only
// when no shard answers does Search return ErrAllShardsUnavailable. The
// Report is non-nil whenever the policy resolved, including on error.
func (rt *Router) Search(ctx context.Context, queries []string, policyName string) (*blast.BatchResult, *Report, error) {
	if policyName == "" {
		policyName = rt.def
	}
	pol, ok := rt.policies[policyName]
	if !ok {
		return nil, nil, fmt.Errorf("router: unknown policy %q (have %v)", policyName, PolicyNames())
	}
	if ctx == nil {
		ctx = context.Background()
	}
	rt.met.Requests.Add(1)

	// Scatter span under whatever span the caller put in the context (the
	// frontend's edge span; nil with tracing off, making every child below
	// a free no-op). Each shard gets a child span built inside its
	// goroutine — Span.Child is concurrency-safe — carrying the replica
	// choice and outcome, and, when the shard answered, the per-query
	// six-stage pipeline spans the shard's scheduler measured.
	parent := reqtrace.SpanFromContext(ctx)
	scatter := parent.Child("scatter", time.Now().UnixNano())
	scatter.SetAttr("policy", pol.Name())

	n := len(rt.shards)
	rep := &Report{Policy: pol.Name(), Shards: make([]ShardStatus, n)}
	parts := make([]*blast.ShardResult, n)
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		replicas := rt.shards[s]
		w := replicas[pol.Pick(s, replicas)]
		st := &rep.Shards[s]
		st.Shard, st.Worker = s, w.Name()
		wg.Add(1)
		go func(s int, w Worker, st *ShardStatus) {
			defer wg.Done()
			rt.met.ShardSearches.Add(1)
			start := time.Now()
			var ss *reqtrace.Span
			if scatter != nil {
				ss = scatter.Child("shard"+strconv.Itoa(s), start.UnixNano())
				ss.SetAttr("worker", w.Name())
			}
			res, err := w.Search(ctx, queries, s, n)
			st.Nanos = time.Since(start).Nanoseconds()
			if err != nil {
				st.Err = err
				var busy *BusyError
				if errors.As(err, &busy) {
					st.Shed = true
					st.RetryAfter = busy.RetryAfter
					rt.met.ShardSheds.Add(1)
					ss.SetAttr("status", "shed")
				} else {
					rt.met.ShardErrors.Add(1)
					ss.SetAttr("status", "error")
				}
				ss.End(st.Nanos)
				return
			}
			st.OK = true
			st.Completed = res.CompletedCount()
			parts[s] = res
			if ss != nil {
				ss.SetAttr("status", "ok")
				ss.SetAttr("completed", strconv.Itoa(st.Completed))
				attachShardQuerySpans(ss, start.UnixNano(), res)
				ss.End(st.Nanos)
			}
		}(s, w, st)
	}
	wg.Wait()

	for i := range rep.Shards {
		if rep.Shards[i].Nanos > rep.ScatterNanos {
			rep.ScatterNanos = rep.Shards[i].Nanos
		}
		if rep.Shards[i].RetryAfter > rep.RetryAfter {
			rep.RetryAfter = rep.Shards[i].RetryAfter
		}
	}
	rt.met.ScatterNanos.Observe(rep.ScatterNanos)
	scatter.End(rep.ScatterNanos)

	answered := n - rep.Sheds() - rep.Failed()
	if answered == 0 {
		rt.met.AllShed.Add(1)
		return nil, rep, fmt.Errorf("%w: %d shed, %d failed of %d shards",
			ErrAllShardsUnavailable, rep.Sheds(), rep.Failed(), n)
	}

	mergeStart := time.Now()
	br, err := blast.MergeShards(queries, parts)
	rep.MergeNanos = time.Since(mergeStart).Nanoseconds()
	rt.met.MergeNanos.Observe(rep.MergeNanos)
	parent.StaticChild("merge", mergeStart.UnixNano(), rep.MergeNanos)
	if err != nil {
		return nil, rep, err
	}
	if answered < n {
		rt.met.Partial.Add(1)
	}
	return br, rep, nil
}
