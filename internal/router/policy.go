package router

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Policy chooses which replica of a shard serves a request. Policies are
// selected per request by name; a Router builds one instance of each known
// policy at construction so per-policy state (round-robin cursors) persists
// across requests. Pick must be safe for concurrent use.
type Policy interface {
	// Name is the policy's stable wire name.
	Name() string
	// Pick returns the index into replicas to use for this request's search
	// of shard `shard`. replicas is never empty.
	Pick(shard int, replicas []Worker) int
}

// Policy wire names.
const (
	PolicyRoundRobin = "round-robin"
	PolicyLeastLoad  = "least-loaded"
	PolicyWeighted   = "weighted"
)

// NewPolicy builds a fresh instance of the named policy for a router with
// numShards shards. Unknown names list the valid ones in the error.
func NewPolicy(name string, numShards int) (Policy, error) {
	switch name {
	case PolicyRoundRobin:
		return &roundRobin{next: make([]atomic.Uint64, numShards)}, nil
	case PolicyLeastLoad:
		return leastLoaded{}, nil
	case PolicyWeighted:
		return weighted{}, nil
	}
	return nil, fmt.Errorf("router: unknown policy %q (have %s)", name, strings.Join(PolicyNames(), ", "))
}

// PolicyNames returns the known policy names, sorted.
func PolicyNames() []string {
	names := []string{PolicyRoundRobin, PolicyLeastLoad, PolicyWeighted}
	sort.Strings(names)
	return names
}

// roundRobin cycles through a shard's replicas in order, one atomic cursor
// per shard so shards advance independently.
type roundRobin struct {
	next []atomic.Uint64
}

func (p *roundRobin) Name() string { return PolicyRoundRobin }

func (p *roundRobin) Pick(shard int, replicas []Worker) int {
	return int((p.next[shard].Add(1) - 1) % uint64(len(replicas)))
}

// leastLoaded picks the replica with the fewest searches in flight,
// first-listed winning ties — under uniform load it degenerates to
// first-replica-preferred, under skew it routes around the busy one.
type leastLoaded struct{}

func (leastLoaded) Name() string { return PolicyLeastLoad }

func (leastLoaded) Pick(shard int, replicas []Worker) int {
	best := 0
	bestLoad := replicas[0].Inflight()
	for i := 1; i < len(replicas); i++ {
		if load := replicas[i].Inflight(); load < bestLoad {
			best, bestLoad = i, load
		}
	}
	return best
}

// weighted is least-loaded normalized by capacity: it minimizes
// inflight/weight, so a weight-2 replica takes twice the concurrent load of
// a weight-1 one before losing preference. Ties break toward the heavier
// replica, then first-listed.
type weighted struct{}

func (weighted) Name() string { return PolicyWeighted }

func (weighted) Pick(shard int, replicas []Worker) int {
	norm := func(i int) (float64, float64) {
		w := replicas[i].Weight()
		if w <= 0 {
			w = 1
		}
		return float64(replicas[i].Inflight()) / w, w
	}
	best := 0
	bestLoad, bestW := norm(0)
	for i := 1; i < len(replicas); i++ {
		load, w := norm(i)
		if load < bestLoad || (load == bestLoad && w > bestW) {
			best, bestLoad, bestW = i, load, w
		}
	}
	return best
}
