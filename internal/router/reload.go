package router

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// Reloader is the optional reload surface of a Worker: LocalWorker swaps its
// in-process session, RemoteWorker drives the daemon's POST /reload. A
// verify-only call validates the candidate container without swapping.
type Reloader interface {
	ReloadContainer(ctx context.Context, path string, verifyOnly bool) error
}

// ReloadShardsRequest is the frontend's POST /reload body: one candidate
// container path per shard (the shard slices are distinct containers).
type ReloadShardsRequest struct {
	Paths []string `json:"paths"`
	// Force permits swapping a shard's only healthy replica — without it the
	// orchestrator refuses, because a reload gone wrong there would leave
	// the shard unservable and every request guaranteed-incomplete.
	Force bool `json:"force,omitempty"`
	// TimeoutMS bounds the whole rolling reload (default 2 minutes).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// ReplicaReloadWire is one replica's outcome in the rolling reload.
type ReplicaReloadWire struct {
	Shard  int    `json:"shard"`
	Worker string `json:"worker"`
	OK     bool   `json:"ok"`
	Error  string `json:"error,omitempty"`
}

// ReloadShardsResponse reports the rolling reload, one entry per replica in
// rolling order. OK means every replica swapped.
type ReloadShardsResponse struct {
	OK       bool                `json:"ok"`
	Replicas []ReplicaReloadWire `json:"replicas"`
}

// RollingReload walks the fleet shard by shard, replica by replica: each
// replica's candidate container is verified first (verify-only, no swap) and
// only then swapped in, and a replica that is its shard's last healthy one
// is never swapped unless force — so a rolling reload can degrade one
// replica at a time but can never take a whole shard out of rotation. The
// walk is sequential by construction: at most one replica is mid-swap at any
// moment. Replicas without a Reloader surface (custom workers) fail their
// entry; the rest of the fleet still rolls.
func (rt *Router) RollingReload(ctx context.Context, paths []string, force bool) *ReloadShardsResponse {
	resp := &ReloadShardsResponse{OK: true}
	for s := 0; s < rt.NumShards(); s++ {
		path := paths[s]
		for _, w := range rt.Workers(s) {
			entry := ReplicaReloadWire{Shard: s, Worker: w.Name()}
			fail := func(format string, args ...any) {
				entry.Error = fmt.Sprintf(format, args...)
				resp.OK = false
				resp.Replicas = append(resp.Replicas, entry)
			}
			rl, ok := w.(Reloader)
			if !ok {
				fail("worker is not reloadable")
				continue
			}
			if err := rl.ReloadContainer(ctx, path, true); err != nil {
				fail("verify: %v", err)
				continue
			}
			if !force && rt.HealthyReplicas(s) <= 1 {
				fail("refusing to reload shard %d's last healthy replica (force to override)", s)
				continue
			}
			if err := rl.ReloadContainer(ctx, path, false); err != nil {
				fail("swap: %v", err)
				continue
			}
			entry.OK = true
			resp.Replicas = append(resp.Replicas, entry)
			if ctx.Err() != nil {
				resp.OK = false
				return resp
			}
		}
	}
	return resp
}

// handleReload is the frontend's rolling-reload endpoint.
func (f *Frontend) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only", Status: http.StatusMethodNotAllowed})
		return
	}
	if f.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "draining", Status: http.StatusServiceUnavailable})
		return
	}
	var req ReloadShardsRequest
	r.Body = http.MaxBytesReader(w, r.Body, f.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("decoding request: %v", err), Status: http.StatusBadRequest})
		return
	}
	if len(req.Paths) != f.rt.NumShards() {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error:  fmt.Sprintf("%d paths for %d shards", len(req.Paths), f.rt.NumShards()),
			Status: http.StatusBadRequest,
		})
		return
	}
	timeout := 2 * time.Minute
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	resp := f.rt.RollingReload(ctx, req.Paths, req.Force)
	status := http.StatusOK
	if !resp.OK {
		// Partial or refused roll: the fleet still serves (old containers
		// where the swap did not happen), but the caller must know.
		status = http.StatusConflict
	}
	f.logf("rolling reload: ok=%v over %d replicas", resp.OK, len(resp.Replicas))
	writeJSON(w, status, resp)
}
