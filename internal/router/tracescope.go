package router

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/reqtrace"
)

// logf emits an operational log line when the daemon wired a logger; tests
// leave it nil and stay quiet.
func (f *Frontend) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

// routeScope is one routed request's observability state — the router-tier
// twin of the monolithic daemon's searchScope: the request ID echoed on
// every outcome, the trace tree under construction (nil with tracing off),
// and the workload record under accumulation (nil with recording off). All
// exit paths converge on finish.
type routeScope struct {
	fe      *Frontend
	arrival time.Time
	rid     string
	tr      *reqtrace.Trace
	root    *reqtrace.Span
	rec     *reqtrace.Record
	done    bool
}

// beginRouteScope resolves the request ID (honoring an incoming
// X-Request-ID so a trace spanning router and shard daemons keeps one
// handle), echoes it on the response immediately, and opens the trace tree
// and workload record when their sinks are attached.
func (f *Frontend) beginRouteScope(w http.ResponseWriter, r *http.Request) *routeScope {
	arrival := time.Now()
	wc := reqtrace.Extract(r.Header)
	if wc.RequestID == "" {
		wc.RequestID = reqtrace.NewRequestID()
	}
	sc := &routeScope{fe: f, arrival: arrival, rid: wc.RequestID}
	sc.tr = f.cfg.Tracer.Begin(wc, "edge", arrival.UnixNano())
	sc.root = sc.tr.RootSpan()
	sc.root.SetAttr("daemon", "mublastpr")
	if f.cfg.Recorder != nil {
		sc.rec = &reqtrace.Record{
			RequestID:     sc.rid,
			ArrivalUnixNS: arrival.UnixNano(),
			SpanNanos:     make(map[string]int64, 8),
		}
	}
	w.Header().Set(reqtrace.HeaderRequestID, sc.rid)
	return sc
}

// recordReport projects the routing report into the workload record's flat
// span durations: scatter, merge, and one shard<N> entry per shard — the
// per-stage service times the capacity planner fits its distributions from.
func (sc *routeScope) recordReport(rep *Report) {
	if sc.rec == nil || rep == nil {
		return
	}
	sc.rec.SpanNanos["scatter"] = rep.ScatterNanos
	if rep.MergeNanos > 0 {
		sc.rec.SpanNanos["merge"] = rep.MergeNanos
	}
	for i := range rep.Shards {
		sc.rec.SpanNanos["shard"+strconv.Itoa(rep.Shards[i].Shard)] = rep.Shards[i].Nanos
	}
}

// finish closes the request: root span ended with the total duration,
// outcome and HTTP status stamped on tree and record, both sinks written and
// flushed. Idempotent, so error paths can finish early and fall through.
func (sc *routeScope) finish(outcome string, status int) {
	if sc.done {
		return
	}
	sc.done = true
	total := time.Since(sc.arrival)
	sc.root.SetAttr("status", strconv.Itoa(status))
	sc.root.End(total.Nanoseconds())
	tracer := sc.fe.cfg.Tracer
	if err := tracer.Finish(sc.tr, outcome); err == nil {
		tracer.Flush()
	}
	if sc.rec != nil {
		sc.rec.Outcome = outcome
		sc.rec.Status = status
		sc.rec.SpanNanos["total"] = total.Nanoseconds()
		rec := sc.fe.cfg.Recorder
		if err := rec.Write(sc.rec); err == nil {
			rec.Flush()
		}
	}
}
