package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/blast"
	"repro/internal/faultinject"
	"repro/internal/reqtrace"
	"repro/internal/server"
)

// Fault sites of the remote transport, armable through the same chaos
// harness as the engine's and the daemon's (internal/faultinject). Disarmed
// they cost one atomic load per RPC.
var (
	// fiRPC sits before the outbound shard RPC: an error fault drops the
	// call (a dead upstream), a delay fault slows it (a congested link).
	fiRPC = faultinject.NewSite("router.rpc")
	// fiRPCBody wraps the response body: a shortread fault truncates it
	// mid-stream (a connection torn under the decoder).
	fiRPCBody = faultinject.NewSite("router.rpcbody")
)

// RemoteOptions tunes a RemoteWorker. Zero values select the defaults.
type RemoteOptions struct {
	// Client is the HTTP client for every RPC (default: a dedicated client
	// with no global timeout — deadlines ride the request contexts).
	Client *http.Client
	// Weight is the replica's relative capacity (default 1).
	Weight float64
	// NetworkMargin is subtracted from the request's remaining deadline
	// before it is propagated upstream as the shard's budget, so the worker
	// gives up early enough for its (partial) answer to travel back
	// (default 150ms).
	NetworkMargin time.Duration
	// MinTimeout floors the propagated budget (default 50ms): below it the
	// RPC is not worth the wire.
	MinTimeout time.Duration
}

// RemoteWorker is a Worker backed by a mublastpd daemon over HTTP: Search
// drives POST /shard/search, HealthCheck (the prober's ejection signal) GET
// /readyz, Info (the registration handshake) GET /shard/info, and Reload
// (rolling-reload orchestration) POST /reload. Saturation (429 +
// Retry-After) decodes back into BusyError, so the router's shed/failure
// distinction — and with it the honesty contract — survives the network hop.
type RemoteWorker struct {
	name   string
	base   string // http://host:port, no trailing slash
	client *http.Client
	weight float64
	margin time.Duration
	minTO  time.Duration

	inflight atomic.Int64
	gen      atomic.Int64 // last generation seen from the daemon
}

// NewRemoteWorker wraps the daemon at baseURL (scheme://host:port).
func NewRemoteWorker(name, baseURL string, opts RemoteOptions) *RemoteWorker {
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	if opts.Weight <= 0 {
		opts.Weight = 1
	}
	if opts.NetworkMargin <= 0 {
		opts.NetworkMargin = 150 * time.Millisecond
	}
	if opts.MinTimeout <= 0 {
		opts.MinTimeout = 50 * time.Millisecond
	}
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	return &RemoteWorker{
		name: name, base: baseURL, client: client,
		weight: opts.Weight, margin: opts.NetworkMargin, minTO: opts.MinTimeout,
	}
}

// Name implements Worker.
func (w *RemoteWorker) Name() string { return w.name }

// Inflight implements Worker.
func (w *RemoteWorker) Inflight() int64 { return w.inflight.Load() }

// Weight implements Worker.
func (w *RemoteWorker) Weight() float64 { return w.weight }

// BaseURL returns the daemon address the worker drives.
func (w *RemoteWorker) BaseURL() string { return w.base }

// Generation returns the last db_generation the daemon reported (0 before
// any contact).
func (w *RemoteWorker) Generation() int64 { return w.gen.Load() }

// do sends one JSON RPC and returns the response. The caller owns the body.
func (w *RemoteWorker) do(ctx context.Context, method, path string, body any) (*http.Response, error) {
	if err := fiRPC.Err(); err != nil {
		return nil, fmt.Errorf("router: rpc to %s%s: %w", w.base, path, err)
	}
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, w.base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Propagate the trace context so the daemon's edge span stitches under
	// this hop's span and both tiers log one request ID.
	rid, tid := reqtrace.IDsFromContext(ctx)
	reqtrace.Inject(req.Header, rid, tid, reqtrace.SpanFromContext(ctx))
	return w.client.Do(req)
}

// errorBody extracts the daemon's error message (bounded) for diagnostics.
func errorBody(resp *http.Response) string {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var eb struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &eb) == nil && eb.Error != "" {
		return eb.Error
	}
	return string(bytes.TrimSpace(raw))
}

// Search implements Worker against POST /shard/search. The propagated
// deadline is the context's remaining budget minus the network margin
// (floored at MinTimeout), so the daemon gives up in time for its partial
// result to make it back instead of burning the whole budget upstream.
func (w *RemoteWorker) Search(ctx context.Context, queries []string, shard, numShards int) (*blast.ShardResult, error) {
	w.inflight.Add(1)
	defer w.inflight.Add(-1)

	var timeoutMS int64
	if dl, ok := ctx.Deadline(); ok {
		budget := time.Until(dl) - w.margin
		if budget < w.minTO {
			budget = w.minTO
		}
		timeoutMS = budget.Milliseconds()
		if timeoutMS < 1 {
			timeoutMS = 1
		}
	}
	resp, err := w.do(ctx, http.MethodPost, "/shard/search", server.ShardSearchRequest{
		Queries: queries, Shard: shard, NumShards: numShards, TimeoutMS: timeoutMS,
	})
	if err != nil {
		return nil, fmt.Errorf("router: worker %s: %w", w.name, err)
	}
	defer resp.Body.Close()

	switch resp.StatusCode {
	case http.StatusOK:
		// fall through to decode
	case http.StatusTooManyRequests:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		after := time.Second
		if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
			after = time.Duration(s) * time.Second
		}
		return nil, &BusyError{Worker: w.name, RetryAfter: after}
	default:
		return nil, fmt.Errorf("router: worker %s: /shard/search status %d: %s",
			w.name, resp.StatusCode, errorBody(resp))
	}

	var sr server.ShardSearchResponse
	if err := json.NewDecoder(fiRPCBody.Reader(resp.Body)).Decode(&sr); err != nil {
		return nil, fmt.Errorf("router: worker %s: decoding shard result: %w", w.name, err)
	}
	if sr.Result == nil {
		return nil, fmt.Errorf("router: worker %s: response carries no shard result", w.name)
	}
	w.gen.Store(sr.Generation)
	part, err := blast.ImportShardResult(sr.Result)
	if err != nil {
		return nil, fmt.Errorf("router: worker %s: %w", w.name, err)
	}
	return part, nil
}

// HealthCheck implements HealthChecker against GET /readyz: nil on 200,
// an error (the prober's ejection signal) otherwise.
func (w *RemoteWorker) HealthCheck(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return fmt.Errorf("router: worker %s unreachable: %w", w.name, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("router: worker %s not ready: /readyz status %d", w.name, resp.StatusCode)
	}
	return nil
}

// Info runs the registration handshake against GET /shard/info.
func (w *RemoteWorker) Info(ctx context.Context) (*server.ShardInfoResponse, error) {
	resp, err := w.do(ctx, http.MethodGet, "/shard/info", nil)
	if err != nil {
		return nil, fmt.Errorf("router: worker %s: %w", w.name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("router: worker %s: /shard/info status %d: %s",
			w.name, resp.StatusCode, errorBody(resp))
	}
	var info server.ShardInfoResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, fmt.Errorf("router: worker %s: decoding /shard/info: %w", w.name, err)
	}
	w.gen.Store(info.Generation)
	return &info, nil
}

// Reload drives the daemon's POST /reload. With verifyOnly the daemon
// validates the candidate container (fingerprint, checksums) without
// swapping — the rolling orchestrator's pre-flight.
func (w *RemoteWorker) Reload(ctx context.Context, path string, verifyOnly bool) (*server.ReloadResponse, error) {
	resp, err := w.do(ctx, http.MethodPost, "/reload", server.ReloadRequest{Path: path, VerifyOnly: verifyOnly})
	if err != nil {
		return nil, fmt.Errorf("router: worker %s: %w", w.name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("router: worker %s: /reload status %d: %s",
			w.name, resp.StatusCode, errorBody(resp))
	}
	var rr server.ReloadResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return nil, fmt.Errorf("router: worker %s: decoding /reload: %w", w.name, err)
	}
	if !verifyOnly {
		w.gen.Store(rr.Generation)
	}
	return &rr, nil
}

// ReloadContainer implements Reloader over the wire.
func (w *RemoteWorker) ReloadContainer(ctx context.Context, path string, verifyOnly bool) error {
	_, err := w.Reload(ctx, path, verifyOnly)
	return err
}

// VerifyRemoteTopology runs the coherence handshake across a remote fleet:
// every replica of every shard must serve the same container parameters
// (fingerprint), agree on the global search space, agree with its shard
// peers on the local slice, and the slices must tile the logical database
// (round-robin share per shard, totals summing to the global). It returns
// the agreed fingerprint and global sequence count.
func VerifyRemoteTopology(ctx context.Context, shards [][]*RemoteWorker) (*blast.Fingerprint, int64, error) {
	if len(shards) == 0 {
		return nil, 0, fmt.Errorf("router: no shards to verify")
	}
	n := int64(len(shards))
	var fp *blast.Fingerprint
	var globalSeqs, globalRes int64
	var sumSeqs int64
	for s, reps := range shards {
		if len(reps) == 0 {
			return nil, 0, fmt.Errorf("router: shard %d has no replicas", s)
		}
		var shardSeqs int
		var shardRes int64
		var shardManSeq int64
		var shardManHash string
		for i, w := range reps {
			info, err := w.Info(ctx)
			if err != nil {
				return nil, 0, fmt.Errorf("router: shard %d replica %s: handshake: %w", s, w.Name(), err)
			}
			if fp == nil {
				f := info.Fingerprint
				fp = &f
				globalSeqs, globalRes = info.GlobalSequences, info.GlobalResidues
			} else if info.Fingerprint != *fp {
				return nil, 0, fmt.Errorf("router: shard %d replica %s: fingerprint %+v differs from the fleet's %+v",
					s, w.Name(), info.Fingerprint, *fp)
			}
			if info.GlobalSequences != globalSeqs || info.GlobalResidues != globalRes {
				return nil, 0, fmt.Errorf("router: shard %d replica %s: global space %d seqs/%d residues, fleet says %d/%d",
					s, w.Name(), info.GlobalSequences, info.GlobalResidues, globalSeqs, globalRes)
			}
			if i == 0 {
				shardSeqs, shardRes = info.Sequences, info.TotalResidues
				shardManSeq, shardManHash = info.ManifestSeq, info.ManifestHash
			} else if info.Sequences != shardSeqs || info.TotalResidues != shardRes {
				return nil, 0, fmt.Errorf("router: shard %d replica %s: %d seqs/%d residues, shard peer says %d/%d",
					s, w.Name(), info.Sequences, info.TotalResidues, shardSeqs, shardRes)
			} else if info.ManifestSeq != shardManSeq || info.ManifestHash != shardManHash {
				// Store-backed replicas must sit at the same manifest
				// commit: equal sequence totals do not prove equal
				// sequences once deltas are involved, and merging results
				// computed against different delta sets is silent garbage.
				// Mixed-manifest shards are refused until delta
				// propagation brings every replica to the same commit.
				return nil, 0, fmt.Errorf("router: shard %d replica %s: manifest %d/%s, shard peer says %d/%s — delta propagation incomplete, refusing mixed-manifest topology",
					s, w.Name(), info.ManifestSeq, info.ManifestHash, shardManSeq, shardManHash)
			}
		}
		// Round-robin sharding gives shard s sequences s, s+n, s+2n, ...
		want := (globalSeqs - int64(s) + n - 1) / n
		if int64(shardSeqs) != want {
			return nil, 0, fmt.Errorf("router: shard %d holds %d sequences, round-robin share of %d over %d shards is %d",
				s, shardSeqs, globalSeqs, n, want)
		}
		sumSeqs += int64(shardSeqs)
	}
	if sumSeqs != globalSeqs {
		return nil, 0, fmt.Errorf("router: shards hold %d sequences, global says %d", sumSeqs, globalSeqs)
	}
	return fp, globalSeqs, nil
}
