package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/alphabet"
	"repro/internal/obs"
	"repro/internal/reqtrace"
	"repro/internal/server"
)

// The router frontend speaks the same /search wire protocol as the
// single-database daemon (internal/server types), extended with per-shard
// routing detail. A client that understands the monolithic response can read
// the sharded one unchanged — extra fields ride after "stats" — and a merged
// complete response carries byte-identical results to the monolithic daemon
// serving the unsharded container.

// ShardStatusWire is the wire form of one shard's routing outcome.
type ShardStatusWire struct {
	Shard  int    `json:"shard"`
	Worker string `json:"worker"`
	// Status is "ok", "shed" (replica backpressure, retryable), or "error".
	Status    string  `json:"status"`
	Completed int     `json:"completed_queries,omitempty"`
	Error     string  `json:"error,omitempty"`
	MS        float64 `json:"ms"`
}

// SearchResponse is the sharded /search response: the monolithic response
// plus the routing report. Incomplete (inherited) is true whenever a shard
// contributed nothing — those queries answer completed=false rather than
// fake zero-hit results.
type SearchResponse struct {
	server.SearchResponse
	Policy string            `json:"policy"`
	Shards []ShardStatusWire `json:"shards"`
}

// errorResponse mirrors the monolithic daemon's uniform error body, with the
// routing report attached when the scatter ran.
type errorResponse struct {
	Error  string            `json:"error"`
	Status int               `json:"status"`
	Shards []ShardStatusWire `json:"shards,omitempty"`
}

// FrontendConfig tunes the HTTP tier in front of a Router. Zero values
// select the defaults. Admission bounding lives in the shard workers (their
// token budgets): the frontend only validates, scatters, and renders.
type FrontendConfig struct {
	// DefaultTimeout is the per-request deadline when the client sends none
	// (default 30s); MaxTimeout caps client-requested deadlines (default 2m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxQueries caps the batch size of one request (default 64).
	MaxQueries int
	// MaxBodyBytes caps the request body (default 32 MiB).
	MaxBodyBytes int64
	// Registry serves /metrics (default obs.Default). Use the registry the
	// Router stamps so router_* numbers are visible.
	Registry *obs.Registry
	// Generation is reported as db_generation (default: constant 0). With
	// local shard workers, wire it to the minimum session generation.
	Generation func() int64

	// Tracer, when set, stitches every routed request into a JSONL trace
	// tree: edge, scatter with per-shard children (each nesting the shard's
	// per-query six-stage pipeline spans), and merge, linked by span IDs
	// and correlated by the X-Request-ID echoed on every outcome. Nil (the
	// default) is free — every span operation no-ops.
	Tracer *reqtrace.Tracer
	// Recorder, when set, writes one compact workload record per request
	// (arrival time, query lengths, deadline, outcome, scatter/merge and
	// per-shard durations) — replayer and capacity-planner input. Nil is
	// free.
	Recorder *reqtrace.Recorder
	// Logf receives operational log lines (sheds, shard failures) tagged
	// with the request ID. Nil disables logging (tests); the daemon wires
	// it to stderr.
	Logf func(format string, args ...any)
}

func (c FrontendConfig) withDefaults() FrontendConfig {
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MaxQueries <= 0 {
		c.MaxQueries = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.Registry == nil {
		c.Registry = obs.Default
	}
	if c.Generation == nil {
		c.Generation = func() int64 { return 0 }
	}
	return c
}

// Frontend is the HTTP surface of the scatter-gather tier: /search over the
// router, plus the standard debug endpoints (/metrics, /healthz, /readyz).
type Frontend struct {
	rt  *Router
	cfg FrontendConfig
	mux *http.ServeMux

	searchCtx      context.Context
	cancelSearches context.CancelFunc
	draining       chan struct{}
	drainOnce      sync.Once

	httpMu  sync.Mutex
	httpSrv *http.Server
	httpLn  net.Listener
}

// NewFrontend wraps a router in the HTTP tier.
func NewFrontend(rt *Router, cfg FrontendConfig) *Frontend {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	f := &Frontend{
		rt: rt, cfg: cfg,
		searchCtx: ctx, cancelSearches: cancel,
		draining: make(chan struct{}),
	}
	f.mux = http.NewServeMux()
	f.mux.HandleFunc("/search", f.handleSearch)
	f.mux.HandleFunc("/reload", f.handleReload)
	f.mux.HandleFunc("/replicas", f.handleReplicas)
	f.mux.Handle("/", obs.HandlerWithReadiness(cfg.Registry, f.Ready))
	return f
}

// handleReplicas reports every replica's lifecycle state (ops visibility for
// the ejection/breaker machinery).
func (f *Frontend) handleReplicas(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET only", Status: http.StatusMethodNotAllowed})
		return
	}
	writeJSON(w, http.StatusOK, f.rt.ReplicaStates())
}

// Router returns the scatter-gather core the frontend serves.
func (f *Frontend) Router() *Router { return f.rt }

// Draining reports whether BeginDrain has run.
func (f *Frontend) Draining() bool {
	select {
	case <-f.draining:
		return true
	default:
		return false
	}
}

// Ready is the readiness probe behind /readyz: failing while draining, and
// failing while any shard has zero healthy replicas — a fleet that can only
// produce guaranteed-incomplete merges pulls itself from upstream rotation.
func (f *Frontend) Ready() error {
	if f.Draining() {
		return errors.New("draining")
	}
	return f.rt.HealthErr()
}

// Handler returns the HTTP surface with panic recovery (a poisoned request
// answers 500, never a torn connection).
func (f *Frontend) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				http.Error(w, fmt.Sprintf("internal error: %v", v), http.StatusInternalServerError)
			}
		}()
		f.mux.ServeHTTP(w, r)
	})
}

// Start binds addr (":0" for an ephemeral port) and serves in the
// background, returning the bound address. It also starts the router's
// health prober (a no-op when nothing is probeable).
func (f *Frontend) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("router: listen on %s: %w", addr, err)
	}
	f.rt.Start()
	srv := &http.Server{
		Handler:     f.Handler(),
		BaseContext: func(net.Listener) context.Context { return f.searchCtx },
	}
	f.httpMu.Lock()
	f.httpSrv, f.httpLn = srv, ln
	f.httpMu.Unlock()
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

// BeginDrain takes the frontend out of rotation (new searches answer 503,
// /readyz fails) and cancels in-flight scatters after grace so shard batches
// stop between tasks and flush partial results.
func (f *Frontend) BeginDrain(grace time.Duration) {
	f.drainOnce.Do(func() {
		close(f.draining)
		if grace <= 0 {
			f.cancelSearches()
			return
		}
		t := time.AfterFunc(grace, f.cancelSearches)
		go func() {
			<-f.searchCtx.Done()
			t.Stop()
		}()
	})
}

// Drain is the graceful shutdown: BeginDrain(grace) then HTTP Shutdown
// bounded by ctx.
func (f *Frontend) Drain(ctx context.Context, grace time.Duration) error {
	f.BeginDrain(grace)
	f.httpMu.Lock()
	srv := f.httpSrv
	f.httpMu.Unlock()
	var err error
	if srv != nil {
		err = srv.Shutdown(ctx)
	}
	f.cancelSearches()
	f.rt.Close()
	return err
}

// Close tears everything down immediately.
func (f *Frontend) Close() error {
	f.BeginDrain(0)
	f.cancelSearches()
	f.rt.Close()
	f.httpMu.Lock()
	srv := f.httpSrv
	f.httpMu.Unlock()
	if srv != nil {
		return srv.Close()
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// retryAfterSeconds renders a Retry-After hint (whole seconds, minimum 1).
func retryAfterSeconds(d time.Duration) string {
	s := int(d.Round(time.Second) / time.Second)
	if s < 1 {
		s = 1
	}
	return strconv.Itoa(s)
}

func statusesWire(rep *Report) []ShardStatusWire {
	if rep == nil {
		return nil
	}
	out := make([]ShardStatusWire, len(rep.Shards))
	for i := range rep.Shards {
		st := &rep.Shards[i]
		w := ShardStatusWire{
			Shard: st.Shard, Worker: st.Worker,
			Completed: st.Completed,
			MS:        float64(st.Nanos) / float64(time.Millisecond),
		}
		switch {
		case st.OK:
			w.Status = "ok"
		case st.Shed:
			w.Status = "shed"
			w.Error = st.Err.Error()
		default:
			w.Status = "error"
			w.Error = st.Err.Error()
		}
		out[i] = w
	}
	return out
}

func (f *Frontend) handleSearch(w http.ResponseWriter, r *http.Request) {
	sc := f.beginRouteScope(w, r)
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only", Status: http.StatusMethodNotAllowed})
		sc.finish(reqtrace.OutcomeRejected, http.StatusMethodNotAllowed)
		return
	}
	if f.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "draining", Status: http.StatusServiceUnavailable})
		sc.finish(reqtrace.OutcomeCancelled, http.StatusServiceUnavailable)
		return
	}
	var req server.SearchRequest
	r.Body = http.MaxBytesReader(w, r.Body, f.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("decoding request: %v", err), Status: http.StatusBadRequest})
		sc.finish(reqtrace.OutcomeRejected, http.StatusBadRequest)
		return
	}
	if len(req.Queries) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "no queries", Status: http.StatusBadRequest})
		sc.finish(reqtrace.OutcomeRejected, http.StatusBadRequest)
		return
	}
	if len(req.Queries) > f.cfg.MaxQueries {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{
			Error:  fmt.Sprintf("%d queries exceeds the per-request cap of %d", len(req.Queries), f.cfg.MaxQueries),
			Status: http.StatusRequestEntityTooLarge,
		})
		sc.finish(reqtrace.OutcomeRejected, http.StatusRequestEntityTooLarge)
		return
	}
	for i := range req.Queries {
		if _, err := alphabet.Encode([]byte(req.Queries[i].Residues)); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{
				Error:  fmt.Sprintf("query %d (%s): %v", i, req.Queries[i].Name, err),
				Status: http.StatusBadRequest,
			})
			sc.finish(reqtrace.OutcomeRejected, http.StatusBadRequest)
			return
		}
	}

	timeout := f.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > f.cfg.MaxTimeout {
		timeout = f.cfg.MaxTimeout
	}
	if sc.rec != nil {
		sc.rec.QueryLens = make([]int, len(req.Queries))
		for i := range req.Queries {
			sc.rec.QueryLens[i] = len(req.Queries[i].Residues)
		}
		sc.rec.DeadlineMS = timeout.Milliseconds()
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	// The scatter tier hangs its spans under the edge span it finds in the
	// context (a no-op nil with tracing off), and remote workers read the
	// IDs back out to stamp their outbound propagation headers — one request
	// ID across router and shard daemons.
	ctx = reqtrace.ContextWithSpan(ctx, sc.root)
	var traceID string
	if sc.tr != nil {
		traceID = sc.tr.TraceID
	}
	ctx = reqtrace.ContextWithIDs(ctx, sc.rid, traceID)

	texts := make([]string, len(req.Queries))
	for i := range req.Queries {
		texts[i] = req.Queries[i].Residues
	}
	searchStart := time.Now()
	br, rep, err := f.rt.Search(ctx, texts, req.Policy)
	searchDur := time.Since(searchStart)
	sc.recordReport(rep)
	if err != nil {
		switch {
		case rep == nil: // bad input (unknown policy), nothing scattered
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error(), Status: http.StatusBadRequest})
			sc.finish(reqtrace.OutcomeRejected, http.StatusBadRequest)
		case errors.Is(err, ErrAllShardsUnavailable) && rep.Failed() == 0:
			// Pure overload: every shard shed. 429 with the aggregated hint,
			// exactly like the monolithic daemon's queue-full shed.
			w.Header().Set("Retry-After", retryAfterSeconds(rep.RetryAfter))
			writeJSON(w, http.StatusTooManyRequests, errorResponse{
				Error: err.Error(), Status: http.StatusTooManyRequests, Shards: statusesWire(rep),
			})
			f.logf("request %s shed: all %d shards saturated, retry after %v", sc.rid, len(rep.Shards), rep.RetryAfter)
			sc.finish(reqtrace.OutcomeShed, http.StatusTooManyRequests)
		default:
			if rep.Sheds() > 0 {
				w.Header().Set("Retry-After", retryAfterSeconds(rep.RetryAfter))
			}
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{
				Error: err.Error(), Status: http.StatusServiceUnavailable, Shards: statusesWire(rep),
			})
			f.logf("request %s failed: %d shed, %d failed of %d shards: %v",
				sc.rid, rep.Sheds(), rep.Failed(), len(rep.Shards), err)
			outcome := reqtrace.OutcomeError
			if ctx.Err() == context.DeadlineExceeded {
				outcome = reqtrace.OutcomeTimeout
			}
			sc.finish(outcome, http.StatusServiceUnavailable)
		}
		return
	}

	resp := SearchResponse{
		SearchResponse: server.SearchResponse{
			Generation: f.cfg.Generation(),
			Incomplete: br.Err != nil,
			Results:    make([]server.QueryOutput, len(br.Results)),
			Stats: server.RequestStats{
				SearchMS:         float64(searchDur) / float64(time.Millisecond),
				EffectiveTimeout: timeout.String(),
				Workers:          br.Sched.Workers,
				Tasks:            br.Sched.Tasks,
				TasksCancelled:   br.Sched.TasksCancelled,
				TasksPanicked:    br.Sched.TasksPanicked,
				QueriesAborted:   br.Sched.QueriesAborted,
				UtilizationPct:   br.Sched.Utilization() * 100,
			},
		},
		Policy: rep.Policy,
		Shards: statusesWire(rep),
	}
	if br.Err != nil {
		resp.Error = br.Err.Error()
	}
	for i := range br.Results {
		out := server.QueryOutput{
			Name:      req.Queries[i].Name,
			QueryLen:  br.Results[i].QueryLen,
			Completed: br.Completed[i],
			Hits:      []server.Hit{},
		}
		if br.QueryErrs[i] != nil {
			out.Error = br.QueryErrs[i].Error()
		}
		if br.Completed[i] {
			for _, h := range br.Results[i].Hits {
				out.Hits = append(out.Hits, server.HitFromBlast(h))
			}
		}
		resp.Results[i] = out
	}
	// A partial (some-shards-shed) success still tells the client when to
	// retry for the full answer.
	if rep.Sheds() > 0 {
		w.Header().Set("Retry-After", retryAfterSeconds(rep.RetryAfter))
	}
	writeJSON(w, http.StatusOK, resp)
	if sc.rec != nil {
		sc.rec.SpanNanos["search"] = searchDur.Nanoseconds()
	}
	if br.Err != nil {
		// Honest partial: a 200 whose batch carries an error (deadline or a
		// non-answering shard) counts against the deadline budget, not as a
		// clean success.
		f.logf("request %s partial: %v", sc.rid, br.Err)
		sc.finish(reqtrace.OutcomeTimeout, http.StatusOK)
		return
	}
	sc.finish(reqtrace.OutcomeOK, http.StatusOK)
}
