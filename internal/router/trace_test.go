package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/blast"
	"repro/internal/obs"
	"repro/internal/reqtrace"
)

// TestFrontendTraceTreeAndIdentity: a routed request with tracing on yields
// one stitched trace tree — edge, scatter, per-shard spans with nested
// per-query six-stage pipeline spans, merge — and byte-identical results to
// the same request with tracing off.
func TestFrontendTraceTreeAndIdentity(t *testing.T) {
	_, shards, queries := fixture(t)
	rt, err := New(localWorkers(shards, 2), Options{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}

	var traceBuf, recBuf bytes.Buffer
	fe := NewFrontend(rt, FrontendConfig{
		Registry: obs.NewRegistry(),
		Tracer:   reqtrace.NewTracer("mublastpr", &traceBuf),
		Recorder: reqtrace.NewRecorder(&recBuf),
	})
	rec := postSearch(t, fe.Handler(), searchBody(queries, ""))
	if rec.Code != http.StatusOK {
		t.Fatalf("traced search = %d: %s", rec.Code, rec.Body.String())
	}
	rid := rec.Header().Get(reqtrace.HeaderRequestID)
	if rid == "" {
		t.Fatalf("no X-Request-ID on traced response")
	}

	rt2, err := New(localWorkers(shards, 2), Options{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	feOff := NewFrontend(rt2, FrontendConfig{Registry: obs.NewRegistry()})
	recOff := postSearch(t, feOff.Handler(), searchBody(queries, ""))
	if recOff.Code != http.StatusOK {
		t.Fatalf("untraced search = %d", recOff.Code)
	}

	// Byte-identity of the merged results with tracing on vs off.
	var on, off SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &on); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(recOff.Body.Bytes(), &off); err != nil {
		t.Fatal(err)
	}
	onJSON, _ := json.Marshal(on.Results)
	offJSON, _ := json.Marshal(off.Results)
	if !bytes.Equal(onJSON, offJSON) {
		t.Fatalf("results differ with tracing on vs off:\non:  %s\noff: %s", onJSON, offJSON)
	}

	traces, err := reqtrace.ReadTraces(&traceBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 {
		t.Fatalf("got %d trace trees, want 1", len(traces))
	}
	tr := traces[0]
	if tr.RequestID != rid || tr.Daemon != "mublastpr" || tr.Outcome != reqtrace.OutcomeOK {
		t.Fatalf("trace header = %q/%q/%q", tr.RequestID, tr.Daemon, tr.Outcome)
	}
	if err := tr.Linked(); err != nil {
		t.Fatalf("trace tree not linked: %v", err)
	}
	for _, name := range []string{"edge", "scatter", "merge"} {
		if tr.RootSpan().Find(name) == nil {
			t.Fatalf("trace tree missing span %q", name)
		}
	}
	scatter := tr.RootSpan().Find("scatter")
	if len(scatter.Children) != len(shards) {
		t.Fatalf("scatter has %d shard children, want %d", len(scatter.Children), len(shards))
	}
	for s := range shards {
		ss := scatter.Find("shard" + strconv.Itoa(s))
		if ss == nil {
			t.Fatalf("scatter missing shard%d span", s)
		}
		if ss.Attrs["status"] != "ok" || ss.Attrs["worker"] == "" {
			t.Fatalf("shard%d attrs = %v", s, ss.Attrs)
		}
		// Each shard completed every query; each query span nests exactly
		// the six pipeline stages.
		if len(ss.Children) != len(queries) {
			t.Fatalf("shard%d has %d query spans, want %d", s, len(ss.Children), len(queries))
		}
		for _, q := range ss.Children {
			if !strings.HasPrefix(q.Name, "query:") {
				t.Fatalf("shard%d child %q is not a query span", s, q.Name)
			}
			if len(q.Children) != 6 {
				t.Fatalf("%s under shard%d has %d stage children, want 6", q.Name, s, len(q.Children))
			}
			for _, st := range q.Children {
				if !strings.HasPrefix(st.Name, "stage:") {
					t.Fatalf("query child %q is not a stage span", st.Name)
				}
			}
		}
	}

	// The workload record carries scatter/merge/per-shard durations.
	recs, err := reqtrace.ReadRecords(&recBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	wr := recs[0]
	if wr.RequestID != rid || wr.Outcome != reqtrace.OutcomeOK || wr.Status != 200 {
		t.Fatalf("record = %+v", wr)
	}
	if len(wr.QueryLens) != len(queries) || wr.QueryLens[0] != len(queries[0]) {
		t.Fatalf("record query lens = %v", wr.QueryLens)
	}
	for _, k := range []string{"total", "search", "scatter", "shard0", "shard1", "shard2"} {
		if _, ok := wr.SpanNanos[k]; !ok {
			t.Fatalf("record missing span %q: %v", k, wr.SpanNanos)
		}
	}
}

// TestFrontendShedTracedAndLogged: an all-shards-shed 429 still carries the
// request ID, records a shed outcome with per-shard durations, and logs with
// the request ID.
func TestFrontendShedTracedAndLogged(t *testing.T) {
	_, shards, queries := fixture(t)
	workers := make([][]Worker, len(shards))
	for s := range shards {
		name := "b" + strconv.Itoa(s)
		workers[s] = []Worker{&stubWorker{name: name, search: func(ctx context.Context, q []string, shard, n int) (*blast.ShardResult, error) {
			return nil, &BusyError{Worker: name, RetryAfter: time.Second}
		}}}
	}
	rt, err := New(workers, Options{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	var traceBuf, recBuf bytes.Buffer
	var logLines []string
	fe := NewFrontend(rt, FrontendConfig{
		Registry: obs.NewRegistry(),
		Tracer:   reqtrace.NewTracer("mublastpr", &traceBuf),
		Recorder: reqtrace.NewRecorder(&recBuf),
		Logf: func(format string, args ...any) {
			logLines = append(logLines, fmt.Sprintf(format, args...))
		},
	})
	rec := postSearch(t, fe.Handler(), searchBody(queries, ""))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("all-shed = %d, want 429", rec.Code)
	}
	rid := rec.Header().Get(reqtrace.HeaderRequestID)
	if rid == "" {
		t.Fatalf("shed response carries no X-Request-ID")
	}
	traces, err := reqtrace.ReadTraces(&traceBuf)
	if err != nil || len(traces) != 1 {
		t.Fatalf("traces = %d, err %v", len(traces), err)
	}
	if traces[0].Outcome != reqtrace.OutcomeShed {
		t.Fatalf("trace outcome %q, want shed", traces[0].Outcome)
	}
	if ss := traces[0].RootSpan().Find("shard0"); ss == nil || ss.Attrs["status"] != "shed" {
		t.Fatalf("shard0 span not marked shed: %+v", ss)
	}
	recs, err := reqtrace.ReadRecords(&recBuf)
	if err != nil || len(recs) != 1 {
		t.Fatalf("records = %d, err %v", len(recs), err)
	}
	if recs[0].Outcome != reqtrace.OutcomeShed || recs[0].Status != 429 || recs[0].RequestID != rid {
		t.Fatalf("shed record = %+v", recs[0])
	}
	var logged bool
	for _, l := range logLines {
		if strings.Contains(l, "shed") && strings.Contains(l, rid) {
			logged = true
		}
	}
	if !logged {
		t.Fatalf("shed not logged with request id %s: %v", rid, logLines)
	}
}

// TestFrontendUpstreamContextStitches: a request arriving with trace headers
// (as a load balancer or an upstream router would send) keeps the upstream
// request ID and parents its edge span under the upstream span.
func TestFrontendUpstreamContextStitches(t *testing.T) {
	_, shards, queries := fixture(t)
	rt, err := New(localWorkers(shards, 2), Options{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	var traceBuf bytes.Buffer
	fe := NewFrontend(rt, FrontendConfig{
		Registry: obs.NewRegistry(),
		Tracer:   reqtrace.NewTracer("mublastpr", &traceBuf),
	})
	raw, _ := json.Marshal(searchBody(queries, ""))
	req := httptest.NewRequest(http.MethodPost, "/search", bytes.NewReader(raw))
	reqtrace.Inject(req.Header, "req-upstream", "00000000feedface", &reqtrace.Span{SpanID: "00000000deadbeef"})
	rec := httptest.NewRecorder()
	fe.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if got := rec.Header().Get(reqtrace.HeaderRequestID); got != "req-upstream" {
		t.Fatalf("X-Request-ID = %q, want upstream id echoed", got)
	}
	traces, err := reqtrace.ReadTraces(&traceBuf)
	if err != nil || len(traces) != 1 {
		t.Fatalf("traces = %d, err %v", len(traces), err)
	}
	tr := traces[0]
	if tr.RequestID != "req-upstream" || tr.TraceID != "00000000feedface" {
		t.Fatalf("upstream ids not honored: %+v", tr)
	}
	if tr.RootSpan().ParentID != "00000000deadbeef" {
		t.Fatalf("edge span not parented under upstream: %q", tr.RootSpan().ParentID)
	}
}
