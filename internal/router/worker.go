// Package router is the scatter-gather serving tier over a sharded database:
// a query batch is scattered to every shard (each shard holding one
// round-robin slice of the length-sorted database, see blast.Shards), each
// shard searches with *global* Karlin-Altschul statistics, and the per-shard
// results merge byte-identically to a monolithic search over the whole
// database. Capacity grows by adding shards or replicas instead of cores.
//
// Replica selection within a shard is a pluggable Policy (round-robin,
// least-loaded, weighted), selectable per request. Shard-level failure is
// honest by construction: a worker that sheds (backpressure) or fails makes
// the affected queries *incomplete* — with the shed's Retry-After hint
// surfaced to the client — and is never merged as if the shard had zero
// hits.
package router

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/blast"
)

// BusyError is a worker's backpressure signal: the replica is saturated and
// the caller should retry after the hint. The router maps it to a shed
// shard status (and the HTTP tier to 429/Retry-After), distinct from a
// failed shard.
type BusyError struct {
	Worker     string
	RetryAfter time.Duration
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("router: worker %s saturated, retry after %v", e.Worker, e.RetryAfter)
}

// Worker is one replica of one shard: something that can search a query
// batch against its shard slice and report its load. Implementations must be
// safe for concurrent use.
type Worker interface {
	// Name identifies the replica in statuses and metrics.
	Name() string
	// Search runs the batch against this worker's copy of shard `shard` of
	// `numShards`, returning raw per-shard results for the merge. A
	// saturated worker returns *BusyError instead of queueing unboundedly.
	Search(ctx context.Context, queries []string, shard, numShards int) (*blast.ShardResult, error)
	// Inflight is the number of searches the worker is currently running
	// (the least-loaded policy's signal).
	Inflight() int64
	// Weight is the worker's relative capacity (the weighted policy's
	// signal); non-positive means 1.
	Weight() float64
}

// LocalWorker serves a shard from an in-process blast.Session with a bounded
// concurrency budget: at most `concurrency` searches run at once and there
// is no queue — excess load is refused immediately with a BusyError, so
// backpressure propagates to the router instead of hiding in an unbounded
// wait. The session can be hot-reloaded (blast.Session.Reload) while the
// worker serves.
type LocalWorker struct {
	name        string
	ses         *blast.Session
	weight      float64
	retryAfter  time.Duration
	concurrency int
	tokens      chan struct{}
	inflight    atomic.Int64
	// shedStreak counts sheds since the last admitted search; it scales the
	// Retry-After hint so sustained pressure pushes retries further out.
	shedStreak atomic.Int64
}

// NewLocalWorker wraps a session. concurrency <= 0 means 1; weight <= 0
// means 1; retryAfter <= 0 means 1s.
func NewLocalWorker(name string, ses *blast.Session, concurrency int, weight float64, retryAfter time.Duration) *LocalWorker {
	if concurrency <= 0 {
		concurrency = 1
	}
	if weight <= 0 {
		weight = 1
	}
	if retryAfter <= 0 {
		retryAfter = time.Second
	}
	return &LocalWorker{
		name: name, ses: ses, weight: weight, retryAfter: retryAfter,
		concurrency: concurrency,
		tokens:      make(chan struct{}, concurrency),
	}
}

// Name implements Worker.
func (w *LocalWorker) Name() string { return w.name }

// Inflight implements Worker.
func (w *LocalWorker) Inflight() int64 { return w.inflight.Load() }

// Weight implements Worker.
func (w *LocalWorker) Weight() float64 { return w.weight }

// Session returns the underlying session (for hot reloads and stats).
func (w *LocalWorker) Session() *blast.Session { return w.ses }

// retryAfterShedCap bounds the adaptive Retry-After hint at this multiple of
// the base: the hint must grow under sustained pressure but stay a hint, not
// an exile.
const retryAfterShedCap = 8

// RetryAfterHint is the Retry-After a shed would carry right now: the base
// hint scaled by the shed streak relative to the worker's capacity
// (1 + streak/concurrency, capped at 8x). One refused caller on a big worker
// barely moves it; a streak on a small worker pushes retries out fast, so
// the hint tracks how outmatched the capacity actually is.
func (w *LocalWorker) RetryAfterHint() time.Duration {
	mult := 1 + float64(w.shedStreak.Load())/float64(w.concurrency)
	if mult > retryAfterShedCap {
		mult = retryAfterShedCap
	}
	return time.Duration(float64(w.retryAfter) * mult)
}

// Search implements Worker: token-bounded, shedding when saturated.
func (w *LocalWorker) Search(ctx context.Context, queries []string, shard, numShards int) (*blast.ShardResult, error) {
	select {
	case w.tokens <- struct{}{}:
	default:
		w.shedStreak.Add(1)
		return nil, &BusyError{Worker: w.name, RetryAfter: w.RetryAfterHint()}
	}
	defer func() { <-w.tokens }()
	w.shedStreak.Store(0)
	w.inflight.Add(1)
	defer w.inflight.Add(-1)
	db, release := w.ses.Acquire()
	defer release()
	return db.SearchShardBatchCtx(ctx, queries, shard, numShards)
}

// ReloadContainer implements Reloader: verify-only validates the candidate
// — a container file or an ingest-store directory (manifest, every
// container, pending WAL) — without touching the serving session; otherwise
// blast.Session.Reload runs its verify-before-swap.
func (w *LocalWorker) ReloadContainer(_ context.Context, path string, verifyOnly bool) error {
	if verifyOnly {
		_, err := blast.VerifyPath(path)
		return err
	}
	return w.ses.Reload(path)
}
