package hitsort

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/hit"
)

// randomHits builds hits with keys confined to keyBits bits and a payload
// that records original position, for stability checks.
func randomHits(rng *rand.Rand, n, keyBits int) []hit.Hit {
	mask := uint32(1)<<uint(keyBits) - 1
	hits := make([]hit.Hit, n)
	for i := range hits {
		hits[i] = hit.Hit{Key: rng.Uint32() & mask, QOff: int32(i)}
	}
	return hits
}

// checkStableSorted verifies key order and stability (QOff increasing within
// equal keys, since QOff was assigned in input order).
func checkStableSorted(t *testing.T, hits []hit.Hit, name string) {
	t.Helper()
	for i := 1; i < len(hits); i++ {
		if hits[i].Key < hits[i-1].Key {
			t.Fatalf("%s: keys out of order at %d", name, i)
		}
		if hits[i].Key == hits[i-1].Key && hits[i].QOff < hits[i-1].QOff {
			t.Fatalf("%s: stability violated at %d", name, i)
		}
	}
}

func sorters() map[string]func([]hit.Hit, int) {
	return map[string]func([]hit.Hit, int){
		"LSD":   func(h []hit.Hit, keyBits int) { LSD(h, keyBits, nil) },
		"MSD":   func(h []hit.Hit, keyBits int) { MSD(h, keyBits, nil) },
		"Merge": func(h []hit.Hit, _ int) { Merge(h, nil) },
		"TwoLevelBin": func(h []hit.Hit, keyBits int) {
			// Treat the low half of the key as the diagonal field.
			diagBits := uint32(keyBits / 2)
			if diagBits == 0 {
				diagBits = 1
			}
			numDiags := 1 << diagBits
			numSeqs := 1 << (uint(keyBits) - uint(diagBits))
			TwoLevelBin(h, diagBits, numSeqs, numDiags, nil)
		},
	}
}

func TestSortersAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, sorter := range sorters() {
		for _, n := range []int{0, 1, 2, 3, 100, 1000, 10000} {
			for _, keyBits := range []int{4, 12, 22, 32} {
				in := randomHits(rng, n, keyBits)
				want := append([]hit.Hit(nil), in...)
				sort.SliceStable(want, func(i, j int) bool { return want[i].Key < want[j].Key })
				sorter(in, keyBits)
				if len(in) != len(want) {
					t.Fatalf("%s: length changed", name)
				}
				for i := range in {
					if in[i] != want[i] {
						t.Fatalf("%s n=%d bits=%d: mismatch at %d: %v vs %v",
							name, n, keyBits, i, in[i], want[i])
					}
				}
			}
		}
	}
}

func TestStability(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for name, sorter := range sorters() {
		// Few distinct keys force many ties.
		hits := make([]hit.Hit, 5000)
		for i := range hits {
			hits[i] = hit.Hit{Key: uint32(rng.Intn(16)), QOff: int32(i)}
		}
		sorter(hits, 4)
		checkStableSorted(t, hits, name)
	}
}

func TestAlreadySorted(t *testing.T) {
	for name, sorter := range sorters() {
		hits := make([]hit.Hit, 1000)
		for i := range hits {
			hits[i] = hit.Hit{Key: uint32(i), QOff: int32(i)}
		}
		sorter(hits, 10)
		checkStableSorted(t, hits, name)
	}
}

func TestReverseSorted(t *testing.T) {
	for name, sorter := range sorters() {
		hits := make([]hit.Hit, 1000)
		for i := range hits {
			hits[i] = hit.Hit{Key: uint32(1000 - i), QOff: int32(i)}
		}
		sorter(hits, 10)
		checkStableSorted(t, hits, name)
	}
}

func TestAllEqualKeys(t *testing.T) {
	for name, sorter := range sorters() {
		hits := make([]hit.Hit, 777)
		for i := range hits {
			hits[i] = hit.Hit{Key: 5, QOff: int32(i)}
		}
		sorter(hits, 4)
		checkStableSorted(t, hits, name)
		for i := range hits {
			if hits[i].QOff != int32(i) {
				t.Fatalf("%s: equal-key input permuted at %d", name, i)
			}
		}
	}
}

func TestLSDReusesScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	scratch := make([]hit.Hit, 10000)
	for trial := 0; trial < 5; trial++ {
		hits := randomHits(rng, 10000, 22)
		LSD(hits, 22, scratch)
		checkStableSorted(t, hits, "LSD+scratch")
	}
}

func TestLSDOnPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pairs := make([]hit.Pair, 2000)
	for i := range pairs {
		pairs[i] = hit.Pair{Key: rng.Uint32() & 0xFFFF, QOff: int32(i), Dist: int32(rng.Intn(40))}
	}
	LSD(pairs, 16, nil)
	for i := 1; i < len(pairs); i++ {
		if pairs[i].Key < pairs[i-1].Key {
			t.Fatalf("pairs out of order at %d", i)
		}
		if pairs[i].Key == pairs[i-1].Key && pairs[i].QOff < pairs[i-1].QOff {
			t.Fatalf("pair stability violated at %d", i)
		}
	}
}

func TestKeyBitsNarrowerThanKeys(t *testing.T) {
	// If keyBits understates the real key width, LSD must still sort the
	// bits it was told about; here all keys fit in 8 bits so passes beyond
	// the first are no-ops.
	hits := []hit.Hit{{Key: 200}, {Key: 3}, {Key: 100}}
	LSD(hits, 8, nil)
	if !IsSorted(hits) {
		t.Error("8-bit sort failed")
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted([]hit.Hit{{Key: 1}, {Key: 1}, {Key: 2}}) {
		t.Error("sorted slice reported unsorted")
	}
	if IsSorted([]hit.Hit{{Key: 2}, {Key: 1}}) {
		t.Error("unsorted slice reported sorted")
	}
	if !IsSorted([]hit.Hit{}) || !IsSorted([]hit.Hit{{Key: 9}}) {
		t.Error("trivial slices reported unsorted")
	}
}

func TestTwoLevelBinWithReusesCounts(t *testing.T) {
	coder, err := hit.NewKeyCoder(512, 1024)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	n := 5000
	scratch := make([]hit.Hit, n)
	var counts []int
	for trial := 0; trial < 4; trial++ {
		hits := make([]hit.Hit, n)
		for i := range hits {
			hits[i] = hit.Hit{Key: coder.Encode(rng.Intn(512), rng.Intn(1024)), QOff: int32(i)}
		}
		want := append([]hit.Hit(nil), hits...)
		sort.SliceStable(want, func(i, j int) bool { return want[i].Key < want[j].Key })
		counts = TwoLevelBinWith(hits, coder.DiagBits, 512, 1024, scratch, counts)
		for i := range hits {
			if hits[i] != want[i] {
				t.Fatalf("trial %d: mismatch at %d", trial, i)
			}
		}
	}
	// With buffers warmed, re-sorting must not allocate at all.
	hits := make([]hit.Hit, n)
	refill := func() {
		for i := range hits {
			hits[i] = hit.Hit{Key: coder.Encode(rng.Intn(512), rng.Intn(1024)), QOff: int32(i)}
		}
	}
	refill()
	allocs := testing.AllocsPerRun(10, func() {
		counts = TwoLevelBinWith(hits, coder.DiagBits, 512, 1024, scratch, counts)
	})
	if allocs != 0 {
		t.Errorf("TwoLevelBinWith allocates %.1f objects per sort with warm buffers, want 0", allocs)
	}
	// The count buffer must be sized for the larger of the two passes.
	if len(counts) == 0 || cap(counts) < 1025 {
		t.Errorf("returned counts cap %d, want >= 1025", cap(counts))
	}
}

func TestTwoLevelBinMatchesLSDOnRealisticKeys(t *testing.T) {
	// Realistic block shape: 512 sequences x 1024 diagonals.
	coder, err := hit.NewKeyCoder(512, 1024)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	n := 20000
	a := make([]hit.Hit, n)
	for i := range a {
		a[i] = hit.Hit{Key: coder.Encode(rng.Intn(512), rng.Intn(1024)), QOff: int32(i)}
	}
	b := append([]hit.Hit(nil), a...)
	LSD(a, coder.KeyBits(), nil)
	TwoLevelBin(b, coder.DiagBits, 512, 1024, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("TwoLevelBin diverges from LSD at %d", i)
		}
	}
}
