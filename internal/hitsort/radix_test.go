package hitsort

import (
	"math/rand"
	"testing"

	"repro/internal/hit"
)

func randomPairs(rng *rand.Rand, n, keyBits int) []hit.Pair {
	mask := uint32(1)<<uint(keyBits) - 1
	if keyBits >= 32 {
		mask = ^uint32(0)
	}
	ps := make([]hit.Pair, n)
	for i := range ps {
		ps[i] = hit.Pair{Key: rng.Uint32() & mask, QOff: int32(i), Dist: int32(rng.Intn(40))}
	}
	return ps
}

// TestLSDPairsMatchesGeneric pins the specialized fused-histogram sort to
// the generic LSD across sizes straddling the insertion cutoff and key
// widths straddling every digit-plan boundary. Both sorts are stable, so
// the outputs must be byte-identical, not merely key-ordered.
func TestLSDPairsMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for _, n := range []int{0, 1, 2, radixCutoff - 1, radixCutoff, radixCutoff + 1, 500, 4096} {
		for _, keyBits := range []int{1, 7, maxDigitBits, maxDigitBits + 1, 2 * maxDigitBits, 2*maxDigitBits + 1, 30, 32} {
			in := randomPairs(rng, n, keyBits)
			want := append([]hit.Pair(nil), in...)
			LSD(want, keyBits, nil)
			got := append([]hit.Pair(nil), in...)
			LSDPairs(got, keyBits, nil)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d keyBits=%d: index %d: %+v vs %+v", n, keyBits, i, got[i], want[i])
				}
			}
		}
	}
}

// TestLSDHitsMatchesGeneric is the same pin for the hit-record variant.
func TestLSDHitsMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	for _, n := range []int{0, 1, radixCutoff, 500, 4096} {
		for _, keyBits := range []int{5, maxDigitBits + 3, 2*maxDigitBits + 5, 32} {
			in := randomHits(rng, n, keyBits)
			want := append([]hit.Hit(nil), in...)
			LSD(want, keyBits, nil)
			got := append([]hit.Hit(nil), in...)
			LSDHits(got, keyBits, nil)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d keyBits=%d: index %d: %+v vs %+v", n, keyBits, i, got[i], want[i])
				}
			}
		}
	}
}

// FuzzLSDPairsEquivalence fuzzes the specialized pair sort against the
// generic LSD on arbitrary key streams; run under `make fuzz`.
func FuzzLSDPairsEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 16)
	f.Add([]byte{0xFF, 0xFF, 0, 0}, 11)
	f.Fuzz(func(t *testing.T, raw []byte, keyBits int) {
		if keyBits < 1 || keyBits > 32 {
			return
		}
		if len(raw) > 1<<16 {
			return
		}
		mask := ^uint32(0)
		if keyBits < 32 {
			mask = uint32(1)<<uint(keyBits) - 1
		}
		n := len(raw) / 4
		in := make([]hit.Pair, n)
		for i := 0; i < n; i++ {
			k := uint32(raw[4*i]) | uint32(raw[4*i+1])<<8 | uint32(raw[4*i+2])<<16 | uint32(raw[4*i+3])<<24
			in[i] = hit.Pair{Key: k & mask, QOff: int32(i)}
		}
		want := append([]hit.Pair(nil), in...)
		LSD(want, keyBits, nil)
		got := append([]hit.Pair(nil), in...)
		LSDPairs(got, keyBits, nil)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("keyBits=%d index %d: %+v vs %+v", keyBits, i, got[i], want[i])
			}
		}
	})
}

// BenchmarkDiagonalSort measures the diagonal reorder at a realistic task
// grain: ~19k pairs with ~19-bit (sequence, diagonal) keys is what one
// (block, query) task of the stage-budget workload pushes through the sort.
func BenchmarkDiagonalSort(b *testing.B) {
	const n, keyBits = 19000, 19
	rng := rand.New(rand.NewSource(139))
	src := randomPairs(rng, n, keyBits)
	work := make([]hit.Pair, n)
	scratch := make([]hit.Pair, n)
	b.Run("lsd_pairs", func(b *testing.B) {
		b.SetBytes(int64(n * 12))
		for i := 0; i < b.N; i++ {
			copy(work, src)
			LSDPairs(work, keyBits, scratch)
		}
	})
	b.Run("generic_lsd", func(b *testing.B) {
		b.SetBytes(int64(n * 12))
		for i := 0; i < b.N; i++ {
			copy(work, src)
			LSD(work, keyBits, scratch)
		}
	})
}

// TestDiagonalSortZeroAlloc pins the warm-scratch sort at zero allocations
// per call — the per-task reorder must never touch the heap at steady state.
func TestDiagonalSortZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(149))
	src := randomPairs(rng, 20000, 19)
	work := make([]hit.Pair, len(src))
	scratch := make([]hit.Pair, len(src))
	if allocs := testing.AllocsPerRun(10, func() {
		copy(work, src)
		LSDPairs(work, 19, scratch)
	}); allocs != 0 {
		t.Errorf("LSDPairs with warm scratch allocates %.1f objects per sort, want 0", allocs)
	}
	hs := randomHits(rng, 20000, 19)
	hwork := make([]hit.Hit, len(hs))
	hscratch := make([]hit.Hit, len(hs))
	if allocs := testing.AllocsPerRun(10, func() {
		copy(hwork, hs)
		LSDHits(hwork, 19, hscratch)
	}); allocs != 0 {
		t.Errorf("LSDHits with warm scratch allocates %.1f objects per sort, want 0", allocs)
	}
}
