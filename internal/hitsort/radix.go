// Concrete radix sorts for the two hot record types. The generic LSD in
// hitsort.go is kept for the Section IV-B algorithm comparison, but Go
// generics reach SortKey through a gcshape dictionary — an indirect call per
// record per pass — and always run ceil(keyBits/8) fixed 8-bit passes. The
// specialized sorts here read the key field directly, build every pass's
// histogram in one fused counting scan, and pick digit widths from keyBits
// (one pass up to 11 bits, two passes up to 22, three up to 32) so the
// typical 15–20-bit (sequence, diagonal) key needs two scatter passes
// instead of three. Small inputs fall back to stable binary insertion sort,
// which beats clearing histograms for the many (block, query) tasks whose
// pair buffers hold a few dozen records.
//
// All variants are stable, so for any input they produce byte-identical
// output to the generic LSD (pinned by the equivalence tests and fuzz
// targets in radix_test.go). Keys must fit in keyBits bits — the KeyCoder
// contract; wider stray bits are ignored rather than read out of range.
package hitsort

import "repro/internal/hit"

// radixCutoff is the size below which insertion sort wins over clearing and
// filling histogram arrays.
const radixCutoff = 64

// maxDigitBits caps one pass's digit width; 2048-entry count arrays still
// live comfortably on the stack.
const maxDigitBits = 11

// radixPlan splits keyBits into up to three digit widths, low digit first.
// Width 0 means the pass is unused.
func radixPlan(keyBits int) (w0, w1, w2 int) {
	switch {
	case keyBits <= maxDigitBits:
		return keyBits, 0, 0
	case keyBits <= 2*maxDigitBits:
		return (keyBits + 1) / 2, keyBits - (keyBits+1)/2, 0
	default:
		w0 = (keyBits + 2) / 3
		w1 = (keyBits - w0 + 1) / 2
		return w0, w1, keyBits - w0 - w1
	}
}

// LSDPairs sorts pairs stably by key, equivalent to LSD[hit.Pair] for keys
// that fit in keyBits (<= 0 or > 32 means the full 32 bits). The scratch
// slice is reused if large enough; the sorted result always lands in items.
func LSDPairs(items []hit.Pair, keyBits int, scratch []hit.Pair) {
	n := len(items)
	if n < 2 {
		return
	}
	if keyBits <= 0 || keyBits > 32 {
		keyBits = 32
	}
	if n <= radixCutoff {
		insertionPairs(items)
		return
	}
	if cap(scratch) < n {
		scratch = make([]hit.Pair, n)
	}
	scratch = scratch[:n]
	w0, w1, w2 := radixPlan(keyBits)
	var counts [3][1 << maxDigitBits]int32

	// Fused histogramming: one scan fills every pass's counts.
	m0 := uint32(1)<<w0 - 1
	m1 := uint32(1)<<w1 - 1
	m2 := uint32(1)<<w2 - 1
	for i := range items {
		k := items[i].Key
		counts[0][k&m0]++
		counts[1][(k>>w0)&m1]++
		counts[2][(k>>(w0+w1))&m2]++
	}

	src, dst := items, scratch
	for p, pass := range [3]struct {
		shift int
		mask  uint32
		width int
	}{{0, m0, w0}, {w0, m1, w1}, {w0 + w1, m2, w2}} {
		if pass.width == 0 {
			continue
		}
		c := counts[p][:uint32(1)<<pass.width]
		// Skip passes where every key shares the digit.
		if c[(src[0].Key>>pass.shift)&pass.mask] == int32(n) {
			continue
		}
		sum := int32(0)
		for d := range c {
			v := c[d]
			c[d] = sum
			sum += v
		}
		for i := range src {
			d := (src[i].Key >> pass.shift) & pass.mask
			dst[c[d]] = src[i]
			c[d]++
		}
		src, dst = dst, src
	}
	if &src[0] != &items[0] {
		copy(items, src)
	}
}

// LSDHits is LSDPairs for raw hits (the post-filter ablation's sort input).
func LSDHits(items []hit.Hit, keyBits int, scratch []hit.Hit) {
	n := len(items)
	if n < 2 {
		return
	}
	if keyBits <= 0 || keyBits > 32 {
		keyBits = 32
	}
	if n <= radixCutoff {
		insertionHits(items)
		return
	}
	if cap(scratch) < n {
		scratch = make([]hit.Hit, n)
	}
	scratch = scratch[:n]
	w0, w1, w2 := radixPlan(keyBits)
	var counts [3][1 << maxDigitBits]int32

	m0 := uint32(1)<<w0 - 1
	m1 := uint32(1)<<w1 - 1
	m2 := uint32(1)<<w2 - 1
	for i := range items {
		k := items[i].Key
		counts[0][k&m0]++
		counts[1][(k>>w0)&m1]++
		counts[2][(k>>(w0+w1))&m2]++
	}

	src, dst := items, scratch
	for p, pass := range [3]struct {
		shift int
		mask  uint32
		width int
	}{{0, m0, w0}, {w0, m1, w1}, {w0 + w1, m2, w2}} {
		if pass.width == 0 {
			continue
		}
		c := counts[p][:uint32(1)<<pass.width]
		if c[(src[0].Key>>pass.shift)&pass.mask] == int32(n) {
			continue
		}
		sum := int32(0)
		for d := range c {
			v := c[d]
			c[d] = sum
			sum += v
		}
		for i := range src {
			d := (src[i].Key >> pass.shift) & pass.mask
			dst[c[d]] = src[i]
			c[d]++
		}
		src, dst = dst, src
	}
	if &src[0] != &items[0] {
		copy(items, src)
	}
}

// insertionPairs is stable binary-free insertion sort on the concrete type.
func insertionPairs(items []hit.Pair) {
	for i := 1; i < len(items); i++ {
		v := items[i]
		j := i - 1
		for j >= 0 && items[j].Key > v.Key {
			items[j+1] = items[j]
			j--
		}
		items[j+1] = v
	}
}

// insertionHits is insertionPairs for raw hits.
func insertionHits(items []hit.Hit) {
	for i := 1; i < len(items); i++ {
		v := items[i]
		j := i - 1
		for j >= 0 && items[j].Key > v.Key {
			items[j+1] = items[j]
			j--
		}
		items[j+1] = v
	}
}
