// Package hitsort implements the hit-reordering algorithms the paper
// compares in Section IV-B: LSD radix sort (the one muBLASTP uses), MSD
// radix sort, stable merge sort, and the two-level binning scheme of the
// earlier muBLASTP prototype discussed in Section VI. All sorts are stable,
// which matters because hit detection emits hits in query-offset order and
// the two-hit logic depends on that order being preserved within each
// (sequence, diagonal) group.
package hitsort

// Keyed is any record sortable by a packed 32-bit radix key.
type Keyed interface {
	SortKey() uint32
}

// LSD sorts items stably by key using least-significant-digit radix sort
// with 8-bit digits, skipping passes above keyBits. keyBits <= 0 sorts the
// full 32 bits. The scratch slice is reused if large enough, and the sorted
// result is always left in items.
func LSD[T Keyed](items []T, keyBits int, scratch []T) {
	if len(items) < 2 {
		return
	}
	if keyBits <= 0 || keyBits > 32 {
		keyBits = 32
	}
	passes := (keyBits + 7) / 8
	if cap(scratch) < len(items) {
		scratch = make([]T, len(items))
	}
	scratch = scratch[:len(items)]
	src, dst := items, scratch
	for pass := 0; pass < passes; pass++ {
		shift := uint(pass * 8)
		var counts [256]int
		for i := range src {
			counts[(src[i].SortKey()>>shift)&0xFF]++
		}
		// Skip passes where all keys share the digit (common for the top
		// digits of narrow keys).
		if counts[(src[0].SortKey()>>shift)&0xFF] == len(src) {
			continue
		}
		sum := 0
		for d := 0; d < 256; d++ {
			c := counts[d]
			counts[d] = sum
			sum += c
		}
		for i := range src {
			d := (src[i].SortKey() >> shift) & 0xFF
			dst[counts[d]] = src[i]
			counts[d]++
		}
		src, dst = dst, src
	}
	if &src[0] != &items[0] {
		copy(items, src)
	}
}

// MSD sorts items stably by key using most-significant-digit radix sort
// with 8-bit digits, recursing into buckets and falling back to binary
// insertion sort for small ones. Included for the Section IV-B comparison:
// MSD avoids touching low digits of already-separated buckets but pays
// recursion overhead that dominates on the paper's hundred-kilobyte hit
// buffers.
func MSD[T Keyed](items []T, keyBits int, scratch []T) {
	if len(items) < 2 {
		return
	}
	if keyBits <= 0 || keyBits > 32 {
		keyBits = 32
	}
	topShift := uint(((keyBits + 7) / 8) * 8)
	if topShift >= 8 {
		topShift -= 8
	}
	if cap(scratch) < len(items) {
		scratch = make([]T, len(items))
	}
	msdRecurse(items, scratch[:len(items)], topShift)
}

const msdCutoff = 48

func msdRecurse[T Keyed](items, scratch []T, shift uint) {
	if len(items) < 2 {
		return
	}
	if len(items) <= msdCutoff {
		insertionSort(items)
		return
	}
	var counts [256]int
	for i := range items {
		counts[(items[i].SortKey()>>shift)&0xFF]++
	}
	var starts [256]int
	sum := 0
	for d := 0; d < 256; d++ {
		starts[d] = sum
		sum += counts[d]
	}
	pos := starts
	for i := range items {
		d := (items[i].SortKey() >> shift) & 0xFF
		scratch[pos[d]] = items[i]
		pos[d]++
	}
	copy(items, scratch)
	if shift == 0 {
		return
	}
	for d := 0; d < 256; d++ {
		if counts[d] > 1 {
			lo := starts[d]
			msdRecurse(items[lo:lo+counts[d]], scratch[lo:lo+counts[d]], shift-8)
		}
	}
}

// insertionSort is the stable small-bucket fallback for MSD.
func insertionSort[T Keyed](items []T) {
	for i := 1; i < len(items); i++ {
		v := items[i]
		k := v.SortKey()
		j := i - 1
		for j >= 0 && items[j].SortKey() > k {
			items[j+1] = items[j]
			j--
		}
		items[j+1] = v
	}
}

// Merge sorts items stably by key using bottom-up merge sort. Included for
// the Section IV-B comparison; on packed integer keys it loses to LSD radix
// at the hit-buffer sizes the blocked index produces.
func Merge[T Keyed](items []T, scratch []T) {
	n := len(items)
	if n < 2 {
		return
	}
	if cap(scratch) < n {
		scratch = make([]T, n)
	}
	scratch = scratch[:n]
	// Insertion-sort small runs first, then merge pairs of runs.
	const runSize = 32
	for lo := 0; lo < n; lo += runSize {
		hi := lo + runSize
		if hi > n {
			hi = n
		}
		insertionSort(items[lo:hi])
	}
	src, dst := items, scratch
	for width := runSize; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			mergeRuns(dst[lo:hi], src[lo:mid], src[mid:hi])
		}
		src, dst = dst, src
	}
	if &src[0] != &items[0] {
		copy(items, src)
	}
}

// mergeRuns merges the sorted runs a and b into out (len(out)=len(a)+len(b)).
// Ties take from a first, preserving stability.
func mergeRuns[T Keyed](out, a, b []T) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i].SortKey() <= b[j].SortKey() {
			out[k] = a[i]
			i++
		} else {
			out[k] = b[j]
			j++
		}
		k++
	}
	for i < len(a) {
		out[k] = a[i]
		i, k = i+1, k+1
	}
	for j < len(b) {
		out[k] = b[j]
		j, k = j+1, k+1
	}
}

// TwoLevelBin reorders items by key using the earlier prototype's two-level
// binning (Section VI): scatter into per-diagonal bins, then per-sequence
// bins — equivalent to a 2-pass LSD counting sort whose "digits" are the
// full diagonal and sequence id ranges. It needs counting arrays of
// numSeqs + numDiags entries (the "large amount of preallocated memory" the
// paper criticizes) and moves every record twice regardless of how few
// survive filtering. diagBits is the width of the diagonal field in the key.
func TwoLevelBin[T Keyed](items []T, diagBits uint32, numSeqs, numDiags int, scratch []T) {
	TwoLevelBinWith(items, diagBits, numSeqs, numDiags, scratch, nil)
}

// TwoLevelBinWith is TwoLevelBin with a caller-provided counting buffer, so
// repeated sorts (one per (block, query) task in the batch hot path) stop
// re-allocating the histogram arrays. The two binning passes run back to
// back, so one buffer of max(numDiags, numSeqs)+1 entries serves both; it is
// grown as needed and returned for the caller to keep. The fixed 256-entry
// histograms of LSD and MSD live on the stack and need no such pooling.
func TwoLevelBinWith[T Keyed](items []T, diagBits uint32, numSeqs, numDiags int, scratch []T, counts []int) []int {
	need := numDiags + 1
	if numSeqs+1 > need {
		need = numSeqs + 1
	}
	if cap(counts) < need {
		counts = make([]int, need)
	}
	if len(items) < 2 {
		return counts
	}
	if cap(scratch) < len(items) {
		scratch = make([]T, len(items))
	}
	scratch = scratch[:len(items)]
	diagMask := uint32(1)<<diagBits - 1

	// Pass 1: bin by diagonal id.
	c1 := counts[:numDiags+1]
	clear(c1)
	for i := range items {
		c1[items[i].SortKey()&diagMask]++
	}
	sum := 0
	for d := range c1 {
		c := c1[d]
		c1[d] = sum
		sum += c
	}
	for i := range items {
		d := items[i].SortKey() & diagMask
		scratch[c1[d]] = items[i]
		c1[d]++
	}

	// Pass 2: bin by sequence id.
	c2 := counts[:numSeqs+1]
	clear(c2)
	for i := range scratch {
		c2[scratch[i].SortKey()>>diagBits]++
	}
	sum = 0
	for s := range c2 {
		c := c2[s]
		c2[s] = sum
		sum += c
	}
	for i := range scratch {
		s := scratch[i].SortKey() >> diagBits
		items[c2[s]] = scratch[i]
		c2[s]++
	}
	return counts
}

// IsSorted reports whether items are in non-decreasing key order.
func IsSorted[T Keyed](items []T) bool {
	for i := 1; i < len(items); i++ {
		if items[i].SortKey() < items[i-1].SortKey() {
			return false
		}
	}
	return true
}
