package alphabet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestLettersRoundTrip(t *testing.T) {
	for c := 0; c < Size; c++ {
		letter := LetterFor(Code(c))
		got, ok := CodeFor(letter)
		if !ok {
			t.Fatalf("CodeFor(%q) not recognized", letter)
		}
		if got != Code(c) {
			t.Errorf("CodeFor(LetterFor(%d)) = %d", c, got)
		}
	}
}

func TestLowercaseAccepted(t *testing.T) {
	up, err := Encode([]byte("ARNDC"))
	if err != nil {
		t.Fatal(err)
	}
	lo, err := Encode([]byte("arndc"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(up, lo) {
		t.Errorf("lowercase encoding %v != uppercase %v", lo, up)
	}
}

func TestNonStandardResidueFolding(t *testing.T) {
	cases := []struct {
		in   byte
		want Code
	}{
		{'U', CodeC}, {'u', CodeC},
		{'O', CodeK}, {'o', CodeK},
		{'J', CodeL}, {'j', CodeL},
		{'-', CodeX},
	}
	for _, c := range cases {
		got, ok := CodeFor(c.in)
		if !ok || got != c.want {
			t.Errorf("CodeFor(%q) = %d,%v want %d", c.in, got, ok, c.want)
		}
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	for _, bad := range []string{"AR1DC", "AB@", " ", "A\nC"} {
		if _, err := Encode([]byte(bad)); err == nil {
			t.Errorf("Encode(%q) accepted invalid input", bad)
		}
	}
}

func TestEncodeEmptyIsEmpty(t *testing.T) {
	got, err := Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("Encode(nil) = %v, want empty", got)
	}
}

func TestDecodeRoundTripsEncode(t *testing.T) {
	seq := []byte("ARNDCQEGHILKMFPSTWYVBZX*")
	codes, err := Encode(seq)
	if err != nil {
		t.Fatal(err)
	}
	if got := Decode(codes); !bytes.Equal(got, seq) {
		t.Errorf("Decode(Encode(%q)) = %q", seq, got)
	}
}

func TestValid(t *testing.T) {
	if !Valid([]byte("ACDEFGHIKLMNPQRSTVWY")) {
		t.Error("standard residues reported invalid")
	}
	if Valid([]byte("AC DE")) {
		t.Error("space reported valid")
	}
}

func TestMustEncodePanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustEncode did not panic on invalid input")
		}
	}()
	MustEncode("A1C")
}

func TestLetterForPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("LetterFor did not panic on out-of-range code")
		}
	}()
	LetterFor(Code(Size))
}

func TestPackWordRoundTrip(t *testing.T) {
	check := func(a, b, c uint8) bool {
		c0, c1, c2 := Code(a%Size), Code(b%Size), Code(c%Size)
		w := PackWord(c0, c1, c2)
		if !w.Valid() {
			return false
		}
		g0, g1, g2 := w.Unpack()
		return g0 == c0 && g1 == c1 && g2 == c2
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestWordOrderingIsLexicographic(t *testing.T) {
	// Words that share a prefix must be numerically adjacent: AAB > AAA etc.
	waaa := PackWord(0, 0, 0)
	waab := PackWord(0, 0, 1)
	waba := PackWord(0, 1, 0)
	if waab != waaa+1 {
		t.Errorf("AAB = %d, want %d", waab, waaa+1)
	}
	if waba != waaa+Size {
		t.Errorf("ABA = %d, want %d", waba, waaa+Size)
	}
}

func TestWordString(t *testing.T) {
	w := PackWord(CodeA, CodeR, CodeN)
	if got := w.String(); got != "ARN" {
		t.Errorf("String() = %q, want ARN", got)
	}
}

func TestWordAtMatchesPack(t *testing.T) {
	seq := MustEncode("ARNDCQ")
	for i := 0; i+W <= len(seq); i++ {
		if WordAt(seq, i) != PackWord(seq[i], seq[i+1], seq[i+2]) {
			t.Errorf("WordAt(%d) mismatch", i)
		}
	}
}

func TestWordsEnumeratesOverlapping(t *testing.T) {
	seq := MustEncode("ARNDC")
	var offsets []int
	var words []string
	Words(seq, func(off int, w Word) {
		offsets = append(offsets, off)
		words = append(words, w.String())
	})
	wantOff := []int{0, 1, 2}
	wantW := []string{"ARN", "RND", "NDC"}
	if len(offsets) != len(wantOff) {
		t.Fatalf("got %d words, want %d", len(offsets), len(wantOff))
	}
	for i := range wantOff {
		if offsets[i] != wantOff[i] || words[i] != wantW[i] {
			t.Errorf("word %d = (%d,%s), want (%d,%s)", i, offsets[i], words[i], wantOff[i], wantW[i])
		}
	}
}

func TestWordsShortSequence(t *testing.T) {
	for _, s := range []string{"", "A", "AR"} {
		n := 0
		Words(MustEncode(s), func(int, Word) { n++ })
		if n != 0 {
			t.Errorf("Words(%q) yielded %d words, want 0", s, n)
		}
	}
}

func TestNumWordsValue(t *testing.T) {
	if NumWords != 13824 {
		t.Errorf("NumWords = %d, want 13824 (24^3, per paper Section V-B)", NumWords)
	}
}
