// Package alphabet defines the 24-letter protein alphabet used throughout
// the library and the encoding between ASCII residues and compact codes.
//
// The order of the letters follows the convention used by the BLOSUM and PAM
// scoring matrices shipped in internal/matrix: the 20 standard amino acids
// first, then the ambiguity codes B and Z, the unknown residue X, and the
// stop/gap character '*'. BLASTP treats all 24 as alignable characters, which
// is why the paper's word space is 24^3 = 13824 (Section V-B).
package alphabet

import "fmt"

// Size is the number of distinct residue codes.
const Size = 24

// Letters lists the residues in code order: Letters[code] is the ASCII
// letter for that code.
const Letters = "ARNDCQEGHILKMFPSTWYVBZX*"

// Code is a compact residue code in [0, Size).
type Code = byte

// Common residue codes, useful in tests and generators.
const (
	CodeA Code = iota
	CodeR
	CodeN
	CodeD
	CodeC
	CodeQ
	CodeE
	CodeG
	CodeH
	CodeI
	CodeL
	CodeK
	CodeM
	CodeF
	CodeP
	CodeS
	CodeT
	CodeW
	CodeY
	CodeV
	CodeB
	CodeZ
	CodeX
	CodeStop
)

// codeOf maps an ASCII byte to its residue code, or 0xFF for invalid bytes.
var codeOf [256]byte

func init() {
	for i := range codeOf {
		codeOf[i] = 0xFF
	}
	for c := 0; c < Size; c++ {
		upper := Letters[c]
		codeOf[upper] = byte(c)
		if upper >= 'A' && upper <= 'Z' {
			codeOf[upper+'a'-'A'] = byte(c)
		}
	}
	// Residues that appear in real protein data but are outside the matrix
	// alphabet fold onto near-equivalents, matching NCBI behaviour:
	//   U (selenocysteine) -> C, O (pyrrolysine) -> K, J (I or L) -> L,
	//   '-' (gap in aligned input) -> X.
	codeOf['U'], codeOf['u'] = CodeC, CodeC
	codeOf['O'], codeOf['o'] = CodeK, CodeK
	codeOf['J'], codeOf['j'] = CodeL, CodeL
	codeOf['-'] = CodeX
}

// CodeFor returns the residue code for an ASCII letter and whether the
// letter is a recognized residue.
func CodeFor(b byte) (Code, bool) {
	c := codeOf[b]
	return c, c != 0xFF
}

// LetterFor returns the canonical ASCII letter for a residue code.
// It panics if the code is out of range, since that always indicates
// a programming error rather than bad input.
func LetterFor(c Code) byte {
	if int(c) >= Size {
		panic(fmt.Sprintf("alphabet: code %d out of range", c))
	}
	return Letters[c]
}

// Encode converts an ASCII protein sequence to residue codes.
// Unrecognized characters produce an error naming the offending byte.
func Encode(seq []byte) ([]Code, error) {
	out := make([]Code, len(seq))
	for i, b := range seq {
		c := codeOf[b]
		if c == 0xFF {
			return nil, fmt.Errorf("alphabet: invalid residue %q at position %d", b, i)
		}
		out[i] = c
	}
	return out, nil
}

// MustEncode is Encode for trusted input; it panics on invalid residues.
func MustEncode(seq string) []Code {
	out, err := Encode([]byte(seq))
	if err != nil {
		panic(err)
	}
	return out
}

// Decode converts residue codes back to an ASCII protein sequence.
func Decode(codes []Code) []byte {
	out := make([]byte, len(codes))
	for i, c := range codes {
		out[i] = LetterFor(c)
	}
	return out
}

// String renders residue codes as a string; convenient in tests and output.
func String(codes []Code) string { return string(Decode(codes)) }

// Valid reports whether every byte of seq is a recognized residue letter.
func Valid(seq []byte) bool {
	for _, b := range seq {
		if codeOf[b] == 0xFF {
			return false
		}
	}
	return true
}
