package alphabet

// W is the BLASTP word length. Protein search uses 3-letter words
// (Section II-A); with a 24-letter alphabet that yields NumWords = 13824
// possible words, each representable as a small integer.
const W = 3

// NumWords is the number of distinct W-letter words: Size^W.
const NumWords = Size * Size * Size

// Word is a packed W-letter word index in [0, NumWords).
// The first residue occupies the most significant digits, so words that
// share a prefix are numerically adjacent — this keeps the database index
// cache-friendly when scanning lexicographically.
type Word int32

// PackWord packs residues c0,c1,c2 (in sequence order) into a Word.
func PackWord(c0, c1, c2 Code) Word {
	return Word(int32(c0)*Size*Size + int32(c1)*Size + int32(c2))
}

// WordAt packs the word starting at position i of the encoded sequence.
// The caller must guarantee i+W <= len(seq).
func WordAt(seq []Code, i int) Word {
	return PackWord(seq[i], seq[i+1], seq[i+2])
}

// Unpack returns the residue codes of the word.
func (w Word) Unpack() (c0, c1, c2 Code) {
	v := int32(w)
	return Code(v / (Size * Size)), Code(v / Size % Size), Code(v % Size)
}

// String renders the word as its three-letter sequence.
func (w Word) String() string {
	c0, c1, c2 := w.Unpack()
	return string([]byte{LetterFor(c0), LetterFor(c1), LetterFor(c2)})
}

// Valid reports whether w is a well-formed word index.
func (w Word) Valid() bool { return w >= 0 && w < NumWords }

// Words iterates the overlapping words of an encoded sequence, calling fn
// with each query offset and packed word. Sequences shorter than W yield
// no words. Overlapping words are the paper's Section III requirement for
// matching NCBI-BLAST sensitivity.
func Words(seq []Code, fn func(offset int, w Word)) {
	if len(seq) < W {
		return
	}
	for i := 0; i+W <= len(seq); i++ {
		fn(i, WordAt(seq, i))
	}
}
