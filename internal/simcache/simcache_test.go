package simcache

import (
	"math/rand"
	"testing"

	"repro/internal/dbase"
	"repro/internal/dbindex"
	"repro/internal/matrix"
	"repro/internal/neighbor"
	"repro/internal/search"
	"repro/internal/seqgen"
)

func TestCacheHitsOnRepeat(t *testing.T) {
	c := NewCache(32<<10, 8)
	if c.Access(0x1000) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Error("repeat access missed")
	}
	// Same line, different byte.
	if !c.Access(0x103F) {
		t.Error("same-line access missed")
	}
	// Next line misses.
	if c.Access(0x1040) {
		t.Error("next-line access hit")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 8-way set: 9 distinct lines mapping to the same set evict the oldest.
	c := NewCache(32<<10, 8)
	sets := uint64(32 << 10 / (8 * 64))
	for i := uint64(0); i < 9; i++ {
		c.Access(i * sets * 64) // same set index every time
	}
	// Line 0 was the LRU victim; it must miss now.
	if c.Access(0) {
		t.Error("evicted line still resident")
	}
	// Line 8 (most recent) must hit.
	if !c.Access(8 * sets * 64) {
		t.Error("recent line evicted")
	}
}

func TestCacheCapacityWorkingSet(t *testing.T) {
	// A working set that fits: second pass all hits. One that doesn't: misses.
	small := NewCache(32<<10, 8)
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < 16<<10; a += 64 {
			small.Access(a)
		}
	}
	// First pass all misses (256), second all hits.
	if small.Misses != 256 {
		t.Errorf("fitting set: %d misses, want 256", small.Misses)
	}
	big := NewCache(32<<10, 8)
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < 64<<10; a += 64 {
			big.Access(a)
		}
	}
	if big.MissRate() < 0.9 {
		t.Errorf("thrashing set miss rate %.2f, want ~1", big.MissRate())
	}
}

func TestTLB(t *testing.T) {
	tlb := NewTLB(4)
	if tlb.Access(0) {
		t.Error("cold TLB hit")
	}
	if !tlb.Access(4095) {
		t.Error("same page missed")
	}
	for p := uint64(1); p <= 4; p++ {
		tlb.Access(p << 12)
	}
	if tlb.Access(0) {
		t.Error("evicted page still resident")
	}
}

func TestHierarchyInclusionOfCounts(t *testing.T) {
	h := NewHierarchy(32<<10, 256<<10, 4<<20, 64)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		h.Access(0, int64(rng.Intn(8<<20)))
	}
	// Every L2 access is an L1 miss, every LLC access an L2 miss.
	if h.L2.Accesses != h.L1.Misses {
		t.Errorf("L2 accesses %d != L1 misses %d", h.L2.Accesses, h.L1.Misses)
	}
	if h.LLC.Accesses != h.L2.Misses {
		t.Errorf("LLC accesses %d != L2 misses %d", h.LLC.Accesses, h.L2.Misses)
	}
	r := h.Report()
	if r.StalledFrac <= 0 || r.StalledFrac >= 1 {
		t.Errorf("StalledFrac = %g", r.StalledFrac)
	}
}

func TestSpacesDoNotAlias(t *testing.T) {
	h := NewHaswell()
	h.Access(0, 0)
	h.Access(1, 0)
	if h.L1.Misses != 2 {
		t.Errorf("accesses to distinct spaces aliased: %d misses", h.L1.Misses)
	}
}

func TestSequentialBeatsRandom(t *testing.T) {
	seqH := NewHierarchy(32<<10, 256<<10, 1<<20, 64)
	for i := int64(0); i < 1<<20; i++ {
		seqH.Access(0, i)
	}
	rndH := NewHierarchy(32<<10, 256<<10, 1<<20, 64)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1<<20; i++ {
		rndH.Access(0, int64(rng.Intn(64<<20)))
	}
	if seqH.Report().LLCMissRate >= rndH.Report().LLCMissRate && rndH.LLC.Accesses > 0 {
		t.Errorf("sequential LLC miss rate %.3f not below random %.3f",
			seqH.Report().LLCMissRate, rndH.Report().LLCMissRate)
	}
	if seqH.Report().TLBMissRate >= rndH.Report().TLBMissRate {
		t.Errorf("sequential TLB miss rate %.4f not below random %.4f",
			seqH.Report().TLBMissRate, rndH.Report().TLBMissRate)
	}
}

// TestEnginesTraceIntoSimulator is the Fig 2 mechanism end to end: the
// db-indexed interleaved engine must show a higher LLC miss rate than the
// query-indexed engine on the same workload, and muBLASTP must undercut the
// db-indexed baseline.
func TestEnginesTraceIntoSimulator(t *testing.T) {
	nbr := neighbor.Build(matrix.Blosum62, neighbor.DefaultThreshold)
	cfg, err := search.NewConfig(matrix.Blosum62, nbr)
	if err != nil {
		t.Fatal(err)
	}
	g := seqgen.New(seqgen.EnvNRProfile(), 5)
	db := dbase.New(g.Database(600))
	ix, err := dbindex.Build(db, nbr, 32768)
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([][]byte, 0)
	_ = seqs
	qs := g.Queries(dbSeqs(db), 1, 512)

	// Use a scaled-down hierarchy so the scaled-down workload exercises it
	// the way the real workload exercises the real LLC.
	run := func(attach func(*search.Config) func() search.QueryResult) Report {
		c := *cfg
		h := NewHierarchy(16<<10, 128<<10, 1<<20, 64)
		c.Trace = h.Tracer()
		attachFn := attach(&c)
		attachFn()
		return h.Report()
	}
	qiRep := run(func(c *search.Config) func() search.QueryResult {
		e := search.NewQueryIndexed(c, db)
		return func() search.QueryResult { return e.Search(0, qs[0]) }
	})
	dbRep := run(func(c *search.Config) func() search.QueryResult {
		e := search.NewDBIndexed(c, ix)
		return func() search.QueryResult { return e.Search(0, qs[0]) }
	})

	if qiRep.Accesses == 0 || dbRep.Accesses == 0 {
		t.Fatal("engines produced no trace")
	}
	if dbRep.LLCMissRate <= qiRep.LLCMissRate {
		t.Errorf("Fig 2 inversion: NCBI-db LLC miss %.4f <= NCBI %.4f",
			dbRep.LLCMissRate, qiRep.LLCMissRate)
	}
	if dbRep.TLBMissRate <= qiRep.TLBMissRate {
		t.Errorf("Fig 2 inversion: NCBI-db TLB miss %.5f <= NCBI %.5f",
			dbRep.TLBMissRate, qiRep.TLBMissRate)
	}
}

func dbSeqs(db *dbase.DB) [][]byte {
	out := make([][]byte, db.NumSeqs())
	for i := range db.Seqs {
		out[i] = db.Seqs[i].Data
	}
	return out
}
