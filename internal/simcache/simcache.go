// Package simcache is a software cache and TLB simulator that stands in for
// the hardware performance counters the paper reads (LLC miss rate, TLB
// miss rate, stalled cycles — Fig 2 and Fig 8). The search engines emit
// their significant memory accesses through search.Config.Trace; this
// package replays that stream through a model of the evaluation machine's
// memory hierarchy (dual-socket Haswell E5-2680v3: 32KB L1, 256KB L2, 30MB
// shared L3, Section V-A).
//
// Miss *rates* and their trends across pipelines and block sizes are
// properties of the access stream, which the instrumented engines reproduce
// exactly; absolute cycle counts are not claimed (see DESIGN.md).
package simcache

// Cache is a set-associative cache with LRU replacement.
type Cache struct {
	lineBits uint
	sets     uint64
	ways     int
	tags     []uint64 // sets x ways; 0 means empty
	ages     []uint64 // LRU clocks, parallel to tags
	clock    uint64

	Accesses int64
	Misses   int64
}

// NewCache builds a cache of sizeBytes with the given associativity and
// 64-byte lines. Set count need not be a power of two (indexing is modular),
// so real LLC sizes like 30MB/20-way model exactly.
func NewCache(sizeBytes, ways int) *Cache {
	const lineSize = 64
	sets := sizeBytes / (ways * lineSize)
	if sets <= 0 {
		panic("simcache: cache smaller than one set")
	}
	return &Cache{
		lineBits: 6,
		sets:     uint64(sets),
		ways:     ways,
		tags:     make([]uint64, sets*ways),
		ages:     make([]uint64, sets*ways),
	}
}

// Access looks up addr, updating LRU state, and reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	line := addr >> c.lineBits
	set := int(line % c.sets)
	tag := line | 1<<63 // bit 63 marks a valid entry (tag 0 is otherwise ambiguous)
	base := set * c.ways
	c.clock++
	victim := base
	oldest := c.ages[base]
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == tag {
			c.ages[i] = c.clock
			return true
		}
		if c.ages[i] < oldest {
			oldest = c.ages[i]
			victim = i
		}
	}
	c.Misses++
	c.tags[victim] = tag
	c.ages[victim] = c.clock
	return false
}

// Install fills addr's line without touching the access/miss counters —
// the path hardware prefetches take into the cache.
func (c *Cache) Install(addr uint64) {
	line := addr >> c.lineBits
	set := int(line % c.sets)
	tag := line | 1<<63
	base := set * c.ways
	c.clock++
	victim := base
	oldest := c.ages[base]
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == tag {
			c.ages[i] = c.clock
			return
		}
		if c.ages[i] < oldest {
			oldest = c.ages[i]
			victim = i
		}
	}
	c.tags[victim] = tag
	c.ages[victim] = c.clock
}

// MissRate returns misses/accesses (0 if never accessed).
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// TLB is a fully-associative translation buffer with LRU replacement over
// 4KB pages.
type TLB struct {
	entries  int
	pages    []uint64
	ages     []uint64
	clock    uint64
	Accesses int64
	Misses   int64
}

// NewTLB builds a TLB with the given number of entries.
func NewTLB(entries int) *TLB {
	return &TLB{entries: entries, pages: make([]uint64, entries), ages: make([]uint64, entries)}
}

// Access translates addr, reporting whether the page was resident.
func (t *TLB) Access(addr uint64) bool {
	t.Accesses++
	page := addr>>12 | 1<<63
	t.clock++
	victim, oldest := 0, t.ages[0]
	for i := 0; i < t.entries; i++ {
		if t.pages[i] == page {
			t.ages[i] = t.clock
			return true
		}
		if t.ages[i] < oldest {
			oldest = t.ages[i]
			victim = i
		}
	}
	t.Misses++
	t.pages[victim] = page
	t.ages[victim] = t.clock
	return false
}

// MissRate returns misses/accesses (0 if never accessed).
func (t *TLB) MissRate() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.Misses) / float64(t.Accesses)
}

// Hierarchy is the modeled L1 -> L2 -> LLC + TLB memory system fed by
// engine traces, including a hardware-style stream prefetcher: without one,
// every cold streaming line would count as an LLC miss, which is not what
// performance counters on the paper's Haswell report for sequential scans.
type Hierarchy struct {
	L1, L2, LLC *Cache
	TLB         *TLB

	streams [16]stream
	sclock  uint64
}

// stream is one detected sequential access stream.
type stream struct {
	valid   bool
	next    uint64 // next expected line
	lastUse uint64
}

// prefetchDepth is how many lines ahead the modeled prefetcher runs.
const prefetchDepth = 4

// NewHaswell models one core's view of the paper's single-node platform:
// 32KB 8-way L1D, 256KB 8-way L2, 30MB 20-way shared L3, and a 1536-entry
// second-level TLB.
func NewHaswell() *Hierarchy {
	return &Hierarchy{
		L1:  NewCache(32<<10, 8),
		L2:  NewCache(256<<10, 8),
		LLC: NewCache(30<<20, 20),
		TLB: NewTLB(1536),
	}
}

// NewHierarchy builds a custom hierarchy (sizes in bytes).
func NewHierarchy(l1, l2, llc, tlbEntries int) *Hierarchy {
	return &Hierarchy{
		L1:  NewCache(l1, 8),
		L2:  NewCache(l2, 8),
		LLC: NewCache(llc, 20),
		TLB: NewTLB(tlbEntries),
	}
}

// spaceBase places each trace space in its own terabyte-aligned region so
// logical arrays never alias.
func spaceBase(space uint8) uint64 { return (uint64(space) + 1) << 40 }

// Access replays one traced access through the hierarchy.
func (h *Hierarchy) Access(space uint8, offset int64) {
	addr := spaceBase(space) + uint64(offset)
	h.TLB.Access(addr)
	h.prefetch(addr)
	if h.L1.Access(addr) {
		return
	}
	if h.L2.Access(addr) {
		return
	}
	h.LLC.Access(addr)
}

// prefetch runs the stream detector: an access continuing a tracked stream
// installs the next prefetchDepth lines into L2 and LLC (uncounted), which
// is how sequential scans stay cheap on real hardware.
func (h *Hierarchy) prefetch(addr uint64) {
	line := addr >> 6
	h.sclock++
	victim, oldest := 0, h.sclock
	for i := range h.streams {
		s := &h.streams[i]
		if s.valid {
			if line == s.next-1 {
				// Still on the stream's current line: nothing to do.
				s.lastUse = h.sclock
				return
			}
			if line == s.next {
				s.next = line + 1
				s.lastUse = h.sclock
				// Install into the LLC only: demand accesses to prefetched
				// lines then count as LLC hits, which is how counters on
				// real hardware see a well-prefetched stream.
				for k := uint64(1); k <= prefetchDepth; k++ {
					h.LLC.Install((line + k) << 6)
				}
				return
			}
		}
		if !s.valid {
			victim, oldest = i, 0
		} else if s.lastUse < oldest {
			victim, oldest = i, s.lastUse
		}
	}
	h.streams[victim] = stream{valid: true, next: line + 1, lastUse: h.sclock}
}

// Tracer returns a function suitable for search.Config.Trace.
func (h *Hierarchy) Tracer() func(space uint8, offset int64) {
	return h.Access
}

// Report summarizes the replayed stream.
type Report struct {
	Accesses    int64
	L1MissRate  float64
	L2MissRate  float64
	LLCMissRate float64
	TLBMissRate float64
	// StalledFrac is a proxy for the stalled-cycle percentage of Fig 2c: the
	// fraction of modeled cycles spent waiting on the memory system beyond
	// the L1 latency, under nominal Haswell latencies (L1 4, L2 12, LLC 42,
	// DRAM 200 cycles).
	StalledFrac float64
	// ModeledCycles is the total modeled memory-system cycle count of the
	// traced stream under those latencies. Because only significant memory
	// accesses are traced, this understates real cycle counts uniformly; it
	// is meaningful for comparing pipelines on the modeled hierarchy, which
	// is how Fig 9's paper-scale speedups are projected (see DESIGN.md).
	ModeledCycles float64
}

// ModeledSeconds converts modeled cycles to seconds at a clock frequency in
// GHz (the evaluation Haswells run at 2.5GHz).
func (r Report) ModeledSeconds(ghz float64) float64 {
	return r.ModeledCycles / (ghz * 1e9)
}

// Report computes the summary.
func (h *Hierarchy) Report() Report {
	const (
		latL1  = 4.0
		latL2  = 12.0
		latLLC = 42.0
		latMem = 200.0
	)
	l1Hits := h.L1.Accesses - h.L1.Misses
	l2Hits := h.L2.Accesses - h.L2.Misses
	llcHits := h.LLC.Accesses - h.LLC.Misses
	llcMisses := h.LLC.Misses
	busy := float64(h.L1.Accesses) * latL1
	stall := float64(l2Hits)*(latL2-latL1) + float64(llcHits)*(latLLC-latL1) + float64(llcMisses)*(latMem-latL1)
	total := busy + stall
	r := Report{
		Accesses:    h.L1.Accesses,
		L1MissRate:  h.L1.MissRate(),
		L2MissRate:  h.L2.MissRate(),
		LLCMissRate: h.LLC.MissRate(),
		TLBMissRate: h.TLB.MissRate(),
	}
	_ = l1Hits
	r.ModeledCycles = total
	if total > 0 {
		r.StalledFrac = stall / total
	}
	return r
}
