// Package qindex builds the query index used by classic (query-indexed)
// BLASTP: a lookup table from every possible W-letter word to the query
// positions whose word is a neighbor of it. Subject sequences are then
// scanned word by word and each subject word is looked up directly
// (Section II-A, "query indexed search").
//
// Following NCBI's lookup-table design (Section VI), neighbor positions are
// expanded into the table at build time — one memory access per subject
// word at scan time — and a presence-vector bitset (pv array) lets the scan
// skip the many words with no query positions without touching the table.
package qindex

import (
	"repro/internal/alphabet"
	"repro/internal/neighbor"
)

// Index is a query lookup table over all NumWords possible words.
type Index struct {
	QueryLen int
	// pv is the presence vector: bit w set iff word w has positions.
	pv []uint64
	// CSR layout: positions for word w are flat[offsets[w]:offsets[w+1]].
	offsets []int32
	flat    []int32
}

// Build constructs the index for an encoded query, expanding positions
// through the neighbor table (so index[v] holds every query offset whose
// word scores >= T against v). Queries shorter than W produce an index with
// no positions.
func Build(query []alphabet.Code, nbr *neighbor.Table) *Index {
	ix := &Index{
		QueryLen: len(query),
		pv:       make([]uint64, (alphabet.NumWords+63)/64),
		offsets:  make([]int32, alphabet.NumWords+1),
	}
	// Counting pass.
	counts := make([]int32, alphabet.NumWords)
	total := int32(0)
	alphabet.Words(query, func(_ int, w alphabet.Word) {
		for _, v := range nbr.Neighbors(w) {
			counts[v]++
			total++
		}
	})
	sum := int32(0)
	for w := 0; w < alphabet.NumWords; w++ {
		ix.offsets[w] = sum
		sum += counts[w]
	}
	ix.offsets[alphabet.NumWords] = sum
	ix.flat = make([]int32, total)
	// Fill pass: positions for each word end up in increasing query-offset
	// order because the outer scan goes left to right.
	next := make([]int32, alphabet.NumWords)
	copy(next, ix.offsets[:alphabet.NumWords])
	alphabet.Words(query, func(off int, w alphabet.Word) {
		for _, v := range nbr.Neighbors(w) {
			ix.flat[next[v]] = int32(off)
			next[v]++
			ix.pv[int(v)>>6] |= 1 << (uint(v) & 63)
		}
	})
	return ix
}

// Positions returns the query offsets stored under word w, in increasing
// order. The returned slice is a view; callers must not modify it.
func (ix *Index) Positions(w alphabet.Word) []int32 {
	return ix.flat[ix.offsets[w]:ix.offsets[w+1]]
}

// Base returns the flat-array index of the first position stored under w,
// used by the cache simulator to map lookups to index addresses.
func (ix *Index) Base(w alphabet.Word) int32 { return ix.offsets[w] }

// Present reports whether any query position is stored under w, via the pv
// bitset (one load, no table access).
func (ix *Index) Present(w alphabet.Word) bool {
	return ix.pv[int(w)>>6]&(1<<(uint(w)&63)) != 0
}

// TotalPositions returns the number of (word, position) entries, the
// redundancy cost of expanding neighbors into the table that the paper's
// two-level database index avoids (Section III).
func (ix *Index) TotalPositions() int { return len(ix.flat) }

// SizeBytes estimates the index memory footprint.
func (ix *Index) SizeBytes() int64 {
	return int64(len(ix.flat))*4 + int64(len(ix.offsets))*4 + int64(len(ix.pv))*8
}
