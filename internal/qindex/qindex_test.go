package qindex

import (
	"sync"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/matrix"
	"repro/internal/neighbor"
	"repro/internal/seqgen"
)

var (
	nbrOnce sync.Once
	nbrTbl  *neighbor.Table
)

func nbr() *neighbor.Table {
	nbrOnce.Do(func() { nbrTbl = neighbor.Build(matrix.Blosum62, neighbor.DefaultThreshold) })
	return nbrTbl
}

func TestPositionsMatchBruteForce(t *testing.T) {
	g := seqgen.New(seqgen.UniprotProfile(), 17)
	query := g.Sequence(200)
	ix := Build(query, nbr())
	// Brute force: for a sample of words v, collect every query offset whose
	// word scores >= T against v.
	for _, v := range []alphabet.Word{0, 1234, 7777, alphabet.NumWords - 1,
		alphabet.WordAt(query, 0), alphabet.WordAt(query, 50)} {
		var want []int32
		alphabet.Words(query, func(off int, w alphabet.Word) {
			if matrix.Blosum62.WordScore(w, v) >= neighbor.DefaultThreshold {
				want = append(want, int32(off))
			}
		})
		got := ix.Positions(v)
		if len(got) != len(want) {
			t.Fatalf("word %v: %d positions, want %d", v, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("word %v: position %d = %d, want %d", v, i, got[i], want[i])
			}
		}
		if ix.Present(v) != (len(want) > 0) {
			t.Errorf("word %v: Present = %v with %d positions", v, ix.Present(v), len(want))
		}
	}
}

func TestPositionsSortedAscending(t *testing.T) {
	g := seqgen.New(seqgen.UniprotProfile(), 23)
	ix := Build(g.Sequence(512), nbr())
	for w := alphabet.Word(0); w < alphabet.NumWords; w++ {
		ps := ix.Positions(w)
		for i := 1; i < len(ps); i++ {
			if ps[i] < ps[i-1] {
				t.Fatalf("word %d: positions out of order", w)
			}
		}
	}
}

func TestPvConsistentWithTable(t *testing.T) {
	g := seqgen.New(seqgen.EnvNRProfile(), 29)
	ix := Build(g.Sequence(128), nbr())
	for w := alphabet.Word(0); w < alphabet.NumWords; w++ {
		if ix.Present(w) != (len(ix.Positions(w)) > 0) {
			t.Fatalf("pv inconsistent at word %d", w)
		}
	}
}

func TestShortQuery(t *testing.T) {
	for _, l := range []int{0, 1, 2} {
		ix := Build(make([]alphabet.Code, l), nbr())
		if ix.TotalPositions() != 0 {
			t.Errorf("query length %d produced %d positions", l, ix.TotalPositions())
		}
	}
}

func TestExactWordAlwaysPresentForStandardResidues(t *testing.T) {
	// For standard residues, a query word is (almost always) its own
	// neighbor under T=11, so looking up the exact word must find its own
	// offset.
	query := alphabet.MustEncode("WWWCCCHHH")
	ix := Build(query, nbr())
	w := alphabet.WordAt(query, 0) // WWW, self-score 33
	found := false
	for _, p := range ix.Positions(w) {
		if p == 0 {
			found = true
		}
	}
	if !found {
		t.Error("WWW at offset 0 not found under its own word")
	}
}

func TestTotalPositionsEqualsNeighborExpansion(t *testing.T) {
	g := seqgen.New(seqgen.UniprotProfile(), 31)
	query := g.Sequence(256)
	want := 0
	alphabet.Words(query, func(_ int, w alphabet.Word) {
		want += nbr().NumNeighbors(w)
	})
	ix := Build(query, nbr())
	if ix.TotalPositions() != want {
		t.Errorf("TotalPositions = %d, want %d", ix.TotalPositions(), want)
	}
	if ix.SizeBytes() <= 0 {
		t.Error("SizeBytes not positive")
	}
}
