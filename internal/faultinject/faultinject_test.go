package faultinject

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestDisarmedSiteIsInert(t *testing.T) {
	s := NewSite("test.inert")
	for i := 0; i < 100; i++ {
		if err := s.Err(); err != nil {
			t.Fatalf("disarmed site returned error: %v", err)
		}
	}
	if s.Fired() != 0 {
		t.Errorf("disarmed site fired %d times", s.Fired())
	}
}

func TestNthHitPanics(t *testing.T) {
	s := NewSite("test.nth")
	if err := Enable("test.nth=panic#3", 1); err != nil {
		t.Fatal(err)
	}
	defer Disable()
	for i := 1; i <= 5; i++ {
		panicked := func() (p bool) {
			defer func() {
				if r := recover(); r != nil {
					pv, ok := r.(PanicValue)
					if !ok || pv.Site != "test.nth" {
						t.Errorf("panic payload %v, want PanicValue for test.nth", r)
					}
					p = true
				}
			}()
			s.Fire()
			return false
		}()
		if panicked != (i == 3) {
			t.Fatalf("hit %d: panicked=%v", i, panicked)
		}
	}
	if s.Fired() != 1 {
		t.Errorf("fired %d, want 1", s.Fired())
	}
}

func TestErrorFaultWrapsSentinel(t *testing.T) {
	s := NewSite("test.err")
	if err := Enable("test.err=error:disk on fire", 1); err != nil {
		t.Fatal(err)
	}
	defer Disable()
	err := s.Err()
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("injected error %v does not wrap ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "disk on fire") || !strings.Contains(err.Error(), "test.err") {
		t.Errorf("error %q missing message or site name", err)
	}
}

func TestDelayFaultSleeps(t *testing.T) {
	s := NewSite("test.delay")
	if err := Enable("test.delay=delay:20ms", 1); err != nil {
		t.Fatal(err)
	}
	defer Disable()
	start := time.Now()
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Errorf("delay fault slept only %v", d)
	}
}

func TestProbabilisticDeterminism(t *testing.T) {
	s := NewSite("test.prob")
	run := func(seed uint64) []int {
		if err := Enable("test.prob=error@0.3", seed); err != nil {
			t.Fatal(err)
		}
		var fired []int
		for i := 0; i < 200; i++ {
			if s.Err() != nil {
				fired = append(fired, i)
			}
		}
		Disable()
		return fired
	}
	a, b := run(42), run(42)
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("prob 0.3 fired %d/200 times", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed fired %d vs %d times", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at firing %d: hit %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical firing patterns")
	}
}

func TestShortReadTruncates(t *testing.T) {
	s := NewSite("test.shortread")
	if err := Enable("test.shortread=shortread:5", 1); err != nil {
		t.Fatal(err)
	}
	defer Disable()
	got, err := io.ReadAll(s.Reader(bytes.NewReader(make([]byte, 100))))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Errorf("short read yielded %d bytes, want 5", len(got))
	}
	Disable()
	got, err = io.ReadAll(s.Reader(bytes.NewReader(make([]byte, 100))))
	if err != nil || len(got) != 100 {
		t.Errorf("disarmed reader yielded %d bytes (err %v), want 100", len(got), err)
	}
}

func TestEnableRejectsUnknownSiteAndBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"no.such.site=panic",
		"test.badspec",
		"test.badspec=frobnicate",
		"test.badspec=panic@2",
		"test.badspec=panic#0",
		"test.badspec=delay:backwards",
		"test.badspec=panic:arg",
	} {
		NewSite("test.badspec")
		if err := Enable(spec, 1); err == nil {
			t.Errorf("Enable(%q) accepted", spec)
			Disable()
		}
	}
}

// TestEnableGrammarEdges pins the spec grammar's edges: probabilities
// outside [0,1] or unparsable, #nth values of zero or past uint64, and
// malformed numerics must all be loud errors, never a silently inert
// schedule.
func TestEnableGrammarEdges(t *testing.T) {
	NewSite("test.grammar")
	for _, spec := range []string{
		"test.grammar=error@1.5",
		"test.grammar=error@-0.1",
		"test.grammar=error@nan",
		"test.grammar=error@",
		"test.grammar=error#0",
		"test.grammar=error#-1",
		"test.grammar=error#18446744073709551616", // 2^64: overflows uint64
		"test.grammar=error#three",
		"test.grammar=shortread:-1",
		"test.grammar=shortread:many",
		"test.grammar=delay:-5ms",
	} {
		if err := Enable(spec, 1); err == nil {
			t.Errorf("Enable(%q) accepted", spec)
			Disable()
		}
	}
	// The extremes that are legal stay legal: @0 never fires, @1 always,
	// #nth at uint64 max parses (it just never triggers in practice).
	for _, spec := range []string{
		"test.grammar=error@0",
		"test.grammar=error@1",
		"test.grammar=error#18446744073709551615",
	} {
		if err := Enable(spec, 1); err != nil {
			t.Errorf("Enable(%q): %v", spec, err)
		}
	}
	Disable()
}

// TestUnknownSiteErrorListsKnown: arming a nonexistent site is an error that
// names the offender and lists the registered sites — the operator's typo is
// diagnosable from the message alone, not a silent no-op schedule.
func TestUnknownSiteErrorListsKnown(t *testing.T) {
	known := NewSite("test.known")
	err := Enable("test.kn0wn=error", 1)
	if err == nil {
		Disable()
		t.Fatal("Enable of an unknown site succeeded")
	}
	if !strings.Contains(err.Error(), "test.kn0wn") || !strings.Contains(err.Error(), "test.known") {
		t.Errorf("error %q does not name the unknown site and list known ones", err)
	}
	if known.Err() != nil {
		t.Error("failed Enable left a site armed")
	}
}

// TestFailedEnableKeepsPreviousSchedule: Enable is parse-then-swap — a spec
// that fails to parse must leave the previously armed schedule running, not
// tear it down halfway.
func TestFailedEnableKeepsPreviousSchedule(t *testing.T) {
	s := NewSite("test.keep")
	if err := Enable("test.keep=error", 1); err != nil {
		t.Fatal(err)
	}
	defer Disable()
	if err := Enable("test.keep=error@2", 1); err == nil {
		t.Fatal("bad spec accepted")
	}
	if s.Err() == nil {
		t.Error("failed Enable disarmed the previous schedule")
	}
}

func TestEnableReplacesSchedule(t *testing.T) {
	a := NewSite("test.replace.a")
	b := NewSite("test.replace.b")
	if err := Enable("test.replace.a=error", 1); err != nil {
		t.Fatal(err)
	}
	if a.Err() == nil {
		t.Error("armed site a did not fire")
	}
	if err := Enable("test.replace.b=error", 1); err != nil {
		t.Fatal(err)
	}
	if a.Err() != nil {
		t.Error("site a still armed after schedule replacement")
	}
	if b.Err() == nil {
		t.Error("site b not armed by replacement schedule")
	}
	Disable()
}

func TestSitesSortedAndDeduplicated(t *testing.T) {
	s1 := NewSite("test.dup")
	s2 := NewSite("test.dup")
	if s1 != s2 {
		t.Error("NewSite returned distinct sites for one name")
	}
	names := Sites()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Sites() not sorted/unique at %d: %q >= %q", i, names[i-1], names[i])
		}
	}
}

// BenchmarkDisarmedFire pins the disarmed cost: one atomic pointer load.
func BenchmarkDisarmedFire(b *testing.B) {
	s := NewSite("bench.disarmed")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Fire()
	}
}
