// Package faultinject provides named, seed-deterministic fault sites for the
// chaos harness: a package declares a site once (at init), calls it from the
// code path under test, and an operator or test arms a schedule of faults
// against those names. The fine-grained (block, query) tasks and per-rank
// partitions of the paper's decoupled pipeline are exactly the units the
// robustness layer retries or abandons, so the sites sit on those seams: hit
// detection, extension, the batch scheduler, and the mpi substrate.
//
// The hot-path contract matches internal/obs: a disarmed site costs one
// atomic pointer load per Fire/Err call — no locks, no allocations, no map
// lookups — so the sites stay compiled into production code paths.
//
// Fault schedules are strings, e.g.
//
//	sched.task=panic#3,core.extend=delay:200us@0.05,mpi.recv=error@0.1
//
// one clause per site: name=kind[:param][@prob][#nth]. Kinds:
//
//	panic          panic with a faultinject.PanicValue at the site
//	delay[:dur]    sleep dur (default 1ms) at the site
//	error[:msg]    return an error wrapping ErrInjected from the site
//	shortread[:n]  truncate the site's Reader after n bytes (default 0)
//
// @prob fires the fault on each hit with the given probability, decided by a
// pure function of (seed, site name, hit index) — the same seed replays the
// same decisions. #nth fires exactly on the nth hit of the site (1-based),
// the fully deterministic form used by targeted tests.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is the fault behaviour of an armed site.
type Kind int

const (
	// KindPanic panics with a PanicValue when the site fires.
	KindPanic Kind = iota
	// KindDelay sleeps for the armed duration when the site fires.
	KindDelay
	// KindError returns an error wrapping ErrInjected when the site fires.
	KindError
	// KindShortRead truncates the site's Reader after the armed byte count.
	KindShortRead
)

func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	case KindError:
		return "error"
	case KindShortRead:
		return "shortread"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ErrInjected is the sentinel every injected error wraps, so callers can
// distinguish chaos-harness faults from real failures with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// PanicValue is the panic payload of a fired panic-kind site. The scheduler's
// recover-and-attribute path preserves it inside TaskPanicError, so tests can
// tell injected panics from genuine ones.
type PanicValue struct {
	Site string
}

func (p PanicValue) String() string { return "faultinject: injected panic at site " + p.Site }

// arming is one site's active fault configuration. Sites hold it behind an
// atomic pointer: nil means disarmed.
type arming struct {
	kind  Kind
	delay time.Duration
	err   error
	limit int64 // shortread byte budget
	prob  float64
	nth   uint64 // fire exactly on this hit (1-based); 0 = probabilistic/every
	seed  uint64
}

// Site is one named fault point. Construct with NewSite at package init;
// the zero value is usable (permanently disarmed) but unregistered.
type Site struct {
	name  string
	arm   atomic.Pointer[arming]
	hits  atomic.Uint64 // lifetime hits while armed (trigger input)
	fired atomic.Uint64 // lifetime faults actually injected
}

var (
	regMu sync.Mutex
	reg   = map[string]*Site{}
)

// NewSite registers (or returns the existing) site with the given name.
// Intended for package-level var initialization, so every site exists before
// any Enable call parses a schedule.
func NewSite(name string) *Site {
	regMu.Lock()
	defer regMu.Unlock()
	if s, ok := reg[name]; ok {
		return s
	}
	s := &Site{name: name}
	reg[name] = s
	return s
}

// Sites returns the registered site names, sorted.
func Sites() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(reg))
	for name := range reg {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Name returns the site's registered name.
func (s *Site) Name() string { return s.name }

// Fired returns how many faults this site has injected since it was armed
// last (the counter resets on arm).
func (s *Site) Fired() uint64 { return s.fired.Load() }

// splitmix64 is the deterministic per-hit decision hash (Vigna's SplitMix64
// finalizer): cheap, stateless, and well distributed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv64 hashes the site name into the decision seed.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// trigger decides whether this hit fires, advancing the hit counter.
func (s *Site) trigger(a *arming) bool {
	hit := s.hits.Add(1)
	switch {
	case a.nth > 0:
		if hit != a.nth {
			return false
		}
	case a.prob < 1:
		// Deterministic in (seed, site, hit index): replaying the same seed
		// against the same hit sequence fires the same subset.
		if float64(splitmix64(a.seed^fnv64(s.name)^hit))/float64(1<<63)/2 >= a.prob {
			return false
		}
	}
	s.fired.Add(1)
	return true
}

// Err evaluates the site: disarmed it is a single atomic load returning nil.
// Armed, it may panic (KindPanic), sleep (KindDelay), or return an injected
// error (KindError). KindShortRead never fires here — it only shapes Reader.
func (s *Site) Err() error {
	a := s.arm.Load()
	if a == nil {
		return nil
	}
	if a.kind == KindShortRead || !s.trigger(a) {
		return nil
	}
	switch a.kind {
	case KindPanic:
		panic(PanicValue{Site: s.name})
	case KindDelay:
		time.Sleep(a.delay)
	case KindError:
		return a.err
	}
	return nil
}

// Fire is Err for call sites that cannot propagate an error (panic and delay
// faults still take effect; error faults are dropped).
func (s *Site) Fire() { _ = s.Err() }

// Reader wraps r with the site's short-read fault: when armed as shortread
// and the trigger fires, the returned reader yields at most the armed byte
// budget and then io.EOF — a truncated stream, exactly what a failing disk
// or cut connection produces. Disarmed (or any other kind), r is returned
// unchanged.
func (s *Site) Reader(r io.Reader) io.Reader {
	a := s.arm.Load()
	if a == nil || a.kind != KindShortRead || !s.trigger(a) {
		return r
	}
	return io.LimitReader(r, a.limit)
}

// Enable parses a fault schedule and arms the named sites. Every named site
// must already be registered; unknown names are an error listing the known
// sites. The seed drives every @prob decision. Enable replaces any previous
// schedule in full (sites not named are disarmed).
func Enable(spec string, seed uint64) error {
	plans, err := parseSpec(spec, seed)
	if err != nil {
		return err
	}
	Disable()
	for site, a := range plans {
		site.hits.Store(0)
		site.fired.Store(0)
		site.arm.Store(a)
	}
	return nil
}

// Disable disarms every site.
func Disable() {
	regMu.Lock()
	defer regMu.Unlock()
	for _, s := range reg {
		s.arm.Store(nil)
	}
}

// parseSpec parses "name=kind[:param][@prob][#nth]" clauses separated by
// commas.
func parseSpec(spec string, seed uint64) (map[*Site]*arming, error) {
	out := map[*Site]*arming{}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, rest, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: clause %q: want name=kind[:param][@prob][#nth]", clause)
		}
		regMu.Lock()
		site := reg[name]
		regMu.Unlock()
		if site == nil {
			return nil, fmt.Errorf("faultinject: unknown site %q (known: %s)", name, strings.Join(Sites(), ", "))
		}
		a := &arming{prob: 1, seed: seed}
		if i := strings.IndexByte(rest, '#'); i >= 0 {
			nth, err := strconv.ParseUint(rest[i+1:], 10, 64)
			if err != nil || nth == 0 {
				return nil, fmt.Errorf("faultinject: clause %q: bad #nth %q", clause, rest[i+1:])
			}
			a.nth = nth
			rest = rest[:i]
		}
		if i := strings.IndexByte(rest, '@'); i >= 0 {
			p, err := strconv.ParseFloat(rest[i+1:], 64)
			// The range check must reject NaN explicitly: NaN compares false
			// against both bounds, and a NaN prob would fire on every hit.
			if err != nil || math.IsNaN(p) || p < 0 || p > 1 {
				return nil, fmt.Errorf("faultinject: clause %q: bad @prob %q", clause, rest[i+1:])
			}
			a.prob = p
			rest = rest[:i]
		}
		kind, param, _ := strings.Cut(rest, ":")
		switch kind {
		case "panic":
			a.kind = KindPanic
		case "delay":
			a.kind = KindDelay
			a.delay = time.Millisecond
			if param != "" {
				d, err := time.ParseDuration(param)
				if err != nil || d < 0 {
					return nil, fmt.Errorf("faultinject: clause %q: bad delay %q", clause, param)
				}
				a.delay = d
			}
		case "error":
			a.kind = KindError
			msg := param
			if msg == "" {
				msg = "injected at " + name
			}
			a.err = fmt.Errorf("faultinject: site %s: %s: %w", name, msg, ErrInjected)
		case "shortread":
			a.kind = KindShortRead
			if param != "" {
				n, err := strconv.ParseInt(param, 10, 64)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("faultinject: clause %q: bad shortread limit %q", clause, param)
				}
				a.limit = n
			}
		default:
			return nil, fmt.Errorf("faultinject: clause %q: unknown kind %q (want panic, delay, error, or shortread)", clause, kind)
		}
		if param != "" && (kind == "panic") {
			return nil, fmt.Errorf("faultinject: clause %q: kind panic takes no parameter", clause)
		}
		out[site] = a
	}
	return out, nil
}
