// Package mpi is a small message-passing substrate: ranks run as goroutines
// inside one process and communicate through point-to-point channels with
// MPI-shaped collectives (Send/Recv, Bcast, Gather, Barrier, Reduce). It
// stands in for MVAPICH on Stampede (Section V-A): the inter-node muBLASTP
// of Section IV-D runs unchanged on top of it, with every rank owning a
// database partition (see internal/cluster).
package mpi

import (
	"fmt"
	"sync"
)

// World is a fixed-size group of ranks.
type World struct {
	n     int
	chans [][]chan any // chans[from][to]

	barrierMu  sync.Mutex
	barrierCnt int
	barrierGen int
	barrierC   *sync.Cond
}

// NewWorld creates a world with n ranks.
func NewWorld(n int) *World {
	if n <= 0 {
		panic("mpi: world size must be positive")
	}
	w := &World{n: n, chans: make([][]chan any, n)}
	for i := range w.chans {
		w.chans[i] = make([]chan any, n)
		for j := range w.chans[i] {
			w.chans[i][j] = make(chan any, 16)
		}
	}
	w.barrierC = sync.NewCond(&w.barrierMu)
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// Run spawns one goroutine per rank executing fn and waits for all of them.
func (w *World) Run(fn func(r *Rank)) {
	var wg sync.WaitGroup
	wg.Add(w.n)
	for id := 0; id < w.n; id++ {
		go func(id int) {
			defer wg.Done()
			fn(&Rank{id: id, w: w})
		}(id)
	}
	wg.Wait()
}

// Rank is one process's view of the world.
type Rank struct {
	id int
	w  *World
}

// ID returns this rank's id in [0, Size).
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return r.w.n }

// Send delivers payload to rank `to` (blocking only when the channel buffer
// between the pair is full).
func (r *Rank) Send(to int, payload any) {
	if to < 0 || to >= r.w.n {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", to))
	}
	r.w.chans[r.id][to] <- payload
}

// Recv blocks until a message from rank `from` arrives and returns it.
// Messages between a pair of ranks arrive in send order.
func (r *Rank) Recv(from int) any {
	if from < 0 || from >= r.w.n {
		panic(fmt.Sprintf("mpi: recv from invalid rank %d", from))
	}
	return <-r.w.chans[from][r.id]
}

// Bcast distributes v from root to every rank; every rank returns the
// broadcast value (v itself at the root).
func (r *Rank) Bcast(root int, v any) any {
	if r.id == root {
		for to := 0; to < r.w.n; to++ {
			if to != root {
				r.Send(to, v)
			}
		}
		return v
	}
	return r.Recv(root)
}

// Gather collects one value from every rank at root, in rank order. Only
// the root receives the slice; other ranks return nil.
func (r *Rank) Gather(root int, v any) []any {
	if r.id != root {
		r.Send(root, v)
		return nil
	}
	out := make([]any, r.w.n)
	for from := 0; from < r.w.n; from++ {
		if from == root {
			out[from] = v
			continue
		}
		out[from] = r.Recv(from)
	}
	return out
}

// ReduceFloat64 combines one float64 per rank at root with op; other ranks
// return 0 and false.
func (r *Rank) ReduceFloat64(root int, v float64, op func(a, b float64) float64) (float64, bool) {
	vals := r.Gather(root, v)
	if vals == nil {
		return 0, false
	}
	acc := vals[0].(float64)
	for _, x := range vals[1:] {
		acc = op(acc, x.(float64))
	}
	return acc, true
}

// Barrier blocks until every rank has entered it.
func (r *Rank) Barrier() {
	w := r.w
	w.barrierMu.Lock()
	gen := w.barrierGen
	w.barrierCnt++
	if w.barrierCnt == w.n {
		w.barrierCnt = 0
		w.barrierGen++
		w.barrierC.Broadcast()
	} else {
		for gen == w.barrierGen {
			w.barrierC.Wait()
		}
	}
	w.barrierMu.Unlock()
}
