// Package mpi is a small message-passing substrate: ranks run as goroutines
// inside one process and communicate through point-to-point channels with
// MPI-shaped collectives (Send/Recv, Bcast, Gather, Barrier, Reduce). It
// stands in for MVAPICH on Stampede (Section V-A): the inter-node muBLASTP
// of Section IV-D runs unchanged on top of it, with every rank owning a
// database partition (see internal/cluster).
//
// Unlike a first-cut in-process substrate, the world models partial failure:
// a rank whose function panics is marked down (its panic is recovered and
// reported by Run, not propagated), peers talking to a down rank get a typed
// RankDownError instead of blocking forever, Send/Recv can be bounded by a
// per-operation timeout, and Shutdown releases every blocked rank so Run
// always returns. Barrier synchronizes the *live* ranks, so survivors are
// never hostage to a dead one.
package mpi

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/faultinject"
)

var (
	// ErrInvalidRank reports a Send/Recv aimed outside [0, Size).
	ErrInvalidRank = errors.New("mpi: invalid rank")
	// ErrWorldShutdown reports an operation cut short by World.Shutdown.
	ErrWorldShutdown = errors.New("mpi: world shut down")
	// ErrOpTimeout reports a Send/Recv that exceeded the world's
	// per-operation timeout (see WithOpTimeout).
	ErrOpTimeout = errors.New("mpi: operation timed out")
)

// RankDownError reports a peer rank that panicked and was marked down.
type RankDownError struct{ Rank int }

func (e *RankDownError) Error() string { return fmt.Sprintf("mpi: rank %d is down", e.Rank) }

// RankPanicError carries the recovered panic of one rank out of Run.
type RankPanicError struct {
	Rank  int
	Value any
	Stack []byte
}

func (e *RankPanicError) Error() string {
	return fmt.Sprintf("mpi: rank %d panicked: %v", e.Rank, e.Value)
}

// fiSend injects faults into the point-to-point send path (site "mpi.send"):
// error kind surfaces as a Send error, panic kind kills the sending rank.
var fiSend = faultinject.NewSite("mpi.send")

// World is a fixed-size group of ranks.
type World struct {
	n         int
	opTimeout time.Duration
	chans     [][]chan any // chans[from][to]

	done      chan struct{}
	closeOnce sync.Once

	mu         sync.Mutex
	cond       *sync.Cond
	shutdown   bool
	down       []bool
	downCh     []chan struct{} // closed when the rank is marked down
	panics     []*RankPanicError
	nDown      int
	barrierCnt int
	barrierGen int
}

// Option configures a World at construction.
type Option func(*World)

// WithOpTimeout bounds every Send and Recv: an operation still blocked after
// d returns ErrOpTimeout. d <= 0 (the default) means operations block until
// delivery, peer death, or shutdown.
func WithOpTimeout(d time.Duration) Option {
	return func(w *World) { w.opTimeout = d }
}

// NewWorld creates a world with n ranks. n must be positive.
func NewWorld(n int, opts ...Option) (*World, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mpi: world size %d must be positive", n)
	}
	w := &World{
		n:      n,
		chans:  make([][]chan any, n),
		done:   make(chan struct{}),
		down:   make([]bool, n),
		downCh: make([]chan struct{}, n),
		panics: make([]*RankPanicError, n),
	}
	for i := range w.chans {
		w.chans[i] = make([]chan any, n)
		for j := range w.chans[i] {
			w.chans[i][j] = make(chan any, 16)
		}
		w.downCh[i] = make(chan struct{})
	}
	w.cond = sync.NewCond(&w.mu)
	for _, o := range opts {
		o(w)
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// Shutdown releases every rank blocked in Send, Recv, or Barrier with
// ErrWorldShutdown. It is idempotent and safe to call from any goroutine —
// typically a root rank's defer, so a wedged peer can never keep Run from
// returning.
func (w *World) Shutdown() {
	w.closeOnce.Do(func() {
		w.mu.Lock()
		w.shutdown = true
		w.cond.Broadcast()
		w.mu.Unlock()
		close(w.done)
	})
}

// Down reports whether rank id has been marked down.
func (w *World) Down(id int) bool {
	if id < 0 || id >= w.n {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.down[id]
}

// markDown flags a rank as dead: its down channel closes (waking peers
// blocked on it) and the live-rank barrier recounts.
func (w *World) markDown(id int, perr *RankPanicError) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.down[id] {
		return
	}
	w.down[id] = true
	w.panics[id] = perr
	w.nDown++
	close(w.downCh[id])
	w.maybeCompleteBarrierLocked()
	w.cond.Broadcast()
}

func (w *World) maybeCompleteBarrierLocked() {
	if w.barrierCnt > 0 && w.barrierCnt >= w.n-w.nDown {
		w.barrierCnt = 0
		w.barrierGen++
		w.cond.Broadcast()
	}
}

// Run spawns one goroutine per rank executing fn and waits for all of them.
// A rank whose fn panics does not crash the process: the panic is recovered,
// the rank is marked down (peers see RankDownError), and Run returns the
// recovered panics joined as RankPanicErrors. A clean run returns nil.
func (w *World) Run(fn func(r *Rank)) error {
	var wg sync.WaitGroup
	wg.Add(w.n)
	for id := 0; id < w.n; id++ {
		go func(id int) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					w.markDown(id, &RankPanicError{Rank: id, Value: v, Stack: debug.Stack()})
				}
			}()
			fn(&Rank{id: id, w: w})
		}(id)
	}
	wg.Wait()
	var errs []error
	w.mu.Lock()
	for _, p := range w.panics {
		if p != nil {
			errs = append(errs, p)
		}
	}
	w.mu.Unlock()
	return errors.Join(errs...)
}

// Rank is one process's view of the world.
type Rank struct {
	id int
	w  *World
}

// ID returns this rank's id in [0, Size).
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return r.w.n }

// opTimer returns a timeout channel for one operation (nil when the world
// has no per-op timeout, so the select case never fires).
func (w *World) opTimer() (<-chan time.Time, *time.Timer) {
	if w.opTimeout <= 0 {
		return nil, nil
	}
	t := time.NewTimer(w.opTimeout)
	return t.C, t
}

// Send delivers payload to rank `to`. It blocks only while the channel
// buffer between the pair is full, and returns early with a typed error when
// the receiver is down (RankDownError), the world shuts down
// (ErrWorldShutdown), or the per-op timeout expires (ErrOpTimeout).
func (r *Rank) Send(to int, payload any) error {
	w := r.w
	if to < 0 || to >= w.n {
		return fmt.Errorf("%w: send to rank %d of %d", ErrInvalidRank, to, w.n)
	}
	if err := fiSend.Err(); err != nil {
		return fmt.Errorf("mpi: send %d->%d: %w", r.id, to, err)
	}
	// A message queued for a dead rank is never consumed: fail fast.
	select {
	case <-w.downCh[to]:
		return &RankDownError{Rank: to}
	default:
	}
	timeout, timer := w.opTimer()
	if timer != nil {
		defer timer.Stop()
	}
	select {
	case w.chans[r.id][to] <- payload:
		return nil
	case <-w.downCh[to]:
		return &RankDownError{Rank: to}
	case <-w.done:
		return ErrWorldShutdown
	case <-timeout:
		return fmt.Errorf("send %d->%d: %w", r.id, to, ErrOpTimeout)
	}
}

// Recv blocks until a message from rank `from` arrives and returns it.
// Messages between a pair of ranks arrive in send order. Messages the peer
// sent before dying are still delivered: the buffer drains before Recv
// reports RankDownError. Shutdown and the per-op timeout cut the wait short
// with ErrWorldShutdown / ErrOpTimeout.
func (r *Rank) Recv(from int) (any, error) {
	w := r.w
	if from < 0 || from >= w.n {
		return nil, fmt.Errorf("%w: recv from rank %d of %d", ErrInvalidRank, from, w.n)
	}
	ch := w.chans[from][r.id]
	// Buffered messages win over every failure signal.
	select {
	case v := <-ch:
		return v, nil
	default:
	}
	timeout, timer := w.opTimer()
	if timer != nil {
		defer timer.Stop()
	}
	select {
	case v := <-ch:
		return v, nil
	case <-w.downCh[from]:
		// The down signal may race a final in-flight send: drain once more.
		select {
		case v := <-ch:
			return v, nil
		default:
		}
		return nil, &RankDownError{Rank: from}
	case <-w.done:
		return nil, ErrWorldShutdown
	case <-timeout:
		return nil, fmt.Errorf("recv %d<-%d: %w", r.id, from, ErrOpTimeout)
	}
}

// Bcast distributes v from root to every rank; every rank returns the
// broadcast value (v itself at the root). At the root, down receivers are
// skipped; a non-root rank returns the first delivery error.
func (r *Rank) Bcast(root int, v any) (any, error) {
	if r.id == root {
		for to := 0; to < r.w.n; to++ {
			if to == root {
				continue
			}
			if err := r.Send(to, v); err != nil {
				var down *RankDownError
				if errors.As(err, &down) {
					continue // a dead receiver does not fail the broadcast
				}
				return nil, err
			}
		}
		return v, nil
	}
	return r.Recv(root)
}

// Gather collects one value from every rank at root, in rank order. Only the
// root receives the slice; other ranks return nil. A down contributor leaves
// a nil slot and its RankDownError joined into the returned error; timeouts
// and shutdown abort the gather.
func (r *Rank) Gather(root int, v any) ([]any, error) {
	if r.id != root {
		return nil, r.Send(root, v)
	}
	out := make([]any, r.w.n)
	var downs []error
	for from := 0; from < r.w.n; from++ {
		if from == root {
			out[from] = v
			continue
		}
		got, err := r.Recv(from)
		if err != nil {
			var down *RankDownError
			if errors.As(err, &down) {
				downs = append(downs, err)
				continue
			}
			return out, err
		}
		out[from] = got
	}
	return out, errors.Join(downs...)
}

// ReduceFloat64 combines one float64 per rank at root with op; other ranks
// return 0 and false. Down contributors are skipped (their slots do not
// enter the reduction).
func (r *Rank) ReduceFloat64(root int, v float64, op func(a, b float64) float64) (float64, bool, error) {
	vals, err := r.Gather(root, v)
	if r.id != root {
		return 0, false, err
	}
	var down *RankDownError
	if err != nil && !errors.As(err, &down) {
		return 0, true, err
	}
	acc, seeded := 0.0, false
	for _, x := range vals {
		if x == nil {
			continue
		}
		if !seeded {
			acc, seeded = x.(float64), true
			continue
		}
		acc = op(acc, x.(float64))
	}
	return acc, true, nil
}

// Barrier blocks until every *live* rank has entered it. Ranks that died
// before arriving are not waited for; a rank dying while others wait
// re-counts and releases them. Shutdown aborts with ErrWorldShutdown.
func (r *Rank) Barrier() error {
	w := r.w
	w.mu.Lock()
	defer w.mu.Unlock()
	gen := w.barrierGen
	w.barrierCnt++
	w.maybeCompleteBarrierLocked()
	for gen == w.barrierGen {
		if w.shutdown {
			return ErrWorldShutdown
		}
		w.cond.Wait()
	}
	return nil
}
