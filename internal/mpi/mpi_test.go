package mpi

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func newWorld(t *testing.T, n int, opts ...Option) *World {
	t.Helper()
	w, err := NewWorld(n, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewWorldRejectsBadSize(t *testing.T) {
	for _, n := range []int{0, -1} {
		if w, err := NewWorld(n); err == nil || w != nil {
			t.Errorf("NewWorld(%d) = %v, %v; want nil, error", n, w, err)
		}
	}
}

func TestSendRecvOrdering(t *testing.T) {
	w := newWorld(t, 2)
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			for i := 0; i < 100; i++ {
				if err := r.Send(1, i); err != nil {
					t.Errorf("send %d: %v", i, err)
					return
				}
			}
		} else {
			for i := 0; i < 100; i++ {
				got, err := r.Recv(0)
				if err != nil {
					t.Errorf("recv %d: %v", i, err)
					return
				}
				if got.(int) != i {
					t.Errorf("message %d arrived as %d", i, got)
					return
				}
			}
		}
	})
}

func TestBcast(t *testing.T) {
	w := newWorld(t, 8)
	var sum atomic.Int64
	w.Run(func(r *Rank) {
		v := -1
		if r.ID() == 3 {
			v = 42
		}
		got, err := r.Bcast(3, v)
		if err != nil {
			t.Errorf("rank %d bcast: %v", r.ID(), err)
			return
		}
		sum.Add(int64(got.(int)))
	})
	if sum.Load() != 42*8 {
		t.Errorf("broadcast sum %d, want %d", sum.Load(), 42*8)
	}
}

func TestGatherInRankOrder(t *testing.T) {
	w := newWorld(t, 6)
	w.Run(func(r *Rank) {
		vals, err := r.Gather(0, r.ID()*10)
		if err != nil {
			t.Errorf("rank %d gather: %v", r.ID(), err)
			return
		}
		if r.ID() == 0 {
			if len(vals) != 6 {
				t.Errorf("gathered %d values", len(vals))
				return
			}
			for i, v := range vals {
				if v.(int) != i*10 {
					t.Errorf("vals[%d] = %v", i, v)
				}
			}
		} else if vals != nil {
			t.Errorf("non-root rank %d received gather result", r.ID())
		}
	})
}

func TestReduce(t *testing.T) {
	w := newWorld(t, 5)
	w.Run(func(r *Rank) {
		got, isRoot, err := r.ReduceFloat64(2, float64(r.ID()), func(a, b float64) float64 { return a + b })
		if err != nil {
			t.Errorf("rank %d reduce: %v", r.ID(), err)
			return
		}
		if r.ID() == 2 {
			if !isRoot || got != 10 {
				t.Errorf("reduce = %v (root %v), want 10", got, isRoot)
			}
		} else if isRoot {
			t.Errorf("rank %d claims to be root", r.ID())
		}
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	w := newWorld(t, 8)
	var phase1 atomic.Int32
	fail := atomic.Bool{}
	w.Run(func(r *Rank) {
		phase1.Add(1)
		r.Barrier()
		if phase1.Load() != 8 {
			fail.Store(true)
		}
		r.Barrier()
	})
	if fail.Load() {
		t.Error("a rank passed the barrier before all ranks arrived")
	}
}

func TestRepeatedBarriers(t *testing.T) {
	w := newWorld(t, 4)
	var counter atomic.Int32
	fail := atomic.Bool{}
	w.Run(func(r *Rank) {
		for round := 1; round <= 10; round++ {
			counter.Add(1)
			r.Barrier()
			if counter.Load() != int32(4*round) {
				fail.Store(true)
			}
			r.Barrier()
		}
	})
	if fail.Load() {
		t.Error("barrier generations interleaved")
	}
}

func TestPipelinePattern(t *testing.T) {
	// Ring: each rank sends its id to the next; verifies point-to-point
	// channels are fully connected.
	const n = 7
	w := newWorld(t, n)
	var received [n]int32
	w.Run(func(r *Rank) {
		next := (r.ID() + 1) % n
		prev := (r.ID() + n - 1) % n
		if err := r.Send(next, r.ID()); err != nil {
			t.Errorf("rank %d send: %v", r.ID(), err)
			return
		}
		got, err := r.Recv(prev)
		if err != nil {
			t.Errorf("rank %d recv: %v", r.ID(), err)
			return
		}
		atomic.StoreInt32(&received[r.ID()], int32(got.(int)))
	})
	for i := 0; i < n; i++ {
		want := (i + n - 1) % n
		if received[i] != int32(want) {
			t.Errorf("rank %d received %d, want %d", i, received[i], want)
		}
	}
}

func TestInvalidRankErrors(t *testing.T) {
	w := newWorld(t, 2)
	w.Run(func(r *Rank) {
		if r.ID() != 0 {
			return
		}
		if err := r.Send(5, "boom"); !errors.Is(err, ErrInvalidRank) {
			t.Errorf("Send(5) = %v, want ErrInvalidRank", err)
		}
		if _, err := r.Recv(-1); !errors.Is(err, ErrInvalidRank) {
			t.Errorf("Recv(-1) = %v, want ErrInvalidRank", err)
		}
	})
}

func TestRankPanicIsRecoveredAndReported(t *testing.T) {
	w := newWorld(t, 4)
	err := w.Run(func(r *Rank) {
		if r.ID() == 2 {
			panic("rank 2 dies")
		}
	})
	var perr *RankPanicError
	if !errors.As(err, &perr) {
		t.Fatalf("Run = %v, want RankPanicError", err)
	}
	if perr.Rank != 2 || perr.Value != "rank 2 dies" || len(perr.Stack) == 0 {
		t.Errorf("panic misreported: %+v", perr)
	}
	if !w.Down(2) || w.Down(0) {
		t.Error("down flags wrong after rank 2 panic")
	}
}

func TestRecvFromDeadRankDrainsBufferFirst(t *testing.T) {
	w := newWorld(t, 2)
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, "last words")
			panic("rank 0 dies after sending")
		}
		// Wait for the peer to be marked down so both the buffered message
		// and the down signal are observable together.
		for !w.Down(0) {
			time.Sleep(time.Millisecond)
		}
		got, err := r.Recv(0)
		if err != nil || got != "last words" {
			t.Errorf("first recv = %v, %v; buffered message lost", got, err)
			return
		}
		var down *RankDownError
		if _, err := r.Recv(0); !errors.As(err, &down) || down.Rank != 0 {
			t.Errorf("second recv = %v, want RankDownError{0}", err)
		}
	})
}

func TestSendToDeadRankFailsFast(t *testing.T) {
	w := newWorld(t, 2)
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			panic("dead on arrival")
		}
		for !w.Down(0) {
			time.Sleep(time.Millisecond)
		}
		// Even with buffer space free, sending to a corpse errors.
		var down *RankDownError
		if err := r.Send(0, "hello?"); !errors.As(err, &down) {
			t.Errorf("send to dead rank = %v, want RankDownError", err)
		}
	})
}

func TestOpTimeout(t *testing.T) {
	w := newWorld(t, 2, WithOpTimeout(20*time.Millisecond))
	w.Run(func(r *Rank) {
		if r.ID() != 0 {
			return // never sends: rank 0's recv must time out
		}
		start := time.Now()
		if _, err := r.Recv(1); !errors.Is(err, ErrOpTimeout) {
			t.Errorf("recv = %v, want ErrOpTimeout", err)
		}
		if time.Since(start) > 2*time.Second {
			t.Error("timeout fired far too late")
		}
	})
}

func TestBarrierSkipsDeadRanks(t *testing.T) {
	// Rank 1 dies before the barrier; the remaining 3 must still pass.
	w := newWorld(t, 4)
	var passed atomic.Int32
	err := w.Run(func(r *Rank) {
		if r.ID() == 1 {
			panic("no-show")
		}
		// Ensure the barrier count requirement has dropped before entering.
		for !w.Down(1) {
			time.Sleep(time.Millisecond)
		}
		if err := r.Barrier(); err != nil {
			t.Errorf("rank %d barrier: %v", r.ID(), err)
			return
		}
		passed.Add(1)
	})
	if passed.Load() != 3 {
		t.Errorf("%d ranks passed the live barrier, want 3", passed.Load())
	}
	var perr *RankPanicError
	if !errors.As(err, &perr) {
		t.Errorf("Run = %v", err)
	}
}

func TestBarrierReleasedByMidWaitDeath(t *testing.T) {
	// Ranks 0 and 2 enter the barrier first; rank 1 dies afterwards. The
	// waiters must be released by the death, not hang forever.
	w := newWorld(t, 3)
	entered := make(chan struct{}, 2)
	done := make(chan error, 2)
	go w.Run(func(r *Rank) {
		if r.ID() == 1 {
			entered <- struct{}{}
			entered <- struct{}{}
			<-entered // reuse: wait until both peers signalled entry intent
			panic("dies mid-round")
		}
		<-entered
		done <- r.Barrier()
	})
	// Give waiters time to block, then release the killer.
	time.Sleep(20 * time.Millisecond)
	entered <- struct{}{}
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("barrier: %v", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("barrier waiter hung after peer death")
		}
	}
}

func TestShutdownReleasesBlockedRanks(t *testing.T) {
	base := runtime.NumGoroutine()
	w := newWorld(t, 3)
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			time.Sleep(10 * time.Millisecond)
			w.Shutdown()
			return
		}
		if r.ID() == 1 {
			if _, err := r.Recv(2); !errors.Is(err, ErrWorldShutdown) {
				t.Errorf("recv after shutdown = %v", err)
			}
			return
		}
		if err := r.Barrier(); !errors.Is(err, ErrWorldShutdown) {
			t.Errorf("barrier after shutdown = %v", err)
		}
	})
	if err != nil {
		t.Errorf("Run = %v", err)
	}
	w.Shutdown() // idempotent
	waitForGoroutines(t, base)
}

func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > %d\n%s", runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
