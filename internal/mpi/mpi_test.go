package mpi

import (
	"sync/atomic"
	"testing"
)

func TestSendRecvOrdering(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			for i := 0; i < 100; i++ {
				r.Send(1, i)
			}
		} else {
			for i := 0; i < 100; i++ {
				if got := r.Recv(0).(int); got != i {
					t.Errorf("message %d arrived as %d", i, got)
					return
				}
			}
		}
	})
}

func TestBcast(t *testing.T) {
	w := NewWorld(8)
	var sum atomic.Int64
	w.Run(func(r *Rank) {
		v := -1
		if r.ID() == 3 {
			v = 42
		}
		got := r.Bcast(3, v).(int)
		sum.Add(int64(got))
	})
	if sum.Load() != 42*8 {
		t.Errorf("broadcast sum %d, want %d", sum.Load(), 42*8)
	}
}

func TestGatherInRankOrder(t *testing.T) {
	w := NewWorld(6)
	w.Run(func(r *Rank) {
		vals := r.Gather(0, r.ID()*10)
		if r.ID() == 0 {
			if len(vals) != 6 {
				t.Errorf("gathered %d values", len(vals))
				return
			}
			for i, v := range vals {
				if v.(int) != i*10 {
					t.Errorf("vals[%d] = %v", i, v)
				}
			}
		} else if vals != nil {
			t.Errorf("non-root rank %d received gather result", r.ID())
		}
	})
}

func TestReduce(t *testing.T) {
	w := NewWorld(5)
	w.Run(func(r *Rank) {
		got, isRoot := r.ReduceFloat64(2, float64(r.ID()), func(a, b float64) float64 { return a + b })
		if r.ID() == 2 {
			if !isRoot || got != 10 {
				t.Errorf("reduce = %v (root %v), want 10", got, isRoot)
			}
		} else if isRoot {
			t.Errorf("rank %d claims to be root", r.ID())
		}
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	w := NewWorld(8)
	var phase1 atomic.Int32
	fail := atomic.Bool{}
	w.Run(func(r *Rank) {
		phase1.Add(1)
		r.Barrier()
		if phase1.Load() != 8 {
			fail.Store(true)
		}
		r.Barrier()
	})
	if fail.Load() {
		t.Error("a rank passed the barrier before all ranks arrived")
	}
}

func TestRepeatedBarriers(t *testing.T) {
	w := NewWorld(4)
	var counter atomic.Int32
	fail := atomic.Bool{}
	w.Run(func(r *Rank) {
		for round := 1; round <= 10; round++ {
			counter.Add(1)
			r.Barrier()
			if counter.Load() != int32(4*round) {
				fail.Store(true)
			}
			r.Barrier()
		}
	})
	if fail.Load() {
		t.Error("barrier generations interleaved")
	}
}

func TestPipelinePattern(t *testing.T) {
	// Ring: each rank sends its id to the next; verifies point-to-point
	// channels are fully connected.
	const n = 7
	w := NewWorld(n)
	var received [n]int32
	w.Run(func(r *Rank) {
		next := (r.ID() + 1) % n
		prev := (r.ID() + n - 1) % n
		r.Send(next, r.ID())
		got := r.Recv(prev).(int)
		atomic.StoreInt32(&received[r.ID()], int32(got))
	})
	for i := 0; i < n; i++ {
		want := (i + n - 1) % n
		if received[i] != int32(want) {
			t.Errorf("rank %d received %d, want %d", i, received[i], want)
		}
	}
}

func TestInvalidRankPanics(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(r *Rank) {
		if r.ID() != 0 {
			r.Recv(0) // consume the valid send below
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("Send to invalid rank did not panic")
			}
			r.Send(1, "ok")
		}()
		r.Send(5, "boom")
	})
}
