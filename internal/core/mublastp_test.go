package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/dbase"
	"repro/internal/dbindex"
	"repro/internal/matrix"
	"repro/internal/neighbor"
	"repro/internal/search"
	"repro/internal/seqgen"
)

var (
	worldOnce sync.Once
	worldCfg  *search.Config
)

func cfgShared(t testing.TB) *search.Config {
	t.Helper()
	worldOnce.Do(func() {
		nbr := neighbor.Build(matrix.Blosum62, neighbor.DefaultThreshold)
		var err error
		worldCfg, err = search.NewConfig(matrix.Blosum62, nbr)
		if err != nil {
			panic(err)
		}
	})
	cfg := *worldCfg
	return &cfg
}

func world(t testing.TB, seed int64, nSeqs, nQueries, qLen int, blockResidues int64) (*search.Config, *dbindex.Index, [][]alphabet.Code) {
	t.Helper()
	cfg := cfgShared(t)
	g := seqgen.New(seqgen.UniprotProfile(), seed)
	db := dbase.New(g.Database(nSeqs))
	ix, err := dbindex.Build(db, cfg.Neighbors, blockResidues)
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([][]alphabet.Code, db.NumSeqs())
	for i := range db.Seqs {
		seqs[i] = db.Seqs[i].Data
	}
	return cfg, ix, g.Queries(seqs, nQueries, qLen)
}

// requireIdentical asserts that two result sets agree exactly: same HSPs,
// same coordinates, scores, tracebacks and E-values. This is the paper's
// Section V-E verification.
func requireIdentical(t *testing.T, label string, a, b []search.QueryResult) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: result counts %d vs %d", label, len(a), len(b))
	}
	for qi := range a {
		ra, rb := a[qi], b[qi]
		if len(ra.HSPs) != len(rb.HSPs) {
			t.Fatalf("%s query %d: %d vs %d HSPs", label, qi, len(ra.HSPs), len(rb.HSPs))
		}
		for j := range ra.HSPs {
			x, y := ra.HSPs[j], rb.HSPs[j]
			if x.Subject != y.Subject || x.Aln.Score != y.Aln.Score ||
				x.Aln.QStart != y.Aln.QStart || x.Aln.QEnd != y.Aln.QEnd ||
				x.Aln.SStart != y.Aln.SStart || x.Aln.SEnd != y.Aln.SEnd ||
				string(x.Aln.Ops) != string(y.Aln.Ops) {
				t.Fatalf("%s query %d HSP %d differs:\n  %+v\n  %+v", label, qi, j, x, y)
			}
			if math.Abs(x.EValue-y.EValue) > 1e-12*math.Max(x.EValue, 1e-300) {
				t.Fatalf("%s query %d HSP %d E-value %g vs %g", label, qi, j, x.EValue, y.EValue)
			}
		}
	}
}

func runAll(e interface {
	Search(int, []alphabet.Code) search.QueryResult
}, queries [][]alphabet.Code) []search.QueryResult {
	out := make([]search.QueryResult, len(queries))
	for i, q := range queries {
		out[i] = e.Search(i, q)
	}
	return out
}

// TestIdenticalAcrossEngines is the central verification: query-indexed
// NCBI, db-indexed NCBI (interleaved), and muBLASTP (decoupled, prefiltered,
// radix-sorted) must produce exactly the same alignments.
func TestIdenticalAcrossEngines(t *testing.T) {
	for _, blockResidues := range []int64{4096, 32768, 1 << 20} {
		cfg, ix, queries := world(t, 42, 150, 6, 128, blockResidues)
		ncbi := runAll(search.NewQueryIndexed(cfg, ix.DB), queries)
		ncbiDB := runAll(search.NewDBIndexed(cfg, ix), queries)
		mu := runAll(New(cfg, ix), queries)
		requireIdentical(t, "NCBI vs NCBI-db", ncbi, ncbiDB)
		requireIdentical(t, "NCBI vs muBLASTP", ncbi, mu)
	}
}

func TestIdenticalAcrossQueryLengths(t *testing.T) {
	for _, qLen := range []int{64, 256, 512} {
		cfg, ix, queries := world(t, 7, 120, 3, qLen, 16384)
		ncbi := runAll(search.NewQueryIndexed(cfg, ix.DB), queries)
		mu := runAll(New(cfg, ix), queries)
		requireIdentical(t, "len", ncbi, mu)
	}
}

func TestHitAndPairCountsMatchBaselines(t *testing.T) {
	cfg, ix, queries := world(t, 11, 100, 4, 128, 8192)
	de := search.NewDBIndexed(cfg, ix)
	mu := New(cfg, ix)
	for qi, q := range queries {
		sa := de.Search(qi, q).Stats
		sb := mu.Search(qi, q).Stats
		if sa.Hits != sb.Hits {
			t.Errorf("query %d: hits %d vs %d", qi, sa.Hits, sb.Hits)
		}
		if sa.Pairs != sb.Pairs {
			t.Errorf("query %d: pairs %d vs %d", qi, sa.Pairs, sb.Pairs)
		}
		if sa.Extensions != sb.Extensions {
			t.Errorf("query %d: extensions %d vs %d", qi, sa.Extensions, sb.Extensions)
		}
		if sa.Kept != sb.Kept {
			t.Errorf("query %d: kept %d vs %d", qi, sa.Kept, sb.Kept)
		}
	}
}

func TestPrefilterAblation(t *testing.T) {
	cfg, ix, queries := world(t, 13, 120, 4, 256, 16384)
	withPF := NewWithOptions(cfg, ix, Options{Prefilter: true, Sorter: SortLSD})
	noPF := NewWithOptions(cfg, ix, Options{Prefilter: false, Sorter: SortLSD})
	ra := runAll(withPF, queries)
	rb := runAll(noPF, queries)
	requireIdentical(t, "prefilter on/off", ra, rb)
	for qi := range ra {
		a, b := ra[qi].Stats, rb[qi].Stats
		if a.Pairs != b.Pairs {
			t.Errorf("query %d: pair counts differ %d vs %d", qi, a.Pairs, b.Pairs)
		}
		// The whole point of the prefilter: far fewer records sorted.
		if a.SortedItems >= b.SortedItems {
			t.Errorf("query %d: prefilter sorted %d >= unfiltered %d", qi, a.SortedItems, b.SortedItems)
		}
		// Paper Fig 6 reports <5% of hits surviving on real databases; our
		// synthetic databases plant denser homologies (correlated hits pair
		// more often), so the measured fraction is higher but must remain a
		// small minority of all hits for the optimization to make sense.
		frac := float64(a.SortedItems) / float64(b.SortedItems)
		if frac > 0.35 {
			t.Errorf("query %d: %.1f%% of hits survive prefilter, expected well under 35%%", qi, 100*frac)
		}
	}
}

func TestAllSortersIdentical(t *testing.T) {
	cfg, ix, queries := world(t, 17, 100, 3, 128, 8192)
	ref := runAll(NewWithOptions(cfg, ix, Options{Prefilter: true, Sorter: SortLSD}), queries)
	for _, s := range []Sorter{SortMSD, SortMerge, SortTwoLevel} {
		got := runAll(NewWithOptions(cfg, ix, Options{Prefilter: true, Sorter: s}), queries)
		requireIdentical(t, "sorter", ref, got)
	}
}

func TestSearchBatchMatchesSequential(t *testing.T) {
	cfg, ix, queries := world(t, 19, 120, 8, 128, 8192)
	e := New(cfg, ix)
	seq := runAll(e, queries)
	for _, threads := range []int{1, 2, 8} {
		batch := e.SearchBatch(queries, threads)
		requireIdentical(t, "batch", seq, batch)
	}
}

func TestMixedLengthQueries(t *testing.T) {
	cfg, ix, _ := world(t, 23, 100, 0, 0, 8192)
	g := seqgen.New(seqgen.UniprotProfile(), 77)
	seqs := make([][]alphabet.Code, ix.DB.NumSeqs())
	for i := range ix.DB.Seqs {
		seqs[i] = ix.DB.Seqs[i].Data
	}
	queries := g.Queries(seqs, 5, 0) // mixed lengths
	ncbi := runAll(search.NewQueryIndexed(cfg, ix.DB), queries)
	mu := runAll(New(cfg, ix), queries)
	requireIdentical(t, "mixed", ncbi, mu)
}

func TestEnvNRLikeDatabase(t *testing.T) {
	cfg := cfgShared(t)
	g := seqgen.New(seqgen.EnvNRProfile(), 31)
	db := dbase.New(g.Database(200))
	ix, err := dbindex.Build(db, cfg.Neighbors, 8192)
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([][]alphabet.Code, db.NumSeqs())
	for i := range db.Seqs {
		seqs[i] = db.Seqs[i].Data
	}
	queries := g.Queries(seqs, 4, 128)
	ncbi := runAll(search.NewQueryIndexed(cfg, db), queries)
	mu := runAll(New(cfg, ix), queries)
	requireIdentical(t, "env_nr-like", ncbi, mu)
}

func TestShortQueryNoOutput(t *testing.T) {
	cfg, ix, _ := world(t, 37, 50, 0, 0, 1<<20)
	e := New(cfg, ix)
	res := e.Search(0, alphabet.MustEncode("AR"))
	if len(res.HSPs) != 0 || res.Stats.Hits != 0 {
		t.Errorf("short query produced output: %+v", res)
	}
	batch := e.SearchBatch([][]alphabet.Code{nil, alphabet.MustEncode("A")}, 2)
	for _, r := range batch {
		if len(r.HSPs) != 0 {
			t.Errorf("short batch query produced output")
		}
	}
}

func TestResultsValidateAgainstSequences(t *testing.T) {
	cfg, ix, queries := world(t, 41, 100, 3, 256, 16384)
	e := New(cfg, ix)
	for qi, q := range queries {
		res := e.Search(qi, q)
		if len(res.HSPs) == 0 {
			t.Errorf("query %d found nothing", qi)
		}
		for i, h := range res.HSPs {
			s := ix.DB.Seqs[h.Subject].Data
			if err := h.Aln.Validate(cfg.Matrix, q, s, cfg.Gap); err != nil {
				t.Fatalf("query %d HSP %d: %v", qi, i, err)
			}
		}
	}
}

func TestOneHitModeEquivalentAcrossEngines(t *testing.T) {
	cfg, ix, queries := world(t, 47, 80, 3, 128, 8192)
	oneHit := *cfg
	oneHit.TwoHit.OneHit = true
	// NCBI pairs one-hit with a higher neighbor threshold; we keep T=11 to
	// reuse the shared table — equivalence across engines is what matters.
	ncbi := runAll(search.NewQueryIndexed(&oneHit, ix.DB), queries)
	ncbiDB := runAll(search.NewDBIndexed(&oneHit, ix), queries)
	mu := runAll(New(&oneHit, ix), queries)
	requireIdentical(t, "one-hit NCBI vs NCBI-db", ncbi, ncbiDB)
	requireIdentical(t, "one-hit NCBI vs muBLASTP", ncbi, mu)

	// One-hit mode extends at least as much as two-hit and never finds
	// fewer subjects.
	twoHit := runAll(New(cfg, ix), queries)
	for qi := range queries {
		if mu[qi].Stats.Extensions < twoHit[qi].Stats.Extensions {
			t.Errorf("query %d: one-hit extensions %d < two-hit %d",
				qi, mu[qi].Stats.Extensions, twoHit[qi].Stats.Extensions)
		}
		if len(mu[qi].HSPs) < len(twoHit[qi].HSPs) {
			t.Errorf("query %d: one-hit found %d HSPs, two-hit %d",
				qi, len(mu[qi].HSPs), len(twoHit[qi].HSPs))
		}
	}
}
