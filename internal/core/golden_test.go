package core

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden result files")

// TestGoldenResults pins the engine's complete output on a fixed workload.
// Any change to the heuristics — word hits, two-hit pairing, extension
// semantics, gapped scoring, ranking — shows up as a golden diff, which
// must then be an intentional, reviewed change (regenerate with
// `go test ./internal/core -run Golden -update-golden`).
func TestGoldenResults(t *testing.T) {
	cfg, ix, queries := world(t, 1001, 80, 4, 160, 8192)
	engine := New(cfg, ix)
	var b strings.Builder
	for qi, q := range queries {
		res := engine.Search(qi, q)
		fmt.Fprintf(&b, "query %d len %d hits %d pairs %d exts %d kept %d gapped %d\n",
			qi, len(q), res.Stats.Hits, res.Stats.Pairs, res.Stats.Extensions,
			res.Stats.Kept, res.Stats.GappedExts)
		for _, h := range res.HSPs {
			fmt.Fprintf(&b, "  %s score %d q[%d:%d] s[%d:%d] e %.3g ops %s\n",
				h.SubjectName, h.Aln.Score, h.Aln.QStart, h.Aln.QEnd,
				h.Aln.SStart, h.Aln.SEnd, h.EValue, h.Aln.Ops)
		}
	}
	got := b.String()

	path := filepath.Join("testdata", "golden_results.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file updated (%d bytes)", len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update-golden): %v", err)
	}
	if got != string(want) {
		gotLines := strings.Split(got, "\n")
		wantLines := strings.Split(string(want), "\n")
		for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
			g, w := "", ""
			if i < len(gotLines) {
				g = gotLines[i]
			}
			if i < len(wantLines) {
				w = wantLines[i]
			}
			if g != w {
				t.Fatalf("golden mismatch at line %d:\n  got:  %q\n  want: %q", i+1, g, w)
			}
		}
		t.Fatal("golden mismatch (length)")
	}
}
