package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/search"
)

// TestChaosBatch runs randomized fault schedules against both schedulers and
// asserts the two invariants the failure model promises no matter what faults
// fire: every query flagged Completed is byte-identical to a fault-free run,
// and the batch call leaks no goroutines. `make chaos` runs this (and the
// cluster chaos test) under -race; CHAOS_SEED pins a single schedule for
// replay, CHAOS_ROUNDS widens the sweep.
func TestChaosBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep skipped in -short mode")
	}
	rounds := 6
	if s := os.Getenv("CHAOS_ROUNDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad CHAOS_ROUNDS %q: %v", s, err)
		}
		rounds = n
	}
	seeds := make([]int64, rounds)
	for i := range seeds {
		seeds[i] = int64(1000 + 17*i)
	}
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", s, err)
		}
		seeds = []int64{n}
	}

	cfg, ix, queries := world(t, 211, 180, 6, 200, 4096)
	baselines := map[Scheduler][]search.QueryResult{}
	for _, sched := range []Scheduler{SchedBlockMajor, SchedBarrier} {
		e := NewWithOptions(cfg, ix, Options{Prefilter: true, Sorter: SortLSD, Scheduler: sched, Metrics: obs.Discard})
		baselines[sched] = e.SearchBatch(queries, 3)
	}

	base := runtime.NumGoroutine()
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			defer func() {
				if t.Failed() {
					t.Logf("replay with: CHAOS_SEED=%d go test -race -run TestChaosBatch ./internal/core", seed)
				}
			}()
			rng := rand.New(rand.NewSource(seed))
			spec, deadline := chaosSchedule(rng)
			sched := SchedBlockMajor
			if rng.Intn(2) == 1 {
				sched = SchedBarrier
			}
			t.Logf("schedule %q deadline=%v scheduler=%s", spec, deadline, sched)

			if err := faultinject.Enable(spec, uint64(seed)); err != nil {
				t.Fatalf("enable %q: %v", spec, err)
			}
			defer faultinject.Disable()

			ctx := context.Background()
			cancel := context.CancelFunc(func() {})
			if deadline > 0 {
				ctx, cancel = context.WithTimeout(ctx, deadline)
			}
			defer cancel()

			e := NewWithOptions(cfg, ix, Options{Prefilter: true, Sorter: SortLSD, Scheduler: sched, Metrics: obs.Discard})
			br := e.SearchBatchCtx(ctx, queries, 3)
			faultinject.Disable()

			if br.Err != nil && !errors.Is(br.Err, search.ErrDeadline) && !errors.Is(br.Err, context.Canceled) {
				t.Fatalf("unexpected batch error class: %v", br.Err)
			}
			for qi := range queries {
				// Completed and QueryErrs are mutually exclusive, jointly
				// exhaustive: a query either finished or carries a reason.
				if br.Completed[qi] != (br.QueryErrs[qi] != nil) {
					continue
				}
				t.Errorf("query %d: Completed=%v but err=%v", qi, br.Completed[qi], br.QueryErrs[qi])
			}
			requireCompletedIdentical(t, fmt.Sprintf("chaos seed %d", seed), &br, baselines[sched])
		})
	}
	waitForGoroutines(t, base)
}

// chaosSchedule draws a random fault schedule: one to three clauses over the
// core sites, mixing panic, delay, and error kinds, with an optional batch
// deadline tight enough to land mid-run when delays are in play.
func chaosSchedule(rng *rand.Rand) (spec string, deadline time.Duration) {
	sites := []string{"sched.task", "core.hitdetect", "core.extend", "core.finalize"}
	kinds := []string{"panic", "delay:2ms", "error"}
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		site := sites[rng.Intn(len(sites))]
		kind := kinds[rng.Intn(len(kinds))]
		clause := site + "=" + kind
		switch rng.Intn(3) {
		case 0:
			clause += fmt.Sprintf("#%d", 1+rng.Intn(20))
		case 1:
			clause += fmt.Sprintf("@0.%02d", 1+rng.Intn(30))
		default: // every hit
		}
		if spec != "" {
			spec += ","
		}
		spec += clause
	}
	if rng.Intn(2) == 1 {
		deadline = time.Duration(10+rng.Intn(60)) * time.Millisecond
	}
	return spec, deadline
}
