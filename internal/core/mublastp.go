// Package core implements muBLASTP, the paper's contribution: a database-
// indexed BLASTP whose stages are decoupled and whose hits are reordered so
// that the irregular memory accesses of interleaved db-indexed search
// disappear (Section IV). Per index block and query:
//
//  1. hit detection scans the query once against the block's lookup table,
//     running the pre-filter (per-diagonal last-hit arrays, Algorithm 2) so
//     that only two-hit pairs — typically <5% of hits (Fig 6) — are buffered;
//  2. the buffered pairs are reordered by a stable LSD radix sort on the
//     packed (sequence, diagonal) key (Section IV-B);
//  3. ungapped extension consumes the sorted pairs, walking subject
//     sequences in order and skipping pairs covered by a previous extension
//     (Algorithm 1 lines 15–25);
//  4. the gapped stage and final E-value ranking are shared with the
//     baseline engines in internal/search.
//
// The two-hit semantics are ungapped.Canon's, shared with the baselines, so
// all engines return identical results (verified in tests — the paper's
// Section V-E property).
package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/alphabet"
	"repro/internal/dbindex"
	"repro/internal/gapped"
	"repro/internal/hit"
	"repro/internal/hitsort"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/search"
	"repro/internal/ungapped"
)

// Sorter selects the hit-reordering algorithm (Section IV-B ablation).
type Sorter int

const (
	// SortLSD is the paper's choice: stable LSD radix sort.
	SortLSD Sorter = iota
	// SortMSD uses MSD radix sort.
	SortMSD
	// SortMerge uses stable merge sort.
	SortMerge
	// SortTwoLevel uses the earlier prototype's two-level binning (§VI).
	SortTwoLevel
)

// Scheduler selects how SearchBatch distributes (block, query) work across
// threads.
type Scheduler int

const (
	// SchedBlockMajor is the default: one dynamic-schedule pass over the
	// flattened (block × query) task grid, ordered block-major so
	// consecutive tasks share a hot index block, with no synchronization
	// between blocks. Results land in per-task cells merged at finalize, so
	// the output is identical to sequential search.
	SchedBlockMajor Scheduler = iota
	// SchedBarrier is Algorithm 3 as printed: blocks processed one at a
	// time with a full worker barrier at every block boundary. Kept for the
	// scheduling ablation; a straggler query idles every other worker once
	// per block.
	SchedBarrier
)

func (s Scheduler) String() string {
	switch s {
	case SchedBlockMajor:
		return "block-major"
	case SchedBarrier:
		return "barrier"
	}
	return fmt.Sprintf("Scheduler(%d)", int(s))
}

// Options toggles the paper's individual optimizations, for ablation.
type Options struct {
	// Prefilter enables the hit pre-filter (Section IV-C). Disabling it
	// reproduces Algorithm 1's post-filtering variant: every hit is
	// buffered and sorted, and pairs are selected after reordering.
	Prefilter bool
	// Sorter selects the reordering algorithm.
	Sorter Sorter
	// Scheduler selects the batch scheduling strategy (zero value:
	// barrier-free block-major grid).
	Scheduler Scheduler
	// Metrics receives the engine's process-wide observability stamps
	// (per-stage time, event counters, task/query latency histograms).
	// nil selects obs.Pipe, the default registry's pipeline bundle served
	// by the -debug-addr endpoint; obs.Discard routes the identical
	// stamping code to an unexported registry ("observability off").
	Metrics *obs.PipelineMetrics
}

// DefaultOptions enables every muBLASTP optimization as evaluated.
func DefaultOptions() Options {
	return Options{Prefilter: true, Sorter: SortLSD, Scheduler: SchedBlockMajor}
}

// Engine is the muBLASTP search engine.
type Engine struct {
	Cfg *search.Config
	Ix  *dbindex.Index
	Opt Options

	// met is the resolved metric bundle (never nil): handles are bound at
	// construction so hot-path stamping is pure atomic adds.
	met *obs.PipelineMetrics

	subjOff []int64
	ixBase  []int64
	canon   ungapped.Canon
	// scratches pools per-worker state across Search/SearchBatch calls, so
	// steady-state searches re-allocate neither the last-hit arrays nor the
	// hit/pair buffers nor the gapped aligner's DP rows.
	scratches sync.Pool
}

// New creates a muBLASTP engine with default options.
func New(cfg *search.Config, ix *dbindex.Index) *Engine {
	return NewWithOptions(cfg, ix, DefaultOptions())
}

// NewWithOptions creates a muBLASTP engine with explicit options.
func NewWithOptions(cfg *search.Config, ix *dbindex.Index, opt Options) *Engine {
	met := opt.Metrics
	if met == nil {
		met = obs.Pipe
	}
	e := &Engine{Cfg: cfg, Ix: ix, Opt: opt, met: met, subjOff: make([]int64, ix.DB.NumSeqs()+1)}
	var off int64
	for i := range ix.DB.Seqs {
		e.subjOff[i] = off
		off += int64(len(ix.DB.Seqs[i].Data))
	}
	e.subjOff[ix.DB.NumSeqs()] = off
	e.ixBase = make([]int64, len(ix.Blocks))
	var base int64
	for i, b := range ix.Blocks {
		e.ixBase[i] = base
		base += b.SizeBytes()
	}
	e.canon = ungapped.Canon{P: cfg.TwoHit, Matrix: cfg.Matrix}
	e.scratches.New = func() any { return e.newScratch() }
	return e
}

// scratch is the per-worker reusable state.
type scratch struct {
	lastPos   search.StampedLastPos
	lastPos16 search.StampedLastPos16
	diagOff   []int32
	pairs     []hit.Pair
	pairBuf   []hit.Pair
	hits      []hit.Hit
	hitBuf    []hit.Hit
	exts      []ungapped.Ext
	binCounts []int
	prof      matrix.Profile
	aligner   *gapped.Aligner
}

func (e *Engine) newScratch() *scratch {
	return &scratch{aligner: gapped.NewAligner(e.Cfg.Matrix, e.Cfg.Gap)}
}

// getScratch takes a scratch from the pool (allocating on first use).
func (e *Engine) getScratch() *scratch { return e.scratches.Get().(*scratch) }

// putScratch returns a scratch for reuse by later searches.
func (e *Engine) putScratch(sc *scratch) { e.scratches.Put(sc) }

// stampDelta folds the counter movement between two Stats snapshots of the
// same query into the engine's metric bundle. Pure atomic adds: no locks,
// no allocations, safe from any worker.
func (e *Engine) stampDelta(pre, post *search.Stats) {
	m := e.met
	m.Hits.Add(post.Hits - pre.Hits)
	m.Pairs.Add(post.Pairs - pre.Pairs)
	m.SortedItems.Add(post.SortedItems - pre.SortedItems)
	m.Extensions.Add(post.Extensions - pre.Extensions)
	m.Kept.Add(post.Kept - pre.Kept)
	m.GappedExts.Add(post.GappedExts - pre.GappedExts)
	m.Tracebacks.Add(post.Tracebacks - pre.Tracebacks)
	for i := range post.StageNanos {
		m.StageNanos[i].Add(post.StageNanos[i] - pre.StageNanos[i])
	}
}

// stampTask records one completed scheduler task: the counter deltas it
// produced plus the task count. Task-grain latency is observed separately
// by the parallel layer (ForTasksObserved feeding met.TaskNanos).
func (e *Engine) stampTask(pre, post *search.Stats) {
	e.stampDelta(pre, post)
	e.met.Tasks.Add(1)
}

// stampQueryDone records a finalized query: the finalize-stage deltas (pre
// is the query's Stats going into Finalize), the query count, and the
// query's total pipeline time.
func (e *Engine) stampQueryDone(pre *search.Stats, post *search.Stats) {
	e.stampDelta(pre, post)
	e.met.Queries.Add(1)
	e.met.QueryNanos.Observe(post.TotalStageNanos())
}

// stampSched records one batch's scheduler summary.
func (e *Engine) stampSched(ss search.SchedStats) {
	m := e.met
	m.Batches.Add(1)
	m.SchedBusyNanos.Add(ss.BusyNanos)
	m.SchedStallNanos.Add(ss.StallNanos)
	m.SchedUtilizationPermille.Set(1000 * ss.Utilization())
}

// Search runs one query through all index blocks sequentially.
func (e *Engine) Search(queryIdx int, q []alphabet.Code) search.QueryResult {
	sc := e.getScratch()
	defer e.putScratch(sc)
	var st search.Stats
	var subjects []search.SubjectAlignments
	if len(q) >= alphabet.W {
		for bi := range e.Ix.Blocks {
			subs := e.searchBlock(sc, q, bi, &st)
			subjects = append(subjects, subs...)
		}
	}
	res := search.Finalize(e.Cfg, sc.aligner, queryIdx, q, e.Ix.DB, subjects, st)
	var zero search.Stats
	e.stampQueryDone(&zero, &res.Stats)
	return res
}

// SearchBatch runs a batch of queries across threads using the configured
// scheduler (barrier-free block-major grid by default; see Scheduler).
func (e *Engine) SearchBatch(queries [][]alphabet.Code, threads int) []search.QueryResult {
	results, _ := e.SearchBatchStats(queries, threads)
	return results
}

// SearchBatchStats is SearchBatch plus the scheduler's utilization counters
// for the hit-search phase. Both are the no-context form of SearchBatchCtx:
// they never cancel, and a panicking task poisons only its own query (the
// query comes back with zero HSPs; use SearchBatchCtx to observe the typed
// per-query error).
func (e *Engine) SearchBatchStats(queries [][]alphabet.Code, threads int) ([]search.QueryResult, search.SchedStats) {
	br := e.SearchBatchCtx(context.Background(), queries, threads)
	return br.Results, br.Sched
}

// schedStatsFrom folds one scheduler run's counters into the search-level
// summary.
func schedStatsFrom(s Scheduler, ts parallel.TaskStats) search.SchedStats {
	return search.SchedStats{
		Scheduler:      s.String(),
		Workers:        ts.Workers,
		Tasks:          int64(ts.Tasks),
		MinWorkerTasks: ts.MinWorkerTasks(),
		MaxWorkerTasks: ts.MaxWorkerTasks(),
		BusyNanos:      ts.TotalBusyNanos(),
		StallNanos:     ts.StallNanos(),
		ElapsedNanos:   ts.ElapsedNanos,
	}
}

// searchBlock runs the decoupled pipeline for one (block, query) pair and
// returns the per-subject gapped alignments, ascending by subject.
func (e *Engine) searchBlock(sc *scratch, q []alphabet.Code, bi int, st *search.Stats) []search.SubjectAlignments {
	b := e.Ix.Blocks[bi]
	numSeqs := b.Block.NumSeqs()
	diagBias := len(q) - alphabet.W
	maxDiags := len(q) + b.Block.MaxLen - 2*alphabet.W + 1
	coder, err := hit.NewKeyCoder(numSeqs, maxDiags)
	if err != nil {
		// Key overflow means the block is far too large for the query; the
		// index builder prevents this for any sane configuration.
		panic(fmt.Sprintf("core: block %d: %v (rebuild the index with smaller blocks)", bi, err))
	}

	// The query profile feeds both the ungapped and gapped kernels; its
	// (re)build cost — a row-copy per query position into the scratch's
	// flat buffer — is stamped into the ungapped stage as the first
	// consumer. Building per task instead of per query keeps the scratch
	// contract simple; the cost is a few microseconds against a
	// millisecond-scale task.
	profStart := time.Now()
	sc.prof.Fill(e.Cfg.Matrix, q)
	st.StageNanos[obs.StageUngapped] += int64(time.Since(profStart))

	// Stage boundaries are stamped into st.StageNanos as the task runs: two
	// clock reads per stage, no allocations. The ungapped stage is measured
	// as the extend call minus the gapped time GappedStage stamps from
	// inside it (extension flushes subjects into the gapped stage inline).
	if e.Opt.Prefilter {
		fiHitDetect.Fire()
		e.detectPrefiltered(sc, q, bi, coder, st)
		st.SortedItems += int64(len(sc.pairs))
		stageStart := time.Now()
		e.sortPairs(sc, coder)
		st.StageNanos[obs.StageSort] += int64(time.Since(stageStart))
		gappedBefore := st.StageNanos[obs.StageGapped]
		stageStart = time.Now()
		fiExtend.Fire()
		subs := e.extendPairs(sc, q, bi, coder, diagBias, st)
		st.StageNanos[obs.StageUngapped] += int64(time.Since(stageStart)) - (st.StageNanos[obs.StageGapped] - gappedBefore)
		return subs
	}
	fiHitDetect.Fire()
	e.detectAll(sc, q, bi, coder, st)
	st.SortedItems += int64(len(sc.hits))
	stageStart := time.Now()
	e.sortHits(sc, coder)
	st.StageNanos[obs.StageSort] += int64(time.Since(stageStart))
	gappedBefore := st.StageNanos[obs.StageGapped]
	stageStart = time.Now()
	fiExtend.Fire()
	subs := e.extendPostFiltered(sc, q, bi, coder, diagBias, st)
	st.StageNanos[obs.StageUngapped] += int64(time.Since(stageStart)) - (st.StageNanos[obs.StageGapped] - gappedBefore)
	return subs
}

// detectPrefiltered is hit detection with the Algorithm 2 pre-filter: the
// per-(sequence, diagonal) last-hit array is consulted during detection and
// only two-hit pairs enter the buffer.
func (e *Engine) detectPrefiltered(sc *scratch, q []alphabet.Code, bi int, coder hit.KeyCoder, st *search.Stats) {
	b := e.Ix.Blocks[bi]
	numSeqs := b.Block.NumSeqs()
	diagBias := len(q) - alphabet.W
	window := int32(e.Cfg.TwoHit.Window)
	trace := e.Cfg.Trace
	if len(q)-alphabet.W > search.MaxQOff {
		// The packed last-hit word stores query offsets in 20 bits; no real
		// protein comes within an order of magnitude of this.
		panic(fmt.Sprintf("core: query length %d exceeds the %d-offset last-hit limit", len(q), search.MaxQOff))
	}

	// The prefilter's separable cost is its state setup: sizing the
	// per-sequence diagonal offsets and resetting the flat last-hit array.
	// The per-hit Check calls are inlined into the detection scan below, so
	// their time lands in StageHitDetect (DESIGN.md, observability layer).
	stageStart := time.Now()
	if cap(sc.diagOff) < numSeqs+1 {
		sc.diagOff = make([]int32, numSeqs+1)
	}
	sc.diagOff = sc.diagOff[:numSeqs+1]
	total := int32(0)
	for l := 0; l < numSeqs; l++ {
		sc.diagOff[l] = total
		sl := len(e.Ix.DB.Seqs[b.Block.Start+l].Data)
		if sl >= alphabet.W {
			total += int32(len(q) + sl - 2*alphabet.W + 1)
		}
	}
	sc.diagOff[numSeqs] = total
	// The fast scan needs no trace hooks, two-hit mode, a window the fused
	// pair compare can treat as unsigned, and query offsets that fit the
	// compact last-hit word. Each path resets only its own slot array: the
	// compact one halves the block's randomly-accessed footprint, which is
	// exactly what the scan is bound on.
	fast := trace == nil && !e.Cfg.TwoHit.OneHit && window >= 1 &&
		len(q)-alphabet.W <= search.MaxQOff16
	if fast {
		sc.lastPos16.Reset(int(total))
	} else {
		sc.lastPos.Reset(int(total))
	}
	sc.pairs = sc.pairs[:0]
	st.StageNanos[obs.StagePrefilter] += int64(time.Since(stageStart))

	stageStart = time.Now()
	if fast {
		e.detectScanFast(sc, q, b, coder, diagBias, window, st)
		st.StageNanos[obs.StageHitDetect] += int64(time.Since(stageStart))
		return
	}
	for qOff := 0; qOff+alphabet.W <= len(q); qOff++ {
		w := alphabet.WordAt(q, qOff)
		for _, v := range e.Cfg.Neighbors.Neighbors(w) {
			ps := b.Positions(v)
			if len(ps) == 0 {
				continue
			}
			base := e.ixBase[bi] + int64(b.Base(v))*4
			for pi, packed := range ps {
				st.Hits++
				local, sOff := b.Decode(packed)
				diag := sOff - qOff + diagBias
				slot := int(sc.diagOff[local]) + diag
				if trace != nil {
					trace(search.SpaceIndex, base+int64(pi)*4)
					// Trace models the paper's int32 lastHitArr, as in the
					// db-indexed baseline; the packed epoch word is an
					// implementation detail the simulator doesn't see.
					trace(search.SpaceLastHit, int64(slot)*4)
				}
				var dist int32
				var paired bool
				if e.Cfg.TwoHit.OneHit {
					paired = true
				} else {
					dist, paired = sc.lastPos.Check(slot, int32(qOff), window)
				}
				if paired {
					st.Pairs++
					if trace != nil {
						trace(search.SpaceHitBuf, int64(len(sc.pairs))*12)
					}
					sc.pairs = append(sc.pairs, hit.Pair{
						Key:  coder.Encode(local, diag),
						QOff: int32(qOff),
						Dist: dist,
					})
				}
			}
		}
	}
	st.StageNanos[obs.StageHitDetect] += int64(time.Since(stageStart))
}

// detectScanFast is the untraced two-hit detection kernel: the same scan as
// detectPrefiltered's general loop with everything per-hit that is not
// load-compute-store hoisted out — no trace callbacks, no one-hit branch,
// position decode inlined off hoisted field widths, and hit counting moved
// to one add per position list. The per-hit random access is the compact
// packed last-hit word (see search.StampedLastPos16), one cache line per
// hit; detectPrefiltered routes queries too long for the compact word
// through the general loop below instead.
func (e *Engine) detectScanFast(sc *scratch, q []alphabet.Code, b *dbindex.BlockIndex, coder hit.KeyCoder, diagBias int, window int32, st *search.Stats) {
	nbrs := e.Cfg.Neighbors
	offBits := b.OffBits
	offMask := uint32(1)<<offBits - 1
	diagOff := sc.diagOff
	// Pairs are written compaction-style: every hit stores its would-be pair
	// record at buf[np] and advances np by CheckCount's 0/1 verdict, so the
	// loop body has no data-dependent branch and the out-of-order window
	// keeps several of the random last-hit misses in flight instead of
	// stalling on a mispredicted "if paired" (~a third of hits pair, with no
	// pattern a predictor can learn). Records of unpaired hits are dead
	// stores that the next hit overwrites.
	buf := sc.pairs[:cap(sc.pairs)]
	np := len(sc.pairs)
	for qOff := 0; qOff+alphabet.W <= len(q); qOff++ {
		w := alphabet.WordAt(q, qOff)
		qOff32 := int32(qOff)
		for _, v := range nbrs.Neighbors(w) {
			ps := b.Positions(v)
			st.Hits += int64(len(ps))
			if np+len(ps) > len(buf) {
				grown := make([]hit.Pair, (np+len(ps))*2)
				copy(grown, buf[:np])
				buf = grown
			}
			for _, packed := range ps {
				local := int(packed >> offBits)
				diag := int(packed&offMask) - qOff + diagBias
				slot := int(diagOff[local]) + diag
				dist, inc := sc.lastPos16.CheckCount(slot, qOff32, window)
				buf[np] = hit.Pair{
					Key:  coder.Encode(local, diag),
					QOff: qOff32,
					Dist: dist,
				}
				np += inc
			}
		}
	}
	sc.pairs = buf[:np]
	st.Pairs += int64(np)
}

// detectAll is hit detection without the pre-filter: every hit is buffered
// (Algorithm 1's input to the sort).
func (e *Engine) detectAll(sc *scratch, q []alphabet.Code, bi int, coder hit.KeyCoder, st *search.Stats) {
	b := e.Ix.Blocks[bi]
	diagBias := len(q) - alphabet.W
	trace := e.Cfg.Trace
	stageStart := time.Now()
	sc.hits = sc.hits[:0]
	for qOff := 0; qOff+alphabet.W <= len(q); qOff++ {
		w := alphabet.WordAt(q, qOff)
		for _, v := range e.Cfg.Neighbors.Neighbors(w) {
			ps := b.Positions(v)
			if len(ps) == 0 {
				continue
			}
			base := e.ixBase[bi] + int64(b.Base(v))*4
			for pi, packed := range ps {
				st.Hits++
				local, sOff := b.Decode(packed)
				diag := sOff - qOff + diagBias
				if trace != nil {
					trace(search.SpaceIndex, base+int64(pi)*4)
					trace(search.SpaceHitBuf, int64(len(sc.hits))*8)
				}
				sc.hits = append(sc.hits, hit.Hit{Key: coder.Encode(local, diag), QOff: int32(qOff)})
			}
		}
	}
	st.StageNanos[obs.StageHitDetect] += int64(time.Since(stageStart))
}

func (e *Engine) sortPairs(sc *scratch, coder hit.KeyCoder) {
	e.traceSort(len(sc.pairs), 12, (coder.KeyBits()+7)/8)
	if cap(sc.pairBuf) < len(sc.pairs) {
		sc.pairBuf = make([]hit.Pair, len(sc.pairs))
	}
	switch e.Opt.Sorter {
	case SortLSD:
		hitsort.LSDPairs(sc.pairs, coder.KeyBits(), sc.pairBuf)
	case SortMSD:
		hitsort.MSD(sc.pairs, coder.KeyBits(), sc.pairBuf)
	case SortMerge:
		hitsort.Merge(sc.pairs, sc.pairBuf)
	case SortTwoLevel:
		sc.binCounts = hitsort.TwoLevelBinWith(sc.pairs, coder.DiagBits, coder.NumSeqs, coder.NumDiags, sc.pairBuf, sc.binCounts)
	}
}

func (e *Engine) sortHits(sc *scratch, coder hit.KeyCoder) {
	e.traceSort(len(sc.hits), 8, (coder.KeyBits()+7)/8)
	if cap(sc.hitBuf) < len(sc.hits) {
		sc.hitBuf = make([]hit.Hit, len(sc.hits))
	}
	switch e.Opt.Sorter {
	case SortLSD:
		hitsort.LSDHits(sc.hits, coder.KeyBits(), sc.hitBuf)
	case SortMSD:
		hitsort.MSD(sc.hits, coder.KeyBits(), sc.hitBuf)
	case SortMerge:
		hitsort.Merge(sc.hits, sc.hitBuf)
	case SortTwoLevel:
		sc.binCounts = hitsort.TwoLevelBinWith(sc.hits, coder.DiagBits, coder.NumSeqs, coder.NumDiags, sc.hitBuf, sc.binCounts)
	}
}

// traceSort approximates the sort's memory traffic for the cache simulator:
// each radix pass reads the buffer sequentially and scatters to 256
// advancing output streams, which behaves like another sequential pass.
func (e *Engine) traceSort(n, recordSize, passes int) {
	trace := e.Cfg.Trace
	if trace == nil || n == 0 {
		return
	}
	for p := 0; p < passes; p++ {
		for i := 0; i < n; i++ {
			trace(search.SpaceHitBuf, int64(i)*int64(recordSize))
		}
	}
}

// extendPairs consumes sorted pairs: per key group the extension-stage
// two-hit state is a pair of scalars (Algorithm 1's reachedKey/extReached),
// and subjects arrive in ascending order so each subject sequence is walked
// once (the locality the reordering buys).
func (e *Engine) extendPairs(sc *scratch, q []alphabet.Code, bi int, coder hit.KeyCoder, diagBias int, st *search.Stats) []search.SubjectAlignments {
	b := e.Ix.Blocks[bi]
	// e.canon is shared across workers; the per-query profile must ride on a
	// local copy.
	canonv := e.canon
	canonv.Prof = &sc.prof
	canon := &canonv
	trace := e.Cfg.Trace

	var subjects []search.SubjectAlignments
	curKey := uint32(0)
	haveKey := false
	curLocal := -1
	var d ungapped.DiagState
	sc.exts = sc.exts[:0]

	flushSubject := func() {
		if curLocal < 0 || len(sc.exts) == 0 {
			return
		}
		gsi := b.Block.Start + curLocal
		s := e.Ix.DB.Seqs[gsi].Data
		alns := search.GappedStage(e.Cfg, sc.aligner, &sc.prof, q, s, sc.exts, st)
		if len(alns) > 0 {
			subjects = append(subjects, search.SubjectAlignments{Subject: gsi, Alns: alns})
		}
		sc.exts = sc.exts[:0]
	}

	// The per-pair work is Canon.ExtendPair unrolled into the loop: the
	// cover test, the Trigger decision, and the ExtReached advance are the
	// exact Algorithm 1 lines 15-25 (the cross-engine identity tests pin
	// this against Canon), with the kernel dispatch and key decode hoisted
	// so the 10M-pairs-per-batch loop runs call-free except the extension
	// itself.
	useProf := canon.Prof != nil && canon.P.XDrop >= 1 && canon.Prof.QLen < 0xFFFF
	xDrop := canon.P.XDrop
	trigger := canon.P.Trigger
	var extensions, kept int64
	var diag, gsi int
	var s []alphabet.Code
	for i := range sc.pairs {
		p := &sc.pairs[i]
		if !haveKey || p.Key != curKey {
			curKey = p.Key
			haveKey = true
			d.Reset()
			local, dg := coder.Decode(p.Key)
			diag = dg
			if local != curLocal {
				flushSubject()
				curLocal = local
			}
			gsi = b.Block.Start + local
			s = e.Ix.DB.Seqs[gsi].Data
		}
		if d.ExtReached > p.QOff {
			continue // covered by a previous extension
		}
		qOff := int(p.QOff)
		sOff := diag + qOff - diagBias
		var ext ungapped.Ext
		if useProf {
			ext = ungapped.ExtendProfile(canon.Prof, s, qOff, sOff, xDrop)
		} else {
			ext = ungapped.Extend(canon.Matrix, q, s, qOff, sOff, xDrop)
		}
		extensions++
		if trace != nil {
			for off := e.subjOff[gsi] + int64(ext.SStart); off < e.subjOff[gsi]+int64(ext.SEnd); off++ {
				trace(search.SpaceSubject, off)
			}
		}
		if ext.Score > trigger {
			d.ExtReached = int32(ext.QEnd)
			kept++
			sc.exts = append(sc.exts, ext)
		} else {
			d.ExtReached = p.QOff
		}
	}
	st.Extensions += extensions
	st.Kept += kept
	flushSubject()
	return subjects
}

// extendPostFiltered consumes sorted raw hits, applying the pair selection
// and extension in one pass (Algorithm 1's post-filter form).
func (e *Engine) extendPostFiltered(sc *scratch, q []alphabet.Code, bi int, coder hit.KeyCoder, diagBias int, st *search.Stats) []search.SubjectAlignments {
	b := e.Ix.Blocks[bi]
	// e.canon is shared across workers; the per-query profile must ride on a
	// local copy.
	canonv := e.canon
	canonv.Prof = &sc.prof
	canon := &canonv
	trace := e.Cfg.Trace

	var subjects []search.SubjectAlignments
	curKey := uint32(0)
	haveKey := false
	curLocal := -1
	var d ungapped.DiagState
	sc.exts = sc.exts[:0]

	flushSubject := func() {
		if curLocal < 0 || len(sc.exts) == 0 {
			return
		}
		gsi := b.Block.Start + curLocal
		s := e.Ix.DB.Seqs[gsi].Data
		alns := search.GappedStage(e.Cfg, sc.aligner, &sc.prof, q, s, sc.exts, st)
		if len(alns) > 0 {
			subjects = append(subjects, search.SubjectAlignments{Subject: gsi, Alns: alns})
		}
		sc.exts = sc.exts[:0]
	}

	for i := range sc.hits {
		h := &sc.hits[i]
		if !haveKey || h.Key != curKey {
			curKey = h.Key
			haveKey = true
			d.Reset()
			local, _ := coder.Decode(h.Key)
			if local != curLocal {
				flushSubject()
				curLocal = local
			}
		}
		local, diag := coder.Decode(h.Key)
		gsi := b.Block.Start + local
		s := e.Ix.DB.Seqs[gsi].Data
		sOff := diag + int(h.QOff) - diagBias
		ext, paired, extended, keep := canon.Step(&d, q, s, int(h.QOff), sOff)
		if paired {
			st.Pairs++
		}
		if extended {
			st.Extensions++
			if trace != nil {
				for off := e.subjOff[gsi] + int64(ext.SStart); off < e.subjOff[gsi]+int64(ext.SEnd); off++ {
					trace(search.SpaceSubject, off)
				}
			}
		}
		if keep {
			st.Kept++
			sc.exts = append(sc.exts, ext)
		}
	}
	flushSubject()
	return subjects
}
