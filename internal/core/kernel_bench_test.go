package core

import (
	"testing"

	"repro/internal/alphabet"
	"repro/internal/hit"
	"repro/internal/search"
)

// BenchmarkHitDetect measures the two-hit detection kernel (prefilter reset
// + neighbor scan + packed last-hit pair test + branchless pair emission)
// over one warm (block, query) task — the stage the paper's Figure 4 calls
// out as the memory-bound majority of BLASTP runtime. The per-op time is
// the cost of one full detection pass; divide by the reported hits/op to
// get per-hit cost.
func BenchmarkHitDetect(b *testing.B) {
	cfg, ix, queries := world(b, 173, 800, 1, 300, 1<<19)
	q := queries[0]
	blk := ix.Blocks[0]
	maxDiags := len(q) + blk.Block.MaxLen - 2*alphabet.W + 1
	coder, err := hit.NewKeyCoder(blk.Block.NumSeqs(), maxDiags)
	if err != nil {
		b.Fatal(err)
	}
	e := New(cfg, ix)
	sc := e.getScratch()
	defer e.putScratch(sc)
	var st search.Stats
	for i := 0; i < 2; i++ { // warm the scratch to steady state
		e.detectPrefiltered(sc, q, 0, coder, &st)
	}
	st = search.Stats{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.detectPrefiltered(sc, q, 0, coder, &st)
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(st.Hits)/float64(b.N), "hits/op")
		b.ReportMetric(float64(st.Pairs)/float64(b.N), "pairs/op")
	}
}

// TestHitDetectZeroAlloc pins the warm detection kernel (including the
// compaction-style pair buffer) at zero allocations per task.
func TestHitDetectZeroAlloc(t *testing.T) {
	cfg, ix, queries := world(t, 179, 400, 1, 300, 1<<18)
	q := queries[0]
	blk := ix.Blocks[0]
	maxDiags := len(q) + blk.Block.MaxLen - 2*alphabet.W + 1
	coder, err := hit.NewKeyCoder(blk.Block.NumSeqs(), maxDiags)
	if err != nil {
		t.Fatal(err)
	}
	e := New(cfg, ix)
	sc := e.getScratch()
	defer e.putScratch(sc)
	var st search.Stats
	for i := 0; i < 2; i++ {
		e.detectPrefiltered(sc, q, 0, coder, &st)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		e.detectPrefiltered(sc, q, 0, coder, &st)
	}); allocs != 0 {
		t.Errorf("warm hit detection allocates %.1f objects per task, want 0", allocs)
	}
}
