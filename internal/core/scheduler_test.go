package core

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/dbase"
	"repro/internal/dbindex"
	"repro/internal/search"
	"repro/internal/seqgen"
)

// TestBatchIdentityAllOptions is the scheduler's Section V-E obligation:
// for every scheduler × sorter × prefilter combination and several thread
// counts, SearchBatch must reproduce sequential Search exactly.
func TestBatchIdentityAllOptions(t *testing.T) {
	cfg, ix, queries := world(t, 61, 110, 6, 0, 8192)
	optSets := []Options{
		{Prefilter: true, Sorter: SortLSD},
		{Prefilter: false, Sorter: SortLSD},
		{Prefilter: true, Sorter: SortMSD},
		{Prefilter: true, Sorter: SortMerge},
		{Prefilter: true, Sorter: SortTwoLevel},
	}
	for _, opt := range optSets {
		for _, sched := range []Scheduler{SchedBlockMajor, SchedBarrier} {
			opt.Scheduler = sched
			e := NewWithOptions(cfg, ix, opt)
			seq := runAll(e, queries)
			for _, threads := range []int{1, 3, 8} {
				batch := e.SearchBatch(queries, threads)
				requireIdentical(t, sched.String(), seq, batch)
			}
		}
	}
}

// TestGridSchedulerStats checks the deterministic scheduler counters: the
// grid executes exactly blocks × queries tasks, every query's stats record
// one task per block, and the worker accounting is self-consistent.
func TestGridSchedulerStats(t *testing.T) {
	cfg, ix, queries := world(t, 67, 120, 8, 128, 8192)
	nb := len(ix.Blocks)
	if nb < 2 {
		t.Fatalf("world has %d blocks; need >= 2 for a meaningful grid", nb)
	}
	e := New(cfg, ix)
	results, sched := e.SearchBatchStats(queries, 4)
	if sched.Scheduler != "block-major" {
		t.Errorf("scheduler name %q", sched.Scheduler)
	}
	wantTasks := int64(nb * len(queries))
	if sched.Tasks != wantTasks {
		t.Errorf("scheduler ran %d tasks, want %d", sched.Tasks, wantTasks)
	}
	if sched.Workers < 1 || sched.Workers > 4 {
		t.Errorf("scheduler used %d workers, want 1..4", sched.Workers)
	}
	if sched.MinWorkerTasks+sched.MaxWorkerTasks > 0 && sched.MaxWorkerTasks < sched.MinWorkerTasks {
		t.Errorf("worker task spread inverted: min %d > max %d", sched.MinWorkerTasks, sched.MaxWorkerTasks)
	}
	if sched.BusyNanos <= 0 || sched.ElapsedNanos <= 0 {
		t.Errorf("no time accounted: busy %d elapsed %d", sched.BusyNanos, sched.ElapsedNanos)
	}
	if u := sched.Utilization(); u <= 0 || u > 1.05 {
		t.Errorf("utilization %.3f outside (0, 1]", u)
	}
	for qi, r := range results {
		if r.Stats.SchedTasks != int64(nb) {
			t.Errorf("query %d ran as %d tasks, want %d", qi, r.Stats.SchedTasks, nb)
		}
		if r.Stats.SchedBusyNanos <= 0 {
			t.Errorf("query %d has no busy time", qi)
		}
	}
}

// TestSkewedStragglerKeepsWorkersBusy reproduces the failure mode the
// barrier-free scheduler removes: a batch of short queries plus one much
// longer straggler. Under the grid scheduler no worker waits at block
// boundaries, so every worker keeps pulling tasks and the utilization
// counters show all of them participating.
func TestSkewedStragglerKeepsWorkersBusy(t *testing.T) {
	cfg := cfgShared(t)
	g := seqgen.New(seqgen.UniprotProfile(), 71)
	db := dbase.New(g.Database(300))
	ix, err := dbindex.Build(db, cfg.Neighbors, 8192)
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([][]alphabet.Code, db.NumSeqs())
	for i := range db.Seqs {
		seqs[i] = db.Seqs[i].Data
	}
	// Eleven short queries and one straggler an order of magnitude longer.
	queries := g.Queries(seqs, 11, 96)
	queries = append(queries, g.Queries(seqs, 1, 1536)...)

	e := New(cfg, ix)
	want := runAll(e, queries)
	// On a loaded machine a late-starting worker can in principle find the
	// queue already drained; the grid is large enough that this is rare,
	// and a retry makes it vanishingly so.
	var results []search.QueryResult
	var sched search.SchedStats
	for trial := 0; trial < 3; trial++ {
		results, sched = e.SearchBatchStats(queries, 4)
		requireIdentical(t, "skewed", want, results)
		if sched.MinWorkerTasks >= 1 {
			break
		}
	}
	if sched.Workers != 4 {
		t.Fatalf("used %d workers, want 4", sched.Workers)
	}
	if runtime.NumCPU() >= 2 {
		// All workers keep pulling tasks; none idles behind the straggler.
		if sched.MinWorkerTasks < 1 {
			t.Errorf("a worker pulled %d tasks; all workers should stay busy", sched.MinWorkerTasks)
		}
	} else if sched.MaxWorkerTasks >= sched.Tasks {
		// One CPU serializes the workers, so a late goroutine may legally
		// never run; the dynamic queue must still spread the load across
		// more than one worker (TestForTasksStragglerNoIdling asserts the
		// all-workers-busy property deterministically with yielding tasks).
		t.Errorf("one worker pulled all %d tasks; load did not spread", sched.Tasks)
	}
	if u := sched.Utilization(); u <= 0 || u > 1.05 {
		t.Errorf("utilization %.3f outside (0, 1]", u)
	}
	// The straggler query's tasks dominate per-query busy time.
	straggler := results[len(results)-1].Stats
	if straggler.SchedBusyNanos <= 0 || straggler.SchedTasks != int64(len(ix.Blocks)) {
		t.Errorf("straggler stats not folded: %+v", straggler)
	}
}

// TestConcurrentTasksSameQueryRow drives many workers through the same
// query's row of the task grid at once (threads >> queries), which is the
// configuration where per-task result cells — not per-query appends — keep
// the scheduler race-free. Run under -race via the Makefile race target.
func TestConcurrentTasksSameQueryRow(t *testing.T) {
	cfg, ix, queries := world(t, 73, 150, 2, 160, 2048)
	if len(ix.Blocks) < 4 {
		t.Fatalf("world has %d blocks; need >= 4", len(ix.Blocks))
	}
	e := New(cfg, ix)
	seq := runAll(e, queries)
	for trial := 0; trial < 3; trial++ {
		batch := e.SearchBatch(queries, 8)
		requireIdentical(t, "same-row", seq, batch)
	}
}

// TestConcurrentSearchesSharePool exercises the engine's scratch pool from
// concurrent single-query Search calls (also a -race target).
func TestConcurrentSearchesSharePool(t *testing.T) {
	cfg, ix, queries := world(t, 79, 100, 4, 128, 8192)
	e := New(cfg, ix)
	want := runAll(e, queries)
	var wg sync.WaitGroup
	got := make([]search.QueryResult, len(queries))
	for qi := range queries {
		wg.Add(1)
		go func(qi int) {
			defer wg.Done()
			got[qi] = e.Search(qi, queries[qi])
		}(qi)
	}
	wg.Wait()
	requireIdentical(t, "concurrent-search", want, got)
}
