package core

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/alphabet"
	"repro/internal/hit"
	"repro/internal/obs"
	"repro/internal/search"
)

// renderResults serializes everything a user-visible report is built from:
// HSP identity, coordinates, scores, E-values and traceback ops. Timing
// fields are deliberately excluded — they are the one thing observability
// is allowed to (and does) populate.
func renderResults(results []search.QueryResult) []byte {
	var b bytes.Buffer
	for qi, r := range results {
		fmt.Fprintf(&b, "query %d: %d hsps\n", qi, len(r.HSPs))
		for _, h := range r.HSPs {
			fmt.Fprintf(&b, "%d %d %d-%d %d-%d %.17g %s\n",
				h.Subject, h.Aln.Score, h.Aln.QStart, h.Aln.QEnd,
				h.Aln.SStart, h.Aln.SEnd, h.EValue, string(h.Aln.Ops))
		}
	}
	return b.Bytes()
}

// TestObservabilityOnOffByteIdentical pins the contract that instrumentation
// never changes answers: the same batch searched with the default (live)
// metric bundle and with obs.Discard must render byte-identically, on both
// schedulers and on the single-query path.
func TestObservabilityOnOffByteIdentical(t *testing.T) {
	cfg, ix, queries := world(t, 91, 120, 6, 256, 8192)
	for _, sched := range []Scheduler{SchedBlockMajor, SchedBarrier} {
		on := DefaultOptions()
		on.Scheduler = sched // Metrics nil -> obs.Pipe, observability on
		off := DefaultOptions()
		off.Scheduler = sched
		off.Metrics = obs.Discard

		resOn := NewWithOptions(cfg, ix, on).SearchBatch(queries, 3)
		resOff := NewWithOptions(cfg, ix, off).SearchBatch(queries, 3)
		label := fmt.Sprintf("scheduler %d obs on vs off", sched)
		requireIdentical(t, label, resOn, resOff)
		if !bytes.Equal(renderResults(resOn), renderResults(resOff)) {
			t.Errorf("%s: rendered output differs", label)
		}
	}

	onRes := NewWithOptions(cfg, ix, DefaultOptions()).Search(0, queries[0])
	offOpt := DefaultOptions()
	offOpt.Metrics = obs.Discard
	offRes := NewWithOptions(cfg, ix, offOpt).Search(0, queries[0])
	requireIdentical(t, "single-query obs on vs off",
		[]search.QueryResult{onRes}, []search.QueryResult{offRes})
	if !bytes.Equal(renderResults([]search.QueryResult{onRes}), renderResults([]search.QueryResult{offRes})) {
		t.Error("single-query rendered output differs")
	}
}

// TestStampedTaskZeroAllocs proves the instrumentation adds zero allocations
// per scheduler task when no trace sink is attached: the warmed per-task hot
// path plus the full metric stamp (counter deltas, stage nanos, task
// histogram) allocates nothing.
func TestStampedTaskZeroAllocs(t *testing.T) {
	cfg, ix, queries := world(t, 83, 100, 1, 256, 8192)
	q := queries[0]
	b := ix.Blocks[0]
	maxDiags := len(q) + b.Block.MaxLen - 2*alphabet.W + 1
	coder, err := hit.NewKeyCoder(b.Block.NumSeqs(), maxDiags)
	if err != nil {
		t.Fatal(err)
	}
	e := NewWithOptions(cfg, ix, DefaultOptions())
	sc := e.getScratch()
	defer e.putScratch(sc)
	var st search.Stats
	var zero search.Stats
	task := func() {
		e.detectPrefiltered(sc, q, 0, coder, &st)
		e.sortPairs(sc, coder)
		e.stampTask(&zero, &st)
		e.met.TaskNanos.Observe(1)
	}
	for i := 0; i < 2; i++ {
		task() // warm up scratch to steady state
	}
	if allocs := testing.AllocsPerRun(20, task); allocs != 0 {
		t.Errorf("instrumented task allocates %.1f objects per run, want 0", allocs)
	}
}

// TestSearchStampsAllStages checks a real muBLASTP search produces spans
// for all six pipeline stages, in order, with the always-on stages non-zero.
func TestSearchStampsAllStages(t *testing.T) {
	cfg, ix, queries := world(t, 97, 150, 1, 384, 8192)
	res := New(cfg, ix).Search(0, queries[0])
	spans := res.Stats.Spans()
	names := obs.StageNames()
	if len(spans) != int(obs.NumStages) {
		t.Fatalf("got %d spans, want %d", len(spans), obs.NumStages)
	}
	for i, sp := range spans {
		if sp.Stage != names[i] {
			t.Errorf("span %d = %q, want %q", i, sp.Stage, names[i])
		}
		if sp.Nanos < 0 {
			t.Errorf("span %s has negative time %d", sp.Stage, sp.Nanos)
		}
	}
	// Every query scans the index and reorders hits; those stages cannot be
	// free on a non-trivial workload.
	for _, stage := range []obs.Stage{obs.StageHitDetect, obs.StageSort} {
		if spans[stage].Nanos == 0 {
			t.Errorf("stage %s stamped zero time", stage)
		}
	}
	if res.Stats.TotalStageNanos() == 0 {
		t.Error("total stage time is zero")
	}
	cm := res.Stats.CounterMap()
	for _, key := range []string{"hits", "pairs", "sorted_items", "extensions", "kept", "gapped_exts", "tracebacks", "sched_tasks"} {
		if _, ok := cm[key]; !ok {
			t.Errorf("CounterMap missing %q", key)
		}
	}
	if cm["hits"] != res.Stats.Hits {
		t.Errorf("CounterMap hits = %d, want %d", cm["hits"], res.Stats.Hits)
	}
}

// TestBatchStampsPipelineMetrics runs a batch against an isolated metric
// bundle and checks the registry totals reconcile with the per-query stats.
func TestBatchStampsPipelineMetrics(t *testing.T) {
	cfg, ix, queries := world(t, 101, 120, 4, 256, 8192)
	for _, sched := range []Scheduler{SchedBlockMajor, SchedBarrier} {
		met := obs.NewPipelineMetrics(obs.NewRegistry())
		opt := DefaultOptions()
		opt.Scheduler = sched
		opt.Metrics = met
		e := NewWithOptions(cfg, ix, opt)
		results, ss := e.SearchBatchStats(queries, 2)

		var want search.Stats
		for i := range results {
			want.Add(results[i].Stats)
		}
		if got := met.Hits.Value(); got != want.Hits {
			t.Errorf("scheduler %d: metric hits %d != stats hits %d", sched, got, want.Hits)
		}
		if got := met.Tracebacks.Value(); got != want.Tracebacks {
			t.Errorf("scheduler %d: metric tracebacks %d != stats %d", sched, got, want.Tracebacks)
		}
		for s := obs.Stage(0); s < obs.NumStages; s++ {
			if got := met.StageNanos[s].Value(); got != want.StageNanos[s] {
				t.Errorf("scheduler %d: stage %s metric %d != stats %d", sched, s, got, want.StageNanos[s])
			}
		}
		if got := met.Queries.Value(); got != int64(len(queries)) {
			t.Errorf("scheduler %d: queries counter %d, want %d", sched, got, len(queries))
		}
		if got := met.Tasks.Value(); got != ss.Tasks {
			t.Errorf("scheduler %d: tasks counter %d, want %d", sched, got, ss.Tasks)
		}
		if met.TaskNanos.Count() != ss.Tasks {
			t.Errorf("scheduler %d: task histogram count %d, want %d", sched, met.TaskNanos.Count(), ss.Tasks)
		}
		if met.QueryNanos.Count() != int64(len(queries)) {
			t.Errorf("scheduler %d: query histogram count %d, want %d", sched, met.QueryNanos.Count(), len(queries))
		}
		if met.Batches.Value() != 1 {
			t.Errorf("scheduler %d: batches counter %d, want 1", sched, met.Batches.Value())
		}
		if u := met.SchedUtilizationPermille.Value(); u <= 0 || u > 1050 {
			t.Errorf("scheduler %d: utilization gauge %v outside (0, 1050]", sched, u)
		}
	}
}

// TestDebugEndpointDuringBatchSearch serves the debug handler over a live
// registry while batch searches run against it, and asserts /metrics,
// /debug/vars and /debug/pprof/ respond mid-flight with non-zero pipeline
// stage counters.
func TestDebugEndpointDuringBatchSearch(t *testing.T) {
	cfg, ix, queries := world(t, 103, 150, 4, 256, 8192)
	reg := obs.NewRegistry()
	met := obs.NewPipelineMetrics(reg)
	opt := DefaultOptions()
	opt.Metrics = met
	e := NewWithOptions(cfg, ix, opt)

	srv, err := obs.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			e.SearchBatch(queries, 2)
		}
	}()

	metricValue := func(body, name string) int64 {
		for _, line := range strings.Split(body, "\n") {
			if rest, ok := strings.CutPrefix(line, name+" "); ok {
				v, err := strconv.ParseInt(rest, 10, 64)
				if err != nil {
					t.Fatalf("metric %s has non-integer value %q", name, rest)
				}
				return v
			}
		}
		return -1
	}
	fetch := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	deadline := time.Now().Add(10 * time.Second)
	sawLive := false
	for !sawLive {
		select {
		case <-done:
			t.Fatal("search loop finished before /metrics showed non-zero stage counters")
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for non-zero stage counters on /metrics")
		}
		code, body := fetch("/metrics")
		if code != http.StatusOK {
			t.Fatalf("/metrics status %d", code)
		}
		if metricValue(body, "pipeline_stage_hit_detect_nanos_total") > 0 &&
			metricValue(body, "sched_tasks_total") > 0 &&
			metricValue(body, "pipeline_hits_total") > 0 {
			sawLive = true
		}
	}
	if code, _ := fetch("/debug/vars"); code != http.StatusOK {
		t.Errorf("/debug/vars status %d during search", code)
	}
	if code, _ := fetch("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d during search", code)
	}
	<-done
}
