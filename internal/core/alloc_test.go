package core

import (
	"testing"

	"repro/internal/alphabet"
	"repro/internal/hit"
	"repro/internal/search"
)

// TestHotPathSteadyStateAllocs pins the allocation behaviour of the
// per-task hot path (hit detection + reordering, the work SearchBatch's grid
// scheduler runs once per (block, query) cell): after the per-worker scratch
// has warmed up, it must be completely allocation-free for every sorter —
// including TwoLevelBin, whose counting arrays are pooled on the scratch.
func TestHotPathSteadyStateAllocs(t *testing.T) {
	cfg, ix, queries := world(t, 83, 100, 1, 256, 8192)
	q := queries[0]
	b := ix.Blocks[0]
	maxDiags := len(q) + b.Block.MaxLen - 2*alphabet.W + 1
	coder, err := hit.NewKeyCoder(b.Block.NumSeqs(), maxDiags)
	if err != nil {
		t.Fatal(err)
	}
	for _, sorter := range []Sorter{SortLSD, SortMSD, SortMerge, SortTwoLevel} {
		e := NewWithOptions(cfg, ix, Options{Prefilter: true, Sorter: sorter})
		sc := e.getScratch()
		var st search.Stats
		for i := 0; i < 2; i++ { // warm up: grow buffers to steady state
			e.detectPrefiltered(sc, q, 0, coder, &st)
			e.sortPairs(sc, coder)
		}
		allocs := testing.AllocsPerRun(20, func() {
			e.detectPrefiltered(sc, q, 0, coder, &st)
			e.sortPairs(sc, coder)
		})
		if allocs != 0 {
			t.Errorf("sorter %d: detect+sort allocates %.1f objects per task, want 0", sorter, allocs)
		}
		e.putScratch(sc)
	}
}

// TestSearchBlockAllocBound bounds the full per-task pipeline (detect, sort,
// extend, gapped stage) at steady state. The gapped stage legitimately
// allocates the alignments it returns, so the bound is a small constant, not
// zero; a regression that re-allocates scratch per task blows well past it.
func TestSearchBlockAllocBound(t *testing.T) {
	cfg, ix, queries := world(t, 89, 100, 1, 256, 8192)
	q := queries[0]
	e := New(cfg, ix)
	sc := e.getScratch()
	defer e.putScratch(sc)
	var st search.Stats
	for i := 0; i < 2; i++ {
		e.searchBlock(sc, q, 0, &st)
	}
	allocs := testing.AllocsPerRun(20, func() {
		e.searchBlock(sc, q, 0, &st)
	})
	// Measured ~77 (result slices and gapped-stage output for this world's
	// alignments); the pre-refactor per-call scratch alone was hundreds.
	const maxAllocs = 96
	if allocs > maxAllocs {
		t.Errorf("searchBlock allocates %.1f objects per task at steady state, want <= %d", allocs, maxAllocs)
	}
}

// TestSearchReusesScratchAcrossCalls verifies the single-query path also
// rides the scratch pool: repeated Search calls must not re-allocate the
// last-hit arrays, pair buffers, or the gapped aligner.
func TestSearchReusesScratchAcrossCalls(t *testing.T) {
	cfg, ix, queries := world(t, 97, 100, 1, 256, 8192)
	q := queries[0]
	e := New(cfg, ix)
	var first search.QueryResult
	for i := 0; i < 2; i++ {
		first = e.Search(0, q)
	}
	warm := testing.AllocsPerRun(10, func() {
		e.Search(0, q)
	})
	// A fresh engine pays the scratch build (last-hit arrays, aligner DP
	// rows, hit buffers) on its first call; the pooled engine must not pay
	// it again per call. AllocsPerRun warms up with one extra call, so the
	// cold cost is measured by building a fresh engine inside the closure.
	cold := testing.AllocsPerRun(1, func() {
		New(cfg, ix).Search(0, q)
	})
	if warm >= cold {
		t.Errorf("warm Search allocates %.0f objects, cold first call %.0f; pool is not reusing scratch", warm, cold)
	}
	if res := e.Search(0, q); len(res.HSPs) != len(first.HSPs) {
		t.Errorf("pooled Search changed results: %d vs %d HSPs", len(res.HSPs), len(first.HSPs))
	}
}
