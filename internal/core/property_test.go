package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/alphabet"
	"repro/internal/dbase"
	"repro/internal/dbindex"
	"repro/internal/search"
)

// randomWorld builds a small random database and query entirely from an rng,
// without the seqgen homolog machinery — adversarial shapes for the
// pipeline equivalence property.
func randomWorld(rng *rand.Rand, nSeqs, maxLen int) ([][]alphabet.Code, []alphabet.Code) {
	seqs := make([][]alphabet.Code, nSeqs)
	for i := range seqs {
		// Deliberately include degenerate lengths (0, 1, 2 residues).
		l := rng.Intn(maxLen + 1)
		s := make([]alphabet.Code, l)
		for j := range s {
			s[j] = alphabet.Code(rng.Intn(alphabet.Size)) // incl. B,Z,X,*
		}
		seqs[i] = s
	}
	// Query: either random or a window of a database sequence.
	var q []alphabet.Code
	if rng.Intn(2) == 0 {
		q = make([]alphabet.Code, 10+rng.Intn(100))
		for j := range q {
			q[j] = alphabet.Code(rng.Intn(20))
		}
	} else {
		for _, s := range seqs {
			if len(s) >= 20 {
				start := rng.Intn(len(s) - 19)
				q = append(q, s[start:start+20]...)
				break
			}
		}
		if q == nil {
			q = make([]alphabet.Code, 20)
		}
	}
	return seqs, q
}

// TestPropertyEnginesEquivalentOnRandomWorlds is the Section V-E invariant
// under adversarial random inputs: for any database (including degenerate
// sequences and ambiguity codes) and any query, the three engines return
// identical results, for any block size.
func TestPropertyEnginesEquivalentOnRandomWorlds(t *testing.T) {
	cfg := cfgShared(t)
	check := func(seed int64, blockSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		seqs, q := randomWorld(rng, 5+rng.Intn(40), 300)
		db := dbase.New(seqs)
		blockResidues := []int64{512, 2048, 1 << 20}[blockSel%3]
		ix, err := dbindex.Build(db, cfg.Neighbors, blockResidues)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		a := search.NewQueryIndexed(cfg, db).Search(0, q)
		b := search.NewDBIndexed(cfg, ix).Search(0, q)
		c := New(cfg, ix).Search(0, q)
		return sameResult(a, b) && sameResult(a, c)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func sameResult(a, b search.QueryResult) bool {
	if len(a.HSPs) != len(b.HSPs) {
		return false
	}
	for i := range a.HSPs {
		x, y := a.HSPs[i], b.HSPs[i]
		if x.Subject != y.Subject || x.Aln.Score != y.Aln.Score ||
			x.Aln.QStart != y.Aln.QStart || x.Aln.QEnd != y.Aln.QEnd ||
			x.Aln.SStart != y.Aln.SStart || x.Aln.SEnd != y.Aln.SEnd ||
			string(x.Aln.Ops) != string(y.Aln.Ops) {
			return false
		}
	}
	return true
}

// TestPropertyPrefilterInvariant: with and without the pre-filter, both the
// pair set size and the final results agree on random worlds.
func TestPropertyPrefilterInvariant(t *testing.T) {
	cfg := cfgShared(t)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seqs, q := randomWorld(rng, 5+rng.Intn(30), 200)
		db := dbase.New(seqs)
		ix, err := dbindex.Build(db, cfg.Neighbors, 4096)
		if err != nil {
			return false
		}
		on := NewWithOptions(cfg, ix, Options{Prefilter: true, Sorter: SortLSD}).Search(0, q)
		off := NewWithOptions(cfg, ix, Options{Prefilter: false, Sorter: SortLSD}).Search(0, q)
		if on.Stats.Pairs != off.Stats.Pairs {
			return false
		}
		if on.Stats.SortedItems > off.Stats.SortedItems {
			return false
		}
		return sameResult(on, off)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyQueryIsAlwaysFoundVerbatim: a query that is an exact window of
// a database sequence (length >= 28, above the two-hit requirements) always
// yields a hit on its source sequence with the full self score.
func TestPropertyQueryIsAlwaysFoundVerbatim(t *testing.T) {
	cfg := cfgShared(t)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seqs, _ := randomWorld(rng, 20, 300)
		// Force one adequately long sequence.
		long := make([]alphabet.Code, 150)
		for j := range long {
			long[j] = alphabet.Code(rng.Intn(20))
		}
		seqs = append(seqs, long)
		db := dbase.New(seqs)
		ix, err := dbindex.Build(db, cfg.Neighbors, 8192)
		if err != nil {
			return false
		}
		start := rng.Intn(len(long) - 60)
		q := append([]alphabet.Code(nil), long[start:start+60]...)
		res := New(cfg, ix).Search(0, q)
		want := cfg.Matrix.SeqScore(q, q)
		for _, h := range res.HSPs {
			if h.Aln.Score >= want {
				return true
			}
		}
		return false
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
