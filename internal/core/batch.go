// Fault-tolerant batch scheduling: SearchBatchCtx threads a context through
// both schedulers (cooperative cancellation between tasks, per-batch
// deadlines with typed ErrDeadline), isolates per-task panics into
// (block, query)-attributed TaskPanicErrors so one poisoned query fails
// alone, and returns partial results whose completed queries are
// byte-identical to a full run. The (block, query) task — the paper's unit
// of decoupled work — is the abort and failure granularity throughout.
package core

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/alphabet"
	"repro/internal/faultinject"
	"repro/internal/parallel"
	"repro/internal/search"
)

// Fault sites of the engine's hot path. Disarmed they cost one atomic load
// per task; the chaos harness arms them by name (see internal/faultinject).
var (
	fiSchedTask = faultinject.NewSite("sched.task")
	fiHitDetect = faultinject.NewSite("core.hitdetect")
	fiExtend    = faultinject.NewSite("core.extend")
	fiFinalize  = faultinject.NewSite("core.finalize")
)

// BatchResult is the outcome of a fault-tolerant batch search. Results has
// one entry per query; entry qi is meaningful only when Completed[qi] is
// true, in which case it is byte-identical to the result a fault-free run
// produces for that query. QueryErrs[qi] explains an incomplete query (a
// *search.TaskPanicError for a poisoned query, a *search.QueryCancelledError
// for one cut off by cancellation or deadline); it is nil for completed
// queries. Err is the batch-level error: nil when every task ran,
// search.ErrDeadline (wrapped) when the per-batch deadline expired, or the
// context's cancellation error.
type BatchResult struct {
	Results   []search.QueryResult
	Completed []bool
	QueryErrs []error
	Sched     search.SchedStats
	Err       error
}

// CompletedCount returns how many queries finished.
func (b *BatchResult) CompletedCount() int {
	n := 0
	for _, c := range b.Completed {
		if c {
			n++
		}
	}
	return n
}

// SearchBatchCtx is SearchBatch with cooperative cancellation, deadline
// support, and panic isolation. The context is observed between tasks: once
// it is cancelled no new (block, query) task starts, in-flight tasks finish,
// and queries whose tasks all completed are still finalized and returned.
func (e *Engine) SearchBatchCtx(ctx context.Context, queries [][]alphabet.Code, threads int) BatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	var br BatchResult
	if e.Opt.Scheduler == SchedBarrier {
		br = e.searchBatchBarrierCtx(ctx, queries, threads)
	} else {
		br = e.searchBatchGridCtx(ctx, queries, threads)
	}
	e.stampSched(br.Sched)
	e.stampBatchFaults(&br)
	return br
}

// stampBatchFaults folds a batch's failure counters into the metric bundle.
// (Task panics are stamped as they happen; this covers the batch-scoped
// outcomes.)
func (e *Engine) stampBatchFaults(br *BatchResult) {
	if br.Sched.DeadlineExceeded {
		e.met.DeadlineExceeded.Add(1)
	}
	var cancelled int64
	for _, err := range br.QueryErrs {
		var qc *search.QueryCancelledError
		if errors.As(err, &qc) {
			cancelled++
		}
	}
	if cancelled > 0 {
		e.met.QueriesCancelled.Add(cancelled)
	}
}

// batchFailures collects per-query failure state during a batch run. The
// panic path is cold, so a mutex (not atomics) guards it.
type batchFailures struct {
	mu      sync.Mutex
	panics  map[int]*search.TaskPanicError // first panic per query
	failed  []bool                         // failed[qi]: query is poisoned
	nPanics int64                          // total panicked tasks (not unique queries)
}

func newBatchFailures(nq int) *batchFailures {
	return &batchFailures{failed: make([]bool, nq)}
}

// record stores the first panic attributed to query qi and poisons it.
func (f *batchFailures) record(perr *search.TaskPanicError) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.panics == nil {
		f.panics = make(map[int]*search.TaskPanicError)
	}
	if _, ok := f.panics[perr.Query]; !ok {
		f.panics[perr.Query] = perr
	}
	f.failed[perr.Query] = true
	f.nPanics++
}

// poisoned reports whether query qi has failed. Racy reads are acceptable:
// a stale false only means one more task runs for a doomed query.
func (f *batchFailures) poisoned(qi int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failed[qi]
}

func (f *batchFailures) panicFor(qi int) *search.TaskPanicError {
	f.mu.Lock()
	defer f.mu.Unlock()
	if p, ok := f.panics[qi]; ok {
		return p
	}
	return nil
}

// searchBatchGridCtx is the barrier-free grid scheduler (see the package
// comment on searchBatchGrid ordering and identity) extended with the
// robustness layer: per-task completion tracking, panic isolation, and
// cancellation between tasks.
func (e *Engine) searchBatchGridCtx(ctx context.Context, queries [][]alphabet.Code, threads int) BatchResult {
	nq := len(queries)
	nb := len(e.Ix.Blocks)
	nTasks := nb * nq
	workers := parallel.NumWorkers(nTasks, threads)
	scratches := make([]*scratch, workers)
	for i := range scratches {
		scratches[i] = e.getScratch()
	}
	defer func() {
		for _, sc := range scratches {
			e.putScratch(sc)
		}
	}()
	cells := make([][]search.SubjectAlignments, nTasks)
	cellStats := make([]search.Stats, nTasks)
	taskOK := make([]bool, nTasks) // written only by task t's owner
	fails := newBatchFailures(nq)
	var zero search.Stats
	ts, ctxErr := parallel.ForTasksOpts(nTasks, threads, func(w, t int) {
		bi, qi := t/nq, t%nq
		q := queries[qi]
		if len(q) < alphabet.W {
			taskOK[t] = true
			return
		}
		if fails.poisoned(qi) {
			// The query already failed on another block; skip its remaining
			// cells (they could not be reported anyway).
			return
		}
		fiSchedTask.Fire()
		st := &cellStats[t]
		start := time.Now()
		cells[t] = e.searchBlock(scratches[w], q, bi, st)
		st.SchedTasks = 1
		st.SchedBusyNanos = int64(time.Since(start))
		e.stampTask(&zero, st) // cell stats start zeroed, so post == delta
		taskOK[t] = true
	}, parallel.RunOptions{
		Context:  ctx,
		Observer: e.met.TaskNanos,
		OnPanic: func(_, t int, v any, stack []byte) {
			fails.record(&search.TaskPanicError{Block: t / nq, Query: t % nq, Value: v, Stack: stack})
			e.met.TasksPanicked.Add(1)
		},
	})

	complete := func(qi int) bool {
		for bi := 0; bi < nb; bi++ {
			if !taskOK[bi*nq+qi] {
				return false
			}
		}
		return true
	}
	finalize := func(w, qi int) (search.QueryResult, search.Stats) {
		total := 0
		for bi := 0; bi < nb; bi++ {
			total += len(cells[bi*nq+qi])
		}
		var subjects []search.SubjectAlignments
		if total > 0 {
			subjects = make([]search.SubjectAlignments, 0, total)
		}
		var st search.Stats
		for bi := 0; bi < nb; bi++ {
			t := bi*nq + qi
			subjects = append(subjects, cells[t]...)
			st.Add(cellStats[t])
		}
		return search.Finalize(e.Cfg, scratches[w].aligner, qi, queries[qi], e.Ix.DB, subjects, st), st
	}
	return e.finishBatch(ctx, queries, workers, fails, complete, finalize,
		schedStatsFrom(SchedBlockMajor, ts), nTasks, int64(ts.Tasks), ctxErr)
}

// searchBatchBarrierCtx is the Algorithm 3 barrier scheduler with the same
// robustness layer: the context is additionally observed at every block
// boundary, and a poisoned query is skipped in all later blocks.
func (e *Engine) searchBatchBarrierCtx(ctx context.Context, queries [][]alphabet.Code, threads int) BatchResult {
	nq := len(queries)
	nb := len(e.Ix.Blocks)
	workers := parallel.NumWorkers(nq, threads)
	scratches := make([]*scratch, workers)
	for i := range scratches {
		scratches[i] = e.getScratch()
	}
	defer func() {
		for _, sc := range scratches {
			e.putScratch(sc)
		}
	}()
	subjects := make([][]search.SubjectAlignments, nq)
	stats := make([]search.Stats, nq)
	blocksDone := make([]int, nq) // written only by query qi's task owner
	fails := newBatchFailures(nq)
	var ts parallel.TaskStats
	var ctxErr error
	var started int64
	for bi := 0; bi < nb && ctxErr == nil; bi++ {
		block := bi
		blockTS, err := parallel.ForTasksOpts(nq, threads, func(w, qi int) {
			if len(queries[qi]) < alphabet.W {
				blocksDone[qi]++
				return
			}
			if fails.poisoned(qi) {
				return
			}
			fiSchedTask.Fire()
			st := &stats[qi]
			pre := *st // per-query stats accumulate across blocks
			start := time.Now()
			subs := e.searchBlock(scratches[w], queries[qi], block, st)
			st.SchedTasks++
			st.SchedBusyNanos += int64(time.Since(start))
			subjects[qi] = append(subjects[qi], subs...)
			e.stampTask(&pre, st)
			blocksDone[qi]++
		}, parallel.RunOptions{
			Context:  ctx,
			Observer: e.met.TaskNanos,
			OnPanic: func(_, qi int, v any, stack []byte) {
				fails.record(&search.TaskPanicError{Block: block, Query: qi, Value: v, Stack: stack})
				e.met.TasksPanicked.Add(1)
			},
		})
		ts.Merge(blockTS)
		started += int64(blockTS.Tasks)
		ctxErr = err
	}
	complete := func(qi int) bool { return blocksDone[qi] == nb }
	finalize := func(w, qi int) (search.QueryResult, search.Stats) {
		st := stats[qi]
		return search.Finalize(e.Cfg, scratches[w].aligner, qi, queries[qi], e.Ix.DB, subjects[qi], st), st
	}
	return e.finishBatch(ctx, queries, workers, fails, complete, finalize,
		schedStatsFrom(SchedBarrier, ts), nb*nq, started, ctxErr)
}

// finishBatch runs the finalize phase (stage four, parallel over queries,
// itself cancellable and panic-isolated) and assembles the BatchResult. A
// query is completed only when all its search tasks ran AND its finalize
// ran; completed queries are byte-identical to a fault-free run because
// their inputs — the per-(block, query) cells — are independent of every
// other task's fate.
func (e *Engine) finishBatch(
	ctx context.Context,
	queries [][]alphabet.Code,
	workers int,
	fails *batchFailures,
	complete func(qi int) bool,
	finalize func(w, qi int) (search.QueryResult, search.Stats),
	ss search.SchedStats,
	nTasks int,
	tasksStarted int64,
	ctxErr error,
) BatchResult {
	nq := len(queries)
	results := make([]search.QueryResult, nq)
	finOK := make([]bool, nq) // written only by query qi's finalizer
	finErr := parallel.ForWorkersCtx(ctx, nq, workers, func(w, qi int) {
		if fails.poisoned(qi) || !complete(qi) {
			return
		}
		defer func() {
			if r := recover(); r != nil {
				fails.record(&search.TaskPanicError{Block: -1, Query: qi, Value: r, Stack: nil})
				e.met.TasksPanicked.Add(1)
			}
		}()
		fiFinalize.Fire()
		res, pre := finalize(w, qi)
		results[qi] = res
		e.stampQueryDone(&pre, &results[qi].Stats)
		finOK[qi] = true
	})
	if ctxErr == nil {
		ctxErr = finErr
	}

	completed := make([]bool, nq)
	qerrs := make([]error, nq)
	for qi := 0; qi < nq; qi++ {
		if finOK[qi] {
			completed[qi] = true
			continue
		}
		results[qi] = search.QueryResult{Query: qi} // zero result, flagged below
		if perr := fails.panicFor(qi); perr != nil {
			qerrs[qi] = perr
			ss.QueriesAborted++
			continue
		}
		cause := ctxErr
		if cause == nil {
			cause = context.Canceled // unreachable today; defensive attribution
		}
		qerrs[qi] = &search.QueryCancelledError{Query: qi, Cause: cause}
		ss.QueriesAborted++
	}
	ss.TasksPanicked = tasksPanickedCount(fails)
	ss.TasksCancelled = int64(nTasks) - tasksStarted
	ss.DeadlineExceeded = errors.Is(ctxErr, context.DeadlineExceeded)
	return BatchResult{
		Results:   results,
		Completed: completed,
		QueryErrs: qerrs,
		Sched:     ss,
		Err:       search.BatchErr(ctxErr),
	}
}

func tasksPanickedCount(f *batchFailures) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nPanics
}

// SearchCtx is Search with cooperative cancellation between index blocks.
// On cancellation it returns the context's error and a zero result.
func (e *Engine) SearchCtx(ctx context.Context, queryIdx int, q []alphabet.Code) (search.QueryResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sc := e.getScratch()
	defer e.putScratch(sc)
	var st search.Stats
	var subjects []search.SubjectAlignments
	if len(q) >= alphabet.W {
		for bi := range e.Ix.Blocks {
			if err := ctx.Err(); err != nil {
				return search.QueryResult{Query: queryIdx}, search.BatchErr(err)
			}
			subs := e.searchBlock(sc, q, bi, &st)
			subjects = append(subjects, subs...)
		}
	}
	res := search.Finalize(e.Cfg, sc.aligner, queryIdx, q, e.Ix.DB, subjects, st)
	var zero search.Stats
	e.stampQueryDone(&zero, &res.Stats)
	return res, nil
}
