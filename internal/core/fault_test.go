package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/search"
)

// renderResult flattens a QueryResult's HSPs to a byte string, so identity
// assertions are literal byte comparisons (floats included: the same
// computation must reproduce the same bits).
func renderResult(r *search.QueryResult) string {
	out := fmt.Sprintf("query %d: %d hsps\n", r.Query, len(r.HSPs))
	for _, h := range r.HSPs {
		out += fmt.Sprintf("%s score=%d bits=%v e=%v q=%d-%d s=%d-%d ops=%s\n",
			h.SubjectName, h.Aln.Score, h.BitScore, h.EValue,
			h.Aln.QStart, h.Aln.QEnd, h.Aln.SStart, h.Aln.SEnd, h.Aln.Ops)
	}
	return out
}

// requireCompletedIdentical asserts every completed query in br matches the
// fault-free baseline byte for byte.
func requireCompletedIdentical(t *testing.T, label string, br *BatchResult, baseline []search.QueryResult) {
	t.Helper()
	for qi := range br.Results {
		if !br.Completed[qi] {
			continue
		}
		got, want := renderResult(&br.Results[qi]), renderResult(&baseline[qi])
		if got != want {
			t.Errorf("%s: completed query %d differs from fault-free run:\ngot:\n%swant:\n%s", label, qi, got, want)
		}
	}
}

func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s", runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func bothSchedulers(t *testing.T, fn func(t *testing.T, sched Scheduler)) {
	for _, sched := range []Scheduler{SchedBlockMajor, SchedBarrier} {
		t.Run(sched.String(), func(t *testing.T) { fn(t, sched) })
	}
}

func TestBatchCtxCompleteRunMatchesLegacy(t *testing.T) {
	cfg, ix, queries := world(t, 101, 150, 4, 200, 8192)
	bothSchedulers(t, func(t *testing.T, sched Scheduler) {
		e := NewWithOptions(cfg, ix, Options{Prefilter: true, Sorter: SortLSD, Scheduler: sched, Metrics: obs.Discard})
		base := e.SearchBatch(queries, 3)
		br := e.SearchBatchCtx(context.Background(), queries, 3)
		if br.Err != nil {
			t.Fatalf("clean run returned batch error %v", br.Err)
		}
		if n := br.CompletedCount(); n != len(queries) {
			t.Fatalf("clean run completed %d of %d queries", n, len(queries))
		}
		for qi := range queries {
			if br.QueryErrs[qi] != nil {
				t.Errorf("query %d error on clean run: %v", qi, br.QueryErrs[qi])
			}
		}
		requireIdentical(t, "ctx-vs-legacy", br.Results, base)
	})
}

func TestBatchCancellationAbortsPromptly(t *testing.T) {
	cfg, ix, queries := world(t, 103, 200, 8, 200, 4096)
	bothSchedulers(t, func(t *testing.T, sched Scheduler) {
		goroutines := runtime.NumGoroutine()
		e := NewWithOptions(cfg, ix, Options{Prefilter: true, Sorter: SortLSD, Scheduler: sched, Metrics: obs.Discard})
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // already cancelled: no task may start
		br := e.SearchBatchCtx(ctx, queries, 4)
		if !errors.Is(br.Err, context.Canceled) {
			t.Fatalf("batch error %v, want context.Canceled", br.Err)
		}
		if n := br.CompletedCount(); n != 0 {
			t.Errorf("pre-cancelled batch completed %d queries", n)
		}
		if br.Sched.TasksCancelled == 0 {
			t.Error("no tasks recorded as cancelled")
		}
		for qi := range queries {
			var qc *search.QueryCancelledError
			if !errors.As(br.QueryErrs[qi], &qc) {
				t.Fatalf("query %d error %v, want QueryCancelledError", qi, br.QueryErrs[qi])
			}
			if qc.Query != qi || !errors.Is(qc, context.Canceled) {
				t.Errorf("query %d error misattributed: %+v", qi, qc)
			}
		}
		waitForGoroutines(t, goroutines)
	})
}

func TestBatchDeadlinePartialResults(t *testing.T) {
	cfg, ix, queries := world(t, 107, 200, 8, 200, 4096)
	bothSchedulers(t, func(t *testing.T, sched Scheduler) {
		e := NewWithOptions(cfg, ix, Options{Prefilter: true, Sorter: SortLSD, Scheduler: sched, Metrics: obs.Discard})
		baseline := e.SearchBatch(queries, 2)

		// A delay fault in hit detection stretches every task, so a short
		// deadline reliably lands mid-batch — the deadline-mid-pipeline case.
		if err := faultinject.Enable("core.hitdetect=delay:10ms", 1); err != nil {
			t.Fatal(err)
		}
		defer faultinject.Disable()
		ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
		defer cancel()
		br := e.SearchBatchCtx(ctx, queries, 2)
		if !errors.Is(br.Err, search.ErrDeadline) {
			t.Fatalf("batch error %v, want ErrDeadline", br.Err)
		}
		if !errors.Is(br.Err, context.DeadlineExceeded) {
			t.Errorf("ErrDeadline does not unwrap to context.DeadlineExceeded: %v", br.Err)
		}
		if !br.Sched.DeadlineExceeded {
			t.Error("SchedStats.DeadlineExceeded not set")
		}
		if n := br.CompletedCount(); n == len(queries) {
			t.Fatal("deadline run completed every query; fault schedule too weak to test partial results")
		}
		faultinject.Disable() // render/compare without the delay in play
		requireCompletedIdentical(t, "deadline-partial", &br, baseline)
	})
}

// TestDeadlineMidSortAndMidGapped pins the deadline behaviour when the clock
// expires inside a specific pipeline stage: the in-flight task finishes (the
// task is the abort granularity), no further task starts, and the completed
// subset stays byte-identical.
func TestDeadlineMidSortAndMidGapped(t *testing.T) {
	cfg, ix, queries := world(t, 109, 200, 6, 200, 4096)
	for _, site := range []string{"core.hitdetect", "core.extend"} {
		// core.hitdetect delays fire before the sort of the same task: the
		// deadline expires while reordering is still ahead of the scheduler
		// (deadline-mid-sort). core.extend delays fire after the sort, with
		// the gapped stage still ahead (deadline-mid-gapped).
		t.Run(site, func(t *testing.T) {
			e := NewWithOptions(cfg, ix, Options{Prefilter: true, Sorter: SortLSD, Metrics: obs.Discard})
			baseline := e.SearchBatch(queries, 2)
			if err := faultinject.Enable(site+"=delay:15ms", 1); err != nil {
				t.Fatal(err)
			}
			defer faultinject.Disable()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			br := e.SearchBatchCtx(ctx, queries, 2)
			if !errors.Is(br.Err, search.ErrDeadline) {
				t.Fatalf("batch error %v, want ErrDeadline", br.Err)
			}
			faultinject.Disable()
			requireCompletedIdentical(t, site, &br, baseline)
			for qi, done := range br.Completed {
				if !done && br.QueryErrs[qi] == nil {
					t.Errorf("incomplete query %d has no error", qi)
				}
			}
		})
	}
}

func TestPanicIsolationPoisonsOneQuery(t *testing.T) {
	cfg, ix, queries := world(t, 113, 150, 6, 200, 8192)
	bothSchedulers(t, func(t *testing.T, sched Scheduler) {
		e := NewWithOptions(cfg, ix, Options{Prefilter: true, Sorter: SortLSD, Scheduler: sched, Metrics: obs.Discard})
		baseline := e.SearchBatch(queries, 3)

		// Fire exactly one injected panic: the third sched.task hit.
		if err := faultinject.Enable("sched.task=panic#3", 1); err != nil {
			t.Fatal(err)
		}
		defer faultinject.Disable()
		br := e.SearchBatchCtx(context.Background(), queries, 3)
		faultinject.Disable()
		if br.Err != nil {
			t.Fatalf("batch error %v; an isolated panic must not fail the batch", br.Err)
		}
		if br.Sched.TasksPanicked != 1 {
			t.Fatalf("TasksPanicked = %d, want 1", br.Sched.TasksPanicked)
		}
		poisoned := -1
		for qi := range queries {
			if br.Completed[qi] {
				if br.QueryErrs[qi] != nil {
					t.Errorf("completed query %d carries error %v", qi, br.QueryErrs[qi])
				}
				continue
			}
			if poisoned >= 0 {
				t.Fatalf("queries %d and %d both poisoned by one panic", poisoned, qi)
			}
			poisoned = qi
			var perr *search.TaskPanicError
			if !errors.As(br.QueryErrs[qi], &perr) {
				t.Fatalf("query %d error %v, want TaskPanicError", qi, br.QueryErrs[qi])
			}
			if perr.Query != qi {
				t.Errorf("panic attributed to query %d, flagged on %d", perr.Query, qi)
			}
			if perr.Block < 0 || perr.Block >= len(ix.Blocks) {
				t.Errorf("panic block %d out of range", perr.Block)
			}
			if pv, ok := perr.Value.(faultinject.PanicValue); !ok || pv.Site != "sched.task" {
				t.Errorf("panic value %v, want injected PanicValue", perr.Value)
			}
			if len(perr.Stack) == 0 {
				t.Error("panic stack not captured")
			}
		}
		if poisoned < 0 {
			t.Fatal("no query poisoned; fault did not fire")
		}
		requireCompletedIdentical(t, "panic-isolation", &br, baseline)
	})
}

func TestPanicCountersStamped(t *testing.T) {
	cfg, ix, queries := world(t, 127, 100, 4, 200, 8192)
	reg := obs.NewRegistry()
	met := obs.NewPipelineMetrics(reg)
	e := NewWithOptions(cfg, ix, Options{Prefilter: true, Sorter: SortLSD, Metrics: met})
	if err := faultinject.Enable("sched.task=panic#2", 1); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disable()
	br := e.SearchBatchCtx(context.Background(), queries, 2)
	faultinject.Disable()
	if got := met.TasksPanicked.Value(); got != 1 {
		t.Errorf("tasks_panicked = %d, want 1", got)
	}
	if br.CompletedCount() != len(queries)-1 {
		t.Errorf("completed %d of %d", br.CompletedCount(), len(queries))
	}

	// Deadline + cancellation counters.
	if err := faultinject.Enable("core.hitdetect=delay:10ms", 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	br = e.SearchBatchCtx(ctx, queries, 2)
	faultinject.Disable()
	if !errors.Is(br.Err, search.ErrDeadline) {
		t.Fatalf("batch err %v", br.Err)
	}
	if met.DeadlineExceeded.Value() == 0 {
		t.Error("deadline_exceeded counter did not move")
	}
	if met.QueriesCancelled.Value() == 0 {
		t.Error("queries_cancelled counter did not move")
	}
	if met.QueriesCancelled.Value() != int64(len(queries))-int64(br.CompletedCount()) {
		t.Errorf("queries_cancelled = %d, incomplete = %d",
			met.QueriesCancelled.Value(), len(queries)-br.CompletedCount())
	}
}

func TestSearchCtxCancellation(t *testing.T) {
	cfg, ix, queries := world(t, 131, 100, 1, 200, 4096)
	e := NewWithOptions(cfg, ix, Options{Prefilter: true, Sorter: SortLSD, Metrics: obs.Discard})
	want := e.Search(0, queries[0])
	got, err := e.SearchCtx(context.Background(), 0, queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if renderResult(&got) != renderResult(&want) {
		t.Error("SearchCtx with background context differs from Search")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.SearchCtx(ctx, 0, queries[0]); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled SearchCtx returned %v", err)
	}
}
