// Package papar is a small declarative data-partitioning framework modeled
// on the authors' PaPar system (paper Section IV-D3, reference [33]):
// partitioning algorithms are expressed as pipelines of reusable operators
// (sort, scatter, coalesce) over key/index records, then executed either
// serially or distributed over the mpi substrate. The paper's sorted
// round-robin database partitioning — and the naive contiguous scheme it
// replaces — are both two-operator plans here, and the cluster code's
// partitioners are verified against them.
package papar

import (
	"fmt"
	"sort"

	"repro/internal/mpi"
)

// Record is one item to partition: an application-defined sort key (for
// database partitioning, the sequence length) and the item's index in the
// caller's collection.
type Record struct {
	Key   int64
	Index int
}

// Op is one pipeline stage: it consumes the per-partition record lists and
// produces new ones. A serial stage sees everything in partition 0.
type Op interface {
	Apply(parts [][]Record) ([][]Record, error)
	Name() string
}

// Plan is an ordered operator pipeline.
type Plan struct {
	ops []Op
}

// NewPlan creates an empty plan.
func NewPlan() *Plan { return &Plan{} }

// Add appends an operator.
func (p *Plan) Add(op Op) *Plan {
	p.ops = append(p.ops, op)
	return p
}

// SortByKey appends a stable ascending sort (within each partition).
func (p *Plan) SortByKey() *Plan { return p.Add(sortOp{}) }

// ScatterRoundRobin appends a scatter that deals records round-robin into n
// partitions — the paper's load-balancing partitioner.
func (p *Plan) ScatterRoundRobin(n int) *Plan { return p.Add(scatterRR{n}) }

// ScatterBlock appends a scatter that cuts the record stream into n
// contiguous chunks of near-equal count — the naive partitioner the paper's
// ablation compares against.
func (p *Plan) ScatterBlock(n int) *Plan { return p.Add(scatterBlock{n}) }

// ScatterByKeySum appends a greedy scatter that assigns each record to the
// partition with the smallest accumulated key sum — a longest-processing-
// time style balancer for heavy-tailed keys (records should be sorted
// descending first for the classic LPT bound; combine with SortByKey and
// Reverse).
func (p *Plan) ScatterByKeySum(n int) *Plan { return p.Add(scatterGreedy{n}) }

// Reverse appends a per-partition order reversal.
func (p *Plan) Reverse() *Plan { return p.Add(reverseOp{}) }

// Coalesce appends a stage that concatenates all partitions back into one,
// preserving partition order.
func (p *Plan) Coalesce() *Plan { return p.Add(coalesceOp{}) }

// Execute runs the plan serially over the given records.
func (p *Plan) Execute(records []Record) ([][]Record, error) {
	parts := [][]Record{append([]Record(nil), records...)}
	var err error
	for _, op := range p.ops {
		parts, err = op.Apply(parts)
		if err != nil {
			return nil, fmt.Errorf("papar: %s: %w", op.Name(), err)
		}
	}
	return parts, nil
}

// ExecuteMPI runs the plan at rank 0 of a world and scatters the final
// partitions so rank r returns partition r (other stages still execute at
// the root, which matches how the paper's partitioning runs ahead of the
// distributed search). The plan must produce exactly world-size partitions.
func ExecuteMPI(r *mpi.Rank, p *Plan, records []Record) ([]Record, error) {
	if r.ID() == 0 {
		parts, err := p.Execute(records)
		if err == nil && len(parts) != r.Size() {
			err = fmt.Errorf("papar: plan produced %d partitions for %d ranks", len(parts), r.Size())
		}
		if err != nil {
			// Deliver the error to every reachable rank; a dead receiver
			// cannot make the scatter worse than the error being delivered.
			for to := 1; to < r.Size(); to++ {
				_ = r.Send(to, err)
			}
			return nil, err
		}
		for to := 1; to < r.Size(); to++ {
			if serr := r.Send(to, parts[to]); serr != nil {
				return nil, fmt.Errorf("papar: scatter to rank %d: %w", to, serr)
			}
		}
		return parts[0], nil
	}
	msg, err := r.Recv(0)
	if err != nil {
		return nil, fmt.Errorf("papar: await partition: %w", err)
	}
	switch v := msg.(type) {
	case error:
		return nil, v
	case []Record:
		return v, nil
	}
	return nil, fmt.Errorf("papar: unexpected message type")
}

// --- operators ---

type sortOp struct{}

func (sortOp) Name() string { return "sort-by-key" }
func (sortOp) Apply(parts [][]Record) ([][]Record, error) {
	for i := range parts {
		sort.SliceStable(parts[i], func(a, b int) bool { return parts[i][a].Key < parts[i][b].Key })
	}
	return parts, nil
}

type reverseOp struct{}

func (reverseOp) Name() string { return "reverse" }
func (reverseOp) Apply(parts [][]Record) ([][]Record, error) {
	for i := range parts {
		p := parts[i]
		for l, r := 0, len(p)-1; l < r; l, r = l+1, r-1 {
			p[l], p[r] = p[r], p[l]
		}
	}
	return parts, nil
}

type coalesceOp struct{}

func (coalesceOp) Name() string { return "coalesce" }
func (coalesceOp) Apply(parts [][]Record) ([][]Record, error) {
	var all []Record
	for _, p := range parts {
		all = append(all, p...)
	}
	return [][]Record{all}, nil
}

type scatterRR struct{ n int }

func (s scatterRR) Name() string { return "scatter-round-robin" }
func (s scatterRR) Apply(parts [][]Record) ([][]Record, error) {
	if s.n <= 0 {
		return nil, fmt.Errorf("need positive partition count, got %d", s.n)
	}
	flat, err := flatten(parts)
	if err != nil {
		return nil, err
	}
	out := make([][]Record, s.n)
	for i, rec := range flat {
		out[i%s.n] = append(out[i%s.n], rec)
	}
	return out, nil
}

type scatterBlock struct{ n int }

func (s scatterBlock) Name() string { return "scatter-block" }
func (s scatterBlock) Apply(parts [][]Record) ([][]Record, error) {
	if s.n <= 0 {
		return nil, fmt.Errorf("need positive partition count, got %d", s.n)
	}
	flat, err := flatten(parts)
	if err != nil {
		return nil, err
	}
	out := make([][]Record, s.n)
	total := len(flat)
	for p := 0; p < s.n; p++ {
		lo, hi := p*total/s.n, (p+1)*total/s.n
		out[p] = append(out[p], flat[lo:hi]...)
	}
	return out, nil
}

type scatterGreedy struct{ n int }

func (s scatterGreedy) Name() string { return "scatter-by-key-sum" }
func (s scatterGreedy) Apply(parts [][]Record) ([][]Record, error) {
	if s.n <= 0 {
		return nil, fmt.Errorf("need positive partition count, got %d", s.n)
	}
	flat, err := flatten(parts)
	if err != nil {
		return nil, err
	}
	out := make([][]Record, s.n)
	sums := make([]int64, s.n)
	for _, rec := range flat {
		best := 0
		for p := 1; p < s.n; p++ {
			if sums[p] < sums[best] {
				best = p
			}
		}
		out[best] = append(out[best], rec)
		sums[best] += rec.Key
	}
	return out, nil
}

// flatten requires a single upstream partition (scatters re-partition from
// a single stream, as in PaPar's dataflow).
func flatten(parts [][]Record) ([]Record, error) {
	if len(parts) == 1 {
		return parts[0], nil
	}
	return nil, fmt.Errorf("scatter requires a single upstream partition (got %d); insert Coalesce", len(parts))
}

// --- convenience constructions used by the search system ---

// SortedRoundRobin is the paper's database partitioner (Section IV-D3):
// sort by key (sequence length) ascending, then deal round-robin.
func SortedRoundRobin(n int) *Plan { return NewPlan().SortByKey().ScatterRoundRobin(n) }

// Contiguous is the ablation partitioner: block scatter without sorting.
func Contiguous(n int) *Plan { return NewPlan().ScatterBlock(n) }

// IndexLists converts partition records to index lists.
func IndexLists(parts [][]Record) [][]int {
	out := make([][]int, len(parts))
	for i, p := range parts {
		out[i] = make([]int, len(p))
		for j, rec := range p {
			out[i][j] = rec.Index
		}
	}
	return out
}

// KeySums returns the per-partition key totals (the load metric).
func KeySums(parts [][]Record) []int64 {
	out := make([]int64, len(parts))
	for i, p := range parts {
		for _, rec := range p {
			out[i] += rec.Key
		}
	}
	return out
}

// FromLengths builds records whose keys are the given lengths.
func FromLengths(lengths []int) []Record {
	out := make([]Record, len(lengths))
	for i, l := range lengths {
		out[i] = Record{Key: int64(l), Index: i}
	}
	return out
}
