package papar

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/dbase"
	"repro/internal/mpi"
	"repro/internal/seqgen"
)

func lengthsFromProfile(n int, seed int64) []int {
	g := seqgen.New(seqgen.UniprotProfile(), seed)
	out := make([]int, n)
	for i := range out {
		out[i] = g.Length()
	}
	return out
}

func TestSortedRoundRobinMatchesDbase(t *testing.T) {
	// The paper's partitioner expressed as a plan must agree exactly with
	// the direct implementation in dbase (sort by length, renumber, deal).
	g := seqgen.New(seqgen.UniprotProfile(), 77)
	seqs := g.Database(203)
	db := dbase.New(seqs)
	db.SortByLength()
	const n = 7
	want := db.Partitions(n)

	lengths := make([]int, len(seqs))
	for i, s := range seqs {
		lengths[i] = len(s)
	}
	parts, err := SortedRoundRobin(n).Execute(FromLengths(lengths))
	if err != nil {
		t.Fatal(err)
	}
	got := IndexLists(parts)
	// dbase indices refer to the *sorted* database; papar indices refer to
	// the original order. Compare by the sequence lengths assigned to each
	// partition, in order — identical plans assign identical length
	// multisets in identical positions (both sorts are stable).
	for p := 0; p < n; p++ {
		if len(got[p]) != len(want[p]) {
			t.Fatalf("partition %d: %d vs %d records", p, len(got[p]), len(want[p]))
		}
		for j := range got[p] {
			gl := lengths[got[p][j]]
			wl := db.Seqs[want[p][j]].Len()
			if gl != wl {
				t.Fatalf("partition %d item %d: length %d vs %d", p, j, gl, wl)
			}
		}
	}
}

func TestPartitionCoverageProperty(t *testing.T) {
	check := func(seed int64, nRaw, partsRaw uint8) bool {
		n := int(nRaw)%100 + 1
		parts := int(partsRaw)%8 + 1
		lengths := lengthsFromProfile(n, seed)
		for _, plan := range []*Plan{
			SortedRoundRobin(parts),
			Contiguous(parts),
			NewPlan().SortByKey().Reverse().ScatterByKeySum(parts),
		} {
			out, err := plan.Execute(FromLengths(lengths))
			if err != nil {
				return false
			}
			if len(out) != parts {
				return false
			}
			seen := make([]bool, n)
			for _, p := range out {
				for _, rec := range p {
					if rec.Index < 0 || rec.Index >= n || seen[rec.Index] {
						return false
					}
					seen[rec.Index] = true
				}
			}
			for _, s := range seen {
				if !s {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBalanceOrdering(t *testing.T) {
	// On heavy-tailed lengths: greedy <= round-robin <= contiguous spread.
	lengths := lengthsFromProfile(1000, 5)
	spread := func(plan *Plan) float64 {
		parts, err := plan.Execute(FromLengths(lengths))
		if err != nil {
			t.Fatal(err)
		}
		sums := KeySums(parts)
		min, max := sums[0], sums[0]
		for _, s := range sums {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		return float64(max) / float64(min)
	}
	rr := spread(SortedRoundRobin(16))
	contig := spread(NewPlan().SortByKey().ScatterBlock(16))
	greedy := spread(NewPlan().SortByKey().Reverse().ScatterByKeySum(16))
	if rr > 1.15 {
		t.Errorf("round-robin spread %.3f, want near 1", rr)
	}
	if greedy > rr*1.01 {
		t.Errorf("greedy spread %.3f worse than round-robin %.3f", greedy, rr)
	}
	if contig < rr {
		t.Errorf("contiguous-on-sorted spread %.3f unexpectedly better than round-robin %.3f", contig, rr)
	}
}

func TestScatterRequiresSingleUpstream(t *testing.T) {
	plan := NewPlan().ScatterRoundRobin(2).ScatterRoundRobin(2)
	if _, err := plan.Execute(FromLengths([]int{1, 2, 3})); err == nil {
		t.Error("chained scatter without Coalesce accepted")
	}
	plan = NewPlan().ScatterRoundRobin(2).Coalesce().ScatterBlock(3)
	if _, err := plan.Execute(FromLengths([]int{1, 2, 3, 4, 5})); err != nil {
		t.Errorf("coalesced rescatter failed: %v", err)
	}
}

func TestBadPartitionCounts(t *testing.T) {
	for _, plan := range []*Plan{
		NewPlan().ScatterRoundRobin(0),
		NewPlan().ScatterBlock(-1),
		NewPlan().ScatterByKeySum(0),
	} {
		if _, err := plan.Execute(FromLengths([]int{1})); err == nil {
			t.Error("accepted non-positive partition count")
		}
	}
}

func TestExecuteMPI(t *testing.T) {
	lengths := lengthsFromProfile(40, 9)
	const ranks = 4
	world, werr := mpi.NewWorld(ranks)
	if werr != nil {
		t.Fatal(werr)
	}
	var mu sync.Mutex
	got := make([][]Record, ranks)
	world.Run(func(r *mpi.Rank) {
		var recs []Record
		if r.ID() == 0 {
			recs = FromLengths(lengths)
		}
		part, err := ExecuteMPI(r, SortedRoundRobin(ranks), recs)
		if err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
			return
		}
		mu.Lock()
		got[r.ID()] = part
		mu.Unlock()
	})
	want, err := SortedRoundRobin(ranks).Execute(FromLengths(lengths))
	if err != nil {
		t.Fatal(err)
	}
	for p := range want {
		if len(got[p]) != len(want[p]) {
			t.Fatalf("rank %d: %d vs %d records", p, len(got[p]), len(want[p]))
		}
		for j := range want[p] {
			if got[p][j] != want[p][j] {
				t.Fatalf("rank %d record %d differs", p, j)
			}
		}
	}
}

func TestExecuteMPIPlanSizeMismatch(t *testing.T) {
	world, werr := mpi.NewWorld(3)
	if werr != nil {
		t.Fatal(werr)
	}
	world.Run(func(r *mpi.Rank) {
		var recs []Record
		if r.ID() == 0 {
			recs = FromLengths([]int{1, 2, 3})
		}
		if _, err := ExecuteMPI(r, SortedRoundRobin(2), recs); err == nil {
			t.Errorf("rank %d: mismatched plan accepted", r.ID())
		}
	})
}
