package dbindex

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/alphabet"
	"repro/internal/dbase"
)

// Index file format (little-endian):
//
//	magic "MUIX1\n"
//	int64 blockResidues
//	uvarint numBlocks
//	per block:
//	  uvarint start, end, residues, maxLen, offBits
//	  offsets: NumWords+1 little-endian uint32 deltas (uvarint-encoded)
//	  uvarint numPositions, then raw little-endian uint32 positions
//
// The database itself is serialized separately (dbase.WriteTo); on load the
// caller re-attaches it. The neighbor table is always rebuilt from the
// scoring matrix (cheap) rather than stored.

const ixMagic = "MUIX1\n"

// WriteTo serializes the index structure (not the database or neighbor table).
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var n int64
	var scratch [binary.MaxVarintLen64]byte
	write := func(p []byte) error {
		m, err := bw.Write(p)
		n += int64(m)
		return err
	}
	writeUvarint := func(v uint64) error {
		return write(scratch[:binary.PutUvarint(scratch[:], v)])
	}
	if err := write([]byte(ixMagic)); err != nil {
		return n, err
	}
	binary.LittleEndian.PutUint64(scratch[:8], uint64(ix.BlockResidues))
	if err := write(scratch[:8]); err != nil {
		return n, err
	}
	if err := writeUvarint(uint64(len(ix.Blocks))); err != nil {
		return n, err
	}
	for _, b := range ix.Blocks {
		for _, v := range []uint64{
			uint64(b.Block.Start), uint64(b.Block.End),
			uint64(b.Block.Residues), uint64(b.Block.MaxLen), uint64(b.OffBits),
		} {
			if err := writeUvarint(v); err != nil {
				return n, err
			}
		}
		prev := int32(0)
		for _, off := range b.offsets {
			if err := writeUvarint(uint64(off - prev)); err != nil {
				return n, err
			}
			prev = off
		}
		if err := writeUvarint(uint64(len(b.flat))); err != nil {
			return n, err
		}
		var buf [4]byte
		for _, p := range b.flat {
			binary.LittleEndian.PutUint32(buf[:], p)
			if err := write(buf[:]); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// ReadFrom deserializes an index written by WriteTo and attaches it to db
// (which must be the same length-sorted database the index was built from).
func ReadFrom(r io.Reader, db *dbase.DB) (*Index, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(ixMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("dbindex: reading magic: %w", err)
	}
	if string(magic) != ixMagic {
		return nil, fmt.Errorf("dbindex: bad magic %q", magic)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("dbindex: reading header: %w", err)
	}
	ix := &Index{DB: db, BlockResidues: int64(binary.LittleEndian.Uint64(hdr[:]))}
	numBlocks, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("dbindex: block count: %w", err)
	}
	if numBlocks > 1<<24 {
		return nil, fmt.Errorf("dbindex: implausible block count %d", numBlocks)
	}
	readUvarint := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("dbindex: %s: %w", what, err)
		}
		return v, nil
	}
	for i := uint64(0); i < numBlocks; i++ {
		var vals [5]uint64
		for j, what := range []string{"start", "end", "residues", "maxLen", "offBits"} {
			if vals[j], err = readUvarint(what); err != nil {
				return nil, err
			}
		}
		b := &BlockIndex{
			Block: dbase.Block{
				Start: int(vals[0]), End: int(vals[1]),
				Residues: int64(vals[2]), MaxLen: int(vals[3]),
			},
			OffBits: uint32(vals[4]),
			offsets: make([]int32, alphabet.NumWords+1),
		}
		if db != nil && (b.Block.End > db.NumSeqs() || b.Block.Start > b.Block.End) {
			return nil, fmt.Errorf("dbindex: block %d range [%d,%d) invalid for db with %d seqs",
				i, b.Block.Start, b.Block.End, db.NumSeqs())
		}
		prev := int32(0)
		for w := range b.offsets {
			d, err := readUvarint("offset delta")
			if err != nil {
				return nil, err
			}
			prev += int32(d)
			b.offsets[w] = prev
		}
		numPos, err := readUvarint("position count")
		if err != nil {
			return nil, err
		}
		if numPos > 1<<31 {
			return nil, fmt.Errorf("dbindex: implausible position count %d", numPos)
		}
		if int32(numPos) != b.offsets[alphabet.NumWords] {
			return nil, fmt.Errorf("dbindex: block %d position count %d does not match offsets (%d)",
				i, numPos, b.offsets[alphabet.NumWords])
		}
		b.flat = make([]uint32, numPos)
		raw := make([]byte, 4*1024)
		read := 0
		for read < int(numPos) {
			chunk := int(numPos) - read
			if chunk > len(raw)/4 {
				chunk = len(raw) / 4
			}
			if _, err := io.ReadFull(br, raw[:chunk*4]); err != nil {
				return nil, fmt.Errorf("dbindex: block %d positions: %w", i, err)
			}
			for j := 0; j < chunk; j++ {
				b.flat[read+j] = binary.LittleEndian.Uint32(raw[j*4:])
			}
			read += chunk
		}
		ix.Blocks = append(ix.Blocks, b)
	}
	return ix, nil
}
