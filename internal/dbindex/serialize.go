package dbindex

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/alphabet"
	"repro/internal/dbase"
)

// Index file format (little-endian):
//
//	magic "MUIX1\n"
//	int64 blockResidues
//	uvarint numBlocks
//	per block:
//	  uvarint start, end, residues, maxLen, offBits
//	  offsets: NumWords+1 little-endian uint32 deltas (uvarint-encoded)
//	  uvarint numPositions, then raw little-endian uint32 positions
//
// The database itself is serialized separately (dbase.WriteTo); on load the
// caller re-attaches it. The neighbor table is always rebuilt from the
// scoring matrix (cheap) rather than stored. Versioning and CRC32 checksums
// are layered on top by the blast container, which carries this stream as
// one section payload.

const ixMagic = "MUIX1\n"

// WriteTo serializes the index structure (not the database or neighbor table).
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var n int64
	var scratch [binary.MaxVarintLen64]byte
	write := func(p []byte) error {
		m, err := bw.Write(p)
		n += int64(m)
		return err
	}
	writeUvarint := func(v uint64) error {
		return write(scratch[:binary.PutUvarint(scratch[:], v)])
	}
	if err := write([]byte(ixMagic)); err != nil {
		return n, err
	}
	binary.LittleEndian.PutUint64(scratch[:8], uint64(ix.BlockResidues))
	if err := write(scratch[:8]); err != nil {
		return n, err
	}
	if err := writeUvarint(uint64(len(ix.Blocks))); err != nil {
		return n, err
	}
	for _, b := range ix.Blocks {
		for _, v := range []uint64{
			uint64(b.Block.Start), uint64(b.Block.End),
			uint64(b.Block.Residues), uint64(b.Block.MaxLen), uint64(b.OffBits),
		} {
			if err := writeUvarint(v); err != nil {
				return n, err
			}
		}
		prev := int32(0)
		for _, off := range b.offsets {
			if err := writeUvarint(uint64(off - prev)); err != nil {
				return n, err
			}
			prev = off
		}
		if err := writeUvarint(uint64(len(b.flat))); err != nil {
			return n, err
		}
		var buf [4]byte
		for _, p := range b.flat {
			binary.LittleEndian.PutUint32(buf[:], p)
			if err := write(buf[:]); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// ReadFrom deserializes an index written by WriteTo and attaches it to db
// (which must be the same length-sorted database the index was built from).
// The stream must contain exactly one serialized index: trailing bytes are
// an error.
func ReadFrom(r io.Reader, db *dbase.DB) (*Index, error) {
	return ReadFromLimit(r, db, 1<<62)
}

// ReadFromLimit is ReadFrom with an allocation budget: lengths claimed by
// the stream are checked against maxBytes (the section size the caller knows
// from its framing) before allocation, and every decoded structure is bounds-
// checked — block ranges against db, offsets for monotonicity, and, when db
// is non-nil, every packed position against the sequence it points into — so
// a corrupt stream yields an error, never a panic or an OOM-scale allocation.
func ReadFromLimit(r io.Reader, db *dbase.DB, maxBytes int64) (*Index, error) {
	if maxBytes < 0 {
		return nil, fmt.Errorf("dbindex: negative read limit %d", maxBytes)
	}
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(ixMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("dbindex: reading magic: %w", err)
	}
	if string(magic) != ixMagic {
		return nil, fmt.Errorf("dbindex: bad magic %q", magic)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("dbindex: reading header: %w", err)
	}
	ix := &Index{DB: db, BlockResidues: int64(binary.LittleEndian.Uint64(hdr[:]))}
	numBlocks, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("dbindex: block count: %w", err)
	}
	// Every block carries NumWords+1 offset deltas of at least one byte, so
	// the block count can never exceed the stream budget divided by that.
	if numBlocks > 1<<24 || int64(numBlocks) > maxBytes/int64(alphabet.NumWords)+1 {
		return nil, fmt.Errorf("dbindex: implausible block count %d", numBlocks)
	}
	readUvarint := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("dbindex: %s: %w", what, err)
		}
		return v, nil
	}
	prevEnd := 0
	for i := uint64(0); i < numBlocks; i++ {
		var vals [5]uint64
		for j, what := range []string{"start", "end", "residues", "maxLen", "offBits"} {
			if vals[j], err = readUvarint(what); err != nil {
				return nil, err
			}
		}
		for j, v := range vals {
			if v > 1<<62 {
				return nil, fmt.Errorf("dbindex: block %d field %d out of range (%d)", i, j, v)
			}
		}
		b := &BlockIndex{
			Block: dbase.Block{
				Start: int(vals[0]), End: int(vals[1]),
				Residues: int64(vals[2]), MaxLen: int(vals[3]),
			},
			OffBits: uint32(vals[4]),
			offsets: make([]int32, alphabet.NumWords+1),
		}
		if b.Block.Start > b.Block.End || b.Block.Start < prevEnd {
			return nil, fmt.Errorf("dbindex: block %d range [%d,%d) overlaps or is inverted (previous end %d)",
				i, b.Block.Start, b.Block.End, prevEnd)
		}
		if db != nil && b.Block.End > db.NumSeqs() {
			return nil, fmt.Errorf("dbindex: block %d range [%d,%d) invalid for db with %d seqs",
				i, b.Block.Start, b.Block.End, db.NumSeqs())
		}
		if b.OffBits < 1 || b.OffBits > 31 {
			return nil, fmt.Errorf("dbindex: block %d invalid offset width %d bits", i, b.OffBits)
		}
		prevEnd = b.Block.End
		prev := int64(0)
		for w := range b.offsets {
			d, err := readUvarint("offset delta")
			if err != nil {
				return nil, err
			}
			prev += int64(d)
			if prev > 1<<31-1 {
				return nil, fmt.Errorf("dbindex: block %d offset overflow at word %d", i, w)
			}
			b.offsets[w] = int32(prev)
		}
		numPos, err := readUvarint("position count")
		if err != nil {
			return nil, err
		}
		// Positions are stored raw at 4 bytes each; a claim past the stream
		// budget cannot be honest.
		if numPos > 1<<31 || int64(numPos) > maxBytes/4+1 {
			return nil, fmt.Errorf("dbindex: implausible position count %d", numPos)
		}
		if int64(numPos) != int64(b.offsets[alphabet.NumWords]) {
			return nil, fmt.Errorf("dbindex: block %d position count %d does not match offsets (%d)",
				i, numPos, b.offsets[alphabet.NumWords])
		}
		b.flat = make([]uint32, numPos)
		raw := make([]byte, 4*1024)
		read := 0
		for read < int(numPos) {
			chunk := int(numPos) - read
			if chunk > len(raw)/4 {
				chunk = len(raw) / 4
			}
			if _, err := io.ReadFull(br, raw[:chunk*4]); err != nil {
				return nil, fmt.Errorf("dbindex: block %d positions: %w", i, err)
			}
			for j := 0; j < chunk; j++ {
				b.flat[read+j] = binary.LittleEndian.Uint32(raw[j*4:])
			}
			read += chunk
		}
		if db != nil {
			if err := b.validatePositions(db); err != nil {
				return nil, fmt.Errorf("dbindex: block %d: %w", i, err)
			}
		}
		ix.Blocks = append(ix.Blocks, b)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		if err != nil {
			return nil, fmt.Errorf("dbindex: after last block: %w", err)
		}
		return nil, fmt.Errorf("dbindex: trailing garbage after last block")
	}
	return ix, nil
}

// validatePositions checks that every packed position decodes to a real word
// start within the block: local sequence id in range, offset leaving room
// for a full W-letter word. The search hot path indexes sequences with these
// values unchecked, so a corrupt position that slipped past the container
// checksum must be caught here rather than panic mid-search.
func (b *BlockIndex) validatePositions(db *dbase.DB) error {
	numSeqs := b.Block.NumSeqs()
	for _, p := range b.flat {
		local, off := b.Decode(p)
		if local >= numSeqs {
			return fmt.Errorf("position %#x: local seq %d out of range (%d seqs)", p, local, numSeqs)
		}
		if off+alphabet.W > len(db.Seqs[b.Block.Start+local].Data) {
			return fmt.Errorf("position %#x: offset %d past end of %d-residue sequence",
				p, off, len(db.Seqs[b.Block.Start+local].Data))
		}
	}
	return nil
}
