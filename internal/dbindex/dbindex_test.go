package dbindex

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/dbase"
	"repro/internal/matrix"
	"repro/internal/neighbor"
	"repro/internal/seqgen"
)

var (
	nbrOnce sync.Once
	nbrTbl  *neighbor.Table
)

func nbr() *neighbor.Table {
	nbrOnce.Do(func() { nbrTbl = neighbor.Build(matrix.Blosum62, neighbor.DefaultThreshold) })
	return nbrTbl
}

func testIndex(t *testing.T, nSeqs int, blockResidues int64) *Index {
	t.Helper()
	g := seqgen.New(seqgen.UniprotProfile(), 77)
	db := dbase.New(g.Database(nSeqs))
	ix, err := Build(db, nbr(), blockResidues)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestEveryPositionIndexed(t *testing.T) {
	ix := testIndex(t, 80, 8192)
	// Total positions must equal the number of words across all sequences.
	want := 0
	for _, s := range ix.DB.Seqs {
		if n := len(s.Data) - alphabet.W + 1; n > 0 {
			want += n
		}
	}
	if got := ix.NumPositions(); got != want {
		t.Errorf("NumPositions = %d, want %d", got, want)
	}
}

func TestPositionsDecodeToMatchingWords(t *testing.T) {
	ix := testIndex(t, 50, 8192)
	for _, b := range ix.Blocks {
		for w := alphabet.Word(0); w < alphabet.NumWords; w++ {
			for _, packed := range b.Positions(w) {
				local, sOff := b.Decode(packed)
				seq := b.Seq(ix.DB, local)
				if got := alphabet.WordAt(seq.Data, sOff); got != w {
					t.Fatalf("position (%d,%d) under word %s has word %s", local, sOff, w, got)
				}
			}
		}
	}
}

func TestPositionsCompleteAndOrdered(t *testing.T) {
	ix := testIndex(t, 50, 8192)
	// Every word occurrence in every sequence must appear exactly once, and
	// positions under a word must be (seqLocal, sOff)-ascending.
	for _, b := range ix.Blocks {
		seen := map[[2]int]bool{}
		for w := alphabet.Word(0); w < alphabet.NumWords; w++ {
			ps := b.Positions(w)
			for i, packed := range ps {
				if i > 0 && ps[i] <= ps[i-1] {
					t.Fatalf("word %s positions not strictly increasing", w)
				}
				local, sOff := b.Decode(packed)
				key := [2]int{local, sOff}
				if seen[key] {
					t.Fatalf("position %v indexed twice", key)
				}
				seen[key] = true
			}
		}
		for s := b.Block.Start; s < b.Block.End; s++ {
			seq := ix.DB.Seqs[s]
			for off := 0; off+alphabet.W <= len(seq.Data); off++ {
				if !seen[[2]int{s - b.Block.Start, off}] {
					t.Fatalf("position (seq %d, off %d) missing from index", s, off)
				}
			}
		}
	}
}

func TestBlocksRespectResidueCap(t *testing.T) {
	ix := testIndex(t, 200, 4096)
	if len(ix.Blocks) < 2 {
		t.Fatalf("expected multiple blocks, got %d", len(ix.Blocks))
	}
	for _, b := range ix.Blocks {
		if b.Block.Residues > 4096 && b.Block.NumSeqs() > 1 {
			t.Errorf("block %+v exceeds cap", b.Block)
		}
	}
}

func TestDatabaseSortedDuringBuild(t *testing.T) {
	g := seqgen.New(seqgen.UniprotProfile(), 3)
	db := dbase.New(g.Database(60))
	if _, err := Build(db, nbr(), 1<<20); err != nil {
		t.Fatal(err)
	}
	if !db.IsSortedByLength() {
		t.Error("Build did not length-sort the database")
	}
}

func TestBuildRejectsBadBlockSize(t *testing.T) {
	db := dbase.New([][]alphabet.Code{make([]alphabet.Code, 10)})
	if _, err := Build(db, nbr(), 0); err == nil {
		t.Error("accepted zero block size")
	}
}

func TestTwoLevelSmallerThanExpanded(t *testing.T) {
	ix := testIndex(t, 100, 1<<20)
	if ix.SizeBytes() >= ix.ExpandedSizeBytes() {
		t.Errorf("two-level index (%d B) not smaller than neighbor-expanded (%d B)",
			ix.SizeBytes(), ix.ExpandedSizeBytes())
	}
	// The reduction should be roughly the average neighbor count (tens of x).
	ratio := float64(ix.ExpandedSizeBytes()) / float64(ix.SizeBytes())
	if ratio < 3 {
		t.Errorf("expansion ratio %.1f, expected well above 3", ratio)
	}
}

func TestOptimalBlockResidues(t *testing.T) {
	// Paper example: 30MB L3, 12 threads -> b = 30MB/25 = 1.2MB -> ~300K
	// positions.
	got := OptimalBlockResidues(30<<20, 12)
	if got < 250_000 || got > 350_000 {
		t.Errorf("OptimalBlockResidues(30MB,12) = %d, want ~300K", got)
	}
	if OptimalBlockResidues(1024, 64) < 1024 {
		t.Error("clamp to minimum failed")
	}
	if OptimalBlockResidues(30<<20, 0) <= 0 {
		t.Error("zero threads not handled")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	ix := testIndex(t, 60, 8192)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf, ix.DB)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Blocks) != len(ix.Blocks) || got.BlockResidues != ix.BlockResidues {
		t.Fatalf("shape mismatch: %d blocks vs %d", len(got.Blocks), len(ix.Blocks))
	}
	for i, b := range ix.Blocks {
		gb := got.Blocks[i]
		if gb.Block != b.Block || gb.OffBits != b.OffBits {
			t.Fatalf("block %d metadata mismatch: %+v vs %+v", i, gb.Block, b.Block)
		}
		if len(gb.flat) != len(b.flat) {
			t.Fatalf("block %d position count mismatch", i)
		}
		for j := range b.flat {
			if gb.flat[j] != b.flat[j] {
				t.Fatalf("block %d position %d mismatch", i, j)
			}
		}
		for w := range b.offsets {
			if gb.offsets[w] != b.offsets[w] {
				t.Fatalf("block %d offset %d mismatch", i, w)
			}
		}
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte("junk")), nil); err == nil {
		t.Error("accepted garbage")
	}
	if _, err := ReadFrom(bytes.NewReader([]byte(ixMagic)), nil); err == nil {
		t.Error("accepted truncated stream")
	}
}

func TestReadFromValidatesBlockRange(t *testing.T) {
	ix := testIndex(t, 30, 8192)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	tiny := dbase.New([][]alphabet.Code{make([]alphabet.Code, 10)})
	if _, err := ReadFrom(&buf, tiny); err == nil {
		t.Error("accepted index with block ranges beyond the attached db")
	}
}

func TestEmptyDatabase(t *testing.T) {
	db := dbase.New(nil)
	ix, err := Build(db, nbr(), 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.Blocks) != 0 || ix.NumPositions() != 0 {
		t.Errorf("empty db produced %d blocks", len(ix.Blocks))
	}
}

func TestBuildParallelMatchesSerial(t *testing.T) {
	mk := func(threads int) *Index {
		g := seqgen.New(seqgen.UniprotProfile(), 88)
		db := dbase.New(g.Database(150))
		ix, err := BuildParallel(db, nbr(), 4096, threads)
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	serial := mk(1)
	par := mk(4)
	if len(serial.Blocks) != len(par.Blocks) {
		t.Fatalf("block counts differ: %d vs %d", len(serial.Blocks), len(par.Blocks))
	}
	for i := range serial.Blocks {
		a, b := serial.Blocks[i], par.Blocks[i]
		if a.Block != b.Block || a.OffBits != b.OffBits || len(a.flat) != len(b.flat) {
			t.Fatalf("block %d metadata differs", i)
		}
		for j := range a.flat {
			if a.flat[j] != b.flat[j] {
				t.Fatalf("block %d position %d differs", i, j)
			}
		}
	}
}
