// Package dbindex builds the blocked database index of Section III: the
// length-sorted database is cut into blocks of bounded residue count, and
// each block gets a lookup table from every W-letter word to the packed
// (local sequence id, subject offset) positions where the word occurs.
//
// Two properties distinguish it from earlier database indexes and give it
// NCBI-identical sensitivity:
//
//   - overlapping words: every position of every subject sequence is
//     indexed, not a sampled or non-overlapping subset;
//   - neighboring words via a two-level structure: the index stores only
//     exact-word positions, and hit detection consults the shared
//     neighbor.Table to visit all neighbors of each query word (Fig 3b),
//     avoiding the enormous duplication of expanding neighbors into the
//     table itself.
//
// Positions are packed into 32-bit integers (local sequence id in the high
// bits, subject offset in the low bits), matching the paper's "each
// position is stored in 32-bit Integer" accounting in Section V-B.
package dbindex

import (
	"fmt"

	"repro/internal/alphabet"
	"repro/internal/dbase"
	"repro/internal/neighbor"
	"repro/internal/parallel"
)

// BlockIndex is the lookup table for one index block.
type BlockIndex struct {
	Block   dbase.Block
	OffBits uint32 // width of the subject-offset field in packed positions
	// CSR layout: packed positions for word w are flat[offsets[w]:offsets[w+1]].
	offsets []int32
	flat    []uint32
}

// Index is the complete blocked database index.
type Index struct {
	DB        *dbase.DB
	Neighbors *neighbor.Table
	Blocks    []*BlockIndex
	// BlockResidues is the residue cap each block was built with.
	BlockResidues int64
}

// Build length-sorts db in place (the paper sorts during index construction)
// and builds one BlockIndex per block of at most blockResidues residues,
// using all cores. The result is deterministic: blocks are independent and
// land at fixed positions regardless of scheduling.
func Build(db *dbase.DB, nbr *neighbor.Table, blockResidues int64) (*Index, error) {
	return BuildParallel(db, nbr, blockResidues, 0)
}

// BuildParallel is Build with an explicit worker count (<= 0 means
// GOMAXPROCS; 1 builds serially).
func BuildParallel(db *dbase.DB, nbr *neighbor.Table, blockResidues int64, threads int) (*Index, error) {
	if blockResidues <= 0 {
		return nil, fmt.Errorf("dbindex: blockResidues must be positive, got %d", blockResidues)
	}
	db.SortByLength()
	blocks := db.Blocks(blockResidues)
	ix := &Index{DB: db, Neighbors: nbr, BlockResidues: blockResidues, Blocks: make([]*BlockIndex, len(blocks))}
	errs := make([]error, len(blocks))
	parallel.For(len(blocks), threads, func(i int) {
		bi, err := buildBlock(db, blocks[i])
		if err != nil {
			errs[i] = fmt.Errorf("dbindex: block %d: %w", i, err)
			return
		}
		ix.Blocks[i] = bi
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return ix, nil
}

func buildBlock(db *dbase.DB, b dbase.Block) (*BlockIndex, error) {
	offBits := uint32(bitsFor(b.MaxLen))
	seqBits := uint32(bitsFor(b.NumSeqs()))
	if offBits+seqBits > 32 {
		return nil, fmt.Errorf("packed position needs %d bits (%d seqs, max len %d); use smaller blocks",
			offBits+seqBits, b.NumSeqs(), b.MaxLen)
	}
	bi := &BlockIndex{Block: b, OffBits: offBits, offsets: make([]int32, alphabet.NumWords+1)}
	counts := make([]int32, alphabet.NumWords)
	total := int32(0)
	for s := b.Start; s < b.End; s++ {
		alphabet.Words(db.Seqs[s].Data, func(_ int, w alphabet.Word) {
			counts[w]++
			total++
		})
	}
	sum := int32(0)
	for w := 0; w < alphabet.NumWords; w++ {
		bi.offsets[w] = sum
		sum += counts[w]
	}
	bi.offsets[alphabet.NumWords] = sum
	bi.flat = make([]uint32, total)
	next := make([]int32, alphabet.NumWords)
	copy(next, bi.offsets[:alphabet.NumWords])
	for s := b.Start; s < b.End; s++ {
		local := uint32(s-b.Start) << offBits
		alphabet.Words(db.Seqs[s].Data, func(off int, w alphabet.Word) {
			bi.flat[next[w]] = local | uint32(off)
			next[w]++
		})
	}
	return bi, nil
}

func bitsFor(n int) int {
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	if bits == 0 {
		bits = 1
	}
	return bits
}

// Positions returns the packed positions of word w in this block, ordered
// by (local sequence id, subject offset). The slice is a view; callers must
// not modify it.
func (b *BlockIndex) Positions(w alphabet.Word) []uint32 {
	return b.flat[b.offsets[w]:b.offsets[w+1]]
}

// Base returns the flat-array index of the first position stored under w,
// used by the cache simulator to map lookups to index addresses.
func (b *BlockIndex) Base(w alphabet.Word) int32 { return b.offsets[w] }

// Decode unpacks a position into its local sequence id and subject offset.
func (b *BlockIndex) Decode(packed uint32) (seqLocal, sOff int) {
	return int(packed >> b.OffBits), int(packed & (1<<b.OffBits - 1))
}

// Seq returns the subject sequence for a local id within this block.
func (b *BlockIndex) Seq(db *dbase.DB, seqLocal int) *dbase.Sequence {
	return &db.Seqs[b.Block.Start+seqLocal]
}

// NumPositions returns the number of indexed positions in the block.
func (b *BlockIndex) NumPositions() int { return len(b.flat) }

// SizeBytes estimates the block's memory footprint: the position array plus
// the per-word offset array. This is the quantity swept in Fig 8.
func (b *BlockIndex) SizeBytes() int64 {
	return int64(len(b.flat))*4 + int64(len(b.offsets))*4
}

// NumPositions returns the total positions across all blocks, which equals
// the number of indexable words in the database.
func (ix *Index) NumPositions() int {
	n := 0
	for _, b := range ix.Blocks {
		n += b.NumPositions()
	}
	return n
}

// SizeBytes estimates the whole index's memory footprint, excluding the
// shared neighbor table (report that separately via Neighbors.SizeBytes).
func (ix *Index) SizeBytes() int64 {
	var n int64
	for _, b := range ix.Blocks {
		n += b.SizeBytes()
	}
	return n
}

// ExpandedSizeBytes estimates what the index would cost if neighbor
// positions were expanded into the table the way the query index does it
// (the design the two-level structure avoids, Section III): every position
// of word w is replicated under each of w's neighbors.
func (ix *Index) ExpandedSizeBytes() int64 {
	var entries int64
	for _, b := range ix.Blocks {
		for w := alphabet.Word(0); w < alphabet.NumWords; w++ {
			n := int64(len(b.Positions(w)))
			if n > 0 {
				entries += n * int64(ix.Neighbors.NumNeighbors(w))
			}
		}
	}
	return entries*4 + int64(len(ix.Blocks))*int64(alphabet.NumWords+1)*4
}

// OptimalBlockResidues applies the paper's block sizing rule (Section V-B):
// the index block and the per-thread last-hit arrays should together fit in
// the shared L3 cache. With t threads and block size b bytes the last-hit
// arrays take ~2·b·t bytes, so b = L3 / (2t + 1). The return value is in
// residues (positions), at 4 bytes each, clamped to a sane minimum.
func OptimalBlockResidues(l3Bytes int64, threads int) int64 {
	if threads < 1 {
		threads = 1
	}
	b := l3Bytes / int64(2*threads+1)
	residues := b / 4
	if residues < 1024 {
		residues = 1024
	}
	return residues
}
