package dbindex

import (
	"bytes"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/dbase"
	"repro/internal/seqgen"
)

// FuzzReadFrom: arbitrary bytes must never panic the index deserializer or
// drive an allocation much larger than the input, and anything it accepts
// must satisfy the invariants the unchecked search hot path depends on
// (block ranges inside the database, every packed position decoding to a
// real word start).
func FuzzReadFrom(f *testing.F) {
	g := seqgen.New(seqgen.UniprotProfile(), 5)
	db := dbase.New(g.Database(6))
	ix, err := Build(db, nbr(), 512)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(ixMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadFromLimit(bytes.NewReader(data), db, int64(len(data)))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		for _, b := range got.Blocks {
			if b.Block.Start < 0 || b.Block.End > db.NumSeqs() || b.Block.Start > b.Block.End {
				t.Fatalf("accepted block range [%d,%d) for db with %d seqs", b.Block.Start, b.Block.End, db.NumSeqs())
			}
			for w := alphabet.Word(0); w < alphabet.NumWords; w++ {
				for _, p := range b.Positions(w) {
					local, off := b.Decode(p)
					seq := b.Seq(db, local) // must not panic
					if off+alphabet.W > seq.Len() {
						t.Fatalf("accepted position %#x past end of %d-residue sequence", p, seq.Len())
					}
				}
			}
		}
	})
}
