// Package capsim is a discrete-event capacity model of the serving tier:
// arrival → bounded admission queue → token-gated service (optionally an
// N-way shard scatter whose duration is the slowest shard plus a merge) →
// departure, with the daemon's exact backpressure semantics — a request
// arriving to a full queue is shed immediately, the per-request deadline
// covers queue wait (a request expired at dequeue times out without ever
// consuming a run token), and a service that would outlive its remaining
// deadline is cut at the deadline, as the real engine's between-task
// cancellation does.
//
// Service times are not analytical: they are empirical distributions fitted
// from the workload records the daemons emit (internal/reqtrace), so the
// model predicts p50/p95/p99 latency and shed rate as a function of arrival
// rate, queue bound, concurrency, and shard count for *this* database on
// *this* machine. Validate against a replayed overload run before trusting a
// sweep (see EXPERIMENTS.md).
package capsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/reqtrace"
)

// Request is one simulated arrival: its offset from the workload start and
// its deadline budget (0 = none).
type Request struct {
	ArrivalNS  int64
	DeadlineNS int64
}

// Config fixes the serving topology under simulation. The zero value of each
// field selects the matching daemon default where one exists.
type Config struct {
	// Queue bounds how many requests may wait for a run token; an arrival
	// past it is shed. <= 0 means the daemon default, 64.
	Queue int
	// Concurrency is the number of run tokens. <= 0 means 1.
	Concurrency int
	// Shards is the scatter width: a service draw is the maximum of Shards
	// independent Service draws plus a Merge draw. <= 1 models the
	// monolithic daemon (one Service draw, no merge).
	Shards int
	// Service is the per-shard (monolithic: per-request) search service
	// time distribution. Required.
	Service *Dist
	// Merge is the post-scatter merge time (nil = 0).
	Merge *Dist
	// Seed makes runs reproducible.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Queue <= 0 {
		c.Queue = 64
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 1
	}
	if c.Shards <= 1 {
		c.Shards = 1
	}
	return c
}

// Result is one simulated run's account, in the replayer's vocabulary so
// predicted and measured numbers compare field by field.
type Result struct {
	Arrived   int
	ByOutcome map[string]int
	// OKLatencies are the end-to-end latencies of completed requests;
	// WaitNanos the queue waits of every request that reached the queue
	// head (ok and timeout alike).
	OKLatencies []int64
	WaitNanos   []int64
}

// ShedRate is the fraction of arrivals shed at the queue.
func (r *Result) ShedRate() float64 {
	if r.Arrived == 0 {
		return 0
	}
	return float64(r.ByOutcome[reqtrace.OutcomeShed]) / float64(r.Arrived)
}

// TimeoutRate is the fraction of arrivals that exhausted their deadline.
func (r *Result) TimeoutRate() float64 {
	if r.Arrived == 0 {
		return 0
	}
	return float64(r.ByOutcome[reqtrace.OutcomeTimeout]) / float64(r.Arrived)
}

// LatencyQuantile returns the q-quantile of completed-request latency in
// nanoseconds, 0 with none — the predicted twin of
// ReplayResult.LatencyQuantile.
func (r *Result) LatencyQuantile(q float64) int64 {
	return quantile(r.OKLatencies, q)
}

// quantile is an exact ceil-rank quantile over a sorted copy.
func quantile(v []int64, q float64) int64 {
	if len(v) == 0 {
		return 0
	}
	s := make([]int64, len(v))
	copy(s, v)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if q <= 0 {
		return s[0]
	}
	idx := int(q*float64(len(s))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// Event kinds, ordered so a departure at time t frees its token before an
// arrival at the same instant is judged against the queue bound — matching
// the real daemon, where the release happens-before the next admission
// check observes it.
const (
	evDeparture = iota
	evArrival
)

type event struct {
	at   int64
	kind int
	seq  int // FIFO tiebreak for identical (at, kind)
	req  int // arrival: index into the workload
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// waiting is one queued request.
type waiting struct {
	arrival  int64
	deadline int64
}

// Run simulates the workload through the configured topology and returns
// the outcome accounting. Deterministic for a fixed (Config, workload).
func Run(cfg Config, workload []Request) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Service == nil || cfg.Service.Len() == 0 {
		return nil, fmt.Errorf("capsim: Config.Service must carry at least one fitted sample")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Result{Arrived: len(workload), ByOutcome: make(map[string]int)}

	var h eventHeap
	seq := 0
	push := func(at int64, kind, req int) {
		heap.Push(&h, event{at: at, kind: kind, seq: seq, req: req})
		seq++
	}
	for i, r := range workload {
		push(r.ArrivalNS, evArrival, i)
	}

	free := cfg.Concurrency
	var q []waiting

	// serviceDraw is one request's busy time: the slowest of Shards
	// concurrent shard searches, then the merge.
	serviceDraw := func() int64 {
		var s int64
		for k := 0; k < cfg.Shards; k++ {
			if d := cfg.Service.Draw(rng); d > s {
				s = d
			}
		}
		if cfg.Merge != nil && cfg.Merge.Len() > 0 {
			s += cfg.Merge.Draw(rng)
		}
		return s
	}

	// start consumes a token (the caller already decremented free) for a
	// request dequeued at time t after waiting w.
	start := func(t, w, deadline int64) {
		s := serviceDraw()
		if deadline > 0 {
			if rem := deadline - w; s > rem {
				// The engine stops between tasks once the context expires:
				// the token is held to the deadline, the request times out.
				res.ByOutcome[reqtrace.OutcomeTimeout]++
				push(t+rem, evDeparture, -1)
				return
			}
		}
		res.ByOutcome[reqtrace.OutcomeOK]++
		res.OKLatencies = append(res.OKLatencies, w+s)
		push(t+s, evDeparture, -1)
	}

	for h.Len() > 0 {
		e := heap.Pop(&h).(event)
		switch e.kind {
		case evArrival:
			r := workload[e.req]
			if free > 0 {
				free--
				res.WaitNanos = append(res.WaitNanos, 0)
				start(e.at, 0, r.DeadlineNS)
				break
			}
			if len(q) >= cfg.Queue {
				res.ByOutcome[reqtrace.OutcomeShed]++
				break
			}
			q = append(q, waiting{arrival: e.at, deadline: r.DeadlineNS})
		case evDeparture:
			free++
			// Drain the queue head past expired waiters: the daemon checks
			// the deadline at dequeue and answers 503 without running.
			for free > 0 && len(q) > 0 {
				wreq := q[0]
				q = q[1:]
				w := e.at - wreq.arrival
				res.WaitNanos = append(res.WaitNanos, w)
				if wreq.deadline > 0 && w >= wreq.deadline {
					res.ByOutcome[reqtrace.OutcomeTimeout]++
					continue
				}
				free--
				start(e.at, w, wreq.deadline)
			}
		}
	}
	return res, nil
}

// SweepPoint is one arrival rate's predicted operating point.
type SweepPoint struct {
	RatePerSec  float64
	ShedRate    float64
	TimeoutRate float64
	P50NS       int64
	P95NS       int64
	P99NS       int64
}

// Sweep predicts the operating curve: for each arrival rate it synthesizes a
// Poisson workload of n requests with the given deadline and runs the model.
// The per-rate seed derives from Config.Seed so the sweep is reproducible
// yet rates do not share arrival noise.
func Sweep(cfg Config, ratesPerSec []float64, n int, deadlineNS int64) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(ratesPerSec))
	for i, rate := range ratesPerSec {
		wl := PoissonWorkload(n, rate, deadlineNS, cfg.Seed+int64(i)*7919)
		c := cfg
		c.Seed = cfg.Seed + int64(i)*104729
		res, err := Run(c, wl)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{
			RatePerSec:  rate,
			ShedRate:    res.ShedRate(),
			TimeoutRate: res.TimeoutRate(),
			P50NS:       res.LatencyQuantile(0.50),
			P95NS:       res.LatencyQuantile(0.95),
			P99NS:       res.LatencyQuantile(0.99),
		})
	}
	return out, nil
}
