package capsim

import (
	"testing"
	"time"

	"repro/internal/reqtrace"
)

func ms(n int64) int64 { return n * int64(time.Millisecond) }

// TestUnloadedLatencyIsServiceTime: arrivals far apart see zero queueing —
// predicted latency is exactly the service draw.
func TestUnloadedLatencyIsServiceTime(t *testing.T) {
	wl := make([]Request, 10)
	for i := range wl {
		wl[i] = Request{ArrivalNS: int64(i) * ms(100)}
	}
	res, err := Run(Config{Concurrency: 1, Service: Constant(ms(10))}, wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.ByOutcome[reqtrace.OutcomeOK] != 10 || res.ShedRate() != 0 {
		t.Fatalf("outcomes = %v", res.ByOutcome)
	}
	for _, l := range res.OKLatencies {
		if l != ms(10) {
			t.Fatalf("unloaded latency %d, want %d", l, ms(10))
		}
	}
	for _, w := range res.WaitNanos {
		if w != 0 {
			t.Fatalf("unloaded run queued: %v", res.WaitNanos)
		}
	}
}

// TestQueueBoundSheds: one token, two queue slots, five simultaneous
// arrivals — three serve (latency 1x, 2x, 3x service), two shed.
func TestQueueBoundSheds(t *testing.T) {
	wl := make([]Request, 5)
	res, err := Run(Config{Queue: 2, Concurrency: 1, Service: Constant(ms(10))}, wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.ByOutcome[reqtrace.OutcomeOK] != 3 || res.ByOutcome[reqtrace.OutcomeShed] != 2 {
		t.Fatalf("outcomes = %v, want 3 ok + 2 shed", res.ByOutcome)
	}
	want := []int64{ms(10), ms(20), ms(30)}
	for i, l := range res.OKLatencies {
		if l != want[i] {
			t.Fatalf("latency[%d] = %d, want %d", i, l, want[i])
		}
	}
	if got := res.ShedRate(); got != 0.4 {
		t.Fatalf("shed rate %v, want 0.4", got)
	}
}

// TestDeadlineCoversQueueWait: with a 15ms deadline over a 10ms service and
// one token, the second simultaneous arrival starts with only 5ms of budget
// left (cut at the deadline), and the third expires at dequeue without ever
// holding the token.
func TestDeadlineCoversQueueWait(t *testing.T) {
	wl := []Request{
		{DeadlineNS: ms(15)},
		{DeadlineNS: ms(15)},
		{DeadlineNS: ms(15)},
	}
	res, err := Run(Config{Queue: 8, Concurrency: 1, Service: Constant(ms(10))}, wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.ByOutcome[reqtrace.OutcomeOK] != 1 || res.ByOutcome[reqtrace.OutcomeTimeout] != 2 {
		t.Fatalf("outcomes = %v, want 1 ok + 2 timeout", res.ByOutcome)
	}
	if res.OKLatencies[0] != ms(10) {
		t.Fatalf("first latency %d", res.OKLatencies[0])
	}
}

// TestScatterIsSlowestShardPlusMerge: with constant per-shard service the
// N-way maximum degenerates to the constant; merge adds on top.
func TestScatterIsSlowestShardPlusMerge(t *testing.T) {
	wl := []Request{{}}
	res, err := Run(Config{Concurrency: 1, Shards: 3, Service: Constant(ms(10)), Merge: Constant(ms(2))}, wl)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OKLatencies) != 1 || res.OKLatencies[0] != ms(12) {
		t.Fatalf("scatter latency = %v, want [%d]", res.OKLatencies, ms(12))
	}
}

// TestOverloadShedRateMatchesCapacityGap: deterministic 10ms service, one
// token → capacity 100 req/s. Offered 200 req/s with a tight queue must shed
// about half; well under capacity must shed none.
func TestOverloadShedRateMatchesCapacityGap(t *testing.T) {
	cfg := Config{Queue: 4, Concurrency: 1, Service: Constant(ms(10)), Seed: 11}
	over, err := Run(cfg, PoissonWorkload(2000, 200, 0, 5))
	if err != nil {
		t.Fatal(err)
	}
	if got := over.ShedRate(); got < 0.35 || got > 0.65 {
		t.Fatalf("2x-overload shed rate %v, want ~0.5", got)
	}
	under, err := Run(cfg, PoissonWorkload(500, 20, 0, 5))
	if err != nil {
		t.Fatal(err)
	}
	if got := under.ShedRate(); got > 0.01 {
		t.Fatalf("20%%-load shed rate %v, want ~0", got)
	}
}

// TestDeterministicForSeed: identical (Config, workload) → identical result.
func TestDeterministicForSeed(t *testing.T) {
	d := NewDist([]int64{ms(5), ms(10), ms(20), ms(40)})
	wl := PoissonWorkload(500, 150, ms(100), 9)
	a, err := Run(Config{Queue: 8, Concurrency: 2, Service: d, Seed: 3}, wl)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Queue: 8, Concurrency: 2, Service: d, Seed: 3}, wl)
	if err != nil {
		t.Fatal(err)
	}
	if a.ShedRate() != b.ShedRate() || a.LatencyQuantile(0.95) != b.LatencyQuantile(0.95) ||
		len(a.OKLatencies) != len(b.OKLatencies) {
		t.Fatalf("same seed diverged: %v vs %v", a.ByOutcome, b.ByOutcome)
	}
}

// TestSweepFindsTheKnee: the predicted curve must be calm below capacity and
// shedding above it.
func TestSweepFindsTheKnee(t *testing.T) {
	cfg := Config{Queue: 8, Concurrency: 1, Service: Constant(ms(10)), Seed: 1}
	pts, err := Sweep(cfg, []float64{20, 50, 200}, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].ShedRate > 0.01 || pts[1].ShedRate > 0.05 {
		t.Fatalf("below-capacity rates shed: %+v", pts)
	}
	if pts[2].ShedRate < 0.3 {
		t.Fatalf("2x-capacity rate did not shed: %+v", pts[2])
	}
	if pts[2].P95NS < pts[0].P95NS {
		t.Fatalf("p95 fell under load: %+v", pts)
	}
}

// TestFitSpanAndWorkloadFromRecords: the record → model plumbing.
func TestFitSpanAndWorkloadFromRecords(t *testing.T) {
	recs := []*reqtrace.Record{
		{ArrivalUnixNS: 1000, DeadlineMS: 250, Outcome: reqtrace.OutcomeOK,
			SpanNanos: map[string]int64{"search": ms(8), "total": ms(9)}},
		{ArrivalUnixNS: 3000, DeadlineMS: 250, Outcome: reqtrace.OutcomeOK,
			SpanNanos: map[string]int64{"search": ms(12), "total": ms(13)}},
		{ArrivalUnixNS: 2000, DeadlineMS: 250, Outcome: reqtrace.OutcomeShed},
	}
	d, err := FitSpan(recs, "search", reqtrace.OutcomeOK)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || d.Quantile(0) != ms(8) || d.Quantile(1) != ms(12) {
		t.Fatalf("fit = %d samples, q0 %d q1 %d", d.Len(), d.Quantile(0), d.Quantile(1))
	}
	if _, err := FitSpan(recs, "no-such-span"); err == nil {
		t.Fatal("fitting a missing span must fail")
	}

	wl := WorkloadFromRecords(recs)
	if len(wl) != 3 {
		t.Fatalf("workload len %d", len(wl))
	}
	// Arrival order restored, offsets rebased to the earliest arrival,
	// sheds included (they loaded the real queue).
	if wl[0].ArrivalNS != 0 || wl[1].ArrivalNS != 1000 || wl[2].ArrivalNS != 2000 {
		t.Fatalf("offsets = %v", wl)
	}
	if wl[0].DeadlineNS != 250*int64(time.Millisecond) {
		t.Fatalf("deadline = %d", wl[0].DeadlineNS)
	}
}

// TestFitShardServicePoolsShards: shard spans pool across shards; a
// monolithic recording falls back to the search span.
func TestFitShardServicePoolsShards(t *testing.T) {
	recs := []*reqtrace.Record{
		{Outcome: reqtrace.OutcomeOK, SpanNanos: map[string]int64{"shard0": ms(4), "shard1": ms(6)}},
		{Outcome: reqtrace.OutcomeOK, SpanNanos: map[string]int64{"shard0": ms(5), "shard1": ms(7)}},
	}
	d, err := FitShardService(recs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 4 || d.Quantile(1) != ms(7) {
		t.Fatalf("pooled fit = %d samples, max %d", d.Len(), d.Quantile(1))
	}
	mono := []*reqtrace.Record{{Outcome: reqtrace.OutcomeOK, SpanNanos: map[string]int64{"search": ms(9)}}}
	d, err = FitShardService(mono, 2)
	if err != nil || d.Quantile(1) != ms(9) {
		t.Fatalf("monolithic fallback: %v, %d", err, d.Quantile(1))
	}
}

// TestRunRejectsEmptyService: an unfitted model must not silently predict
// zero latency.
func TestRunRejectsEmptyService(t *testing.T) {
	if _, err := Run(Config{}, []Request{{}}); err == nil {
		t.Fatal("Run with no service distribution must fail")
	}
	if _, err := Run(Config{Service: NewDist(nil)}, []Request{{}}); err == nil {
		t.Fatal("Run with an empty service distribution must fail")
	}
}
