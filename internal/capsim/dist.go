package capsim

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/reqtrace"
)

// Dist is an empirical distribution: a draw picks one of the fitted samples
// uniformly (the inverse-CDF of the empirical CDF), so the model reproduces
// the recorded service-time shape — including its tail — without assuming a
// parametric family.
type Dist struct {
	samples []int64 // ascending
}

// NewDist fits an empirical distribution over the samples (a sorted copy is
// kept; the input is not retained). Returns an empty Dist when samples is
// empty — Len tells them apart.
func NewDist(samples []int64) *Dist {
	s := make([]int64, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return &Dist{samples: s}
}

// Constant is the degenerate single-point distribution.
func Constant(ns int64) *Dist { return &Dist{samples: []int64{ns}} }

// Len returns the fitted sample count.
func (d *Dist) Len() int {
	if d == nil {
		return 0
	}
	return len(d.samples)
}

// Draw samples the distribution.
func (d *Dist) Draw(r *rand.Rand) int64 {
	if d.Len() == 0 {
		return 0
	}
	return d.samples[r.Intn(len(d.samples))]
}

// Quantile returns the q-quantile of the fitted samples.
func (d *Dist) Quantile(q float64) int64 {
	if d.Len() == 0 {
		return 0
	}
	return quantile(d.samples, q)
}

// Mean returns the fitted samples' mean.
func (d *Dist) Mean() float64 {
	if d.Len() == 0 {
		return 0
	}
	var sum float64
	for _, v := range d.samples {
		sum += float64(v)
	}
	return sum / float64(len(d.samples))
}

// FitSpan fits a distribution from the named per-stage duration of every
// record whose outcome is in keep (no keep filter = every record carrying
// the span). This is how the model learns "search" (monolithic service),
// "shard<N>" (per-shard service), or "merge" times from a recorded run. An
// error when no record carries the span — a silent empty fit would make
// every prediction zero.
func FitSpan(recs []*reqtrace.Record, span string, keep ...string) (*Dist, error) {
	want := make(map[string]bool, len(keep))
	for _, o := range keep {
		want[o] = true
	}
	var samples []int64
	for _, r := range recs {
		if len(want) > 0 && !want[r.Outcome] {
			continue
		}
		if v, ok := r.SpanNanos[span]; ok && v > 0 {
			samples = append(samples, v)
		}
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("capsim: no record carries span %q (outcomes %v)", span, keep)
	}
	return NewDist(samples), nil
}

// FitShardService pools the per-shard durations ("shard0", "shard1", ...)
// of completed requests into one per-shard service distribution for the
// scatter model. Falls back to "search" when no shard spans exist (a
// monolithic recording).
func FitShardService(recs []*reqtrace.Record, shards int) (*Dist, error) {
	var samples []int64
	for _, r := range recs {
		if r.Outcome != reqtrace.OutcomeOK {
			continue
		}
		for s := 0; s < shards; s++ {
			if v, ok := r.SpanNanos[fmt.Sprintf("shard%d", s)]; ok && v > 0 {
				samples = append(samples, v)
			}
		}
	}
	if len(samples) > 0 {
		return NewDist(samples), nil
	}
	return FitSpan(recs, "search", reqtrace.OutcomeOK)
}

// WorkloadFromRecords converts a recorded run into the simulator's arrival
// sequence: offsets from the first arrival, deadlines from the records.
// Shed and rejected records still arrive (they loaded the queue in the real
// run and must load the model's).
func WorkloadFromRecords(recs []*reqtrace.Record) []Request {
	if len(recs) == 0 {
		return nil
	}
	base := recs[0].ArrivalUnixNS
	for _, r := range recs {
		if r.ArrivalUnixNS < base {
			base = r.ArrivalUnixNS
		}
	}
	out := make([]Request, len(recs))
	for i, r := range recs {
		out[i] = Request{
			ArrivalNS:  r.ArrivalUnixNS - base,
			DeadlineNS: r.DeadlineMS * 1e6,
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ArrivalNS < out[j].ArrivalNS })
	return out
}

// PoissonWorkload synthesizes n arrivals at ratePerSec with exponential
// inter-arrival gaps, every request carrying the same deadline.
// Deterministic for a fixed seed.
func PoissonWorkload(n int, ratePerSec float64, deadlineNS, seed int64) []Request {
	if n <= 0 || ratePerSec <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	gap := float64(1e9) / ratePerSec
	out := make([]Request, n)
	var t float64
	for i := range out {
		out[i] = Request{ArrivalNS: int64(t), DeadlineNS: deadlineNS}
		t += rng.ExpFloat64() * gap
	}
	return out
}
