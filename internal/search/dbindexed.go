package search

import (
	"repro/internal/alphabet"
	"repro/internal/dbindex"
	"repro/internal/gapped"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/ungapped"
)

// DBIndexed is the paper's "NCBI-db" baseline: the classic interleaved
// heuristics (hit → immediate two-hit check → immediate ungapped extension)
// running over the blocked database index. Because a scan of the query
// touches positions from many subject sequences, the engine keeps one
// last-hit state per (subject, diagonal) of the whole block and the
// execution jumps between subject sequences — the irregular memory pattern
// Fig 2 profiles and muBLASTP removes.
type DBIndexed struct {
	Cfg *Config
	Ix  *dbindex.Index
	// subjOff maps global sequence index to its byte offset in the
	// concatenated subject space (trace addressing).
	subjOff []int64
	// ixBase maps a block number to the byte offset of its position array
	// in the concatenated index space (trace addressing).
	ixBase []int64
}

// NewDBIndexed creates the engine over a built index.
func NewDBIndexed(cfg *Config, ix *dbindex.Index) *DBIndexed {
	e := &DBIndexed{Cfg: cfg, Ix: ix, subjOff: make([]int64, ix.DB.NumSeqs()+1)}
	var off int64
	for i := range ix.DB.Seqs {
		e.subjOff[i] = off
		off += int64(len(ix.DB.Seqs[i].Data))
	}
	e.subjOff[ix.DB.NumSeqs()] = off
	e.ixBase = make([]int64, len(ix.Blocks))
	var base int64
	for i, b := range ix.Blocks {
		e.ixBase[i] = base
		base += b.SizeBytes()
	}
	return e
}

// dbiScratch is the per-worker reusable state.
type dbiScratch struct {
	diags   StampedDiags
	diagOff []int32
	prof    matrix.Profile
	// extLists collects surviving ungapped extensions per local sequence of
	// the current block; touched lists the locals with at least one.
	extLists [][]ungapped.Ext
	touched  []int32
	aligner  *gapped.Aligner
}

func (e *DBIndexed) newScratch() *dbiScratch {
	return &dbiScratch{aligner: gapped.NewAligner(e.Cfg.Matrix, e.Cfg.Gap)}
}

// Search runs one query through the engine.
func (e *DBIndexed) Search(queryIdx int, q []alphabet.Code) QueryResult {
	return e.searchOne(e.newScratch(), queryIdx, q)
}

// SearchBatch searches all queries in parallel (dynamic scheduling).
func (e *DBIndexed) SearchBatch(queries [][]alphabet.Code, threads int) []QueryResult {
	results := make([]QueryResult, len(queries))
	scratches := makeScratches(threads, len(queries), e.newScratch)
	parallel.ForWorkers(len(queries), threads, func(w, i int) {
		results[i] = e.searchOne(scratches[w], i, queries[i])
	})
	return results
}

func (e *DBIndexed) searchOne(sc *dbiScratch, queryIdx int, q []alphabet.Code) QueryResult {
	cfg := e.Cfg
	var st Stats
	if len(q) < alphabet.W {
		return Finalize(cfg, sc.aligner, queryIdx, q, e.Ix.DB, nil, st)
	}
	sc.prof.Fill(cfg.Matrix, q)
	canon := &ungapped.Canon{P: cfg.TwoHit, Matrix: cfg.Matrix, Prof: &sc.prof}
	diagBias := len(q) - alphabet.W
	trace := cfg.Trace
	var subjects []SubjectAlignments

	for bi, b := range e.Ix.Blocks {
		numSeqs := b.Block.NumSeqs()
		// Per-sequence diagonal offsets into one flat state array: sequence
		// local l owns slots [diagOff[l], diagOff[l+1]).
		if cap(sc.diagOff) < numSeqs+1 {
			sc.diagOff = make([]int32, numSeqs+1)
		}
		sc.diagOff = sc.diagOff[:numSeqs+1]
		total := int32(0)
		for l := 0; l < numSeqs; l++ {
			sc.diagOff[l] = total
			sl := len(e.Ix.DB.Seqs[b.Block.Start+l].Data)
			if sl >= alphabet.W {
				total += int32(len(q) + sl - 2*alphabet.W + 1)
			}
		}
		sc.diagOff[numSeqs] = total
		sc.diags.Reset(int(total))
		if cap(sc.extLists) < numSeqs {
			sc.extLists = make([][]ungapped.Ext, numSeqs)
		}
		sc.extLists = sc.extLists[:numSeqs]
		sc.touched = sc.touched[:0]

		for qOff := 0; qOff+alphabet.W <= len(q); qOff++ {
			w := alphabet.WordAt(q, qOff)
			for _, v := range cfg.Neighbors.Neighbors(w) {
				ps := b.Positions(v)
				if len(ps) == 0 {
					continue
				}
				base := e.ixBase[bi] + int64(b.Base(v))*4
				for pi, packed := range ps {
					st.Hits++
					local, sOff := b.Decode(packed)
					gsi := b.Block.Start + local
					s := e.Ix.DB.Seqs[gsi].Data
					diag := sOff - qOff + diagBias
					slot := int(sc.diagOff[local]) + diag
					if trace != nil {
						trace(SpaceIndex, base+int64(pi)*4)
						trace(SpaceLastHit, int64(slot)*8)
					}
					d := sc.diags.Get(slot)
					ext, paired, extended, keep := canon.Step(d, q, s, qOff, sOff)
					if paired {
						st.Pairs++
					}
					if extended {
						st.Extensions++
						if trace != nil {
							traceSpan(trace, SpaceSubject, e.subjOff[gsi]+int64(ext.SStart), e.subjOff[gsi]+int64(ext.SEnd))
						}
					}
					if keep {
						st.Kept++
						if len(sc.extLists[local]) == 0 {
							sc.touched = append(sc.touched, int32(local))
						}
						sc.extLists[local] = append(sc.extLists[local], ext)
					}
				}
			}
		}

		// Gapped stage per touched subject, in ascending local order so the
		// output ordering matches the other engines. touched was appended in
		// first-keep order, which is not sorted; sort it.
		sortInt32(sc.touched)
		for _, local := range sc.touched {
			gsi := b.Block.Start + int(local)
			s := e.Ix.DB.Seqs[gsi].Data
			alns := GappedStage(cfg, sc.aligner, &sc.prof, q, s, sc.extLists[local], &st)
			sc.extLists[local] = sc.extLists[local][:0]
			if len(alns) > 0 {
				subjects = append(subjects, SubjectAlignments{Subject: gsi, Alns: alns})
			}
		}
	}
	return Finalize(cfg, sc.aligner, queryIdx, q, e.Ix.DB, subjects, st)
}

// sortInt32 sorts a small int32 slice ascending (insertion sort: touched
// lists are short and nearly sorted).
func sortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
