package search

import (
	"repro/internal/alphabet"
	"repro/internal/dbase"
	"repro/internal/gapped"
	"repro/internal/parallel"
	"repro/internal/qdfa"
	"repro/internal/ungapped"
)

// QueryIndexedDFA is the FSA-BLAST variant of the query-indexed baseline
// (paper Section VI): hit detection streams each subject through a
// deterministic finite automaton built from the query instead of probing a
// lookup table. Everything downstream (two-hit logic, extensions, ranking)
// is shared, so its results are identical to QueryIndexed's — it exists for
// the index-structure ablation.
type QueryIndexedDFA struct {
	Cfg *Config
	DB  *dbase.DB
}

// NewQueryIndexedDFA creates the engine over db (used in its current order).
func NewQueryIndexedDFA(cfg *Config, db *dbase.DB) *QueryIndexedDFA {
	return &QueryIndexedDFA{Cfg: cfg, DB: db}
}

// Search runs one query through the engine.
func (e *QueryIndexedDFA) Search(queryIdx int, q []alphabet.Code) QueryResult {
	return e.searchOne(&qiScratch{aligner: gapped.NewAligner(e.Cfg.Matrix, e.Cfg.Gap)}, queryIdx, q)
}

// SearchBatch searches all queries with dynamic scheduling.
func (e *QueryIndexedDFA) SearchBatch(queries [][]alphabet.Code, threads int) []QueryResult {
	results := make([]QueryResult, len(queries))
	scratches := makeScratches(threads, len(queries), func() *qiScratch {
		return &qiScratch{aligner: gapped.NewAligner(e.Cfg.Matrix, e.Cfg.Gap)}
	})
	parallel.ForWorkers(len(queries), threads, func(w, i int) {
		results[i] = e.searchOne(scratches[w], i, queries[i])
	})
	return results
}

func (e *QueryIndexedDFA) searchOne(sc *qiScratch, queryIdx int, q []alphabet.Code) QueryResult {
	cfg := e.Cfg
	var st Stats
	if len(q) < alphabet.W {
		return Finalize(cfg, sc.aligner, queryIdx, q, e.DB, nil, st)
	}
	dfa := qdfa.Build(q, cfg.Neighbors)
	sc.prof.Fill(cfg.Matrix, q)
	canon := &ungapped.Canon{P: cfg.TwoHit, Matrix: cfg.Matrix, Prof: &sc.prof}
	diagBias := len(q) - alphabet.W
	var subjects []SubjectAlignments

	for si := range e.DB.Seqs {
		s := e.DB.Seqs[si].Data
		if len(s) < alphabet.W {
			continue
		}
		numDiags := len(q) + len(s) - 2*alphabet.W + 1
		sc.diags.Reset(numDiags)
		sc.exts = sc.exts[:0]
		dfa.Scan(s, func(sOff int, qPos int32) {
			st.Hits++
			diag := sOff - int(qPos) + diagBias
			d := sc.diags.Get(diag)
			ext, paired, extended, keep := canon.Step(d, q, s, int(qPos), sOff)
			if paired {
				st.Pairs++
			}
			if extended {
				st.Extensions++
			}
			if keep {
				st.Kept++
				sc.exts = append(sc.exts, ext)
			}
		})
		if len(sc.exts) > 0 {
			alns := GappedStage(cfg, sc.aligner, &sc.prof, q, s, sc.exts, &st)
			if len(alns) > 0 {
				subjects = append(subjects, SubjectAlignments{Subject: si, Alns: alns})
			}
		}
	}
	return Finalize(cfg, sc.aligner, queryIdx, q, e.DB, subjects, st)
}
