package search

import (
	"testing"
)

// TestTraceEmitsAllSpaces verifies the cache-simulation instrumentation:
// each engine must report accesses for the spaces its pipeline touches, and
// tracing must not change results.
func TestTraceEmitsAllSpaces(t *testing.T) {
	cfg, db, ix, queries := testWorld(t, 80, 1, 256, 8192)
	q := queries[0]

	type spaceCount [NumSpaces]int64
	run := func(attach func(c *Config) func() QueryResult) (spaceCount, QueryResult) {
		var counts spaceCount
		c := *cfg
		c.Trace = func(space uint8, offset int64) {
			if int(space) >= NumSpaces {
				t.Fatalf("engine traced unknown space %d", space)
			}
			if offset < 0 {
				t.Fatalf("negative trace offset %d in space %d", offset, space)
			}
			counts[space]++
		}
		res := attach(&c)()
		return counts, res
	}

	// Untraced references.
	refQI := NewQueryIndexed(cfg, db).Search(0, q)
	refDB := NewDBIndexed(cfg, ix).Search(0, q)

	qiCounts, qiRes := run(func(c *Config) func() QueryResult {
		e := NewQueryIndexed(c, db)
		return func() QueryResult { return e.Search(0, q) }
	})
	dbCounts, dbRes := run(func(c *Config) func() QueryResult {
		e := NewDBIndexed(c, ix)
		return func() QueryResult { return e.Search(0, q) }
	})

	// Query-indexed: index, last-hit and subject accesses; no hit buffer.
	for _, sp := range []int{SpaceIndex, SpaceLastHit, SpaceSubject} {
		if qiCounts[sp] == 0 {
			t.Errorf("QueryIndexed traced no accesses for space %d", sp)
		}
	}
	if qiCounts[SpaceHitBuf] != 0 {
		t.Errorf("QueryIndexed traced %d hit-buffer accesses", qiCounts[SpaceHitBuf])
	}
	for _, sp := range []int{SpaceIndex, SpaceLastHit, SpaceSubject} {
		if dbCounts[sp] == 0 {
			t.Errorf("DBIndexed traced no accesses for space %d", sp)
		}
	}
	// Index accesses per hit are equal across the two engines (identical
	// hit sets).
	if qiCounts[SpaceIndex] != dbCounts[SpaceIndex] {
		t.Errorf("index access counts differ: %d vs %d", qiCounts[SpaceIndex], dbCounts[SpaceIndex])
	}

	// Tracing must not perturb results.
	requireSameResult(t, "traced QI", 0, refQI, qiRes)
	requireSameResult(t, "traced DB", 0, refDB, dbRes)
}

// TestStampedDiagsLazyReset exercises the epoch machinery including the
// wrap-around path.
func TestStampedDiagsLazyReset(t *testing.T) {
	var sd StampedDiags
	sd.Reset(4)
	d := sd.Get(2)
	d.LastPos = 42
	if sd.Get(2).LastPos != 42 {
		t.Error("state lost within epoch")
	}
	sd.Reset(4)
	if sd.Get(2).LastPos != -1 {
		t.Error("state not reset across epochs")
	}
	// Grow.
	sd.Reset(100)
	for i := 0; i < 100; i++ {
		if sd.Get(i).LastPos != -1 {
			t.Fatalf("slot %d not fresh after grow", i)
		}
	}
	// Force epoch wrap-around.
	sd.epoch = ^uint32(0)
	sd.Get(5).LastPos = 7
	sd.Reset(100)
	if sd.epoch != 1 {
		t.Errorf("epoch after wrap = %d, want 1", sd.epoch)
	}
	if sd.Get(5).LastPos != -1 {
		t.Error("state survived epoch wrap")
	}
}

func TestStampedLastPosCheck(t *testing.T) {
	var sl StampedLastPos
	sl.Reset(8)
	// First hit on a slot: no pair, records position.
	if _, paired := sl.Check(3, 10, 40); paired {
		t.Error("first hit paired")
	}
	// Within window: pairs.
	dist, paired := sl.Check(3, 25, 40)
	if !paired || dist != 15 {
		t.Errorf("Check = (%d, %v), want (15, true)", dist, paired)
	}
	// Exactly at window: no pair (strict <) but position updates.
	if _, paired := sl.Check(3, 65, 40); paired {
		t.Error("distance == window paired")
	}
	if _, paired := sl.Check(3, 70, 40); !paired {
		t.Error("hit near updated position did not pair")
	}
	// Same offset twice: dist 0, no pair.
	if _, paired := sl.Check(3, 70, 40); paired {
		t.Error("zero distance paired")
	}
	// Other slots unaffected.
	if _, paired := sl.Check(4, 71, 40); paired {
		t.Error("fresh slot paired")
	}
	// Reset invalidates.
	sl.Reset(8)
	if _, paired := sl.Check(3, 80, 40); paired {
		t.Error("slot survived reset")
	}
}

func TestSortHSPsDeterminism(t *testing.T) {
	mk := func(score, subject, qstart int) HSP {
		h := HSP{Subject: subject}
		h.Aln.Score = score
		h.Aln.QStart = qstart
		return h
	}
	hsps := []HSP{mk(10, 2, 0), mk(20, 1, 0), mk(10, 1, 5), mk(10, 1, 2)}
	SortHSPs(hsps)
	want := []HSP{mk(20, 1, 0), mk(10, 1, 2), mk(10, 1, 5), mk(10, 2, 0)}
	for i := range want {
		if hsps[i].Subject != want[i].Subject || hsps[i].Aln.Score != want[i].Aln.Score ||
			hsps[i].Aln.QStart != want[i].Aln.QStart {
			t.Fatalf("order[%d] = %+v, want %+v", i, hsps[i], want[i])
		}
	}
}

func TestFinalizeOverrides(t *testing.T) {
	cfg, db, _, queries := testWorld(t, 60, 1, 128, 1<<20)
	q := queries[0]
	e := NewQueryIndexed(cfg, db)
	base := e.Search(0, q)

	big := *cfg
	big.DBLenOverride = db.TotalResidues * 1000
	big.DBSeqsOverride = int64(db.NumSeqs()) * 1000
	eBig := NewQueryIndexed(&big, db)
	inflated := eBig.Search(0, q)

	if len(inflated.HSPs) > len(base.HSPs) {
		t.Error("larger search space produced more hits")
	}
	// Common hits must have strictly larger E-values under the bigger space.
	for _, h := range inflated.HSPs {
		for _, b := range base.HSPs {
			if b.Subject == h.Subject && b.Aln.QStart == h.Aln.QStart && b.Aln.Score == h.Aln.Score {
				if h.EValue <= b.EValue {
					t.Errorf("E-value did not grow with search space: %g vs %g", h.EValue, b.EValue)
				}
			}
		}
	}
}
