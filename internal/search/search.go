// Package search defines the common configuration, result types, and shared
// pipeline stages of all three BLASTP engines in this repository, and
// implements the two baselines the paper measures against:
//
//   - QueryIndexed: classic NCBI-BLAST — a lookup table built from the
//     query, subjects scanned one by one (Section II-A);
//   - DBIndexed: the paper's "NCBI-db" — the same interleaved heuristics
//     run over the blocked database index, which is the configuration whose
//     irregular memory behaviour motivates muBLASTP (Section II-B).
//
// The muBLASTP engine itself lives in internal/core and reuses the stages
// here. All engines share the ungapped.Canon two-hit semantics and the
// gapped stage, so their outputs are identical by construction — the
// property the paper verifies in Section V-E.
package search

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/alphabet"
	"repro/internal/dbase"
	"repro/internal/gapped"
	"repro/internal/matrix"
	"repro/internal/neighbor"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/ungapped"
)

// Trace spaces identify the logical data structure behind a traced memory
// access; the cache simulator maps each space to a distinct address range.
const (
	SpaceIndex   = iota // database or query index position arrays
	SpaceLastHit        // last-hit / diagonal state arrays
	SpaceSubject        // subject sequence residues
	SpaceHitBuf         // decoupled pipeline hit/pair buffers
	NumSpaces
)

// Config carries the scoring system and heuristic parameters shared by all
// engines. Construct with NewConfig; the zero value is not usable.
type Config struct {
	Matrix    *matrix.Matrix
	Neighbors *neighbor.Table
	TwoHit    ungapped.Params
	Gap       gapped.Params

	// EValueCutoff drops alignments with a larger E-value (BLAST default 10).
	EValueCutoff float64
	// MaxResults caps reported HSPs per query (by ascending E-value).
	MaxResults int

	// UngappedKA and GappedKA are the Karlin–Altschul parameters used for
	// cutoffs and for final E-values respectively.
	UngappedKA stats.Params
	GappedKA   stats.Params

	// DBLenOverride and DBSeqsOverride, when positive, replace the local
	// database's totals in E-value computation. Distributed search sets them
	// to the global database size so every rank's E-values (and hence the
	// merged ranking) match a single-node search over the whole database.
	DBLenOverride  int64
	DBSeqsOverride int64

	// Trace, when non-nil, receives one call per significant memory access
	// in the hit-detection and ungapped-extension stages (space, byte
	// offset within that space). Used by the cache simulator to reproduce
	// the paper's Fig 2 and Fig 8 miss-rate measurements. Leave nil for
	// normal (fast) operation.
	Trace func(space uint8, offset int64)
}

// NewConfig builds a Config with BLASTP defaults (BLOSUM62, T=11, A=40,
// gap 11/1, E-value 10) around a prebuilt neighbor table.
func NewConfig(m *matrix.Matrix, nbr *neighbor.Table) (*Config, error) {
	ung, err := stats.UngappedParams(m, &stats.RobinsonFreqs)
	if err != nil {
		return nil, fmt.Errorf("search: ungapped Karlin-Altschul params: %w", err)
	}
	gp := gapped.DefaultParams()
	gapKA, err := stats.GappedParams(m, gp.GapOpen, gp.GapExtend)
	if err != nil {
		// Unusual matrix/penalty combination: fall back to ungapped
		// statistics, which ranks correctly even if E-values shift.
		gapKA = ung
	}
	return &Config{
		Matrix:       m,
		Neighbors:    nbr,
		TwoHit:       ungapped.DefaultParams(),
		Gap:          gp,
		EValueCutoff: 10,
		MaxResults:   250,
		UngappedKA:   ung,
		GappedKA:     gapKA,
	}, nil
}

// Stats counts per-query pipeline events; the experiment harness aggregates
// them to regenerate Fig 2's profile numbers and Fig 6's filter rates.
type Stats struct {
	Hits        int64 // word hits visited in hit detection
	Pairs       int64 // two-hit pairs (prefilter output / pair-check passes)
	SortedItems int64 // records that went through hit reordering
	Extensions  int64 // ungapped extensions performed
	Kept        int64 // ungapped extensions above the trigger score
	GappedExts  int64 // score-only gapped extensions performed (stage 3)
	Tracebacks  int64 // traceback re-alignments of reported HSPs (stage 4)

	// Scheduler counters, set only by batch searches: how many scheduler
	// tasks (index-block × query cells) this query's work was split into and
	// how long workers spent inside them. Zero for single-query searches.
	SchedTasks     int64
	SchedBusyNanos int64

	// StageNanos[s] is the wall time this query spent in pipeline stage s
	// (obs.StageHitDetect..obs.StageTraceback). The decoupled muBLASTP
	// engine stamps every stage; the interleaved baselines stamp only the
	// shared stages (gapped, traceback), leaving the rest zero.
	StageNanos [obs.NumStages]int64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Hits += o.Hits
	s.Pairs += o.Pairs
	s.SortedItems += o.SortedItems
	s.Extensions += o.Extensions
	s.Kept += o.Kept
	s.GappedExts += o.GappedExts
	s.Tracebacks += o.Tracebacks
	s.SchedTasks += o.SchedTasks
	s.SchedBusyNanos += o.SchedBusyNanos
	for i := range s.StageNanos {
		s.StageNanos[i] += o.StageNanos[i]
	}
}

// TotalStageNanos sums the per-stage times: the query's total pipeline time.
func (s *Stats) TotalStageNanos() int64 {
	var n int64
	for _, v := range s.StageNanos {
		n += v
	}
	return n
}

// Spans materializes the per-stage timing as span records, one per pipeline
// stage in order (including zero-time stages, so all six are always
// present). Allocates; meant for trace sinks, not the hot path.
func (s *Stats) Spans() []obs.Span {
	out := make([]obs.Span, obs.NumStages)
	for i := range out {
		out[i] = obs.Span{Stage: obs.Stage(i).String(), Nanos: s.StageNanos[i]}
	}
	return out
}

// CounterMap returns the event counters by name — the counter-delta half of
// a per-query span record. Allocates; trace-sink use only.
func (s *Stats) CounterMap() map[string]int64 {
	return map[string]int64{
		"hits":         s.Hits,
		"pairs":        s.Pairs,
		"sorted_items": s.SortedItems,
		"extensions":   s.Extensions,
		"kept":         s.Kept,
		"gapped_exts":  s.GappedExts,
		"tracebacks":   s.Tracebacks,
		"sched_tasks":  s.SchedTasks,
	}
}

// SchedStats summarizes the batch scheduler's behaviour over one SearchBatch
// call (the hit-search phase; per-query finalization is not counted). It is
// the batch-level complement of the per-query Sched* fields in Stats.
type SchedStats struct {
	Scheduler      string // "block-major" (barrier-free grid) or "barrier"
	Workers        int    // workers actually used
	Tasks          int64  // (block, query) tasks executed
	MinWorkerTasks int64  // fewest tasks any worker pulled
	MaxWorkerTasks int64  // most tasks any worker pulled
	BusyNanos      int64  // total worker-time inside tasks
	StallNanos     int64  // total worker-time outside tasks (barriers, idle)
	ElapsedNanos   int64  // wall-clock time of the search phase

	// Robustness counters (zero on a clean run): tasks whose panic was
	// isolated by the scheduler, tasks never started because the batch
	// context was cancelled or timed out, and queries that consequently
	// finished incomplete (cancelled or poisoned by a panic).
	TasksPanicked    int64
	TasksCancelled   int64
	QueriesAborted   int64
	DeadlineExceeded bool
}

// Utilization is the fraction of total worker-time spent inside tasks,
// in (0, 1] for any batch that did work. Per-block barriers and straggler
// queries show up as utilization lost to StallNanos.
func (s SchedStats) Utilization() float64 {
	if s.Workers == 0 || s.ElapsedNanos <= 0 {
		return 0
	}
	return float64(s.BusyNanos) / (float64(s.Workers) * float64(s.ElapsedNanos))
}

// HSP is one reported alignment between the query and a subject sequence.
type HSP struct {
	Subject     int    // index into the (length-sorted) database
	SubjectName string // display name of the subject
	Aln         gapped.Alignment
	BitScore    float64
	EValue      float64
}

// QueryResult is the outcome of searching one query.
type QueryResult struct {
	Query int // caller-provided query index
	HSPs  []HSP
	Stats Stats
}

// ScoredAlignment is a stage-three product: a gapped alignment's score and
// span (no traceback yet) plus the seed it was extended from, so stage four
// can re-align it with traceback.
type ScoredAlignment struct {
	Aln   gapped.Alignment // Ops empty until traceback
	QSeed int
	SSeed int
}

// SubjectAlignments groups the scored gapped alignments of one subject.
type SubjectAlignments struct {
	Subject int // global sequence index in the database
	Alns    []ScoredAlignment
}

// GappedStage runs the score-only gapped extension (stage three) over the
// surviving ungapped alignments of one subject and returns deduplicated
// scored alignments; tracebacks are deferred to Finalize (stage four), the
// way BLAST re-aligns only the top-scoring alignments (Section II-A).
// Extensions are processed in a canonical order (score descending, then
// coordinates), so engines that discover the same extension set in
// different orders produce identical output.
//
// prof, when non-nil, must be q's profile under cfg.Matrix; the score-only
// DP then runs the profile kernel (gapped.ExtendScoreProf), which produces
// identical alignments with cheaper row lookups.
func GappedStage(cfg *Config, al *gapped.Aligner, prof *matrix.Profile, q, s []alphabet.Code, exts []ungapped.Ext, st *Stats) []ScoredAlignment {
	stageStart := time.Now()
	if len(exts) > 1 {
		sort.SliceStable(exts, func(i, j int) bool {
			a, b := exts[i], exts[j]
			if a.Score != b.Score {
				return a.Score > b.Score
			}
			if a.QStart != b.QStart {
				return a.QStart < b.QStart
			}
			return a.SStart < b.SStart
		})
	}
	var out []ScoredAlignment
	for _, e := range exts {
		// Skip seeds already covered by an accepted gapped alignment — the
		// same containment rule NCBI applies to avoid rediscovering one
		// alignment from multiple seeds.
		covered := false
		for i := range out {
			a := &out[i].Aln
			if e.QStart >= a.QStart && e.QEnd <= a.QEnd &&
				e.SStart >= a.SStart && e.SEnd <= a.SEnd {
				covered = true
				break
			}
		}
		if covered {
			continue
		}
		qSeed := (e.QStart + e.QEnd) / 2
		sSeed := e.SStart + (qSeed - e.QStart)
		var aln gapped.Alignment
		if prof != nil {
			aln = al.ExtendScoreProf(prof, q, s, qSeed, sSeed)
		} else {
			aln = al.ExtendScore(q, s, qSeed, sSeed)
		}
		st.GappedExts++
		if aln.Score <= 0 {
			continue
		}
		dup := false
		for i := range out {
			if out[i].Aln.QStart == aln.QStart && out[i].Aln.QEnd == aln.QEnd &&
				out[i].Aln.SStart == aln.SStart && out[i].Aln.SEnd == aln.SEnd {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, ScoredAlignment{Aln: aln, QSeed: qSeed, SSeed: sSeed})
		}
	}
	st.StageNanos[obs.StageGapped] += int64(time.Since(stageStart))
	return out
}

// Finalize is stage four plus reporting: per-subject scored alignments are
// converted to HSPs (bit scores and E-values from the gapped
// Karlin–Altschul parameters with BLAST's effective-length correction),
// filtered by the E-value cutoff, ranked, capped at MaxResults — and only
// the survivors are re-aligned with traceback (the paper's "Traceback
// realigns the top-scoring alignments", Section II-A; Algorithm 3 runs this
// as its second parallel loop).
func Finalize(cfg *Config, al *gapped.Aligner, queryIdx int, q []alphabet.Code, db *dbase.DB, subjects []SubjectAlignments, st Stats) QueryResult {
	dbLen, dbSeqs := db.TotalResidues, int64(db.NumSeqs())
	if cfg.DBLenOverride > 0 {
		dbLen = cfg.DBLenOverride
	}
	if cfg.DBSeqsOverride > 0 {
		dbSeqs = cfg.DBSeqsOverride
	}
	effQ, effDB := cfg.GappedKA.EffectiveLengths(int64(len(q)), dbLen, dbSeqs)
	type pending struct {
		hsp  HSP
		seed ScoredAlignment
	}
	var hsps []HSP
	var pendings []pending
	for _, se := range subjects {
		for _, a := range se.Alns {
			ev := cfg.GappedKA.EValue(a.Aln.Score, effQ, effDB)
			if ev > cfg.EValueCutoff {
				continue
			}
			pendings = append(pendings, pending{
				hsp: HSP{
					Subject:     se.Subject,
					SubjectName: db.Seqs[se.Subject].Name,
					Aln:         a.Aln,
					BitScore:    cfg.GappedKA.BitScore(a.Aln.Score),
					EValue:      ev,
				},
				seed: a,
			})
		}
	}
	hsps = make([]HSP, len(pendings))
	order := make([]int, len(pendings))
	for i := range pendings {
		hsps[i] = pendings[i].hsp
		order[i] = i
	}
	// Rank, remembering the permutation so seeds follow their HSPs.
	sortHSPsWithOrder(hsps, order)
	if cfg.MaxResults > 0 && len(hsps) > cfg.MaxResults {
		hsps = hsps[:cfg.MaxResults]
		order = order[:cfg.MaxResults]
	}
	// Stage four: traceback only for the reported alignments. The traceback
	// score can exceed the preliminary (score-only) value by a seam
	// correction (see gapped.Aligner.Extend), so statistics are refreshed
	// and the final list re-ranked — mirroring BLAST, whose traceback stage
	// also re-scores the preliminary gapped alignments.
	stageStart := time.Now()
	for i := range hsps {
		seed := pendings[order[i]].seed
		full := al.Extend(q, db.Seqs[hsps[i].Subject].Data, seed.QSeed, seed.SSeed)
		st.Tracebacks++
		hsps[i].Aln = full
		hsps[i].BitScore = cfg.GappedKA.BitScore(full.Score)
		hsps[i].EValue = cfg.GappedKA.EValue(full.Score, effQ, effDB)
	}
	SortHSPs(hsps)
	st.StageNanos[obs.StageTraceback] += int64(time.Since(stageStart))
	return QueryResult{Query: queryIdx, HSPs: hsps, Stats: st}
}

// sortHSPsWithOrder sorts hsps as SortHSPs does while permuting order the
// same way.
func sortHSPsWithOrder(hsps []HSP, order []int) {
	idx := make([]int, len(hsps))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return hspLess(&hsps[idx[a]], &hsps[idx[b]]) })
	outH := make([]HSP, len(hsps))
	outO := make([]int, len(order))
	for i, j := range idx {
		outH[i] = hsps[j]
		outO[i] = order[j]
	}
	copy(hsps, outH)
	copy(order, outO)
}

func hspLess(a, b *HSP) bool {
	if a.Aln.Score != b.Aln.Score {
		return a.Aln.Score > b.Aln.Score
	}
	if a.Subject != b.Subject {
		return a.Subject < b.Subject
	}
	if a.Aln.QStart != b.Aln.QStart {
		return a.Aln.QStart < b.Aln.QStart
	}
	return a.Aln.SStart < b.Aln.SStart
}

// SortHSPs orders HSPs by descending score with deterministic tie-breaks
// (subject id, then query start, then subject start).
func SortHSPs(hsps []HSP) {
	sort.SliceStable(hsps, func(i, j int) bool { return hspLess(&hsps[i], &hsps[j]) })
}

// LessHSP exposes the monolithic ranking order SortHSPs applies, so callers
// that must keep side records aligned with a sort (the sharded merge keeps
// per-HSP provenance) can run their own stable permutation sort and still
// rank exactly like a single-database search.
func LessHSP(a, b *HSP) bool { return hspLess(a, b) }
