package search

import (
	"math"
	"sync"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/dbase"
	"repro/internal/dbindex"
	"repro/internal/matrix"
	"repro/internal/neighbor"
	"repro/internal/seqgen"
	"repro/internal/sw"
)

var (
	envOnce sync.Once
	envNbr  *neighbor.Table
	envCfg  *Config
)

func testConfig(t *testing.T) *Config {
	t.Helper()
	envOnce.Do(func() {
		envNbr = neighbor.Build(matrix.Blosum62, neighbor.DefaultThreshold)
		var err error
		envCfg, err = NewConfig(matrix.Blosum62, envNbr)
		if err != nil {
			panic(err)
		}
	})
	// Copy so tests can tweak fields without interfering.
	cfg := *envCfg
	return &cfg
}

// testWorld builds a deterministic db (length-sorted via index build), an
// index over it, and queries sampled from it.
func testWorld(t *testing.T, nSeqs, nQueries, qLen int, blockResidues int64) (*Config, *dbase.DB, *dbindex.Index, [][]alphabet.Code) {
	t.Helper()
	cfg := testConfig(t)
	g := seqgen.New(seqgen.UniprotProfile(), 1234)
	db := dbase.New(g.Database(nSeqs))
	ix, err := dbindex.Build(db, cfg.Neighbors, blockResidues)
	if err != nil {
		t.Fatal(err)
	}
	queries := g.Queries(sequences(db), nQueries, qLen)
	return cfg, db, ix, queries
}

func sequences(db *dbase.DB) [][]alphabet.Code {
	out := make([][]alphabet.Code, db.NumSeqs())
	for i := range db.Seqs {
		out[i] = db.Seqs[i].Data
	}
	return out
}

func TestQueryIndexedFindsPlantedHomolog(t *testing.T) {
	cfg, db, _, queries := testWorld(t, 120, 4, 128, 1<<20)
	e := NewQueryIndexed(cfg, db)
	found := 0
	for qi, q := range queries {
		res := e.Search(qi, q)
		if len(res.HSPs) > 0 {
			found++
			top := res.HSPs[0]
			// Queries are db windows mutated at 10%: the top hit should be
			// strong (low E-value).
			if top.EValue > 1e-5 {
				t.Errorf("query %d: top E-value %g suspiciously weak", qi, top.EValue)
			}
		}
	}
	if found < len(queries) {
		t.Errorf("only %d/%d queries found any hit", found, len(queries))
	}
}

func TestHSPsValidateAndAreRanked(t *testing.T) {
	cfg, db, _, queries := testWorld(t, 100, 3, 256, 1<<20)
	e := NewQueryIndexed(cfg, db)
	for qi, q := range queries {
		res := e.Search(qi, q)
		for i, h := range res.HSPs {
			s := db.Seqs[h.Subject].Data
			if err := h.Aln.Validate(cfg.Matrix, q, s, cfg.Gap); err != nil {
				t.Fatalf("query %d HSP %d: %v", qi, i, err)
			}
			if h.EValue > cfg.EValueCutoff {
				t.Errorf("query %d HSP %d: E-value %g above cutoff", qi, i, h.EValue)
			}
			if i > 0 && res.HSPs[i-1].Aln.Score < h.Aln.Score {
				t.Errorf("query %d: HSPs not score-descending at %d", qi, i)
			}
			if h.SubjectName != db.Seqs[h.Subject].Name {
				t.Errorf("query %d HSP %d: name mismatch", qi, i)
			}
		}
	}
}

func TestStatsAreConsistent(t *testing.T) {
	cfg, db, ix, queries := testWorld(t, 100, 3, 128, 8192)
	engines := map[string]interface {
		Search(int, []alphabet.Code) QueryResult
	}{
		"QueryIndexed": NewQueryIndexed(cfg, db),
		"DBIndexed":    NewDBIndexed(cfg, ix),
	}
	for name, e := range engines {
		for qi, q := range queries {
			st := e.Search(qi, q).Stats
			if st.Hits <= 0 {
				t.Errorf("%s query %d: no hits", name, qi)
			}
			if st.Pairs > st.Hits {
				t.Errorf("%s query %d: pairs %d > hits %d", name, qi, st.Pairs, st.Hits)
			}
			if st.Extensions > st.Pairs {
				t.Errorf("%s query %d: extensions %d > pairs %d", name, qi, st.Extensions, st.Pairs)
			}
			if st.Kept > st.Extensions {
				t.Errorf("%s query %d: kept %d > extensions %d", name, qi, st.Kept, st.Extensions)
			}
		}
	}
}

func TestExactSubstringQueryTopHitIsSource(t *testing.T) {
	cfg := testConfig(t)
	g := seqgen.New(seqgen.UniprotProfile(), 99)
	db := dbase.New(g.Database(80))
	db.SortByLength()
	// Take an exact window of a known subject as the query.
	src := -1
	for i := range db.Seqs {
		if db.Seqs[i].Len() >= 200 {
			src = i
			break
		}
	}
	if src < 0 {
		t.Fatal("no long sequence")
	}
	q := append([]alphabet.Code(nil), db.Seqs[src].Data[20:180]...)
	e := NewQueryIndexed(cfg, db)
	res := e.Search(0, q)
	if len(res.HSPs) == 0 {
		t.Fatal("no hits for exact substring")
	}
	top := res.HSPs[0]
	// The source itself must be the (joint) top hit; planted homologs can
	// tie, so check the source appears with the maximal score.
	want := matrix.Blosum62.SeqScore(q, q)
	if top.Aln.Score < want {
		t.Errorf("top score %d below self score %d", top.Aln.Score, want)
	}
	foundSrc := false
	for _, h := range res.HSPs {
		if h.Subject == src && h.Aln.Score >= want {
			foundSrc = true
		}
	}
	if !foundSrc {
		t.Errorf("source subject %d not among top hits", src)
	}
}

func TestTopHitNeverBeatsSmithWaterman(t *testing.T) {
	cfg, db, _, queries := testWorld(t, 60, 3, 128, 1<<20)
	e := NewQueryIndexed(cfg, db)
	for qi, q := range queries {
		res := e.Search(qi, q)
		for _, h := range res.HSPs[:min(len(res.HSPs), 5)] {
			opt := sw.Score(cfg.Matrix, q, db.Seqs[h.Subject].Data, cfg.Gap.GapOpen, cfg.Gap.GapExtend)
			if h.Aln.Score > opt {
				t.Errorf("query %d subject %d: heuristic score %d exceeds SW optimum %d",
					qi, h.Subject, h.Aln.Score, opt)
			}
			// For hits BLAST reports, the heuristic should be near-optimal.
			if float64(h.Aln.Score) < 0.5*float64(opt) {
				t.Logf("query %d subject %d: heuristic %d vs SW %d (weak recovery)",
					qi, h.Subject, h.Aln.Score, opt)
			}
		}
	}
}

func TestSearchBatchMatchesSequential(t *testing.T) {
	cfg, db, ix, queries := testWorld(t, 100, 6, 128, 8192)
	qe := NewQueryIndexed(cfg, db)
	de := NewDBIndexed(cfg, ix)
	for name, pair := range map[string][2]func() []QueryResult{
		"QueryIndexed": {
			func() []QueryResult { return qe.SearchBatch(queries, 4) },
			func() []QueryResult {
				out := make([]QueryResult, len(queries))
				for i, q := range queries {
					out[i] = qe.Search(i, q)
				}
				return out
			},
		},
		"DBIndexed": {
			func() []QueryResult { return de.SearchBatch(queries, 4) },
			func() []QueryResult {
				out := make([]QueryResult, len(queries))
				for i, q := range queries {
					out[i] = de.Search(i, q)
				}
				return out
			},
		},
	} {
		batch, seq := pair[0](), pair[1]()
		for i := range seq {
			requireSameResult(t, name, i, seq[i], batch[i])
		}
	}
}

// requireSameResult asserts two QueryResults are identical.
func requireSameResult(t *testing.T, name string, qi int, a, b QueryResult) {
	t.Helper()
	if len(a.HSPs) != len(b.HSPs) {
		t.Fatalf("%s query %d: %d vs %d HSPs", name, qi, len(a.HSPs), len(b.HSPs))
	}
	for j := range a.HSPs {
		x, y := a.HSPs[j], b.HSPs[j]
		if x.Subject != y.Subject || x.Aln.Score != y.Aln.Score ||
			x.Aln.QStart != y.Aln.QStart || x.Aln.QEnd != y.Aln.QEnd ||
			x.Aln.SStart != y.Aln.SStart || x.Aln.SEnd != y.Aln.SEnd {
			t.Fatalf("%s query %d HSP %d differs: %+v vs %+v", name, qi, j, x, y)
		}
		if math.Abs(x.EValue-y.EValue) > 1e-12*math.Max(x.EValue, 1e-300) {
			t.Fatalf("%s query %d HSP %d E-value differs", name, qi, j)
		}
		if string(x.Aln.Ops) != string(y.Aln.Ops) {
			t.Fatalf("%s query %d HSP %d traceback differs", name, qi, j)
		}
	}
	// Compare counters only: StageNanos carries wall-clock timings, which
	// legitimately differ between otherwise identical runs.
	sa, sb := a.Stats, b.Stats
	sa.StageNanos = sb.StageNanos
	if sa != sb {
		t.Fatalf("%s query %d stats differ: %+v vs %+v", name, qi, a.Stats, b.Stats)
	}
}

func TestEmptyAndShortQueries(t *testing.T) {
	cfg, db, ix, _ := testWorld(t, 50, 1, 128, 1<<20)
	for _, e := range []interface {
		Search(int, []alphabet.Code) QueryResult
	}{NewQueryIndexed(cfg, db), NewDBIndexed(cfg, ix)} {
		for _, q := range [][]alphabet.Code{nil, alphabet.MustEncode("AR")} {
			res := e.Search(0, q)
			if len(res.HSPs) != 0 || res.Stats.Hits != 0 {
				t.Errorf("short query produced output: %+v", res)
			}
		}
	}
}

func TestMaxResultsCap(t *testing.T) {
	cfg, db, _, queries := testWorld(t, 150, 1, 256, 1<<20)
	cfg.MaxResults = 3
	e := NewQueryIndexed(cfg, db)
	res := e.Search(0, queries[0])
	if len(res.HSPs) > 3 {
		t.Errorf("MaxResults=3 returned %d HSPs", len(res.HSPs))
	}
}

func TestEValueCutoffFilters(t *testing.T) {
	cfg, db, _, queries := testWorld(t, 150, 1, 256, 1<<20)
	loose := *cfg
	loose.EValueCutoff = 10
	strict := *cfg
	strict.EValueCutoff = 1e-30
	nLoose := len(NewQueryIndexed(&loose, db).Search(0, queries[0]).HSPs)
	nStrict := len(NewQueryIndexed(&strict, db).Search(0, queries[0]).HSPs)
	if nStrict > nLoose {
		t.Errorf("strict cutoff returned more HSPs (%d) than loose (%d)", nStrict, nLoose)
	}
	for _, h := range NewQueryIndexed(&strict, db).Search(0, queries[0]).HSPs {
		if h.EValue > 1e-30 {
			t.Errorf("HSP with E-value %g passed 1e-30 cutoff", h.EValue)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestDFAEngineIdenticalToLookupTable(t *testing.T) {
	cfg, db, _, queries := testWorld(t, 120, 5, 192, 1<<20)
	lut := NewQueryIndexed(cfg, db)
	dfa := NewQueryIndexedDFA(cfg, db)
	for qi, q := range queries {
		a := lut.Search(qi, q)
		b := dfa.Search(qi, q)
		requireSameResult(t, "DFA", qi, a, b)
	}
	// Batch path too.
	ab := lut.SearchBatch(queries, 2)
	bb := dfa.SearchBatch(queries, 2)
	for qi := range queries {
		requireSameResult(t, "DFA batch", qi, ab[qi], bb[qi])
	}
}
