package search

import "repro/internal/ungapped"

// StampedDiags is a reusable array of per-diagonal two-hit states with
// epoch-based lazy reset: advancing the epoch invalidates every slot in O(1)
// instead of clearing the array, which matters because the db-indexed
// pipelines need one state per (subject, diagonal) of a whole index block
// and reset it for every query (Section II-B's last-hit arrays).
type StampedDiags struct {
	epoch  uint32
	stamps []uint32
	states []ungapped.DiagState
}

// Reset invalidates all states and ensures capacity for n slots.
func (sd *StampedDiags) Reset(n int) {
	if cap(sd.stamps) < n {
		sd.stamps = make([]uint32, n)
		sd.states = make([]ungapped.DiagState, n)
	}
	sd.stamps = sd.stamps[:n]
	sd.states = sd.states[:n]
	sd.epoch++
	if sd.epoch == 0 {
		// Stamp wrap-around: clear once and restart at epoch 1.
		for i := range sd.stamps {
			sd.stamps[i] = 0
		}
		sd.epoch = 1
	}
}

// Get returns the state for slot i, lazily resetting it on first access in
// the current epoch.
func (sd *StampedDiags) Get(i int) *ungapped.DiagState {
	if sd.stamps[i] != sd.epoch {
		sd.stamps[i] = sd.epoch
		sd.states[i].Reset()
	}
	return &sd.states[i]
}

// StampedLastPos is the pre-filter variant: only the last-hit position per
// (subject, diagonal) slot, since the pre-filter never consults extension
// state (Algorithm 2's lastHitArr).
type StampedLastPos struct {
	epoch  uint32
	stamps []uint32
	pos    []int32
}

// Reset invalidates all slots and ensures capacity for n of them.
func (sl *StampedLastPos) Reset(n int) {
	if cap(sl.stamps) < n {
		sl.stamps = make([]uint32, n)
		sl.pos = make([]int32, n)
	}
	sl.stamps = sl.stamps[:n]
	sl.pos = sl.pos[:n]
	sl.epoch++
	if sl.epoch == 0 {
		for i := range sl.stamps {
			sl.stamps[i] = 0
		}
		sl.epoch = 1
	}
}

// Check performs the two-hit pair test for a hit at qOff on slot i and
// records qOff as the slot's new last position. It returns the distance to
// the previous hit and whether the pair test passed (0 < dist < window).
func (sl *StampedLastPos) Check(i int, qOff int32, window int32) (dist int32, paired bool) {
	if sl.stamps[i] != sl.epoch {
		sl.stamps[i] = sl.epoch
		sl.pos[i] = qOff
		return 0, false
	}
	dist = qOff - sl.pos[i]
	sl.pos[i] = qOff
	return dist, dist > 0 && dist < window
}
