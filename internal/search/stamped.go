package search

import "repro/internal/ungapped"

// stampedDiag co-locates a diagonal's epoch stamp with its two-hit state so
// one hit touches one cache line. The earlier layout kept stamps and states
// in two parallel arrays, which doubled the random-access traffic of hit
// detection — the stage the paper singles out as memory-bound (Section II-B).
type stampedDiag struct {
	stamp uint32
	state ungapped.DiagState
}

// StampedDiags is a reusable array of per-diagonal two-hit states with
// epoch-based lazy reset: advancing the epoch invalidates every slot in O(1)
// instead of clearing the array, which matters because the db-indexed
// pipelines need one state per (subject, diagonal) of a whole index block
// and reset it for every query (Section II-B's last-hit arrays).
type StampedDiags struct {
	epoch uint32
	slots []stampedDiag
}

// Reset invalidates all states and ensures capacity for n slots.
func (sd *StampedDiags) Reset(n int) {
	if cap(sd.slots) < n {
		sd.slots = make([]stampedDiag, n)
	}
	sd.slots = sd.slots[:n]
	sd.epoch++
	if sd.epoch == 0 {
		// Stamp wrap-around: clear once and restart at epoch 1.
		for i := range sd.slots {
			sd.slots[i].stamp = 0
		}
		sd.epoch = 1
	}
}

// Get returns the state for slot i, lazily resetting it on first access in
// the current epoch.
func (sd *StampedDiags) Get(i int) *ungapped.DiagState {
	sl := &sd.slots[i]
	if sl.stamp != sd.epoch {
		sl.stamp = sd.epoch
		sl.state.Reset()
	}
	return &sl.state
}

// StampedLastPos is the pre-filter variant: only the last-hit position per
// (subject, diagonal) slot, since the pre-filter never consults extension
// state (Algorithm 2's lastHitArr). Stamp and position are packed into one
// uint32 word — epoch in the high 12 bits, query offset in the low 20 — so
// the per-hit random access costs a single 4-byte load and store on one
// cache line, and a block's whole slot array is half the footprint of an
// int32 position plus a separate stamp. The 12-bit epoch wraps every 4095
// resets, forcing one array clear (microseconds, amortized to nothing); the
// 20-bit position caps supported query offsets at MaxQOff, far beyond any
// protein (callers guard — see core's hit detection).
type StampedLastPos struct {
	epoch uint32 // current stamp, always in [1, 0xFFF]
	slots []uint32
}

// MaxQOff is the largest query offset Check can record: positions are packed
// into 20 bits, which covers queries ~30x longer than the largest known
// protein.
const MaxQOff = 1<<20 - 1

// Reset invalidates all slots and ensures capacity for n of them.
func (sl *StampedLastPos) Reset(n int) {
	if cap(sl.slots) < n {
		sl.slots = make([]uint32, n)
	}
	sl.slots = sl.slots[:n]
	sl.epoch++
	if sl.epoch == 1<<12 {
		for i := range sl.slots {
			sl.slots[i] = 0
		}
		sl.epoch = 1
	}
}

// Check performs the two-hit pair test for a hit at qOff on slot i and
// records qOff as the slot's new last position. It returns the distance to
// the previous hit and whether the pair test passed (0 < dist < window).
// qOff must be in [0, MaxQOff].
func (sl *StampedLastPos) Check(i int, qOff int32, window int32) (dist int32, paired bool) {
	v := sl.slots[i]
	cur := sl.epoch << 20
	sl.slots[i] = cur | uint32(qOff)
	if v&^uint32(MaxQOff) != cur {
		return 0, false
	}
	dist = qOff - int32(v&MaxQOff)
	return dist, dist > 0 && dist < window
}

// StampedLastPos16 is StampedLastPos squeezed into uint16 slots — epoch in
// the high 6 bits, query offset in the low 10 — for queries of at most
// MaxQOff16 offsets (covering all but the very largest known proteins; the
// detection kernel falls back to the uint32 form beyond that). The point is
// footprint: the last-hit array of a whole database block is accessed
// randomly, one slot per hit, so halving it roughly doubles the fraction of
// slots that survive in cache between hits. The 6-bit epoch wraps every 63
// resets, forcing one array clear — microseconds, amortized to nothing.
type StampedLastPos16 struct {
	epoch uint16 // current stamp, always in [1, 63]
	slots []uint16
}

// MaxQOff16 is the largest query offset StampedLastPos16 can record.
const MaxQOff16 = 1<<10 - 1

// Reset invalidates all slots and ensures capacity for n of them.
func (sl *StampedLastPos16) Reset(n int) {
	if cap(sl.slots) < n {
		sl.slots = make([]uint16, n)
	}
	sl.slots = sl.slots[:n]
	sl.epoch++
	if sl.epoch == 1<<6 {
		for i := range sl.slots {
			sl.slots[i] = 0
		}
		sl.epoch = 1
	}
}

// CheckCount is the uint16 form of StampedLastPos.CheckCount: the same
// store-then-fused-compare pair test, qOff must be in [0, MaxQOff16] and
// window >= 1. dist is meaningful only when inc is 1.
func (sl *StampedLastPos16) CheckCount(i int, qOff int32, window int32) (dist int32, inc int) {
	v := sl.slots[i]
	cur := sl.epoch << 10
	sl.slots[i] = cur | uint16(qOff)
	dist = qOff - int32(v&MaxQOff16)
	key := uint64(v&^uint16(MaxQOff16)^cur)<<32 | uint64(uint32(dist-1))
	if key < uint64(uint32(window-1)) {
		inc = 1
	}
	return dist, inc
}

// CheckCount is Check with the verdict folded into one comparison and
// returned as a 0/1 increment instead of a bool, so a caller can emit its
// pair record unconditionally and advance a write index by inc — no
// data-dependent branch between consecutive slot accesses. That matters in
// the detection kernel: the pair test passes unpredictably (~a third of
// hits), and a mispredicted branch there flushes the speculative window that
// would otherwise keep several of the random last-hit cache misses in
// flight. The epoch test and the window test 0 < dist < window fuse into a
// single unsigned compare: stale epochs force the high word of key non-zero,
// and dist-1 maps the valid range onto [0, window-1). dist is meaningful
// only when inc is 1.
func (sl *StampedLastPos) CheckCount(i int, qOff int32, window int32) (dist int32, inc int) {
	v := sl.slots[i]
	cur := sl.epoch << 20
	sl.slots[i] = cur | uint32(qOff)
	dist = qOff - int32(v&MaxQOff)
	key := uint64(v&^uint32(MaxQOff)^cur)<<32 | uint64(uint32(dist-1))
	if key < uint64(uint32(window-1)) {
		inc = 1
	}
	return dist, inc
}
