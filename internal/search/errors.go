package search

import (
	"context"
	"errors"
	"fmt"
)

// ErrDeadline is returned (possibly wrapped) by batch searches whose
// per-batch deadline expired before every task ran. The batch still returns
// partial results: queries whose tasks all completed are finalized and
// byte-identical to a full run; the rest are flagged incomplete.
var ErrDeadline = errors.New("search: batch deadline exceeded")

// BatchErr maps a context error observed by the scheduler to the batch-level
// typed error: deadline expiry becomes ErrDeadline (wrapping
// context.DeadlineExceeded so both errors.Is forms work); plain cancellation
// is passed through.
func BatchErr(ctxErr error) error {
	if ctxErr == nil {
		return nil
	}
	if errors.Is(ctxErr, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrDeadline, ctxErr)
	}
	return ctxErr
}

// TaskPanicError reports a panic recovered inside one scheduler task, with
// the (block, query) attribution that lets a single poisoned query fail
// alone while the rest of the batch completes. Value is the recovered panic
// payload; Stack is the goroutine stack captured at recovery.
type TaskPanicError struct {
	Block int // index block of the failed task (-1 when not block-scoped)
	Query int // query index of the failed task
	Value any
	Stack []byte
}

func (e *TaskPanicError) Error() string {
	return fmt.Sprintf("search: task (block %d, query %d) panicked: %v", e.Block, e.Query, e.Value)
}

// QueryCancelledError flags a query whose tasks were not all executed
// because the batch context was cancelled or its deadline expired.
type QueryCancelledError struct {
	Query int
	Cause error // the context error that stopped the batch
}

func (e *QueryCancelledError) Error() string {
	return fmt.Sprintf("search: query %d cancelled: %v", e.Query, e.Cause)
}

// Unwrap exposes the context cause, so errors.Is(err, context.Canceled) and
// errors.Is(err, ErrDeadline) work on per-query errors too.
func (e *QueryCancelledError) Unwrap() error { return e.Cause }
