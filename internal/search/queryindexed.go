package search

import (
	"repro/internal/alphabet"
	"repro/internal/dbase"
	"repro/internal/gapped"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/qindex"
	"repro/internal/ungapped"
)

// QueryIndexed is the classic NCBI-BLAST engine: a lookup table is built
// from the query, subject sequences are scanned one at a time, and hit
// detection, ungapped extension, and gapped extension run interleaved.
// One small last-hit array per subject keeps its memory behaviour
// cache-friendly (Section II-B) — this is the paper's "NCBI" baseline.
type QueryIndexed struct {
	Cfg *Config
	DB  *dbase.DB
	// subjOff maps a sequence index to its starting byte offset within the
	// concatenated subject space, for cache-simulation traces.
	subjOff []int64
}

// NewQueryIndexed creates the engine over db, which is used in its current
// order. For output comparisons against the db-indexed engines, pass the
// same length-sorted database those engines use.
func NewQueryIndexed(cfg *Config, db *dbase.DB) *QueryIndexed {
	e := &QueryIndexed{Cfg: cfg, DB: db, subjOff: make([]int64, db.NumSeqs()+1)}
	var off int64
	for i := range db.Seqs {
		e.subjOff[i] = off
		off += int64(len(db.Seqs[i].Data))
	}
	e.subjOff[db.NumSeqs()] = off
	return e
}

// qiScratch is the per-worker reusable state.
type qiScratch struct {
	diags   StampedDiags
	exts    []ungapped.Ext
	prof    matrix.Profile
	aligner *gapped.Aligner
}

func (e *QueryIndexed) newScratch() *qiScratch {
	return &qiScratch{aligner: gapped.NewAligner(e.Cfg.Matrix, e.Cfg.Gap)}
}

// Search runs one query through the engine.
func (e *QueryIndexed) Search(queryIdx int, q []alphabet.Code) QueryResult {
	return e.searchOne(e.newScratch(), queryIdx, q)
}

// SearchBatch searches all queries with dynamic scheduling over the given
// number of worker threads (<= 0 means GOMAXPROCS). Results are returned in
// query order.
func (e *QueryIndexed) SearchBatch(queries [][]alphabet.Code, threads int) []QueryResult {
	results := make([]QueryResult, len(queries))
	scratches := makeScratches(threads, len(queries), e.newScratch)
	parallel.ForWorkers(len(queries), threads, func(w, i int) {
		results[i] = e.searchOne(scratches[w], i, queries[i])
	})
	return results
}

func (e *QueryIndexed) searchOne(sc *qiScratch, queryIdx int, q []alphabet.Code) QueryResult {
	cfg := e.Cfg
	var st Stats
	if len(q) < alphabet.W {
		return Finalize(cfg, sc.aligner, queryIdx, q, e.DB, nil, st)
	}
	ix := qindex.Build(q, cfg.Neighbors)
	sc.prof.Fill(cfg.Matrix, q)
	canon := &ungapped.Canon{P: cfg.TwoHit, Matrix: cfg.Matrix, Prof: &sc.prof}
	diagBias := len(q) - alphabet.W
	trace := cfg.Trace
	var subjects []SubjectAlignments

	for si := range e.DB.Seqs {
		s := e.DB.Seqs[si].Data
		if len(s) < alphabet.W {
			continue
		}
		numDiags := len(q) + len(s) - 2*alphabet.W + 1
		sc.diags.Reset(numDiags)
		sc.exts = sc.exts[:0]
		for sOff := 0; sOff+alphabet.W <= len(s); sOff++ {
			w := alphabet.WordAt(s, sOff)
			if trace != nil {
				trace(SpaceSubject, e.subjOff[si]+int64(sOff))
			}
			if !ix.Present(w) {
				continue
			}
			ps := ix.Positions(w)
			base := int64(ix.Base(w)) * 4
			for pi, qPos := range ps {
				st.Hits++
				diag := sOff - int(qPos) + diagBias
				if trace != nil {
					trace(SpaceIndex, base+int64(pi)*4)
					trace(SpaceLastHit, int64(diag)*8)
				}
				d := sc.diags.Get(diag)
				ext, paired, extended, keep := canon.Step(d, q, s, int(qPos), sOff)
				if paired {
					st.Pairs++
				}
				if extended {
					st.Extensions++
					if trace != nil {
						traceSpan(trace, SpaceSubject, e.subjOff[si]+int64(ext.SStart), e.subjOff[si]+int64(ext.SEnd))
					}
				}
				if keep {
					st.Kept++
					sc.exts = append(sc.exts, ext)
				}
			}
		}
		if len(sc.exts) > 0 {
			alns := GappedStage(cfg, sc.aligner, &sc.prof, q, s, sc.exts, &st)
			if len(alns) > 0 {
				subjects = append(subjects, SubjectAlignments{Subject: si, Alns: alns})
			}
		}
	}
	return Finalize(cfg, sc.aligner, queryIdx, q, e.DB, subjects, st)
}

// traceSpan emits one traced access per byte of [lo, hi) — the sequential
// read pattern of an ungapped extension over the subject.
func traceSpan(trace func(uint8, int64), space uint8, lo, hi int64) {
	for off := lo; off < hi; off++ {
		trace(space, off)
	}
}

// makeScratches builds one scratch per worker that parallel.ForWorkers will
// actually use.
func makeScratches[T any](threads, n int, newFn func() T) []T {
	out := make([]T, parallel.NumWorkers(n, threads))
	for i := range out {
		out[i] = newFn()
	}
	return out
}
