package search

import (
	"reflect"
	"testing"
)

// TestStatsAddCoversEveryField fills a Stats value with distinct non-zero
// values via reflection and checks Add folds every field. This pins Add
// against the classic drift bug: a new counter added to the struct but not
// to Add silently vanishes from batch totals.
func TestStatsAddCoversEveryField(t *testing.T) {
	fill := func(mult int64) Stats {
		var s Stats
		v := reflect.ValueOf(&s).Elem()
		n := int64(1)
		var fillValue func(v reflect.Value)
		fillValue = func(v reflect.Value) {
			switch v.Kind() {
			case reflect.Int64:
				v.SetInt(n * mult)
				n++
			case reflect.Array:
				for i := 0; i < v.Len(); i++ {
					fillValue(v.Index(i))
				}
			case reflect.Struct:
				for i := 0; i < v.NumField(); i++ {
					fillValue(v.Field(i))
				}
			default:
				t.Fatalf("Stats contains a %v field; teach this test (and Add) about it", v.Kind())
			}
		}
		fillValue(v)
		return s
	}

	a, b := fill(1), fill(10)
	got := a
	got.Add(b)
	want := fill(11) // field-wise a+b, since fill is linear in mult
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Stats.Add missed a field:\n got  %+v\n want %+v", got, want)
	}
}

// TestStatsTotalStageNanos checks the span-total helper sums exactly the
// stage array.
func TestStatsTotalStageNanos(t *testing.T) {
	var s Stats
	var want int64
	for i := range s.StageNanos {
		s.StageNanos[i] = int64(i + 1)
		want += int64(i + 1)
	}
	if got := s.TotalStageNanos(); got != want {
		t.Errorf("TotalStageNanos = %d, want %d", got, want)
	}
}

func TestSchedStatsUtilization(t *testing.T) {
	cases := []struct {
		name string
		s    SchedStats
		want float64
	}{
		{"zero value", SchedStats{}, 0},
		{"zero workers", SchedStats{BusyNanos: 100, ElapsedNanos: 100}, 0},
		{"zero elapsed", SchedStats{Workers: 4, BusyNanos: 100}, 0},
		{"negative elapsed", SchedStats{Workers: 4, BusyNanos: 100, ElapsedNanos: -5}, 0},
		{"fully busy", SchedStats{Workers: 2, BusyNanos: 200, ElapsedNanos: 100}, 1},
		{"half busy", SchedStats{Workers: 2, BusyNanos: 100, ElapsedNanos: 100}, 0.5},
		{"stall dominated", SchedStats{Workers: 8, BusyNanos: 8, ElapsedNanos: 1000, StallNanos: 7992}, 0.001},
	}
	for _, tc := range cases {
		if got := tc.s.Utilization(); got != tc.want {
			t.Errorf("%s: Utilization() = %v, want %v", tc.name, got, tc.want)
		}
	}
}
