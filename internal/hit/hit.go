// Package hit defines the hit records exchanged between hit detection, hit
// reordering, and ungapped extension, and the packed 32-bit key the paper
// sorts on (Section IV-A): subject sequence id in the high bits, diagonal id
// in the low bits, so one sort pass orders hits by sequence and diagonal at
// once. Only the query offset is stored alongside the key; the subject
// offset is recomputed from the diagonal when needed.
package hit

import "fmt"

// Hit is a single word hit: packed (sequence, diagonal) key plus the query
// offset where the hit's word starts.
type Hit struct {
	Key  uint32
	QOff int32
}

// SortKey returns the radix key of the hit.
func (h Hit) SortKey() uint32 { return h.Key }

// Pair is a two-hit pair selected for ungapped extension: the second hit of
// the pair plus the distance back to the first hit on the same diagonal.
type Pair struct {
	Key  uint32
	QOff int32 // query offset of the second hit's word start
	Dist int32 // distance (in query positions) back to the first hit
}

// SortKey returns the radix key of the pair.
func (p Pair) SortKey() uint32 { return p.Key }

// KeyCoder packs and unpacks (sequence, diagonal) keys for one
// (index block, query) combination. The diagonal field width is chosen per
// block so that blocks with short sequences spend fewer bits on diagonals
// and leave more for sequence ids.
type KeyCoder struct {
	DiagBits uint32
	NumSeqs  int
	NumDiags int
}

// NewKeyCoder sizes the key fields for a block with numSeqs sequences and at
// most numDiags diagonals per sequence (numDiags = maxSubjectLen + queryLen
// is always sufficient). It fails if the two fields cannot share 32 bits,
// which the index builder treats as "make the blocks smaller".
func NewKeyCoder(numSeqs, numDiags int) (KeyCoder, error) {
	if numSeqs <= 0 || numDiags <= 0 {
		return KeyCoder{}, fmt.Errorf("hit: invalid key space %d seqs x %d diags", numSeqs, numDiags)
	}
	diagBits := uint32(bitsFor(numDiags))
	seqBits := uint32(bitsFor(numSeqs))
	if diagBits+seqBits > 32 {
		return KeyCoder{}, fmt.Errorf("hit: key space %d seqs x %d diags needs %d bits > 32",
			numSeqs, numDiags, diagBits+seqBits)
	}
	return KeyCoder{DiagBits: diagBits, NumSeqs: numSeqs, NumDiags: numDiags}, nil
}

// bitsFor returns the number of bits needed to represent values 0..n-1.
func bitsFor(n int) int {
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	if bits == 0 {
		bits = 1
	}
	return bits
}

// Encode packs a (sequence, diagonal) pair. Arguments must be in range; this
// is the hot path, so validation is reserved for tests (see EncodeChecked).
func (k KeyCoder) Encode(seq, diag int) uint32 {
	return uint32(seq)<<k.DiagBits | uint32(diag)
}

// EncodeChecked is Encode with range validation, for tests and debugging.
func (k KeyCoder) EncodeChecked(seq, diag int) (uint32, error) {
	if seq < 0 || seq >= k.NumSeqs {
		return 0, fmt.Errorf("hit: sequence %d out of range [0,%d)", seq, k.NumSeqs)
	}
	if diag < 0 || diag >= k.NumDiags {
		return 0, fmt.Errorf("hit: diagonal %d out of range [0,%d)", diag, k.NumDiags)
	}
	return k.Encode(seq, diag), nil
}

// Decode unpacks a key into its (sequence, diagonal) pair.
func (k KeyCoder) Decode(key uint32) (seq, diag int) {
	return int(key >> k.DiagBits), int(key & (1<<k.DiagBits - 1))
}

// KeyBits returns the number of significant bits in keys from this coder,
// which bounds the number of radix passes the sort needs.
func (k KeyCoder) KeyBits() int {
	return bitsFor(k.NumSeqs) + int(k.DiagBits)
}
