package hit

import (
	"testing"
	"testing/quick"
)

func TestKeyCoderRoundTrip(t *testing.T) {
	k, err := NewKeyCoder(1000, 4096)
	if err != nil {
		t.Fatal(err)
	}
	check := func(seq, diag uint16) bool {
		s := int(seq) % 1000
		d := int(diag) % 4096
		gotSeq, gotDiag := k.Decode(k.Encode(s, d))
		return gotSeq == s && gotDiag == d
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyOrderingIsSeqMajor(t *testing.T) {
	k, err := NewKeyCoder(100, 256)
	if err != nil {
		t.Fatal(err)
	}
	// Sorting keys numerically must order by sequence first, then diagonal.
	if k.Encode(1, 0) <= k.Encode(0, 255) {
		t.Error("key for (1,0) not greater than (0,255)")
	}
	if k.Encode(5, 10) >= k.Encode(5, 11) {
		t.Error("diagonal ordering broken within a sequence")
	}
}

func TestNewKeyCoderRejectsOverflow(t *testing.T) {
	if _, err := NewKeyCoder(1<<20, 1<<20); err == nil {
		t.Error("accepted 40-bit key space")
	}
	if _, err := NewKeyCoder(0, 10); err == nil {
		t.Error("accepted zero sequences")
	}
	if _, err := NewKeyCoder(10, 0); err == nil {
		t.Error("accepted zero diagonals")
	}
}

func TestEncodeChecked(t *testing.T) {
	k, _ := NewKeyCoder(10, 100)
	if _, err := k.EncodeChecked(10, 0); err == nil {
		t.Error("accepted out-of-range sequence")
	}
	if _, err := k.EncodeChecked(0, 100); err == nil {
		t.Error("accepted out-of-range diagonal")
	}
	got, err := k.EncodeChecked(9, 99)
	if err != nil {
		t.Fatal(err)
	}
	if got != k.Encode(9, 99) {
		t.Error("EncodeChecked disagrees with Encode")
	}
}

func TestBitsFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {256, 8}, {257, 9}, {4096, 12},
	}
	for _, c := range cases {
		if got := bitsFor(c.n); got != c.want {
			t.Errorf("bitsFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestKeyBits(t *testing.T) {
	k, _ := NewKeyCoder(1000, 4096) // 10 + 12 bits
	if k.KeyBits() != 22 {
		t.Errorf("KeyBits = %d, want 22", k.KeyBits())
	}
}

func TestTightKeySpaceFits(t *testing.T) {
	// 16 bits + 16 bits exactly fills the key.
	k, err := NewKeyCoder(1<<16, 1<<16)
	if err != nil {
		t.Fatalf("exact 32-bit key space rejected: %v", err)
	}
	s, d := k.Decode(k.Encode(65535, 65535))
	if s != 65535 || d != 65535 {
		t.Error("corner round trip failed")
	}
}

func TestSortKeyAccessors(t *testing.T) {
	h := Hit{Key: 42, QOff: 7}
	if h.SortKey() != 42 {
		t.Error("Hit.SortKey")
	}
	p := Pair{Key: 43, QOff: 8, Dist: 3}
	if p.SortKey() != 43 {
		t.Error("Pair.SortKey")
	}
}
