package bench

import (
	"fmt"
	"time"

	"repro/internal/alphabet"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/search"
	"repro/internal/seqgen"
	"repro/internal/simcache"
)

// ScaledLLCBytes is the simulated last-level cache size for a database of
// dbBytes residues: the paper's env_nr (1.7GB) to 30MB LLC ratio is roughly
// 57:1, so the scaled model keeps LLC ~= dbBytes/4..57 with sane clamps.
// Index blocks are sized against this same value (Scale.blockResidues), so
// the block:LLC relationship of the paper's Section V-B holds at any scale.
func ScaledLLCBytes(dbBytes int64) int64 {
	llc := dbBytes / 4
	if llc < 256<<10 {
		llc = 256 << 10
	}
	if llc > 30<<20 {
		llc = 30 << 20
	}
	return llc
}

// scaledHierarchy sizes a simulated memory hierarchy in proportion to the
// scaled-down database, so the workload stresses it the way the paper's
// full-size databases stress a real 30MB LLC. The shape (L1:L2:LLC ratios)
// follows the evaluation machine.
func scaledHierarchy(dbBytes int64) *simcache.Hierarchy {
	llc := ScaledLLCBytes(dbBytes)
	l2 := int(llc / 64)
	if l2 < 32<<10 {
		l2 = 32 << 10
	}
	l1 := l2 / 8
	if l1 < 8<<10 {
		l1 = 8 << 10
	}
	tlb := int(llc >> 15) // ~1 entry per 32KB of LLC
	if tlb < 64 {
		tlb = 64
	}
	if tlb > 1536 {
		tlb = 1536
	}
	return simcache.NewHierarchy(l1, l2, int(llc), tlb)
}

// engineRunner abstracts "search one query" for the trace harness.
type engineRunner struct {
	name string
	run  func(cfg *search.Config, q []alphabet.Code) search.QueryResult
}

func runners(w *Workload) []engineRunner {
	return []engineRunner{
		{"NCBI", func(cfg *search.Config, q []alphabet.Code) search.QueryResult {
			return search.NewQueryIndexed(cfg, w.DB).Search(0, q)
		}},
		{"NCBI-db", func(cfg *search.Config, q []alphabet.Code) search.QueryResult {
			return search.NewDBIndexed(cfg, w.Index).Search(0, q)
		}},
		{"muBLASTP", func(cfg *search.Config, q []alphabet.Code) search.QueryResult {
			return core.New(cfg, w.Index).Search(0, q)
		}},
	}
}

// Fig2 reproduces the motivation profile (Fig 2): LLC miss rate, TLB miss
// rate, stalled-cycle proxy, and execution time for the query-indexed and
// db-indexed NCBI pipelines searching one length-512 query against the
// env_nr-like database. A muBLASTP column is added to show the fix.
func Fig2(s Scale) (*Table, error) {
	w, err := EnvNR(s)
	if err != nil {
		return nil, err
	}
	q := w.Queries["512"][0]
	t := &Table{
		Title:   "Fig 2: profile of query-indexed vs db-indexed NCBI (env_nr-like, one 512-residue query)",
		Columns: []string{"metric", "NCBI", "NCBI-db", "muBLASTP"},
	}
	type row struct {
		llc, tlb, stall float64
		elapsed         time.Duration
	}
	results := make([]row, 0, 3)
	for _, r := range runners(w) {
		// Timed run, untraced.
		cfg := *w.Cfg
		var elapsed time.Duration
		elapsed = TimeIt(func() { r.run(&cfg, q) })
		// Traced run through the scaled hierarchy.
		h := scaledHierarchy(w.DB.TotalResidues)
		cfg.Trace = h.Tracer()
		r.run(&cfg, q)
		rep := h.Report()
		results = append(results, row{rep.LLCMissRate, rep.TLBMissRate, rep.StalledFrac, elapsed})
	}
	t.AddRow("LLC miss rate (%)", pct(results[0].llc), pct(results[1].llc), pct(results[2].llc))
	t.AddRow("TLB miss rate (%)", pct(results[0].tlb), pct(results[1].tlb), pct(results[2].tlb))
	t.AddRow("stalled-cycle proxy (%)", pct(results[0].stall), pct(results[1].stall), pct(results[2].stall))
	t.AddRow("execution time (ms)", ms(results[0].elapsed), ms(results[1].elapsed), ms(results[2].elapsed))
	t.Note("paper: NCBI-db has much higher LLC/TLB miss rates and is slower than NCBI despite the database index")
	return t, nil
}

func pct(v float64) string            { return fmt.Sprintf("%.1f", 100*v) }
func ms(d time.Duration) string       { return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000) }
func secs(d time.Duration) string     { return fmt.Sprintf("%.3f", d.Seconds()) }
func ratio(a, b time.Duration) string { return fmt.Sprintf("%.2fx", float64(a)/float64(b)) }

// Fig6 reproduces the pre-filter survival measurement (Fig 6): the
// percentage of hits that remain after hit pre-filtering, per query length,
// on the uniprot_sprot-like database.
func Fig6(s Scale) (*Table, error) {
	w, err := Uniprot(s)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Fig 6: percentage of hits remaining after pre-filtering (uniprot_sprot-like)",
		Columns: []string{"query length", "hits", "pairs after pre-filter", "remaining (%)"},
	}
	for _, name := range []string{"128", "256", "512"} {
		engine := core.New(w.Cfg, w.Index)
		var hits, pairs int64
		for i, q := range w.Queries[name] {
			st := engine.Search(i, q).Stats
			hits += st.Hits
			pairs += st.Pairs
		}
		t.AddRow(name, hits, pairs, pct(float64(pairs)/float64(hits)))
	}
	t.Note("paper: <5%% of hits remain on real databases; synthetic databases plant denser homologies, so the fraction is higher but stays a small minority")
	return t, nil
}

// Fig7 reproduces the database length distributions (Fig 7).
func Fig7(s Scale) (*Table, error) {
	t := &Table{
		Title:   "Fig 7: sequence length distributions",
		Columns: []string{"length bin", "uniprot-like (%)", "env_nr-like (%)"},
	}
	const binWidth, maxLen = 100, 1200
	profiles := []struct {
		prof  seqgen.Profile
		n     int
		stats seqgen.LengthStats
		bins  []int
	}{
		{prof: seqgen.UniprotProfile(), n: s.UniprotSeqs},
		{prof: seqgen.EnvNRProfile(), n: s.EnvNRSeqs},
	}
	for i := range profiles {
		g := seqgen.New(profiles[i].prof, s.Seed)
		seqs := g.Database(profiles[i].n)
		profiles[i].stats = seqgen.Summarize(seqs)
		_, counts := seqgen.Histogram(seqs, binWidth, maxLen)
		profiles[i].bins = counts
	}
	for b := 0; b < maxLen/binWidth; b++ {
		label := fmt.Sprintf("%d-%d", b*binWidth, (b+1)*binWidth)
		if b == maxLen/binWidth-1 {
			label = fmt.Sprintf(">=%d", b*binWidth)
		}
		t.AddRow(label,
			pct(float64(profiles[0].bins[b])/float64(profiles[0].n)),
			pct(float64(profiles[1].bins[b])/float64(profiles[1].n)))
	}
	t.Note("uniprot-like: median %d mean %.0f (paper: 292 / 355); env_nr-like: median %d mean %.0f (paper: 177 / 197)",
		profiles[0].stats.Median, profiles[0].stats.Mean,
		profiles[1].stats.Median, profiles[1].stats.Mean)
	return t, nil
}

// Fig8 reproduces the block-size sweep (Fig 8): execution time and LLC miss
// rate of NCBI-db and muBLASTP at index block sizes from 128KB to 4MB on
// the uniprot_sprot-like database. Block bytes are scaled to the database
// the same way the hierarchy is.
func Fig8(s Scale) (*Table, error) {
	w, err := Uniprot(s)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Fig 8: execution time and LLC miss rate vs index block size (uniprot_sprot-like, batch of " +
			fmt.Sprint(s.Batch) + " queries/length)",
		Columns: []string{"block size", "muBLASTP time (s)", "NCBI-db time (s)",
			"muBLASTP LLC miss (%)", "NCBI-db LLC miss (%)"},
	}
	blockBytes := []int64{128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20}
	// Scale block sizes the same factor as the database: the paper sweeps
	// 128KB-4MB against a 250MB database; we keep the sweep labels and scale
	// the actual residue counts so the blocks relate to our scaled LLC model
	// the way the paper's do to 30MB.
	dbBytes := w.DB.TotalResidues
	factor := float64(dbBytes) / float64(250<<20)
	if factor > 1 {
		factor = 1
	}
	queries := append(append(append([][]alphabet.Code{},
		w.Queries["128"]...), w.Queries["256"]...), w.Queries["512"]...)
	for _, bb := range blockBytes {
		residues := int64(float64(bb) * factor / 4)
		if residues < 1024 {
			residues = 1024
		}
		if err := w.Reindex(residues); err != nil {
			return nil, err
		}
		mu := core.New(w.Cfg, w.Index)
		db := search.NewDBIndexed(w.Cfg, w.Index)
		muTime := TimeIt(func() { mu.SearchBatch(queries, s.threads()) })
		dbTime := TimeIt(func() { db.SearchBatch(queries, s.threads()) })

		muLLC := traceLLC(w, func(cfg *search.Config) {
			core.New(cfg, w.Index).Search(0, w.Queries["256"][0])
		})
		dbLLC := traceLLC(w, func(cfg *search.Config) {
			search.NewDBIndexed(cfg, w.Index).Search(0, w.Queries["256"][0])
		})
		t.AddRow(sizeLabel(bb), secs(muTime), secs(dbTime), pct(muLLC), pct(dbLLC))
	}
	t.Note("paper: both systems are fastest near the b = LLC/(2t+1) block size; NCBI-db degrades much faster for large blocks")
	return t, nil
}

func traceLLC(w *Workload, run func(cfg *search.Config)) float64 {
	cfg := *w.Cfg
	h := scaledHierarchy(w.DB.TotalResidues)
	cfg.Trace = h.Tracer()
	run(&cfg)
	return h.Report().LLCMissRate
}

func sizeLabel(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	default:
		return fmt.Sprintf("%dKB", b>>10)
	}
}

// Fig9 reproduces the single-node engine comparison (Fig 9): batch
// execution times of NCBI, NCBI-db, and muBLASTP on both databases across
// the four query sets, with muBLASTP's speedups.
func Fig9(s Scale) (*Table, error) {
	t := &Table{
		Title: "Fig 9: multithreaded engine comparison (batch of " + fmt.Sprint(s.Batch) + " queries)",
		Columns: []string{"database", "queries", "NCBI (s)", "NCBI-db (s)", "muBLASTP (s)",
			"measured vs NCBI", "measured vs NCBI-db", "modeled vs NCBI-db"},
	}
	for _, build := range []func(Scale) (*Workload, error){Uniprot, EnvNR} {
		w, err := build(s)
		if err != nil {
			return nil, err
		}
		ncbi := search.NewQueryIndexed(w.Cfg, w.DB)
		ncbiDB := search.NewDBIndexed(w.Cfg, w.Index)
		mu := core.New(w.Cfg, w.Index)
		for _, name := range QuerySetNames {
			qs := w.Queries[name]
			tn := TimeIt(func() { ncbi.SearchBatch(qs, s.threads()) })
			td := TimeIt(func() { ncbiDB.SearchBatch(qs, s.threads()) })
			tm := TimeIt(func() { mu.SearchBatch(qs, s.threads()) })
			// Modeled times: the same sub-batch traced through the scaled
			// Haswell-shaped hierarchy. Wall time on the development host
			// cannot show the paper's DRAM-bound gap when the scaled
			// database fits in the host's (huge) LLC; the modeled times
			// project the access streams onto the paper's regime.
			sub := qs
			if len(sub) > 4 {
				sub = sub[:4]
			}
			md := modeledBatch(w, sub, func(cfg *search.Config) batchFn {
				e := search.NewDBIndexed(cfg, w.Index)
				return func(q [][]alphabet.Code) { e.SearchBatch(q, 1) }
			})
			mm := modeledBatch(w, sub, func(cfg *search.Config) batchFn {
				e := core.New(cfg, w.Index)
				return func(q [][]alphabet.Code) { e.SearchBatch(q, 1) }
			})
			t.AddRow(w.Name, name, secs(tn), secs(td), secs(tm),
				ratio(tn, tm), ratio(td, tm),
				fmt.Sprintf("%.2fx", md/mm))
		}
	}
	t.Note("measured: wall time on this host (db fits the host LLC, so locality gains barely register)")
	t.Note("modeled: trace-driven memory time on the scaled Haswell hierarchy — comparable only between the two db-indexed engines, whose work structure is identical; NCBI's streaming scan costs are dominated by instruction/bandwidth effects the latency model does not capture (DESIGN.md)")
	t.Note("paper: muBLASTP up to 5.1x over NCBI and 3.9x over NCBI-db; NCBI-db is not consistently faster than NCBI")
	return t, nil
}

type batchFn func(q [][]alphabet.Code)

// modeledBatch returns the modeled seconds (2.5GHz Haswell) for searching
// the sub-batch with the engine built by mk, traced through the scaled
// hierarchy.
func modeledBatch(w *Workload, sub [][]alphabet.Code, mk func(cfg *search.Config) batchFn) float64 {
	cfg := *w.Cfg
	h := scaledHierarchy(w.DB.TotalResidues)
	cfg.Trace = h.Tracer()
	mk(&cfg)(sub)
	return h.Report().ModeledSeconds(2.5)
}

// Fig10 reproduces the multi-node scaling comparison (Fig 10): execution
// time and speedup of muBLASTP-MPI vs mpiBLAST on the env_nr-like workload
// at 1-128 nodes. Per-cell compute costs are calibrated from real
// single-thread runs of the corresponding engines on this machine; the
// cluster itself is simulated (see internal/cluster and DESIGN.md).
func Fig10(s Scale) (*Table, error) {
	w, err := EnvNR(s)
	if err != nil {
		return nil, err
	}
	queries := w.Queries["mixed"]

	// Calibrate seconds-per-cell for both engines from measured
	// single-thread runs on this host.
	cells := float64(TotalQueryResidues(queries)) * float64(w.DB.TotalResidues)
	ncbiEng := search.NewQueryIndexed(w.Cfg, w.DB)
	muEng := core.New(w.Cfg, w.Index)
	tNCBI := TimeIt(func() { ncbiEng.SearchBatch(queries, 1) })
	tMuSerial := TimeIt(func() { muEng.SearchBatch(queries, 1) })
	p := cluster.DefaultCostParams()
	p.SecPerCellNCBI = tNCBI.Seconds() / cells
	p.SecPerCellMu = tMuSerial.Seconds() / cells

	// Measure intra-node threading efficiency of muBLASTP on this machine
	// when it has real parallelism; otherwise keep the default.
	threads := s.threads()
	if threads > 1 {
		tPar := TimeIt(func() { muEng.SearchBatch(queries, threads) })
		p.ThreadEff = tMuSerial.Seconds() / (float64(threads) * tPar.Seconds())
		if p.ThreadEff > 1 {
			p.ThreadEff = 1
		}
		if p.ThreadEff < 0.5 {
			p.ThreadEff = 0.5
		}
	}

	// Project to the paper's full env_nr scale: sequence lengths drawn from
	// the same distribution (env_nr has ~6M sequences; 2M keeps the
	// simulation fast while far exceeding any per-node cache), 128-query
	// batch.
	gLen := seqgen.New(seqgen.EnvNRProfile(), s.Seed+1)
	const fullSeqs = 2000000
	seqLens := make([]int, fullSeqs)
	for i := range seqLens {
		seqLens[i] = gLen.Length()
	}
	queryLens := make([]int, 128)
	var totalRes int64
	for _, l := range seqLens {
		totalRes += int64(l)
	}
	avgQ := 0
	for i := range queryLens {
		queryLens[i] = gLen.Length()
		avgQ += queryLens[i]
	}
	avgQ /= len(queryLens)

	// Tie the coordination constants to the calibrated compute scale: the
	// super node's per-(query, worker-result) merge cost is a small, fixed
	// fraction of one worker's per-query compute at 1 node. The fractions
	// are the model's free knobs (DESIGN.md); the *growth laws* — per-query
	// serialized merging scaling with worker count for mpiBLAST, one batch
	// merge for muBLASTP — are the paper's Section IV-D mechanics.
	perQueryPerProc := p.SecPerCellNCBI * float64(avgQ) * float64(totalRes) / 16
	p.MergePerResult = 1.2e-5 * perQueryPerProc
	p.BatchMergePerResult = p.MergePerResult / 10
	p.DispatchPerTask = p.MergePerResult / 10

	t := &Table{
		Title: "Fig 10: multi-node scaling, muBLASTP-MPI vs mpiBLAST (env_nr-like, simulated cluster, calibrated costs)",
		Columns: []string{"nodes", "mpiBLAST (s)", "muBLASTP (s)", "speedup",
			"mpiBLAST eff (%)", "muBLASTP eff (%)"},
	}
	nodeCounts := []int{1, 2, 4, 8, 16, 32, 64, 128}
	var mb1, mu1 float64
	for _, nodes := range nodeCounts {
		frag := contiguousResidues(seqLens, nodes*16)
		part := roundRobinResidues(seqLens, nodes)
		mb := cluster.SimulateMPIBlast(queryLens, frag, p)
		muM := cluster.SimulateMuBLASTP(queryLens, part, 16, p)
		if nodes == 1 {
			mb1, mu1 = mb.Total, muM.Total
		}
		t.AddRow(nodes,
			fmt.Sprintf("%.1f", mb.Total),
			fmt.Sprintf("%.1f", muM.Total),
			fmt.Sprintf("%.1fx", mb.Total/muM.Total),
			pct(mb1/(float64(nodes)*mb.Total)),
			pct(mu1/(float64(nodes)*muM.Total)))
	}
	t.Note("calibrated sec/cell: NCBI %.3g, muBLASTP %.3g; thread efficiency %.2f", p.SecPerCellNCBI, p.SecPerCellMu, p.ThreadEff)
	t.Note("paper: muBLASTP 88-92%% scaling efficiency vs mpiBLAST 31-57%%; 2.2-8.9x speedup at 128 nodes")
	return t, nil
}

func roundRobinResidues(seqLens []int, parts int) []int64 {
	sorted := append([]int(nil), seqLens...)
	insertionSortInts(sorted)
	out := make([]int64, parts)
	for i, l := range sorted {
		out[i%parts] += int64(l)
	}
	return out
}

func contiguousResidues(seqLens []int, parts int) []int64 {
	out := make([]int64, parts)
	n := len(seqLens)
	for p := 0; p < parts; p++ {
		lo, hi := p*n/parts, (p+1)*n/parts
		for i := lo; i < hi; i++ {
			out[p] += int64(seqLens[i])
		}
	}
	return out
}

func insertionSortInts(a []int) {
	// Shell-style gap sort to keep it dependency-free yet fast enough for
	// 200k elements.
	gaps := []int{65536, 16384, 4096, 1024, 256, 64, 16, 4, 1}
	for _, gap := range gaps {
		for i := gap; i < len(a); i++ {
			v := a[i]
			j := i - gap
			for j >= 0 && a[j] > v {
				a[j+gap] = a[j]
				j -= gap
			}
			a[j+gap] = v
		}
	}
}

// IndexSize reproduces the Section III index accounting: the two-level
// index (exact-word positions + shared neighbor table) vs the
// neighbor-expanded alternative.
func IndexSize(s Scale) (*Table, error) {
	w, err := Uniprot(s)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Section III: database index size, two-level vs neighbor-expanded (uniprot_sprot-like)",
		Columns: []string{"structure", "bytes", "relative"},
	}
	twoLevel := w.Index.SizeBytes() + w.Cfg.Neighbors.SizeBytes()
	expanded := w.Index.ExpandedSizeBytes()
	t.AddRow("two-level (positions + neighbor table)", twoLevel, "1.00x")
	t.AddRow("neighbor-expanded positions", expanded, fmt.Sprintf("%.1fx", float64(expanded)/float64(twoLevel)))
	t.Note("positions: %d; avg neighbors/word drive the expansion factor", w.Index.NumPositions())
	return t, nil
}

// Verify reruns the Section V-E check at harness scale: all three engines
// produce identical results on every query set of both databases.
func Verify(s Scale) (*Table, error) {
	t := &Table{
		Title:   "Section V-E: output verification across engines",
		Columns: []string{"database", "queries", "compared HSPs", "identical"},
	}
	for _, build := range []func(Scale) (*Workload, error){Uniprot, EnvNR} {
		w, err := build(s)
		if err != nil {
			return nil, err
		}
		for _, name := range QuerySetNames {
			qs := w.Queries[name]
			ncbi := search.NewQueryIndexed(w.Cfg, w.DB).SearchBatch(qs, s.threads())
			ncbiDB := search.NewDBIndexed(w.Cfg, w.Index).SearchBatch(qs, s.threads())
			mu := core.New(w.Cfg, w.Index).SearchBatch(qs, s.threads())
			hsps, ok := compareAll(ncbi, ncbiDB, mu)
			t.AddRow(w.Name, name, hsps, fmt.Sprint(ok))
		}
	}
	return t, nil
}

func compareAll(sets ...[]search.QueryResult) (int, bool) {
	total := 0
	ref := sets[0]
	for _, other := range sets[1:] {
		if len(other) != len(ref) {
			return total, false
		}
		for qi := range ref {
			if len(ref[qi].HSPs) != len(other[qi].HSPs) {
				return total, false
			}
			for j := range ref[qi].HSPs {
				a, b := ref[qi].HSPs[j], other[qi].HSPs[j]
				if a.Subject != b.Subject || a.Aln.Score != b.Aln.Score ||
					a.Aln.QStart != b.Aln.QStart || a.Aln.QEnd != b.Aln.QEnd ||
					a.Aln.SStart != b.Aln.SStart || a.Aln.SEnd != b.Aln.SEnd {
					return total, false
				}
			}
		}
	}
	for qi := range ref {
		total += len(ref[qi].HSPs)
	}
	return total, true
}
