package bench

import (
	"strconv"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "demo", Columns: []string{"a", "bb"}}
	tb.AddRow("x", 1)
	tb.AddRow("longer", 2.5)
	tb.Note("hello %d", 42)
	s := tb.String()
	for _, want := range []string{"== demo ==", "longer", "note: hello 42"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| a | bb |") || !strings.Contains(md, "> hello 42") {
		t.Errorf("Markdown() malformed:\n%s", md)
	}
}

func TestWorkloadConstruction(t *testing.T) {
	s := SmallScale()
	w, err := Uniprot(s)
	if err != nil {
		t.Fatal(err)
	}
	if w.DB.NumSeqs() != s.UniprotSeqs {
		t.Errorf("db has %d seqs", w.DB.NumSeqs())
	}
	for _, name := range QuerySetNames {
		if len(w.Queries[name]) != s.Batch {
			t.Errorf("set %s has %d queries", name, len(w.Queries[name]))
		}
	}
	for _, l := range []int{128, 256, 512} {
		for _, q := range w.Queries[strconv.Itoa(l)] {
			if len(q) != l {
				t.Errorf("set %d contains query of length %d", l, len(q))
			}
		}
	}
	if err := w.Reindex(2048); err != nil {
		t.Fatal(err)
	}
	if len(w.Index.Blocks) < 2 {
		t.Error("reindex with small blocks produced one block")
	}
}

func TestFig2SmallScale(t *testing.T) {
	tb, err := Fig2(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("Fig2 has %d rows", len(tb.Rows))
	}
	// The headline claim: NCBI-db (col 2) has higher LLC miss rate than
	// NCBI (col 1).
	llcNCBI := parseF(t, tb.Rows[0][1])
	llcDB := parseF(t, tb.Rows[0][2])
	if llcDB <= llcNCBI {
		t.Errorf("Fig 2 inversion: NCBI-db LLC %.2f <= NCBI %.2f", llcDB, llcNCBI)
	}
	// muBLASTP (col 3) improves on NCBI-db.
	llcMu := parseF(t, tb.Rows[0][3])
	if llcMu >= llcDB {
		t.Errorf("muBLASTP LLC %.2f not below NCBI-db %.2f", llcMu, llcDB)
	}
}

func TestFig6SmallScale(t *testing.T) {
	tb, err := Fig6(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("Fig6 has %d rows", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		remaining := parseF(t, row[3])
		if remaining <= 0 || remaining >= 50 {
			t.Errorf("query %s: %.1f%% hits remain, outside plausible range", row[0], remaining)
		}
	}
}

func TestFig7SmallScale(t *testing.T) {
	tb, err := Fig7(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	// Percentages per column sum to ~100.
	for col := 1; col <= 2; col++ {
		sum := 0.0
		for _, row := range tb.Rows {
			sum += parseF(t, row[col])
		}
		if sum < 95 || sum > 105 {
			t.Errorf("column %d sums to %.1f%%", col, sum)
		}
	}
}

func TestFig9SmallScale(t *testing.T) {
	tb, err := Fig9(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 8 { // 2 dbs x 4 query sets
		t.Fatalf("Fig9 has %d rows", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		for col := 2; col <= 4; col++ {
			if parseF(t, row[col]) <= 0 {
				t.Errorf("non-positive time in row %v", row)
			}
		}
	}
}

func TestFig10SmallScale(t *testing.T) {
	tb, err := Fig10(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 8 {
		t.Fatalf("Fig10 has %d rows", len(tb.Rows))
	}
	// muBLASTP efficiency stays high; mpiBLAST declines; final speedup >= 2.
	lastRow := tb.Rows[len(tb.Rows)-1]
	muEff := parseF(t, lastRow[5])
	mbEff := parseF(t, lastRow[4])
	if muEff < 80 {
		t.Errorf("muBLASTP 128-node efficiency %.0f%%, want >= 80", muEff)
	}
	if mbEff >= muEff {
		t.Errorf("mpiBLAST efficiency %.0f%% not below muBLASTP %.0f%%", mbEff, muEff)
	}
	// The 128-node speedup depends on measured calibration noise at small
	// scale; it must still clearly exceed 1x (the paper reports 2.2-8.9x).
	sp := strings.TrimSuffix(lastRow[3], "x")
	if v, _ := strconv.ParseFloat(sp, 64); v < 1.3 {
		t.Errorf("128-node speedup %s, want >= 1.3x", lastRow[3])
	}
}

func TestIndexSizeSmallScale(t *testing.T) {
	tb, err := IndexSize(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	rel := strings.TrimSuffix(tb.Rows[1][2], "x")
	if v, _ := strconv.ParseFloat(rel, 64); v <= 1 {
		t.Errorf("expanded index not larger: %sx", rel)
	}
}

func TestVerifySmallScale(t *testing.T) {
	tb, err := Verify(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[3] != "true" {
			t.Errorf("verification failed for %v", row)
		}
		if n, _ := strconv.Atoi(row[2]); n <= 0 {
			t.Errorf("no HSPs compared for %v", row)
		}
	}
}

func TestSchedulerAblationSmallScale(t *testing.T) {
	tb, err := SchedulerAblation(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("scheduler ablation produced no rows")
	}
	for _, row := range tb.Rows {
		if parseF(t, row[2]) <= 0 || parseF(t, row[3]) <= 0 {
			t.Errorf("non-positive time in %v", row)
		}
		for _, col := range []int{5, 6} {
			u := parseF(t, row[col])
			if u <= 0 || u > 105 {
				t.Errorf("utilization %v%% outside (0, 105] in %v", u, row)
			}
		}
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil {
		t.Fatalf("parsing %q: %v", s, err)
	}
	return v
}

func TestFig8SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("block-size sweep")
	}
	tb, err := Fig8(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("Fig8 has %d rows", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if parseF(t, row[1]) <= 0 || parseF(t, row[2]) <= 0 {
			t.Errorf("non-positive time in %v", row)
		}
		// muBLASTP should not be slower than NCBI-db at any block size.
		if parseF(t, row[1]) > parseF(t, row[2])*1.5 {
			t.Errorf("muBLASTP much slower than NCBI-db at %s: %v", row[0], row)
		}
	}
}

func TestFig2OversizedBlocksShowFullInversion(t *testing.T) {
	// With blocks far larger than the scaled LLC, the db-indexed
	// interleaved pipeline's last-hit arrays stop fitting and the paper's
	// full Fig 2 picture appears in the simulated metrics.
	s := SmallScale()
	s.BlockBytes = 8 << 20
	tb, err := Fig2(s)
	if err != nil {
		t.Fatal(err)
	}
	llcNCBI := parseF(t, tb.Rows[0][1])
	llcDB := parseF(t, tb.Rows[0][2])
	llcMu := parseF(t, tb.Rows[0][3])
	if llcDB < 5*llcNCBI {
		t.Errorf("oversized blocks: NCBI-db LLC %.1f%% not >> NCBI %.1f%%", llcDB, llcNCBI)
	}
	if llcMu >= llcDB {
		t.Errorf("muBLASTP LLC %.1f%% not below NCBI-db %.1f%%", llcMu, llcDB)
	}
	stallNCBI := parseF(t, tb.Rows[2][1])
	stallDB := parseF(t, tb.Rows[2][2])
	if stallDB <= stallNCBI {
		t.Errorf("stall proxy not inverted: %.1f vs %.1f", stallDB, stallNCBI)
	}
}
