package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// currentStageReport is the committed stage-budget report the paper-claim
// gate applies to — the newest one, not the frozen seed baseline (which is
// kept for before/after comparison and predates the kernel campaign).
const currentStageReport = "BENCH_stage_pr6.json"

// waiverFile lists claims allowed to fail, each with a reason. A claim that
// regresses without a waiver fails the suite loudly; a claim that starts
// passing while waived is reported so the stale waiver gets removed.
const waiverFile = "bench_waivers.json"

type claimWaiver struct {
	Claim  string `json:"claim"`
	Reason string `json:"reason"`
}

type waiverDoc struct {
	Schema  string        `json:"schema"`
	Waivers []claimWaiver `json:"waivers"`
}

func repoRoot(t *testing.T) string {
	t.Helper()
	// The test binary runs in internal/bench; the committed reports live at
	// the repository root two levels up.
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestPaperClaimsGate turns the paper_claims booleans of the committed
// stage report into a hard test: every claim must hold unless bench_waivers.json
// carries an explicit waiver with a reason. This is the mechanical form of
// the paper's stage-budget properties — the sort staying a small slice of
// runtime (Section IV-B) and the prefilter discarding the large majority of
// hits (Fig 6) regress loudly instead of silently drifting in a JSON nobody
// reads.
func TestPaperClaimsGate(t *testing.T) {
	root := repoRoot(t)

	data, err := os.ReadFile(filepath.Join(root, currentStageReport))
	if err != nil {
		t.Fatalf("reading committed stage report: %v (regenerate with `make bench-json`)", err)
	}
	var doc struct {
		Schema string          `json:"schema"`
		Claims map[string]bool `json:"paper_claims"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("parsing %s: %v", currentStageReport, err)
	}
	if doc.Schema != StageSchemaVersion {
		t.Fatalf("%s schema %q, want %q", currentStageReport, doc.Schema, StageSchemaVersion)
	}
	if len(doc.Claims) == 0 {
		t.Fatalf("%s has no paper_claims", currentStageReport)
	}

	waived := map[string]string{}
	wdata, err := os.ReadFile(filepath.Join(root, waiverFile))
	if err != nil {
		if !os.IsNotExist(err) {
			t.Fatal(err)
		}
	} else {
		var wd waiverDoc
		if err := json.Unmarshal(wdata, &wd); err != nil {
			t.Fatalf("parsing %s: %v", waiverFile, err)
		}
		for _, w := range wd.Waivers {
			if w.Reason == "" {
				t.Errorf("waiver for %q has no reason; waivers must say why", w.Claim)
			}
			if _, ok := doc.Claims[w.Claim]; !ok {
				t.Errorf("waiver for unknown claim %q (not in %s)", w.Claim, currentStageReport)
			}
			waived[w.Claim] = w.Reason
		}
	}

	for claim, ok := range doc.Claims {
		reason, isWaived := waived[claim]
		switch {
		case ok && isWaived:
			t.Logf("claim %q passes but is waived — remove the stale waiver (reason was: %s)", claim, reason)
		case !ok && isWaived:
			t.Logf("claim %q failing under waiver: %s", claim, reason)
		case !ok:
			t.Errorf("paper claim %q is failing in %s with no waiver in %s", claim, currentStageReport, waiverFile)
		}
	}
}

// TestSortShareClaimNotWaived pins the PR-6 tentpole outcome: the
// sort_share_under_5pct claim — failing at seed — must now pass on its own,
// not ride a waiver.
func TestSortShareClaimNotWaived(t *testing.T) {
	root := repoRoot(t)
	wdata, err := os.ReadFile(filepath.Join(root, waiverFile))
	if err != nil {
		if os.IsNotExist(err) {
			return
		}
		t.Fatal(err)
	}
	var wd waiverDoc
	if err := json.Unmarshal(wdata, &wd); err != nil {
		t.Fatal(err)
	}
	for _, w := range wd.Waivers {
		if w.Claim == "sort_share_under_5pct" {
			t.Errorf("sort_share_under_5pct must pass, not be waived: the radix diagonal sort exists to keep the sort share under 5%%")
		}
	}
}
