package bench

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"repro/blast"
	"repro/internal/alphabet"
	"repro/internal/capsim"
	"repro/internal/obs"
	"repro/internal/reqtrace"
	"repro/internal/seqgen"
	"repro/internal/server"
)

// capacityOutcome carries one validation run's measured-vs-predicted pairs:
// what the live daemon did under a replayed overload, and what the
// discrete-event model predicted for the same workload from a calibration
// fit. CapacityValidation renders it; the gate test asserts on it.
type capacityOutcome struct {
	Measured  *reqtrace.ReplayResult
	Predicted *capsim.Result
	Fit       *capsim.Dist
	CalibReqs int
	OverReqs  int
	OfferedPS float64 // overload arrival rate, req/s
}

const (
	capQueueBound  = 4
	capConcurrency = 1
)

// runCapacityValidation closes the record → fit → predict loop end to end
// against a *live* daemon: it serves a seqgen database through the real
// serving core (internal/server) with a deliberately tight queue, replays a
// calm calibration workload to record service times, fits the capsim service
// distribution from those records, then replays an overload workload — open
// loop, ~3x the measured capacity — and compares the model's predicted shed
// rate and latency quantiles against what the daemon actually did.
func runCapacityValidation(s Scale) (*capacityOutcome, error) {
	// A database sized to make one search take tens of milliseconds: long
	// enough that service time dominates HTTP transport overhead (so the
	// replayer can actually deliver a 3x-capacity arrival rate) and
	// queueing dominates scheduling noise, short enough that two replayed
	// workloads finish in seconds.
	g := seqgen.New(seqgen.UniprotProfile(), s.Seed)
	nSeqs := 1500
	if s.UniprotSeqs > nSeqs {
		nSeqs = s.UniprotSeqs
	}
	if nSeqs > 4000 {
		nSeqs = 4000
	}
	raw := g.Database(nSeqs)
	seqs := make([]blast.Sequence, len(raw))
	for i := range raw {
		seqs[i] = blast.Sequence{Name: fmt.Sprintf("sub%04d", i), Residues: alphabet.String(raw[i])}
	}
	p := blast.DefaultParams()
	p.Threads = s.threads()
	db, err := blast.NewDatabase(seqs, p)
	if err != nil {
		return nil, err
	}
	ses := blast.NewSession(db, p)

	// One direct search with a replay-shaped synthetic query roughs out the
	// rate scale for the calibration run; the overload rate is then set
	// precisely from the *fitted* service distribution, not this probe.
	probeQ := make([]byte, 320)
	for i := range probeQ {
		probeQ[i] = "ACDEFGHIKLMNPQRSTVWY"[(int(s.Seed)+i*7)%20]
	}
	probeStart := time.Now()
	if _, err := db.SearchBatchCtx(context.Background(), []string{string(probeQ)}); err != nil {
		return nil, err
	}
	service := time.Since(probeStart)
	if service < time.Millisecond {
		service = time.Millisecond
	}
	capacityPerSec := float64(time.Second) / float64(service) * capConcurrency
	const qlen = 320
	const deadlineMS = int64(30_000)

	runServer := func(workload []*reqtrace.Record) ([]*reqtrace.Record, *reqtrace.ReplayResult, error) {
		var recBuf bytes.Buffer
		srv := server.New(ses, p, server.Config{
			Queue:       capQueueBound,
			Concurrency: capConcurrency,
			Registry:    obs.NewRegistry(),
			Recorder:    reqtrace.NewRecorder(&recBuf),
		})
		bound, err := srv.Start("127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		res, err := reqtrace.Replay(context.Background(), reqtrace.ReplayConfig{
			Target: "http://" + bound, Seed: s.Seed,
		}, workload)
		if err != nil {
			srv.Close()
			return nil, nil, err
		}
		// Drain before reading the buffer: a handler may still be between
		// answering the client and flushing its record.
		drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Drain(drainCtx, time.Second); err != nil {
			return nil, nil, err
		}
		recs, err := reqtrace.ReadRecords(&recBuf)
		return recs, res, err
	}

	// Calibration: ~40% load, no queueing to speak of — the recorded
	// "search" spans are clean service-time samples.
	calibWL := reqtrace.SynthWorkload(40, 0.4*capacityPerSec, qlen, deadlineMS, s.Seed+1)
	calibRecs, _, err := runServer(calibWL)
	if err != nil {
		return nil, fmt.Errorf("calibration run: %w", err)
	}
	dist, err := capsim.FitSpan(calibRecs, "search", reqtrace.OutcomeOK)
	if err != nil {
		return nil, fmt.Errorf("fitting service distribution: %w", err)
	}

	// Overload: ~3x capacity, open loop, so the bounded queue must shed.
	// Capacity comes from the fitted mean service time — the probe's single
	// cold search would understate it.
	offered := 3 * float64(time.Second) / dist.Mean() * capConcurrency
	overWL := reqtrace.SynthWorkload(150, offered, qlen, deadlineMS, s.Seed+2)
	overRecs, measured, err := runServer(overWL)
	if err != nil {
		return nil, fmt.Errorf("overload run: %w", err)
	}

	// Predict the same workload through the model: identical arrival
	// offsets and deadlines, service drawn from the calibration fit.
	sim, err := capsim.Run(capsim.Config{
		Queue:       capQueueBound,
		Concurrency: capConcurrency,
		Service:     dist,
		Seed:        s.Seed,
	}, capsim.WorkloadFromRecords(overRecs))
	if err != nil {
		return nil, err
	}
	return &capacityOutcome{
		Measured: measured, Predicted: sim, Fit: dist,
		CalibReqs: len(calibWL), OverReqs: len(overWL), OfferedPS: offered,
	}, nil
}

// CapacityValidation runs the record → fit → predict validation and renders
// the predicted-vs-measured table for EXPERIMENTS.md. The error bands the
// notes state are asserted by the capacity gate test.
func CapacityValidation(s Scale) (*Table, error) {
	out, err := runCapacityValidation(s)
	if err != nil {
		return nil, err
	}
	ms := func(ns int64) float64 { return float64(ns) / float64(time.Millisecond) }
	t := &Table{
		Title:   "capsim validation: measured overload vs discrete-event prediction",
		Columns: []string{"metric", "measured", "predicted", "err"},
	}
	addRate := func(name string, got, want float64) {
		t.AddRow(name, fmt.Sprintf("%.3f", got), fmt.Sprintf("%.3f", want), fmt.Sprintf("%.3f abs", abs(got-want)))
	}
	addMS := func(name string, got, want float64) {
		relErr := 0.0
		if got > 0 {
			relErr = abs(got-want) / got
		}
		t.AddRow(name, fmt.Sprintf("%.1f ms", got), fmt.Sprintf("%.1f ms", want), fmt.Sprintf("%.0f%% rel", relErr*100))
	}
	m, p := out.Measured, out.Predicted
	addRate("shed rate", m.ShedRate(), p.ShedRate())
	addRate("timeout rate", m.TimeoutRate(), p.TimeoutRate())
	addMS("p50 latency", ms(m.LatencyQuantile(0.50)), ms(p.LatencyQuantile(0.50)))
	addMS("p95 latency", ms(m.LatencyQuantile(0.95)), ms(p.LatencyQuantile(0.95)))
	addMS("p99 latency", ms(m.LatencyQuantile(0.99)), ms(p.LatencyQuantile(0.99)))
	t.Note("server: queue %d, concurrency %d; calibration %d req at 40%% load; overload %d req offered at %.0f req/s (~3x capacity)",
		capQueueBound, capConcurrency, out.CalibReqs, out.OverReqs, out.OfferedPS)
	t.Note("service fit: %d samples from recorded 'search' spans, mean %.1f ms, p95 %.1f ms",
		out.Fit.Len(), out.Fit.Mean()/float64(time.Millisecond), ms(out.Fit.Quantile(0.95)))
	t.Note("bands: |shed rate err| <= 0.15 absolute, p95 within 50%% relative — asserted by TestCapacityModelTracksMeasuredOverload")
	return t, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
