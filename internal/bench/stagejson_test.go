package bench

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// TestStageBudgetReport runs the stage-budget measurement at the small scale
// and validates the report's internal consistency.
func TestStageBudgetReport(t *testing.T) {
	rep, err := StageBudget(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != StageSchemaVersion {
		t.Errorf("schema = %q, want %q", rep.Schema, StageSchemaVersion)
	}
	names := obs.StageNames()
	if len(rep.Stages) != len(names) {
		t.Fatalf("report has %d stages, want %d", len(rep.Stages), len(names))
	}
	var shareSum float64
	var nanosSum int64
	for i, s := range rep.Stages {
		if s.Stage != names[i] {
			t.Errorf("stage %d = %q, want %q", i, s.Stage, names[i])
		}
		if s.Nanos < 0 || s.Share < 0 || s.Share > 1 {
			t.Errorf("stage %s out of range: %+v", s.Stage, s)
		}
		shareSum += s.Share
		nanosSum += s.Nanos
	}
	if math.Abs(shareSum-1) > 1e-9 {
		t.Errorf("stage shares sum to %v, want 1", shareSum)
	}
	if nanosSum != rep.TotalPipelineNanos {
		t.Errorf("stage nanos sum %d != total %d", nanosSum, rep.TotalPipelineNanos)
	}
	if rep.TotalPipelineNanos <= 0 || rep.WallNanos <= 0 {
		t.Errorf("degenerate totals: pipeline %d, wall %d", rep.TotalPipelineNanos, rep.WallNanos)
	}
	if rep.Hits <= 0 || rep.Pairs <= 0 || rep.Pairs > rep.Hits {
		t.Errorf("hit accounting wrong: hits %d, pairs %d", rep.Hits, rep.Pairs)
	}
	if rep.PrefilterSurvivalRatio <= 0 || rep.PrefilterSurvivalRatio > 1 {
		t.Errorf("prefilter survival %v outside (0, 1]", rep.PrefilterSurvivalRatio)
	}
	if rep.SortShare != rep.Stages[obs.StageSort].Share {
		t.Errorf("sort share %v != stage entry %v", rep.SortShare, rep.Stages[obs.StageSort].Share)
	}
	if rep.Scheduler != "block-major" {
		t.Errorf("scheduler %q, want block-major", rep.Scheduler)
	}
	if rep.Tasks <= 0 || rep.Workers <= 0 {
		t.Errorf("degenerate scheduler stats: %d tasks, %d workers", rep.Tasks, rep.Workers)
	}
	if rep.SchedulerUtilization <= 0 || rep.SchedulerUtilization > 1.05 {
		t.Errorf("scheduler utilization %v outside (0, 1.05]", rep.SchedulerUtilization)
	}
	if rep.TaskNanos.Count != rep.Tasks {
		t.Errorf("task histogram count %d != tasks %d", rep.TaskNanos.Count, rep.Tasks)
	}
	if rep.QueryNanos.Count != int64(rep.Workload.Queries) {
		t.Errorf("query histogram count %d != queries %d", rep.QueryNanos.Count, rep.Workload.Queries)
	}
	if tbl := rep.Table(); len(tbl.Rows) != len(names) {
		t.Errorf("table has %d rows, want %d", len(tbl.Rows), len(names))
	}
}

// TestStageReportJSONSchema writes the report and validates the
// BENCH_stage.json schema from the consumer side: required keys, stage list,
// and numeric types, via a plain map (no Go struct assumptions).
func TestStageReportJSONSchema(t *testing.T) {
	rep, err := StageBudget(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_stage.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if data[len(data)-1] != '\n' {
		t.Error("JSON file not newline-terminated")
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("BENCH_stage.json is not valid JSON: %v", err)
	}
	for _, key := range []string{
		"schema", "workload", "stages", "total_pipeline_nanos", "wall_nanos",
		"hits", "pairs", "prefilter_survival_ratio", "sorted_items", "sort_share",
		"scheduler", "workers", "tasks", "scheduler_utilization",
		"task_nanos", "query_nanos", "paper_claims",
	} {
		if _, ok := doc[key]; !ok {
			t.Errorf("BENCH_stage.json missing key %q", key)
		}
	}
	stages, ok := doc["stages"].([]any)
	if !ok || len(stages) != int(obs.NumStages) {
		t.Fatalf("stages is %T with %d entries, want array of %d", doc["stages"], len(stages), obs.NumStages)
	}
	for i, raw := range stages {
		entry, ok := raw.(map[string]any)
		if !ok {
			t.Fatalf("stage %d is %T, want object", i, raw)
		}
		for _, key := range []string{"stage", "nanos", "share"} {
			if _, ok := entry[key]; !ok {
				t.Errorf("stage %d missing key %q", i, key)
			}
		}
		if entry["stage"] != obs.StageNames()[i] {
			t.Errorf("stage %d name %v, want %q", i, entry["stage"], obs.StageNames()[i])
		}
	}
	wl, ok := doc["workload"].(map[string]any)
	if !ok {
		t.Fatalf("workload is %T, want object", doc["workload"])
	}
	for _, key := range []string{"database", "sequences", "residues", "blocks", "queries", "threads", "seed"} {
		if _, ok := wl[key]; !ok {
			t.Errorf("workload missing key %q", key)
		}
	}
	claims, ok := doc["paper_claims"].(map[string]any)
	if !ok {
		t.Fatalf("paper_claims is %T, want object", doc["paper_claims"])
	}
	for _, key := range []string{"sort_share_under_5pct", "prefilter_survival_under_25pct", "detect_plus_prefilter_dominant"} {
		if _, ok := claims[key].(bool); !ok {
			t.Errorf("paper_claims missing boolean %q", key)
		}
	}
	hist, ok := doc["task_nanos"].(map[string]any)
	if !ok {
		t.Fatalf("task_nanos is %T, want object", doc["task_nanos"])
	}
	for _, key := range []string{"count", "sum", "mean", "p50", "p95", "p99"} {
		if _, ok := hist[key].(float64); !ok {
			t.Errorf("task_nanos missing numeric %q", key)
		}
	}
}
