// Package bench is the experiment harness: it builds the paper's workloads
// (scaled to a single machine), runs the three engines under measurement or
// cache simulation, and renders one table or series per figure of the
// evaluation section (Section V). The cmd/experiments binary and the
// repository-level benchmarks are thin wrappers around this package.
package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/alphabet"
	"repro/internal/dbase"
	"repro/internal/dbindex"
	"repro/internal/matrix"
	"repro/internal/neighbor"
	"repro/internal/search"
	"repro/internal/seqgen"
)

// Scale sets experiment sizes. The paper's databases (300K–6M sequences) are
// scaled down so every experiment runs in seconds to minutes on one machine;
// relative behaviour is what the figures compare.
type Scale struct {
	UniprotSeqs int   // sequences in the uniprot_sprot-like database
	EnvNRSeqs   int   // sequences in the env_nr-like database
	Batch       int   // queries per batch (paper: 128)
	Threads     int   // worker threads (0 = GOMAXPROCS)
	Seed        int64 // generator seed
	BlockBytes  int64 // default index block size in bytes (0 = paper rule)
}

// SmallScale finishes in a few seconds; used by tests.
func SmallScale() Scale {
	return Scale{UniprotSeqs: 400, EnvNRSeqs: 600, Batch: 8, Threads: 2, Seed: 7}
}

// DefaultScale is the cmd/experiments default: minutes, not hours.
func DefaultScale() Scale {
	return Scale{UniprotSeqs: 8000, EnvNRSeqs: 16000, Batch: 32, Threads: 0, Seed: 7}
}

func (s Scale) threads() int {
	if s.Threads > 0 {
		return s.Threads
	}
	return runtime.GOMAXPROCS(0)
}

// blockResidues resolves the index block size in residues (positions),
// applying the paper's L3 sizing rule against the *scaled* LLC model so the
// block:cache relationship matches the paper's at any workload scale.
func (s Scale) blockResidues(dbBytes int64) int64 {
	if s.BlockBytes > 0 {
		return s.BlockBytes / 4
	}
	return dbindex.OptimalBlockResidues(ScaledLLCBytes(dbBytes), s.threads())
}

// Workload is one database plus its index, engines' config, and query sets.
type Workload struct {
	Name    string
	Profile seqgen.Profile
	DB      *dbase.DB
	Index   *dbindex.Index
	Cfg     *search.Config
	Gen     *seqgen.Generator
	// Queries holds the paper's four query sets, keyed "128", "256", "512"
	// and "mixed"; each has Scale.Batch queries.
	Queries map[string][][]alphabet.Code
}

// QuerySetNames lists the sets in presentation order.
var QuerySetNames = []string{"128", "256", "512", "mixed"}

// sharedNeighbors caches the neighbor table across workloads (it depends
// only on the matrix and threshold).
var sharedNeighbors *neighbor.Table

// Neighbors returns the shared BLOSUM62/T=11 neighbor table.
func Neighbors() *neighbor.Table {
	if sharedNeighbors == nil {
		sharedNeighbors = neighbor.Build(matrix.Blosum62, neighbor.DefaultThreshold)
	}
	return sharedNeighbors
}

// NewWorkload builds a workload for a profile.
func NewWorkload(name string, prof seqgen.Profile, nSeqs int, s Scale) (*Workload, error) {
	g := seqgen.New(prof, s.Seed)
	db := dbase.New(g.Database(nSeqs))
	cfg, err := search.NewConfig(matrix.Blosum62, Neighbors())
	if err != nil {
		return nil, err
	}
	ix, err := dbindex.Build(db, cfg.Neighbors, s.blockResidues(db.TotalResidues))
	if err != nil {
		return nil, err
	}
	w := &Workload{
		Name:    name,
		Profile: prof,
		DB:      db,
		Index:   ix,
		Cfg:     cfg,
		Gen:     g,
		Queries: map[string][][]alphabet.Code{},
	}
	seqs := make([][]alphabet.Code, db.NumSeqs())
	for i := range db.Seqs {
		seqs[i] = db.Seqs[i].Data
	}
	for _, l := range []int{128, 256, 512} {
		w.Queries[fmt.Sprint(l)] = g.Queries(seqs, s.Batch, l)
	}
	w.Queries["mixed"] = g.Queries(seqs, s.Batch, 0)
	return w, nil
}

// Uniprot builds the uniprot_sprot-like workload.
func Uniprot(s Scale) (*Workload, error) {
	return NewWorkload("uniprot_sprot-like", seqgen.UniprotProfile(), s.UniprotSeqs, s)
}

// EnvNR builds the env_nr-like workload.
func EnvNR(s Scale) (*Workload, error) {
	return NewWorkload("env_nr-like", seqgen.EnvNRProfile(), s.EnvNRSeqs, s)
}

// Reindex rebuilds the workload's index with a different block size (for
// the Fig 8 sweep). The database is already length-sorted, so engines stay
// comparable.
func (w *Workload) Reindex(blockResidues int64) error {
	ix, err := dbindex.Build(w.DB, w.Cfg.Neighbors, blockResidues)
	if err != nil {
		return err
	}
	w.Index = ix
	return nil
}

// TimeIt measures fn's wall-clock duration.
func TimeIt(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// TotalQueryResidues sums the lengths of a query set.
func TotalQueryResidues(queries [][]alphabet.Code) int64 {
	var n int64
	for _, q := range queries {
		n += int64(len(q))
	}
	return n
}
