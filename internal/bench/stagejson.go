// The machine-readable stage-budget emission: BENCH_stage.json. Where the
// figure tables render text for humans, this path measures the paper's
// *stage budget* claims — hit detection + prefiltering dominate, the radix
// sort stays a small slice of runtime, and only a small minority of hits
// survive the prefilter into the sort — and writes them as JSON so the perf
// trajectory can be tracked mechanically across commits (`make bench-json`).
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/alphabet"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/search"
)

// StageSchemaVersion identifies the BENCH_stage.json layout; bump on any
// incompatible change.
const StageSchemaVersion = "mublastp/bench-stage/v1"

// StageShare is one pipeline stage's slice of the total pipeline time.
type StageShare struct {
	Stage string  `json:"stage"`
	Nanos int64   `json:"nanos"`
	Share float64 `json:"share"` // fraction of total_pipeline_nanos, 0..1
}

// StageWorkload records what was run, for reproducibility.
type StageWorkload struct {
	Database  string `json:"database"`
	Sequences int    `json:"sequences"`
	Residues  int64  `json:"residues"`
	Blocks    int    `json:"blocks"`
	Queries   int    `json:"queries"`
	Threads   int    `json:"threads"`
	Seed      int64  `json:"seed"`
}

// StageClaims are the paper's stage-budget properties, evaluated on this
// run. On real databases the paper reports <5% prefilter survival (Fig 6);
// the synthetic generator plants denser homology, so the survival check
// asserts "small minority" rather than the paper's 5%.
type StageClaims struct {
	SortShareUnder5Pct          bool `json:"sort_share_under_5pct"`
	PrefilterSurvivalUnder25Pct bool `json:"prefilter_survival_under_25pct"`
	DetectPlusPrefilterDominant bool `json:"detect_plus_prefilter_dominant"`
}

// StageReport is the BENCH_stage.json payload.
type StageReport struct {
	Schema   string        `json:"schema"`
	Workload StageWorkload `json:"workload"`

	// Per-stage wall time aggregated over every query in the batch, in
	// pipeline order (all six stages always present), with shares of
	// TotalPipelineNanos.
	Stages             []StageShare `json:"stages"`
	TotalPipelineNanos int64        `json:"total_pipeline_nanos"`
	WallNanos          int64        `json:"wall_nanos"`

	// Prefilter effectiveness: hits seen by detection, pairs that survived
	// into the sort, and the survival ratio pairs/hits.
	Hits                   int64   `json:"hits"`
	Pairs                  int64   `json:"pairs"`
	PrefilterSurvivalRatio float64 `json:"prefilter_survival_ratio"`

	// Sort pressure: records through the reorder stage and the sort's
	// share of pipeline time.
	SortedItems int64   `json:"sorted_items"`
	SortShare   float64 `json:"sort_share"`

	// Batch scheduler behaviour.
	Scheduler            string  `json:"scheduler"`
	Workers              int     `json:"workers"`
	Tasks                int64   `json:"tasks"`
	SchedulerUtilization float64 `json:"scheduler_utilization"`

	// Latency distributions of scheduler task grains and whole queries.
	TaskNanos  obs.HistogramSnapshot `json:"task_nanos"`
	QueryNanos obs.HistogramSnapshot `json:"query_nanos"`

	Claims StageClaims `json:"paper_claims"`
}

// StageBudget runs the standard synthetic workload (uniprot_sprot-like, all
// four query sets) through the muBLASTP engine with an isolated metric
// bundle and distills the registry into a StageReport.
func StageBudget(s Scale) (*StageReport, error) {
	w, err := Uniprot(s)
	if err != nil {
		return nil, err
	}
	queries := make([][]alphabet.Code, 0, 4*s.Batch)
	for _, name := range QuerySetNames {
		queries = append(queries, w.Queries[name]...)
	}

	// Warm pass on a discard-metrics engine: grows the scratch pools so the
	// measured pass reflects steady state, without polluting the counters.
	warmOpt := core.DefaultOptions()
	warmOpt.Metrics = obs.Discard
	core.NewWithOptions(w.Cfg, w.Index, warmOpt).SearchBatch(queries, s.threads())

	met := obs.NewPipelineMetrics(obs.NewRegistry())
	opt := core.DefaultOptions()
	opt.Metrics = met
	e := core.NewWithOptions(w.Cfg, w.Index, opt)
	var sched search.SchedStats
	wall := TimeIt(func() { _, sched = e.SearchBatchStats(queries, s.threads()) })

	rep := &StageReport{
		Schema: StageSchemaVersion,
		Workload: StageWorkload{
			Database:  w.Name,
			Sequences: w.DB.NumSeqs(),
			Residues:  w.DB.TotalResidues,
			Blocks:    len(w.Index.Blocks),
			Queries:   len(queries),
			Threads:   s.threads(),
			Seed:      s.Seed,
		},
		WallNanos:            int64(wall),
		Hits:                 met.Hits.Value(),
		Pairs:                met.Pairs.Value(),
		SortedItems:          met.SortedItems.Value(),
		Scheduler:            sched.Scheduler,
		Workers:              sched.Workers,
		Tasks:                sched.Tasks,
		SchedulerUtilization: sched.Utilization(),
		TaskNanos:            met.TaskNanos.Snapshot(),
		QueryNanos:           met.QueryNanos.Snapshot(),
	}
	var total int64
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		total += met.StageNanos[st].Value()
	}
	rep.TotalPipelineNanos = total
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		n := met.StageNanos[st].Value()
		share := 0.0
		if total > 0 {
			share = float64(n) / float64(total)
		}
		rep.Stages = append(rep.Stages, StageShare{Stage: st.String(), Nanos: n, Share: share})
	}
	if rep.Hits > 0 {
		rep.PrefilterSurvivalRatio = float64(rep.Pairs) / float64(rep.Hits)
	}
	rep.SortShare = rep.Stages[obs.StageSort].Share
	detectShare := rep.Stages[obs.StageHitDetect].Share + rep.Stages[obs.StagePrefilter].Share
	rep.Claims = StageClaims{
		SortShareUnder5Pct:          rep.SortShare < 0.05,
		PrefilterSurvivalUnder25Pct: rep.PrefilterSurvivalRatio < 0.25,
		DetectPlusPrefilterDominant: detectShare > rep.Stages[obs.StageUngapped].Share &&
			detectShare > rep.Stages[obs.StageGapped].Share &&
			detectShare > rep.Stages[obs.StageTraceback].Share,
	}
	return rep, nil
}

// Table renders the report for the text/markdown experiment output.
func (r *StageReport) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Stage budget: per-stage time shares (%s, %d queries)", r.Workload.Database, r.Workload.Queries),
		Columns: []string{"stage", "time (ms)", "share (%)"},
	}
	for _, s := range r.Stages {
		t.AddRow(s.Stage, fmt.Sprintf("%.1f", float64(s.Nanos)/1e6), fmt.Sprintf("%.1f", 100*s.Share))
	}
	t.Note("prefilter survival: %d/%d hits = %.1f%% reach the sort (paper Fig 6: <5%% on real databases)",
		r.Pairs, r.Hits, 100*r.PrefilterSurvivalRatio)
	t.Note("sort share: %.1f%% of pipeline time (paper: sort stays a small slice); scheduler %s utilization %.1f%% over %d tasks",
		100*r.SortShare, r.Scheduler, 100*r.SchedulerUtilization, r.Tasks)
	t.Note("task p50/p95/p99: %v/%v/%v; query p50/p95/p99: %v/%v/%v",
		time.Duration(r.TaskNanos.P50), time.Duration(r.TaskNanos.P95), time.Duration(r.TaskNanos.P99),
		time.Duration(r.QueryNanos.P50), time.Duration(r.QueryNanos.P95), time.Duration(r.QueryNanos.P99))
	return t
}

// WriteJSON writes the report to path (pretty-printed, trailing newline).
func (r *StageReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encoding stage report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: writing stage report: %w", err)
	}
	return nil
}
