package bench

import (
	"fmt"
	"os"
	"time"

	"repro/blast"
	"repro/internal/alphabet"
	"repro/internal/seqgen"
)

// IngestLatency measures what the crash-safe ingest store buys over the
// rebuild-the-world alternative: appending a small delta batch (1% of the
// database, the nightly-update shape) versus re-running the full database
// build for the same final sequence set. Both sides are timed
// durable-to-durable — Append is WAL-journaled, fsynced, and
// manifest-committed on return, and the rebuild is a complete InitStore on
// disk — so the ratio is the honest operational comparison, not an
// in-memory shortcut. A second batch is appended on top of the first to
// show the delta path holds its speed as deltas accumulate.
func IngestLatency(s Scale) (*Table, error) {
	baseN := s.UniprotSeqs
	batchN := baseN / 100
	if batchN < 10 {
		batchN = 10
	}
	p := blast.DefaultParams()
	p.Threads = s.threads()
	if s.BlockBytes > 0 {
		p.BlockResidues = s.BlockBytes / 4
	}

	gen := func(n int, seed int64, prefix string) []blast.Sequence {
		g := seqgen.New(seqgen.UniprotProfile(), seed)
		raw := g.Database(n)
		seqs := make([]blast.Sequence, len(raw))
		for i, r := range raw {
			seqs[i] = blast.Sequence{Name: fmt.Sprintf("%s%06d", prefix, i), Residues: alphabet.String(r)}
		}
		return seqs
	}
	base := gen(baseN, s.Seed, "base")
	batch1 := gen(batchN, s.Seed+1, "d1-")
	batch2 := gen(batchN, s.Seed+2, "d2-")

	dir, err := os.MkdirTemp("", "ingest-exp")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	st, err := blast.InitStore(dir+"/store", base, p)
	if err != nil {
		return nil, err
	}
	// One throwaway delta build warms the process-wide caches (neighbor
	// table) so the measured appends reflect a long-running ingester, the
	// deployment this path exists for, not a cold process.
	if _, err := st.Append(gen(batchN, s.Seed+9, "warm")); err != nil {
		return nil, err
	}

	appendOnce := func(batch []blast.Sequence) (time.Duration, error) {
		start := time.Now()
		if _, err := st.Append(batch); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	d1, err := appendOnce(batch1)
	if err != nil {
		return nil, err
	}
	d2, err := appendOnce(batch2)
	if err != nil {
		return nil, err
	}

	// The alternative: rebuild the whole store from scratch for the same
	// final set (base + first batch).
	all := append(append([]blast.Sequence{}, base...), batch1...)
	start := time.Now()
	if _, err := blast.InitStore(dir+"/rebuild", all, p); err != nil {
		return nil, err
	}
	rebuild := time.Since(start)

	ms := func(d time.Duration) string { return fmt.Sprintf("%.1f", float64(d)/float64(time.Millisecond)) }
	t := &Table{
		Title:   fmt.Sprintf("ingest latency: %d-sequence delta vs full rebuild (base %d)", batchN, baseN),
		Columns: []string{"path", "durable ms", "speedup"},
	}
	t.AddRow("delta append (1st)", ms(d1), fmt.Sprintf("%.1fx", float64(rebuild)/float64(d1)))
	t.AddRow("delta append (2nd)", ms(d2), fmt.Sprintf("%.1fx", float64(rebuild)/float64(d2)))
	t.AddRow("full rebuild", ms(rebuild), "1.0x")
	t.Note("both paths timed to durable on-disk state: Append returns after WAL fsync, "+
		"delta build, and atomic manifest commit; the rebuild is a complete InitStore of %d sequences", len(all))
	return t, nil
}
