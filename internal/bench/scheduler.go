package bench

import (
	"fmt"
	"time"

	"repro/internal/alphabet"
	"repro/internal/core"
	"repro/internal/search"
)

// SchedulerAblation compares the two batch schedulers (DESIGN.md ablation
// item 6): the per-block barrier loop as printed in Algorithm 3 versus the
// barrier-free block-major task grid. Both run the same uniform and skewed
// query mixes at several thread counts; the skewed mix (short queries plus
// one much longer straggler) is where the barrier leaves workers idling at
// block boundaries and the grid does not.
func SchedulerAblation(s Scale) (*Table, error) {
	w, err := Uniprot(s)
	if err != nil {
		return nil, err
	}
	seqs := make([][]alphabet.Code, w.DB.NumSeqs())
	for i := range w.DB.Seqs {
		seqs[i] = w.DB.Seqs[i].Data
	}
	skewed := w.Gen.Queries(seqs, s.Batch-1, 128)
	skewed = append(skewed, w.Gen.Queries(seqs, 1, 1024)...)
	mixes := []struct {
		name string
		qs   [][]alphabet.Code
	}{
		{"uniform-256", w.Queries["256"]},
		{"skewed-128+1024", skewed},
	}

	var threadCounts []int
	seen := map[int]bool{}
	for _, threads := range []int{1, 2, s.threads(), 2 * s.threads()} {
		if threads >= 1 && !seen[threads] {
			seen[threads] = true
			threadCounts = append(threadCounts, threads)
		}
	}
	t := &Table{
		Title: "Scheduler ablation: per-block barrier vs barrier-free block-major grid (uniprot_sprot-like, batch of " +
			fmt.Sprint(s.Batch) + ")",
		Columns: []string{"queries", "threads", "barrier (s)", "grid (s)", "grid speedup",
			"barrier util (%)", "grid util (%)"},
	}
	for _, mix := range mixes {
		for _, threads := range threadCounts {
			bTime, bStats := runScheduler(w, core.SchedBarrier, mix.qs, threads)
			gTime, gStats := runScheduler(w, core.SchedBlockMajor, mix.qs, threads)
			t.AddRow(mix.name, threads, secs(bTime), secs(gTime), ratio(bTime, gTime),
				pct(bStats.Utilization()), pct(gStats.Utilization()))
		}
	}
	t.Note("barrier: workers rejoin after every index block (Algorithm 3 as printed); grid: one atomic task counter over the (block x query) grid, merged at finalize")
	t.Note("both schedulers produce byte-identical output (TestBatchIdentityAllOptions); utilization = busy time / (workers x elapsed)")
	return t, nil
}

// runScheduler times one warm batch run under the given scheduler and
// returns its wall time plus the scheduler's own utilization counters.
func runScheduler(w *Workload, sched core.Scheduler, qs [][]alphabet.Code, threads int) (time.Duration, search.SchedStats) {
	opt := core.DefaultOptions()
	opt.Scheduler = sched
	e := core.NewWithOptions(w.Cfg, w.Index, opt)
	// One untimed pass warms the per-worker scratch pool so both schedulers
	// are measured at steady state.
	e.SearchBatchStats(qs, threads)
	var stats search.SchedStats
	elapsed := TimeIt(func() { _, stats = e.SearchBatchStats(qs, threads) })
	return elapsed, stats
}
