package bench

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: one per paper figure.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a free-form annotation rendered under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	if len(t.Notes) > 0 {
		b.WriteByte('\n')
		for _, n := range t.Notes {
			fmt.Fprintf(&b, "> %s\n", n)
		}
	}
	return b.String()
}
