package bench

import (
	"testing"

	"repro/internal/reqtrace"
)

// TestCapacityModelTracksMeasuredOverload is the capacity-planner gate: the
// discrete-event model, fitted from a recorded calibration run, must predict
// a live daemon's overload behaviour inside the bands EXPERIMENTS.md states
// — shed rate within 0.15 absolute, p95 latency within 50% relative.
func TestCapacityModelTracksMeasuredOverload(t *testing.T) {
	if testing.Short() {
		t.Skip("replays two workloads against a live server")
	}
	out, err := runCapacityValidation(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	m, p := out.Measured, out.Predicted

	// The overload run must actually overload: an idle "validation" would
	// pass any band vacuously.
	if m.ShedRate() < 0.1 {
		t.Fatalf("overload run shed only %.3f — not an overload (outcomes %v)", m.ShedRate(), m.ByOutcome)
	}
	if m.ByOutcome[reqtrace.OutcomeOK] == 0 {
		t.Fatalf("overload run completed nothing: %v", m.ByOutcome)
	}

	if gap := abs(m.ShedRate() - p.ShedRate()); gap > 0.15 {
		t.Errorf("shed rate: measured %.3f predicted %.3f (|err| %.3f > 0.15)", m.ShedRate(), p.ShedRate(), gap)
	}
	mp95 := float64(m.LatencyQuantile(0.95))
	pp95 := float64(p.LatencyQuantile(0.95))
	if mp95 <= 0 || pp95 <= 0 {
		t.Fatalf("degenerate p95: measured %v predicted %v", mp95, pp95)
	}
	if rel := abs(mp95-pp95) / mp95; rel > 0.5 {
		t.Errorf("p95: measured %.1fms predicted %.1fms (rel err %.0f%% > 50%%)", mp95/1e6, pp95/1e6, rel*100)
	}
}
