package sigctx

import (
	"context"
	"os"
	"os/signal"
	"syscall"
	"testing"
	"time"
)

// kill delivers sig to this process and fails the test if delivery errors.
func kill(t *testing.T, sig syscall.Signal) {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), sig); err != nil {
		t.Fatalf("sending %v: %v", sig, err)
	}
}

// waitDone asserts ctx is cancelled within a generous deadline.
func waitDone(t *testing.T, ctx context.Context) {
	t.Helper()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context not cancelled after signal")
	}
}

func TestFirstSignalCancels(t *testing.T) {
	got := make(chan os.Signal, 1)
	ctx, stop := WithForcedExit(context.Background(), func(sig os.Signal) { got <- sig })
	defer stop()
	kill(t, syscall.SIGTERM)
	waitDone(t, ctx)
	select {
	case sig := <-got:
		if sig != syscall.SIGTERM {
			t.Errorf("onShutdown saw %v, want SIGTERM", sig)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("onShutdown never called")
	}
}

func TestSecondSignalForcesExit(t *testing.T) {
	exited := make(chan int, 1)
	old := exit
	exit = func(code int) {
		exited <- code
		select {} // the real os.Exit never returns; park the goroutine
	}
	defer func() { exit = old }()

	ctx, stop := WithForcedExit(context.Background(), nil)
	defer stop()
	kill(t, syscall.SIGTERM)
	waitDone(t, ctx)
	kill(t, syscall.SIGTERM)
	select {
	case code := <-exited:
		if code != ExitForced {
			t.Errorf("forced exit code %d, want %d", code, ExitForced)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second signal did not force exit")
	}
}

// TestStopDisarmsEscalation: once stop runs, a later signal must not take
// the force-exit path — the escalation goroutine is gone with the
// registration. A guard channel keeps the test's own SIGTERM from hitting
// the process default disposition after sigctx unregisters.
func TestStopDisarmsEscalation(t *testing.T) {
	guard := make(chan os.Signal, 4)
	signal.Notify(guard, syscall.SIGTERM)
	defer signal.Stop(guard)

	exited := make(chan int, 1)
	old := exit
	exit = func(code int) {
		exited <- code
		select {}
	}
	defer func() { exit = old }()

	ctx, stop := WithForcedExit(context.Background(), nil)
	kill(t, syscall.SIGTERM)
	waitDone(t, ctx)
	stop() // graceful path finished before any second signal

	for len(guard) > 0 { // drop signals delivered before stop
		<-guard
	}
	kill(t, syscall.SIGTERM)
	select {
	case <-guard: // the post-stop signal arrived
	case <-time.After(5 * time.Second):
		t.Fatal("guard never saw the post-stop signal")
	}
	select {
	case code := <-exited:
		t.Fatalf("signal after stop forced exit with code %d", code)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestStopReleasesRegistration(t *testing.T) {
	ctx, stop := WithForcedExit(context.Background(), nil)
	stop()
	stop() // idempotent
	select {
	case <-ctx.Done():
	default:
		t.Error("stop should cancel the context")
	}
}
