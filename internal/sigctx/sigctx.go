// Package sigctx is the shared signal policy of the CLI and the daemon:
// the first SIGINT/SIGTERM starts a graceful shutdown (context
// cancellation), a second one force-exits immediately with a distinct exit
// code.
//
// The previous per-command wiring used signal.NotifyContext alone, which
// keeps the signal registration alive until its stop function runs at exit —
// so a second Ctrl-C during a slow graceful drain was swallowed and the
// operator had no escalation path short of SIGKILL. This helper restores
// that escalation: once shutdown has begun, the next signal bypasses the
// drain entirely.
package sigctx

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// ExitForced is the exit code of a second-signal forced exit. It is distinct
// from the commands' error exit (1) and usage exit (2) so wrappers can tell
// "operator escalated past a graceful drain" from ordinary failure.
const ExitForced = 3

// exit is os.Exit, swappable by tests exercising the second-signal path.
var exit = os.Exit

// WithForcedExit returns a copy of parent that is cancelled on the first
// SIGINT or SIGTERM. A second signal after that prints a note to stderr and
// exits the process immediately with ExitForced — no deferred cleanup runs,
// which is the point: the operator asked twice.
//
// onShutdown, if non-nil, is called (on the signal goroutine) when the first
// signal lands, so commands can log what drain they are starting.
//
// The returned stop function releases the signal registration and cancels
// the context; call it once the graceful path has fully finished.
func WithForcedExit(parent context.Context, onShutdown func(sig os.Signal)) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 2)
	quit := make(chan struct{})
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		select {
		case sig := <-ch:
			if onShutdown != nil {
				onShutdown(sig)
			}
			cancel()
		case <-quit:
			return
		}
		select {
		case sig := <-ch: // second signal: escalate
			fmt.Fprintf(os.Stderr, "received %v during shutdown, forcing exit\n", sig)
			exit(ExitForced)
		case <-quit:
		}
	}()
	var stopOnce sync.Once
	stop := func() {
		stopOnce.Do(func() {
			signal.Stop(ch)
			close(quit)
			cancel()
		})
	}
	return ctx, stop
}
