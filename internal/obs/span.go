// Per-query span records and their JSONL sink. A span is one (stage, nanos)
// sample; a QueryTrace is the full record for one query — its six stage
// spans plus the counter deltas the pipeline accumulated for it. The engine
// never builds these on the hot path: span materialization happens at
// reporting time from the per-query Stats the pipeline already carries, so
// attaching a trace sink costs nothing per task and allocation only per
// reported query.
package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// Span is one stage's time sample within a query.
type Span struct {
	Stage string `json:"stage"`
	Nanos int64  `json:"nanos"`
}

// QueryTrace is the per-query span record written (one JSON object per
// line) by a TraceWriter. Stages always lists all six pipeline stages in
// order, including zero-time ones, so consumers can index positionally.
type QueryTrace struct {
	Query    string           `json:"query"`
	QueryLen int              `json:"query_len"`
	Hits     int              `json:"hits"` // reported HSPs
	Stages   []Span           `json:"stages"`
	Counters map[string]int64 `json:"counters"`
}

// TotalNanos sums the stage spans.
func (t *QueryTrace) TotalNanos() int64 {
	var n int64
	for _, s := range t.Stages {
		n += s.Nanos
	}
	return n
}

// TraceWriter writes QueryTrace records as JSONL. Safe for concurrent use;
// buffered, so Close (or Flush) must be called to drain it.
type TraceWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	c   io.Closer // underlying file, when owned
}

// NewTraceWriter wraps w in a JSONL trace sink.
func NewTraceWriter(w io.Writer) *TraceWriter {
	bw := bufio.NewWriter(w)
	t := &TraceWriter{bw: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	return t
}

// Write appends one record. json.Encoder terminates each record with '\n',
// which is exactly the JSONL framing.
func (t *TraceWriter) Write(rec *QueryTrace) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.enc.Encode(rec)
}

// Flush drains the buffer.
func (t *TraceWriter) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bw.Flush()
}

// Close flushes and, when the underlying writer is a Closer (e.g. a file),
// closes it.
func (t *TraceWriter) Close() error {
	if err := t.Flush(); err != nil {
		if t.c != nil {
			t.c.Close()
		}
		return err
	}
	if t.c != nil {
		return t.c.Close()
	}
	return nil
}
