package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartNoOpWhenPathsEmpty(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if err := stop(); err != nil { // idempotent
		t.Fatalf("second stop: %v", err)
	}
}

func TestStartWritesBothProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Errorf("profile %s not written: %v", p, err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestStartBadCPUPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.prof"), ""); err == nil {
		t.Fatal("Start with uncreatable cpuprofile path did not error")
	}
}

// TestStartFailureClosesFile starts one CPU profile, then a second: the
// second StartCPUProfile fails (one profiler per process), and Start must
// tear down its already-created file so the caller leaks nothing.
func TestStartFailureClosesFile(t *testing.T) {
	dir := t.TempDir()
	stop, err := Start(filepath.Join(dir, "cpu1.prof"), "")
	if err != nil {
		t.Fatalf("first Start: %v", err)
	}
	defer stop()

	second := filepath.Join(dir, "cpu2.prof")
	if _, err := Start(second, ""); err == nil {
		t.Fatal("second concurrent CPU profile start did not error")
	}
	// The failed Start closed its file; removing it must succeed, proving no
	// open handle semantics surprises and that the path isn't held.
	if err := os.Remove(second); err != nil {
		t.Errorf("failed Start left %s in a bad state: %v", second, err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if fi, err := os.Stat(filepath.Join(dir, "cpu1.prof")); err != nil || fi.Size() == 0 {
		t.Errorf("first profile not written after failed second Start (err=%v)", err)
	}
}

func TestStartBadMemPathSurfacesOnStop(t *testing.T) {
	stop, err := Start("", filepath.Join(t.TempDir(), "no", "such", "dir", "mem.prof"))
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := stop(); err == nil {
		t.Fatal("stop with uncreatable memprofile path did not error")
	}
}
