// Package prof is the shared -cpuprofile/-memprofile plumbing of the
// command-line tools (cmd/mublastp, cmd/experiments), replacing the
// copy-pasted setup each main used to carry. Start begins CPU profiling
// immediately; the returned stop function ends it and writes the heap
// profile, so the profile window is exactly the caller's start..stop span
// (the search phase, not database construction or output formatting).
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start enables the profiles selected by non-empty paths. It returns a stop
// function that must be called (once) when the measured phase ends: it stops
// the CPU profile, closes its file, and writes the heap profile after a GC
// so the dump shows live steady-state memory rather than dead garbage.
//
// On any setup error the partially opened state is torn down — the CPU
// profile file is closed (and profiling stopped) before the error returns —
// so a failed Start never leaks an open file or a running profiler.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: cpuprofile: %w", err)
		}
	}
	stopped := false
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				firstErr = fmt.Errorf("prof: cpuprofile: %w", err)
			}
		}
		if memPath != "" {
			if err := writeHeap(memPath); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}, nil
}

// writeHeap dumps the heap profile to path after flushing dead objects.
func writeHeap(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("prof: memprofile: %w", err)
	}
	runtime.GC() // flush dead objects so the profile shows live scratch
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("prof: memprofile: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("prof: memprofile: %w", err)
	}
	return nil
}
