// The live debug endpoint: an HTTP listener exposing the metrics registry
// as plaintext (/metrics), the expvar JSON dump (/debug/vars, including an
// "obs" tree mirroring the registry), and the standard pprof handlers
// (/debug/pprof/...), so a long batch search can be inspected while it runs:
//
//	mublastp -db db.mublastp -query big.fasta -debug-addr :6060 &
//	curl localhost:6060/metrics
//	go tool pprof localhost:6060/debug/pprof/profile?seconds=5
package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the expvar registration of the default registry:
// expvar panics on duplicate names, and Serve/Handler may be called more
// than once per process (tests, repeated searches).
var publishOnce sync.Once

// Handler returns the debug mux for a registry: /metrics, /debug/vars,
// /debug/pprof/ and friends, plus a tiny index at /.
func Handler(r *Registry) http.Handler {
	if r == Default {
		publishOnce.Do(func() {
			expvar.Publish("obs", expvar.Func(func() any { return Default.Snapshot() }))
		})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.WriteText(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintln(w, "mublastp debug endpoint: /metrics /debug/vars /debug/pprof/")
	})
	return mux
}

// Server is a running debug listener.
type Server struct {
	Addr string // actual bound address (useful with ":0")
	srv  *http.Server
	ln   net.Listener
}

// Serve binds addr (e.g. ":6060" or "127.0.0.1:0") and serves Handler(r)
// in a background goroutine. The returned Server reports the bound address
// and can be Closed when the search is done.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listener on %s: %w", addr, err)
	}
	s := &Server{Addr: ln.Addr().String(), ln: ln, srv: &http.Server{Handler: Handler(r)}}
	go s.srv.Serve(ln) // Serve returns ErrServerClosed on Close; nothing to do with it
	return s, nil
}

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }
