// The live debug endpoint: an HTTP listener exposing the metrics registry
// as plaintext (/metrics), the expvar JSON dump (/debug/vars, including an
// "obs" tree mirroring the registry), and the standard pprof handlers
// (/debug/pprof/...), so a long batch search can be inspected while it runs:
//
//	mublastp -db db.mublastp -query big.fasta -debug-addr :6060 &
//	curl localhost:6060/metrics
//	go tool pprof localhost:6060/debug/pprof/profile?seconds=5
package obs

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// publishOnce guards the expvar registration of the default registry:
// expvar panics on duplicate names, and Serve/Handler may be called more
// than once per process (tests, repeated searches).
var publishOnce sync.Once

// Handler returns the debug mux for a registry: /metrics, /debug/vars,
// /debug/pprof/ and friends, plus a tiny index at /.
func Handler(r *Registry) http.Handler { return HandlerWithReadiness(r, nil) }

// HandlerWithReadiness is Handler plus the serving probes: /healthz always
// answers 200 while the process is up (liveness), and /readyz answers 200
// when ready() returns nil and 503 with the error text otherwise — the
// daemon points ready at its admission state, so a draining or reloading
// instance is visibly not ready without being restarted. A nil ready means
// always ready.
func HandlerWithReadiness(r *Registry, ready func() error) http.Handler {
	if r == Default {
		publishOnce.Do(func() {
			expvar.Publish("obs", expvar.Func(func() any { return Default.Snapshot() }))
		})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.WriteText(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if ready != nil {
			if err := ready(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintln(w, "mublastp debug endpoint: /metrics /healthz /readyz /debug/vars /debug/pprof/")
	})
	return mux
}

// Server is a running debug listener.
type Server struct {
	Addr string // actual bound address (useful with ":0")
	srv  *http.Server
	ln   net.Listener
}

// Serve binds addr (e.g. ":6060" or "127.0.0.1:0") and serves Handler(r)
// in a background goroutine. The returned Server reports the bound address
// and can be Closed when the search is done.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listener on %s: %w", addr, err)
	}
	s := &Server{Addr: ln.Addr().String(), ln: ln, srv: &http.Server{Handler: Handler(r)}}
	go s.srv.Serve(ln) // Serve returns ErrServerClosed on Close; nothing to do with it
	return s, nil
}

// Close shuts the listener down immediately, dropping in-flight requests.
// Prefer Shutdown on any orderly exit path.
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown closes the listener and waits for in-flight requests (a scrape
// mid-dump, a pprof profile) to finish, bounded by ctx. It exists so the
// debug server rides the same shutdown lifecycle as the work it observes
// instead of being abandoned at exit: a scraper reading /metrics during a
// graceful drain sees a complete payload, not a reset connection.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

// ShutdownTimeout is Shutdown with a fresh deadline of d (a convenience for
// exit paths that have no context of their own); non-positive d means a
// 2-second default.
func (s *Server) ShutdownTimeout(d time.Duration) error {
	if d <= 0 {
		d = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return s.Shutdown(ctx)
}
