package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugServerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("pipeline_hits_total").Add(123)
	r.Histogram("sched_task_nanos").Observe(5000)

	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "pipeline_hits_total 123") {
		t.Errorf("/metrics missing counter line:\n%s", body)
	}
	if !strings.Contains(body, "sched_task_nanos_count 1") {
		t.Errorf("/metrics missing histogram lines:\n%s", body)
	}

	code, body = get(t, base+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Errorf("/debug/vars is not JSON: %v", err)
	}

	code, body = get(t, base+"/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index looks wrong:\n%.200s", body)
	}

	code, _ = get(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}

	code, body = get(t, base+"/")
	if code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index: status %d body %q", code, body)
	}
	if code, _ := get(t, base+"/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path returned %d, want 404", code)
	}
}

// TestDebugVarsPublishesDefaultRegistry checks the expvar "obs" tree mirrors
// the Default registry when serving it, and that serving twice does not
// panic on duplicate expvar registration.
func TestDebugVarsPublishesDefaultRegistry(t *testing.T) {
	Pipe.Batches.Add(1) // ensure at least one default-registry metric is non-zero

	srv, err := Serve("127.0.0.1:0", Default)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	srv2, err := Serve("127.0.0.1:0", Default) // second Serve must not panic
	if err != nil {
		t.Fatalf("second Serve: %v", err)
	}
	defer srv2.Close()

	_, body := get(t, "http://"+srv.Addr+"/debug/vars")
	var vars struct {
		Obs map[string]any `json:"obs"`
	}
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars.Obs["sched_batches_total"]; !ok {
		t.Errorf("expvar obs tree missing sched_batches_total: %v", vars.Obs)
	}
}
