package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestStageNames(t *testing.T) {
	names := StageNames()
	want := []string{"hit_detect", "prefilter", "sort", "ungapped", "gapped", "traceback"}
	if len(names) != int(NumStages) {
		t.Fatalf("StageNames returned %d names, want %d", len(names), NumStages)
	}
	for i, w := range want {
		if names[i] != w {
			t.Errorf("stage %d = %q, want %q", i, names[i], w)
		}
		if Stage(i).String() != w {
			t.Errorf("Stage(%d).String() = %q, want %q", i, Stage(i).String(), w)
		}
	}
	if s := Stage(99).String(); !strings.Contains(s, "99") {
		t.Errorf("out-of-range stage stringified as %q", s)
	}
}

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Add(3)
	c.Add(4)
	if c.Value() != 7 {
		t.Errorf("counter = %d, want 7", c.Value())
	}
	var g Gauge
	if g.Value() != 0 {
		t.Errorf("zero gauge = %v, want 0", g.Value())
	}
	g.Set(0.25)
	g.Set(1.5)
	if g.Value() != 1.5 {
		t.Errorf("gauge = %v, want 1.5", g.Value())
	}
}

func TestHistogramBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3},
		{9, 4}, {1 << 20, 20}, {1<<20 + 1, 21}, {math.MaxInt64, 63},
	}
	for _, tc := range cases {
		v := tc.v
		if v < 0 {
			v = 0 // Observe clamps before mapping
		}
		if got := bucketOf(v); got != tc.want {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Errorf("empty histogram: q50=%d mean=%v, want 0,0", h.Quantile(0.5), h.Mean())
	}
	// 90 observations of ~1us, 10 of ~1ms: p50 in the 1us bucket, p99 in
	// the 1ms bucket. Bucket upper bounds are powers of two.
	for i := 0; i < 90; i++ {
		h.Observe(1000)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1_000_000)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if want := int64(90*1000 + 10*1_000_000); h.Sum() != want {
		t.Errorf("sum = %d, want %d", h.Sum(), want)
	}
	if p50 := h.Quantile(0.50); p50 != 1024 {
		t.Errorf("p50 = %d, want 1024 (upper bound of the 1000ns bucket)", p50)
	}
	if p99 := h.Quantile(0.99); p99 != 1<<20 {
		t.Errorf("p99 = %d, want %d (upper bound of the 1ms bucket)", p99, 1<<20)
	}
	// Quantile inputs outside [0,1] clamp rather than misbehave.
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Errorf("quantile clamping broken")
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 2 || bounds[0] != 1024 || counts[0] != 90 || bounds[1] != 1<<20 || counts[1] != 10 {
		t.Errorf("Buckets() = %v %v, want [1024 1048576] [90 10]", bounds, counts)
	}
	snap := h.Snapshot()
	if snap.Count != 100 || snap.P50 != 1024 || snap.P99 != 1<<20 {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Errorf("count = %d, want %d", h.Count(), workers*per)
	}
	var bucketTotal int64
	_, counts := h.Buckets()
	for _, c := range counts {
		bucketTotal += c
	}
	if bucketTotal != workers*per {
		t.Errorf("bucket total = %d, want %d", bucketTotal, workers*per)
	}
}

func TestRegistrySameHandleAndKindCollision(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Error("same name returned different counter handles")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Error("same name returned different histogram handles")
	}
	defer func() {
		if recover() == nil {
			t.Error("registering a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("x")
}

func TestRegistrySnapshotAndWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total").Add(5)
	r.Gauge("util").Set(0.75)
	h := r.Histogram("lat_nanos")
	h.Observe(100)
	h.Observe(200)

	snap := r.Snapshot()
	if snap["requests_total"] != int64(5) {
		t.Errorf("snapshot counter = %v", snap["requests_total"])
	}
	if snap["util"] != 0.75 {
		t.Errorf("snapshot gauge = %v", snap["util"])
	}
	hs, ok := snap["lat_nanos"].(HistogramSnapshot)
	if !ok || hs.Count != 2 {
		t.Errorf("snapshot histogram = %#v", snap["lat_nanos"])
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Errorf("snapshot not JSON-encodable: %v", err)
	}

	var b bytes.Buffer
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	text := b.String()
	for _, want := range []string{"requests_total 5", "util 0.75", "lat_nanos_count 2", "lat_nanos_sum 300", "lat_nanos_p50 "} {
		if !strings.Contains(text, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, text)
		}
	}
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if !sortedLines(lines) {
		t.Errorf("WriteText lines not sorted:\n%s", text)
	}
}

func sortedLines(lines []string) bool {
	for i := 1; i < len(lines); i++ {
		if lines[i] < lines[i-1] {
			return false
		}
	}
	return true
}

func TestNewPipelineMetricsRegistersStableNames(t *testing.T) {
	r := NewRegistry()
	p := NewPipelineMetrics(r)
	p.Hits.Add(1)
	for s := Stage(0); s < NumStages; s++ {
		p.StageNanos[s].Add(int64(s) + 1)
	}
	snap := r.Snapshot()
	for _, name := range []string{
		"pipeline_hits_total", "pipeline_pairs_total", "pipeline_sorted_items_total",
		"pipeline_ungapped_extensions_total", "pipeline_kept_extensions_total",
		"pipeline_gapped_extensions_total", "pipeline_tracebacks_total",
		"pipeline_queries_total", "sched_tasks_total", "sched_batches_total",
		"sched_task_nanos", "pipeline_query_nanos", "sched_utilization_permille",
		"sched_busy_nanos_total", "sched_stall_nanos_total",
	} {
		if _, ok := snap[name]; !ok {
			t.Errorf("pipeline bundle did not register %q", name)
		}
	}
	for _, stage := range StageNames() {
		if _, ok := snap["pipeline_stage_"+stage+"_nanos_total"]; !ok {
			t.Errorf("pipeline bundle did not register stage counter for %q", stage)
		}
	}
	// Pipe and Discard exist and are distinct bundles: stamping Discard must
	// not leak into the default registry.
	if Pipe == Discard {
		t.Error("Pipe and Discard are the same bundle")
	}
	before := Pipe.Hits.Value()
	Discard.Hits.Add(100)
	if Pipe.Hits.Value() != before {
		t.Error("stamping Discard leaked into Pipe")
	}
}

func TestMetricStampingAllocs(t *testing.T) {
	p := NewPipelineMetrics(NewRegistry())
	allocs := testing.AllocsPerRun(100, func() {
		p.Hits.Add(7)
		p.StageNanos[StageSort].Add(42)
		p.TaskNanos.Observe(1234)
		p.SchedUtilizationPermille.Set(998)
	})
	if allocs != 0 {
		t.Errorf("metric stamping allocated %.1f times per op, want 0", allocs)
	}
}
