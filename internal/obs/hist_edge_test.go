package obs

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestHistogramEmptyQuantiles pins the empty-histogram contract: every
// accessor returns zero values rather than panicking or inventing data.
func TestHistogramEmptyQuantiles(t *testing.T) {
	var h Histogram
	for _, q := range []float64{-1, 0, 0.5, 0.999, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%g) = %d, want 0", q, got)
		}
	}
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Errorf("empty histogram count=%d sum=%d mean=%v, want all zero", h.Count(), h.Sum(), h.Mean())
	}
	if bounds, counts := h.Buckets(); len(bounds) != 0 || len(counts) != 0 {
		t.Errorf("empty histogram Buckets() = %v %v, want empty", bounds, counts)
	}
	snap := h.Snapshot()
	if snap != (HistogramSnapshot{}) {
		t.Errorf("empty histogram Snapshot() = %+v, want zero value", snap)
	}
}

// TestHistogramSingleSample: with one observation, every quantile is that
// sample's bucket bound — there is only one place the rank can land.
func TestHistogramSingleSample(t *testing.T) {
	cases := []struct {
		v    int64
		want int64 // bucket upper bound every quantile must return
	}{
		{0, 1},             // clamps into bucket 0, reported as 1
		{1, 1},             // bucket 0 exactly
		{1000, 1024},       // interior bucket
		{1 << 40, 1 << 40}, // exact power of two stays in its own bucket
	}
	for _, tc := range cases {
		var h Histogram
		h.Observe(tc.v)
		if h.Count() != 1 {
			t.Fatalf("Observe(%d): count = %d, want 1", tc.v, h.Count())
		}
		for _, q := range []float64{0, 0.5, 1} {
			if got := h.Quantile(q); got != tc.want {
				t.Errorf("single sample %d: Quantile(%g) = %d, want %d", tc.v, q, got, tc.want)
			}
		}
		if tc.v >= 0 && h.Sum() != tc.v {
			t.Errorf("single sample %d: sum = %d", tc.v, h.Sum())
		}
	}
}

// TestHistogramOverflowBucket: values past 1<<62 land in the last bucket,
// whose upper bound is reported as MaxInt64 (a power-of-two bound would
// overflow int64). The 1<<62 boundary itself still belongs to bucket 62.
func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	h.Observe(math.MaxInt64)
	if got := h.Quantile(0.5); got != math.MaxInt64 {
		t.Errorf("MaxInt64 sample: quantile = %d, want MaxInt64", got)
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 1 || bounds[0] != math.MaxInt64 || counts[0] != 1 {
		t.Errorf("MaxInt64 sample: Buckets() = %v %v, want [MaxInt64] [1]", bounds, counts)
	}

	var edge Histogram
	edge.Observe(1 << 62)   // last value of bucket 62
	edge.Observe(1<<62 + 1) // first value of the overflow bucket
	if got := edge.Quantile(0.5); got != 1<<62 {
		t.Errorf("p50 = %d, want 1<<62 (boundary value stays in bucket 62)", got)
	}
	if got := edge.Quantile(1); got != math.MaxInt64 {
		t.Errorf("p100 = %d, want MaxInt64 (value past the boundary overflows)", got)
	}

	// The overflow bound must survive the /metrics text path too.
	r := NewRegistry()
	r.Histogram("big_nanos").Observe(math.MaxInt64)
	var b bytes.Buffer
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if !strings.Contains(b.String(), "big_nanos_bucket_le_9223372036854775807 1") {
		t.Errorf("WriteText missing overflow bucket line:\n%s", b.String())
	}
}

// TestHistogramSnapshotUnderConcurrentStamping pins what Snapshot guarantees
// while writers are stamping (run under -race via the Makefile race target):
// no torn reads, counts monotone across successive snapshots, quantiles that
// are always legal bucket bounds, and an exact final state once writers stop.
func TestHistogramSnapshotUnderConcurrentStamping(t *testing.T) {
	var h Histogram
	const workers = 4
	const per = 5000
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*per + i))
			}
		}()
	}

	var snapErr error
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		var lastCount int64
		for !stop.Load() {
			s := h.Snapshot()
			if s.Count < lastCount {
				snapErr = fmt.Errorf("snapshot count went backwards under concurrent stamping: %d then %d", lastCount, s.Count)
				return
			}
			lastCount = s.Count
			if s.Count > 0 {
				for _, q := range []int64{s.P50, s.P95, s.P99} {
					if q < 1 || (q != math.MaxInt64 && q&(q-1) != 0) {
						snapErr = fmt.Errorf("snapshot quantile %d is not a bucket bound", q)
						return
					}
				}
			}
		}
	}()

	wg.Wait()
	stop.Store(true)
	snapWG.Wait()
	if snapErr != nil {
		t.Fatal(snapErr)
	}

	final := h.Snapshot()
	if final.Count != workers*per {
		t.Errorf("final count = %d, want %d", final.Count, workers*per)
	}
	var wantSum int64
	for v := int64(0); v < workers*per; v++ {
		wantSum += v
	}
	if final.Sum != wantSum {
		t.Errorf("final sum = %d, want %d", final.Sum, wantSum)
	}
}
