package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestQueryTraceTotalNanos(t *testing.T) {
	tr := QueryTrace{Stages: []Span{{"hit_detect", 5}, {"sort", 7}}}
	if tr.TotalNanos() != 12 {
		t.Errorf("TotalNanos = %d, want 12", tr.TotalNanos())
	}
}

func TestTraceWriterJSONL(t *testing.T) {
	var buf bytes.Buffer
	w := NewTraceWriter(&buf)
	recs := []*QueryTrace{
		{Query: "q1", QueryLen: 128, Hits: 3,
			Stages:   []Span{{"hit_detect", 100}, {"prefilter", 10}},
			Counters: map[string]int64{"hits": 42}},
		{Query: "q2", QueryLen: 256, Hits: 0, Stages: []Span{{"sort", 5}}},
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	var got []QueryTrace
	for sc.Scan() {
		var tr QueryTrace
		if err := json.Unmarshal(sc.Bytes(), &tr); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", len(got)+1, err, sc.Text())
		}
		got = append(got, tr)
	}
	if len(got) != 2 {
		t.Fatalf("got %d JSONL records, want 2", len(got))
	}
	if got[0].Query != "q1" || got[0].Counters["hits"] != 42 || got[0].Stages[1].Stage != "prefilter" {
		t.Errorf("record 0 round-tripped wrong: %+v", got[0])
	}
	if got[1].Query != "q2" || got[1].Hits != 0 {
		t.Errorf("record 1 round-tripped wrong: %+v", got[1])
	}
}

func TestTraceWriterClosesOwnedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := NewTraceWriter(f)
	if err := w.Write(&QueryTrace{Query: "q"}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := f.Close(); err == nil {
		t.Error("TraceWriter.Close did not close the underlying file")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || data[len(data)-1] != '\n' {
		t.Errorf("trace file not flushed as newline-terminated JSONL: %q", data)
	}
}

func TestTraceWriterConcurrent(t *testing.T) {
	var buf bytes.Buffer
	w := NewTraceWriter(&buf)
	var wg sync.WaitGroup
	const n = 50
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			w.Write(&QueryTrace{Query: "q", Stages: []Span{{"sort", 1}}})
		}()
	}
	wg.Wait()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Count(buf.Bytes(), []byte{'\n'})
	if lines != n {
		t.Errorf("concurrent writes produced %d lines, want %d (torn writes?)", lines, n)
	}
}
